module ctrpred

go 1.22
