package ctrpred_test

import (
	"context"
	"errors"
	"fmt"

	"ctrpred"
)

// Tiny deterministic configuration used by the runnable documentation
// examples (real studies use DefaultConfig's scale).
func exampleConfig(s ctrpred.Scheme) ctrpred.Config {
	cfg := ctrpred.DefaultConfig(s)
	cfg.Scale = ctrpred.Scale{Footprint: 128 << 10, Instructions: 20_000}
	cfg.Mem.L2Size = 16 << 10
	cfg.Mem.FlushInterval = 10_000
	cfg.Seed = 1
	return cfg
}

// ExampleRun shows the one-call interface: run a benchmark under a
// scheme and read the security invariants off the result.
func ExampleRun() {
	res, err := ctrpred.Run("mcf", exampleConfig(ctrpred.SchemePred(ctrpred.PredRegular)))
	if err != nil {
		panic(err)
	}
	fmt.Println("benchmark:", res.Benchmark)
	fmt.Println("scheme:", res.Scheme)
	fmt.Println("pad reuse:", res.PadViolations)
	fmt.Println("self-check failures:", res.Ctrl.SelfCheckFails)
	// Output:
	// benchmark: mcf
	// scheme: pred-regular
	// pad reuse: 0
	// self-check failures: 0
}

// ExampleRunContext shows the cancellable interface: the context is
// polled at instruction checkpoints inside the simulation, so a cancel
// or deadline stops the run within one Config.CheckInterval of
// simulated work rather than at run granularity.
func ExampleRunContext() {
	cfg := exampleConfig(ctrpred.SchemeBaseline())

	// A live context behaves exactly like Run.
	res, err := ctrpred.RunContext(context.Background(), "mcf", cfg)
	if err != nil {
		panic(err)
	}
	fmt.Println("completed:", res.CPU.Instructions >= cfg.Scale.Instructions)

	// A cancelled context stops the simulation and reports why.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = ctrpred.RunContext(ctx, "mcf", cfg)
	fmt.Println("cancelled run returns context.Canceled:", errors.Is(err, context.Canceled))
	// Output:
	// completed: true
	// cancelled run returns context.Canceled: true
}

// ExampleSchemePred shows how the canonical schemes are constructed and
// named.
func ExampleSchemePred() {
	fmt.Println(ctrpred.SchemePred(ctrpred.PredContext).Name)
	fmt.Println(ctrpred.SchemeSeqCache(128 << 10).Name)
	fmt.Println(ctrpred.SchemeCombined(32<<10, ctrpred.PredRegular).Name)
	fmt.Println(ctrpred.SchemeDirect().Name)
	// Output:
	// pred-context
	// seqcache-128K
	// seqcache-32K+pred-regular
	// direct
}

// ExampleBenchmarks lists the workload kernels.
func ExampleBenchmarks() {
	names := ctrpred.Benchmarks()
	fmt.Println(len(names), "benchmarks, first:", names[0], "last:", names[len(names)-1])
	// Output:
	// 14 benchmarks, first: ammp last: wupwise
}

// ExampleNewMachine drives the simulator components directly: inspect
// the off-chip ciphertext the adversary would see.
func ExampleNewMachine() {
	m, err := ctrpred.NewMachine("swim", exampleConfig(ctrpred.SchemeBaseline()))
	if err != nil {
		panic(err)
	}
	m.Image.Store(0x100000, 8, 0x1234)
	enc := m.Ctrl.EncryptedLine(0x100000)
	plain := m.Image.LineAt(0x100000)
	fmt.Println("ciphertext equals plaintext:", enc == plain)
	// Output:
	// ciphertext equals plaintext: false
}
