package ctrpred

import "testing"

func quickConfig(s Scheme) Config {
	cfg := DefaultConfig(s)
	cfg.Scale = Scale{Footprint: 256 << 10, Instructions: 40_000}
	cfg.Mem.L2Size = 16 << 10
	cfg.Mem.FlushInterval = 20_000
	return cfg
}

func TestFacadeRun(t *testing.T) {
	res, err := Run("mcf", quickConfig(SchemePred(PredContext)))
	if err != nil {
		t.Fatal(err)
	}
	if res.IPC() <= 0 || res.PredRate() <= 0 {
		t.Fatalf("IPC=%v PredRate=%v", res.IPC(), res.PredRate())
	}
}

func TestFacadeBenchmarks(t *testing.T) {
	if len(Benchmarks()) != 14 {
		t.Fatalf("Benchmarks() = %d entries", len(Benchmarks()))
	}
	cat := BenchmarkCatalog()
	if len(cat) != 14 {
		t.Fatalf("catalog has %d entries", len(cat))
	}
	for _, b := range cat {
		if b.Name == "" || b.Description == "" {
			t.Fatalf("incomplete catalog entry %+v", b)
		}
	}
}

func TestFacadeSchemes(t *testing.T) {
	if SchemeBaseline().Name != "baseline" || SchemeOracle().Name != "oracle" {
		t.Fatal("scheme constructors broken")
	}
	if SchemeSeqCache(4<<10).SeqCacheBytes != 4<<10 {
		t.Fatal("seq cache size not plumbed")
	}
	if SchemeCombined(32<<10, PredRegular).Pred != PredRegular {
		t.Fatal("combined scheme not plumbed")
	}
	if DefaultPredConfig(PredContext).Depth != 5 {
		t.Fatal("default pred config wrong")
	}
}

func TestFacadeExperiment(t *testing.T) {
	opt := DefaultOptions()
	opt.Benchmarks = []string{"mcf"}
	opt.Scale = Scale{Footprint: 256 << 10, Instructions: 30_000}
	res, err := RunExperiment("fig7", opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.ID != "Figure 7" || res.Table.NumRows() != 2 {
		t.Fatalf("experiment result %q rows=%d", res.ID, res.Table.NumRows())
	}
	if _, err := RunExperiment("bogus", opt); err == nil {
		t.Fatal("bogus experiment id accepted")
	}
	if len(ExperimentIDs()) != 18 {
		t.Fatalf("ExperimentIDs() = %d", len(ExperimentIDs()))
	}
}

func TestFacadeMachine(t *testing.T) {
	m, err := NewMachine("swim", quickConfig(SchemeBaseline()))
	if err != nil {
		t.Fatal(err)
	}
	if m.Core == nil || m.Ctrl == nil || m.Sys == nil {
		t.Fatal("machine components missing")
	}
	res := m.Run()
	if res.CPU.Instructions == 0 {
		t.Fatal("machine run executed nothing")
	}
}
