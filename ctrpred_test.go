package ctrpred

import (
	"context"
	"errors"
	"testing"
)

func quickConfig(s Scheme) Config {
	cfg := DefaultConfig(s)
	cfg.Scale = Scale{Footprint: 256 << 10, Instructions: 40_000}
	cfg.Mem.L2Size = 16 << 10
	cfg.Mem.FlushInterval = 20_000
	return cfg
}

func TestFacadeRun(t *testing.T) {
	res, err := Run("mcf", quickConfig(SchemePred(PredContext)))
	if err != nil {
		t.Fatal(err)
	}
	if res.IPC() <= 0 || res.PredRate() <= 0 {
		t.Fatalf("IPC=%v PredRate=%v", res.IPC(), res.PredRate())
	}
}

func TestFacadeBenchmarks(t *testing.T) {
	if len(Benchmarks()) != 14 {
		t.Fatalf("Benchmarks() = %d entries", len(Benchmarks()))
	}
	cat := BenchmarkCatalog()
	if len(cat) != 14 {
		t.Fatalf("catalog has %d entries", len(cat))
	}
	for _, b := range cat {
		if b.Name == "" || b.Description == "" {
			t.Fatalf("incomplete catalog entry %+v", b)
		}
	}
}

func TestFacadeSchemes(t *testing.T) {
	if SchemeBaseline().Name != "baseline" || SchemeOracle().Name != "oracle" {
		t.Fatal("scheme constructors broken")
	}
	if SchemeSeqCache(4<<10).SeqCacheBytes != 4<<10 {
		t.Fatal("seq cache size not plumbed")
	}
	if SchemeCombined(32<<10, PredRegular).Pred != PredRegular {
		t.Fatal("combined scheme not plumbed")
	}
	if DefaultPredConfig(PredContext).Depth != 5 {
		t.Fatal("default pred config wrong")
	}
}

func TestFacadeExperiment(t *testing.T) {
	opt := DefaultOptions()
	opt.Benchmarks = []string{"mcf"}
	opt.Scale = Scale{Footprint: 256 << 10, Instructions: 30_000}
	res, err := RunExperiment("fig7", opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.ID != "Figure 7" || res.Table.NumRows() != 2 {
		t.Fatalf("experiment result %q rows=%d", res.ID, res.Table.NumRows())
	}
	if _, err := RunExperiment("bogus", opt); err == nil {
		t.Fatal("bogus experiment id accepted")
	}
	if len(ExperimentIDs()) != 22 {
		t.Fatalf("ExperimentIDs() = %d", len(ExperimentIDs()))
	}
}

func TestFacadeSentinels(t *testing.T) {
	if _, err := Run("nonesuch", quickConfig(SchemeBaseline())); !errors.Is(err, ErrUnknownBenchmark) {
		t.Fatalf("Run(nonesuch) = %v, want errors.Is(err, ErrUnknownBenchmark)", err)
	}
	if _, err := RunExperiment("bogus", DefaultOptions()); !errors.Is(err, ErrUnknownExperiment) {
		t.Fatalf("RunExperiment(bogus) = %v, want errors.Is(err, ErrUnknownExperiment)", err)
	}
	if _, err := ParseScheme("frob"); !errors.Is(err, ErrUnknownScheme) {
		t.Fatalf("ParseScheme(frob) = %v, want errors.Is(err, ErrUnknownScheme)", err)
	}
	if _, err := ParseEngine("quantum"); !errors.Is(err, ErrUnknownEngine) {
		t.Fatalf("ParseEngine(quantum) = %v, want errors.Is(err, ErrUnknownEngine)", err)
	}
	cfg := quickConfig(SchemeBaseline())
	cfg.Engine = EngineSpec{Model: "quantum"}
	if _, err := Run("mcf", cfg); !errors.Is(err, ErrUnknownEngine) {
		t.Fatalf("Run with unknown engine = %v, want errors.Is(err, ErrUnknownEngine)", err)
	}
}

func TestFacadeRunContext(t *testing.T) {
	res, err := RunContext(context.Background(), "mcf", quickConfig(SchemeBaseline()))
	if err != nil {
		t.Fatal(err)
	}
	if res.CPU.Instructions == 0 {
		t.Fatal("RunContext executed nothing")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunContext(ctx, "mcf", quickConfig(SchemeBaseline())); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled RunContext = %v, want context.Canceled", err)
	}
}

func TestFacadeSnapshot(t *testing.T) {
	res, err := Run("mcf", quickConfig(SchemePred(PredRegular)))
	if err != nil {
		t.Fatal(err)
	}
	snap := res.Snapshot()
	cpu := snap.Lookup("cpu")
	if cpu == nil {
		t.Fatal("snapshot missing cpu node")
	}
	if v, ok := cpu.CounterValue("instructions"); !ok || v != res.CPU.Instructions {
		t.Fatalf("snapshot instructions = %d, %v; want %d", v, ok, res.CPU.Instructions)
	}
	if _, err := snap.JSON(); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeMachine(t *testing.T) {
	m, err := NewMachine("swim", quickConfig(SchemeBaseline()))
	if err != nil {
		t.Fatal(err)
	}
	if m.Core == nil || m.Ctrl == nil || m.Sys == nil {
		t.Fatal("machine components missing")
	}
	res := m.Run()
	if res.CPU.Instructions == 0 {
		t.Fatal("machine run executed nothing")
	}
}
