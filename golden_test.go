// Determinism guard: the fast paths (T-table AES, batched pads, map-free
// memory state) must not change a single byte of experiment output. These
// tests pin the fig7 and fig10 tables and a Result.Snapshot JSON at the
// 100k-instruction bench scale (fixed seed) against golden fixtures in
// testdata/. Regenerate with
//
//	go test -run TestGolden -update
//
// only when an intentional modeling change alters the numbers.
package ctrpred

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden fixtures in testdata/")

// goldenOptions matches benchOptions: default (paper-scale) footprint,
// 100k-instruction window, seed 1.
func goldenOptions() ExperimentOptions {
	opt := DefaultOptions()
	opt.Scale.Instructions = 100_000
	return opt
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden fixture (run `go test -run TestGolden -update`): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden fixture (-want +got):\n--- want ---\n%s\n--- got ---\n%s", name, want, got)
	}
}

// TestGoldenFig7Table pins the Figure 7 hit-rate table byte-for-byte.
func TestGoldenFig7Table(t *testing.T) {
	res, err := RunExperiment("fig7", goldenOptions())
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "golden_fig7.txt", []byte(fmt.Sprintf("%s\n", res.Table)))
}

// TestGoldenFig10Table pins the Figure 10 normalized-IPC table.
func TestGoldenFig10Table(t *testing.T) {
	res, err := RunExperiment("fig10", goldenOptions())
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "golden_fig10.txt", []byte(fmt.Sprintf("%s\n", res.Table)))
}

// TestGoldenTenantsTable pins the multi-tenant interference matrix on a
// small grid (two benchmarks, 20k-instruction slices): the seeded
// arrival schedules, global-virtual-time slowdowns and SLO percentiles
// must reproduce byte-for-byte across machines and worker counts.
func TestGoldenTenantsTable(t *testing.T) {
	opt := goldenOptions()
	opt.Benchmarks = []string{"gzip", "mcf"}
	opt.Scale.Instructions = 20_000
	res, err := RunExperiment("tenants", opt)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "golden_tenants.txt", []byte(fmt.Sprintf("%s\n", res.Table)))
}

// TestGoldenRunSnapshot pins the full metrics snapshot of a single run —
// every counter in every component — so any behavioral drift in the
// caches, DRAM, engine, predictor or controller is caught, not just the
// figures' headline numbers.
func TestGoldenRunSnapshot(t *testing.T) {
	cfg := DefaultConfig(SchemePred(PredContext))
	cfg.Scale = Scale{Footprint: 1 << 20, Instructions: 100_000}
	res, err := Run("mcf", cfg)
	if err != nil {
		t.Fatal(err)
	}
	js, err := res.Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "golden_mcf_context_snapshot.json", append(js, '\n'))
}
