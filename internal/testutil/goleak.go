// Package testutil holds shared test plumbing. Its only resident so
// far is the goroutine-leak check the server and cluster e2e suites
// run: streaming relays, drains, and chaos failovers all spawn
// goroutines that must not outlive their jobs.
package testutil

import (
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"
)

// VerifyNoLeaks snapshots the goroutines alive now and registers a
// cleanup that fails the test if, at teardown, new goroutines running
// this module's code still exist. Call it FIRST in a test (or helper):
// cleanups run LIFO, so registering first means the check runs last,
// after the test's own teardowns (server shutdowns, httptest closes)
// have had their chance to reap everything.
//
// The check only counts stacks that mention "ctrpred/" — the runtime
// and net/http keep service goroutines (idle keep-alive conns, timer
// scavengers) alive across tests, and flagging those would make every
// test flaky. It also polls with a grace window before failing:
// goroutine teardown is asynchronous, and a stack observed mid-exit is
// not a leak.
func VerifyNoLeaks(t testing.TB) {
	t.Helper()
	before := stackCount()
	t.Cleanup(func() {
		if t.Failed() {
			// The test already failed; a leak report would bury the real
			// error, and aborted paths legitimately strand goroutines.
			return
		}
		http.DefaultClient.CloseIdleConnections()
		http.DefaultTransport.(*http.Transport).CloseIdleConnections()
		deadline := time.Now().Add(2 * time.Second)
		var leaked []string
		for {
			leaked = leakedStacks(before)
			if len(leaked) == 0 {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(20 * time.Millisecond)
		}
		t.Errorf("goroutine leak: %d goroutine(s) running ctrpred code outlived the test:\n%s",
			len(leaked), strings.Join(leaked, "\n---\n"))
	})
}

// stackCount counts goroutines whose stacks run this module's code.
func stackCount() map[string]int {
	counts := make(map[string]int)
	for _, s := range moduleStacks() {
		counts[stackKey(s)]++
	}
	return counts
}

// leakedStacks returns the module-code stacks present now in excess of
// the baseline, grouped by creation site.
func leakedStacks(baseline map[string]int) []string {
	seen := make(map[string]int)
	var leaked []string
	for _, s := range moduleStacks() {
		k := stackKey(s)
		seen[k]++
		if seen[k] > baseline[k] {
			leaked = append(leaked, s)
		}
	}
	return leaked
}

// moduleStacks dumps all goroutine stacks and keeps the ones that
// mention this module's packages.
func moduleStacks() []string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	var out []string
	for _, s := range strings.Split(string(buf), "\n\n") {
		if strings.Contains(s, "ctrpred/") && !strings.Contains(s, "testutil.") {
			out = append(out, s)
		}
	}
	return out
}

// stackKey reduces a stack to its goroutine-creation site plus top
// frame package, so counts compare like with like across dumps.
func stackKey(stack string) string {
	lines := strings.Split(stack, "\n")
	key := ""
	for _, l := range lines {
		if strings.HasPrefix(l, "created by ") {
			key = strings.TrimSpace(l)
			// Drop the varying " in goroutine N" suffix (Go 1.21+), else
			// no baseline key would ever match a later dump's.
			if i := strings.Index(key, " in goroutine "); i >= 0 {
				key = key[:i]
			}
			break
		}
	}
	if key == "" && len(lines) > 1 {
		key = strings.TrimSpace(lines[1])
	}
	return key
}
