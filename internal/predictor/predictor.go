// Package predictor implements the paper's sequence-number (OTP)
// prediction schemes — Section 3 (regular + adaptive) and Section 7
// (two-level, context-based, root-history) — together with the per-page
// security metadata they rely on: the random root sequence number assigned
// at page-mapping time, the 16-bit prediction history vector (PHV) that
// drives adaptive root resets, the root history, and the range-prediction
// table of the two-level scheme.
//
// The predictor owns sequence-number *assignment* as well as guessing:
// when the L2 evicts a dirty line, NextSeqForEvict returns the counter the
// writeback must be encrypted under (increment, or re-base onto the
// current root after a reset, per Section 3.2).
package predictor

import (
	"fmt"

	"ctrpred/internal/rng"
	"ctrpred/internal/stats"
)

// Scheme selects the guess-generation policy.
type Scheme int

const (
	// SchemeNone disables prediction (baseline architecture).
	SchemeNone Scheme = iota
	// SchemeRegular guesses [root, root+Depth] (Section 3.1).
	SchemeRegular
	// SchemeTwoLevel predicts the offset range first, then runs regular
	// prediction inside it (Section 7.2).
	SchemeTwoLevel
	// SchemeContext adds guesses around the Latest Offset Register
	// (Section 7.4).
	SchemeContext
)

func (s Scheme) String() string {
	switch s {
	case SchemeNone:
		return "none"
	case SchemeRegular:
		return "regular"
	case SchemeTwoLevel:
		return "two-level"
	case SchemeContext:
		return "context"
	}
	return fmt.Sprintf("Scheme(%d)", int(s))
}

// Config holds the prediction parameters; the zero value is invalid, use
// DefaultConfig (Table 1 values) and override.
type Config struct {
	Scheme Scheme
	// Depth is the prediction depth: guesses root … root+Depth, i.e.
	// Depth+1 guesses (Section 7.4's accounting).
	Depth int
	// Swing is the context-prediction swing around the LOR value.
	Swing int
	// PHVBits is the width of the prediction history vector (16).
	PHVBits int
	// ResetThreshold triggers a root reset when the number of
	// mispredictions in the PHV reaches it (12).
	ResetThreshold int
	// Adaptive enables PHV tracking and root resets (Section 3.2). The
	// paper's evaluated "Pred" is always adaptive; turning this off gives
	// the plain regular predictor for ablations.
	Adaptive bool
	// HistoryDepth old roots are remembered per page and also used for
	// guessing (Section 7.3). 0 disables.
	HistoryDepth int
	// RangeTableEntries is the number of pages tracked by the two-level
	// range table (64 ≈ 4 KB with 4-bit ranges and 128 lines/page).
	RangeTableEntries int
	// RangeBits is the per-line range index width (4 → 16 ranges).
	RangeBits int
	// PageSize and LineSize define page geometry (4096 / 32).
	PageSize int
	LineSize int
	// MaxRootDistance bounds the offset a sequence number may have from
	// the current root and still be considered as counting from it
	// (Section 3.2's "negative or too large" test).
	MaxRootDistance uint64
	// Seed drives the hardware random number generator model.
	Seed uint64
}

// DefaultConfig returns the Table 1 parameters for the given scheme.
func DefaultConfig(scheme Scheme) Config {
	return Config{
		Scheme:            scheme,
		Depth:             5,
		Swing:             3,
		PHVBits:           16,
		ResetThreshold:    12,
		Adaptive:          true,
		HistoryDepth:      0,
		RangeTableEntries: 64,
		RangeBits:         4,
		PageSize:          4096,
		LineSize:          32,
		MaxRootDistance:   1 << 32,
		Seed:              0x5eed,
	}
}

// Stats aggregates predictor activity.
type Stats struct {
	// Fetches is the number of sequence-number fetches observed (one per
	// L2 miss that reached memory).
	Fetches uint64
	// Hits is the number of fetches whose true sequence number was among
	// the guesses.
	Hits uint64
	// Guesses is the total number of speculative pads requested.
	Guesses uint64
	// Resets counts adaptive root resets.
	Resets uint64
	// Rebases counts evictions that re-based a stale counter onto the
	// current root.
	Rebases uint64
	// RangeEvictions counts pages displaced from the range table.
	RangeEvictions uint64
	// HitDepth is the distribution of the confirmed guess's position
	// (1-based, most-likely first) in the guess list of hitting fetches:
	// how deep the paper's prediction depth actually needs to reach.
	HitDepth *stats.Histogram
}

// HitRate returns the prediction rate (hits / fetches).
func (s Stats) HitRate() float64 {
	if s.Fetches == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Fetches)
}

// AddTo registers the predictor's statistics into a metrics snapshot
// node.
func (s Stats) AddTo(n *stats.Snapshot) {
	n.Counter("fetches", s.Fetches)
	n.Counter("hits", s.Hits)
	n.Counter("guesses", s.Guesses)
	n.Counter("resets", s.Resets)
	n.Counter("rebases", s.Rebases)
	n.Counter("range_evictions", s.RangeEvictions)
	n.Value("hit_rate", s.HitRate())
	n.Histogram("hit_depth", s.HitDepth)
}

// pageMeta is the per-page security context. Like the root sequence
// number, the two-level scheme's per-line range indices are part of this
// context: the 64-entry range-prediction table is an on-chip cache of the
// most recently used pages' ranges, and the backing copy lives with the
// page table (Section 7.2 prices the per-page storage at 256 bits).
type pageMeta struct {
	root     uint64
	oldRoots []uint64 // most recent first, ≤ HistoryDepth
	phv      uint32   // low PHVBits bits; 1 = misprediction
	phvFill  int      // how many results have been shifted in (≤ PHVBits)
	ranges   []uint8  // two-level range index per line (lazily allocated)
}

// rangeEntry is one page's slot in the on-chip range table (recency and
// capacity accounting for the 4 KB structure).
type rangeEntry struct {
	vpage   uint64
	valid   bool
	lastUse uint64
}

// Predictor implements all schemes behind one type; construct with New.
type Predictor struct {
	cfg Config
	// Page metadata sits on the hot path (Predict/Observe/Root all hit
	// it, several times per fetch), so the common low-address pages live
	// in a flat pointer directory grown on demand — one bounds check and
	// one indexed load instead of a hash probe. Pages beyond the dense
	// horizon (nothing the built-in workloads map, but the API must not
	// care) fall back to a sparse map. First-touch order, and therefore
	// the root-draw sequence, is identical either way.
	pageDense  []*pageMeta
	pageSparse map[uint64]*pageMeta
	pageCount  int
	rnd        *rng.Xoshiro256
	lor          uint64 // latest offset register
	lorValid     bool
	rangeTable   []rangeEntry
	rangeClock   uint64
	linesPerPage int
	rangeSpan    uint64 // width of one range = Depth+1
	maxRange     uint8
	stats        Stats
	scratch      []uint64 // reused guess buffer
}

// New creates a predictor; it panics on nonsensical parameters.
func New(cfg Config) *Predictor {
	if cfg.Depth < 0 || cfg.PageSize <= 0 || cfg.LineSize <= 0 || cfg.PageSize%cfg.LineSize != 0 {
		panic("predictor: invalid geometry")
	}
	if cfg.PHVBits <= 0 || cfg.PHVBits > 32 {
		panic("predictor: PHVBits must be in 1..32")
	}
	if cfg.ResetThreshold <= 0 || cfg.ResetThreshold > cfg.PHVBits {
		panic("predictor: ResetThreshold must be in 1..PHVBits")
	}
	if cfg.MaxRootDistance == 0 {
		cfg.MaxRootDistance = 1 << 32
	}
	p := &Predictor{
		cfg:          cfg,
		rnd:          rng.New(cfg.Seed),
		linesPerPage: cfg.PageSize / cfg.LineSize,
		rangeSpan:    uint64(cfg.Depth + 1),
		maxRange:     uint8(1<<cfg.RangeBits - 1),
	}
	if cfg.Scheme == SchemeTwoLevel {
		if cfg.RangeTableEntries <= 0 || cfg.RangeBits <= 0 || cfg.RangeBits > 8 {
			panic("predictor: invalid two-level parameters")
		}
		p.rangeTable = make([]rangeEntry, cfg.RangeTableEntries)
	}
	p.stats.HitDepth = stats.NewHistogram(1, 2, 3, 4, 6, 8, 12, 16)
	return p
}

// Config returns the predictor's configuration.
func (p *Predictor) Config() Config { return p.cfg }

// FlushTransient clears the prediction state that does not survive a
// context switch: the latest-offset register the context scheme keys on,
// the per-page prediction-history vectors (confidence restarts cold),
// and the on-chip range table's residency (the backing per-page range
// indices live with the page table and survive). Per-page roots and root
// history are retained — they are part of the process's security context
// and travel with it across switches (Section 7.2's OS support), and
// they determine the counters, so discarding them would change what the
// memory decrypts to, not just how well it is predicted. This is the
// "flush" half of the flush-vs-retain switch policy; retain is a no-op.
func (p *Predictor) FlushTransient() {
	p.lor, p.lorValid = 0, false
	for _, m := range p.pageDense {
		if m != nil {
			m.phv, m.phvFill = 0, 0
		}
	}
	for _, m := range p.pageSparse {
		m.phv, m.phvFill = 0, 0
	}
	for i := range p.rangeTable {
		p.rangeTable[i] = rangeEntry{}
	}
}

// Stats returns a copy of the accumulated statistics.
func (p *Predictor) Stats() Stats { return p.stats }

// Name reports the scheme name, for experiment output.
func (p *Predictor) Name() string { return p.cfg.Scheme.String() }

func (p *Predictor) vpage(vaddr uint64) uint64 { return vaddr / uint64(p.cfg.PageSize) }

func (p *Predictor) lineIndex(vaddr uint64) int {
	return int(vaddr % uint64(p.cfg.PageSize) / uint64(p.cfg.LineSize))
}

// densePageMax bounds the flat page directory: virtual pages below
// cover the first 4 GiB of address space at the default 4 KiB geometry.
const densePageMax = 1 << 20

// page returns (allocating if needed) the metadata for vaddr's page. A
// fresh page gets a random root — the model of the hardware RNG assigning
// a root when the virtual page is mapped.
func (p *Predictor) page(vaddr uint64) *pageMeta {
	vp := p.vpage(vaddr)
	if vp < densePageMax {
		if vp < uint64(len(p.pageDense)) {
			if m := p.pageDense[vp]; m != nil {
				return m
			}
		} else {
			grown := make([]*pageMeta, vp+64)
			copy(grown, p.pageDense)
			p.pageDense = grown
		}
		m := &pageMeta{root: p.rnd.Uint64()}
		p.pageDense[vp] = m
		p.pageCount++
		return m
	}
	if p.pageSparse == nil {
		p.pageSparse = make(map[uint64]*pageMeta)
	}
	m := p.pageSparse[vp]
	if m == nil {
		m = &pageMeta{root: p.rnd.Uint64()}
		p.pageSparse[vp] = m
		p.pageCount++
	}
	return m
}

// Root returns the current root sequence number for vaddr's page. The
// secure memory controller uses it to encrypt a line's initial contents
// (program-load image) — "all the cache lines of the same page use the
// same root OTP sequence number for their initial values".
func (p *Predictor) Root(vaddr uint64) uint64 { return p.page(vaddr).root }

// fromCurrentRoot reports whether seq plausibly counts from root.
func (p *Predictor) fromCurrentRoot(seq, root uint64) bool {
	return seq-root <= p.cfg.MaxRootDistance // wraps for seq < root → huge
}

// Predict returns the guessed sequence numbers for a missing line at
// vaddr, most-likely first, deduplicated. The returned slice is reused by
// the next call. SchemeNone returns nil.
func (p *Predictor) Predict(vaddr uint64) []uint64 {
	if p.cfg.Scheme == SchemeNone {
		return nil
	}
	m := p.page(vaddr)
	g := p.scratch[:0]

	base := m.root
	lo := uint64(0)
	if p.cfg.Scheme == SchemeTwoLevel {
		if r, ok := p.rangeLookup(vaddr); ok {
			lo = uint64(r) * p.rangeSpan
		}
	}
	for i := uint64(0); i <= uint64(p.cfg.Depth); i++ {
		g = append(g, base+lo+i)
	}

	if p.cfg.Scheme == SchemeContext && p.lorValid {
		swing := uint64(p.cfg.Swing)
		start := uint64(0)
		if p.lor > swing {
			start = p.lor - swing
		}
		for off := start; off <= p.lor+swing; off++ {
			g = appendUnique(g, base+off)
		}
	}

	if p.cfg.HistoryDepth > 0 {
		for _, old := range m.oldRoots {
			for i := uint64(0); i <= uint64(p.cfg.Depth); i++ {
				g = appendUnique(g, old+i)
			}
		}
	}

	p.scratch = g
	p.stats.Guesses += uint64(len(g))
	return g
}

func appendUnique(g []uint64, v uint64) []uint64 {
	for _, x := range g {
		if x == v {
			return g
		}
	}
	return append(g, v)
}

// Observe records the true sequence number fetched for vaddr together
// with the guess list Predict returned for this same fetch (nil when
// prediction was not consulted — Observe then records a miss); it
// updates the PHV (possibly resetting the page root) and the LOR, and
// reports whether the fetch was a prediction hit. It must be called once
// per memory fetch, whether or not Predict was consulted, when a
// prediction scheme is active.
//
// The guesses are passed explicitly rather than read from the
// predictor's internal buffer so that the confirmed depth is always
// attributed to the guess list that actually covered this fetch: an
// Observe for a fetch whose Predict was not the most recent call must
// not inherit another line's guesses.
func (p *Predictor) Observe(vaddr uint64, trueSeq uint64, guesses []uint64) bool {
	if p.cfg.Scheme == SchemeNone {
		return false
	}
	p.stats.Fetches++
	hit := false
	for i, g := range guesses {
		if g == trueSeq {
			hit = true
			p.stats.Hits++
			p.stats.HitDepth.Observe(uint64(i + 1))
			break
		}
	}
	m := p.page(vaddr)

	if p.cfg.Adaptive {
		bit := uint32(0)
		if !hit {
			bit = 1
		}
		mask := uint32(1)<<p.cfg.PHVBits - 1
		m.phv = (m.phv<<1 | bit) & mask
		if m.phvFill < p.cfg.PHVBits {
			m.phvFill++
		}
		if m.phvFill == p.cfg.PHVBits && popcount(m.phv) >= p.cfg.ResetThreshold {
			p.resetRoot(m)
		}
	}

	// LOR: offset of the most recent access, valid only when the seqnum
	// counts from the page's (possibly just reset) current root.
	if p.fromCurrentRoot(trueSeq, m.root) {
		p.lor = trueSeq - m.root
		p.lorValid = true
	}
	return hit
}

func (p *Predictor) resetRoot(m *pageMeta) {
	p.stats.Resets++
	if p.cfg.HistoryDepth > 0 {
		m.oldRoots = append([]uint64{m.root}, m.oldRoots...)
		if len(m.oldRoots) > p.cfg.HistoryDepth {
			m.oldRoots = m.oldRoots[:p.cfg.HistoryDepth]
		}
	}
	m.root = p.rnd.Uint64()
	m.phv = 0
	m.phvFill = 0
	// The LOR was an offset from the root just discarded; guessing at
	// newRoot+lor would spend pipeline slots on candidates no line can
	// hold. It revalidates at the next fetch that counts from a current
	// root.
	p.lorValid = false
}

// NextSeqForEvict returns the sequence number a dirty eviction of vaddr
// must be encrypted under, given the line's current number. Counters
// advancing from the current root increment; counters stranded on a
// discarded root re-base onto the current root (Section 3.2). The caller
// must use the returned value as the line's new stored counter.
func (p *Predictor) NextSeqForEvict(vaddr uint64, cur uint64) uint64 {
	m := p.page(vaddr)
	var next uint64
	if p.cfg.Scheme != SchemeNone && !p.fromCurrentRoot(cur, m.root) {
		p.stats.Rebases++
		next = m.root
	} else {
		next = cur + 1
	}
	if p.cfg.Scheme == SchemeTwoLevel {
		p.rangeUpdate(vaddr, next-m.root)
	}
	return next
}

// rangeLookup returns the stored range index for vaddr's line. Range
// info is backed by the page's security context, but the predictor can
// only consult the 64-entry on-chip table in time to steer speculation:
// when the page's entry is not resident, this fetch falls back to regular
// prediction while the entry refills for subsequent accesses.
func (p *Predictor) rangeLookup(vaddr uint64) (uint8, bool) {
	m := p.page(vaddr)
	if m.ranges == nil {
		return 0, false
	}
	resident := p.rangeTableResident(p.vpage(vaddr))
	p.touchRangeTable(p.vpage(vaddr)) // refill / refresh
	if !resident {
		return 0, false
	}
	return m.ranges[p.lineIndex(vaddr)], true
}

func (p *Predictor) rangeTableResident(vp uint64) bool {
	for i := range p.rangeTable {
		e := &p.rangeTable[i]
		if e.valid && e.vpage == vp {
			return true
		}
	}
	return false
}

// rangeUpdate records the new offset's range for vaddr's line.
func (p *Predictor) rangeUpdate(vaddr uint64, offset uint64) {
	if offset > p.cfg.MaxRootDistance {
		return // stale offset; don't poison the table
	}
	m := p.page(vaddr)
	if m.ranges == nil {
		m.ranges = make([]uint8, p.linesPerPage)
	}
	p.touchRangeTable(p.vpage(vaddr))
	r := offset / p.rangeSpan
	if r > uint64(p.maxRange) {
		r = uint64(p.maxRange)
	}
	m.ranges[p.lineIndex(vaddr)] = uint8(r)
}

// touchRangeTable maintains the on-chip table's LRU state and eviction
// count for the 64-entry structure.
func (p *Predictor) touchRangeTable(vp uint64) {
	p.rangeClock++
	for i := range p.rangeTable {
		e := &p.rangeTable[i]
		if e.valid && e.vpage == vp {
			e.lastUse = p.rangeClock
			return
		}
	}
	victim := &p.rangeTable[0]
	for i := range p.rangeTable {
		e := &p.rangeTable[i]
		if !e.valid {
			victim = e
			break
		}
		if e.lastUse < victim.lastUse {
			victim = e
		}
	}
	if victim.valid {
		p.stats.RangeEvictions++
	}
	*victim = rangeEntry{vpage: vp, valid: true, lastUse: p.rangeClock}
}

func popcount(x uint32) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// WarmRange seeds the two-level scheme's range information for vaddr's
// line at the given counter offset. The paper's fast-forward phase
// simulates the prediction mechanism, so range state — like the counters
// themselves — arrives warm at the measured window. A no-op for other
// schemes.
func (p *Predictor) WarmRange(vaddr uint64, offset uint64) {
	if p.cfg.Scheme != SchemeTwoLevel {
		return
	}
	p.rangeUpdate(vaddr, offset)
}

// PageCount reports how many pages have metadata (touched pages).
func (p *Predictor) PageCount() int { return p.pageCount }
