package predictor

import (
	"testing"
	"testing/quick"
)

func newPred(s Scheme) *Predictor { return New(DefaultConfig(s)) }

// hitList fabricates the guess list an Observe should see: the true
// sequence number when the test wants a hit, nothing when it wants a
// miss.
func hitList(p *Predictor, addr uint64, hit bool) []uint64 {
	if hit {
		return []uint64{p.Root(addr)}
	}
	return nil
}

func contains(g []uint64, v uint64) bool {
	for _, x := range g {
		if x == v {
			return true
		}
	}
	return false
}

func TestSchemeNone(t *testing.T) {
	p := newPred(SchemeNone)
	if g := p.Predict(0x1000); g != nil {
		t.Fatalf("SchemeNone predicted %v", g)
	}
	p.Observe(0x1000, 5, nil)
	if p.Stats().Fetches != 0 {
		t.Fatal("SchemeNone recorded a fetch")
	}
	if p.NextSeqForEvict(0x1000, 7) != 8 {
		t.Fatal("SchemeNone must still increment counters")
	}
}

func TestRegularGuessesRootRange(t *testing.T) {
	p := newPred(SchemeRegular)
	root := p.Root(0x4000)
	g := p.Predict(0x4000)
	if len(g) != p.Config().Depth+1 {
		t.Fatalf("got %d guesses, want %d", len(g), p.Config().Depth+1)
	}
	for i := 0; i <= p.Config().Depth; i++ {
		if g[i] != root+uint64(i) {
			t.Fatalf("guess %d = %d, want root+%d", i, g[i], i)
		}
	}
}

func TestSameRootWithinPageDifferentAcrossPages(t *testing.T) {
	p := newPred(SchemeRegular)
	if p.Root(0x4000) != p.Root(0x4fe0) {
		t.Fatal("lines of the same page got different roots")
	}
	if p.Root(0x4000) == p.Root(0x5000) {
		t.Fatal("different pages share a root (collision with deterministic seed)")
	}
}

func TestPredictHitOnFreshLine(t *testing.T) {
	// A never-written line keeps its initial counter = root, which the
	// regular predictor always covers.
	p := newPred(SchemeRegular)
	root := p.Root(0x8000)
	if !contains(p.Predict(0x8000), root) {
		t.Fatal("fresh line's counter not predicted")
	}
}

func TestPredictHitAfterFewUpdates(t *testing.T) {
	p := newPred(SchemeRegular)
	addr := uint64(0x8000)
	seq := p.Root(addr)
	for i := 0; i < p.Config().Depth; i++ {
		seq = p.NextSeqForEvict(addr, seq)
	}
	if !contains(p.Predict(addr), seq) {
		t.Fatalf("counter after %d updates not predicted", p.Config().Depth)
	}
	seq = p.NextSeqForEvict(addr, seq) // one beyond the depth
	if contains(p.Predict(addr), seq) {
		t.Fatal("counter beyond prediction depth unexpectedly predicted")
	}
}

func TestObserveStats(t *testing.T) {
	p := newPred(SchemeRegular)
	g := p.Predict(0x1000)
	if !p.Observe(0x1000, p.Root(0x1000), g) {
		t.Fatal("root guess not confirmed as a hit")
	}
	p.Observe(0x1000, 12345, nil)
	s := p.Stats()
	if s.Fetches != 2 || s.Hits != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if s.HitRate() != 0.5 {
		t.Fatalf("hit rate = %v", s.HitRate())
	}
	if s.Guesses != uint64(p.Config().Depth+1) {
		t.Fatalf("guesses = %d", s.Guesses)
	}
}

func TestAdaptiveResetAfterSustainedMisses(t *testing.T) {
	p := newPred(SchemeRegular)
	addr := uint64(0x2000)
	oldRoot := p.Root(addr)
	// Fill the 16-bit PHV with misses; at threshold 12 the root resets.
	for i := 0; i < p.Config().PHVBits; i++ {
		p.Observe(addr, 999999, nil)
	}
	if p.Stats().Resets == 0 {
		t.Fatal("no reset after sustained misses")
	}
	if p.Root(addr) == oldRoot {
		t.Fatal("root unchanged after reset")
	}
}

func TestNoResetBeforePHVFull(t *testing.T) {
	// The PHV must observe a full window before a reset can trigger —
	// otherwise a few cold misses would thrash roots.
	p := newPred(SchemeRegular)
	addr := uint64(0x2000)
	for i := 0; i < p.Config().ResetThreshold; i++ {
		p.Observe(addr, 999999, nil)
	}
	if p.Stats().Resets != 0 {
		t.Fatal("reset before PHV window filled")
	}
}

func TestNoResetWhenMostlyHitting(t *testing.T) {
	p := newPred(SchemeRegular)
	addr := uint64(0x3000)
	for i := 0; i < 100; i++ {
		p.Observe(addr, p.Root(addr), hitList(p, addr, i%2 == 0)) // 50% misses < 12/16
	}
	if p.Stats().Resets != 0 {
		t.Fatalf("resets = %d with miss rate below threshold", p.Stats().Resets)
	}
	for i := 0; i < 100; i++ {
		p.Observe(addr, p.Root(addr), hitList(p, addr, i%8 != 0)) // 12.5% misses
	}
	if p.Stats().Resets != 0 {
		t.Fatal("reset while prediction healthy")
	}
}

func TestNonAdaptiveNeverResets(t *testing.T) {
	cfg := DefaultConfig(SchemeRegular)
	cfg.Adaptive = false
	p := New(cfg)
	for i := 0; i < 200; i++ {
		p.Observe(0x1000, 999999, nil)
	}
	if p.Stats().Resets != 0 {
		t.Fatal("non-adaptive predictor reset a root")
	}
}

func TestRebaseAfterReset(t *testing.T) {
	p := newPred(SchemeRegular)
	addr := uint64(0x6000)
	seq := p.NextSeqForEvict(addr, p.Root(addr)) // root+1, from current root
	// Force a reset.
	for i := 0; i < p.Config().PHVBits; i++ {
		p.Observe(addr, 0xdeadbeef, nil)
	}
	newRoot := p.Root(addr)
	next := p.NextSeqForEvict(addr, seq)
	if next != newRoot {
		t.Fatalf("evict after reset gave %d, want re-base to new root %d", next, newRoot)
	}
	if p.Stats().Rebases != 1 {
		t.Fatalf("rebases = %d, want 1", p.Stats().Rebases)
	}
	// And prediction covers the re-based line again.
	if !contains(p.Predict(addr), next) {
		t.Fatal("re-based counter not predicted")
	}
}

func TestContextPredictionCoversLOR(t *testing.T) {
	p := newPred(SchemeContext)
	addr := uint64(0x9000)
	root := p.Root(addr)
	// Observe a fetch at offset 20 — far outside the regular depth.
	p.Observe(addr, root+20, nil)
	g := p.Predict(addr)
	for off := uint64(17); off <= 23; off++ { // swing 3 around LOR=20
		if !contains(g, root+off) {
			t.Fatalf("context guess missing offset %d: %v", off, g)
		}
	}
	// Regular guesses still present.
	if !contains(g, root) || !contains(g, root+5) {
		t.Fatal("regular guesses missing from context prediction")
	}
	maxGuesses := (p.Config().Depth + 1) + (2*p.Config().Swing + 1)
	if len(g) > maxGuesses {
		t.Fatalf("%d guesses exceed max %d", len(g), maxGuesses)
	}
}

func TestContextLORCrossesPages(t *testing.T) {
	// The LOR is a single register: an offset learned on page A guides
	// prediction on page B (spatial coherence of update counts).
	p := newPred(SchemeContext)
	a, b := uint64(0x10000), uint64(0x20000)
	p.Observe(a, p.Root(a)+9, nil)
	if !contains(p.Predict(b), p.Root(b)+9) {
		t.Fatal("LOR offset not applied across pages")
	}
}

func TestContextGuessDedup(t *testing.T) {
	p := newPred(SchemeContext)
	addr := uint64(0xa000)
	p.Observe(addr, p.Root(addr)+1, []uint64{p.Root(addr) + 1}) // LOR=1 overlaps regular range
	g := p.Predict(addr)
	seen := map[uint64]bool{}
	for _, v := range g {
		if seen[v] {
			t.Fatalf("duplicate guess %d in %v", v, g)
		}
		seen[v] = true
	}
}

func TestContextLORClampAtZero(t *testing.T) {
	p := newPred(SchemeContext)
	addr := uint64(0xb000)
	root := p.Root(addr)
	p.Observe(addr, root+1, []uint64{root + 1}) // LOR=1 < swing → lower bound clamps to 0
	g := p.Predict(addr)
	for _, v := range g {
		if v-root > uint64(p.Config().Depth) && v-root > uint64(1+p.Config().Swing) {
			t.Fatalf("guess offset %d outside any window", v-root)
		}
	}
}

func TestTwoLevelExtendsReach(t *testing.T) {
	p := newPred(SchemeTwoLevel)
	addr := uint64(0xc000)
	seq := p.Root(addr)
	// Evict the line 23 times: offset 23 is in range index 3 ([18,23] with
	// span 6). Regular prediction (depth 5) could never reach it.
	for i := 0; i < 23; i++ {
		seq = p.NextSeqForEvict(addr, seq)
	}
	if !contains(p.Predict(addr), seq) {
		t.Fatalf("two-level failed to predict offset 23 (guesses %v, root %d)", p.Predict(addr), p.Root(addr))
	}
}

func TestTwoLevelFallsBackWithoutEntry(t *testing.T) {
	p := newPred(SchemeTwoLevel)
	addr := uint64(0xd000)
	g := p.Predict(addr) // page never evicted anything → no range entry
	root := p.Root(addr)
	if g[0] != root || len(g) != p.Config().Depth+1 {
		t.Fatalf("fallback guesses = %v, want regular range at root", g)
	}
}

func TestTwoLevelTableEviction(t *testing.T) {
	cfg := DefaultConfig(SchemeTwoLevel)
	cfg.RangeTableEntries = 2
	p := New(cfg)
	pageAddr := func(i int) uint64 { return uint64(i) * 4096 }
	for i := 0; i < 3; i++ {
		a := pageAddr(i)
		seq := p.Root(a)
		for j := 0; j < 8; j++ {
			seq = p.NextSeqForEvict(a, seq)
		}
	}
	if p.Stats().RangeEvictions == 0 {
		t.Fatal("no range-table evictions with 3 pages in 2 entries")
	}
	// Range info is backed by the page's security context (Section 7.2
	// stores 256 bits per page), but the on-chip table must be resident
	// to steer speculation: the first access after displacement falls
	// back to regular prediction while the entry refills, and the next
	// access predicts the deep offset again.
	a := pageAddr(0)
	if contains(p.Predict(a), p.Root(a)+8) {
		t.Fatal("displaced range entry used without a refill")
	}
	if !contains(p.Predict(a), p.Root(a)+8) {
		t.Fatal("range info not recovered after refill")
	}
}

func TestTwoLevelRangeClamped(t *testing.T) {
	cfg := DefaultConfig(SchemeTwoLevel)
	cfg.RangeBits = 2 // 4 ranges, matching Section 7.2's example
	p := New(cfg)
	addr := uint64(0xe000)
	seq := p.Root(addr)
	for i := 0; i < 40; i++ { // offset 40 ≫ 4 ranges × span 6
		seq = p.NextSeqForEvict(addr, seq)
	}
	g := p.Predict(addr)
	root := p.Root(addr)
	// Clamped to the top range [18,23]; guesses start at 18.
	if g[0] != root+18 {
		t.Fatalf("clamped range starts at offset %d, want 18", g[0]-root)
	}
}

func TestRootHistoryPredictsOldRoots(t *testing.T) {
	cfg := DefaultConfig(SchemeRegular)
	cfg.HistoryDepth = 1
	p := New(cfg)
	addr := uint64(0xf000)
	oldRoot := p.Root(addr)
	for i := 0; i < cfg.PHVBits; i++ {
		p.Observe(addr, 0xabcdef, nil)
	}
	if p.Root(addr) == oldRoot {
		t.Fatal("expected reset")
	}
	g := p.Predict(addr)
	if !contains(g, oldRoot) || !contains(g, oldRoot+uint64(cfg.Depth)) {
		t.Fatal("old root range not predicted with history enabled")
	}
}

func TestRootHistoryBounded(t *testing.T) {
	cfg := DefaultConfig(SchemeRegular)
	cfg.HistoryDepth = 2
	p := New(cfg)
	addr := uint64(0x11000)
	for r := 0; r < 5; r++ {
		for i := 0; i < cfg.PHVBits; i++ {
			p.Observe(addr, 0xabcdef, nil)
		}
	}
	if p.Stats().Resets < 3 {
		t.Fatalf("resets = %d, want several", p.Stats().Resets)
	}
	g := p.Predict(addr)
	max := (cfg.Depth + 1) * (1 + cfg.HistoryDepth)
	if len(g) > max {
		t.Fatalf("%d guesses exceed bound %d with history depth 2", len(g), max)
	}
}

func TestPHVClearedOnReset(t *testing.T) {
	p := newPred(SchemeRegular)
	addr := uint64(0x12000)
	for i := 0; i < p.Config().PHVBits; i++ {
		p.Observe(addr, 0xabc, nil)
	}
	resets := p.Stats().Resets
	if resets != 1 {
		t.Fatalf("resets = %d, want 1", resets)
	}
	// One more miss must NOT immediately re-trigger (PHV was cleared).
	p.Observe(addr, 0xabc, nil)
	if p.Stats().Resets != resets {
		t.Fatal("reset re-triggered before PHV refilled")
	}
}

func TestMonotoneCountersUnique(t *testing.T) {
	// Property: the counter stream a line is assigned never repeats a
	// value (one-time-pad safety), even across resets.
	f := func(evictions uint8, resetAt uint8) bool {
		p := newPred(SchemeRegular)
		addr := uint64(0x13000)
		seen := map[uint64]bool{}
		seq := p.Root(addr)
		seen[seq] = true
		for i := 0; i < int(evictions%50)+2; i++ {
			if i == int(resetAt%20) {
				for j := 0; j < p.Config().PHVBits; j++ {
					p.Observe(addr, 0xffffffffff, nil)
				}
			}
			seq = p.NextSeqForEvict(addr, seq)
			if seen[seq] {
				return false
			}
			seen[seq] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestBadConfigsPanic(t *testing.T) {
	bad := []Config{
		{Scheme: SchemeRegular, Depth: -1, PageSize: 4096, LineSize: 32, PHVBits: 16, ResetThreshold: 12},
		{Scheme: SchemeRegular, Depth: 5, PageSize: 100, LineSize: 32, PHVBits: 16, ResetThreshold: 12},
		{Scheme: SchemeRegular, Depth: 5, PageSize: 4096, LineSize: 32, PHVBits: 0, ResetThreshold: 12},
		{Scheme: SchemeRegular, Depth: 5, PageSize: 4096, LineSize: 32, PHVBits: 16, ResetThreshold: 20},
		{Scheme: SchemeTwoLevel, Depth: 5, PageSize: 4096, LineSize: 32, PHVBits: 16, ResetThreshold: 12, RangeTableEntries: 0},
	}
	for i, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("bad config %d did not panic", i)
				}
			}()
			New(cfg)
		}()
	}
}

func TestSchemeString(t *testing.T) {
	for s, want := range map[Scheme]string{
		SchemeNone: "none", SchemeRegular: "regular",
		SchemeTwoLevel: "two-level", SchemeContext: "context",
		Scheme(42): "Scheme(42)",
	} {
		if got := s.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", s, got, want)
		}
	}
}

func TestPageCount(t *testing.T) {
	p := newPred(SchemeRegular)
	p.Root(0x0)
	p.Root(0x1000)
	p.Root(0x1040)
	if p.PageCount() != 2 {
		t.Fatalf("PageCount = %d, want 2", p.PageCount())
	}
}

func TestPopcount(t *testing.T) {
	for _, tc := range []struct {
		x uint32
		n int
	}{{0, 0}, {1, 1}, {0xffff, 16}, {0b1010, 2}} {
		if got := popcount(tc.x); got != tc.n {
			t.Errorf("popcount(%#x) = %d, want %d", tc.x, got, tc.n)
		}
	}
}

func TestHitDepthAttributedToOwnGuessList(t *testing.T) {
	// Regression: Observe used to scan the predictor's internal scratch
	// buffer — whatever Predict ran last — so a hit confirmed for a fetch
	// whose Predict was not the most recent call attributed the depth to
	// another line's guess list. The confirming list is now passed
	// explicitly.
	p := newPred(SchemeContext)
	a, b := uint64(0x1000), uint64(0x200000)
	rootA := p.Root(a)
	gA := append([]uint64(nil), p.Predict(a)...) // snapshot; Predict reuses its buffer
	// A second line's fetch runs in between: its Observe moves the LOR and
	// its Predict overwrites the internal buffer with guesses that do not
	// contain A's counter at the same position.
	p.Observe(b, p.Root(b)+40, nil)
	p.Predict(b)
	trueSeq := rootA + 3 // position 4 in A's guess list
	if !p.Observe(a, trueSeq, gA) {
		t.Fatal("hit in A's own guess list not confirmed")
	}
	h := p.Stats().HitDepth
	if h.Total != 1 || h.Sum != 4 {
		t.Fatalf("hit depth total/sum = %d/%d, want 1/4 (depth taken from A's list)", h.Total, h.Sum)
	}
}

func TestResetInvalidatesLOR(t *testing.T) {
	// Regression: an adaptive root reset used to leave the LOR valid, so
	// context prediction kept guessing newRoot+lor — an offset relative to
	// the discarded root — inflating Guesses with candidates no line can
	// hold.
	p := newPred(SchemeContext)
	addr := uint64(0x5000)
	root := p.Root(addr)
	p.Observe(addr, root+20, nil) // LOR = 20, valid, outside the regular depth
	withLOR := p.Config().Depth + 1 + 2*p.Config().Swing + 1
	if n := len(p.Predict(addr)); n != withLOR {
		t.Fatalf("guesses with LOR = %d, want %d", n, withLOR)
	}
	guessesBefore := p.Stats().Guesses
	// Sustained misses reset the page root.
	for i := 0; i < p.Config().PHVBits; i++ {
		p.Observe(addr, 0xdead, nil)
	}
	if p.Stats().Resets == 0 {
		t.Fatal("expected an adaptive reset")
	}
	g := p.Predict(addr)
	if n := p.Config().Depth + 1; len(g) != n {
		t.Fatalf("guesses after reset = %d, want %d (LOR offsets die with their root)", len(g), n)
	}
	if got, want := p.Stats().Guesses-guessesBefore, uint64(p.Config().Depth+1); got != want {
		t.Fatalf("Guesses grew by %d across the reset, want %d", got, want)
	}
	// The LOR revalidates at the next fetch counting from a live root.
	p.Observe(addr, p.Root(addr)+9, nil)
	if n := len(p.Predict(addr)); n <= p.Config().Depth+1 {
		t.Fatalf("LOR did not revalidate: %d guesses", n)
	}
}

func TestPredictorAccountingProperties(t *testing.T) {
	// Property-style sweep over every scheme (plus a root-history
	// variant): Predict's guesses are always deduplicated, Stats.Guesses
	// equals the summed lengths of the returned guess lists, and the hit
	// depth histogram records exactly one sample per hit.
	configs := map[string]Config{
		"regular":  DefaultConfig(SchemeRegular),
		"twolevel": DefaultConfig(SchemeTwoLevel),
		"context":  DefaultConfig(SchemeContext),
	}
	hist := DefaultConfig(SchemeRegular)
	hist.HistoryDepth = 2
	configs["regular+history"] = hist

	for name, cfg := range configs {
		t.Run(name, func(t *testing.T) {
			p := New(cfg)
			rnd := uint64(0x9e3779b97f4a7c15)
			next := func(n uint64) uint64 { // xorshift; deterministic, no global rand
				rnd ^= rnd << 13
				rnd ^= rnd >> 7
				rnd ^= rnd << 17
				return rnd % n
			}
			lineSeq := map[uint64]uint64{}
			var guessSum, fetches, hits uint64
			for i := 0; i < 3000; i++ {
				addr := next(8)*4096 + next(16)*32
				cur, ok := lineSeq[addr]
				if !ok {
					cur = p.Root(addr)
				}
				switch next(3) {
				case 0: // fetch: predict then observe the line's true counter
					g := p.Predict(addr)
					seen := make(map[uint64]bool, len(g))
					for _, v := range g {
						if seen[v] {
							t.Fatalf("duplicate guess %d in %v", v, g)
						}
						seen[v] = true
					}
					guessSum += uint64(len(g))
					trueSeq := cur
					if next(4) == 0 {
						trueSeq = next(1 << 40) // junk counter: certain miss territory
					}
					fetches++
					if p.Observe(addr, trueSeq, g) {
						hits++
					}
				case 1: // dirty eviction advances the counter
					lineSeq[addr] = p.NextSeqForEvict(addr, cur)
				case 2: // fetch that never consulted the predictor
					fetches++
					if p.Observe(addr, cur, nil) {
						t.Fatal("Observe(nil guesses) reported a hit")
					}
				}
			}
			s := p.Stats()
			if s.Guesses != guessSum {
				t.Errorf("Stats.Guesses = %d, want summed list lengths %d", s.Guesses, guessSum)
			}
			if s.Fetches != fetches || s.Hits != hits {
				t.Errorf("fetches/hits = %d/%d, want %d/%d", s.Fetches, s.Hits, fetches, hits)
			}
			if s.HitDepth.Total != s.Hits {
				t.Errorf("HitDepth total %d != hits %d", s.HitDepth.Total, s.Hits)
			}
			if s.Hits > s.Fetches {
				t.Errorf("hits %d exceed fetches %d", s.Hits, s.Fetches)
			}
			if hits == 0 {
				t.Error("property run produced no hits; workload not exercising prediction")
			}
		})
	}
}

func BenchmarkPredictRegular(b *testing.B) {
	p := newPred(SchemeRegular)
	for i := 0; i < b.N; i++ {
		p.Predict(uint64(i%1024) * 32)
	}
}

func BenchmarkPredictContext(b *testing.B) {
	p := newPred(SchemeContext)
	p.Observe(0, p.Root(0)+9, nil)
	for i := 0; i < b.N; i++ {
		p.Predict(uint64(i%1024) * 32)
	}
}
