package sha256

import (
	"bytes"
	"encoding/hex"
	"testing"
	"testing/quick"
)

// NIST / FIPS 180-4 known-answer vectors.
var vectors = []struct {
	in   string
	want string
}{
	{"", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"},
	{"abc", "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"},
	{"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
		"248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"},
	{"The quick brown fox jumps over the lazy dog",
		"d7a8fbb307d7809469ca9abcb0082e4f8d5651e46d3cdb762d02d0bf37c9e592"},
}

func TestVectors(t *testing.T) {
	for _, v := range vectors {
		got := Sum256([]byte(v.in))
		if hex.EncodeToString(got[:]) != v.want {
			t.Errorf("SHA256(%q) = %x, want %s", v.in, got, v.want)
		}
	}
}

func TestMillionA(t *testing.T) {
	// FIPS 180-4: one million 'a' characters.
	d := New()
	block := bytes.Repeat([]byte{'a'}, 1000)
	for i := 0; i < 1000; i++ {
		d.Write(block)
	}
	want := "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
	if got := hex.EncodeToString(d.Sum(nil)); got != want {
		t.Fatalf("SHA256(1M 'a') = %s, want %s", got, want)
	}
}

func TestIncrementalMatchesOneShot(t *testing.T) {
	f := func(a, b, c []byte) bool {
		d := New()
		d.Write(a)
		d.Write(b)
		d.Write(c)
		var whole []byte
		whole = append(whole, a...)
		whole = append(whole, b...)
		whole = append(whole, c...)
		want := Sum256(whole)
		return bytes.Equal(d.Sum(nil), want[:])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSumDoesNotConsumeState(t *testing.T) {
	d := New()
	d.Write([]byte("ab"))
	first := d.Sum(nil)
	second := d.Sum(nil)
	if !bytes.Equal(first, second) {
		t.Fatal("Sum consumed state")
	}
	d.Write([]byte("c"))
	want := Sum256([]byte("abc"))
	if !bytes.Equal(d.Sum(nil), want[:]) {
		t.Fatal("Write after Sum produced wrong digest")
	}
}

func TestReset(t *testing.T) {
	d := New()
	d.Write([]byte("garbage"))
	d.Reset()
	d.Write([]byte("abc"))
	want := Sum256([]byte("abc"))
	if !bytes.Equal(d.Sum(nil), want[:]) {
		t.Fatal("Reset did not restore initial state")
	}
}

func TestSumAppends(t *testing.T) {
	d := New()
	d.Write([]byte("abc"))
	out := d.Sum([]byte{0xaa, 0xbb})
	if out[0] != 0xaa || out[1] != 0xbb || len(out) != 2+Size {
		t.Fatalf("Sum append misbehaved: % x", out[:4])
	}
}

// RFC 4231 HMAC-SHA-256 test cases.
func TestHMACVectors(t *testing.T) {
	unhex := func(s string) []byte {
		b, err := hex.DecodeString(s)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	cases := []struct{ key, msg, want string }{
		{
			"0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b",
			hex.EncodeToString([]byte("Hi There")),
			"b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7",
		},
		{
			hex.EncodeToString([]byte("Jefe")),
			hex.EncodeToString([]byte("what do ya want for nothing?")),
			"5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843",
		},
		{ // key longer than the block size (131 bytes of 0xaa)
			hex.EncodeToString(bytes.Repeat([]byte{0xaa}, 131)),
			hex.EncodeToString([]byte("Test Using Larger Than Block-Size Key - Hash Key First")),
			"60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54",
		},
	}
	for i, c := range cases {
		got := HMAC(unhex(c.key), unhex(c.msg))
		if hex.EncodeToString(got[:]) != c.want {
			t.Errorf("case %d: HMAC = %x, want %s", i, got, c.want)
		}
	}
}

func TestHMACKeySeparation(t *testing.T) {
	m := []byte("message")
	if HMAC([]byte("k1"), m) == HMAC([]byte("k2"), m) {
		t.Fatal("different keys, same MAC")
	}
	if HMAC([]byte("k"), []byte("a")) == HMAC([]byte("k"), []byte("b")) {
		t.Fatal("different messages, same MAC")
	}
}

func BenchmarkSum256(b *testing.B) {
	buf := make([]byte, 4096)
	b.SetBytes(4096)
	for i := 0; i < b.N; i++ {
		Sum256(buf)
	}
}

func BenchmarkHMAC(b *testing.B) {
	key := []byte("0123456789abcdef0123456789abcdef")
	msg := make([]byte, 64)
	b.SetBytes(64)
	for i := 0; i < b.N; i++ {
		HMAC(key, msg)
	}
}
