package runpool

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPoolRunsSubmittedTasks(t *testing.T) {
	p := NewPool(4, 16)
	var n atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		// Retry on saturation, as a load-shedding client would: 32 rapid
		// submissions legitimately overrun 4 workers + 16 backlog.
		for {
			err := p.TrySubmit("task", func() {
				defer wg.Done()
				n.Add(1)
			})
			if err == nil {
				break
			}
			if !errors.Is(err, ErrPoolSaturated) {
				wg.Done()
				t.Fatalf("TrySubmit: %v", err)
			}
			time.Sleep(time.Millisecond)
		}
	}
	wg.Wait()
	if n.Load() != 32 {
		t.Fatalf("ran %d tasks, want 32", n.Load())
	}
	s := p.Stats()
	if s.Submitted != 32 || s.Completed != 32 {
		t.Fatalf("stats = %+v", s)
	}
	if err := p.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}

func TestPoolSaturationRejects(t *testing.T) {
	p := NewPool(1, 1)
	block := make(chan struct{})
	started := make(chan struct{})
	if err := p.TrySubmit("blocker", func() { close(started); <-block }); err != nil {
		t.Fatalf("first submit: %v", err)
	}
	<-started // worker occupied
	if err := p.TrySubmit("backlogged", func() {}); err != nil {
		t.Fatalf("backlog submit: %v", err)
	}
	// Worker busy + backlog full → saturation.
	err := p.TrySubmit("overflow", func() {})
	if !errors.Is(err, ErrPoolSaturated) {
		t.Fatalf("overflow submit = %v, want ErrPoolSaturated", err)
	}
	if s := p.Stats(); s.Rejected != 1 || s.Pending != 1 || s.Running != 1 {
		t.Fatalf("stats = %+v", s)
	}
	close(block)
	if err := p.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}

func TestPoolShutdownDrainsBacklog(t *testing.T) {
	p := NewPool(1, 8)
	var ran atomic.Int64
	gate := make(chan struct{})
	started := make(chan struct{})
	p.TrySubmit("gate", func() { close(started); <-gate; ran.Add(1) })
	<-started
	for i := 0; i < 4; i++ {
		if err := p.TrySubmit("queued", func() { ran.Add(1) }); err != nil {
			t.Fatalf("queued submit: %v", err)
		}
	}
	done := make(chan error, 1)
	go func() { done <- p.Shutdown(context.Background()) }()
	// Admission stops immediately, even while the drain is in flight.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if err := p.TrySubmit("late", func() {}); errors.Is(err, ErrPoolClosed) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("TrySubmit still accepted after Shutdown began")
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	if err := <-done; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if ran.Load() != 5 {
		t.Fatalf("drained %d tasks, want all 5 admitted before shutdown", ran.Load())
	}
}

func TestPoolShutdownDeadline(t *testing.T) {
	p := NewPool(1, 0)
	block := make(chan struct{})
	started := make(chan struct{})
	p.TrySubmit("stuck", func() { close(started); <-block })
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := p.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown = %v, want DeadlineExceeded while a task is stuck", err)
	}
	close(block)
	if err := p.Shutdown(context.Background()); err != nil {
		t.Fatalf("second Shutdown: %v", err)
	}
}

func TestPoolContainsPanics(t *testing.T) {
	p := NewPool(1, 4)
	var got atomic.Pointer[PanicError]
	p.OnPanic = func(pe *PanicError) { got.Store(pe) }
	var wg sync.WaitGroup
	wg.Add(1)
	p.TrySubmit("bomb", func() { defer wg.Done(); panic("boom") })
	wg.Wait()
	// The worker must survive to run the next task.
	ok := make(chan struct{})
	if err := p.TrySubmit("after", func() { close(ok) }); err != nil {
		t.Fatalf("submit after panic: %v", err)
	}
	<-ok
	if err := p.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if s := p.Stats(); s.Panics != 1 {
		t.Fatalf("panics = %d, want 1", s.Panics)
	}
	if pe := got.Load(); pe == nil || pe.Label != "bomb" || pe.Value != "boom" {
		t.Fatalf("OnPanic got %+v", got.Load())
	}
}

func TestPoolStatsOccupancy(t *testing.T) {
	cases := []struct {
		workers, running int
		want             float64
	}{
		{4, 0, 0},
		{4, 2, 0.5},
		{4, 4, 1},
		{0, 3, 0}, // degenerate stats never divide by zero
	}
	for _, tc := range cases {
		ps := PoolStats{Workers: tc.workers, Running: tc.running}
		if got := ps.Occupancy(); got != tc.want {
			t.Errorf("Occupancy(workers=%d running=%d) = %g, want %g", tc.workers, tc.running, got, tc.want)
		}
	}
}
