// Package runpool executes independent simulation jobs across a bounded
// pool of workers and assembles their results in deterministic input
// order.
//
// Every experiment sweep in this repository is embarrassingly parallel:
// each (benchmark, scheme) simulation is an isolated machine driven only
// by its seed, mirroring the paper's evaluation methodology (Section 5),
// where every data point is an independent SimpleScalar run. The pool
// exploits that independence for wall-clock speed while keeping the
// assembled output — tables, series maps, even the error reported on
// failure — byte-identical to a sequential run: results land in the slot
// of their input index, and the error returned is always the
// lowest-index failure regardless of completion order.
//
// Runs are cancellable: RunContext stops dispatching new jobs once the
// context is done, jobs receive the context so they can abandon work at
// their own checkpoints, and the returned *PartialError records which
// jobs finished before the interruption.
//
// A panicking job does not kill the sweep: the panic is captured as a
// *PanicError labeled with the job, and surfaces through the normal
// error path.
package runpool

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
	"time"
)

// Job is one unit of independent work producing a T.
type Job[T any] struct {
	// Label identifies the job in progress updates and panic errors,
	// e.g. "Figure 7 mcf/pred-regular".
	Label string
	// Fn computes the job's value. It must not share mutable state with
	// other jobs. The context is the run's context (plus any per-job
	// deadline the caller layered on); long jobs should poll it and
	// return its error to make cancellation prompt.
	Fn func(ctx context.Context) (T, error)
}

// Update describes one finished job. Progress callbacks receive updates
// in completion order (not input order), serialized — never concurrently.
type Update struct {
	// Index is the job's position in the input slice.
	Index int
	// Label is the job's label.
	Label string
	// Err is the job's failure, if any (panics arrive as *PanicError).
	Err error
	// Elapsed is the job's wall-clock duration.
	Elapsed time.Duration
	// Done counts jobs finished so far, including this one.
	Done int
	// Total is the number of jobs in the run.
	Total int
}

// Options configures a Run.
type Options struct {
	// Workers caps concurrent jobs; <= 0 means DefaultWorkers().
	Workers int
	// Progress, when non-nil, is called once per finished job. Jobs
	// skipped because the context was cancelled before they started do
	// not produce updates.
	Progress func(Update)
}

// PanicError is the error a job that panicked fails with.
type PanicError struct {
	// Label is the panicking job's label.
	Label string
	// Value is the value passed to panic.
	Value any
	// Stack is the goroutine stack at the point of the panic.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("job %q panicked: %v", e.Label, e.Value)
}

// PartialError reports a run interrupted by context cancellation or
// deadline expiry: which jobs completed successfully before the
// interruption, and the context error that caused it. errors.Is sees
// through it to the cause (context.Canceled / context.DeadlineExceeded),
// so callers branch on the standard sentinels.
type PartialError struct {
	// Cause is the context error that interrupted the run.
	Cause error
	// Completed lists the labels of jobs that finished without error, in
	// input order. Their results are present in the returned slice.
	Completed []string
	// Total is the number of jobs the run was asked to execute.
	Total int
}

func (e *PartialError) Error() string {
	msg := fmt.Sprintf("run interrupted (%v) after %d/%d jobs", e.Cause, len(e.Completed), e.Total)
	if n := len(e.Completed); n > 0 && n <= 8 {
		msg += ": finished " + strings.Join(e.Completed, ", ")
	}
	return msg
}

// Unwrap exposes the context error for errors.Is.
func (e *PartialError) Unwrap() error { return e.Cause }

// DefaultWorkers is the worker count used when Options.Workers <= 0:
// one per available CPU.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// Run executes every job across the pool with a background context; see
// RunContext.
func Run[T any](opt Options, jobs []Job[T]) ([]T, error) {
	return RunContext(context.Background(), opt, jobs)
}

// RunContext executes every job across the pool and returns their values
// in input order.
//
// While ctx is live, all jobs run even if some fail; if any failed,
// RunContext returns the error of the lowest-index failed job (so the
// reported error does not depend on scheduling), alongside the partial
// results — slots of failed jobs hold T's zero value.
//
// When ctx is cancelled mid-run, jobs not yet started are skipped,
// in-flight jobs are left to notice the cancellation themselves, and the
// returned error is a *PartialError wrapping ctx.Err() that lists the
// jobs that did finish; their results are valid in the returned slice.
func RunContext[T any](ctx context.Context, opt Options, jobs []Job[T]) ([]T, error) {
	results := make([]T, len(jobs))
	errs := make([]error, len(jobs))
	skipped := make([]bool, len(jobs))
	if len(jobs) == 0 {
		return results, ctx.Err()
	}

	workers := opt.Workers
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}

	var (
		mu   sync.Mutex // serializes Progress and the done counter
		done int
	)
	finish := func(i int, elapsed time.Duration) {
		if opt.Progress == nil {
			return
		}
		mu.Lock()
		defer mu.Unlock()
		done++
		opt.Progress(Update{
			Index:   i,
			Label:   jobs[i].Label,
			Err:     errs[i],
			Elapsed: elapsed,
			Done:    done,
			Total:   len(jobs),
		})
	}
	exec := func(i int) {
		if err := ctx.Err(); err != nil {
			errs[i] = err
			skipped[i] = true
			return
		}
		start := time.Now()
		defer func() {
			if v := recover(); v != nil {
				errs[i] = &PanicError{Label: jobs[i].Label, Value: v, Stack: debug.Stack()}
			}
			finish(i, time.Since(start))
		}()
		results[i], errs[i] = jobs[i].Fn(ctx)
	}

	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				exec(i)
			}
		}()
	}
	for i := range jobs {
		idx <- i
	}
	close(idx)
	wg.Wait()

	if cause := ctx.Err(); cause != nil {
		perr := &PartialError{Cause: cause, Total: len(jobs)}
		for i := range jobs {
			if !skipped[i] && errs[i] == nil {
				perr.Completed = append(perr.Completed, jobs[i].Label)
			}
		}
		return results, perr
	}
	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	return results, nil
}
