package runpool

import (
	"context"
	"errors"
	"runtime/debug"
	"sync"
)

// Sentinel errors for Pool submission outcomes.
var (
	// ErrPoolSaturated reports that the pool's backlog is full; the
	// caller should shed load (an HTTP front end maps this to 429).
	ErrPoolSaturated = errors.New("runpool: pool saturated")
	// ErrPoolClosed reports a submission after Shutdown began.
	ErrPoolClosed = errors.New("runpool: pool closed")
)

// PoolStats is a point-in-time view of a Pool's activity.
type PoolStats struct {
	// Workers and Backlog echo the pool's construction parameters.
	Workers, Backlog int
	// Submitted counts accepted tasks; Rejected counts TrySubmit calls
	// refused for saturation or closure.
	Submitted, Rejected uint64
	// Completed counts finished tasks (panicking tasks included).
	Completed uint64
	// Panics counts tasks that panicked (contained; the worker survives).
	Panics uint64
	// Pending is the number of tasks queued but not yet started.
	Pending int
	// Running is the number of tasks executing right now.
	Running int
}

// Occupancy is the fraction of execution slots in use (Running/Workers),
// the primary load-balancing gauge: 0 is idle, 1 means every worker is
// busy and new arrivals will queue.
func (s PoolStats) Occupancy() float64 {
	if s.Workers <= 0 {
		return 0
	}
	return float64(s.Running) / float64(s.Workers)
}

// Pool is the long-lived sibling of RunContext: a bounded set of workers
// draining a bounded backlog of dynamically submitted tasks. Where
// RunContext serves batch sweeps whose job list is known up front, Pool
// serves open-ended arrivals — a job server accepting requests over the
// network — with the same discipline: bounded concurrency, panic
// containment, and a graceful drain.
//
// Admission is non-blocking by design: TrySubmit either enqueues or
// fails with ErrPoolSaturated, so callers own their load-shedding
// instead of stacking blocked goroutines.
type Pool struct {
	// queue is buffered to workers+backlog: admission is decided by the
	// inflight counter, never by a send racing a worker's receive, so a
	// zero-backlog pool admits its first task even before the worker
	// goroutines have been scheduled.
	queue chan poolTask

	mu       sync.Mutex
	closed   bool
	inflight int // admitted and not yet finished
	stats    PoolStats
	workerWG sync.WaitGroup
	taskWG   sync.WaitGroup

	// OnPanic, when set before any Submit, receives contained task
	// panics as *PanicError (for logging); the worker always survives.
	OnPanic func(*PanicError)
}

type poolTask struct {
	label string
	fn    func()
}

// NewPool starts a pool with the given worker count (<= 0 means
// DefaultWorkers) and backlog capacity (queued tasks beyond the ones
// executing; < 0 means 0 — only as many tasks as workers are admitted).
func NewPool(workers, backlog int) *Pool {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if backlog < 0 {
		backlog = 0
	}
	p := &Pool{queue: make(chan poolTask, workers+backlog)}
	p.stats.Workers = workers
	p.stats.Backlog = backlog
	p.workerWG.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

func (p *Pool) worker() {
	defer p.workerWG.Done()
	for t := range p.queue {
		p.run(t)
	}
}

func (p *Pool) run(t poolTask) {
	p.mu.Lock()
	p.stats.Running++
	p.mu.Unlock()
	defer func() {
		var perr *PanicError
		if v := recover(); v != nil {
			perr = &PanicError{Label: t.label, Value: v, Stack: debug.Stack()}
		}
		p.mu.Lock()
		p.inflight--
		p.stats.Running--
		p.stats.Completed++
		if perr != nil {
			p.stats.Panics++
		}
		onPanic := p.OnPanic
		p.mu.Unlock()
		p.taskWG.Done()
		if perr != nil && onPanic != nil {
			onPanic(perr)
		}
	}()
	t.fn()
}

// TrySubmit enqueues fn for execution, never blocking: it returns
// ErrPoolSaturated when the backlog is full and ErrPoolClosed after
// Shutdown began. fn is responsible for its own cancellation (a task
// built around a context should check it first thing, so tasks that
// waited in the backlog past their deadline fail fast).
func (p *Pool) TrySubmit(label string, fn func()) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		p.stats.Rejected++
		return ErrPoolClosed
	}
	if p.inflight >= p.stats.Workers+p.stats.Backlog {
		p.stats.Rejected++
		return ErrPoolSaturated
	}
	p.inflight++
	p.stats.Submitted++
	p.taskWG.Add(1)
	// Guaranteed room: the buffer matches the admission capacity.
	p.queue <- poolTask{label: label, fn: fn}
	return nil
}

// Stats returns a point-in-time copy of the pool's counters. Pending is
// derived from the queue depth at call time.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := p.stats
	s.Pending = len(p.queue)
	return s
}

// Shutdown stops admission immediately (subsequent TrySubmit calls fail
// with ErrPoolClosed) and waits for every already-admitted task —
// running and backlogged — to finish, or for ctx to expire. It does not
// cancel tasks itself: callers that want a hard stop cancel the contexts
// their tasks run under and then let Shutdown observe the drain.
// Shutdown is idempotent; concurrent calls all wait.
func (p *Pool) Shutdown(ctx context.Context) error {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.queue)
	}
	p.mu.Unlock()

	done := make(chan struct{})
	go func() {
		p.taskWG.Wait()
		p.workerWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
