package runpool

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestOrderPreservedAcrossWorkers(t *testing.T) {
	const n = 100
	jobs := make([]Job[int], n)
	for i := 0; i < n; i++ {
		jobs[i] = Job[int]{
			Label: fmt.Sprintf("job-%d", i),
			Fn: func(context.Context) (int, error) {
				// Earlier jobs sleep longer, so completion order inverts
				// submission order; results must still land by index.
				time.Sleep(time.Duration(n-i) * 10 * time.Microsecond)
				return i * i, nil
			},
		}
	}
	for _, workers := range []int{1, 4, 16, n + 5} {
		got, err := Run(Options{Workers: workers}, jobs)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: result[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestPanicCaptured(t *testing.T) {
	jobs := []Job[string]{
		{Label: "fine", Fn: func(context.Context) (string, error) { return "ok", nil }},
		{Label: "bomb", Fn: func(context.Context) (string, error) { panic("boom") }},
		{Label: "also-fine", Fn: func(context.Context) (string, error) { return "ok", nil }},
	}
	got, err := Run(Options{Workers: 2}, jobs)
	if err == nil {
		t.Fatal("panic did not surface as an error")
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("error %T is not a *PanicError: %v", err, err)
	}
	if pe.Label != "bomb" || pe.Value != "boom" {
		t.Fatalf("panic mislabeled: %+v", pe)
	}
	if !strings.Contains(pe.Error(), "bomb") || !strings.Contains(pe.Error(), "boom") {
		t.Fatalf("PanicError message uninformative: %q", pe.Error())
	}
	if len(pe.Stack) == 0 {
		t.Fatal("panic stack not captured")
	}
	// The sweep survives: the other jobs still produced their values.
	if got[0] != "ok" || got[2] != "ok" {
		t.Fatalf("sibling jobs lost: %q", got)
	}
}

func TestLowestIndexErrorWins(t *testing.T) {
	// Job 7 fails instantly, job 2 fails slowly: the reported error must
	// be job 2's regardless of completion order.
	jobs := make([]Job[int], 10)
	for i := range jobs {
		jobs[i] = Job[int]{Label: fmt.Sprintf("job-%d", i), Fn: func(context.Context) (int, error) {
			switch i {
			case 2:
				time.Sleep(20 * time.Millisecond)
				return 0, errors.New("slow failure")
			case 7:
				return 0, errors.New("fast failure")
			}
			return i, nil
		}}
	}
	_, err := Run(Options{Workers: 8}, jobs)
	if err == nil || err.Error() != "slow failure" {
		t.Fatalf("err = %v, want job 2's slow failure", err)
	}
}

func TestProgressSerializedAndComplete(t *testing.T) {
	const n = 50
	jobs := make([]Job[int], n)
	for i := range jobs {
		jobs[i] = Job[int]{Label: fmt.Sprintf("job-%d", i), Fn: func(context.Context) (int, error) { return i, nil }}
	}
	var updates []Update
	var inFlight atomic.Int32
	_, err := Run(Options{
		Workers: 8,
		Progress: func(u Update) {
			if inFlight.Add(1) != 1 {
				t.Error("progress callback ran concurrently")
			}
			updates = append(updates, u)
			inFlight.Add(-1)
		},
	}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(updates) != n {
		t.Fatalf("%d updates, want %d", len(updates), n)
	}
	seen := make(map[int]bool)
	for k, u := range updates {
		if u.Done != k+1 || u.Total != n {
			t.Fatalf("update %d: Done=%d Total=%d", k, u.Done, u.Total)
		}
		if u.Label != fmt.Sprintf("job-%d", u.Index) {
			t.Fatalf("update %d: label %q does not match index %d", k, u.Label, u.Index)
		}
		if seen[u.Index] {
			t.Fatalf("job %d reported twice", u.Index)
		}
		seen[u.Index] = true
	}
}

func TestEmptyAndDefaults(t *testing.T) {
	got, err := Run[int](Options{}, nil)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty run: %v, %v", got, err)
	}
	if DefaultWorkers() < 1 {
		t.Fatalf("DefaultWorkers() = %d", DefaultWorkers())
	}
	// Workers <= 0 falls back to the default and still runs everything.
	vals, err := Run(Options{Workers: -3}, []Job[int]{{Label: "x", Fn: func(context.Context) (int, error) { return 42, nil }}})
	if err != nil || vals[0] != 42 {
		t.Fatalf("default-worker run: %v, %v", vals, err)
	}
}

func TestCancelMidRun(t *testing.T) {
	// One worker processes jobs in order; job 3 cancels the context, so
	// jobs 0–3 finish and jobs 4+ are skipped.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const n = 10
	jobs := make([]Job[int], n)
	for i := range jobs {
		jobs[i] = Job[int]{Label: fmt.Sprintf("job-%d", i), Fn: func(context.Context) (int, error) {
			if i == 3 {
				cancel()
			}
			return i + 1, nil
		}}
	}
	vals, err := RunContext(ctx, Options{Workers: 1}, jobs)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want errors.Is(err, context.Canceled)", err)
	}
	var pe *PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("error %T is not a *PartialError: %v", err, err)
	}
	want := []string{"job-0", "job-1", "job-2", "job-3"}
	if len(pe.Completed) != len(want) {
		t.Fatalf("Completed = %v, want %v", pe.Completed, want)
	}
	for k, label := range want {
		if pe.Completed[k] != label {
			t.Fatalf("Completed = %v, want %v", pe.Completed, want)
		}
	}
	if pe.Total != n {
		t.Fatalf("Total = %d, want %d", pe.Total, n)
	}
	// Finished jobs' results survive; skipped slots hold the zero value.
	for i := 0; i < 4; i++ {
		if vals[i] != i+1 {
			t.Fatalf("vals[%d] = %d, want %d", i, vals[i], i+1)
		}
	}
	for i := 4; i < n; i++ {
		if vals[i] != 0 {
			t.Fatalf("vals[%d] = %d, want 0 (skipped)", i, vals[i])
		}
	}
	if !strings.Contains(pe.Error(), "4/10") {
		t.Fatalf("PartialError message uninformative: %q", pe.Error())
	}
}

func TestPreCancelledSkipsEverything(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int32
	jobs := []Job[int]{{Label: "x", Fn: func(context.Context) (int, error) {
		ran.Add(1)
		return 1, nil
	}}}
	_, err := RunContext(ctx, Options{}, jobs)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran.Load() != 0 {
		t.Fatal("job ran despite pre-cancelled context")
	}
	var pe *PartialError
	if !errors.As(err, &pe) || len(pe.Completed) != 0 {
		t.Fatalf("want empty PartialError, got %v", err)
	}
}
