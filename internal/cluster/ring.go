// Package cluster turns independent ctrpredd nodes into one service: a
// coordinator that splits experiment grids into per-benchmark cells,
// routes every content-addressed job to the worker that owns its key on
// a consistent-hash ring (so repeats land where the cache is already
// warm), fails work over when a worker dies or saturates, and
// reassembles results that are byte-identical to a single-node run.
//
// The pieces:
//
//   - Ring: a consistent-hash ring over worker URLs (ring.go)
//   - Registry: worker membership and health state (registry.go)
//   - Client: the coordinator's HTTP client for worker nodes (client.go)
//   - Coordinator: the public http.Handler (coordinator.go)
//
// Nothing here touches simulation math. Every simulation is fully
// determined by its seeded configuration, so a cell computes the same
// bytes on any node; the cluster only decides where work runs and how
// the pieces reassemble.
package cluster

import (
	"encoding/binary"
	"fmt"
	"sort"

	"ctrpred/internal/sha256"
)

// Ring is a consistent-hash ring mapping content-address keys to node
// names. Each node occupies vnodes points on the ring so load spreads
// evenly even with two or three nodes; a key's home is the first point
// clockwise from the key's own hash. Adding or removing one node moves
// only the keys that hashed to its points — everyone else's cache stays
// warm. Not safe for concurrent use; Registry serializes access.
type Ring struct {
	vnodes int
	nodes  map[string]bool
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash uint64
	node string
}

// defaultVNodes balances placement smoothness against lookup cost: 64
// points per node keeps the largest/smallest arc ratio small for the
// 2-8 node clusters this serves, and lookups stay a binary search over
// a few hundred points.
const defaultVNodes = 64

// NewRing creates an empty ring with the given points per node
// (<= 0: defaultVNodes).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = defaultVNodes
	}
	return &Ring{vnodes: vnodes, nodes: make(map[string]bool)}
}

// ringHash maps a string to a ring position: the first 8 bytes of its
// SHA-256, big-endian. The simulator's own sha256 keeps the package
// stdlib-free and the placement identical on every architecture.
func ringHash(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// Add inserts a node's vnodes points. Adding a present node is a no-op.
func (r *Ring) Add(node string) {
	if r.nodes[node] {
		return
	}
	r.nodes[node] = true
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, ringPoint{
			hash: ringHash(fmt.Sprintf("%s#%d", node, i)),
			node: node,
		})
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].node < r.points[j].node
	})
}

// Remove deletes a node's points. Removing an absent node is a no-op.
func (r *Ring) Remove(node string) {
	if !r.nodes[node] {
		return
	}
	delete(r.nodes, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Len reports how many nodes are on the ring.
func (r *Ring) Len() int { return len(r.nodes) }

// Nodes returns the ring's members, sorted.
func (r *Ring) Nodes() []string {
	out := make([]string, 0, len(r.nodes))
	for n := range r.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Home returns the node owning key: the first ring point clockwise from
// the key's hash. False when the ring is empty.
func (r *Ring) Home(key string) (string, bool) {
	seq := r.Sequence(key, 1)
	if len(seq) == 0 {
		return "", false
	}
	return seq[0], true
}

// Sequence returns up to n distinct nodes in clockwise order starting
// at key's home — the failover order: if the home is down, the next
// distinct node on the ring takes over, and (by the same walk) would be
// the home of a re-hashed remainder.
func (r *Ring) Sequence(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	h := ringHash(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	seen := make(map[string]bool, n)
	out := make([]string, 0, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, p.node)
		}
	}
	return out
}
