package cluster

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"ctrpred/internal/experiments"
	"ctrpred/internal/server"
	"ctrpred/internal/testutil"
	"ctrpred/internal/workload"
)

// testGrid is the experiment scale every cluster test runs: small
// enough to finish in seconds, wide enough (three benchmarks) that a
// partitionable sweep actually fans out.
const (
	testInstr = 2_000
	testSeed  = 5
)

var testBenches = []string{"gzip", "mcf", "swim"}

// newWorker boots one real single-node server behind httptest.
func newWorker(t *testing.T, cfg server.Config) (*server.Server, *httptest.Server) {
	t.Helper()
	// Registered before the server cleanups below, so (cleanups being
	// LIFO) the leak check runs after shutdown has reaped everything.
	testutil.VerifyNoLeaks(t)
	if cfg.Workers == 0 {
		cfg.Workers = 2
	}
	if cfg.DrainTimeout == 0 {
		cfg.DrainTimeout = 2 * time.Second
	}
	s := server.New(cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s, ts
}

// newCluster boots n workers and a coordinator over them. Probing is
// disabled so tests are timing-free: dispatch failures alone drive
// mark-downs.
func newCluster(t *testing.T, n int, cfg Config) (*Coordinator, *httptest.Server, []*httptest.Server) {
	t.Helper()
	testutil.VerifyNoLeaks(t)
	workers := make([]*httptest.Server, n)
	for i := range workers {
		_, workers[i] = newWorker(t, server.Config{})
		cfg.Workers = append(cfg.Workers, workers[i].URL)
	}
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = -1
	}
	if cfg.MaxRetryWait == 0 {
		cfg.MaxRetryWait = 50 * time.Millisecond
	}
	c := New(cfg)
	ts := httptest.NewServer(c)
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		c.Shutdown(ctx)
	})
	return c, ts, workers
}

func expRequest(id string) server.ExperimentRequest {
	return server.ExperimentRequest{
		ID:           id,
		Benchmarks:   testBenches,
		Instructions: testInstr,
		Footprint:    "1M",
		Seed:         testSeed,
		Workers:      2,
	}
}

func postJSON(t *testing.T, url string, v any) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

// referenceOptions mirrors what the server builds from expRequest, for
// direct library runs.
func referenceOptions() experiments.Options {
	opt := experiments.DefaultOptions()
	opt.Benchmarks = testBenches
	opt.Scale.Instructions = testInstr
	opt.Scale.Footprint = 1 << 20
	opt.Seed = testSeed
	return opt
}

// TestClusterByteIdenticalToSingleNode is the distribution contract
// end to end: a three-worker cluster's experiment responses — snapshot
// JSON and the table rebuilt from it — must match a direct single-node
// library run byte for byte.
func TestClusterByteIdenticalToSingleNode(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-experiment sweep in -short mode")
	}
	_, ts, _ := newCluster(t, 3, Config{})
	for _, id := range []string{"fig7", "engines"} {
		t.Run(id, func(t *testing.T) {
			full, err := experiments.ByID(context.Background(), id, referenceOptions())
			if err != nil {
				t.Fatalf("reference run: %v", err)
			}
			wantJSON, err := full.Snapshot().JSON()
			if err != nil {
				t.Fatal(err)
			}

			resp, body := postJSON(t, ts.URL+"/v1/experiments", expRequest(id))
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("cluster run: status %d: %s", resp.StatusCode, body)
			}
			if !bytes.Equal(body, wantJSON) {
				t.Errorf("cluster snapshot differs from single-node run:\n--- cluster ---\n%s\n--- single ---\n%s", body, wantJSON)
			}
			// The table rebuilt from the wire body must match the
			// single-node rendering too.
			part, err := experiments.DecodeResultSnapshot(body)
			if err != nil {
				t.Fatal(err)
			}
			merged, err := experiments.MergeParts(id, []experiments.Result{part})
			if err != nil {
				t.Fatal(err)
			}
			if got, want := merged.Table.String(), full.Table.String(); got != want {
				t.Errorf("cluster table differs from single-node run:\n--- cluster ---\n%s\n--- single ---\n%s", got, want)
			}
		})
	}
}

// killableWorker wraps a worker so the test can make it drop every
// connection mid-request from a chosen moment on — an injected crash
// that needs no timing coordination.
type killableWorker struct {
	inner  http.Handler
	dead   atomic.Bool
	served atomic.Uint64
}

func (k *killableWorker) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if k.dead.Load() && strings.HasPrefix(r.URL.Path, "/v1/") {
		panic(http.ErrAbortHandler) // slam the connection shut
	}
	k.served.Add(1)
	k.inner.ServeHTTP(w, r)
}

// TestClusterSurvivesWorkerKillMidSweep injects a worker death partway
// through a sweep: the first cell the victim serves is its last. The
// coordinator must mark it down, requeue its cells on the survivors,
// and still assemble the byte-identical result.
func TestClusterSurvivesWorkerKillMidSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-experiment sweep in -short mode")
	}
	sA := server.New(server.Config{Workers: 2, DrainTimeout: 2 * time.Second})
	sB := server.New(server.Config{Workers: 2, DrainTimeout: 2 * time.Second})
	victim := &killableWorker{inner: sB}
	tsA := httptest.NewServer(sA)
	tsB := httptest.NewServer(victim)
	defer tsA.Close()
	defer tsB.Close()

	c := New(Config{
		Workers:       []string{tsA.URL, tsB.URL},
		ProbeInterval: -1,
		MaxRetryWait:  50 * time.Millisecond,
		Fanout:        1, // serialize cells so the kill lands between them
	})
	ts := httptest.NewServer(c)
	defer ts.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		c.Shutdown(ctx)
	}()

	// Warm nothing; kill the victim after its first served request. With
	// three cells over two workers at least one cell lands on each, so
	// whichever cell reaches the victim second meets a dead worker and
	// must requeue.
	go func() {
		for victim.served.Load() == 0 {
			time.Sleep(time.Millisecond)
		}
		victim.dead.Store(true)
	}()

	full, err := experiments.ByID(context.Background(), "fig7", referenceOptions())
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	wantJSON, err := full.Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}

	resp, body := postJSON(t, ts.URL+"/v1/experiments", expRequest("fig7"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cluster run with killed worker: status %d: %s", resp.StatusCode, body)
	}
	if !bytes.Equal(body, wantJSON) {
		t.Errorf("result after worker kill differs from single-node run:\n--- cluster ---\n%s\n--- single ---\n%s", body, wantJSON)
	}
	// The kill may land after the victim already served every cell the
	// ring gave it (no requeue needed), but if any dispatch failed the
	// registry must have recorded the mark-down.
	snap := c.Snapshot()
	if fo, _ := snap.Lookup("cells").CounterValue("failovers"); fo > 0 {
		found := false
		for _, w := range c.Registry().Workers() {
			if w.URL == normalizeURL(tsB.URL) && w.Down {
				found = true
			}
		}
		if !found {
			t.Error("cells failed over but the dead worker was never marked down")
		}
	}
}

// TestClusterRetriesSaturatedWorker drives a sweep through a one-worker
// cluster whose node has no backlog: most cells meet a 429 and must
// wait out the Retry-After (shrunk by MaxRetryWait) instead of failing.
func TestClusterRetriesSaturatedWorker(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-experiment sweep in -short mode")
	}
	_, tsw := newWorker(t, server.Config{Workers: 1, Backlog: -1})
	c := New(Config{
		Workers:           []string{tsw.URL},
		ProbeInterval:     -1,
		MaxRetryWait:      20 * time.Millisecond,
		SaturationRetries: 1000,
		Fanout:            4, // more in-flight cells than the worker admits
	})
	ts := httptest.NewServer(c)
	defer ts.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		c.Shutdown(ctx)
	}()

	resp, body := postJSON(t, ts.URL+"/v1/experiments", expRequest("fig7"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("saturated run: status %d: %s", resp.StatusCode, body)
	}
	full, err := experiments.ByID(context.Background(), "fig7", referenceOptions())
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, _ := full.Snapshot().JSON()
	if !bytes.Equal(body, wantJSON) {
		t.Error("result under saturation differs from single-node run")
	}
	if n, _ := c.Snapshot().Lookup("cells").CounterValue("saturation_retries"); n == 0 {
		t.Error("a one-slot worker under fanout 4 produced no saturation retries")
	}
}

// TestClusterCacheRouting pins the cooperative-cache behavior: a repeat
// through the same coordinator is a coordinator-cache hit, and a repeat
// through a fresh coordinator (cold local cache) is assembled from the
// workers' warm cell caches without re-simulating.
func TestClusterCacheRouting(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-experiment sweep in -short mode")
	}
	c1, ts1, workers := newCluster(t, 2, Config{})
	req := expRequest("fig7")

	resp, first := postJSON(t, ts1.URL+"/v1/experiments", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold run: status %d: %s", resp.StatusCode, first)
	}
	if got := resp.Header.Get("X-Cache"); got != "miss" {
		t.Errorf("cold run X-Cache = %q; want miss", got)
	}
	resp, second := postJSON(t, ts1.URL+"/v1/experiments", req)
	if got := resp.Header.Get("X-Cache"); got != "hit" {
		t.Errorf("warm repeat X-Cache = %q; want hit", got)
	}
	if !bytes.Equal(first, second) {
		t.Error("cached repeat returned different bytes")
	}
	if n, _ := c1.Snapshot().CounterValue("cache_served"); n == 0 {
		t.Error("warm repeat did not count as cache_served")
	}

	// A fresh coordinator over the same workers: its own cache is cold,
	// so it re-splits — but every cell must come off a worker cache.
	urls := []string{workers[0].URL, workers[1].URL}
	c2 := New(Config{Workers: urls, ProbeInterval: -1, MaxRetryWait: 50 * time.Millisecond})
	ts2 := httptest.NewServer(c2)
	defer ts2.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		c2.Shutdown(ctx)
	}()
	resp, third := postJSON(t, ts2.URL+"/v1/experiments", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fresh-coordinator run: status %d: %s", resp.StatusCode, third)
	}
	if !bytes.Equal(first, third) {
		t.Error("fresh-coordinator rerun returned different bytes")
	}
	snap := c2.Snapshot()
	done, _ := snap.Lookup("cells").CounterValue("completed")
	cached, _ := snap.Lookup("cells").CounterValue("worker_cache_hits")
	if done == 0 || cached != done {
		t.Errorf("fresh-coordinator rerun: %d of %d cells from worker caches; want all", cached, done)
	}
}

// TestClusterSimRelayStreams pins the sim path: a streamed simulation
// through the coordinator produces exactly one accepted line, relays
// the worker's update, ends in a result — and the result matches a
// direct worker run byte for byte.
func TestClusterSimRelayStreams(t *testing.T) {
	_, ts, workers := newCluster(t, 2, Config{})
	simReq := server.SimRequest{
		Bench: "gzip", Scheme: "pred-context",
		Footprint: "1M", Instructions: testInstr, Seed: testSeed,
	}
	body, _ := json.Marshal(simReq)

	readStream := func(url string) []server.Event {
		t.Helper()
		resp, err := http.Post(url+"/v1/sim?stream=1", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var events []server.Event
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			var ev server.Event
			if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
				t.Fatalf("bad stream line %q: %v", sc.Text(), err)
			}
			events = append(events, ev)
		}
		return events
	}

	events := readStream(ts.URL)
	if len(events) < 2 {
		t.Fatalf("stream had %d events; want at least accepted+result", len(events))
	}
	accepted := 0
	for _, ev := range events {
		if ev.Event == "accepted" {
			accepted++
		}
	}
	if accepted != 1 {
		t.Errorf("stream carried %d accepted events; want exactly 1 (worker's must be dropped)", accepted)
	}
	final := events[len(events)-1]
	if final.Event != "result" {
		t.Fatalf("terminal event = %+v; want result", final)
	}

	// Relay fidelity: the snapshot on the relayed stream is the same
	// bytes a direct worker stream ends with (the run is cached by now,
	// so the direct stream replays the identical result).
	directStream := readStream(workers[0].URL)
	directFinal := directStream[len(directStream)-1]
	if directFinal.Event != "result" {
		t.Fatalf("direct stream terminal event = %+v; want result", directFinal)
	}
	if !bytes.Equal(final.Snapshot, directFinal.Snapshot) {
		t.Error("relayed stream snapshot differs from a direct worker stream")
	}

	// Plain-mode byte-identity: the coordinator's plain response — here
	// served from the canonical body it cached off the worker — matches
	// a direct worker plain response exactly.
	respC, viaCluster := postJSON(t, ts.URL+"/v1/sim", simReq)
	if respC.StatusCode != http.StatusOK {
		t.Fatalf("cluster plain run: status %d: %s", respC.StatusCode, viaCluster)
	}
	respD, direct := postJSON(t, workers[0].URL+"/v1/sim", simReq)
	if respD.StatusCode != http.StatusOK {
		t.Fatalf("direct run: status %d: %s", respD.StatusCode, direct)
	}
	if !bytes.Equal(viaCluster, direct) {
		t.Error("plain sim via coordinator differs from a direct worker run")
	}
}

// TestClusterJoinAndTopology covers runtime membership: a worker joins
// via the API, shows up in the topology, and receives work.
func TestClusterJoinAndTopology(t *testing.T) {
	c, ts, _ := newCluster(t, 1, Config{})
	_, extra := newWorker(t, server.Config{})

	resp, body := postJSON(t, ts.URL+"/v1/cluster/join", map[string]string{"url": extra.URL})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("join: status %d: %s", resp.StatusCode, body)
	}
	var joined struct {
		Added   bool         `json:"added"`
		Workers []WorkerInfo `json:"workers"`
	}
	if err := json.Unmarshal(body, &joined); err != nil {
		t.Fatal(err)
	}
	if !joined.Added || len(joined.Workers) != 2 {
		t.Fatalf("join reply = %+v; want added=true with 2 workers", joined)
	}
	if got := len(c.Registry().Up()); got != 2 {
		t.Fatalf("registry has %d up workers after join; want 2", got)
	}

	// Bad joins are rejected.
	resp, _ = postJSON(t, ts.URL+"/v1/cluster/join", map[string]string{"url": "not a url"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("garbage join: status %d; want 400", resp.StatusCode)
	}

	topo, err := http.Get(ts.URL + "/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	defer topo.Body.Close()
	var tv struct {
		Workers []WorkerInfo `json:"workers"`
	}
	if err := json.NewDecoder(topo.Body).Decode(&tv); err != nil {
		t.Fatal(err)
	}
	if len(tv.Workers) != 2 {
		t.Fatalf("topology lists %d workers; want 2", len(tv.Workers))
	}
}

// TestClusterResultLookupAcrossNodes: a result computed via the cluster
// is fetchable by content address from the coordinator even after its
// local cache is cold (fresh coordinator), via the peer path.
func TestClusterResultLookup(t *testing.T) {
	_, ts, workers := newCluster(t, 2, Config{})
	simReq := server.SimRequest{
		Bench: "gzip", Scheme: "baseline",
		Footprint: "1M", Instructions: testInstr, Seed: testSeed,
	}
	resp, body := postJSON(t, ts.URL+"/v1/sim", simReq)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sim: status %d: %s", resp.StatusCode, body)
	}
	key := resp.Header.Get("X-Result-Key")
	if key == "" {
		t.Fatal("sim response carried no X-Result-Key")
	}

	c2 := New(Config{Workers: []string{workers[0].URL, workers[1].URL}, ProbeInterval: -1})
	ts2 := httptest.NewServer(c2)
	defer ts2.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		c2.Shutdown(ctx)
	}()
	got, err := http.Get(ts2.URL + "/v1/results/" + key)
	if err != nil {
		t.Fatal(err)
	}
	fetched, _ := io.ReadAll(got.Body)
	got.Body.Close()
	if got.StatusCode != http.StatusOK {
		t.Fatalf("peer lookup: status %d", got.StatusCode)
	}
	if !bytes.Equal(fetched, body) {
		t.Error("peer-fetched result differs from the original response")
	}
	if hdr := got.Header.Get("X-Cache"); hdr != "peer" {
		t.Errorf("peer lookup X-Cache = %q; want peer", hdr)
	}

	missing, err := http.Get(ts2.URL + "/v1/results/" + strings.Repeat("0", 64))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, missing.Body)
	missing.Body.Close()
	if missing.StatusCode != http.StatusNotFound {
		t.Errorf("unknown key: status %d; want 404", missing.StatusCode)
	}
}

// TestClusterRejectsBadRequests: validation happens at the coordinator
// with the same statuses a single node uses.
func TestClusterRejectsBadRequests(t *testing.T) {
	_, ts, _ := newCluster(t, 1, Config{})
	cases := []struct {
		name string
		url  string
		body any
		want int
	}{
		{"unknown experiment", "/v1/experiments", map[string]any{"id": "nope"}, http.StatusBadRequest},
		{"unknown engine", "/v1/experiments", map[string]any{"id": "fig7", "engine": "quantum"}, http.StatusUnprocessableEntity},
		{"missing bench", "/v1/sim", map[string]any{"scheme": "baseline"}, http.StatusBadRequest},
		{"unknown field", "/v1/sim", map[string]any{"bench": "gzip", "scheme": "baseline", "bogus": 1}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := postJSON(t, ts.URL+tc.url, tc.body)
			if resp.StatusCode != tc.want {
				t.Errorf("status %d; want %d (%s)", resp.StatusCode, tc.want, body)
			}
		})
	}
}

// TestCoordinatorMetrics sanity-checks the /metrics tree shape and its
// determinism (double export of everything but uptime).
func TestCoordinatorMetrics(t *testing.T) {
	c, ts, _ := newCluster(t, 2, Config{})
	simReq := server.SimRequest{
		Bench: "gzip", Scheme: "baseline",
		Footprint: "1M", Instructions: testInstr, Seed: testSeed,
	}
	if resp, body := postJSON(t, ts.URL+"/v1/sim", simReq); resp.StatusCode != http.StatusOK {
		t.Fatalf("sim: status %d: %s", resp.StatusCode, body)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"coordinator", "cells", "pool", "cache", "workers", "endpoints", "sims_relayed"} {
		if !bytes.Contains(body, []byte(fmt.Sprintf("%q", want))) {
			t.Errorf("metrics payload missing %q:\n%s", want, body)
		}
	}
	a, err := c.Snapshot().Lookup("workers").JSON()
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Snapshot().Lookup("workers").JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("workers subtree not deterministic across exports")
	}
}

// Guard: the benchmark names the tests hardcode must exist.
func TestTestBenchesExist(t *testing.T) {
	for _, b := range testBenches {
		if _, ok := workload.Lookup(b); !ok {
			t.Fatalf("test benchmark %q not in the workload registry", b)
		}
	}
}
