package cluster

// The chaos end-to-end suite: every schedule internal/chaos can parse,
// thrown at real clusters of 1/2/4 workers, asserting the three
// invariants the hardening work exists for — responses byte-identical
// to a single-node library run, bounded completion (the tests finish),
// and zero goroutine leaks (the helpers wire testutil.VerifyNoLeaks).

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ctrpred/internal/chaos"
	"ctrpred/internal/experiments"
	"ctrpred/internal/server"
	"ctrpred/internal/testutil"
)

// chaosConfig is the coordinator shape every chaos test starts from:
// probing off (timing-free), fast backoff, a budget deep enough that
// count-bounded schedules always converge, breaker cooldown short
// enough that revival is testable.
func chaosConfig() Config {
	return Config{
		ProbeInterval:     -1,
		MaxRetryWait:      50 * time.Millisecond,
		RetryBudget:       10,
		SaturationRetries: 1000,
		BreakerCooldown:   100 * time.Millisecond,
		CellTimeout:       20 * time.Second,
	}
}

// newChaosCluster boots n workers, each behind chaos middleware driven
// by its own injector (seeded seedBase+i so the workers misbehave
// differently), and a coordinator over them.
func newChaosCluster(t *testing.T, n int, schedule string, seedBase uint64, cfg Config) (*Coordinator, *httptest.Server, []*server.Server) {
	t.Helper()
	testutil.VerifyNoLeaks(t)
	sched, err := chaos.Parse(schedule)
	if err != nil {
		t.Fatalf("chaos.Parse(%q): %v", schedule, err)
	}
	handles := make([]*server.Server, n)
	for i := 0; i < n; i++ {
		s := server.New(server.Config{Workers: 2, DrainTimeout: 2 * time.Second})
		handles[i] = s
		ts := httptest.NewServer(chaos.Middleware(chaos.New(sched, seedBase+uint64(i)), s))
		t.Cleanup(func() {
			ts.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			s.Shutdown(ctx)
		})
		cfg.Workers = append(cfg.Workers, ts.URL)
	}
	c := New(cfg)
	ts := httptest.NewServer(c)
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		c.Shutdown(ctx)
	})
	return c, ts, handles
}

// referenceBody memoizes single-node library runs per experiment id so
// the matrix does not recompute the same grid for every schedule.
var refMu sync.Mutex
var refBodies = map[string][]byte{}

func referenceBody(t *testing.T, id string) []byte {
	t.Helper()
	refMu.Lock()
	defer refMu.Unlock()
	if b, ok := refBodies[id]; ok {
		return b
	}
	full, err := experiments.ByID(context.Background(), id, referenceOptions())
	if err != nil {
		t.Fatalf("reference run %s: %v", id, err)
	}
	b, err := full.Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	refBodies[id] = b
	return b
}

// TestChaosMatrix is the acceptance matrix: fault schedules × cluster
// topologies, each run asserting the plain response is byte-identical
// to the single-node library run. Plain POST bodies are protected end
// to end by the snapshot digest, so even the corrupt schedules must
// come out clean.
func TestChaosMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos matrix in -short mode")
	}
	cases := []struct {
		name     string
		schedule string
		id       string
		nodes    []int
	}{
		// Count-bounded schedules converge against the budget of 10 no
		// matter where the faults land.
		{"latency", "latency:ms=150,count=2,match=/v1/experiments", "fig7", []int{2}},
		{"error-bursts", "err:p=0.5,status=503,count=4", "fig7", []int{1, 2, 4}},
		{"resets", "reset:count=4,match=/v1/experiments", "fig7", []int{1, 2}},
		{"corrupt", "corrupt:count=4,match=/v1/experiments", "fig7", []int{2}},
		{"truncate", "truncate:bytes=64,count=4,match=/v1/experiments", "fig7", []int{2}},
		{"flapping", "flap:up=3,down=2", "fig7", []int{2, 4}},
		{"mixed", "latency:p=0.3,ms=40,count=6;err:p=0.3,count=3;corrupt:count=2,match=/v1/experiments", "fig7", []int{4}},
		{"engines-grid", "err:p=0.5,count=3;corrupt:count=2,match=/v1/experiments", "engines", []int{2}},
	}
	for _, tc := range cases {
		for _, n := range tc.nodes {
			t.Run(fmt.Sprintf("%s/%dw", tc.name, n), func(t *testing.T) {
				cfg := chaosConfig()
				if tc.name == "latency" {
					cfg.HedgeAfter = 50 * time.Millisecond
				}
				c, ts, _ := newChaosCluster(t, n, tc.schedule, 1000+uint64(n), cfg)
				resp, body := postJSON(t, ts.URL+"/v1/experiments", expRequest(tc.id))
				if resp.StatusCode != http.StatusOK {
					t.Fatalf("chaos run: status %d: %s", resp.StatusCode, body)
				}
				if !bytes.Equal(body, referenceBody(t, tc.id)) {
					t.Error("response under chaos differs from the single-node run")
				}
				snap := c.Snapshot().Lookup("cells")
				if tc.name == "latency" {
					if hedges, _ := snap.CounterValue("hedges"); hedges == 0 {
						t.Error("150 ms injected latency against a 50 ms trigger produced no hedges")
					}
				}
				if tc.name == "corrupt" {
					if cb, _ := snap.CounterValue("corrupt_bodies"); cb == 0 {
						t.Error("corrupt schedule tripped no digest checks")
					}
				}
			})
		}
	}
}

// TestChaosStreamStallFailsOver pins the mid-NDJSON stall path: a
// worker that goes silent mid-stream trips the coordinator's stream
// idle watchdog, fails over, and the client still ends with a result
// byte-identical to a clean worker's.
func TestChaosStreamStallFailsOver(t *testing.T) {
	if testing.Short() {
		t.Skip("stall timing test in -short mode")
	}
	cfg := chaosConfig()
	cfg.StreamIdleTimeout = 300 * time.Millisecond
	c, ts, _ := newChaosCluster(t, 2, "stall:after=2,ms=5000,count=1,match=/v1/sim", 7, cfg)

	simReq := server.SimRequest{
		Bench: "gzip", Scheme: "pred-context",
		Footprint: "1M", Instructions: testInstr, Seed: testSeed,
	}
	body, _ := json.Marshal(simReq)
	resp, err := http.Post(ts.URL+"/v1/sim?stream=1", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var final server.Event
	dec := json.NewDecoder(resp.Body)
	for {
		var ev server.Event
		if err := dec.Decode(&ev); err != nil {
			break
		}
		final = ev
	}
	if final.Event != "result" {
		t.Fatalf("stream under stall ended with %+v; want result", final)
	}
	if fo, _ := c.Snapshot().Lookup("cells").CounterValue("failovers"); fo == 0 {
		t.Error("a stalled stream produced no failover")
	}

	// Byte-identity: the coordinator's canonical cached body must match
	// a clean worker's plain response.
	_, cleanWorker := newWorker(t, server.Config{})
	respC, viaCluster := postJSON(t, ts.URL+"/v1/sim", simReq)
	respW, direct := postJSON(t, cleanWorker.URL+"/v1/sim", simReq)
	if respC.StatusCode != http.StatusOK || respW.StatusCode != http.StatusOK {
		t.Fatalf("plain follow-ups: cluster %d, worker %d", respC.StatusCode, respW.StatusCode)
	}
	if !bytes.Equal(viaCluster, direct) {
		t.Error("post-stall cluster response differs from a clean worker run")
	}
}

// TestChaosJournalResume is the resume acceptance test: a sweep run
// through a journaled coordinator, then a brand-new coordinator over
// BRAND-NEW workers and the same journal, must answer the same grid
// byte-identically while the new workers run zero simulations.
func TestChaosJournalResume(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep test in -short mode")
	}
	testutil.VerifyNoLeaks(t)
	path := filepath.Join(t.TempDir(), "sweep.journal")
	j1, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j1.Close()

	cfgA := chaosConfig()
	cfgA.Journal = j1
	cA, tsA, _ := newChaosCluster(t, 2, "err:p=0.3,status=503,count=2", 21, cfgA)
	respA, bodyA := postJSON(t, tsA.URL+"/v1/experiments", expRequest("fig7"))
	if respA.StatusCode != http.StatusOK {
		t.Fatalf("journaled run: status %d: %s", respA.StatusCode, bodyA)
	}
	if j1.Len() != len(testBenches) {
		t.Fatalf("journal holds %d cells after the sweep; want %d", j1.Len(), len(testBenches))
	}
	if app, _ := cA.Snapshot().Lookup("cells").CounterValue("journal_appends"); app != uint64(len(testBenches)) {
		t.Errorf("journal_appends = %d; want %d", app, len(testBenches))
	}

	// "Kill" the coordinator (shutdown) and restart: a fresh coordinator
	// process re-opens the journal from disk. The workers are fresh too —
	// cold caches, zero sims — so any re-run would show up in sims_run.
	tsA.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	cA.Shutdown(ctx)
	cancel()
	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Len() != len(testBenches) {
		t.Fatalf("reopened journal holds %d cells; want %d", j2.Len(), len(testBenches))
	}

	freshWorkers := make([]*server.Server, 2)
	cfgB := chaosConfig()
	cfgB.Journal = j2
	for i := range freshWorkers {
		s, ts := newWorker(t, server.Config{})
		freshWorkers[i] = s
		cfgB.Workers = append(cfgB.Workers, ts.URL)
	}
	cB := New(cfgB)
	tsB := httptest.NewServer(cB)
	t.Cleanup(func() {
		tsB.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		cB.Shutdown(ctx)
	})

	respB, bodyB := postJSON(t, tsB.URL+"/v1/experiments", expRequest("fig7"))
	if respB.StatusCode != http.StatusOK {
		t.Fatalf("resumed run: status %d: %s", respB.StatusCode, bodyB)
	}
	if !bytes.Equal(bodyA, bodyB) {
		t.Error("resumed sweep differs from the original")
	}
	if hits, _ := cB.Snapshot().Lookup("cells").CounterValue("journal_hits"); hits != uint64(len(testBenches)) {
		t.Errorf("journal_hits = %d; want every cell (%d)", hits, len(testBenches))
	}
	for i, s := range freshWorkers {
		if n, _ := s.Snapshot().CounterValue("sims_run"); n != 0 {
			t.Errorf("fresh worker %d ran %d sims on a fully-journaled sweep; want 0", i, n)
		}
	}
}

// benchGate 500s every /v1/experiments request whose body names a
// gated benchmark — a worker that deterministically cannot serve part
// of a grid, for mid-sweep crash simulation.
type benchGate struct {
	inner http.Handler
	gate  atomic.Value // string: substring to refuse ("" allows all)
}

func (g *benchGate) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	gated, _ := g.gate.Load().(string)
	if gated != "" && r.Body != nil {
		var buf bytes.Buffer
		io.Copy(&buf, r.Body)
		r.Body.Close()
		if strings.Contains(buf.String(), gated) {
			http.Error(w, "injected mid-sweep failure", http.StatusInternalServerError)
			return
		}
		r.Body = io.NopCloser(bytes.NewReader(buf.Bytes()))
		r.ContentLength = int64(buf.Len())
	}
	g.inner.ServeHTTP(w, r)
}

// TestChaosJournalMidSweepCrash drives the harder resume path: the
// sweep dies partway (one benchmark's cell is unservable, the fallback
// disabled), the journal keeps the finished cells, and the restarted
// coordinator completes the grid running only the missing cell's
// simulations — asserted through per-worker sims_run deltas.
func TestChaosJournalMidSweepCrash(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep test in -short mode")
	}
	testutil.VerifyNoLeaks(t)
	path := filepath.Join(t.TempDir(), "sweep.journal")
	j1, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j1.Close()

	s := server.New(server.Config{Workers: 2, DrainTimeout: 2 * time.Second})
	gate := &benchGate{inner: s}
	gate.gate.Store("swim")
	tsw := httptest.NewServer(gate)
	t.Cleanup(func() {
		tsw.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})

	cfgA := chaosConfig()
	cfgA.Journal = j1
	cfgA.RetryBudget = 1
	cfgA.DisableLocalFallback = true
	cfgA.Workers = []string{tsw.URL}
	cfgA.Fanout = 1 // input order: gzip and mcf finish before swim fails
	cA := New(cfgA)
	tsA := httptest.NewServer(cA)
	respA, bodyA := postJSON(t, tsA.URL+"/v1/experiments", expRequest("fig7"))
	if respA.StatusCode == http.StatusOK {
		t.Fatalf("gated sweep succeeded; want a failed run (body %s)", bodyA)
	}
	tsA.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	cA.Shutdown(ctx)
	cancel()

	if j1.Len() != 2 {
		t.Fatalf("journal holds %d cells after the crash; want the 2 finished ones", j1.Len())
	}
	simsBefore, _ := s.Snapshot().CounterValue("sims_run")
	if simsBefore == 0 || simsBefore%2 != 0 {
		t.Fatalf("sims_run before resume = %d; want an even split across 2 finished benchmarks", simsBefore)
	}

	// Restart over the same journal with the gate lifted: only swim's
	// cell may run, and each benchmark's cell is the same ladder of
	// schemes, so the delta is exactly half the first run's sims.
	gate.gate.Store("")
	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	cfgB := chaosConfig()
	cfgB.Journal = j2
	cfgB.Workers = []string{tsw.URL}
	cB := New(cfgB)
	tsB := httptest.NewServer(cB)
	t.Cleanup(func() {
		tsB.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		cB.Shutdown(ctx)
	})
	respB, bodyB := postJSON(t, tsB.URL+"/v1/experiments", expRequest("fig7"))
	if respB.StatusCode != http.StatusOK {
		t.Fatalf("resumed run: status %d: %s", respB.StatusCode, bodyB)
	}
	if !bytes.Equal(bodyB, referenceBody(t, "fig7")) {
		t.Error("resumed sweep differs from the single-node run")
	}
	simsAfter, _ := s.Snapshot().CounterValue("sims_run")
	if delta := simsAfter - simsBefore; delta != simsBefore/2 {
		t.Errorf("resume ran %d sims; want exactly the missing cell's %d", delta, simsBefore/2)
	}
	if hits, _ := cB.Snapshot().Lookup("cells").CounterValue("journal_hits"); hits != 2 {
		t.Errorf("journal_hits on resume = %d; want 2", hits)
	}
}

// refuser drops every /v1/ connection while refusing is set — a
// permanently-down worker that can be revived.
type refuser struct {
	inner    http.Handler
	refusing atomic.Bool
}

func (f *refuser) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if f.refusing.Load() && strings.HasPrefix(r.URL.Path, "/v1/") {
		panic(http.ErrAbortHandler)
	}
	f.inner.ServeHTTP(w, r)
}

// TestChaosDownWorkerTypedErrorAndRevival is the bounded-budget
// regression test: a permanently-down worker exhausts the redispatch
// budget and surfaces ErrDispatchExhausted (the typed error, not a
// spin); once the worker returns and the breaker cooldown passes, the
// half-open trial restores its ring keys and traffic.
func TestChaosDownWorkerTypedErrorAndRevival(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep test in -short mode")
	}
	testutil.VerifyNoLeaks(t)
	s := server.New(server.Config{Workers: 2, DrainTimeout: 2 * time.Second})
	f := &refuser{inner: s}
	f.refusing.Store(true)
	tsw := httptest.NewServer(f)
	t.Cleanup(func() {
		tsw.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})

	cfg := chaosConfig()
	cfg.Workers = []string{tsw.URL}
	cfg.RetryBudget = 2
	cfg.DisableLocalFallback = true
	c := New(cfg)
	ts := httptest.NewServer(c)
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		c.Shutdown(ctx)
	})

	cell := expRequest("fig7")
	cell.Benchmarks = []string{"gzip"}
	cellBody, _ := json.Marshal(cell)
	cellKey, err := cell.CacheKey()
	if err != nil {
		t.Fatal(err)
	}

	// Direct runCell: the typed error is the contract.
	_, err = c.runCell(context.Background(), cellBody, cellKey, false)
	if !errors.Is(err, ErrDispatchExhausted) {
		t.Fatalf("runCell against a dead worker = %v; want ErrDispatchExhausted", err)
	}
	// Over HTTP the same exhaustion is a 502.
	resp, body := postJSON(t, ts.URL+"/v1/experiments", expRequest("fig7"))
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("dead-cluster sweep: status %d (%s); want 502", resp.StatusCode, body)
	}
	if ws := c.Registry().Workers(); !ws[0].Down {
		t.Fatal("dead worker not marked down after budget exhaustion")
	}

	// Revival: the worker comes back, the breaker cooldown passes, and
	// the next dispatch is the half-open trial that closes it.
	f.refusing.Store(false)
	time.Sleep(cfg.BreakerCooldown + 50*time.Millisecond)
	resp, body = postJSON(t, ts.URL+"/v1/experiments", expRequest("fig7"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-revival sweep: status %d: %s", resp.StatusCode, body)
	}
	if !bytes.Equal(body, referenceBody(t, "fig7")) {
		t.Error("post-revival sweep differs from the single-node run")
	}
	ws := c.Registry().Workers()
	if ws[0].Down || ws[0].State != "up" {
		t.Errorf("revived worker state = %+v; want up", ws[0])
	}
	if d, _ := c.Snapshot().CounterValue("degraded"); d != 0 {
		t.Errorf("degraded gauge still %d after revival", d)
	}
}

// TestChaosDegradedModeLocalFallback: with every worker unreachable and
// the fallback enabled (the default), the coordinator answers the job
// itself — byte-identically — and says so in metrics and healthz.
func TestChaosDegradedModeLocalFallback(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep test in -short mode")
	}
	testutil.VerifyNoLeaks(t)
	// Two workers that are already gone: real listeners, closed before
	// the coordinator ever dials them.
	dead1 := httptest.NewServer(http.NotFoundHandler())
	dead2 := httptest.NewServer(http.NotFoundHandler())
	u1, u2 := dead1.URL, dead2.URL
	dead1.Close()
	dead2.Close()

	cfg := chaosConfig()
	cfg.Workers = []string{u1, u2}
	cfg.RetryBudget = 1
	c := New(cfg)
	ts := httptest.NewServer(c)
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		c.Shutdown(ctx)
	})

	resp, body := postJSON(t, ts.URL+"/v1/experiments", expRequest("fig7"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded run: status %d: %s", resp.StatusCode, body)
	}
	if !bytes.Equal(body, referenceBody(t, "fig7")) {
		t.Error("degraded local run differs from the single-node run")
	}
	if lr, _ := c.Snapshot().CounterValue("local_runs"); lr == 0 {
		t.Error("degraded run recorded no local_runs")
	}
	if d, _ := c.Snapshot().CounterValue("degraded"); d != 1 {
		t.Error("degraded gauge not set with every worker down")
	}
	hz, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hzBody struct {
		Status string `json:"status"`
	}
	json.NewDecoder(hz.Body).Decode(&hzBody)
	hz.Body.Close()
	if hzBody.Status != "degraded" {
		t.Errorf("healthz status = %q; want degraded", hzBody.Status)
	}

	// The sim relay path degrades the same way.
	simReq := server.SimRequest{
		Bench: "gzip", Scheme: "baseline",
		Footprint: "1M", Instructions: testInstr, Seed: testSeed,
	}
	resp, viaCluster := postJSON(t, ts.URL+"/v1/sim", simReq)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded sim: status %d: %s", resp.StatusCode, viaCluster)
	}
	_, cleanWorker := newWorker(t, server.Config{})
	respW, direct := postJSON(t, cleanWorker.URL+"/v1/sim", simReq)
	if respW.StatusCode != http.StatusOK {
		t.Fatalf("clean worker sim: status %d", respW.StatusCode)
	}
	if !bytes.Equal(viaCluster, direct) {
		t.Error("degraded local sim differs from a clean worker run")
	}
}

// TestProberBoundedByStalledWorker: a worker whose /healthz hangs must
// not wedge the prober — the probe deadline expires, the worker marks
// down, and probing continues.
func TestProberBoundedByStalledWorker(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	stalled := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done() // hang until the prober gives up
	}))
	defer stalled.Close()
	_, healthy := newWorker(t, server.Config{})

	cfg := Config{
		Workers:       []string{stalled.URL, healthy.URL},
		ProbeInterval: 20 * time.Millisecond,
		ProbeTimeout:  50 * time.Millisecond,
		FailThreshold: 2,
	}
	c := New(cfg)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		c.Shutdown(ctx)
	})

	deadline := time.Now().Add(3 * time.Second)
	for {
		var stalledDown, healthyUp bool
		for _, w := range c.Registry().Workers() {
			switch w.URL {
			case normalizeURL(stalled.URL):
				stalledDown = w.Down
			case normalizeURL(healthy.URL):
				healthyUp = !w.Down
			}
		}
		if stalledDown && healthyUp {
			return // prober survived the stall and kept probing the healthy node
		}
		if time.Now().After(deadline) {
			t.Fatalf("prober state after 3 s: %+v; want the stalled worker down, the healthy one up", c.Registry().Workers())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestBackoffBounds pins the jittered-backoff contract: hints are
// respected up to the cap, the default ramp doubles, jitter stays
// within 25%, and gigantic attempt counts (loadtest runs with
// SaturationRetries in the thousands) cannot overflow into zero-length
// waits.
func TestBackoffBounds(t *testing.T) {
	cfg := chaosConfig()
	cfg.MaxRetryWait = 2 * time.Second
	c := New(cfg)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		c.Shutdown(ctx)
	})

	check := func(hint time.Duration, attempt int, lo, hi time.Duration) {
		t.Helper()
		for i := 0; i < 50; i++ {
			got := c.backoff(hint, attempt)
			if got < lo || got > hi {
				t.Fatalf("backoff(%v, %d) = %v; want in [%v, %v]", hint, attempt, got, lo, hi)
			}
		}
	}
	// A worker hint is respected, plus at most 25% jitter.
	check(300*time.Millisecond, 1, 300*time.Millisecond, 375*time.Millisecond)
	// Hints beyond the cap clamp to it.
	check(10*time.Second, 1, 2*time.Second, 2500*time.Millisecond)
	// The hintless ramp doubles: 50, 100, 200 ms (+jitter).
	check(0, 1, 50*time.Millisecond, 63*time.Millisecond)
	check(0, 2, 100*time.Millisecond, 125*time.Millisecond)
	check(0, 3, 200*time.Millisecond, 250*time.Millisecond)
	// Huge attempts saturate at the cap instead of overflowing to zero.
	check(0, 40, 2*time.Second, 2500*time.Millisecond)
	check(0, 10_000, 2*time.Second, 2500*time.Millisecond)
}

// TestRegistryBreakerHalfOpen unit-tests the breaker's state machine:
// open excludes, cooldown expiry admits one trial as a failover
// candidate, a failed trial re-opens, a successful one closes.
func TestRegistryBreakerHalfOpen(t *testing.T) {
	g := NewRegistry(0, 1, 60*time.Millisecond)
	g.Add("http://a:1")
	g.Add("http://b:1")
	boom := errors.New("boom")

	g.ReportFailure("http://a:1", boom, true)
	if ws := g.Workers(); ws[0].State != "open" {
		t.Fatalf("state after mark-down = %q; want open", ws[0].State)
	}
	for _, n := range g.Candidates("k") {
		if n == "http://a:1" {
			t.Fatal("open worker offered as a candidate")
		}
	}

	time.Sleep(80 * time.Millisecond)
	if ws := g.Workers(); ws[0].State != "half-open" {
		t.Fatalf("state after cooldown = %q; want half-open", ws[0].State)
	}
	cands := g.Candidates("k")
	if len(cands) != 2 || cands[len(cands)-1] != "http://a:1" {
		t.Fatalf("candidates with a half-open worker = %v; want it last", cands)
	}
	// The trial dispatch claims the slot: no second candidate offer.
	g.NoteDispatch("http://a:1")
	for _, n := range g.Candidates("k") {
		if n == "http://a:1" {
			t.Fatal("half-open worker offered again while its trial is in flight")
		}
	}
	// Failed trial: re-open for another cooldown.
	g.ReportFailure("http://a:1", boom, false)
	if ws := g.Workers(); ws[0].State != "open" {
		t.Fatalf("state after failed trial = %q; want open", ws[0].State)
	}
	// Passed trial (after another cooldown): closed.
	time.Sleep(80 * time.Millisecond)
	g.NoteDispatch("http://a:1")
	g.ReportSuccess("http://a:1")
	if ws := g.Workers(); ws[0].State != "up" || ws[0].Down {
		t.Fatalf("state after successful trial = %+v; want up", ws[0])
	}
}

// TestJournal unit-tests durability details: round-trip, reopen,
// duplicate puts, and corrupt-tail tolerance (torn writes and bodies
// that fail their own digest are skipped, not fatal).
func TestJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	bodyA := []byte("{\n  \"a\": 1\n}") // multi-line: the format must preserve bytes exactly
	if err := j.Put("ka", bodyA); err != nil {
		t.Fatal(err)
	}
	if err := j.Put("kb", []byte(`{"b":2}`)); err != nil {
		t.Fatal(err)
	}
	if err := j.Put("ka", []byte("ignored duplicate")); err != nil {
		t.Fatal(err)
	}
	if got, ok := j.Get("ka"); !ok || !bytes.Equal(got, bodyA) {
		t.Fatalf("Get(ka) = %q, %v; want the original bytes", got, ok)
	}
	if j.Len() != 2 || j.Appends() != 2 {
		t.Fatalf("Len=%d Appends=%d; want 2, 2", j.Len(), j.Appends())
	}
	j.Close()

	// Corrupt the tail: a torn line and a digest-mismatched entry.
	appendFile(t, path, "{\"key\":\"torn\",\"sha256\":\"beef\",\"bo")
	appendFile(t, path, "\n{\"key\":\"lying\",\"sha256\":\"0000000000000000000000000000000000000000000000000000000000000000\",\"body\":\"{}\"}\n")

	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Len() != 2 {
		t.Fatalf("reopened journal Len = %d; want 2 (corrupt tail skipped)", j2.Len())
	}
	if got, ok := j2.Get("ka"); !ok || !bytes.Equal(got, bodyA) {
		t.Fatalf("reopened Get(ka) = %q, %v; want the original bytes", got, ok)
	}
	if _, ok := j2.Get("lying"); ok {
		t.Fatal("digest-mismatched entry survived the reload")
	}
	// And appending still works after a tolerant load.
	if err := j2.Put("kc", []byte(`{"c":3}`)); err != nil {
		t.Fatal(err)
	}
	j3, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	if j3.Len() != 3 {
		t.Fatalf("journal Len after post-corruption append = %d; want 3", j3.Len())
	}
}

// appendFile tacks raw bytes onto a journal file, simulating torn or
// tampered tails.
func appendFile(t *testing.T, path, s string) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(s); err != nil {
		t.Fatal(err)
	}
	f.Close()
}
