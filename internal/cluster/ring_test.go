package cluster

import (
	"errors"
	"fmt"
	"testing"
)

func TestRingDeterministicPlacement(t *testing.T) {
	build := func() *Ring {
		r := NewRing(0)
		r.Add("http://a:1")
		r.Add("http://b:1")
		r.Add("http://c:1")
		return r
	}
	r1, r2 := build(), build()
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("key-%d", i)
		h1, ok1 := r1.Home(key)
		h2, ok2 := r2.Home(key)
		if !ok1 || !ok2 || h1 != h2 {
			t.Fatalf("placement of %q not deterministic: %q/%v vs %q/%v", key, h1, ok1, h2, ok2)
		}
	}
	// Insertion order must not matter either: the ring is a pure
	// function of its membership.
	r3 := NewRing(0)
	r3.Add("http://c:1")
	r3.Add("http://a:1")
	r3.Add("http://b:1")
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("key-%d", i)
		h1, _ := r1.Home(key)
		h3, _ := r3.Home(key)
		if h1 != h3 {
			t.Fatalf("placement of %q depends on insertion order: %q vs %q", key, h1, h3)
		}
	}
}

func TestRingSpreadsKeys(t *testing.T) {
	r := NewRing(0)
	nodes := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"}
	for _, n := range nodes {
		r.Add(n)
	}
	counts := make(map[string]int)
	const n = 4000
	for i := 0; i < n; i++ {
		home, ok := r.Home(fmt.Sprintf("key-%d", i))
		if !ok {
			t.Fatal("Home on a populated ring returned false")
		}
		counts[home]++
	}
	for _, node := range nodes {
		got := counts[node]
		// With 64 vnodes the arcs are smooth enough that no node should
		// stray past double or below half of the fair share.
		if got < n/len(nodes)/2 || got > n/len(nodes)*2 {
			t.Errorf("node %s owns %d of %d keys; want near %d", node, got, n, n/len(nodes))
		}
	}
}

func TestRingRemoveMovesOnlyOrphanedKeys(t *testing.T) {
	r := NewRing(0)
	for _, n := range []string{"http://a:1", "http://b:1", "http://c:1"} {
		r.Add(n)
	}
	before := make(map[string]string)
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("key-%d", i)
		before[key], _ = r.Home(key)
	}
	r.Remove("http://b:1")
	for key, prev := range before {
		now, ok := r.Home(key)
		if !ok {
			t.Fatal("Home on a populated ring returned false")
		}
		if prev != "http://b:1" && now != prev {
			t.Fatalf("key %q moved from %s to %s though its home never left the ring", key, prev, now)
		}
		if now == "http://b:1" {
			t.Fatalf("key %q still maps to a removed node", key)
		}
	}
}

func TestRingSequenceDistinctAndHomeFirst(t *testing.T) {
	r := NewRing(0)
	nodes := []string{"http://a:1", "http://b:1", "http://c:1"}
	for _, n := range nodes {
		r.Add(n)
	}
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("key-%d", i)
		seq := r.Sequence(key, 10)
		if len(seq) != len(nodes) {
			t.Fatalf("Sequence(%q) = %v; want all %d nodes", key, seq, len(nodes))
		}
		home, _ := r.Home(key)
		if seq[0] != home {
			t.Fatalf("Sequence(%q)[0] = %s; want home %s", key, seq[0], home)
		}
		seen := make(map[string]bool)
		for _, n := range seq {
			if seen[n] {
				t.Fatalf("Sequence(%q) repeats %s", key, n)
			}
			seen[n] = true
		}
	}
	if got := NewRing(0).Sequence("k", 3); got != nil {
		t.Errorf("Sequence on an empty ring = %v; want nil", got)
	}
}

func TestRegistryMarkDownAndRevive(t *testing.T) {
	g := NewRegistry(0, 2, 0)
	g.Add("http://a:1")
	g.Add("http://b:1")
	errBoom := errors.New("boom")

	if down := g.ReportFailure("http://a:1", errBoom, false); down {
		t.Fatal("one failure below the threshold marked the worker down")
	}
	if down := g.ReportFailure("http://a:1", errBoom, false); !down {
		t.Fatal("two consecutive failures did not mark the worker down")
	}
	for _, url := range g.Up() {
		if url == "http://a:1" {
			t.Fatal("down worker listed as up")
		}
	}
	// Candidates route around the down worker…
	for i := 0; i < 50; i++ {
		for _, n := range g.Candidates(fmt.Sprintf("key-%d", i)) {
			if n == "http://a:1" {
				t.Fatal("down worker offered as a candidate while a live one exists")
			}
		}
	}
	// …and a probe success revives it.
	g.ReportSuccess("http://a:1")
	if len(g.Up()) != 2 {
		t.Fatalf("Up after revive = %v; want both workers", g.Up())
	}

	// With every worker down, candidates fall back to the full sequence
	// rather than refusing all work.
	g.ReportFailure("http://a:1", errBoom, true)
	g.ReportFailure("http://b:1", errBoom, true)
	if got := g.Candidates("key"); len(got) != 2 {
		t.Fatalf("Candidates with all workers down = %v; want the full sequence", got)
	}
}

func TestRegistryImmediateMarkDown(t *testing.T) {
	g := NewRegistry(0, 3, 0)
	g.Add("http://a:1/")
	// Trailing slash normalizes away: same worker.
	if g.Add("http://a:1") {
		t.Fatal("re-adding a worker under a spelling variant created a second entry")
	}
	if down := g.ReportFailure("http://a:1", errors.New("connection refused"), true); !down {
		t.Fatal("an immediate failure did not mark the worker down")
	}
	ws := g.Workers()
	if len(ws) != 1 || !ws[0].Down || ws[0].MarkDowns != 1 {
		t.Fatalf("Workers = %+v; want one down worker with one mark-down", ws)
	}
	// A re-join (worker restarted) revives it.
	g.Add("http://a:1")
	if len(g.Up()) != 1 {
		t.Fatal("re-join did not revive the worker")
	}
}
