package cluster

import (
	"sort"
	"strings"
	"sync"
	"time"
)

// Registry tracks the cluster's worker nodes: ring membership, up/down
// state, and per-worker dispatch counters. Dispatch paths report
// outcomes; the health prober (coordinator.go) reports probe results;
// both flow through the same mark-down/mark-up logic so a worker's
// state has one definition: a per-worker circuit breaker.
//
// The breaker has the classic three states. Closed (up): traffic flows,
// consecutive failures count toward the threshold. Open (down): no
// traffic for a cooldown window; further failures (probes, strays)
// refresh the window. Half-open: the cooldown expired, so Candidates
// offers the worker again — as a failover candidate behind the closed
// ones — and the first dispatch is the trial; success closes the
// breaker, failure re-opens it for another cooldown. The prober's
// successful probe also closes it, so revival does not wait for
// traffic when probing is enabled.
//
// Down workers stay on the ring — key ownership must not churn on a
// transient outage, or every blip would cold-start the caches — but
// Candidates skips open workers, so traffic routes around a down
// worker to the next node clockwise until the breaker lets it back.
type Registry struct {
	mu            sync.Mutex
	ring          *Ring
	workers       map[string]*workerState
	failThreshold int
	cooldown      time.Duration
}

type workerState struct {
	url string
	// down gates dispatch; consecFails counts failures since the last
	// success, and down flips when it reaches the registry threshold.
	down        bool
	consecFails int
	lastErr     string
	lastChange  time.Time
	// openUntil is when the breaker's cooldown expires; trial marks the
	// single half-open probe dispatch as taken.
	openUntil time.Time
	trial     bool

	dispatched uint64 // cells/jobs sent to this worker
	failures   uint64 // dispatch and probe failures observed
	markDowns  uint64 // times this worker was marked down
}

// state renders the breaker state at time now.
func (w *workerState) state(now time.Time) string {
	switch {
	case !w.down:
		return "up"
	case now.Before(w.openUntil):
		return "open"
	default:
		return "half-open"
	}
}

// halfOpenReady reports whether the worker may receive its half-open
// trial dispatch at time now.
func (w *workerState) halfOpenReady(now time.Time) bool {
	return w.down && !w.trial && !now.Before(w.openUntil)
}

// WorkerInfo is one worker's state as reported by Workers — the
// topology and metrics view.
type WorkerInfo struct {
	URL  string `json:"url"`
	Down bool   `json:"down"`
	// State is the breaker state: "up", "open" (cooling down), or
	// "half-open" (eligible for a trial dispatch).
	State      string `json:"state"`
	LastError  string `json:"last_error,omitempty"`
	Dispatched uint64 `json:"dispatched"`
	Failures   uint64 `json:"failures"`
	MarkDowns  uint64 `json:"mark_downs"`
}

// NewRegistry creates an empty registry. failThreshold is how many
// consecutive failures mark a worker down (<= 0: 2 — one failure could
// be the victim of a mid-request kill; two in a row is a pattern).
// cooldown is the breaker's open window before a half-open trial
// (<= 0: 5 s).
func NewRegistry(vnodes, failThreshold int, cooldown time.Duration) *Registry {
	if failThreshold <= 0 {
		failThreshold = 2
	}
	if cooldown <= 0 {
		cooldown = 5 * time.Second
	}
	return &Registry{
		ring:          NewRing(vnodes),
		workers:       make(map[string]*workerState),
		failThreshold: failThreshold,
		cooldown:      cooldown,
	}
}

// normalizeURL canonicalizes a worker URL so "http://a:1/" and
// "http://a:1" name one worker.
func normalizeURL(u string) string {
	return strings.TrimRight(strings.TrimSpace(u), "/")
}

// Add registers a worker as up, reporting whether it was new. Re-adding
// a known worker (a worker re-joining after a restart) revives it.
func (g *Registry) Add(url string) bool {
	url = normalizeURL(url)
	if url == "" {
		return false
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	w, ok := g.workers[url]
	if !ok {
		g.workers[url] = &workerState{url: url, lastChange: time.Now()}
		g.ring.Add(url)
		return true
	}
	w.down = false
	w.consecFails = 0
	w.lastErr = ""
	w.trial = false
	w.lastChange = time.Now()
	return false
}

// Candidates returns the workers that should run key's job, in
// failover order: the closed (up) workers first — the key's home, then
// successive nodes clockwise on the ring — then any half-open workers
// whose breaker cooldown has expired and whose trial is unclaimed, so
// a recovering node re-earns traffic as a failover target before it
// carries primaries again. When every worker is open it returns the
// full sequence anyway — dispatching into a possibly-recovering
// cluster beats refusing all work on the breaker's say-so.
func (g *Registry) Candidates(key string) []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	now := time.Now()
	seq := g.ring.Sequence(key, g.ring.Len())
	up := make([]string, 0, len(seq))
	for _, url := range seq {
		if w := g.workers[url]; w != nil && !w.down {
			up = append(up, url)
		}
	}
	for _, url := range seq {
		if w := g.workers[url]; w != nil && w.halfOpenReady(now) {
			up = append(up, url)
		}
	}
	if len(up) == 0 {
		return seq
	}
	return up
}

// Up returns the up workers, sorted — the set a cluster-wide peer
// lookup should consult.
func (g *Registry) Up() []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]string, 0, len(g.workers))
	for url, w := range g.workers {
		if !w.down {
			out = append(out, url)
		}
	}
	sort.Strings(out)
	return out
}

// All returns every registered worker URL, sorted, up or not — the set
// the health prober sweeps.
func (g *Registry) All() []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]string, 0, len(g.workers))
	for url := range g.workers {
		out = append(out, url)
	}
	sort.Strings(out)
	return out
}

// NoteDispatch counts a job sent to url. Dispatching to a half-open
// worker claims its single trial slot, so concurrent cells cannot pile
// onto a node that has yet to prove it recovered.
func (g *Registry) NoteDispatch(url string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if w := g.workers[normalizeURL(url)]; w != nil {
		w.dispatched++
		if w.halfOpenReady(time.Now()) {
			w.trial = true
		}
	}
}

// ReportSuccess records a successful interaction: the breaker closes,
// the worker is up, and its failure streak resets.
func (g *Registry) ReportSuccess(url string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	w := g.workers[normalizeURL(url)]
	if w == nil {
		return
	}
	if w.down {
		w.lastChange = time.Now()
	}
	w.down = false
	w.consecFails = 0
	w.lastErr = ""
	w.trial = false
}

// ReportFailure records a failed interaction (dispatch error or probe
// failure) and reports whether the worker is now down. immediate
// short-circuits the threshold — a connection refused means the process
// is gone, and waiting out more probes would send it more doomed work.
// A failure on an already-open breaker (a failed half-open trial, a
// probe miss) re-arms the cooldown window.
func (g *Registry) ReportFailure(url string, err error, immediate bool) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	w := g.workers[normalizeURL(url)]
	if w == nil {
		return false
	}
	now := time.Now()
	w.failures++
	w.consecFails++
	if err != nil {
		w.lastErr = err.Error()
	}
	if !w.down && (immediate || w.consecFails >= g.failThreshold) {
		w.down = true
		w.markDowns++
		w.lastChange = now
	}
	if w.down {
		w.openUntil = now.Add(g.cooldown)
		w.trial = false
	}
	return w.down
}

// Workers returns every worker's state, sorted by URL.
func (g *Registry) Workers() []WorkerInfo {
	g.mu.Lock()
	defer g.mu.Unlock()
	now := time.Now()
	out := make([]WorkerInfo, 0, len(g.workers))
	for _, w := range g.workers {
		out = append(out, WorkerInfo{
			URL: w.url, Down: w.down, State: w.state(now), LastError: w.lastErr,
			Dispatched: w.dispatched, Failures: w.failures, MarkDowns: w.markDowns,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].URL < out[j].URL })
	return out
}
