package cluster

import (
	"sort"
	"strings"
	"sync"
	"time"
)

// Registry tracks the cluster's worker nodes: ring membership, up/down
// state, and per-worker dispatch counters. Dispatch paths report
// outcomes; the health prober (coordinator.go) reports probe results;
// both flow through the same mark-down/mark-up logic so a worker's
// state has one definition.
//
// Down workers stay on the ring — key ownership must not churn on a
// transient outage, or every blip would cold-start the caches — but
// Candidates skips them, so traffic routes around a down worker to the
// next node clockwise until the prober brings it back.
type Registry struct {
	mu            sync.Mutex
	ring          *Ring
	workers       map[string]*workerState
	failThreshold int
}

type workerState struct {
	url string
	// down gates dispatch; consecFails counts failures since the last
	// success, and down flips when it reaches the registry threshold.
	down        bool
	consecFails int
	lastErr     string
	lastChange  time.Time

	dispatched uint64 // cells/jobs sent to this worker
	failures   uint64 // dispatch and probe failures observed
	markDowns  uint64 // times this worker was marked down
}

// WorkerInfo is one worker's state as reported by Workers — the
// topology and metrics view.
type WorkerInfo struct {
	URL        string `json:"url"`
	Down       bool   `json:"down"`
	LastError  string `json:"last_error,omitempty"`
	Dispatched uint64 `json:"dispatched"`
	Failures   uint64 `json:"failures"`
	MarkDowns  uint64 `json:"mark_downs"`
}

// NewRegistry creates an empty registry. failThreshold is how many
// consecutive failures mark a worker down (<= 0: 2 — one failure could
// be the victim of a mid-request kill; two in a row is a pattern).
func NewRegistry(vnodes, failThreshold int) *Registry {
	if failThreshold <= 0 {
		failThreshold = 2
	}
	return &Registry{
		ring:          NewRing(vnodes),
		workers:       make(map[string]*workerState),
		failThreshold: failThreshold,
	}
}

// normalizeURL canonicalizes a worker URL so "http://a:1/" and
// "http://a:1" name one worker.
func normalizeURL(u string) string {
	return strings.TrimRight(strings.TrimSpace(u), "/")
}

// Add registers a worker as up, reporting whether it was new. Re-adding
// a known worker (a worker re-joining after a restart) revives it.
func (g *Registry) Add(url string) bool {
	url = normalizeURL(url)
	if url == "" {
		return false
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	w, ok := g.workers[url]
	if !ok {
		g.workers[url] = &workerState{url: url, lastChange: time.Now()}
		g.ring.Add(url)
		return true
	}
	w.down = false
	w.consecFails = 0
	w.lastErr = ""
	w.lastChange = time.Now()
	return false
}

// Candidates returns the up workers that should run key's job, in
// failover order: the key's home first, then successive nodes clockwise
// on the ring. When every worker is down it returns the full sequence
// anyway — dispatching into a possibly-recovering cluster beats
// refusing all work on the prober's say-so.
func (g *Registry) Candidates(key string) []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	seq := g.ring.Sequence(key, g.ring.Len())
	up := make([]string, 0, len(seq))
	for _, url := range seq {
		if w := g.workers[url]; w != nil && !w.down {
			up = append(up, url)
		}
	}
	if len(up) == 0 {
		return seq
	}
	return up
}

// Up returns the up workers, sorted — the set a cluster-wide peer
// lookup should consult.
func (g *Registry) Up() []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]string, 0, len(g.workers))
	for url, w := range g.workers {
		if !w.down {
			out = append(out, url)
		}
	}
	sort.Strings(out)
	return out
}

// All returns every registered worker URL, sorted, up or not — the set
// the health prober sweeps.
func (g *Registry) All() []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]string, 0, len(g.workers))
	for url := range g.workers {
		out = append(out, url)
	}
	sort.Strings(out)
	return out
}

// NoteDispatch counts a job sent to url.
func (g *Registry) NoteDispatch(url string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if w := g.workers[normalizeURL(url)]; w != nil {
		w.dispatched++
	}
}

// ReportSuccess records a successful interaction: the worker is up and
// its failure streak resets.
func (g *Registry) ReportSuccess(url string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	w := g.workers[normalizeURL(url)]
	if w == nil {
		return
	}
	if w.down {
		w.lastChange = time.Now()
	}
	w.down = false
	w.consecFails = 0
	w.lastErr = ""
}

// ReportFailure records a failed interaction (dispatch error or probe
// failure) and reports whether the worker is now down. immediate
// short-circuits the threshold — a connection refused means the process
// is gone, and waiting out more probes would send it more doomed work.
func (g *Registry) ReportFailure(url string, err error, immediate bool) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	w := g.workers[normalizeURL(url)]
	if w == nil {
		return false
	}
	w.failures++
	w.consecFails++
	if err != nil {
		w.lastErr = err.Error()
	}
	if !w.down && (immediate || w.consecFails >= g.failThreshold) {
		w.down = true
		w.markDowns++
		w.lastChange = time.Now()
	}
	return w.down
}

// Workers returns every worker's state, sorted by URL.
func (g *Registry) Workers() []WorkerInfo {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]WorkerInfo, 0, len(g.workers))
	for _, w := range g.workers {
		out = append(out, WorkerInfo{
			URL: w.url, Down: w.down, LastError: w.lastErr,
			Dispatched: w.dispatched, Failures: w.failures, MarkDowns: w.markDowns,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].URL < out[j].URL })
	return out
}
