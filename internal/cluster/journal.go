package cluster

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"

	"ctrpred/internal/server"
)

// Journal is a durable record of completed sweep cells: one JSONL line
// per finished cell, keyed by the cell's content address and carrying
// the canonical snapshot body plus its digest. A coordinator given a
// journal consults it before dispatching a cell and appends every cell
// it completes, so a coordinator killed mid-sweep and restarted over
// the same journal re-runs zero finished cells — the service-tier
// analogue of the paper's precomputation: work done ahead of (or
// before) the crash is never done again.
//
// The file is append-only and tolerant of a torn tail: a line that
// fails to parse or whose body does not match its recorded digest is
// skipped on load (a crash mid-append loses at most that one cell).
// Cell bodies are deterministic functions of their key, so replaying
// an entry is always safe and duplicate appends are harmless.
type Journal struct {
	mu      sync.Mutex
	f       *os.File
	entries map[string][]byte
	appends uint64
}

// journalEntry is one JSONL line. Body is the canonical snapshot kept
// as a JSON string, not an embedded object: string escaping preserves
// the body's exact bytes (it is indented, multi-line JSON), where
// embedding would re-compact it and break both the digest and the
// byte-identity guarantee.
type journalEntry struct {
	Key    string `json:"key"`
	SHA256 string `json:"sha256"`
	Body   string `json:"body"`
}

// OpenJournal opens (creating if needed) the journal at path and loads
// every intact entry.
func OpenJournal(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	j := &Journal{f: f, entries: make(map[string][]byte)}
	r := bufio.NewReader(f)
	for {
		line, err := r.ReadBytes('\n')
		if len(line) > 0 {
			var e journalEntry
			if json.Unmarshal(line, &e) == nil && e.Key != "" &&
				server.BodyDigest([]byte(e.Body)) == e.SHA256 {
				j.entries[e.Key] = []byte(e.Body)
			}
			// Anything else is a torn or corrupted line; skip it.
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("journal: %w", err)
		}
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, fmt.Errorf("journal: %w", err)
	}
	return j, nil
}

// Get returns the journaled body for key, if any.
func (j *Journal) Get(key string) ([]byte, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	b, ok := j.entries[key]
	return b, ok
}

// Put records a completed cell, appending it durably. Re-putting a key
// already journaled is a no-op (the body is deterministic).
func (j *Journal) Put(key string, body []byte) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, ok := j.entries[key]; ok {
		return nil
	}
	line, err := json.Marshal(journalEntry{Key: key, SHA256: server.BodyDigest(body), Body: string(body)})
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	line = append(line, '\n')
	if _, err := j.f.Write(line); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	j.entries[key] = body
	j.appends++
	return nil
}

// Len is the number of completed cells on record.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.entries)
}

// Appends is how many new cells this process journaled (excludes
// entries loaded at open).
func (j *Journal) Appends() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.appends
}

// Close closes the underlying file. The journal must not be used after.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}
