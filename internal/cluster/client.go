package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"ctrpred/internal/server"
)

// StatusError is a worker's non-2xx HTTP response: the status, the
// Retry-After hint when the worker sent one (saturation), and the
// error message from the JSON body when it parsed.
type StatusError struct {
	Status     int
	RetryAfter time.Duration
	Message    string
	// Raw is the response body (bounded), kept so a worker's terminal
	// error event can be relayed with its code intact.
	Raw []byte
}

func (e *StatusError) Error() string {
	if e.Message != "" {
		return fmt.Sprintf("worker returned %d: %s", e.Status, e.Message)
	}
	return fmt.Sprintf("worker returned %d", e.Status)
}

// Saturated reports whether the error is a worker saying "queue full,
// come back later" — retryable on the same node after the hinted wait.
func (e *StatusError) Saturated() bool { return e.Status == http.StatusTooManyRequests }

// IntegrityError is a response body whose bytes do not match the
// origin's X-Snapshot-Digest: the network (or an intermediary) lied.
// The dispatch loop treats it like a failed dispatch — the body is
// discarded and the job re-fetched — but not like a dead worker, so a
// single flipped bit does not cost a node its ring traffic.
type IntegrityError struct {
	Node string
	Want string // digest the origin attached
	Got  string // digest of the bytes received
}

func (e *IntegrityError) Error() string {
	return fmt.Sprintf("response from %s failed integrity check: digest %.12s.. != advertised %.12s..", e.Node, e.Got, e.Want)
}

// ErrStreamStalled marks a streaming relay that went silent longer
// than the client's idle window. Workers heartbeat far more often than
// any idle window worth configuring, so silence means the worker (or
// the path to it) is wedged.
var ErrStreamStalled = errors.New("stream stalled")

// Client is the coordinator's HTTP client for worker nodes. The zero
// value is not usable; NewClient wires the transport.
type Client struct {
	hc *http.Client
	// StreamIdle bounds the silence between consecutive events on a
	// PostStream relay (0: unbounded). On expiry the stream is torn down
	// and the call returns an error wrapping ErrStreamStalled.
	StreamIdle time.Duration
}

// NewClient wraps an http.Client (nil: a default client with no global
// timeout — job deadlines come from request contexts, and streams live
// as long as the job runs).
func NewClient(hc *http.Client) *Client {
	if hc == nil {
		hc = &http.Client{}
	}
	return &Client{hc: hc}
}

// Healthz probes a worker's GET /healthz. Any response but 200 — a
// refused connection, a 503 from a draining worker — is an error, so
// "healthy" means "will accept work", not merely "process exists".
func (c *Client) Healthz(ctx context.Context, base string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer drainClose(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return statusError(resp)
	}
	return nil
}

// LookupResult probes a worker's content-addressed cache: GET
// /v1/results/{key}. A 404 is a clean miss (false, nil error); any
// other failure is an error.
func (c *Client) LookupResult(ctx context.Context, base, key string) ([]byte, bool, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/results/"+key, nil)
	if err != nil {
		return nil, false, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, false, err
	}
	defer drainClose(resp.Body)
	switch resp.StatusCode {
	case http.StatusOK:
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			return nil, false, err
		}
		if err := verifyDigest(base, resp.Header, body); err != nil {
			return nil, false, err
		}
		return body, true, nil
	case http.StatusNotFound:
		return nil, false, nil
	default:
		return nil, false, statusError(resp)
	}
}

// PostJSON sends a JSON job to a worker and returns the response body
// and headers. Non-2xx responses come back as a *StatusError carrying
// the Retry-After hint, so the dispatch loop can tell saturation (wait
// and retry here) from breakage (fail over).
func (c *Client) PostJSON(ctx context.Context, base, path string, body []byte) ([]byte, http.Header, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+path, bytes.NewReader(body))
	if err != nil {
		return nil, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, nil, err
	}
	defer drainClose(resp.Body)
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return nil, resp.Header, statusError(resp)
	}
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, resp.Header, err
	}
	if err := verifyDigest(base, resp.Header, out); err != nil {
		return nil, resp.Header, err
	}
	return out, resp.Header, nil
}

// verifyDigest checks a body against the X-Snapshot-Digest header the
// origin attached, when it attached one. Responses without the header
// (older workers, error bodies) pass through unchecked.
func verifyDigest(node string, h http.Header, body []byte) error {
	want := server.SnapshotDigest(h)
	if want == "" {
		return nil
	}
	if got := server.BodyDigest(body); got != want {
		return &IntegrityError{Node: node, Want: want, Got: got}
	}
	return nil
}

// PostStream sends a JSON job with streaming enabled and relays each
// NDJSON event to onEvent along with its decoded form, until the stream
// ends or onEvent returns an error. The worker's terminal event (result
// or error) is the stream's outcome; a transport error mid-stream means
// the worker died with the job in flight.
func (c *Client) PostStream(ctx context.Context, base, path string, body []byte, onEvent func(server.Event, json.RawMessage) error) error {
	// The idle watchdog cancels the request context when the stream goes
	// silent for StreamIdle; decoding then fails and the error is
	// rewrapped as ErrStreamStalled so callers can tell a wedged worker
	// from a cancelled job.
	var stalled atomic.Bool
	var watchdog *time.Timer
	if c.StreamIdle > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithCancel(ctx)
		defer cancel()
		watchdog = time.AfterFunc(c.StreamIdle, func() {
			stalled.Store(true)
			cancel()
		})
		defer watchdog.Stop()
	}
	wrapStall := func(err error) error {
		if stalled.Load() {
			return fmt.Errorf("%w: no events from %s within %s: %v", ErrStreamStalled, base, c.StreamIdle, err)
		}
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+path+"?stream=1", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(req)
	if err != nil {
		return wrapStall(err)
	}
	defer drainClose(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return statusError(resp)
	}
	dec := json.NewDecoder(resp.Body)
	for {
		var raw json.RawMessage
		if err := dec.Decode(&raw); err != nil {
			if err == io.EOF {
				return nil
			}
			return wrapStall(err)
		}
		if watchdog != nil {
			watchdog.Reset(c.StreamIdle)
		}
		var ev server.Event
		if err := json.Unmarshal(raw, &ev); err != nil {
			return fmt.Errorf("malformed stream event: %w", err)
		}
		if err := onEvent(ev, raw); err != nil {
			return err
		}
	}
}

// statusError reads a non-2xx response into a StatusError, pulling the
// message out of the server's {"error": ...} body when present.
func statusError(resp *http.Response) *StatusError {
	e := &StatusError{Status: resp.StatusCode}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.Atoi(ra); err == nil && secs > 0 {
			e.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
	e.Raw = body
	var payload struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &payload) == nil && payload.Error != "" {
		e.Message = payload.Error
	} else if len(bytes.TrimSpace(body)) > 0 {
		e.Message = string(bytes.TrimSpace(body))
	}
	return e
}

// drainClose finishes a response body so the transport can reuse the
// connection.
func drainClose(rc io.ReadCloser) {
	io.Copy(io.Discard, io.LimitReader(rc, 1<<20))
	rc.Close()
}
