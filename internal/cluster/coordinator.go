package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ctrpred/internal/experiments"
	"ctrpred/internal/runpool"
	"ctrpred/internal/server"
	"ctrpred/internal/stats"
	"ctrpred/internal/workload"
)

// Config sizes a Coordinator. The zero value plus a worker list is
// usable; every knob has a sane default.
type Config struct {
	// Workers are the initial worker base URLs ("http://host:port").
	// More can join at runtime via POST /v1/cluster/join.
	Workers []string
	// Fanout caps in-flight cells per experiment (0: 2 per worker).
	Fanout int
	// Jobs caps concurrently running coordinator jobs (0: 2 per worker,
	// at least 4 — coordinator jobs mostly wait on the network).
	Jobs int
	// Backlog caps queued jobs behind the running ones (0: 2×Jobs;
	// < 0: none). A full backlog rejects with 429 + Retry-After.
	Backlog int
	// CacheEntries bounds the coordinator's own result cache (0: 256;
	// < 0: disabled).
	CacheEntries int
	// VNodes is the ring points per worker (0: 64).
	VNodes int
	// FailThreshold is consecutive failures before mark-down (0: 2).
	FailThreshold int
	// ProbeInterval paces the health prober (0: 1 s; < 0: disabled —
	// dispatch failures still mark workers down, but nothing revives
	// them).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one health probe (0: 2 s).
	ProbeTimeout time.Duration
	// RetryBudget is the redispatch (failover) budget per cell beyond
	// the first attempt (0: 3; < 0: none).
	RetryBudget int
	// SaturationRetries is how many 429s a cell absorbs on one node
	// before failing over (0: 8; < 0: none).
	SaturationRetries int
	// MaxRetryWait caps one saturation backoff sleep (0: 2 s).
	MaxRetryWait time.Duration
	// DrainTimeout is how long Shutdown lets running jobs finish (0: 5 s).
	DrainTimeout time.Duration
	// HTTPClient overrides the transport to workers (nil: default).
	HTTPClient *http.Client
	// CellTimeout bounds one cell dispatch attempt (0: 60 s). A cell
	// still unanswered at the deadline counts as a failed dispatch and
	// fails over.
	CellTimeout time.Duration
	// HedgeAfter is the hedging trigger: how long a cell dispatch may
	// run before a speculative duplicate goes to the next ring
	// candidate, first canonical response winning. 0 adapts the trigger
	// to 2× the observed p90 cell latency (off until enough samples
	// exist); > 0 fixes it; < 0 disables hedging.
	HedgeAfter time.Duration
	// LookupTimeout bounds one peer GET /v1/results/{key} probe (0: 2 s)
	// so a stalled worker cannot wedge a cache-recovery sweep.
	LookupTimeout time.Duration
	// StreamIdleTimeout bounds the silence between events on a relayed
	// worker stream (0: 15 s; < 0: unbounded). Workers heartbeat every
	// few hundred milliseconds, so a silent stream is a wedged worker;
	// on expiry the relay fails over.
	StreamIdleTimeout time.Duration
	// BreakerCooldown is the per-worker circuit breaker's open window:
	// how long a marked-down worker waits before a half-open trial
	// dispatch may probe it (0: 5 s).
	BreakerCooldown time.Duration
	// Journal, when set, records every completed sweep cell durably and
	// is consulted before dispatching one — a restarted coordinator
	// resumes a grid re-running zero finished cells.
	Journal *Journal
	// DisableLocalFallback turns off degraded mode. By default a
	// coordinator whose every dispatch candidate is exhausted runs the
	// job locally, in-process, behind a warning metric — an answer late
	// beats an error during a full outage. Disabled, the job fails with
	// ErrDispatchExhausted.
	DisableLocalFallback bool
}

func (cfg Config) withDefaults() Config {
	if cfg.Jobs <= 0 {
		cfg.Jobs = 2 * len(cfg.Workers)
		if cfg.Jobs < 4 {
			cfg.Jobs = 4
		}
	}
	if cfg.Backlog == 0 {
		cfg.Backlog = 2 * cfg.Jobs
	}
	if cfg.Backlog < 0 {
		cfg.Backlog = 0
	}
	if cfg.CacheEntries == 0 {
		cfg.CacheEntries = 256
	}
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = time.Second
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = 2 * time.Second
	}
	if cfg.RetryBudget == 0 {
		cfg.RetryBudget = 3
	}
	if cfg.RetryBudget < 0 {
		cfg.RetryBudget = 0
	}
	if cfg.SaturationRetries == 0 {
		cfg.SaturationRetries = 8
	}
	if cfg.SaturationRetries < 0 {
		cfg.SaturationRetries = 0
	}
	if cfg.MaxRetryWait <= 0 {
		cfg.MaxRetryWait = 2 * time.Second
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 5 * time.Second
	}
	if cfg.CellTimeout <= 0 {
		cfg.CellTimeout = 60 * time.Second
	}
	if cfg.LookupTimeout <= 0 {
		cfg.LookupTimeout = 2 * time.Second
	}
	if cfg.StreamIdleTimeout == 0 {
		cfg.StreamIdleTimeout = 15 * time.Second
	}
	if cfg.StreamIdleTimeout < 0 {
		cfg.StreamIdleTimeout = 0
	}
	return cfg
}

// Coordinator fronts a cluster of ctrpredd workers behind the same
// HTTP/JSON surface a single node serves. It validates requests with
// the server package's own request types, routes each job to the worker
// owning its content address on the ring, splits partitionable
// experiment grids into per-benchmark cells dispatched with bounded
// fan-out, reassembles the parts byte-identically, retries saturated
// workers with jittered backoff, and requeues cells when a worker dies
// mid-job. Create with New, mount as an http.Handler, stop with
// Shutdown.
type Coordinator struct {
	cfg    Config
	reg    *Registry
	client *Client
	pool   *runpool.Pool
	cache  *server.ResultCache
	mux    *http.ServeMux
	start  time.Time
	routes routeCounters

	// jobsCtx parents every job; hardStop cancels it when the drain
	// window expires.
	jobsCtx  context.Context
	hardStop context.CancelFunc

	mu        sync.Mutex
	draining  bool
	probeStop chan struct{}
	probeDone chan struct{}
	rngState  uint64 // xorshift state for backoff jitter

	accepted   atomic.Uint64
	rejected   atomic.Uint64
	finished   atomic.Uint64
	failed     atomic.Uint64
	streamed   atomic.Uint64
	cacheSrvd  atomic.Uint64
	joins      atomic.Uint64
	simsRelay  atomic.Uint64
	expsSplit  atomic.Uint64
	expsFwd    atomic.Uint64
	cellsOK    atomic.Uint64
	cellsCache atomic.Uint64 // cells answered from a worker's cache
	satRetries atomic.Uint64 // 429 backoff retries
	failovers  atomic.Uint64 // redispatches to another worker
	peerHits   atomic.Uint64 // results recovered via GET /v1/results

	hedges        atomic.Uint64 // speculative duplicate dispatches issued
	hedgeWins     atomic.Uint64 // races the hedge won
	corruptBodies atomic.Uint64 // responses discarded on digest mismatch
	journalHits   atomic.Uint64 // cells answered from the sweep journal
	journalApp    atomic.Uint64 // cells appended to the sweep journal
	localRuns     atomic.Uint64 // degraded-mode in-process executions

	// cellLat tracks successful cell dispatch latencies for the
	// adaptive hedge trigger.
	cellLat latencyTracker

	jobDurNS atomic.Int64
	jobsDone atomic.Uint64
}

// New assembles a Coordinator over cfg.Workers and starts its health
// prober (unless probing is disabled).
func New(cfg Config) *Coordinator {
	cfg = cfg.withDefaults()
	jobsCtx, hardStop := context.WithCancel(context.Background())
	client := NewClient(cfg.HTTPClient)
	client.StreamIdle = cfg.StreamIdleTimeout
	c := &Coordinator{
		cfg:      cfg,
		reg:      NewRegistry(cfg.VNodes, cfg.FailThreshold, cfg.BreakerCooldown),
		client:   client,
		pool:     runpool.NewPool(cfg.Jobs, cfg.Backlog),
		cache:    server.NewResultCache(cfg.CacheEntries),
		mux:      http.NewServeMux(),
		start:    time.Now(),
		jobsCtx:  jobsCtx,
		hardStop: hardStop,
		rngState: 0x9e3779b97f4a7c15,
	}
	for _, w := range cfg.Workers {
		c.reg.Add(w)
	}
	c.mux.HandleFunc("POST /v1/sim", c.routes.counted("sim", c.handleSim))
	c.mux.HandleFunc("POST /v1/experiments", c.routes.counted("experiments", c.handleExperiment))
	c.mux.HandleFunc("GET /v1/benchmarks", c.routes.counted("benchmarks", c.handleBenchmarks))
	c.mux.HandleFunc("GET /v1/experiments", c.routes.counted("experiment_list", c.handleExperimentList))
	c.mux.HandleFunc("GET /v1/results/{key}", c.routes.counted("results", c.handleResult))
	c.mux.HandleFunc("POST /v1/cluster/join", c.routes.counted("join", c.handleJoin))
	c.mux.HandleFunc("GET /v1/cluster", c.routes.counted("cluster", c.handleTopology))
	c.mux.HandleFunc("GET /healthz", c.routes.counted("healthz", c.handleHealthz))
	c.mux.HandleFunc("GET /metrics", c.routes.counted("metrics", c.handleMetrics))
	if cfg.ProbeInterval > 0 {
		c.probeStop = make(chan struct{})
		c.probeDone = make(chan struct{})
		go c.probeLoop()
	}
	return c
}

func (c *Coordinator) ServeHTTP(w http.ResponseWriter, r *http.Request) { c.mux.ServeHTTP(w, r) }

// Registry exposes the worker registry (topology inspection and tests).
func (c *Coordinator) Registry() *Registry { return c.reg }

// Shutdown stops the prober and admission, lets running jobs finish
// within the drain window, then cancels them. Safe to call repeatedly.
func (c *Coordinator) Shutdown(ctx context.Context) error {
	c.mu.Lock()
	alreadyDraining := c.draining
	c.draining = true
	c.mu.Unlock()
	if c.probeStop != nil && !alreadyDraining {
		close(c.probeStop)
		<-c.probeDone
	}
	drainCtx, cancel := context.WithTimeout(ctx, c.cfg.DrainTimeout)
	defer cancel()
	if err := c.pool.Shutdown(drainCtx); err == nil {
		c.hardStop()
		return nil
	}
	c.hardStop()
	return c.pool.Shutdown(ctx)
}

func (c *Coordinator) isDraining() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.draining
}

// probeLoop sweeps every registered worker's /healthz at the configured
// interval, reviving down workers that answer and marking down workers
// that stop answering.
func (c *Coordinator) probeLoop() {
	defer close(c.probeDone)
	t := time.NewTicker(c.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-c.probeStop:
			return
		case <-t.C:
		}
		for _, node := range c.reg.All() {
			ctx, cancel := context.WithTimeout(context.Background(), c.cfg.ProbeTimeout)
			err := c.client.Healthz(ctx, node)
			cancel()
			if err != nil {
				c.reg.ReportFailure(node, err, false)
			} else {
				c.reg.ReportSuccess(node)
			}
		}
	}
}

// --- request dispatch (admission, cache, response shaping) ---

// dispatch mirrors the single node's request lifecycle: coordinator
// cache probe, pool admission with 429 + Retry-After backpressure, job
// execution, and the same streaming/plain response shapes — so a client
// cannot tell a coordinator from a worker by protocol alone.
func (c *Coordinator) dispatch(w http.ResponseWriter, r *http.Request, key, label string, noCache bool, run func(ctx context.Context, stream bool, emit func(server.Event))) {
	stream := wantsStream(r)

	if !noCache {
		if body, ok := c.cache.Get(key); ok {
			c.cacheSrvd.Add(1)
			if stream {
				sw := newStreamWriter(w)
				sw.write(server.Event{Event: "accepted", Key: key, Cached: true})
				sw.write(server.Event{Event: "result", Key: key, Cached: true, Snapshot: body})
				return
			}
			w.Header().Set("Content-Type", "application/json")
			w.Header().Set("X-Cache", "hit")
			w.Header().Set("X-Result-Key", key)
			w.Write(body)
			return
		}
	}

	if c.isDraining() {
		httpError(w, http.StatusServiceUnavailable, errors.New("coordinator draining"))
		return
	}

	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	unhook := context.AfterFunc(c.jobsCtx, cancel)
	defer unhook()

	events := make(chan server.Event, 128)
	emit := func(ev server.Event) { events <- ev }
	emitOpt := func(ev server.Event) {
		select {
		case events <- ev:
		default:
		}
	}
	job := func() {
		defer close(events)
		start := time.Now()
		defer func() {
			c.jobDurNS.Add(int64(time.Since(start)))
			c.jobsDone.Add(1)
		}()
		run(ctx, stream, func(ev server.Event) {
			if ev.Event == "result" || ev.Event == "error" {
				emit(ev)
			} else {
				emitOpt(ev)
			}
		})
	}

	ps := c.pool.Stats()
	queueDepth := ps.Pending
	if err := c.pool.TrySubmit(label, job); err != nil {
		c.rejected.Add(1)
		if errors.Is(err, runpool.ErrPoolSaturated) {
			w.Header().Set("Retry-After", strconv.Itoa(c.retryAfter(ps)))
			httpError(w, http.StatusTooManyRequests, errors.New("cluster queue full; retry later"))
		} else {
			httpError(w, http.StatusServiceUnavailable, err)
		}
		return
	}
	c.accepted.Add(1)

	if stream {
		c.streamed.Add(1)
		sw := newStreamWriter(w)
		sw.write(server.Event{Event: "accepted", Key: key, Queue: queueDepth})
		for ev := range events {
			switch ev.Event {
			case "error":
				c.failed.Add(1)
			case "result":
				c.finished.Add(1)
			}
			sw.write(ev)
		}
		return
	}

	var final server.Event
	for ev := range events {
		if ev.Event == "result" || ev.Event == "error" {
			final = ev
		}
	}
	switch final.Event {
	case "result":
		c.finished.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Cache", "miss")
		w.Header().Set("X-Result-Key", key)
		w.Write(final.Snapshot)
	case "error":
		c.failed.Add(1)
		status := final.Status
		if status == 0 {
			status = statusForCode(final.Code)
		}
		writeJSON(w, status, final)
	default:
		httpError(w, http.StatusInternalServerError, errors.New("job produced no result"))
	}
}

// retryAfter is the coordinator's Retry-After hint under saturation:
// the waves model the single node uses, fed by the coordinator's own
// mean job wall-clock.
func (c *Coordinator) retryAfter(ps runpool.PoolStats) int {
	mean := time.Second
	if n := c.jobsDone.Load(); n > 0 {
		mean = time.Duration(uint64(c.jobDurNS.Load()) / n)
		if mean <= 0 {
			mean = time.Second
		}
	}
	if ps.Workers <= 0 {
		return 1
	}
	waves := 1 + ps.Pending/ps.Workers
	secs := int((time.Duration(waves)*mean + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	if secs > 60 {
		secs = 60
	}
	return secs
}

// --- handlers ---

func (c *Coordinator) handleSim(w http.ResponseWriter, r *http.Request) {
	var req server.SimRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	key, err := req.CacheKey()
	if err != nil {
		httpError(w, server.BuildStatus(err), err)
		return
	}
	body, err := json.Marshal(req)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	label := fmt.Sprintf("relay sim %s %s", req.Bench, key[:12])
	c.dispatch(w, r, key, label, req.NoCache, func(ctx context.Context, stream bool, emit func(server.Event)) {
		c.simsRelay.Add(1)
		c.execForward(ctx, "/v1/sim", body, key, req.NoCache, stream, emit)
	})
}

func (c *Coordinator) handleExperiment(w http.ResponseWriter, r *http.Request) {
	var req server.ExperimentRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	key, err := req.CacheKey()
	if err != nil {
		httpError(w, server.BuildStatus(err), err)
		return
	}
	benches, err := req.ResolvedBenchmarks()
	if err != nil {
		httpError(w, server.BuildStatus(err), err)
		return
	}
	label := fmt.Sprintf("cluster exp %s %s", req.ID, key[:12])
	if experiments.Partitionable(req.ID) && len(benches) > 1 {
		c.dispatch(w, r, key, label, req.NoCache, func(ctx context.Context, stream bool, emit func(server.Event)) {
			c.expsSplit.Add(1)
			c.execPartitioned(ctx, req, benches, key, emit)
		})
		return
	}
	// Grids that do not decompose by benchmark run whole on the key's
	// home worker, exactly as a single node would run them.
	body, err := json.Marshal(req)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	c.dispatch(w, r, key, label, req.NoCache, func(ctx context.Context, stream bool, emit func(server.Event)) {
		c.expsFwd.Add(1)
		c.execForward(ctx, "/v1/experiments", body, key, req.NoCache, stream, emit)
	})
}

// execForward relays one whole job (a sim, or a non-partitionable
// experiment) to its home worker. For a plain client it relays the
// worker's plain response verbatim — the body a single node would have
// written, byte for byte — and that canonical form is what the
// coordinator caches. For a streaming client it relays the worker's
// stream, dropping the worker's own "accepted" line (the coordinator
// already emitted its own); the canonical body is then recovered from
// the worker's cache for the coordinator's. Worker loss fails over to
// the next ring candidate, probing the cluster's caches first in case
// the result already exists somewhere; a streaming client may see
// progress events restart, but every simulation is deterministic, so
// the terminal result is the same bytes from any node.
func (c *Coordinator) execForward(ctx context.Context, path string, body []byte, key string, noCache, stream bool, emit func(server.Event)) {
	redispatch, satRetries := 0, 0
	var lastErr error
	for {
		if err := ctx.Err(); err != nil {
			emit(ctxErrEvent(err))
			return
		}
		cands := c.reg.Candidates(key)
		if len(cands) == 0 {
			c.forwardFallback(ctx, path, body, key, noCache, emit, errors.New("no workers registered"))
			return
		}
		node := cands[redispatch%len(cands)]
		if redispatch > 0 && !noCache {
			if b, ok := c.peerLookup(ctx, key); ok {
				c.peerHits.Add(1)
				c.cache.Put(key, b)
				emit(server.Event{Event: "result", Key: key, Cached: true, Snapshot: b})
				return
			}
		}
		c.reg.NoteDispatch(node)

		var err error
		terminal := false
		if stream {
			err = c.relayStream(ctx, node, path, body, key, noCache, emit, &terminal)
		} else {
			err = c.relayPlain(ctx, node, path, body, key, noCache, emit, &terminal)
		}
		if terminal {
			return
		}
		if err == nil {
			err = fmt.Errorf("worker %s closed the stream without a terminal event", node)
		}
		lastErr = err

		var se *StatusError
		if errors.As(err, &se) && se.Saturated() && satRetries < c.cfg.SaturationRetries {
			satRetries++
			c.satRetries.Add(1)
			if !c.sleep(ctx, c.backoff(se.RetryAfter, satRetries)) {
				emit(ctxErrEvent(ctx.Err()))
				return
			}
			continue
		}
		if se != nil && se.Status >= 400 && se.Status < 500 && !se.Saturated() {
			// The job itself is bad or failed deterministically; another
			// node would answer with the same refusal.
			emit(workerErrEvent(se))
			return
		}
		if isIntegrityError(err) {
			c.corruptBodies.Add(1)
		}
		c.reg.ReportFailure(node, err, transportFailure(err))
		c.failovers.Add(1)
		redispatch++
		if redispatch > c.cfg.RetryBudget {
			cause := fmt.Errorf("%w: job failed after %d dispatches: %v", ErrDispatchExhausted, redispatch, lastErr)
			if len(c.reg.Up()) == 0 {
				// Every worker is down and the budget is spent: degraded
				// mode (unless disabled) answers locally rather than 502ing
				// a deterministic job the coordinator can compute itself.
				c.forwardFallback(ctx, path, body, key, noCache, emit, cause)
				return
			}
			emit(errorEvent("unavailable", http.StatusBadGateway, cause))
			return
		}
	}
}

// forwardFallback resolves a whole-job dispatch that ran out of
// cluster: degraded-mode local execution when allowed, the typed
// exhaustion error otherwise.
func (c *Coordinator) forwardFallback(ctx context.Context, path string, body []byte, key string, noCache bool, emit func(server.Event), cause error) {
	if c.cfg.DisableLocalFallback {
		if !errors.Is(cause, ErrDispatchExhausted) {
			cause = fmt.Errorf("%w: %v", ErrDispatchExhausted, cause)
		}
		emit(errorEvent("unavailable", http.StatusBadGateway, cause))
		return
	}
	c.localRuns.Add(1)
	out, err := server.ExecuteLocal(ctx, path, body)
	if err != nil {
		code, status := server.Classify(err)
		emit(errorEvent(code, status, fmt.Errorf("degraded local run: %w", err)))
		return
	}
	if !noCache {
		c.cache.Put(key, out)
	}
	emit(server.Event{Event: "result", Key: key, Snapshot: out})
}

// relayPlain forwards one plain POST to node and emits the terminal
// event. The worker's success body is relayed (and cached) untouched.
func (c *Coordinator) relayPlain(ctx context.Context, node, path string, body []byte, key string, noCache bool, emit func(server.Event), terminal *bool) error {
	out, _, err := c.client.PostJSON(ctx, node, path, body)
	if err != nil {
		var se *StatusError
		if errors.As(err, &se) && se.Status >= 500 && se.Status < 600 && se.Status != http.StatusBadGateway {
			// A worker-side job failure (timeout, panic, self-check) is an
			// answer, not an outage — relay it as the terminal event. 502s
			// and transport errors fall through to the failover loop.
			*terminal = true
			c.reg.ReportSuccess(node)
			emit(workerErrEvent(se))
			return nil
		}
		return err
	}
	*terminal = true
	c.reg.ReportSuccess(node)
	if !noCache {
		c.cache.Put(key, out)
	}
	emit(server.Event{Event: "result", Key: key, Snapshot: out})
	return nil
}

// relayStream forwards one streaming POST to node, relaying every event
// but the worker's "accepted" line.
func (c *Coordinator) relayStream(ctx context.Context, node, path string, body []byte, key string, noCache bool, emit func(server.Event), terminal *bool) error {
	return c.client.PostStream(ctx, node, path, body, func(ev server.Event, _ json.RawMessage) error {
		switch ev.Event {
		case "accepted":
			return nil
		case "result":
			*terminal = true
			c.reg.ReportSuccess(node)
			if !noCache {
				// The stream embeds the snapshot compacted; the canonical
				// indented body lives in the worker's cache. Cache that, so a
				// later plain request through the coordinator returns exactly
				// what a single node would have. Deadlined: recovering the
				// canonical form is an optimization, not worth wedging on.
				lctx, cancel := context.WithTimeout(ctx, c.cfg.LookupTimeout)
				if canon, ok, err := c.client.LookupResult(lctx, node, key); err == nil && ok {
					c.cache.Put(key, canon)
				}
				cancel()
			}
			emit(ev)
		case "error":
			// The worker answered; the job itself failed. Deterministic
			// jobs fail the same way anywhere — report, don't requeue.
			*terminal = true
			c.reg.ReportSuccess(node)
			ev.Status = statusForCode(ev.Code)
			emit(ev)
		default:
			emit(ev)
		}
		return nil
	})
}

// workerErrEvent rebuilds a terminal error event from a worker's plain
// error response: the worker wrote its final Event as the JSON body, so
// the code and message survive the round trip; the status rides the
// HTTP response.
func workerErrEvent(se *StatusError) server.Event {
	var ev server.Event
	if len(se.Raw) > 0 && json.Unmarshal(se.Raw, &ev) == nil && ev.Event == "error" {
		ev.Status = se.Status
		return ev
	}
	return errorEvent("upstream", se.Status, errors.New(se.Message))
}

// execPartitioned splits a partitionable experiment into one cell per
// benchmark, dispatches the cells across the cluster with bounded
// fan-out (each cell routed to the worker owning its own content
// address, so a repeated grid hits warm caches), and reassembles the
// parts with experiments.MergeParts — byte-identical to the single-node
// run of the full grid.
func (c *Coordinator) execPartitioned(ctx context.Context, req server.ExperimentRequest, benches []string, key string, emit func(server.Event)) {
	jobs := make([]runpool.Job[experiments.Result], 0, len(benches))
	for _, bench := range benches {
		cell := req
		cell.Benchmarks = []string{bench}
		cellBody, err := json.Marshal(cell)
		if err != nil {
			emit(errorEvent("internal", http.StatusInternalServerError, err))
			return
		}
		cellKey, err := cell.CacheKey()
		if err != nil {
			emit(errorEvent("internal", http.StatusInternalServerError, err))
			return
		}
		jobs = append(jobs, runpool.Job[experiments.Result]{
			Label: fmt.Sprintf("cell %s/%s", req.ID, bench),
			Fn: func(ctx context.Context) (experiments.Result, error) {
				body, err := c.runCell(ctx, cellBody, cellKey, cell.NoCache)
				if err != nil {
					return experiments.Result{}, fmt.Errorf("cell %s: %w", bench, err)
				}
				return experiments.DecodeResultSnapshot(body)
			},
		})
	}

	fanout := c.cfg.Fanout
	if fanout <= 0 {
		fanout = 2 * len(c.reg.All())
		if fanout < 2 {
			fanout = 2
		}
	}
	parts, err := runpool.RunContext(ctx, runpool.Options{
		Workers: fanout,
		Progress: func(u runpool.Update) {
			emit(server.Event{Event: "update", Update: wireUpdate(u)})
		},
	}, jobs)
	if err != nil {
		emit(jobErrEvent(err))
		return
	}
	merged, err := experiments.MergeParts(req.ID, parts)
	if err != nil {
		emit(errorEvent("internal", http.StatusInternalServerError, err))
		return
	}
	body, err := merged.Snapshot().JSON()
	if err != nil {
		emit(errorEvent("internal", http.StatusInternalServerError, err))
		return
	}
	if !req.NoCache {
		c.cache.Put(key, body)
	}
	emit(server.Event{Event: "result", Key: key, Snapshot: body})
}

// ErrDispatchExhausted is the typed failure of a job whose bounded
// redispatch budget ran out without an answer (and, with the local
// fallback disabled, whose degraded mode was off). Callers can
// errors.Is against it to tell "the cluster cannot serve this" from
// "the job itself is bad".
var ErrDispatchExhausted = errors.New("dispatch budget exhausted")

// runCell runs one cell to completion and returns its snapshot body:
// sweep journal first (a resumed grid re-runs zero finished cells),
// then the cluster, journaling whatever the dispatch produced.
func (c *Coordinator) runCell(ctx context.Context, body []byte, key string, noCache bool) ([]byte, error) {
	if j := c.cfg.Journal; j != nil {
		if b, ok := j.Get(key); ok {
			c.journalHits.Add(1)
			return b, nil
		}
	}
	out, err := c.dispatchCell(ctx, body, key, noCache)
	if err != nil {
		return nil, err
	}
	if j := c.cfg.Journal; j != nil {
		if jerr := j.Put(key, out); jerr == nil {
			c.journalApp.Add(1)
		}
		// A failed append is not a failed cell: the result is in hand,
		// only resumability degrades.
	}
	return out, nil
}

// dispatchCell runs one cell somewhere on the cluster. The cell goes
// to the worker owning its content address under a per-attempt
// deadline, with a speculative hedge to the next ring candidate when
// the attempt runs long (see hedgedPost); a 429 waits out the worker's
// Retry-After (with jitter, bounded by SaturationRetries) before
// failing over; a corrupt body (digest mismatch) is discarded and
// re-fetched; a dead worker is marked down and the cell requeues on
// the next ring candidate — after probing the cluster's caches, since
// the dying worker may have finished and a peer may hold the bytes.
// When the budget runs out with every worker down, degraded mode runs
// the cell in-process (unless disabled).
func (c *Coordinator) dispatchCell(ctx context.Context, body []byte, key string, noCache bool) ([]byte, error) {
	redispatch, satRetries := 0, 0
	var lastErr error
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		cands := c.reg.Candidates(key)
		if len(cands) == 0 {
			return c.cellFallback(ctx, body, errors.New("no workers registered"))
		}
		node := cands[redispatch%len(cands)]
		backup := ""
		if len(cands) > 1 {
			backup = cands[(redispatch+1)%len(cands)]
		}
		if redispatch > 0 && !noCache {
			if b, ok := c.peerLookup(ctx, key); ok {
				c.peerHits.Add(1)
				return b, nil
			}
		}
		res := c.hedgedPost(ctx, node, backup, "/v1/experiments", body)
		if res.err == nil {
			c.reg.ReportSuccess(res.node)
			c.cellsOK.Add(1)
			if res.hdr.Get("X-Cache") == "hit" {
				c.cellsCache.Add(1)
			}
			return res.out, nil
		}
		err := res.err
		lastErr = err

		var se *StatusError
		if errors.As(err, &se) {
			if se.Saturated() && satRetries < c.cfg.SaturationRetries {
				satRetries++
				c.satRetries.Add(1)
				if !c.sleep(ctx, c.backoff(se.RetryAfter, satRetries)) {
					return nil, ctx.Err()
				}
				continue
			}
			if se.Status >= 400 && se.Status < 500 && !se.Saturated() {
				// The cell itself is bad or failed deterministically (a
				// security halt is a 422): the same bytes would come back
				// from every node.
				return nil, err
			}
		}
		if isIntegrityError(err) {
			c.corruptBodies.Add(1)
		}
		c.reg.ReportFailure(res.node, err, transportFailure(err))
		c.failovers.Add(1)
		redispatch++
		if redispatch > c.cfg.RetryBudget {
			cause := fmt.Errorf("%w: cell failed after %d dispatches: %v", ErrDispatchExhausted, redispatch, lastErr)
			if len(c.reg.Up()) == 0 {
				return c.cellFallback(ctx, body, cause)
			}
			return nil, cause
		}
	}
}

// cellFallback resolves a cell that ran out of cluster: degraded-mode
// local execution when allowed, the typed exhaustion error otherwise.
func (c *Coordinator) cellFallback(ctx context.Context, body []byte, cause error) ([]byte, error) {
	if c.cfg.DisableLocalFallback {
		if errors.Is(cause, ErrDispatchExhausted) {
			return nil, cause
		}
		return nil, fmt.Errorf("%w: %v", ErrDispatchExhausted, cause)
	}
	c.localRuns.Add(1)
	out, err := server.ExecuteLocal(ctx, "/v1/experiments", body)
	if err != nil {
		return nil, fmt.Errorf("degraded local run: %w", err)
	}
	return out, nil
}

// peerLookup asks the cluster for an already-computed result, home
// worker first, then the rest of the ring sequence. Each probe is
// individually deadlined so one stalled worker cannot wedge the sweep.
func (c *Coordinator) peerLookup(ctx context.Context, key string) ([]byte, bool) {
	for _, node := range c.reg.Candidates(key) {
		lctx, cancel := context.WithTimeout(ctx, c.cfg.LookupTimeout)
		b, ok, err := c.client.LookupResult(lctx, node, key)
		cancel()
		if err == nil && ok {
			return b, true
		}
	}
	return nil, false
}

// isIntegrityError reports whether err is a digest-mismatch discard.
func isIntegrityError(err error) bool {
	var ie *IntegrityError
	return errors.As(err, &ie)
}

// backoff is the saturation wait: the worker's Retry-After hint when it
// sent one (else a doubling ramp from 50 ms), capped by MaxRetryWait,
// plus up to 25% jitter so colliding cells do not re-arrive in
// lockstep.
func (c *Coordinator) backoff(hint time.Duration, attempt int) time.Duration {
	wait := hint
	if wait <= 0 {
		// Clamp the exponent: the ramp is capped by MaxRetryWait anyway,
		// and an unchecked shift overflows time.Duration into zero-length
		// waits (a hot spin) once attempt grows past ~40 — loadtest runs
		// with SaturationRetries in the thousands.
		shift := attempt - 1
		if shift > 6 {
			shift = 6
		}
		wait = 50 * time.Millisecond << shift
	}
	if wait > c.cfg.MaxRetryWait {
		wait = c.cfg.MaxRetryWait
	}
	return wait + time.Duration(c.randFloat()*0.25*float64(wait))
}

// randFloat is a locked xorshift64 in [0,1) — jitter needs no
// cryptographic or reproducible source, just decorrelation.
func (c *Coordinator) randFloat() float64 {
	c.mu.Lock()
	x := c.rngState
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	c.rngState = x
	c.mu.Unlock()
	return float64(x>>11) / float64(1<<53)
}

// sleep waits d or until ctx is done, reporting whether the wait
// completed.
func (c *Coordinator) sleep(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// handleResult serves GET /v1/results/{key}: coordinator cache first,
// then the cluster (home worker first). A cluster hit is copied into
// the coordinator's cache on the way through.
func (c *Coordinator) handleResult(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if body, ok := c.cache.Get(key); ok {
		c.cacheSrvd.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Cache", "hit")
		w.Write(body)
		return
	}
	if body, ok := c.peerLookup(r.Context(), key); ok {
		c.peerHits.Add(1)
		c.cache.Put(key, body)
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Cache", "peer")
		w.Write(body)
		return
	}
	httpError(w, http.StatusNotFound, fmt.Errorf("no cached result for %q anywhere in the cluster", key))
}

// handleJoin serves POST /v1/cluster/join: a worker announcing itself.
func (c *Coordinator) handleJoin(w http.ResponseWriter, r *http.Request) {
	var req struct {
		URL string `json:"url"`
	}
	if !decodeJSON(w, r, &req) {
		return
	}
	u, err := url.Parse(req.URL)
	if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		httpError(w, http.StatusBadRequest, fmt.Errorf("join: want an http(s) base URL, got %q", req.URL))
		return
	}
	c.joins.Add(1)
	added := c.reg.Add(req.URL)
	writeJSON(w, http.StatusOK, map[string]any{
		"added":   added,
		"workers": c.reg.Workers(),
	})
}

// handleTopology serves GET /v1/cluster: the ring membership and each
// worker's state.
func (c *Coordinator) handleTopology(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"workers": c.reg.Workers(),
	})
}

// handleBenchmarks matches the worker surface so clients can point at
// the coordinator alone. The list is static library data; no need to
// ask a worker.
func (c *Coordinator) handleBenchmarks(w http.ResponseWriter, r *http.Request) {
	type bench struct {
		Name        string `json:"name"`
		Description string `json:"description"`
		MemoryBound bool   `json:"memory_bound"`
		WriteHeavy  bool   `json:"write_heavy"`
	}
	var out []bench
	for _, n := range workload.Names() {
		sp, _ := workload.Lookup(n)
		out = append(out, bench{Name: sp.Name, Description: sp.Description,
			MemoryBound: sp.MemoryBound, WriteHeavy: sp.WriteHeavy})
	}
	writeJSON(w, http.StatusOK, out)
}

func (c *Coordinator) handleExperimentList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, experiments.IDs())
}

func (c *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	code := http.StatusOK
	all, up := len(c.reg.All()), len(c.reg.Up())
	switch {
	case c.isDraining():
		status = "draining"
		code = http.StatusServiceUnavailable
	case c.degraded():
		// Every worker is down: still serving (local fallback, caches),
		// but an operator should know.
		status = "degraded"
	}
	writeJSON(w, code, map[string]any{
		"status":     status,
		"workers":    all,
		"workers_up": up,
	})
}

// degraded reports whether the coordinator has workers registered but
// none of them up — the state in which dispatches end in local
// fallback (or typed errors).
func (c *Coordinator) degraded() bool {
	return len(c.reg.All()) > 0 && len(c.reg.Up()) == 0
}

// Snapshot exports the coordinator's counters as a metrics tree: job
// admission at the root, cell dispatch outcomes under "cells", the
// admission pool and result cache as children, one child per worker.
func (c *Coordinator) Snapshot() *stats.Snapshot {
	n := stats.NewSnapshot("coordinator")
	n.Counter("accepted", c.accepted.Load())
	n.Counter("rejected", c.rejected.Load())
	n.Counter("finished", c.finished.Load())
	n.Counter("failed", c.failed.Load())
	n.Counter("streamed", c.streamed.Load())
	n.Counter("cache_served", c.cacheSrvd.Load())
	n.Counter("joins", c.joins.Load())
	n.Counter("sims_relayed", c.simsRelay.Load())
	n.Counter("experiments_split", c.expsSplit.Load())
	n.Counter("experiments_forwarded", c.expsFwd.Load())
	n.Value("uptime_seconds", time.Since(c.start).Seconds())

	degraded := uint64(0)
	if c.degraded() {
		degraded = 1
	}
	n.Counter("degraded", degraded)
	n.Counter("local_runs", c.localRuns.Load())

	cn := n.Child("cells")
	cn.Counter("completed", c.cellsOK.Load())
	cn.Counter("worker_cache_hits", c.cellsCache.Load())
	cn.Counter("saturation_retries", c.satRetries.Load())
	cn.Counter("failovers", c.failovers.Load())
	cn.Counter("peer_hits", c.peerHits.Load())
	cn.Counter("hedges", c.hedges.Load())
	cn.Counter("hedge_wins", c.hedgeWins.Load())
	cn.Counter("corrupt_bodies", c.corruptBodies.Load())
	cn.Counter("journal_hits", c.journalHits.Load())
	cn.Counter("journal_appends", c.journalApp.Load())

	ps := c.pool.Stats()
	pn := n.Child("pool")
	pn.Counter("submitted", ps.Submitted)
	pn.Counter("rejected", ps.Rejected)
	pn.Counter("completed", ps.Completed)
	pn.Counter("workers", uint64(ps.Workers))
	pn.Counter("pending", uint64(ps.Pending))
	pn.Counter("running", uint64(ps.Running))
	pn.Value("occupancy", ps.Occupancy())

	cs := c.cache.Stats()
	can := n.Child("cache")
	can.Counter("entries", uint64(cs.Entries))
	can.Counter("capacity", uint64(max(cs.Capacity, 0)))
	can.Counter("hits", cs.Hits)
	can.Counter("misses", cs.Misses)
	can.Counter("evictions", cs.Evictions)

	wn := n.Child("workers")
	for _, w := range c.reg.Workers() {
		one := wn.Child(w.URL)
		one.Counter("dispatched", w.Dispatched)
		one.Counter("failures", w.Failures)
		one.Counter("mark_downs", w.MarkDowns)
		down := uint64(0)
		if w.Down {
			down = 1
		}
		one.Counter("down", down)
	}

	c.routes.addTo(n.Child("endpoints"))
	return n
}

func (c *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	body, err := c.Snapshot().JSON()
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(body)
}

// --- event and error shaping ---

// errorEvent builds a coordinator-origin terminal error event.
func errorEvent(code string, status int, err error) server.Event {
	return server.Event{Event: "error", Error: err.Error(), Code: code, Status: status}
}

// ctxErrEvent classifies a context error the way the single node does.
func ctxErrEvent(err error) server.Event {
	if errors.Is(err, context.DeadlineExceeded) {
		return errorEvent("timeout", http.StatusGatewayTimeout, err)
	}
	return errorEvent("canceled", http.StatusServiceUnavailable, err)
}

// jobErrEvent classifies a failed fan-out: context errors keep their
// single-node codes, upstream StatusErrors keep their statuses, the
// rest is a bad gateway — some part of the cluster failed this job.
func jobErrEvent(err error) server.Event {
	switch {
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return ctxErrEvent(err)
	}
	var se *StatusError
	if errors.As(err, &se) {
		return errorEvent("upstream", se.Status, err)
	}
	return errorEvent("unavailable", http.StatusBadGateway, err)
}

// statusForCode maps a relayed worker error code to the HTTP status a
// plain response should carry: the worker's status travels in its HTTP
// response, not in the stream event, so the coordinator re-derives it.
func statusForCode(code string) int {
	switch code {
	case "bad_request":
		return http.StatusBadRequest
	case "security":
		return http.StatusUnprocessableEntity
	case "timeout":
		return http.StatusGatewayTimeout
	case "canceled", "unavailable":
		return http.StatusServiceUnavailable
	case "upstream":
		return http.StatusBadGateway
	default:
		return http.StatusInternalServerError
	}
}

// transportFailure reports whether err looks like the worker process is
// gone (connection-level failure) rather than an HTTP-level complaint —
// gone workers are marked down immediately instead of waiting out the
// probe threshold. A digest mismatch is neither: the worker answered,
// the bytes were wrong, so it counts toward the threshold like any
// HTTP-level failure instead of costing the node its traffic at once.
func transportFailure(err error) bool {
	var se *StatusError
	if errors.As(err, &se) {
		return false
	}
	return !isIntegrityError(err)
}

// wireUpdate mirrors the single node's update framing for cell
// progress.
func wireUpdate(u runpool.Update) *server.UpdateWire {
	w := &server.UpdateWire{
		Index: u.Index, Label: u.Label,
		ElapsedMS: float64(u.Elapsed) / float64(time.Millisecond),
		Done:      u.Done, Total: u.Total,
	}
	if u.Err != nil {
		w.Error = u.Err.Error()
	}
	return w
}

// --- HTTP plumbing (the coordinator speaks the same dialect as the
// single node; these mirror internal/server's helpers) ---

func wantsStream(r *http.Request) bool {
	if v := r.URL.Query().Get("stream"); v == "1" || v == "true" {
		return true
	}
	for _, accept := range r.Header.Values("Accept") {
		if accept == "application/x-ndjson" || accept == "application/ndjson" {
			return true
		}
	}
	return false
}

type streamWriter struct {
	w      http.ResponseWriter
	rc     *http.ResponseController
	enc    *json.Encoder
	broken bool
}

func newStreamWriter(w http.ResponseWriter) *streamWriter {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	return &streamWriter{w: w, rc: http.NewResponseController(w), enc: json.NewEncoder(w)}
}

func (sw *streamWriter) write(ev server.Event) {
	if sw.broken {
		return
	}
	sw.rc.SetWriteDeadline(time.Now().Add(30 * time.Second))
	if err := sw.enc.Encode(ev); err != nil {
		sw.broken = true
		return
	}
	sw.rc.Flush()
}

func decodeJSON(w http.ResponseWriter, r *http.Request, dst any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("request body: %w", err))
		return false
	}
	return true
}

func httpError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// routeCounters counts requests per route for /metrics, mirroring the
// worker's endpoint counters.
type routeCounters struct {
	mu     sync.Mutex
	counts map[string]uint64
}

func (e *routeCounters) counted(name string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		e.mu.Lock()
		if e.counts == nil {
			e.counts = make(map[string]uint64)
		}
		e.counts[name]++
		e.mu.Unlock()
		h(w, r)
	}
}

func (e *routeCounters) addTo(n *stats.Snapshot) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for name, v := range e.counts {
		n.Counter(name, v)
	}
}
