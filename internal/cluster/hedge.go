package cluster

import (
	"context"
	"net/http"
	"sort"
	"sync"
	"time"
)

// latencyTracker keeps a sliding window of successful cell dispatch
// latencies so the hedging trigger can adapt to what "slow" means on
// this cluster right now.
type latencyTracker struct {
	mu  sync.Mutex
	buf [64]time.Duration
	n   uint64 // total recorded; buf holds the most recent min(n, 64)
}

// minHedgeSamples gates adaptive hedging: with fewer observations the
// quantile is noise and hedging stays off.
const minHedgeSamples = 8

func (t *latencyTracker) record(d time.Duration) {
	t.mu.Lock()
	t.buf[t.n%uint64(len(t.buf))] = d
	t.n++
	t.mu.Unlock()
}

// quantile returns the q-quantile (nearest-rank) of the window, or
// false before minHedgeSamples observations exist.
func (t *latencyTracker) quantile(q float64) (time.Duration, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.n < minHedgeSamples {
		return 0, false
	}
	k := len(t.buf)
	if t.n < uint64(k) {
		k = int(t.n)
	}
	window := make([]time.Duration, k)
	copy(window, t.buf[:k])
	sort.Slice(window, func(i, j int) bool { return window[i] < window[j] })
	idx := int(q*float64(k)+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= k {
		idx = k - 1
	}
	return window[idx], true
}

// postResult is one dispatch attempt's outcome.
type postResult struct {
	out  []byte
	hdr  http.Header
	err  error
	node string
}

// hedgeDelay resolves the hedging trigger: how long a cell dispatch
// may run before a speculative duplicate goes to the next ring
// candidate. Negative disables hedging for this dispatch.
func (c *Coordinator) hedgeDelay() time.Duration {
	if c.cfg.HedgeAfter < 0 {
		return -1
	}
	if c.cfg.HedgeAfter > 0 {
		return c.cfg.HedgeAfter
	}
	// Adaptive: twice the observed p90, floored — a request past that is
	// a straggler worth racing. Off until the window has enough samples,
	// so a fresh coordinator behaves exactly like the unhedged one.
	p90, ok := c.cellLat.quantile(0.90)
	if !ok {
		return -1
	}
	d := 2 * p90
	if d < 100*time.Millisecond {
		d = 100 * time.Millisecond
	}
	return d
}

// hedgedPost runs one cell dispatch with a per-attempt deadline and a
// speculative hedge: if primary has not answered when the hedge
// trigger fires, the same request goes to backup, the first canonical
// response wins, and the loser's context is cancelled. The paper's
// idea at the service tier — predict the straggler, precompute the
// answer elsewhere, never let the critical path wait on one slow node.
//
// A fast primary failure (before the trigger) returns immediately so
// the caller's failover loop handles it; once the hedge is in flight,
// the race runs to the first success or to both failing (the primary's
// error wins reporting, and only the failed nodes are reported — a
// cancelled loser is not a failure).
func (c *Coordinator) hedgedPost(ctx context.Context, primary, backup, path string, body []byte) postResult {
	attemptCtx, cancel := context.WithTimeout(ctx, c.cfg.CellTimeout)
	defer cancel()

	results := make(chan postResult, 2) // buffered: the loser must never leak
	post := func(node string) {
		start := time.Now()
		out, hdr, err := c.client.PostJSON(attemptCtx, node, path, body)
		if err == nil {
			c.cellLat.record(time.Since(start))
		}
		results <- postResult{out: out, hdr: hdr, err: err, node: node}
	}

	c.reg.NoteDispatch(primary)
	go post(primary)

	var hedgeTimer *time.Timer
	var hedgeC <-chan time.Time
	if backup != "" && backup != primary {
		if delay := c.hedgeDelay(); delay >= 0 {
			hedgeTimer = time.NewTimer(delay)
			defer hedgeTimer.Stop()
			hedgeC = hedgeTimer.C
		}
	}

	hedged := false
	outstanding := 1
	var primaryErr *postResult
	for {
		select {
		case <-hedgeC:
			hedgeC = nil
			hedged = true
			outstanding++
			c.hedges.Add(1)
			c.reg.NoteDispatch(backup)
			go post(backup)
		case res := <-results:
			outstanding--
			if res.err == nil {
				if hedged && res.node == backup {
					c.hedgeWins.Add(1)
				}
				return res
			}
			if res.node == primary {
				primaryErr = &res
				if !hedged {
					// Fast-fail before the trigger: let the failover loop
					// pick the next candidate instead of waiting out a race
					// that has not started.
					return res
				}
			}
			if outstanding == 0 {
				if primaryErr != nil {
					return *primaryErr
				}
				return res
			}
			// One attempt failed, the other is still in flight: wait it
			// out (the deadline bounds the wait).
		}
	}
}
