package rng

import (
	"testing"
	"testing/quick"
)

func TestSplitMix64KnownValues(t *testing.T) {
	// Reference values for seed 0 from the canonical splitmix64.c.
	s := NewSplitMix64(0)
	want := []uint64{
		0xe220a8397b1dcdaf,
		0x6e789e6aa1b965f4,
		0x06c45d188009454f,
		0xf88bb8a8724c81ec,
		0x1b39896a51a8749b,
	}
	for i, w := range want {
		if got := s.Next(); got != w {
			t.Fatalf("SplitMix64(0) value %d = %#x, want %#x", i, got, w)
		}
	}
}

func TestXoshiroDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed generators diverged at step %d", i)
		}
	}
	c := New(43)
	same := 0
	a = New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d identical values out of 1000", same)
	}
}

func TestIntnRange(t *testing.T) {
	x := New(7)
	for i := 0; i < 10000; i++ {
		n := 1 + i%97
		v := x.Intn(n)
		if v < 0 || v >= n {
			t.Fatalf("Intn(%d) = %d out of range", n, v)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uint64n(0) did not panic")
		}
	}()
	New(1).Uint64n(0)
}

func TestFloat64Range(t *testing.T) {
	x := New(11)
	for i := 0; i < 10000; i++ {
		f := x.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestFloat64Property(t *testing.T) {
	f := func(seed uint64) bool {
		x := New(seed)
		for i := 0; i < 100; i++ {
			v := x.Float64()
			if v < 0 || v >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBoolProbability(t *testing.T) {
	x := New(3)
	n := 100000
	hits := 0
	for i := 0; i < n; i++ {
		if x.Bool(0.25) {
			hits++
		}
	}
	frac := float64(hits) / float64(n)
	if frac < 0.22 || frac > 0.28 {
		t.Fatalf("Bool(0.25) frequency = %v, want ≈0.25", frac)
	}
}

func TestGeometricMean(t *testing.T) {
	x := New(5)
	n := 50000
	sum := 0
	for i := 0; i < n; i++ {
		sum += x.Geometric(0.5)
	}
	mean := float64(sum) / float64(n)
	if mean < 0.9 || mean > 1.1 { // mean of Geom(0.5) failures = 1
		t.Fatalf("Geometric(0.5) mean = %v, want ≈1", mean)
	}
}

func TestGeometricPEdge(t *testing.T) {
	x := New(9)
	if g := x.Geometric(1); g != 0 {
		t.Fatalf("Geometric(1) = %d, want 0", g)
	}
}

func TestZipfRange(t *testing.T) {
	x := New(13)
	for i := 0; i < 10000; i++ {
		v := x.Zipf(1000, 2.0)
		if v < 0 || v >= 1000 {
			t.Fatalf("Zipf out of range: %d", v)
		}
	}
	if v := x.Zipf(1, 2.0); v != 0 {
		t.Fatalf("Zipf(1) = %d, want 0", v)
	}
}

func TestZipfSkew(t *testing.T) {
	// With exponent > 1, small indices should be much more common than a
	// uniform draw would make them.
	x := New(17)
	n := 100000
	low := 0
	for i := 0; i < n; i++ {
		if x.Zipf(1024, 3.0) < 128 {
			low++
		}
	}
	if frac := float64(low) / float64(n); frac < 0.4 {
		t.Fatalf("Zipf(1024, 3) P(<128) = %v, want skewed (> 0.4)", frac)
	}
}

func TestSqrt(t *testing.T) {
	for _, u := range []float64{0.25, 0.5, 1.0, 0.0625} {
		got := sqrt(u)
		if d := got*got - u; d > 1e-9 || d < -1e-9 {
			t.Fatalf("sqrt(%v) = %v, square differs by %v", u, got, d)
		}
	}
	if sqrt(0) != 0 {
		t.Fatal("sqrt(0) != 0")
	}
}

func BenchmarkXoshiroUint64(b *testing.B) {
	x := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += x.Uint64()
	}
	_ = sink
}
