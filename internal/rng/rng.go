// Package rng provides small, fast, deterministic pseudo-random number
// generators used throughout the simulator.
//
// Everything in ctrpred that needs randomness — per-page root sequence
// numbers, workload data layouts, synthetic reference streams — draws from
// this package so that a run is exactly reproducible from its seed. The
// generators are NOT cryptographically secure; the paper's hardware random
// number generator is a true RNG, but for simulation purposes determinism
// is worth far more than entropy (and the security argument in the paper
// does not rest on root secrecy).
package rng

// SplitMix64 is the splitmix64 generator of Steele, Lea and Flood. It is
// primarily used to seed Xoshiro and to derive independent sub-streams.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a SplitMix64 seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

// Next returns the next value in the sequence.
func (s *SplitMix64) Next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Xoshiro256 is the xoshiro256** generator of Blackman and Vigna.
// The zero value is invalid; use New.
type Xoshiro256 struct {
	s [4]uint64
}

// New returns a Xoshiro256 seeded from seed via SplitMix64, as the
// reference implementation recommends.
func New(seed uint64) *Xoshiro256 {
	sm := NewSplitMix64(seed)
	var x Xoshiro256
	for i := range x.s {
		x.s[i] = sm.Next()
	}
	// Guard against the (astronomically unlikely) all-zero state.
	if x.s[0]|x.s[1]|x.s[2]|x.s[3] == 0 {
		x.s[0] = 0x9e3779b97f4a7c15
	}
	return &x
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns a uniformly distributed 64-bit value.
func (x *Xoshiro256) Uint64() uint64 {
	result := rotl(x.s[1]*5, 7) * 9
	t := x.s[1] << 17
	x.s[2] ^= x.s[0]
	x.s[3] ^= x.s[1]
	x.s[1] ^= x.s[2]
	x.s[0] ^= x.s[3]
	x.s[2] ^= t
	x.s[3] = rotl(x.s[3], 45)
	return result
}

// Uint32 returns a uniformly distributed 32-bit value.
func (x *Xoshiro256) Uint32() uint32 { return uint32(x.Uint64() >> 32) }

// Intn returns a uniformly distributed int in [0, n). It panics if n <= 0.
func (x *Xoshiro256) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	return int(x.Uint64() % uint64(n))
}

// Uint64n returns a uniformly distributed uint64 in [0, n). It panics if
// n == 0.
func (x *Xoshiro256) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n called with n == 0")
	}
	return x.Uint64() % n
}

// Float64 returns a uniformly distributed float64 in [0, 1).
func (x *Xoshiro256) Float64() float64 {
	return float64(x.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (x *Xoshiro256) Bool(p float64) bool { return x.Float64() < p }

// Geometric returns a sample from a geometric distribution with success
// probability p (mean 1/p - 1 failures). Used for burst lengths in the
// synthetic reference generators. p must be in (0, 1].
func (x *Xoshiro256) Geometric(p float64) int {
	if p >= 1 {
		return 0
	}
	if p <= 0 {
		panic("rng: Geometric called with p <= 0")
	}
	n := 0
	for !x.Bool(p) {
		n++
		if n >= 1<<20 { // hard cap; keeps pathological p from hanging a sim
			break
		}
	}
	return n
}

// Zipf samples an integer in [0, n) with a Zipf-like distribution of
// exponent s (s > 0) using inverse-CDF over a precomputed table is too
// memory hungry for large n, so we use rejection-inversion is overkill;
// instead we use the simple bounded power-law transform which is adequate
// for shaping locality in synthetic workloads.
func (x *Xoshiro256) Zipf(n int, s float64) int {
	if n <= 1 {
		return 0
	}
	// Inverse transform on a continuous power-law, clamped to [0, n).
	u := x.Float64()
	if u == 0 {
		u = 1e-12
	}
	v := int(float64(n) * pow(u, s))
	if v >= n {
		v = n - 1
	}
	return v
}

// pow computes u**s for u in (0,1], s > 0 without importing math: the
// simulator keeps floating-point dependencies minimal so results are
// bit-stable across platforms. Uses exp/log via series would drift; a
// simple repeated-squaring on the exponent's binary expansion with a
// fixed-point fractional part is stable enough for workload shaping.
func pow(u, s float64) float64 {
	// Handle integer part by repeated multiplication.
	r := 1.0
	for s >= 1 {
		r *= u
		s--
	}
	if s <= 0 {
		return r
	}
	// Fractional part via 24 steps of square-root bisection:
	// u^s = product of u^(1/2^k) for set bits of s's binary fraction.
	root := u
	for i := 0; i < 24; i++ {
		root = sqrt(root)
		s *= 2
		if s >= 1 {
			r *= root
			s--
		}
		if s == 0 {
			break
		}
	}
	return r
}

// sqrt is Newton's method; u in (0, 1].
func sqrt(u float64) float64 {
	if u <= 0 {
		return 0
	}
	z := u
	for i := 0; i < 32; i++ {
		z = 0.5 * (z + u/z)
	}
	return z
}
