package stats

import (
	"bytes"
	"strings"
	"testing"
)

// buildTree assembles the same logical tree with metrics and children
// inserted in the given order; export must not care.
func buildTree(order []int) *Snapshot {
	root := NewSnapshot("run")
	type entry struct{ add func() }
	entries := []entry{
		{func() { root.Label("benchmark", "mcf") }},
		{func() { root.Counter("fetches", 100) }},
		{func() { root.Counter("evictions", 7) }},
		{func() { root.Value("ipc", 0.5) }},
		{func() {
			h := NewHistogram(1, 10, 100)
			h.Observe(5)
			h.Observe(50)
			h.Observe(500)
			root.Child("ctrl").Histogram("latency", h)
		}},
		{func() { root.Child("cpu").Counter("cycles", 2000) }},
		{func() { root.Child("cpu").Counter("instructions", 1000) }},
	}
	for _, i := range order {
		entries[i].add()
	}
	return root
}

func TestJSONDeterministicAcrossInsertionOrder(t *testing.T) {
	a, err := buildTree([]int{0, 1, 2, 3, 4, 5, 6}).JSON()
	if err != nil {
		t.Fatal(err)
	}
	b, err := buildTree([]int{6, 5, 4, 3, 2, 1, 0}).JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("JSON depends on insertion order:\n--- forward ---\n%s\n--- reverse ---\n%s", a, b)
	}
	if a[len(a)-1] != '\n' {
		t.Fatal("JSON missing trailing newline")
	}
	for _, want := range []string{`"benchmark"`, `"fetches"`, `"ipc"`, `"latency"`} {
		if !bytes.Contains(a, []byte(want)) {
			t.Fatalf("JSON missing %s:\n%s", want, a)
		}
	}
}

func TestWriteCSVShape(t *testing.T) {
	var buf bytes.Buffer
	if err := buildTree([]int{3, 0, 6, 4, 1, 5, 2}).WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if lines[0] != "path,metric,value" {
		t.Fatalf("header = %q", lines[0])
	}
	got := make(map[string]string)
	for _, l := range lines[1:] {
		parts := strings.SplitN(l, ",", 3)
		if len(parts) != 3 {
			t.Fatalf("malformed row %q", l)
		}
		got[parts[0]+","+parts[1]] = parts[2]
	}
	for key, want := range map[string]string{
		"run,benchmark":                 "mcf",
		"run,fetches":                   "100",
		"run,ipc":                       "0.5",
		"run/cpu,cycles":                "2000",
		"run/ctrl,latency.total":        "3",
		"run/ctrl,latency.sum":          "555",
		"run/ctrl,latency.max":          "500",
		"run/ctrl,latency.mean":         "185",
		"run/ctrl,latency.le_10":        "1",
		"run/ctrl,latency.overflow":     "1",
	} {
		if got[key] != want {
			t.Errorf("CSV row %q = %q, want %q", key, got[key], want)
		}
	}
}

func TestChildGetOrCreate(t *testing.T) {
	root := NewSnapshot("r")
	a := root.Child("x")
	b := root.Child("x")
	if a != b {
		t.Fatal("Child created a duplicate node")
	}
	if len(root.Children) != 1 {
		t.Fatalf("%d children, want 1", len(root.Children))
	}
}

func TestLookupAndCounterValue(t *testing.T) {
	root := buildTree([]int{0, 1, 2, 3, 4, 5, 6})
	cpu := root.Lookup("cpu")
	if cpu == nil {
		t.Fatal("Lookup(cpu) = nil")
	}
	if v, ok := cpu.CounterValue("cycles"); !ok || v != 2000 {
		t.Fatalf("cycles = %d, %v", v, ok)
	}
	if _, ok := cpu.CounterValue("nonesuch"); ok {
		t.Fatal("absent counter reported present")
	}
	if root.Lookup("cpu", "nothere") != nil {
		t.Fatal("Lookup invented a node")
	}
	if root.Lookup() != root {
		t.Fatal("empty Lookup must return the receiver")
	}
}

func TestNilHistogramSkipped(t *testing.T) {
	n := NewSnapshot("x")
	n.Histogram("h", nil)
	if len(n.Histograms) != 0 {
		t.Fatal("nil histogram recorded")
	}
}
