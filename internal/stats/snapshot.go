package stats

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Snapshot is one node of a metrics tree: a named bag of counters, float
// values, histograms and labels, plus child nodes. Every simulator
// component exports its statistics into a Snapshot, and the assembled
// tree serializes deterministically — nodes and metrics are sorted by
// name on export, so the JSON/CSV bytes for a given simulation are
// identical regardless of insertion order or worker count.
//
// Snapshots are plain data: build one per run/experiment, serialize it,
// throw it away. They are not safe for concurrent mutation.
type Snapshot struct {
	Name       string           `json:"name"`
	Labels     []NamedString    `json:"labels,omitempty"`
	Counters   []NamedCounter   `json:"counters,omitempty"`
	Values     []NamedValue     `json:"values,omitempty"`
	Histograms []NamedHistogram `json:"histograms,omitempty"`
	Children   []*Snapshot      `json:"children,omitempty"`
}

// NamedString is a string-valued annotation (benchmark name, scheme, …).
type NamedString struct {
	Name  string `json:"name"`
	Value string `json:"value"`
}

// NamedCounter is an integer event count.
type NamedCounter struct {
	Name  string `json:"name"`
	Value uint64 `json:"value"`
}

// NamedValue is a derived float metric (rates, ratios, IPC).
type NamedValue struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// NamedHistogram is the exported form of a Histogram.
type NamedHistogram struct {
	Name    string   `json:"name"`
	Total   uint64   `json:"total"`
	Sum     uint64   `json:"sum"`
	Max     uint64   `json:"max"`
	Mean    float64  `json:"mean"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Bucket is one histogram bucket. The final bucket of a histogram is
// open-ended and has Open set instead of an upper bound.
type Bucket struct {
	UpperBound uint64 `json:"le"`
	Open       bool   `json:"open,omitempty"`
	Count      uint64 `json:"count"`
}

// NewSnapshot creates an empty snapshot node.
func NewSnapshot(name string) *Snapshot { return &Snapshot{Name: name} }

// Child returns the child node with the given name, creating it if
// needed.
func (s *Snapshot) Child(name string) *Snapshot {
	for _, c := range s.Children {
		if c.Name == name {
			return c
		}
	}
	c := NewSnapshot(name)
	s.Children = append(s.Children, c)
	return c
}

// Label records a string annotation on the node.
func (s *Snapshot) Label(name, value string) {
	s.Labels = append(s.Labels, NamedString{Name: name, Value: value})
}

// Counter records an integer event count.
func (s *Snapshot) Counter(name string, v uint64) {
	s.Counters = append(s.Counters, NamedCounter{Name: name, Value: v})
}

// Value records a derived float metric.
func (s *Snapshot) Value(name string, v float64) {
	s.Values = append(s.Values, NamedValue{Name: name, Value: v})
}

// Histogram records a histogram's buckets and moments; nil histograms
// are skipped, so components can register optional histograms
// unconditionally.
func (s *Snapshot) Histogram(name string, h *Histogram) {
	if h == nil {
		return
	}
	nh := NamedHistogram{
		Name:  name,
		Total: h.Total,
		Sum:   h.Sum,
		Max:   h.Max,
		Mean:  h.Mean(),
	}
	for i, c := range h.Counts {
		b := Bucket{Count: c}
		if i < len(h.Bounds) {
			b.UpperBound = h.Bounds[i]
		} else {
			b.Open = true
		}
		nh.Buckets = append(nh.Buckets, b)
	}
	s.Histograms = append(s.Histograms, nh)
}

// sortTree orders every slice in the tree by name, in place, so that
// serialization does not depend on insertion order.
func (s *Snapshot) sortTree() {
	sort.Slice(s.Labels, func(i, j int) bool { return s.Labels[i].Name < s.Labels[j].Name })
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Values, func(i, j int) bool { return s.Values[i].Name < s.Values[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	sort.Slice(s.Children, func(i, j int) bool { return s.Children[i].Name < s.Children[j].Name })
	for _, c := range s.Children {
		c.sortTree()
	}
}

// JSON serializes the tree as indented JSON with all nodes and metrics
// sorted by name.
func (s *Snapshot) JSON() ([]byte, error) {
	s.sortTree()
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// WriteCSV flattens the tree to "path,metric,value" rows (header
// included), depth-first with all names sorted. Histograms emit one row
// per moment (total, sum, max, mean) and one per bucket (le_<bound> /
// overflow).
func (s *Snapshot) WriteCSV(w io.Writer) error {
	s.sortTree()
	if _, err := fmt.Fprintln(w, "path,metric,value"); err != nil {
		return err
	}
	return s.writeCSV(w, s.Name)
}

func (s *Snapshot) writeCSV(w io.Writer, path string) error {
	row := func(metric, value string) error {
		_, err := fmt.Fprintf(w, "%s,%s,%s\n", path, metric, value)
		return err
	}
	for _, l := range s.Labels {
		if err := row(l.Name, l.Value); err != nil {
			return err
		}
	}
	for _, c := range s.Counters {
		if err := row(c.Name, fmt.Sprintf("%d", c.Value)); err != nil {
			return err
		}
	}
	for _, v := range s.Values {
		if err := row(v.Name, fmt.Sprintf("%g", v.Value)); err != nil {
			return err
		}
	}
	for _, h := range s.Histograms {
		if err := row(h.Name+".total", fmt.Sprintf("%d", h.Total)); err != nil {
			return err
		}
		if err := row(h.Name+".sum", fmt.Sprintf("%d", h.Sum)); err != nil {
			return err
		}
		if err := row(h.Name+".max", fmt.Sprintf("%d", h.Max)); err != nil {
			return err
		}
		if err := row(h.Name+".mean", fmt.Sprintf("%g", h.Mean)); err != nil {
			return err
		}
		for _, b := range h.Buckets {
			name := fmt.Sprintf("%s.le_%d", h.Name, b.UpperBound)
			if b.Open {
				name = h.Name + ".overflow"
			}
			if err := row(name, fmt.Sprintf("%d", b.Count)); err != nil {
				return err
			}
		}
	}
	for _, c := range s.Children {
		if err := c.writeCSV(w, path+"/"+c.Name); err != nil {
			return err
		}
	}
	return nil
}

// Lookup walks the tree by child names and returns the node, or nil if
// any segment is missing (tests and tools).
func (s *Snapshot) Lookup(path ...string) *Snapshot {
	cur := s
	for _, name := range path {
		var next *Snapshot
		for _, c := range cur.Children {
			if c.Name == name {
				next = c
				break
			}
		}
		if next == nil {
			return nil
		}
		cur = next
	}
	return cur
}

// CounterValue returns the named counter's value on this node (0, false
// when absent).
func (s *Snapshot) CounterValue(name string) (uint64, bool) {
	for _, c := range s.Counters {
		if c.Name == name {
			return c.Value, true
		}
	}
	return 0, false
}
