package stats

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestCounter(t *testing.T) {
	c := Counter{Name: "hits"}
	c.Inc()
	c.Add(4)
	if c.Value != 5 {
		t.Fatalf("counter = %d, want 5", c.Value)
	}
}

func TestRate(t *testing.T) {
	if got := Rate(1, 4); got != 0.25 {
		t.Fatalf("Rate(1,4) = %v", got)
	}
	if got := Rate(3, 0); got != 0 {
		t.Fatalf("Rate(3,0) = %v, want 0", got)
	}
}

func TestPercent(t *testing.T) {
	if got := Percent(82, 100); got != "82.0%" {
		t.Fatalf("Percent = %q", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(1, 5, 10)
	for _, v := range []uint64{0, 1, 2, 5, 6, 10, 11, 100} {
		h.Observe(v)
	}
	want := []uint64{2, 2, 2, 2} // ≤1, ≤5, ≤10, >10
	for i, w := range want {
		if h.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (%v)", i, h.Counts[i], w, h.Counts)
		}
	}
	if h.Total != 8 || h.Max != 100 {
		t.Fatalf("total=%d max=%d", h.Total, h.Max)
	}
}

func TestHistogramMeanQuantile(t *testing.T) {
	h := NewHistogram(10, 20, 30)
	for i := uint64(1); i <= 30; i++ {
		h.Observe(i)
	}
	if m := h.Mean(); m < 15.4 || m > 15.6 {
		t.Fatalf("mean = %v, want 15.5", m)
	}
	if q := h.Quantile(0.5); q != 20 {
		t.Fatalf("median bucket = %d, want 20", q)
	}
	if q := h.Quantile(1.0); q != 30 {
		t.Fatalf("p100 bucket = %d, want 30", q)
	}
}

// TestQuantileNearestRankBoundary is the regression for the floored
// rank: one sample past a quarter of the population, ⌈q·n⌉ names the
// second sample where ⌊q·n⌋ named the first.
func TestQuantileNearestRankBoundary(t *testing.T) {
	h := NewHistogram(1, 2, 3, 4)
	for _, v := range []uint64{1, 2, 3, 4} {
		h.Observe(v)
	}
	cases := []struct {
		q    float64
		want uint64
	}{
		{0, 1}, {0.25, 1}, {0.26, 2}, {0.5, 2}, {0.75, 3}, {0.76, 4}, {1, 4},
	}
	for _, tc := range cases {
		if got := h.Quantile(tc.q); got != tc.want {
			t.Errorf("Quantile(%g) = %d, want %d", tc.q, got, tc.want)
		}
	}
}

// TestQuantilePercentileAgree pins the shared percentile definition:
// when every observation sits exactly on a bucket bound, the histogram
// quantile and the exact nearest-rank Percentile over the same raw
// samples (duplicated, unsorted) name the same value at every q —
// including the q=0 and q=1 extremes.
func TestQuantilePercentileAgree(t *testing.T) {
	h := NewHistogram(1, 2, 3, 4, 5, 6, 7, 8, 9, 10)
	obs := []uint64{7, 1, 9, 3, 3, 5, 10, 2, 8, 6, 4, 7} // unsorted, with duplicates
	var raw []float64
	for _, v := range obs {
		h.Observe(v)
		raw = append(raw, float64(v))
	}
	for _, q := range []float64{0, 0.01, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
		want := uint64(Percentile(raw, q))
		if got := h.Quantile(q); got != want {
			t.Errorf("q=%g: Quantile = %d, Percentile = %d — definitions diverge", q, got, want)
		}
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(1)
	if h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram should report zeros")
	}
}

func TestHistogramBadBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("descending bounds did not panic")
		}
	}()
	NewHistogram(5, 5)
}

func TestHistogramString(t *testing.T) {
	h := NewHistogram(2)
	h.Observe(1)
	h.Observe(3)
	s := h.String()
	if !strings.Contains(s, "n=2") || !strings.Contains(s, "≤2:1") {
		t.Fatalf("unexpected summary: %q", s)
	}
}

func TestTableRendering(t *testing.T) {
	tbl := NewTable("Figure X", "bench", "a", "b")
	tbl.AddFloats("mcf", 2, 0.5, 0.75)
	tbl.AddRow("gzip", "1.00") // short row: missing cell renders empty
	s := tbl.String()
	if !strings.Contains(s, "Figure X") {
		t.Fatalf("missing title: %q", s)
	}
	if !strings.Contains(s, "mcf") || !strings.Contains(s, "0.75") {
		t.Fatalf("missing row data: %q", s)
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("got %d lines, want 5:\n%s", len(lines), s)
	}
	if tbl.NumRows() != 2 {
		t.Fatalf("NumRows = %d", tbl.NumRows())
	}
}

func TestGeoMean(t *testing.T) {
	got := GeoMean([]float64{2, 8})
	if got < 3.999 || got > 4.001 {
		t.Fatalf("GeoMean(2,8) = %v, want 4", got)
	}
	if GeoMean(nil) != 0 {
		t.Fatal("GeoMean(nil) != 0")
	}
	// Non-positive entries are skipped, not zeroing.
	got = GeoMean([]float64{0, 4})
	if got < 3.999 || got > 4.001 {
		t.Fatalf("GeoMean(0,4) = %v, want 4", got)
	}
}

func TestMean(t *testing.T) {
	if m := Mean([]float64{1, 2, 3}); m != 2 {
		t.Fatalf("Mean = %v", m)
	}
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
}

func TestGeoMeanBetweenMinMax(t *testing.T) {
	f := func(a, b uint16) bool {
		x := 1 + float64(a%1000)
		y := 1 + float64(b%1000)
		g := GeoMean([]float64{x, y})
		lo, hi := x, y
		if lo > hi {
			lo, hi = hi, lo
		}
		return g >= lo-1e-6 && g <= hi+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPercentile(t *testing.T) {
	vals := []float64{5, 1, 4, 2, 3}
	cases := []struct {
		q    float64
		want float64
	}{
		{0, 1}, {0.2, 1}, {0.5, 3}, {0.8, 4}, {0.99, 5}, {1, 5},
	}
	for _, tc := range cases {
		if got := Percentile(vals, tc.q); got != tc.want {
			t.Errorf("Percentile(%v, %g) = %g, want %g", vals, tc.q, got, tc.want)
		}
	}
	if got := Percentile(nil, 0.5); got != 0 {
		t.Errorf("Percentile(nil) = %g, want 0", got)
	}
	// The input must not be reordered in place.
	if vals[0] != 5 || vals[4] != 3 {
		t.Errorf("Percentile mutated its input: %v", vals)
	}
}

func TestPercentileEdgeCases(t *testing.T) {
	// A single sample is every percentile, including the out-of-range
	// quantiles (clamped, not extrapolated or panicking).
	one := []float64{42}
	for _, q := range []float64{-1, 0, 0.01, 0.5, 0.99, 1, 2} {
		if got := Percentile(one, q); got != 42 {
			t.Errorf("Percentile([42], %g) = %g, want 42", q, got)
		}
	}
	// Empty input is 0 at every quantile, never an index panic.
	for _, q := range []float64{-1, 0, 0.5, 1, 2} {
		if got := Percentile(nil, q); got != 0 {
			t.Errorf("Percentile(nil, %g) = %g, want 0", q, got)
		}
	}
	// Two samples: the median is the lower by nearest-rank, anything
	// past 0.5 is the upper.
	two := []float64{7, 3}
	if got := Percentile(two, 0.5); got != 3 {
		t.Errorf("Percentile(%v, 0.5) = %g, want 3", two, got)
	}
	if got := Percentile(two, 0.51); got != 7 {
		t.Errorf("Percentile(%v, 0.51) = %g, want 7", two, got)
	}
	// Duplicates count as distinct samples in the rank: two of five
	// samples are 1, so q=0.4 still names a 1 and anything past it a 2.
	dup := []float64{2, 1, 2, 1, 2}
	if got := Percentile(dup, 0.4); got != 1 {
		t.Errorf("Percentile(%v, 0.4) = %g, want 1", dup, got)
	}
	if got := Percentile(dup, 0.41); got != 2 {
		t.Errorf("Percentile(%v, 0.41) = %g, want 2", dup, got)
	}
}
