// Package stats provides the counters, rate helpers, histograms and
// fixed-width table rendering used by the simulator to report experiment
// results in the same shape as the paper's tables and figures.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Counter is a named monotonically increasing event count.
type Counter struct {
	Name  string
	Value uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.Value += n }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Value++ }

// Rate returns num/den as a float64, or 0 when den is zero. It is the
// single definition of "rate" used across every experiment so that hit
// rates, prediction rates and IPC ratios are all computed identically.
func Rate(num, den uint64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// Percent formats Rate(num, den) as a percentage with one decimal.
func Percent(num, den uint64) string {
	return fmt.Sprintf("%.1f%%", 100*Rate(num, den))
}

// Histogram is a fixed-bucket histogram over non-negative integer samples.
// The final bucket is open-ended.
type Histogram struct {
	Bounds []uint64 // bucket i holds samples in [Bounds[i-1]+1 … Bounds[i]]
	Counts []uint64 // len(Counts) == len(Bounds)+1
	Total  uint64
	Sum    uint64
	Max    uint64
}

// NewHistogram builds a histogram with the given ascending upper bounds.
func NewHistogram(bounds ...uint64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("stats: histogram bounds must be strictly ascending")
		}
	}
	return &Histogram{
		Bounds: append([]uint64(nil), bounds...),
		Counts: make([]uint64, len(bounds)+1),
	}
}

// Observe records one sample.
func (h *Histogram) Observe(v uint64) {
	h.Counts[h.bucket(v)]++
	h.Total++
	h.Sum += v
	if v > h.Max {
		h.Max = v
	}
}

// bucket returns the index of the bucket holding v. Bucket counts in
// this codebase are single digits, so a linear scan beats sort.Search's
// closure-per-probe on the hot paths (engine queue waits, fetch
// latencies, hit depths).
func (h *Histogram) bucket(v uint64) int {
	for i, b := range h.Bounds {
		if v <= b {
			return i
		}
	}
	return len(h.Bounds)
}

// ObserveN records n identical samples in one update — the batch path
// used by the crypto engine when it books a whole guess burst at once.
func (h *Histogram) ObserveN(v uint64, n uint64) {
	if n == 0 {
		return
	}
	h.Counts[h.bucket(v)] += n
	h.Total += n
	h.Sum += v * n
	if v > h.Max {
		h.Max = v
	}
}

// ObserveRange records the arithmetic run v, v+1, …, v+n-1 (n samples)
// in one pass — the shape produced by consecutive pipeline slots, where
// the i-th queued request waits one cycle longer than its predecessor.
// It is equivalent to calling Observe on each value individually.
func (h *Histogram) ObserveRange(v uint64, n uint64) {
	if n == 0 {
		return
	}
	last := v + n - 1
	h.Total += n
	// Sum of the run: n*v + (0+1+…+(n-1)).
	h.Sum += v*n + n*(n-1)/2
	if last > h.Max {
		h.Max = last
	}
	// Split the run across buckets: each bucket takes the slice of the
	// run at or below its bound.
	lo := v
	for i, b := range h.Bounds {
		if lo > last {
			return
		}
		if lo <= b {
			hi := b
			if hi > last {
				hi = last
			}
			h.Counts[i] += hi - lo + 1
			lo = hi + 1
		}
	}
	if lo <= last {
		h.Counts[len(h.Bounds)] += last - lo + 1
	}
}

// Mean returns the mean of all observed samples.
func (h *Histogram) Mean() float64 {
	if h.Total == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Total)
}

// Quantile returns the smallest bucket upper bound such that at least
// q (0..1) of the samples fall at or below it. For the open last bucket it
// returns the observed max.
//
// The rank is nearest-rank, ⌈q·n⌉ — the same definition Percentile uses
// on exact samples — so a histogram quantile and a Percentile over the
// histogram's raw observations name the same sample (the histogram just
// rounds it up to its bucket bound). An earlier version floored the
// rank, which disagreed with Percentile one sample below every exact
// bucket boundary.
func (h *Histogram) Quantile(q float64) uint64 {
	if h.Total == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(h.Total)))
	if target == 0 {
		target = 1
	}
	if target > h.Total {
		target = h.Total
	}
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum >= target {
			if i < len(h.Bounds) {
				return h.Bounds[i]
			}
			return h.Max
		}
	}
	return h.Max
}

// String renders a compact single-line summary.
func (h *Histogram) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d mean=%.2f max=%d [", h.Total, h.Mean(), h.Max)
	for i, c := range h.Counts {
		if i > 0 {
			b.WriteByte(' ')
		}
		if i < len(h.Bounds) {
			fmt.Fprintf(&b, "≤%d:%d", h.Bounds[i], c)
		} else {
			fmt.Fprintf(&b, ">:%d", c)
		}
	}
	b.WriteByte(']')
	return b.String()
}

// Table accumulates rows of figures keyed by a label column (benchmark
// name) and renders them in aligned fixed-width text, matching how the
// experiment harness prints paper figures.
type Table struct {
	Title   string
	Columns []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers. The
// first column is the row label.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; cells beyond len(Columns) are dropped, missing
// cells render empty.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Columns))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// AddFloats appends a row with a label and float cells at the given
// precision.
func (t *Table) AddFloats(label string, prec int, vals ...float64) {
	cells := make([]string, 0, len(vals)+1)
	cells = append(cells, label)
	for _, v := range vals {
		cells = append(cells, fmt.Sprintf("%.*f", prec, v))
	}
	t.AddRow(cells...)
}

// NumRows reports how many rows have been added.
func (t *Table) NumRows() int { return len(t.rows) }

// String renders the table.
func (t *Table) String() string {
	width := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		width[i] = len(c)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			if i == 0 {
				fmt.Fprintf(&b, "%-*s", width[i], c)
			} else {
				fmt.Fprintf(&b, "%*s", width[i], c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	total := 0
	for _, w := range width {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total-2))
	b.WriteByte('\n')
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// GeoMean returns the geometric mean of vals, skipping non-positive
// entries (which would otherwise zero the product); it returns 0 if no
// positive values exist. The paper's "Average" bars over normalized IPC
// are reproduced with this.
func GeoMean(vals []float64) float64 {
	prod := 1.0
	n := 0
	for _, v := range vals {
		if v > 0 {
			prod *= v
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return nthRoot(prod, n)
}

// Percentile returns the q-th percentile (q in 0..1) of vals by the
// nearest-rank method on a sorted copy: the smallest value such that at
// least q of the samples are at or below it. Exact — no bucketing — so
// the load-test harness reports true p50/p99 latencies; 0 for empty
// input.
func Percentile(vals []float64, q float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	s := append([]float64(nil), vals...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	rank := int(math.Ceil(q * float64(len(s))))
	if rank < 1 {
		rank = 1
	}
	return s[rank-1]
}

// Mean returns the arithmetic mean of vals (0 for empty input).
func Mean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range vals {
		sum += v
	}
	return sum / float64(len(vals))
}

// nthRoot computes x^(1/n) by Newton iteration; x > 0, n >= 1.
func nthRoot(x float64, n int) float64 {
	if n == 1 || x == 0 {
		return x
	}
	z := x
	if z > 1 {
		z = 1 + (x-1)/float64(n) // decent starting point
	}
	for i := 0; i < 64; i++ {
		// z^{n-1}
		zn1 := 1.0
		for j := 1; j < n; j++ {
			zn1 *= z
		}
		// Newton update: z -= (z^n - x) / (n z^{n-1})
		z -= (zn1*z - x) / (float64(n) * zn1)
		if z <= 0 {
			z = x / 2
		}
	}
	return z
}
