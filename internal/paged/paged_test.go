package paged

import (
	"testing"

	"ctrpred/internal/rng"
)

func TestLookupAbsent(t *testing.T) {
	tab := New[uint64](32)
	for _, addr := range []uint64{0, 31, 32, 1 << 20, 1 << 40, 1<<63 + 96} {
		if p := tab.Lookup(addr); p != nil {
			t.Errorf("Lookup(%#x) on empty table = %v, want nil", addr, p)
		}
	}
	if tab.Count() != 0 {
		t.Errorf("Count = %d, want 0", tab.Count())
	}
}

func TestEnsureLookupRoundTrip(t *testing.T) {
	tab := New[uint64](32)
	// Dense, dense-boundary, and sparse (beyond 4 GiB) addresses, plus
	// same-line aliases.
	addrs := []uint64{0, 32, 33, 4096, 1 << 20, 1<<32 - 32, 1 << 32, 1 << 40, 1<<48 + 64}
	for i, addr := range addrs {
		v, fresh := tab.Ensure(addr)
		*v = uint64(i + 100)
		al := addr &^ 31 // any byte of the line aliases it
		if got := tab.Lookup(al + 7); got == nil || *got != uint64(i+100) {
			t.Fatalf("Lookup(%#x) after Ensure(%#x) = %v", al+7, addr, got)
		}
		// addr 33 shares line with addr 32.
		if addr == 33 && fresh {
			t.Error("Ensure(33) fresh after Ensure(32)")
		}
	}
	if want := len(addrs) - 1; tab.Count() != want { // 32 and 33 share a line
		t.Errorf("Count = %d, want %d", tab.Count(), want)
	}
}

func TestEnsureFreshOnce(t *testing.T) {
	tab := New[int](32)
	if _, fresh := tab.Ensure(64); !fresh {
		t.Fatal("first Ensure not fresh")
	}
	if _, fresh := tab.Ensure(64); fresh {
		t.Fatal("second Ensure fresh")
	}
	if _, fresh := tab.Ensure(95); fresh {
		t.Fatal("same-line Ensure fresh")
	}
	if _, fresh := tab.Ensure(96); !fresh {
		t.Fatal("next-line Ensure not fresh")
	}
}

func TestDenseSparseAgree(t *testing.T) {
	// Same random workload through the table and a reference map.
	tab := New[uint64](32)
	ref := map[uint64]uint64{}
	r := rng.New(11)
	for n := 0; n < 50_000; n++ {
		// Mix of dense (low) and sparse (high) regions.
		addr := r.Uint64() % (1 << 24)
		if r.Bool(0.1) {
			addr += 1 << 44
		}
		la := addr &^ 31
		if r.Bool(0.5) {
			v, _ := tab.Ensure(addr)
			*v = uint64(n)
			ref[la] = uint64(n)
		} else {
			got := tab.Lookup(addr)
			want, ok := ref[la]
			switch {
			case got == nil && ok:
				t.Fatalf("Lookup(%#x) = nil, want %d", addr, want)
			case got != nil && !ok:
				t.Fatalf("Lookup(%#x) = %d, want absent", addr, *got)
			case got != nil && *got != want:
				t.Fatalf("Lookup(%#x) = %d, want %d", addr, *got, want)
			}
		}
	}
	if tab.Count() != len(ref) {
		t.Errorf("Count = %d, want %d", tab.Count(), len(ref))
	}
}

func TestLookupAllocFree(t *testing.T) {
	tab := New[uint64](32)
	tab.Ensure(1 << 20)
	if n := testing.AllocsPerRun(200, func() {
		tab.Lookup(1 << 20)
		tab.Lookup(1 << 21) // absent line, present page directory range? still no alloc
		tab.Lookup(1 << 50) // sparse miss
	}); n != 0 {
		t.Errorf("Lookup allocates %v times per run, want 0", n)
	}
	// Steady-state Ensure of an existing line must not allocate either.
	if n := testing.AllocsPerRun(200, func() {
		tab.Ensure(1 << 20)
	}); n != 0 {
		t.Errorf("steady-state Ensure allocates %v times per run, want 0", n)
	}
}

func TestBadLineSizePanics(t *testing.T) {
	for _, sz := range []int{0, -1, 3, 48} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) did not panic", sz)
				}
			}()
			New[int](sz)
		}()
	}
}
