// Package paged provides the line-granular backing store behind the
// simulator's hot memory tables (the architectural image in package mem
// and the encrypted-RAM state in package secmem). The seed implementation
// kept those tables in Go maps, which put a hash + probe on every load,
// store and fetch; workload footprints are bounded and known at config
// time, so the common case deserves plain array indexing.
//
// A Table divides the line-address space into fixed 64 KiB pages (2048
// 32-byte lines). Pages below the dense horizon (4 GiB) live behind a
// flat pointer directory grown on demand — one shift, one bounds check
// and two indexed loads per access, no hashing. Pages beyond the horizon
// (nothing the built-in workloads generate, but the API must not care)
// fall back to a sparse map. A per-page bitmap distinguishes touched
// lines from never-written ones so lookups of untouched memory cost no
// allocation and sparse-map semantics ("present or not") are preserved
// exactly.
package paged

import "fmt"

const (
	// pageLineBits sets the page capacity: 2^11 lines = 64 KiB of
	// address space per page at 32-byte lines.
	pageLineBits = 11
	pageLines    = 1 << pageLineBits
	// denseMaxPages bounds the flat directory: pages below cover the
	// first 4 GiB of address space; the directory itself grows lazily
	// and tops out at 512 KiB of pointers.
	denseMaxPages = 1 << 16
)

type page[V any] struct {
	lines [pageLines]V
	used  [pageLines / 64]uint64
}

// Table is a line-granular store of V keyed by byte address. The zero
// value is not usable; call New.
type Table[V any] struct {
	lineShift uint
	dense     []*page[V]
	sparse    map[uint64]*page[V]
	count     int
}

// New creates a table for the given line size (a power of two; 32 for
// every table in the simulator). Addresses passed to Lookup/Ensure are
// byte addresses; all bytes of one line share one V.
func New[V any](lineSize int) *Table[V] {
	if lineSize <= 0 || lineSize&(lineSize-1) != 0 {
		panic(fmt.Sprintf("paged: line size %d is not a positive power of two", lineSize))
	}
	var shift uint
	for s := lineSize; s > 1; s >>= 1 {
		shift++
	}
	return &Table[V]{lineShift: shift}
}

// Lookup returns a pointer to the value of the line containing addr, or
// nil if that line was never Ensured. It never allocates.
func (t *Table[V]) Lookup(addr uint64) *V {
	li := addr >> t.lineShift
	pi := li >> pageLineBits
	var p *page[V]
	if pi < uint64(len(t.dense)) {
		p = t.dense[pi]
	} else if pi >= denseMaxPages {
		p = t.sparse[pi]
	}
	if p == nil {
		return nil
	}
	slot := li & (pageLines - 1)
	if p.used[slot>>6]&(1<<(slot&63)) == 0 {
		return nil
	}
	return &p.lines[slot]
}

// Ensure returns a pointer to the value of the line containing addr,
// creating it (zero-valued) if absent, and reports whether this call
// created it.
func (t *Table[V]) Ensure(addr uint64) (v *V, fresh bool) {
	li := addr >> t.lineShift
	pi := li >> pageLineBits
	var p *page[V]
	if pi < denseMaxPages {
		if pi >= uint64(len(t.dense)) {
			grown := make([]*page[V], pi+1)
			copy(grown, t.dense)
			t.dense = grown
		}
		p = t.dense[pi]
		if p == nil {
			p = new(page[V])
			t.dense[pi] = p
		}
	} else {
		if t.sparse == nil {
			t.sparse = make(map[uint64]*page[V])
		}
		p = t.sparse[pi]
		if p == nil {
			p = new(page[V])
			t.sparse[pi] = p
		}
	}
	slot := li & (pageLines - 1)
	word, bit := slot>>6, uint64(1)<<(slot&63)
	if p.used[word]&bit == 0 {
		p.used[word] |= bit
		t.count++
		fresh = true
	}
	return &p.lines[slot], fresh
}

// Count reports how many distinct lines have been Ensured.
func (t *Table[V]) Count() int { return t.count }
