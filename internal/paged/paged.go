// Package paged provides the line-granular backing store behind the
// simulator's hot memory tables (the architectural image in package mem
// and the encrypted-RAM state in package secmem). The seed implementation
// kept those tables in Go maps, which put a hash + probe on every load,
// store and fetch; workload footprints are bounded and known at config
// time, so the common case deserves plain array indexing.
//
// A Table divides the line-address space into fixed 64 KiB pages (2048
// 32-byte lines). Pages below the dense horizon (4 GiB) live behind a
// flat pointer directory grown on demand — one shift, one bounds check
// and two indexed loads per access, no hashing. Pages beyond the horizon
// (nothing the built-in workloads generate, but the API must not care)
// fall back to a sparse map. A per-page bitmap distinguishes touched
// lines from never-written ones so lookups of untouched memory cost no
// allocation and sparse-map semantics ("present or not") are preserved
// exactly.
package paged

import (
	"fmt"
	"math/bits"
	"sort"
	"sync"
)

const (
	// pageLineBits sets the page capacity: 2^11 lines = 64 KiB of
	// address space per page at 32-byte lines.
	pageLineBits = 11
	pageLines    = 1 << pageLineBits
	// denseMaxPages bounds the flat directory: pages below cover the
	// first 4 GiB of address space; the directory itself grows lazily
	// and tops out at 512 KiB of pointers.
	denseMaxPages = 1 << 16
)

type page[V any] struct {
	lines [pageLines]V
	used  [pageLines / 64]uint64
}

// Table is a line-granular store of V keyed by byte address. The zero
// value is not usable; call New.
type Table[V any] struct {
	lineShift uint
	dense     []*page[V]
	sparse    map[uint64]*page[V]
	count     int
	// ro is the frozen template a view reads through (nil for plain
	// tables). A view's local pages are always whole-page copies of the
	// template's, so lookups check local pages first and fall back to
	// the template only when no local page exists.
	ro     *Table[V]
	frozen bool
	// pool recycles COW pages between the template's views: a view's
	// Release hands its local pages back, and sibling views' newPage
	// draws from it before hitting the allocator. It lives on the
	// template (created at Freeze) and is shared by every view, so a
	// sweep's steady-state page traffic allocates nothing. An explicit
	// free list, not a sync.Pool: pages are large (tens of KiB) and a GC
	// between runs must not silently drop them back to the allocator.
	pool *freeList[V]
}

// freeList is a mutex-guarded stack of recycled pages. Operations are
// per-page-copy, not per-access, so the lock is far off the hot path.
type freeList[V any] struct {
	mu    sync.Mutex
	pages []*page[V]
}

func (f *freeList[V]) get() *page[V] {
	f.mu.Lock()
	if n := len(f.pages); n > 0 {
		p := f.pages[n-1]
		f.pages[n-1] = nil
		f.pages = f.pages[:n-1]
		f.mu.Unlock()
		return p
	}
	f.mu.Unlock()
	return new(page[V])
}

func (f *freeList[V]) put(p *page[V]) {
	f.mu.Lock()
	f.pages = append(f.pages, p)
	f.mu.Unlock()
}

// New creates a table for the given line size (a power of two; 32 for
// every table in the simulator). Addresses passed to Lookup/Ensure are
// byte addresses; all bytes of one line share one V.
func New[V any](lineSize int) *Table[V] {
	if lineSize <= 0 || lineSize&(lineSize-1) != 0 {
		panic(fmt.Sprintf("paged: line size %d is not a positive power of two", lineSize))
	}
	var shift uint
	for s := lineSize; s > 1; s >>= 1 {
		shift++
	}
	return &Table[V]{lineShift: shift}
}

// Freeze marks the table immutable: further Ensure calls panic. A table
// becomes a template for copy-on-write views via NewView; freezing is
// what makes sharing it across concurrently running simulations safe.
func (t *Table[V]) Freeze() {
	if t.frozen {
		// Idempotent: NewView freezes its template on every call, and
		// views are created concurrently; after the first (construction-
		// time) freeze this must be a pure read.
		return
	}
	t.frozen = true
	t.pool = &freeList[V]{}
}

// NewView returns a copy-on-write view of template: lookups read through
// to the template's lines, while the first Ensure that touches a page
// copies that whole page (values and used bits) into the view, so writes
// never reach the shared template. The template is frozen as a side
// effect. Pointers returned by a view's Lookup may point into the shared
// template and must be treated as read-only; mutate only through Ensure.
func NewView[V any](template *Table[V]) *Table[V] {
	template.Freeze()
	return &Table[V]{lineShift: template.lineShift, count: template.count, ro: template}
}

// newPage allocates a page, seeding it from the view's template when the
// template holds the same page — the whole-page copy that makes a view's
// local pages a superset of what the template knows about that range.
// Views draw recycled pages from the template's pool; a recycled page is
// either fully overwritten by the template copy or cleared.
func (t *Table[V]) newPage(pi uint64) *page[V] {
	if t.ro == nil {
		return new(page[V])
	}
	p := t.ro.pool.get()
	if tp := t.ro.pageFor(pi); tp != nil {
		*p = *tp
	} else {
		*p = page[V]{}
	}
	return p
}

// Release returns a view's local COW pages to the template's shared pool
// and detaches them, so the next view of the same template reuses the
// memory instead of allocating. Only meaningful on views; a no-op
// otherwise. The table must not be used after Release (lookups would
// read through to the template, silently forgetting local writes), so
// callers release only when the owning simulation is finished.
func (t *Table[V]) Release() {
	if t.ro == nil {
		return
	}
	for i, p := range t.dense {
		if p != nil {
			t.ro.pool.put(p)
			t.dense[i] = nil
		}
	}
	for pi, p := range t.sparse {
		t.ro.pool.put(p)
		delete(t.sparse, pi)
	}
	t.dense = nil
	t.count = 0
}

// pageFor returns the table's own page pi, or nil.
func (t *Table[V]) pageFor(pi uint64) *page[V] {
	if pi < uint64(len(t.dense)) {
		return t.dense[pi]
	}
	if pi >= denseMaxPages {
		return t.sparse[pi]
	}
	return nil
}

// Lookup returns a pointer to the value of the line containing addr, or
// nil if that line was never Ensured. It never allocates. On a view the
// pointer may reach into the shared template; treat it as read-only.
func (t *Table[V]) Lookup(addr uint64) *V {
	li := addr >> t.lineShift
	pi := li >> pageLineBits
	var p *page[V]
	if pi < uint64(len(t.dense)) {
		p = t.dense[pi]
	} else if pi >= denseMaxPages {
		p = t.sparse[pi]
	}
	if p == nil {
		if t.ro != nil {
			return t.ro.Lookup(addr)
		}
		return nil
	}
	slot := li & (pageLines - 1)
	if p.used[slot>>6]&(1<<(slot&63)) == 0 {
		return nil
	}
	return &p.lines[slot]
}

// Ensure returns a pointer to the value of the line containing addr,
// creating it (zero-valued) if absent, and reports whether this call
// created it.
func (t *Table[V]) Ensure(addr uint64) (v *V, fresh bool) {
	if t.frozen {
		panic("paged: Ensure on frozen table")
	}
	li := addr >> t.lineShift
	pi := li >> pageLineBits
	var p *page[V]
	if pi < denseMaxPages {
		if pi >= uint64(len(t.dense)) {
			grown := make([]*page[V], pi+1)
			copy(grown, t.dense)
			t.dense = grown
		}
		p = t.dense[pi]
		if p == nil {
			p = t.newPage(pi)
			t.dense[pi] = p
		}
	} else {
		if t.sparse == nil {
			t.sparse = make(map[uint64]*page[V])
		}
		p = t.sparse[pi]
		if p == nil {
			p = t.newPage(pi)
			t.sparse[pi] = p
		}
	}
	slot := li & (pageLines - 1)
	word, bit := slot>>6, uint64(1)<<(slot&63)
	if p.used[word]&bit == 0 {
		p.used[word] |= bit
		t.count++
		fresh = true
	}
	return &p.lines[slot], fresh
}

// Count reports how many distinct lines have been Ensured.
func (t *Table[V]) Count() int { return t.count }

// ForEach visits every present line in deterministic ascending-address
// order, calling fn with the line's base byte address. It walks the
// table's own pages only (views walk their template separately if they
// need to) and must not be called concurrently with Ensure.
func (t *Table[V]) ForEach(fn func(addr uint64, v *V)) {
	visit := func(pi uint64, p *page[V]) {
		for w, word := range p.used {
			for b := word; b != 0; b &= b - 1 {
				slot := uint64(w*64) + uint64(bits.TrailingZeros64(b))
				li := pi<<pageLineBits | slot
				fn(li<<t.lineShift, &p.lines[slot])
			}
		}
	}
	for pi, p := range t.dense {
		if p != nil {
			visit(uint64(pi), p)
		}
	}
	if len(t.sparse) > 0 {
		keys := make([]uint64, 0, len(t.sparse))
		for pi := range t.sparse {
			keys = append(keys, pi)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		for _, pi := range keys {
			visit(pi, t.sparse[pi])
		}
	}
}
