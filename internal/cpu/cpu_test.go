package cpu

import (
	"testing"

	"ctrpred/internal/cryptoengine"
	"ctrpred/internal/ctr"
	"ctrpred/internal/dram"
	"ctrpred/internal/isa"
	"ctrpred/internal/mem"
	"ctrpred/internal/memsys"
	"ctrpred/internal/predictor"
	"ctrpred/internal/secmem"
)

func newCore(t *testing.T, src string, scheme predictor.Scheme) (*Core, *mem.Memory) {
	t.Helper()
	prog, err := isa.Assemble(src, 0x10000)
	if err != nil {
		t.Fatal(err)
	}
	var key [32]byte
	key[0] = 3
	image := mem.New()
	image.WriteBytes(prog.Base, prog.Bytes())
	d := dram.New(dram.DefaultConfig())
	e := cryptoengine.New(cryptoengine.DefaultConfig(), ctr.NewKeystream(key))
	p := predictor.New(predictor.DefaultConfig(scheme))
	ctrl := secmem.New(secmem.DefaultConfig(), d, e, p, nil, image)
	mcfg := memsys.DefaultConfig()
	mcfg.FlushInterval = 0
	sys := memsys.New(mcfg, ctrl)
	return New(DefaultConfig(), prog, image, sys), image
}

func run(t *testing.T, src string) (*Core, Stats) {
	t.Helper()
	c, _ := newCore(t, src, predictor.SchemeRegular)
	st := c.Run(0)
	if !st.Halted {
		t.Fatal("program did not halt")
	}
	return c, st
}

func TestArithmetic(t *testing.T) {
	c, _ := run(t, `
		addi r1, r0, 6
		addi r2, r0, 7
		mul  r3, r1, r2
		sub  r4, r3, r1
		div  r5, r3, r2
		rem  r6, r3, r1   # 42 % 6 = 0
		halt
	`)
	if c.Reg(3) != 42 || c.Reg(4) != 36 || c.Reg(5) != 6 || c.Reg(6) != 0 {
		t.Fatalf("r3=%d r4=%d r5=%d r6=%d", c.Reg(3), c.Reg(4), c.Reg(5), c.Reg(6))
	}
}

func TestLogicAndShifts(t *testing.T) {
	c, _ := run(t, `
		addi r1, r0, 0xf0
		addi r2, r0, 0x0f
		and  r3, r1, r2
		or   r4, r1, r2
		xor  r5, r1, r2
		slli r6, r2, 4
		srli r7, r1, 4
		addi r8, r0, -16
		srai r9, r8, 2
		slt  r10, r8, r2
		sltu r11, r8, r2  # -16 as unsigned is huge
		halt
	`)
	if c.Reg(3) != 0 || c.Reg(4) != 0xff || c.Reg(5) != 0xff {
		t.Fatalf("logic: r3=%#x r4=%#x r5=%#x", c.Reg(3), c.Reg(4), c.Reg(5))
	}
	if c.Reg(6) != 0xf0 || c.Reg(7) != 0x0f {
		t.Fatalf("shift: r6=%#x r7=%#x", c.Reg(6), c.Reg(7))
	}
	if int64(c.Reg(9)) != -4 || c.Reg(10) != 1 || c.Reg(11) != 0 {
		t.Fatalf("signed: r9=%d r10=%d r11=%d", int64(c.Reg(9)), c.Reg(10), c.Reg(11))
	}
}

func TestDivByZero(t *testing.T) {
	c, _ := run(t, `
		addi r1, r0, 5
		div  r2, r1, r0
		rem  r3, r1, r0
		halt
	`)
	if c.Reg(2) != ^uint64(0) || c.Reg(3) != 5 {
		t.Fatalf("div0: r2=%#x r3=%d", c.Reg(2), c.Reg(3))
	}
}

func TestLuiAndImmediates(t *testing.T) {
	c, _ := run(t, `
		lui  r1, 5        # 5 << 12
		ori  r2, r1, 0x21
		xori r3, r2, 0x21
		andi r4, r2, 0xff
		slti r5, r0, 1
		halt
	`)
	if c.Reg(1) != 5<<12 || c.Reg(2) != 5<<12|0x21 || c.Reg(3) != 5<<12 || c.Reg(4) != 0x21 || c.Reg(5) != 1 {
		t.Fatalf("r1=%#x r2=%#x r3=%#x r4=%#x r5=%d", c.Reg(1), c.Reg(2), c.Reg(3), c.Reg(4), c.Reg(5))
	}
}

func TestR0Hardwired(t *testing.T) {
	c, _ := run(t, `
		addi r0, r0, 99
		add  r1, r0, r0
		halt
	`)
	if c.Reg(0) != 0 || c.Reg(1) != 0 {
		t.Fatalf("r0=%d r1=%d", c.Reg(0), c.Reg(1))
	}
}

func TestLoadStoreWidths(t *testing.T) {
	c, _ := run(t, `
		lui  r1, 0x100          # data base 0x100000
		addi r2, r0, 0x7f
		sd   r2, 0(r1)
		sw   r2, 8(r1)
		sh   r2, 16(r1)
		sb   r2, 24(r1)
		ld   r3, 0(r1)
		lw   r4, 8(r1)
		lh   r5, 16(r1)
		lb   r6, 24(r1)
		halt
	`)
	for r := 3; r <= 6; r++ {
		if c.Reg(r) != 0x7f {
			t.Fatalf("r%d = %#x", r, c.Reg(r))
		}
	}
}

func TestLoopAndBranches(t *testing.T) {
	// Sum 1..100 = 5050.
	c, st := run(t, `
		addi r1, r0, 0      # sum
		addi r2, r0, 1      # i
		addi r3, r0, 100
	loop:
		add  r1, r1, r2
		addi r2, r2, 1
		bge  r3, r2, loop
		halt
	`)
	if c.Reg(1) != 5050 {
		t.Fatalf("sum = %d", c.Reg(1))
	}
	if st.Branches < 100 {
		t.Fatalf("branches = %d", st.Branches)
	}
	if st.Instructions != 3+3*100+1 {
		t.Fatalf("instructions = %d", st.Instructions)
	}
}

func TestCallReturn(t *testing.T) {
	c, _ := run(t, `
		addi r10, r0, 5
		jal  r31, double
		add  r12, r11, r0
		jal  r31, double2
		halt
	double:
		add  r11, r10, r10
		jalr r0, r31, 0
	double2:
		add  r11, r12, r12
		jalr r0, r31, 0
	`)
	if c.Reg(11) != 20 || c.Reg(12) != 10 {
		t.Fatalf("r11=%d r12=%d", c.Reg(11), c.Reg(12))
	}
}

func TestBranchVariants(t *testing.T) {
	c, _ := run(t, `
		addi r1, r0, -1
		addi r2, r0, 1
		addi r10, r0, 0
		bltu r1, r2, skip1    # unsigned: huge < 1 is false
		addi r10, r10, 1
	skip1:
		blt  r1, r2, skip2    # signed: -1 < 1 true
		addi r10, r10, 100
	skip2:
		bne  r1, r2, skip3
		addi r10, r10, 100
	skip3:
		beq  r1, r1, skip4
		addi r10, r10, 100
	skip4:
		bgeu r1, r2, skip5    # unsigned: huge >= 1 true
		addi r10, r10, 100
	skip5:
		halt
	`)
	if c.Reg(10) != 1 {
		t.Fatalf("r10 = %d, want 1", c.Reg(10))
	}
}

func TestIPCPositiveAndBounded(t *testing.T) {
	_, st := run(t, `
		addi r1, r0, 0
		addi r2, r0, 1000
	loop:
		addi r1, r1, 1
		addi r3, r1, 0
		addi r4, r1, 0
		bne  r1, r2, loop
		halt
	`)
	ipc := st.IPC()
	if ipc <= 0.5 || ipc > 8 {
		t.Fatalf("IPC = %v, want in (0.5, 8]", ipc)
	}
}

func TestDependentChainSlowerThanIndependent(t *testing.T) {
	dep := `
		addi r2, r0, 2000
	loop:
		mul r1, r1, r1
		mul r1, r1, r1
		mul r1, r1, r1
		addi r2, r2, -1
		bne r2, r0, loop
		halt`
	indep := `
		addi r2, r0, 2000
	loop:
		mul r3, r1, r1
		mul r4, r1, r1
		mul r5, r1, r1
		addi r2, r2, -1
		bne r2, r0, loop
		halt`
	_, stDep := run(t, dep)
	_, stInd := run(t, indep)
	if stDep.Cycles <= stInd.Cycles {
		t.Fatalf("dependent chain (%d cycles) not slower than independent (%d)", stDep.Cycles, stInd.Cycles)
	}
}

func TestMispredictsDetected(t *testing.T) {
	// Data-dependent unpredictable-ish branch pattern via xorshift.
	_, st := run(t, `
		addi r1, r0, 12345    # rng state
		addi r2, r0, 3000     # iterations
		addi r10, r0, 0
	loop:
		slli r3, r1, 13
		xor  r1, r1, r3
		srli r3, r1, 7
		xor  r1, r1, r3
		slli r3, r1, 17
		xor  r1, r1, r3
		andi r4, r1, 1
		beq  r4, r0, even
		addi r10, r10, 1
	even:
		addi r2, r2, -1
		bne  r2, r0, loop
		halt
	`)
	if st.Mispredicts == 0 {
		t.Fatal("no mispredictions on a pseudo-random branch")
	}
	if st.Mispredicts >= st.Branches {
		t.Fatalf("mispredicts (%d) not below branches (%d)", st.Mispredicts, st.Branches)
	}
}

func TestMemoryBoundLoopSlower(t *testing.T) {
	// A pointer-stride loop over 1 MB (missing a 256 KB L2) must run at
	// far lower IPC than the same instruction count of ALU work.
	memLoop := `
		lui  r1, 0x100      # base
		addi r2, r0, 8000   # iterations
		addi r3, r0, 0      # offset
	loop:
		ld   r4, 0(r1)
		addi r1, r1, 128    # stride two lines to defeat spatial reuse
		addi r2, r2, -1
		bne  r2, r0, loop
		halt`
	aluLoop := `
		addi r2, r0, 8000
	loop:
		add  r4, r4, r2
		addi r1, r1, 128
		addi r2, r2, -1
		bne  r2, r0, loop
		halt`
	_, stMem := run(t, memLoop)
	_, stALU := run(t, aluLoop)
	if stMem.IPC() >= stALU.IPC()/2 {
		t.Fatalf("memory-bound IPC %.3f not well below ALU IPC %.3f", stMem.IPC(), stALU.IPC())
	}
	if stMem.Loads < 8000 {
		t.Fatalf("loads = %d", stMem.Loads)
	}
}

func TestPredictionImprovesMemoryBoundIPC(t *testing.T) {
	// The headline effect: on a read-heavy miss-bound loop, OTP
	// prediction beats the no-prediction baseline.
	src := `
		lui  r1, 0x100
		addi r2, r0, 4000
	loop:
		ld   r4, 0(r1)
		addi r1, r1, 32
		addi r2, r2, -1
		bne  r2, r0, loop
		halt`
	base, _ := newCore(t, src, predictor.SchemeNone)
	pred, _ := newCore(t, src, predictor.SchemeRegular)
	stBase := base.Run(0)
	stPred := pred.Run(0)
	if stPred.Cycles >= stBase.Cycles {
		t.Fatalf("prediction (%d cycles) not faster than baseline (%d)", stPred.Cycles, stBase.Cycles)
	}
}

func TestMaxInstructionsCap(t *testing.T) {
	c, _ := newCore(t, `
	loop:
		addi r1, r1, 1
		beq r0, r0, loop
	`, predictor.SchemeRegular)
	st := c.Run(1000)
	if st.Halted {
		t.Fatal("infinite loop reported halted")
	}
	if st.Instructions != 1000 {
		t.Fatalf("instructions = %d, want 1000", st.Instructions)
	}
}

func TestRunOffEndHalts(t *testing.T) {
	c, _ := newCore(t, "addi r1, r0, 1", predictor.SchemeRegular)
	st := c.Run(0)
	if !c.Halted() || st.Instructions != 1 {
		t.Fatalf("halted=%v instrs=%d", c.Halted(), st.Instructions)
	}
}

func TestSetReg(t *testing.T) {
	c, _ := newCore(t, "add r2, r1, r1\nhalt", predictor.SchemeRegular)
	c.SetReg(1, 21)
	c.SetReg(0, 99) // must be ignored
	c.Run(0)
	if c.Reg(2) != 42 || c.Reg(0) != 0 {
		t.Fatalf("r2=%d r0=%d", c.Reg(2), c.Reg(0))
	}
}

func TestStoreThenLoadThroughHierarchy(t *testing.T) {
	// Write a value, blow it out of L2 via a long walk, read it back:
	// the round trip crosses encryption and must still be correct.
	c, _ := run(t, `
		lui  r1, 0x200
		addi r2, r0, 0x5a5a
		sd   r2, 0(r1)
		lui  r3, 0x300       # walk 512 KB elsewhere
		addi r4, r0, 16384
	walk:
		ld   r5, 0(r3)
		addi r3, r3, 32
		addi r4, r4, -1
		bne  r4, r0, walk
		ld   r6, 0(r1)
		halt
	`)
	if c.Reg(6) != 0x5a5a {
		t.Fatalf("round-trip value = %#x", c.Reg(6))
	}
}

func TestGshareLearnsLoop(t *testing.T) {
	g := newGshare(10)
	pc := uint64(0x400)
	for i := 0; i < 50; i++ {
		g.updateDirection(pc, true)
	}
	if !g.predictDirection(pc) {
		t.Fatal("gshare did not learn an always-taken branch")
	}
}

func TestGshareTargets(t *testing.T) {
	g := newGshare(10)
	if _, ok := g.predictTarget(0x100); ok {
		t.Fatal("cold target predicted")
	}
	g.updateTarget(0x100, 0x500)
	if tgt, ok := g.predictTarget(0x100); !ok || tgt != 0x500 {
		t.Fatalf("target = %#x, %v", tgt, ok)
	}
}

func TestLVPLearnsStableLoads(t *testing.T) {
	l := newLVP(64)
	pc := uint64(0x1000)
	if _, conf := l.predict(pc); conf {
		t.Fatal("cold LVP entry confident")
	}
	// One train installs the value; two more confirmations build
	// confidence; later ones speculate.
	l.train(pc, 7)
	l.train(pc, 7)
	l.train(pc, 7)
	if v, conf := l.predict(pc); !conf || v != 7 {
		t.Fatalf("LVP not confident after repeats: v=%d conf=%v", v, conf)
	}
	if spec, correct := l.train(pc, 7); !spec || !correct {
		t.Fatal("confident correct prediction not counted")
	}
	if spec, correct := l.train(pc, 9); !spec || correct {
		t.Fatal("confident wrong prediction not counted as miss")
	}
	if l.hits != 1 || l.misses != 1 {
		t.Fatalf("hits=%d misses=%d", l.hits, l.misses)
	}
}

func TestLVPDisabled(t *testing.T) {
	if newLVP(0) != nil {
		t.Fatal("LVP created with 0 entries")
	}
}

func TestLVPSpeedsStableLoadChain(t *testing.T) {
	// A constant-valued load that keeps missing the caches (a strided
	// walk evicts its line every iteration): the last-value predictor
	// locks on and lets the dependent chain retire at ALU speed while
	// the miss verifies in the background.
	src := `
		lui  r1, 0x100       # the stable location
		addi r7, r0, 42
		sd   r7, 0(r1)
		add  r2, r1, r0      # eviction cursor
		addi r9, r0, 4000
	loop:
		ld   r4, 0(r1)       # stable value, usually a miss
		add  r5, r5, r4
		addi r2, r2, 8192    # walk conflicting sets
		ld   r6, 0(r2)
		addi r9, r9, -1
		bne  r9, r0, loop
		halt`
	build := func(entries int) (*Core, Stats) {
		c, _ := newCore(t, src, predictor.SchemeRegular)
		c.cfg.LVPEntries = entries
		c.lvp = newLVP(entries)
		return c, c.Run(0)
	}
	_, plain := build(0)
	cw, with := build(1024)
	if with.LVPHits == 0 {
		t.Fatal("LVP never hit on a constant load")
	}
	if with.Cycles >= plain.Cycles {
		t.Fatalf("LVP (%d cycles) not faster than without (%d)", with.Cycles, plain.Cycles)
	}
	if cw.Reg(5) != 42*4000 {
		t.Fatalf("architectural sum = %d (speculation corrupted state)", cw.Reg(5))
	}
}

func TestLVPMispredictsCostSquash(t *testing.T) {
	// Loads returning fresh values every time: the LVP gains confidence
	// occasionally, mispredicts, and must never corrupt architectural
	// state — only timing.
	src := `
		lui  r1, 0x100
		addi r9, r0, 3000
		addi r5, r0, 0
	loop:
		srli r7, r9, 4       # value changes every 16 iterations:
		sd   r7, 0(r1)       # long enough to gain confidence, then break it
		ld   r4, 0(r1)
		add  r5, r5, r4
		addi r9, r9, -1
		bne  r9, r0, loop
		halt`
	c, _ := newCore(t, src, predictor.SchemeRegular)
	c.cfg.LVPEntries = 256
	c.lvp = newLVP(256)
	st := c.Run(0)
	// Architectural check: sum of (i >> 4) for i = 3000 .. 1.
	var want uint64
	for i := uint64(3000); i >= 1; i-- {
		want += i >> 4
	}
	if c.Reg(5) != want {
		t.Fatalf("architectural sum = %d, want %d (speculation corrupted state)", c.Reg(5), want)
	}
	if st.LVPMisses == 0 {
		t.Fatal("phase-changing values never mispredicted")
	}
	if st.LVPHits == 0 {
		t.Fatal("stable phases never predicted")
	}
}
