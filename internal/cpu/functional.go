package cpu

import "ctrpred/internal/isa"

// RunFunctional executes the program without the out-of-order timing
// model: one instruction per cycle, with memory operations driven through
// the hierarchy at that cycle. Cache, predictor and counter dynamics are
// identical to a timed run (they depend only on the access stream), so
// this mode is used for the long-window prediction-rate experiments
// (Figures 7–9 and 12–14), where only hit rates — not IPC — are measured.
// It mirrors the paper's "simplified mode that simulates the memory
// hierarchy and OTP prediction for 8 billion instructions".
func (c *Core) RunFunctional(maxInstructions uint64) Stats {
	now := c.lastCommit
	base := c.prog.Base
	for !c.halted && (maxInstructions == 0 || c.stats.Instructions < maxInstructions) {
		if c.pc < base || (c.pc-base)&(isa.InstrBytes-1) != 0 {
			c.halted = true
			break
		}
		idx := (c.pc - base) / isa.InstrBytes
		if idx >= uint64(len(c.prog.Instrs)) {
			c.halted = true
			break
		}
		d := &c.meta[idx]
		in := d.in
		thisPC := c.pc
		now++

		// Instruction-side stream: one I-access per new line.
		lineAddr := thisPC &^ 31
		if !c.haveFetchLine || lineAddr != c.curFetchLine {
			c.sys.FetchInstr(now, thisPC)
			c.curFetchLine = lineAddr
			c.haveFetchLine = true
		}

		if d.memBytes > 0 {
			addr := c.regs[in.Rs1] + uint64(in.Imm)
			write := d.cl == isa.ClassStore
			c.sys.Access(now, addr, write)
			if write {
				c.stats.Stores++
			} else {
				c.stats.Loads++
			}
		}

		nextPC, taken := c.exec(in, d, thisPC)
		if d.cl == isa.ClassBranch {
			c.stats.Branches++
			_ = taken
		}
		c.stats.Instructions++
		c.pc = nextPC
		if in.Op == isa.OpHalt {
			c.halted = true
		}
		if c.checkpoint() {
			break
		}
	}
	c.lastCommit = now
	if c.sys != nil {
		c.sys.DrainDirty(now)
	}
	return c.Stats()
}
