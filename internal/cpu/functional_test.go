package cpu

import (
	"testing"

	"ctrpred/internal/predictor"
)

// Functional mode must produce the same architectural results as the
// timed out-of-order run — same register state, same instruction count —
// and the same memory-system event counts (the access stream is
// identical).
func TestFunctionalMatchesTimedArchitecturally(t *testing.T) {
	src := `
		addi r1, r0, 0
		addi r2, r0, 500
		lui  r5, 0x100
	loop:
		ld   r3, 0(r5)
		add  r1, r1, r3
		sd   r1, 8(r5)
		addi r5, r5, 32
		addi r2, r2, -1
		bne  r2, r0, loop
		halt`
	timed, _ := newCore(t, src, predictor.SchemeRegular)
	funct, _ := newCore(t, src, predictor.SchemeRegular)

	st := timed.Run(0)
	sf := funct.RunFunctional(0)

	if st.Instructions != sf.Instructions {
		t.Fatalf("instruction counts differ: %d vs %d", st.Instructions, sf.Instructions)
	}
	for r := 0; r < 32; r++ {
		if timed.Reg(r) != funct.Reg(r) {
			t.Fatalf("r%d differs: %#x vs %#x", r, timed.Reg(r), funct.Reg(r))
		}
	}
	if st.Loads != sf.Loads || st.Stores != sf.Stores {
		t.Fatalf("memory op counts differ: %d/%d vs %d/%d", st.Loads, st.Stores, sf.Loads, sf.Stores)
	}
}

func TestFunctionalHonorsCap(t *testing.T) {
	c, _ := newCore(t, "loop:\naddi r1, r1, 1\nbeq r0, r0, loop", predictor.SchemeRegular)
	st := c.RunFunctional(500)
	if st.Instructions != 500 || st.Halted {
		t.Fatalf("stats = %+v", st)
	}
}

func TestFunctionalRunsOffEnd(t *testing.T) {
	c, _ := newCore(t, "addi r1, r0, 3", predictor.SchemeRegular)
	st := c.RunFunctional(0)
	if !st.Halted || st.Instructions != 1 || c.Reg(1) != 3 {
		t.Fatalf("stats = %+v, r1 = %d", st, c.Reg(1))
	}
}

func TestFunctionalCyclesAreInstructionCount(t *testing.T) {
	c, _ := newCore(t, `
		addi r2, r0, 100
	loop:
		addi r2, r2, -1
		bne  r2, r0, loop
		halt`, predictor.SchemeRegular)
	st := c.RunFunctional(0)
	if st.Cycles != st.Instructions {
		t.Fatalf("functional cycles %d != instructions %d", st.Cycles, st.Instructions)
	}
}
