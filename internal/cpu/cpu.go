// Package cpu implements the out-of-order processor core of Table 1: an
// 8-wide fetch/decode/issue/commit machine with a reorder buffer, gshare
// branch prediction, per-class functional units, and loads/stores that
// run through the memory hierarchy (package memsys) — and therefore
// through the encrypted memory controller.
//
// # Timing model
//
// The core uses the standard one-pass dataflow approximation of an
// out-of-order pipeline: instructions are executed functionally in
// program order while their fetch/issue/complete/commit cycles are
// computed from dataflow and resource constraints:
//
//   - fetch is bounded by fetch width, I-cache latency, ROB occupancy
//     (an instruction cannot fetch until the instruction ROBSize ahead
//     of it has committed), and branch mispredictions (fetch redirects
//     when the branch resolves);
//   - issue waits for source operands (register ready times), a free
//     functional unit of the right class, and issue bandwidth;
//   - loads complete when the hierarchy returns data, so independent
//     loads overlap their misses (memory-level parallelism bounded by
//     DRAM banks, the bus, and the crypto engine);
//   - commit is in order, CommitWidth per cycle.
//
// This is the level of fidelity the paper's IPC comparisons need: the
// relative cost of exposed decryption latency on L2 misses. It is not a
// wrong-path simulator; speculation effects beyond the misprediction
// redirect penalty are out of scope.
package cpu

import (
	"fmt"

	"ctrpred/internal/isa"
	"ctrpred/internal/mem"
	"ctrpred/internal/memsys"
	"ctrpred/internal/stats"
)

// Config holds the core parameters (Table 1 defaults via DefaultConfig).
type Config struct {
	FetchWidth  int
	IssueWidth  int
	CommitWidth int
	ROBSize     int
	// FrontendDepth is the fetch-to-dispatch pipeline depth in cycles.
	FrontendDepth uint64
	// MispredictPenalty is the frontend refill delay added after a
	// mispredicted branch resolves.
	MispredictPenalty uint64
	// Functional unit counts.
	IntALUs  int
	MulDivs  int
	FPUs     int
	MemPorts int
	// Latencies per class, in cycles.
	LatALU   uint64
	LatMul   uint64
	LatDiv   uint64
	LatFPAdd uint64
	LatFPMul uint64
	LatFPDiv uint64
	// GshareBits sizes the branch predictor (2^bits counters).
	GshareBits uint
	// LVPEntries enables a last-value load-value predictor of that many
	// entries (Section 9.3's alternative latency-tolerance mechanism;
	// 0 disables). Confident correct predictions let dependents proceed
	// at ALU latency; confident wrong ones squash like a branch.
	LVPEntries int
}

// DefaultConfig returns the Table 1 core.
func DefaultConfig() Config {
	return Config{
		FetchWidth:        8,
		IssueWidth:        8,
		CommitWidth:       8,
		ROBSize:           128,
		FrontendDepth:     3,
		MispredictPenalty: 3,
		IntALUs:           4,
		MulDivs:           1,
		FPUs:              2,
		MemPorts:          2,
		LatALU:            1,
		LatMul:            3,
		LatDiv:            20,
		LatFPAdd:          2,
		LatFPMul:          4,
		LatFPDiv:          12,
		GshareBits:        12,
	}
}

// Stats reports the outcome of a run.
type Stats struct {
	Instructions uint64
	Cycles       uint64
	Loads        uint64
	Stores       uint64
	Branches     uint64
	Mispredicts  uint64
	// LVPHits/LVPMisses count confident load-value predictions (0 when
	// the LVP is disabled).
	LVPHits   uint64
	LVPMisses uint64
	Halted    bool // program executed halt (vs. hitting the cap)
}

// IPC returns instructions per cycle.
func (s Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Instructions) / float64(s.Cycles)
}

// AddTo registers the core's counters into a metrics snapshot node.
func (s Stats) AddTo(n *stats.Snapshot) {
	n.Counter("instructions", s.Instructions)
	n.Counter("cycles", s.Cycles)
	n.Counter("loads", s.Loads)
	n.Counter("stores", s.Stores)
	n.Counter("branches", s.Branches)
	n.Counter("mispredicts", s.Mispredicts)
	n.Counter("lvp_hits", s.LVPHits)
	n.Counter("lvp_misses", s.LVPMisses)
	n.Value("ipc", s.IPC())
}

// decoded holds one static instruction together with the properties step
// consults on every dynamic instance: the functional-unit class and the
// operand read/write sets. They are pure functions of the opcode, so the
// core computes them once at construction instead of re-deriving them
// from branchy switches in the hot loop; embedding the instruction keeps
// the whole record in one cache line per fetch.
type decoded struct {
	in       isa.Instr
	cl       isa.Class
	memBytes uint8 // load/store access width, 0 otherwise
	usesRs1  bool
	usesRs2  bool
	writesRd bool
}

// Core is one processor instance bound to a program, architectural
// memory, and a memory hierarchy.
type Core struct {
	cfg  Config
	prog *isa.Program
	meta []decoded // parallel to prog.Instrs
	mem  *mem.Memory
	sys  *memsys.System
	bp   *gshare
	lvp  *lvp // nil unless Config.LVPEntries > 0

	regs   [32]uint64
	pc     uint64
	halted bool

	// Timing state.
	nextFetch     uint64 // earliest cycle the next instruction may fetch
	fetchedAt     uint64 // cycle of the current fetch group
	fetchedCount  int
	curFetchLine  uint64 // I-cache line the frontend is streaming from
	haveFetchLine bool
	regReady      [32]uint64
	retireRing    []uint64 // commit cycles of the last ROBSize instrs
	retireIdx     int
	lastCommit    uint64
	commitCount   int
	issuedAt      uint64
	issuedCount   int
	fu            [isa.ClassHalt + 1][]uint64 // per-class unit free times, indexed by isa.Class

	// Checkpoint state: check is consulted every checkEvery committed
	// instructions; a non-nil return stops the run (see SetCheckpoint).
	check      func() error
	checkEvery uint64
	nextCheck  uint64
	stopCause  error

	stats Stats
}

// New creates a core at the program's first instruction.
func New(cfg Config, prog *isa.Program, m *mem.Memory, sys *memsys.System) *Core {
	c := &Core{
		cfg:  cfg,
		prog: prog,
		mem:  m,
		sys:  sys,
		bp:   newGshare(cfg.GshareBits),
		lvp:  newLVP(cfg.LVPEntries),
		pc:   prog.Base,
	}
	c.retireRing = make([]uint64, cfg.ROBSize)
	c.meta = make([]decoded, len(prog.Instrs))
	for i, in := range prog.Instrs {
		c.meta[i] = decode(in)
	}
	c.fu[isa.ClassALU] = make([]uint64, cfg.IntALUs)
	c.fu[isa.ClassMul] = make([]uint64, cfg.MulDivs)
	c.fu[isa.ClassDiv] = make([]uint64, cfg.MulDivs)
	c.fu[isa.ClassFPAdd] = make([]uint64, cfg.FPUs)
	c.fu[isa.ClassFPMul] = make([]uint64, cfg.FPUs)
	c.fu[isa.ClassFPDiv] = make([]uint64, cfg.FPUs)
	c.fu[isa.ClassLoad] = make([]uint64, cfg.MemPorts)
	c.fu[isa.ClassStore] = make([]uint64, cfg.MemPorts)
	c.fu[isa.ClassBranch] = make([]uint64, cfg.IntALUs)
	c.fu[isa.ClassJump] = make([]uint64, cfg.IntALUs)
	return c
}

// Reg returns architectural register r (tests, examples).
func (c *Core) Reg(r int) uint64 { return c.regs[r] }

// SetReg initializes architectural register r (program arguments).
func (c *Core) SetReg(r int, v uint64) {
	if r != 0 {
		c.regs[r] = v
	}
}

// PC returns the current program counter.
func (c *Core) PC() uint64 { return c.pc }

// Halted reports whether the program has executed halt.
func (c *Core) Halted() bool { return c.halted }

// Stats returns a copy of the run statistics so far.
func (c *Core) Stats() Stats {
	s := c.stats
	s.Cycles = c.lastCommit
	s.Halted = c.halted
	return s
}

// latency returns the execution latency for a class (loads handled
// separately).
func (c *Core) latency(cl isa.Class) uint64 {
	switch cl {
	case isa.ClassALU, isa.ClassBranch, isa.ClassJump:
		return c.cfg.LatALU
	case isa.ClassMul:
		return c.cfg.LatMul
	case isa.ClassDiv:
		return c.cfg.LatDiv
	case isa.ClassFPAdd:
		return c.cfg.LatFPAdd
	case isa.ClassFPMul:
		return c.cfg.LatFPMul
	case isa.ClassFPDiv:
		return c.cfg.LatFPDiv
	}
	return 1
}

// reserveFU returns the issue time on the earliest-free unit of class cl,
// at or after ready, and books the unit until issue+busy.
func (c *Core) reserveFU(cl isa.Class, ready, busy uint64) uint64 {
	units := c.fu[cl]
	best := 0
	for i := 1; i < len(units); i++ {
		if units[i] < units[best] {
			best = i
		}
	}
	start := ready
	if units[best] > start {
		start = units[best]
	}
	units[best] = start + busy
	return start
}

// SetCheckpoint arranges for fn to be called every interval committed
// instructions during Run/RunFunctional. If fn returns a non-nil error
// the run stops within that interval; the error is available from
// StopCause. A nil fn removes the checkpoint. The checkpoint only reads
// state, so a run whose checkpoint never fires is cycle-for-cycle
// identical to one without it.
func (c *Core) SetCheckpoint(interval uint64, fn func() error) {
	if fn == nil || interval == 0 {
		c.check, c.checkEvery = nil, 0
		return
	}
	c.check = fn
	c.checkEvery = interval
	c.nextCheck = c.stats.Instructions + interval
}

// StopCause returns the checkpoint error that interrupted the run, or
// nil if the run ended by halting or exhausting its budget.
func (c *Core) StopCause() error { return c.stopCause }

// Committed returns the number of instructions committed so far; live
// during Run/RunFunctional, so external observers (fault-injection
// triggers) can key off simulation progress.
func (c *Core) Committed() uint64 { return c.stats.Instructions }

// checkpoint polls the registered checkpoint function; it reports true
// when the run must stop.
func (c *Core) checkpoint() bool {
	if c.check == nil || c.stats.Instructions < c.nextCheck {
		return false
	}
	c.nextCheck = c.stats.Instructions + c.checkEvery
	if err := c.check(); err != nil {
		c.stopCause = err
		return true
	}
	return false
}

// Run executes until halt or until maxInstructions commit, and returns
// the final statistics. maxInstructions == 0 means run to halt.
func (c *Core) Run(maxInstructions uint64) Stats {
	for !c.halted && (maxInstructions == 0 || c.stats.Instructions < maxInstructions) {
		c.step()
		if c.checkpoint() {
			break
		}
	}
	if c.sys != nil {
		// Writebacks of still-dirty lines belong to the measured region.
		c.sys.DrainDirty(c.lastCommit)
	}
	return c.Stats()
}

// RunSlice executes until halt or until the committed-instruction count
// reaches target (an absolute count, like Run's maxInstructions), and
// returns the statistics so far. Unlike Run it does NOT drain dirty
// lines afterward: a slice is one timeslice of a longer residency, and
// the still-dirty lines belong to the instructions that will follow —
// either the next slice of this core or the final Run/DrainDirty that
// closes the measured region. Interleaving schedulers (internal/tenancy)
// alternate RunSlice calls across machines and drain once at the end.
func (c *Core) RunSlice(target uint64) Stats {
	for !c.halted && c.stats.Instructions < target {
		c.step()
		if c.checkpoint() {
			break
		}
	}
	return c.Stats()
}

// decode derives the static instruction properties consulted per step.
func decode(in isa.Instr) decoded {
	cl := in.Op.Class()
	d := decoded{in: in, cl: cl, memBytes: uint8(in.Op.MemBytes()), writesRd: writesRd(in)}
	d.usesRs1 = cl != isa.ClassNop && cl != isa.ClassHalt && in.Op != isa.OpLui && in.Op != isa.OpJal
	switch cl {
	case isa.ClassStore, isa.ClassBranch:
		d.usesRs2 = true
	default:
		switch in.Op {
		case isa.OpAdd, isa.OpSub, isa.OpAnd, isa.OpOr, isa.OpXor, isa.OpSll, isa.OpSrl,
			isa.OpSra, isa.OpSlt, isa.OpSltu, isa.OpMul, isa.OpDiv, isa.OpRem,
			isa.OpFadd, isa.OpFsub, isa.OpFmul, isa.OpFdiv:
			d.usesRs2 = true
		}
	}
	return d
}

// step fetches, times, and functionally executes one instruction.
func (c *Core) step() {
	base := c.prog.Base
	if c.pc < base || (c.pc-base)&(isa.InstrBytes-1) != 0 {
		c.halted = true
		return
	}
	idx := (c.pc - base) / isa.InstrBytes
	if idx >= uint64(len(c.prog.Instrs)) {
		c.halted = true
		return
	}
	d := &c.meta[idx]
	in := d.in
	thisPC := c.pc

	// ---- Fetch ----
	fetch := c.nextFetch
	// ROB occupancy: the slot reused by this instruction must have
	// committed.
	if occ := c.retireRing[c.retireIdx]; occ > fetch {
		fetch = occ
	}
	// Fetch-group bandwidth.
	if fetch == c.fetchedAt && c.fetchedCount >= c.cfg.FetchWidth {
		fetch++
	}
	// I-cache: streaming within a line is free; a new line pays a fetch.
	lineAddr := thisPC &^ 31
	if !c.haveFetchLine || lineAddr != c.curFetchLine {
		done := c.sys.FetchInstr(fetch, thisPC)
		if done > fetch+1 {
			fetch = done - 1 // the line arrives; fetch proceeds that cycle
		}
		c.curFetchLine = lineAddr
		c.haveFetchLine = true
	}
	if fetch != c.fetchedAt {
		c.fetchedAt = fetch
		c.fetchedCount = 0
	}
	c.fetchedCount++
	c.nextFetch = fetch

	dispatch := fetch + c.cfg.FrontendDepth

	// ---- Operand readiness ----
	ready := dispatch
	cl := d.cl
	if d.usesRs1 && c.regReady[in.Rs1] > ready {
		ready = c.regReady[in.Rs1]
	}
	if d.usesRs2 && c.regReady[in.Rs2] > ready {
		ready = c.regReady[in.Rs2]
	}

	// ---- Issue ----
	issue := ready
	if issue == c.issuedAt && c.issuedCount >= c.cfg.IssueWidth {
		issue++
	}
	var complete uint64
	switch cl {
	case isa.ClassNop, isa.ClassHalt:
		complete = issue
	case isa.ClassLoad:
		issue = c.reserveFU(isa.ClassLoad, issue, 1)
		addr := c.regs[in.Rs1] + uint64(in.Imm)
		memDone := c.sys.Access(issue, addr, false)
		complete = memDone
		if c.lvp != nil {
			actual := c.mem.Load(addr, int(d.memBytes))
			if speculated, correct := c.lvp.train(thisPC, actual); speculated {
				if correct {
					// Dependents used the predicted value; the access
					// verifies it in the background.
					complete = issue + c.cfg.LatALU
					c.stats.LVPHits++
				} else {
					// Squash: dependents replay after the true value
					// arrives, plus the refill penalty.
					complete = memDone + c.cfg.MispredictPenalty
					c.stats.LVPMisses++
				}
			}
		}
		c.stats.Loads++
	case isa.ClassStore:
		issue = c.reserveFU(isa.ClassStore, issue, 1)
		addr := c.regs[in.Rs1] + uint64(in.Imm)
		c.sys.Access(issue, addr, true) // posted: state update + occupancy
		complete = issue + 1
		c.stats.Stores++
	default:
		lat := c.latency(cl)
		issue = c.reserveFU(cl, issue, 1) // units are pipelined
		complete = issue + lat
	}
	if issue != c.issuedAt {
		c.issuedAt = issue
		c.issuedCount = 0
	}
	c.issuedCount++

	// ---- Functional execution & control flow ----
	nextPC, taken := c.exec(in, d, thisPC)

	switch cl {
	case isa.ClassBranch:
		c.stats.Branches++
		pred := c.bp.predictDirection(thisPC)
		c.bp.updateDirection(thisPC, taken)
		if pred != taken {
			c.stats.Mispredicts++
			c.redirect(complete)
		}
	case isa.ClassJump:
		if in.Op == isa.OpJalr {
			c.stats.Branches++
			predTarget, have := c.bp.predictTarget(thisPC)
			c.bp.updateTarget(thisPC, nextPC)
			if !have || predTarget != nextPC {
				c.stats.Mispredicts++
				c.redirect(complete)
			}
		}
		// Direct jal: target known at decode; no redirect cost beyond
		// the taken-path line change handled by the I-cache model.
	}
	if nextPC&^31 != thisPC&^31 {
		c.haveFetchLine = c.haveFetchLine && nextPC&^31 == c.curFetchLine
	}

	// ---- Writeback ----
	if d.writesRd && in.Rd != 0 {
		c.regReady[in.Rd] = complete
	}

	// ---- Commit (in order) ----
	commit := complete
	if commit < c.lastCommit {
		commit = c.lastCommit
	}
	if commit == c.lastCommit && c.commitCount >= c.cfg.CommitWidth {
		commit++
	}
	if commit != c.lastCommit {
		c.lastCommit = commit
		c.commitCount = 0
	}
	c.commitCount++
	c.retireRing[c.retireIdx] = commit
	if c.retireIdx++; c.retireIdx == len(c.retireRing) {
		c.retireIdx = 0
	}

	c.stats.Instructions++
	c.pc = nextPC
	if in.Op == isa.OpHalt {
		c.halted = true
	}
}

// redirect models a branch misprediction: fetch resumes after resolution
// plus the refill penalty, and the current fetch line is discarded.
func (c *Core) redirect(resolve uint64) {
	restart := resolve + c.cfg.MispredictPenalty
	if restart > c.nextFetch {
		c.nextFetch = restart
	}
	c.haveFetchLine = false
}

func writesRd(in isa.Instr) bool {
	switch in.Op.Class() {
	case isa.ClassStore, isa.ClassBranch, isa.ClassNop, isa.ClassHalt:
		return false
	}
	return true
}

// exec computes the architectural effect of in at pc, returning the next
// PC and (for branches) whether it was taken.
func (c *Core) exec(in isa.Instr, d *decoded, pc uint64) (nextPC uint64, taken bool) {
	rs1 := c.regs[in.Rs1]
	rs2 := c.regs[in.Rs2]
	set := func(v uint64) {
		if in.Rd != 0 {
			c.regs[in.Rd] = v
		}
	}
	nextPC = pc + isa.InstrBytes

	switch in.Op {
	case isa.OpNop, isa.OpHalt:
	case isa.OpAdd, isa.OpFadd:
		set(rs1 + rs2)
	case isa.OpSub, isa.OpFsub:
		set(rs1 - rs2)
	case isa.OpAnd:
		set(rs1 & rs2)
	case isa.OpOr:
		set(rs1 | rs2)
	case isa.OpXor:
		set(rs1 ^ rs2)
	case isa.OpSll:
		set(rs1 << (rs2 & 63))
	case isa.OpSrl:
		set(rs1 >> (rs2 & 63))
	case isa.OpSra:
		set(uint64(int64(rs1) >> (rs2 & 63)))
	case isa.OpSlt:
		set(b2u(int64(rs1) < int64(rs2)))
	case isa.OpSltu:
		set(b2u(rs1 < rs2))
	case isa.OpMul, isa.OpFmul:
		set(rs1 * rs2)
	case isa.OpDiv, isa.OpFdiv:
		if rs2 == 0 {
			set(^uint64(0))
		} else {
			set(rs1 / rs2)
		}
	case isa.OpRem:
		if rs2 == 0 {
			set(rs1)
		} else {
			set(rs1 % rs2)
		}
	case isa.OpAddi:
		set(rs1 + uint64(in.Imm))
	case isa.OpAndi:
		set(rs1 & uint64(in.Imm))
	case isa.OpOri:
		set(rs1 | uint64(in.Imm))
	case isa.OpXori:
		set(rs1 ^ uint64(in.Imm))
	case isa.OpSlli:
		set(rs1 << (uint64(in.Imm) & 63))
	case isa.OpSrli:
		set(rs1 >> (uint64(in.Imm) & 63))
	case isa.OpSrai:
		set(uint64(int64(rs1) >> (uint64(in.Imm) & 63)))
	case isa.OpSlti:
		set(b2u(int64(rs1) < in.Imm))
	case isa.OpLui:
		set(uint64(in.Imm) << 12)
	case isa.OpLd, isa.OpLw, isa.OpLh, isa.OpLb:
		set(c.mem.Load(rs1+uint64(in.Imm), int(d.memBytes)))
	case isa.OpSd, isa.OpSw, isa.OpSh, isa.OpSb:
		c.mem.Store(rs1+uint64(in.Imm), int(d.memBytes), rs2)
	case isa.OpBeq:
		taken = rs1 == rs2
	case isa.OpBne:
		taken = rs1 != rs2
	case isa.OpBlt:
		taken = int64(rs1) < int64(rs2)
	case isa.OpBge:
		taken = int64(rs1) >= int64(rs2)
	case isa.OpBltu:
		taken = rs1 < rs2
	case isa.OpBgeu:
		taken = rs1 >= rs2
	case isa.OpJal:
		set(pc + isa.InstrBytes)
		nextPC = pc + uint64(in.Imm)
		return nextPC, true
	case isa.OpJalr:
		set(pc + isa.InstrBytes)
		nextPC = rs1 + uint64(in.Imm)
		return nextPC, true
	default:
		panic(fmt.Sprintf("cpu: unimplemented opcode %v", in.Op))
	}
	if d.cl == isa.ClassBranch && taken {
		nextPC = pc + uint64(in.Imm)
	}
	return nextPC, taken
}
