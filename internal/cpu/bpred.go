package cpu

// gshare is a global-history branch direction predictor with 2-bit
// saturating counters, plus a small last-target table for indirect jumps.
type gshare struct {
	histBits uint
	history  uint64
	counters []uint8 // 2-bit saturating, initialized weakly taken

	targets map[uint64]uint64 // jalr last-target BTB
}

func newGshare(histBits uint) *gshare {
	n := 1 << histBits
	g := &gshare{
		histBits: histBits,
		counters: make([]uint8, n),
		targets:  make(map[uint64]uint64),
	}
	for i := range g.counters {
		g.counters[i] = 1 // weakly not-taken
	}
	return g
}

func (g *gshare) index(pc uint64) int {
	return int((pc>>3 ^ g.history) & (1<<g.histBits - 1))
}

// predictDirection returns the predicted taken/not-taken for pc.
func (g *gshare) predictDirection(pc uint64) bool {
	return g.counters[g.index(pc)] >= 2
}

// updateDirection trains the predictor with the actual outcome.
func (g *gshare) updateDirection(pc uint64, taken bool) {
	i := g.index(pc)
	if taken {
		if g.counters[i] < 3 {
			g.counters[i]++
		}
	} else {
		if g.counters[i] > 0 {
			g.counters[i]--
		}
	}
	g.history = g.history<<1 | b2u(taken)
}

// predictTarget returns the predicted target of an indirect jump at pc
// and whether a prediction exists.
func (g *gshare) predictTarget(pc uint64) (uint64, bool) {
	t, ok := g.targets[pc]
	return t, ok
}

// updateTarget trains the indirect-target table.
func (g *gshare) updateTarget(pc, target uint64) {
	g.targets[pc] = target
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// lvp is a last-value load-value predictor with 2-bit confidence — the
// classic Lipasti/Wilkerson/Shen mechanism the paper's Section 9.3
// contrasts OTP prediction against. A confident correct prediction lets
// dependents proceed at ALU speed while the memory access verifies in the
// background; a confident wrong prediction costs a squash.
type lvp struct {
	mask   uint64
	values []uint64
	conf   []uint8

	hits, misses uint64
}

func newLVP(entries int) *lvp {
	if entries <= 0 {
		return nil
	}
	n := 1
	for n < entries {
		n <<= 1
	}
	return &lvp{mask: uint64(n - 1), values: make([]uint64, n), conf: make([]uint8, n)}
}

func (l *lvp) index(pc uint64) uint64 { return (pc >> 3) & l.mask }

// predict returns the predicted value and whether the entry is confident
// enough to speculate on.
func (l *lvp) predict(pc uint64) (uint64, bool) {
	i := l.index(pc)
	return l.values[i], l.conf[i] >= 2
}

// train records the actual loaded value and whether a confident
// prediction was made, returning (speculated, correct).
func (l *lvp) train(pc uint64, actual uint64) (speculated, correct bool) {
	i := l.index(pc)
	pred, confident := l.values[i], l.conf[i] >= 2
	if pred == actual {
		if l.conf[i] < 3 {
			l.conf[i]++
		}
	} else {
		if l.conf[i] > 0 {
			l.conf[i]--
		}
		l.values[i] = actual
	}
	if confident {
		if pred == actual {
			l.hits++
			return true, true
		}
		l.misses++
		return true, false
	}
	return false, false
}
