// Package dram models the off-chip SDRAM following the PC SDRAM-style
// model the paper integrates (Gries & Romer): a single channel with a
// 200 MHz × 8-byte data bus, multiple banks, and an open-row policy in
// which accesses are classified as row hits, row misses (bank idle,
// needs activate), or row conflicts (different row open, needs precharge
// then activate). Bank conflicts and data-bus contention serialize
// overlapping accesses, which is what bounds the memory-level parallelism
// visible to the out-of-order core.
//
// All times are in CPU cycles (1 GHz ⇒ 1 cycle = 1 ns; one bus beat =
// BusRatio CPU cycles).
package dram

import (
	"math/bits"

	"ctrpred/internal/stats"
)

// Config describes the DRAM channel.
type Config struct {
	Banks    int    // number of banks (power of two)
	RowBytes int    // bytes per row per bank
	BusBytes int    // bytes transferred per bus beat (8)
	BusRatio uint64 // CPU cycles per bus beat (5 for 200 MHz at 1 GHz)
	TRCD     uint64 // activate → column command, CPU cycles
	TCAS     uint64 // column command → first data, CPU cycles
	TRP      uint64 // precharge, CPU cycles
	// PartitionAddr, when non-zero, splits the bank set: addresses at or
	// above it (the secure controller's counter table) map onto the last
	// PartitionBanks banks, everything else onto the rest. Without the
	// split, counter fetches interleaved with data fetches thrash each
	// other's open rows on every memory access — a pathology the counter
	// organizations in the literature avoid by giving counter storage its
	// own devices or region.
	PartitionAddr  uint64
	PartitionBanks int
}

// DefaultConfig models PC200-class SDRAM: 8 banks, 2 KB rows,
// 30 ns RCD/CAS/RP. A full 32-byte line read from an idle bank costs
// 30+30+4×5 = 80 ns; a row conflict costs 110 ns; a row hit 50 ns.
func DefaultConfig() Config {
	return Config{
		Banks:          8,
		RowBytes:       2048,
		BusBytes:       8,
		BusRatio:       5,
		TRCD:           30,
		TCAS:           30,
		TRP: 30,
		// No partition by default: the secure memory controller gives the
		// counter table its own channel (see secmem), so the data channel
		// keeps all its banks. Set PartitionAddr/PartitionBanks when
		// modeling a shared-channel organization instead.
	}
}

// Stats counts DRAM events.
type Stats struct {
	Reads        uint64
	Writes       uint64
	RowHits      uint64
	RowMisses    uint64
	RowConflicts uint64
	BusBusy      uint64 // total CPU cycles of data-bus occupancy
}

// AddTo registers the channel's counters into a metrics snapshot node.
func (s Stats) AddTo(n *stats.Snapshot) {
	n.Counter("reads", s.Reads)
	n.Counter("writes", s.Writes)
	n.Counter("row_hits", s.RowHits)
	n.Counter("row_misses", s.RowMisses)
	n.Counter("row_conflicts", s.RowConflicts)
	n.Counter("bus_busy_cycles", s.BusBusy)
}

type bank struct {
	openRow   uint64
	rowValid  bool
	busyUntil uint64
}

// DRAM is the channel model.
type DRAM struct {
	cfg     Config
	banks   []bank
	busFree uint64
	stats   Stats
	// rowShift caches log2(RowBytes) when RowBytes is a power of two
	// (rowPow2), replacing a 64-bit division on the address-mapping path
	// of every access with a shift.
	rowShift uint
	rowPow2  bool
}

// New creates a DRAM channel; it panics on invalid geometry.
func New(cfg Config) *DRAM {
	if cfg.Banks <= 0 || cfg.Banks&(cfg.Banks-1) != 0 {
		panic("dram: banks must be a positive power of two")
	}
	if cfg.RowBytes <= 0 || cfg.BusBytes <= 0 || cfg.BusRatio == 0 {
		panic("dram: invalid timing/geometry")
	}
	d := &DRAM{cfg: cfg, banks: make([]bank, cfg.Banks)}
	if rb := cfg.RowBytes; rb&(rb-1) == 0 {
		d.rowPow2 = true
		for s := rb; s > 1; s >>= 1 {
			d.rowShift++
		}
	}
	return d
}

// Config returns the channel configuration.
func (d *DRAM) Config() Config { return d.cfg }

// Stats returns a copy of the accumulated statistics.
func (d *DRAM) Stats() Stats { return d.stats }

func (d *DRAM) mapAddr(addr uint64) (bankIdx int, row uint64) {
	lo, n := 0, d.cfg.Banks
	if d.cfg.PartitionAddr != 0 && d.cfg.PartitionBanks > 0 && d.cfg.PartitionBanks < d.cfg.Banks {
		if addr >= d.cfg.PartitionAddr {
			addr -= d.cfg.PartitionAddr
			lo, n = d.cfg.Banks-d.cfg.PartitionBanks, d.cfg.PartitionBanks
		} else {
			n = d.cfg.Banks - d.cfg.PartitionBanks
		}
	}
	var rowOfBank uint64
	if d.rowPow2 {
		rowOfBank = addr >> d.rowShift
	} else {
		rowOfBank = addr / uint64(d.cfg.RowBytes)
	}
	// Bank bits are hashed with higher row bits (XOR interleave), as real
	// controllers do, so strided streams spread across banks.
	h := rowOfBank ^ rowOfBank>>3 ^ rowOfBank>>7
	if n&(n-1) == 0 {
		// Full bank set or power-of-two partition: mask and shift.
		return lo + int(h&uint64(n-1)), rowOfBank >> uint(bits.TrailingZeros(uint(n)))
	}
	return lo + int(h%uint64(n)), rowOfBank / uint64(n)
}

// Access performs a read or write of n bytes at addr, starting no earlier
// than cycle now, and returns the cycle at which the last byte has
// transferred. Writes occupy the bank and bus identically (the model does
// not distinguish write-recovery time).
func (d *DRAM) Access(now uint64, addr uint64, n int, write bool) uint64 {
	if n <= 0 {
		return now
	}
	if write {
		d.stats.Writes++
	} else {
		d.stats.Reads++
	}
	bi, row := d.mapAddr(addr)
	b := &d.banks[bi]

	start := now
	if b.busyUntil > start {
		start = b.busyUntil
	}

	var access uint64
	switch {
	case b.rowValid && b.openRow == row:
		d.stats.RowHits++
		access = d.cfg.TCAS
	case !b.rowValid:
		d.stats.RowMisses++
		access = d.cfg.TRCD + d.cfg.TCAS
	default:
		d.stats.RowConflicts++
		access = d.cfg.TRP + d.cfg.TRCD + d.cfg.TCAS
	}
	b.openRow, b.rowValid = row, true

	beats := uint64((n + d.cfg.BusBytes - 1) / d.cfg.BusBytes)
	xferStart := start + access
	if d.busFree > xferStart {
		xferStart = d.busFree
	}
	done := xferStart + beats*d.cfg.BusRatio
	d.busFree = done
	d.stats.BusBusy += beats * d.cfg.BusRatio
	b.busyUntil = done
	return done
}

// LineReadLatency returns the latency (not completion time) of reading n
// bytes from an idle, row-closed bank — a convenience for configuring
// models that need a representative memory latency.
func (d *DRAM) LineReadLatency(n int) uint64 {
	beats := uint64((n + d.cfg.BusBytes - 1) / d.cfg.BusBytes)
	return d.cfg.TRCD + d.cfg.TCAS + beats*d.cfg.BusRatio
}
