package dram

import "testing"

func TestRowMissLatency(t *testing.T) {
	d := New(DefaultConfig())
	done := d.Access(0, 0, 32, false)
	// idle bank: TRCD(30) + TCAS(30) + 4 beats × 5 = 80
	if done != 80 {
		t.Fatalf("done = %d, want 80", done)
	}
	if s := d.Stats(); s.RowMisses != 1 || s.Reads != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestRowHitLatency(t *testing.T) {
	d := New(DefaultConfig())
	d.Access(0, 0, 32, false)
	done := d.Access(1000, 64, 32, false) // same row, bank idle again
	if done != 1000+30+20 {
		t.Fatalf("row-hit done = %d, want 1050", done)
	}
	if d.Stats().RowHits != 1 {
		t.Fatalf("stats = %+v", d.Stats())
	}
}

func TestRowConflictLatency(t *testing.T) {
	cfg := DefaultConfig()
	d := New(cfg)
	// rowOfBank 9 hashes to bank 0 ((9 ^ 1) mod 8 = 0) like rowOfBank 0,
	// but is a different row: a genuine row conflict.
	conflict := uint64(9 * cfg.RowBytes)
	d.Access(0, 0, 32, false)
	done := d.Access(1000, conflict, 32, false) // same bank, different row
	if want := uint64(1000 + 30 + 30 + 30 + 20); done != want {
		t.Fatalf("conflict done = %d, want %d", done, want)
	}
	if d.Stats().RowConflicts != 1 {
		t.Fatalf("stats = %+v", d.Stats())
	}
}

func TestBankSerialization(t *testing.T) {
	d := New(DefaultConfig())
	first := d.Access(0, 0, 32, false)
	second := d.Access(0, uint64(9*d.Config().RowBytes), 32, false) // same hashed bank
	if second <= first {
		t.Fatalf("same-bank accesses not serialized: %d then %d", first, second)
	}
}

func TestDifferentBanksOverlap(t *testing.T) {
	d := New(DefaultConfig())
	a := d.Access(0, 0, 32, false)
	b := d.Access(0, uint64(d.Config().RowBytes), 32, false) // next bank
	// Bank access overlaps; only the 20-cycle bus transfer serializes.
	if b >= a+80 {
		t.Fatalf("different banks fully serialized: %d then %d", a, b)
	}
	if b <= a {
		t.Fatalf("bus not serialized: %d then %d", a, b)
	}
}

func TestBusContention(t *testing.T) {
	d := New(DefaultConfig())
	a := d.Access(0, 0, 32, false)
	b := d.Access(0, uint64(d.Config().RowBytes), 32, false)
	if b-a != 20 { // second transfer queues behind the first: 4 beats × 5
		t.Fatalf("bus gap = %d, want 20", b-a)
	}
}

func TestWriteCounted(t *testing.T) {
	d := New(DefaultConfig())
	d.Access(0, 0, 32, true)
	if s := d.Stats(); s.Writes != 1 || s.Reads != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestSmallAccess(t *testing.T) {
	d := New(DefaultConfig())
	done := d.Access(0, 8, 8, false) // one beat
	if done != 30+30+5 {
		t.Fatalf("8-byte read done = %d, want 65", done)
	}
}

func TestZeroLengthAccess(t *testing.T) {
	d := New(DefaultConfig())
	if done := d.Access(42, 0, 0, false); done != 42 {
		t.Fatalf("zero-length access done = %d, want 42", done)
	}
}

func TestLineReadLatency(t *testing.T) {
	d := New(DefaultConfig())
	if got := d.LineReadLatency(32); got != 80 {
		t.Fatalf("LineReadLatency(32) = %d, want 80", got)
	}
	if got := d.LineReadLatency(8); got != 65 {
		t.Fatalf("LineReadLatency(8) = %d, want 65", got)
	}
}

func TestBadConfigPanics(t *testing.T) {
	for _, cfg := range []Config{
		{Banks: 0, RowBytes: 1024, BusBytes: 8, BusRatio: 5},
		{Banks: 3, RowBytes: 1024, BusBytes: 8, BusRatio: 5},
		{Banks: 4, RowBytes: 0, BusBytes: 8, BusRatio: 5},
		{Banks: 4, RowBytes: 1024, BusBytes: 8, BusRatio: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v did not panic", cfg)
				}
			}()
			New(cfg)
		}()
	}
}

func TestSeqRegionSeparateBanks(t *testing.T) {
	// The secure memory controller places sequence numbers in a distant
	// region; verify that region maps to valid banks and accrues stats.
	d := New(DefaultConfig())
	d.Access(0, 1<<40, 8, false)
	if d.Stats().Reads != 1 {
		t.Fatal("high-address access not recorded")
	}
}

func TestBankPartition(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PartitionAddr = 1 << 40
	cfg.PartitionBanks = 2
	d := New(cfg)
	// Partitioned and unpartitioned regions never share a bank: repeated
	// accesses to one data row, interleaved with counter-region accesses,
	// must keep row-hitting (the counter traffic cannot close the row).
	for i := 0; i < 32; i++ {
		d.Access(uint64(i*1000), uint64(i%8)*8, 32, false)
		d.Access(uint64(i*1000+10), 1<<40+uint64(i)*4096, 8, false)
	}
	s := d.Stats()
	// The first data access opens the row; the other 31 must hit it.
	if s.RowHits < 31 {
		t.Fatalf("cross-partition thrash: only %d row hits (%+v)", s.RowHits, s)
	}
}
