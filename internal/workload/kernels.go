package workload

import (
	"fmt"

	"ctrpred/internal/mem"
	"ctrpred/internal/rng"
)

// Register conventions used by all kernels:
//
//	r1-r8   pointers and temporaries
//	r9      outer loop counter
//	r10     xorshift64 PRNG state (kernels needing randomness)
//	r11-r19 inner counters and scratch
//	r20+    accumulators
//
// All kernels halt; loop bounds derive from Scale.Instructions. Each
// builder also declares the AgeSpans of its write regions — the counter
// state a long fast-forward would have accumulated there (see AgeSpan).

// xorshift is the in-ISA PRNG step on r10, clobbering rT.
func xorshift(rT int) string {
	return fmt.Sprintf(`	slli r%[1]d, r10, 13
	xor  r10, r10, r%[1]d
	srli r%[1]d, r10, 7
	xor  r10, r10, r%[1]d
	slli r%[1]d, r10, 17
	xor  r10, r10, r%[1]d
`, rT)
}

// buildMcf models mcf's network-simplex arc traversal: pointer chasing
// through a shuffled linked list spanning a footprint far larger than the
// L2. Reads dominate; only a sparse minority of nodes (cost relabeling)
// carries update history, so most counters sit at their page roots — yet
// the seqnum *cache* thrashes, which is exactly the contrast in
// Figures 7/10.
func buildMcf(s Scale, img *mem.Memory, r *rng.Xoshiro256) (string, []AgeSpan) {
	nodes := s.Footprint / 32
	if nodes < 2 {
		nodes = 2
	}
	// Random Hamiltonian cycle over the nodes.
	perm := make([]int, nodes)
	for i := range perm {
		perm[i] = i
	}
	for i := nodes - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		perm[i], perm[j] = perm[j], perm[i]
	}
	addr := func(i int) uint64 { return DataBase + uint64(i)*32 }
	for i := 0; i < nodes; i++ {
		from, to := perm[i], perm[(i+1)%nodes]
		img.Store(addr(from), 8, addr(to))
		img.Store(addr(from)+8, 8, uint64(r.Intn(1000)))
	}
	n := iters(s, 6)
	src := fmt.Sprintf(`
	lui  r1, %d          # head node
	addi r9, r0, %d
loop:
	ld   r2, 0(r1)       # next
	ld   r3, 8(r1)       # cost
	add  r20, r20, r3
	add  r1, r2, r0
	addi r9, r9, -1
	bne  r9, r0, loop
	halt
`, DataBase>>12, n)
	ages := []AgeSpan{{
		Base: DataBase, Bytes: nodes * 32,
		MeanUpdates: 2, Spread: 2, ChunkLines: 128, Noise: 1, StaticFrac: 0.85,
	}}
	return src, ages
}

// buildSwim models swim's shallow-water stencils with the array rotation
// the real code performs (unew and u swap roles every timestep): each
// sweep reads one array and writes the other, then the pointers rotate.
// Both arrays therefore carry, and keep accumulating, nearly identical
// sweep-count histories — the global coherence stencil codes really show.
func buildSwim(s Scale, img *mem.Memory, r *rng.Xoshiro256) (string, []AgeSpan) {
	elems := s.Footprint / 2 / 8 // two arrays
	fillRandom(img, DataBase, elems, r)
	dstBase := uint64(DataBase) + uint64(elems)*8
	dstBase = (dstBase + 4095) &^ 4095
	perSweep := elems * 8
	sweeps := iters(s, perSweep) // 8 instrs/elem
	if sweeps < 2 {
		sweeps = 2
	}
	src := fmt.Sprintf(`
	addi r9, r0, %d       # sweeps
	lui  r15, %d          # array X
	lui  r16, %d          # array Y
sweep:
	add  r1, r15, r0      # src = X
	add  r2, r16, r0      # dst = Y
	addi r11, r0, %d      # elements-1 (avoid reading past the end)
inner:
	ld   r3, 0(r1)
	ld   r4, 8(r1)
	fadd r5, r3, r4
	sd   r5, 0(r2)
	addi r1, r1, 8
	addi r2, r2, 8
	addi r11, r11, -1
	bne  r11, r0, inner
	add  r17, r15, r0     # rotate arrays
	add  r15, r16, r0
	add  r16, r17, r0
	addi r9, r9, -1
	bne  r9, r0, sweep
	halt
`, sweeps, DataBase>>12, dstBase>>12, elems-1)
	ages := []AgeSpan{
		{Base: DataBase, Bytes: elems * 8, MeanUpdates: 4, Spread: 1, ChunkLines: 1 << 30, Noise: 1},
		{Base: dstBase, Bytes: elems * 8, MeanUpdates: 4, Spread: 1, ChunkLines: 1 << 30, Noise: 1},
	}
	return src, ages
}

// buildMgrid models mgrid's multigrid relaxation: in-place sweeps over
// one array at several strides (fine and coarse grids). Lines accumulate
// a few updates per pass at each level; coarse-grid lines age faster.
func buildMgrid(s Scale, img *mem.Memory, r *rng.Xoshiro256) (string, []AgeSpan) {
	elems := pow2AtMost(s.Footprint / 8)
	fillRandom(img, DataBase, elems, r)
	perPass := elems*9 + elems/8*9 + elems/64*9
	passes := iters(s, perPass)
	if passes < 1 {
		passes = 1
	}
	level := func(stride, count int) string {
		return fmt.Sprintf(`
	lui  r1, %d
	addi r11, r0, %d
lvl%d:
	ld   r3, 0(r1)
	ld   r4, %d(r1)
	fadd r5, r3, r4
	sd   r5, 0(r1)
	addi r1, r1, %d
	addi r11, r11, -1
	bne  r11, r0, lvl%d
`, DataBase>>12, count, stride, stride, stride, stride)
	}
	src := fmt.Sprintf(`
	addi r9, r0, %d
pass:%s%s%s	addi r9, r9, -1
	bne  r9, r0, pass
	halt
`, passes, level(8, elems-1), level(64, elems/8-1), level(512, elems/64-1))
	ages := []AgeSpan{{
		Base: DataBase, Bytes: elems * 8,
		MeanUpdates: 4, Spread: 1, ChunkLines: 1 << 30, Noise: 1,
	}}
	return src, ages
}

// buildApplu models applu's banded SSOR sweeps: an in-place 3-point
// update, so each line is both read and rewritten once per sweep with
// dependences between neighbors.
func buildApplu(s Scale, img *mem.Memory, r *rng.Xoshiro256) (string, []AgeSpan) {
	elems := s.Footprint / 8
	fillRandom(img, DataBase, elems, r)
	sweeps := iters(s, (elems-2)*10)
	if sweeps < 1 {
		sweeps = 1
	}
	src := fmt.Sprintf(`
	addi r9, r0, %d
sweep:
	lui  r1, %d
	addi r1, r1, 8        # start at element 1
	addi r11, r0, %d
inner:
	ld   r3, -8(r1)
	ld   r4, 0(r1)
	ld   r5, 8(r1)
	fadd r6, r3, r5
	fadd r6, r6, r4
	sd   r6, 0(r1)
	addi r1, r1, 8
	addi r11, r11, -1
	bne  r11, r0, inner
	addi r9, r9, -1
	bne  r9, r0, sweep
	halt
`, sweeps, DataBase>>12, elems-2)
	ages := []AgeSpan{{
		Base: DataBase, Bytes: elems * 8,
		MeanUpdates: 3, Spread: 1, ChunkLines: 1 << 30, Noise: 1, StaticFrac: 0.1,
	}}
	return src, ages
}

// buildArt models art's F1 simulation: repeated full scans of a weight
// array (reads) followed by updates to a small, hot activation region
// whose lines are rewritten every pass — a sharply bimodal counter
// distribution (static weights, deeply-aged activations).
func buildArt(s Scale, img *mem.Memory, r *rng.Xoshiro256) (string, []AgeSpan) {
	weights := s.Footprint / 8
	fillRandom(img, DataBase, weights, r)
	actBase := (uint64(DataBase) + uint64(weights)*8 + 4095) &^ 4095
	actElems := 512 // 4 KB hot region
	perPass := weights*6 + actElems*7
	passes := iters(s, perPass)
	if passes < 2 {
		passes = 2
	}
	src := fmt.Sprintf(`
	addi r9, r0, %d
pass:
	lui  r1, %d
	addi r11, r0, %d
scan:
	ld   r4, 0(r1)
	fmul r5, r4, r20
	fadd r21, r21, r5
	addi r1, r1, 8
	addi r11, r11, -1
	bne  r11, r0, scan
	lui  r2, %d
	addi r11, r0, %d
act:
	ld   r4, 0(r2)
	fadd r4, r4, r21
	sd   r4, 0(r2)
	addi r2, r2, 8
	addi r11, r11, -1
	bne  r11, r0, act
	addi r9, r9, -1
	bne  r9, r0, pass
	halt
`, passes, DataBase>>12, weights, actBase>>12, actElems)
	ages := []AgeSpan{{
		Base: actBase, Bytes: actElems * 8,
		MeanUpdates: 8, Spread: 1, ChunkLines: 1 << 30, Noise: 1,
	}}
	return src, ages
}

// buildBzip2 models bzip2's block sorting: the sorter works one block at
// a time, performing many random in-place swaps inside the current block
// before moving on. Block lines are rewritten in bursts, and the whole
// buffer arrives deeply and unevenly aged from earlier blocks — the
// adversarial case motivating adaptive resets and the optimized
// predictors.
func buildBzip2(s Scale, img *mem.Memory, r *rng.Xoshiro256) (string, []AgeSpan) {
	slots := pow2AtMost(s.Footprint / 8)
	fillRandom(img, DataBase, slots, r)
	blockSlots := 2048 // 16 KB working block
	if blockSlots > slots {
		blockSlots = slots
	}
	const swapsPerBlock = 1500
	blocks := iters(s, 19*swapsPerBlock)
	if blocks < 1 {
		blocks = 1
	}
	src := fmt.Sprintf(`
	lui  r1, %d           # buffer base
	addi r10, r0, %d      # rng seed
	addi r9, r0, %d       # blocks to sort
	addi r13, r0, 0       # current block base offset (slots)
block:
	addi r11, r0, %d      # swaps within this block
swap:
%s	andi r3, r10, %d
	add  r3, r3, r13
	slli r3, r3, 3
	add  r4, r1, r3
	srli r5, r10, 24
	andi r5, r5, %d
	slli r5, r5, 3
	add  r6, r1, r5
	ld   r7, 0(r4)
	ld   r8, 0(r6)
	sd   r8, 0(r4)
	sd   r7, 0(r6)
	addi r11, r11, -1
	bne  r11, r0, swap
	addi r13, r13, %d     # advance to the next block
	andi r13, r13, %d
	addi r9, r9, -1
	bne  r9, r0, block
	halt
`, DataBase>>12, 88172645463325252%1000000007, blocks, swapsPerBlock,
		xorshift(2), blockSlots-1, slots-1, blockSlots, slots-1)
	ages := []AgeSpan{{
		Base: DataBase, Bytes: slots * 8,
		MeanUpdates: 5, Spread: 2, ChunkLines: 512, Noise: 1, StaticFrac: 0.05,
	}}
	return src, ages
}

// buildGzip models gzip's deflate pipeline as it really phases: read a
// batch of input, then emit a batch into the sliding window, repeating.
// Misses therefore arrive in same-region runs — the temporal coherence
// the Latest Offset Register exploits — and the window arrives aged from
// earlier files while the input stream stays static.
func buildGzip(s Scale, img *mem.Memory, r *rng.Xoshiro256) (string, []AgeSpan) {
	inElems := s.Footprint / 8
	fillRandom(img, DataBase, inElems, r)
	winBase := (uint64(DataBase) + uint64(inElems)*8 + 4095) &^ 4095
	// The window is a quarter of the footprint (up to 256 KB): large
	// enough that window lines cycle through the L2 between rewrites.
	winBytes := 256 << 10
	if s.Footprint/4 < winBytes {
		winBytes = pow2AtMost(s.Footprint / 4)
	}
	winMask := winBytes - 1
	inMask := pow2AtMost(inElems)*8 - 1
	const batch = 1024 // 8 KB per phase
	batches := iters(s, batch*5+batch*6)
	if batches < 1 {
		batches = 1
	}
	src := fmt.Sprintf(`
	lui  r1, %d           # input
	lui  r2, %d           # window
	addi r3, r0, 0        # window offset
	addi r12, r0, 0       # input offset
	addi r9, r0, %d       # batches
phase:
	addi r11, r0, %d      # read batch
rd:
	add  r4, r1, r12
	ld   r5, 0(r4)
	add  r20, r20, r5
	addi r12, r12, 8
	andi r12, r12, %d
	addi r11, r11, -1
	bne  r11, r0, rd
	addi r11, r0, %d      # emit batch
wr:
	add  r7, r2, r3
	xor  r6, r20, r3
	sd   r6, 0(r7)
	addi r3, r3, 8
	andi r3, r3, %d
	addi r11, r11, -1
	bne  r11, r0, wr
	addi r9, r9, -1
	bne  r9, r0, phase
	halt
`, DataBase>>12, winBase>>12, batches, batch, inMask, batch, winMask)
	ages := []AgeSpan{{
		Base: winBase, Bytes: winBytes,
		MeanUpdates: 10, Spread: 2, ChunkLines: 1 << 30, Noise: 1,
	}}
	return src, ages
}

// buildGcc models gcc's irregular heap traffic with the pocket locality
// real compilers show: most references hit a small working pocket (the
// current function's IR) that drifts across a large hot region, with a
// minority scattering over a cold heap.
func buildGcc(s Scale, img *mem.Memory, r *rng.Xoshiro256) (string, []AgeSpan) {
	cold := pow2AtMost(s.Footprint / 8)
	fillRandom(img, DataBase, cold, r)
	hotBase := (uint64(DataBase) + uint64(cold)*8 + 4095) &^ 4095
	hotSlots := pow2AtMost(s.Footprint / 64) // hot region = footprint/8 bytes
	if hotSlots < 1024 {
		hotSlots = 1024
	}
	pocketSlots := 512 // 4 KB pocket
	const refsPerPocket = 400
	pockets := iters(s, refsPerPocket*21)
	if pockets < 1 {
		pockets = 1
	}
	src := fmt.Sprintf(`
	lui  r1, %d           # cold
	lui  r2, %d           # hot
	addi r10, r0, 424242
	addi r13, r0, 0       # pocket base offset (slots)
	addi r9, r0, %d       # pockets
pocket:
	addi r14, r0, %d      # refs in this pocket
ref:
%s	andi r3, r10, 7
	beq  r3, r0, coldref  # 1/8 of refs go cold
	srli r4, r10, 8
	andi r4, r4, %d
	add  r4, r4, r13
	slli r4, r4, 3
	add  r5, r2, r4
	ld   r6, 0(r5)
	addi r6, r6, 1
	sd   r6, 0(r5)
	beq  r0, r0, next
coldref:
	srli r4, r10, 8
	andi r4, r4, %d
	slli r4, r4, 3
	add  r5, r1, r4
	ld   r6, 0(r5)
	add  r20, r20, r6
next:
	addi r14, r14, -1
	bne  r14, r0, ref
	addi r13, r13, %d     # drift to the next pocket
	andi r13, r13, %d
	addi r9, r9, -1
	bne  r9, r0, pocket
	halt
`, DataBase>>12, hotBase>>12, pockets, refsPerPocket,
		xorshift(4), pocketSlots-1, cold-1, pocketSlots, hotSlots-1)
	ages := []AgeSpan{{
		Base: hotBase, Bytes: hotSlots * 8,
		MeanUpdates: 4, Spread: 2, ChunkLines: 128, Noise: 1, StaticFrac: 0.1,
	}}
	return src, ages
}

// buildParser models parser's dictionary walk: data-dependent bit-walks
// down an implicit tree stored in a moderate array, with occasional
// insertions (writes) along the path.
func buildParser(s Scale, img *mem.Memory, r *rng.Xoshiro256) (string, []AgeSpan) {
	slots := pow2AtMost(s.Footprint / 8)
	fillRandom(img, DataBase, slots, r)
	n := iters(s, 40)
	src := fmt.Sprintf(`
	lui  r1, %d
	addi r10, r0, 31337
	addi r9, r0, %d
loop:
%s	addi r4, r0, 1        # idx = 1
	addi r11, r0, 12      # depth
walk:
	slli r4, r4, 1
	andi r5, r10, 1
	add  r4, r4, r5
	srli r10, r10, 1
	andi r6, r4, %d
	slli r7, r6, 3
	add  r7, r1, r7
	ld   r8, 0(r7)
	add  r20, r20, r8
	addi r11, r11, -1
	bne  r11, r0, walk
	andi r5, r8, 15
	bne  r5, r0, skipins  # 1/16 walks insert
	sd   r20, 0(r7)
skipins:
	addi r9, r9, -1
	bne  r9, r0, loop
	halt
`, DataBase>>12, n, xorshift(3), slots-1)
	ages := []AgeSpan{{
		Base: DataBase, Bytes: slots * 8,
		MeanUpdates: 3, Spread: 3, ChunkLines: 128, Noise: 2, StaticFrac: 0.5,
	}}
	return src, ages
}

// buildTwolf models twolf's simulated-annealing placement with the
// neighborhood locality of real annealers: candidate cells are drawn from
// a window that drifts across the placement array, swapping when the
// "cost" improves. Rewrites scatter within the neighborhood while the
// neighborhood's update history stays coherent.
func buildTwolf(s Scale, img *mem.Memory, r *rng.Xoshiro256) (string, []AgeSpan) {
	slots := pow2AtMost(minInt(s.Footprint, 512<<10) / 8)
	fillRandom(img, DataBase, slots, r)
	hoodSlots := 2048 // 16 KB neighborhood
	if hoodSlots > slots {
		hoodSlots = slots
	}
	const movesPerHood = 600
	hoods := iters(s, movesPerHood*24)
	if hoods < 1 {
		hoods = 1
	}
	src := fmt.Sprintf(`
	lui  r1, %d
	addi r10, r0, 991
	addi r13, r0, 0       # neighborhood base (slots)
	addi r9, r0, %d       # neighborhoods
hood:
	addi r14, r0, %d      # moves in this neighborhood
move:
%s	andi r3, r10, %d
	add  r3, r3, r13
	slli r3, r3, 3
	add  r4, r1, r3
	srli r5, r10, 16
	andi r5, r5, %d
	add  r5, r5, r13
	slli r5, r5, 3
	add  r6, r1, r5
	ld   r7, 0(r4)
	ld   r8, 0(r6)
	sub  r11, r7, r8
	slt  r12, r11, r0
	beq  r12, r0, skip    # swap only when "cost" improves
	sd   r8, 0(r4)
	sd   r7, 0(r6)
skip:
	addi r14, r14, -1
	bne  r14, r0, move
	addi r13, r13, %d     # drift the neighborhood
	andi r13, r13, %d
	addi r9, r9, -1
	bne  r9, r0, hood
	halt
`, DataBase>>12, hoods, movesPerHood, xorshift(3),
		hoodSlots-1, hoodSlots-1, hoodSlots/2, slots-1)
	ages := []AgeSpan{{
		Base: DataBase, Bytes: slots * 8,
		MeanUpdates: 4, Spread: 2, ChunkLines: 256, Noise: 1, StaticFrac: 0.1,
	}}
	return src, ages
}

// buildVortex models vortex's object database: hashed bucket lookups
// followed by short chain walks, over a large read-mostly heap with rare
// updates to object headers.
func buildVortex(s Scale, img *mem.Memory, r *rng.Xoshiro256) (string, []AgeSpan) {
	// Objects: 32 B each; buckets hold object addresses; each object's
	// first word points to the next object in its chain (or 0).
	objects := s.Footprint / 32
	if objects < 16 {
		objects = 16
	}
	buckets := pow2AtMost(objects / 4)
	bucketBase := uint64(DataBase)
	objBase := (bucketBase + uint64(buckets)*8 + 4095) &^ 4095
	objAddr := func(i int) uint64 { return objBase + uint64(i)*32 }
	heads := make([]uint64, buckets)
	for i := 0; i < objects; i++ {
		b := r.Intn(buckets)
		img.Store(objAddr(i), 8, heads[b])
		img.Store(objAddr(i)+8, 8, uint64(i))
		heads[b] = objAddr(i)
	}
	for b, h := range heads {
		img.Store(bucketBase+uint64(b)*8, 8, h)
	}
	n := iters(s, 30)
	src := fmt.Sprintf(`
	lui  r1, %d           # buckets
	addi r10, r0, 777777
	addi r9, r0, %d
loop:
%s	andi r3, r10, %d
	slli r3, r3, 3
	add  r4, r1, r3
	ld   r5, 0(r4)        # chain head
	addi r11, r0, 3       # walk up to 3 links
walk:
	beq  r5, r0, done
	ld   r6, 8(r5)
	add  r20, r20, r6
	ld   r5, 0(r5)
	addi r11, r11, -1
	bne  r11, r0, walk
done:
	addi r9, r9, -1
	bne  r9, r0, loop
	halt
`, DataBase>>12, n, xorshift(3), buckets-1)
	ages := []AgeSpan{{
		Base: objBase, Bytes: objects * 32,
		MeanUpdates: 2, Spread: 2, ChunkLines: 128, Noise: 1, StaticFrac: 0.8,
	}}
	return src, ages
}

// buildVpr models vpr's routing: a random walk over a grid graph with
// per-node adjacency stored inline, updating a congestion weight on a
// fraction of visited nodes.
func buildVpr(s Scale, img *mem.Memory, r *rng.Xoshiro256) (string, []AgeSpan) {
	nodes := pow2AtMost(s.Footprint / 32)
	addr := func(i int) uint64 { return DataBase + uint64(i)*32 }
	for i := 0; i < nodes; i++ {
		for k := 0; k < 3; k++ {
			img.Store(addr(i)+uint64(k)*8, 8, addr(r.Intn(nodes)))
		}
		img.Store(addr(i)+24, 8, uint64(r.Intn(100)))
	}
	n := iters(s, 13)
	src := fmt.Sprintf(`
	lui  r1, %d           # current node
	addi r10, r0, 5150
	addi r9, r0, %d
loop:
%s	andi r3, r10, 1
	slli r3, r3, 3        # choose neighbor slot 0 or 1
	add  r4, r1, r3
	ld   r1, 0(r4)        # follow edge
	ld   r5, 24(r1)
	andi r6, r10, 7
	bne  r6, r0, skip     # 1/8 visits update congestion
	addi r5, r5, 1
	sd   r5, 24(r1)
skip:
	addi r9, r9, -1
	bne  r9, r0, loop
	halt
`, DataBase>>12, n, xorshift(2))
	ages := []AgeSpan{{
		Base: DataBase, Bytes: nodes * 32,
		MeanUpdates: 5, Spread: 2, ChunkLines: 256, Noise: 1, StaticFrac: 0.4,
	}}
	return src, ages
}

// buildAmmp models ammp's non-bonded force loop: for each atom, gather a
// few neighbors through an index list, accumulate, and write the atom's
// force once — many reads per write, mostly-static data with a lightly
// aged force array.
func buildAmmp(s Scale, img *mem.Memory, r *rng.Xoshiro256) (string, []AgeSpan) {
	atoms := pow2AtMost(s.Footprint / 48) // pos 8B + 4 nbr idx + force 8B
	posBase := uint64(DataBase)
	nbrBase := (posBase + uint64(atoms)*8 + 4095) &^ 4095
	frcBase := (nbrBase + uint64(atoms)*32 + 4095) &^ 4095
	fillRandom(img, posBase, atoms, r)
	for i := 0; i < atoms; i++ {
		for k := 0; k < 4; k++ {
			img.Store(nbrBase+uint64(i*4+k)*8, 8, posBase+uint64(r.Intn(atoms))*8)
		}
	}
	perAtom := 4*3 + 6
	passes := iters(s, atoms*perAtom)
	if passes < 1 {
		passes = 1
	}
	src := fmt.Sprintf(`
	addi r9, r0, %d
pass:
	lui  r1, %d           # nbr list cursor
	lui  r2, %d           # force cursor
	addi r11, r0, %d      # atoms
atom:
	addi r20, r0, 0
	addi r12, r0, 4
nbr:
	ld   r3, 0(r1)        # neighbor pos address
	ld   r4, 0(r3)        # gather
	fadd r20, r20, r4
	addi r1, r1, 8
	addi r12, r12, -1
	bne  r12, r0, nbr
	sd   r20, 0(r2)
	addi r2, r2, 8
	addi r11, r11, -1
	bne  r11, r0, atom
	addi r9, r9, -1
	bne  r9, r0, pass
	halt
`, passes, nbrBase>>12, frcBase>>12, atoms)
	ages := []AgeSpan{{
		Base: frcBase, Bytes: atoms * 8,
		MeanUpdates: 2, Spread: 2, ChunkLines: 128, Noise: 1, StaticFrac: 0.3,
	}}
	return src, ages
}

// buildWupwise models wupwise's dense linear algebra: unrolled streaming
// multiply-accumulate over two source arrays into a destination, with the
// output fed back as an input on the next pass (as iterative solvers do),
// so all three arrays accumulate coherent update histories.
func buildWupwise(s Scale, img *mem.Memory, r *rng.Xoshiro256) (string, []AgeSpan) {
	elems := s.Footprint / 3 / 8 &^ 3
	if elems < 8 {
		elems = 8
	}
	aBase := uint64(DataBase)
	bBase := (aBase + uint64(elems)*8 + 4095) &^ 4095
	cBase := (bBase + uint64(elems)*8 + 4095) &^ 4095
	fillRandom(img, aBase, elems, r)
	fillRandom(img, bBase, elems, r)
	perPass := elems / 2 * 13
	passes := iters(s, perPass)
	if passes < 1 {
		passes = 1
	}
	src := fmt.Sprintf(`
	addi r9, r0, %d
	lui  r15, %d          # A
	lui  r16, %d          # B
	lui  r17, %d          # C
pass:
	add  r1, r15, r0
	add  r2, r16, r0
	add  r3, r17, r0
	addi r11, r0, %d      # elems/2 (unroll 2)
inner:
	ld   r4, 0(r1)
	ld   r5, 0(r2)
	fmul r6, r4, r5
	ld   r7, 8(r1)
	ld   r8, 8(r2)
	fmul r12, r7, r8
	fadd r6, r6, r12
	sd   r6, 0(r3)
	sd   r6, 8(r3)
	addi r1, r1, 16
	addi r2, r2, 16
	addi r3, r3, 16
	addi r11, r11, -1
	bne  r11, r0, inner
	add  r18, r15, r0     # rotate C into the inputs
	add  r15, r17, r0
	add  r17, r16, r0
	add  r16, r18, r0
	addi r9, r9, -1
	bne  r9, r0, pass
	halt
`, passes, aBase>>12, bBase>>12, cBase>>12, elems/2)
	ages := []AgeSpan{
		{Base: aBase, Bytes: elems * 8, MeanUpdates: 3, Spread: 1, ChunkLines: 1 << 30, Noise: 1},
		{Base: bBase, Bytes: elems * 8, MeanUpdates: 3, Spread: 1, ChunkLines: 1 << 30, Noise: 1},
		{Base: cBase, Bytes: elems * 8, MeanUpdates: 4, Spread: 1, ChunkLines: 1 << 30, Noise: 1},
	}
	return src, ages
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
