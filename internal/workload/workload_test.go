package workload

import (
	"testing"

	"ctrpred/internal/isa"
	"ctrpred/internal/mem"
)

func TestNamesSortedAndComplete(t *testing.T) {
	names := Names()
	if len(names) != 14 {
		t.Fatalf("got %d benchmarks, want 14", len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("names not sorted: %v", names)
		}
	}
	for _, n := range names {
		if _, ok := Lookup(n); !ok {
			t.Fatalf("Lookup(%q) failed", n)
		}
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, ok := Lookup("nonesuch"); ok {
		t.Fatal("Lookup of unknown benchmark succeeded")
	}
	if _, err := Build("nonesuch", TestScale(), mem.New(), 1); err == nil {
		t.Fatal("Build of unknown benchmark succeeded")
	}
}

func TestBuildRejectsDegenerateScale(t *testing.T) {
	if _, err := Build("mcf", Scale{Footprint: 100, Instructions: 10}, mem.New(), 1); err == nil {
		t.Fatal("degenerate footprint accepted")
	}
	if _, err := Build("mcf", Scale{Footprint: 64 << 10}, mem.New(), 1); err == nil {
		t.Fatal("zero instruction budget accepted")
	}
}

func TestAllKernelsAssemble(t *testing.T) {
	for _, name := range Names() {
		img := mem.New()
		wl, err := Build(name, TestScale(), img, 42)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		prog := wl.Prog
		if len(prog.Instrs) < 5 {
			t.Fatalf("%s: implausibly small program (%d instrs)", name, len(prog.Instrs))
		}
		// The code image must be loaded into memory for encrypted I-fetch.
		buf := make([]byte, isa.InstrBytes)
		img.ReadBytes(prog.Base, buf)
		if isa.Decode(buf) != prog.Instrs[0] {
			t.Fatalf("%s: code image not loaded", name)
		}
	}
}

func TestDeterministicImages(t *testing.T) {
	for _, name := range []string{"mcf", "vortex", "bzip2"} {
		a, b := mem.New(), mem.New()
		pa := MustBuild(name, TestScale(), a, 7).Prog
		pb := MustBuild(name, TestScale(), b, 7).Prog
		if len(pa.Instrs) != len(pb.Instrs) {
			t.Fatalf("%s: nondeterministic program size", name)
		}
		for i := range pa.Instrs {
			if pa.Instrs[i] != pb.Instrs[i] {
				t.Fatalf("%s: instruction %d differs", name, i)
			}
		}
		got := make([]byte, 4096)
		want := make([]byte, 4096)
		a.ReadBytes(DataBase, want)
		b.ReadBytes(DataBase, got)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s: data image differs at byte %d", name, i)
			}
		}
	}
}

func TestDifferentSeedsDifferentImages(t *testing.T) {
	a, b := mem.New(), mem.New()
	MustBuild("mcf", TestScale(), a, 1)
	MustBuild("mcf", TestScale(), b, 2)
	bufA := make([]byte, 1024)
	bufB := make([]byte, 1024)
	a.ReadBytes(DataBase, bufA)
	b.ReadBytes(DataBase, bufB)
	same := 0
	for i := range bufA {
		if bufA[i] == bufB[i] {
			same++
		}
	}
	if same == len(bufA) {
		t.Fatal("different seeds produced identical images")
	}
}

func TestMcfImageIsCycle(t *testing.T) {
	img := mem.New()
	MustBuild("mcf", TestScale(), img, 3)
	nodes := TestScale().Footprint / 32
	// Follow next pointers: must visit every node exactly once and return.
	cur := uint64(DataBase)
	seen := make(map[uint64]bool, nodes)
	for i := 0; i < nodes; i++ {
		if seen[cur] {
			t.Fatalf("cycle shorter than %d nodes (revisit at step %d)", nodes, i)
		}
		seen[cur] = true
		cur = img.Load(cur, 8)
		if cur < DataBase || cur >= DataBase+uint64(nodes*32) || cur%32 != 0 {
			t.Fatalf("next pointer %#x out of arena", cur)
		}
	}
	if cur != DataBase {
		t.Fatal("pointer chain does not close into a cycle")
	}
}

func TestVortexChainsWellFormed(t *testing.T) {
	img := mem.New()
	MustBuild("vortex", TestScale(), img, 4)
	// Every bucket head is either 0 or points into the object arena, and
	// chains terminate.
	objects := TestScale().Footprint / 32
	buckets := pow2AtMost(objects / 4)
	for b := 0; b < buckets; b++ {
		p := img.Load(DataBase+uint64(b)*8, 8)
		steps := 0
		for p != 0 {
			if steps++; steps > objects {
				t.Fatalf("bucket %d chain does not terminate", b)
			}
			p = img.Load(p, 8)
		}
	}
}

func TestSpecFlagsPlausible(t *testing.T) {
	memBound, writeHeavy := 0, 0
	for _, n := range Names() {
		s, _ := Lookup(n)
		if s.MemoryBound {
			memBound++
		}
		if s.WriteHeavy {
			writeHeavy++
		}
		if s.Description == "" {
			t.Errorf("%s: empty description", n)
		}
	}
	if memBound < 8 {
		t.Errorf("only %d memory-bound benchmarks", memBound)
	}
	if writeHeavy < 5 {
		t.Errorf("only %d write-heavy benchmarks", writeHeavy)
	}
}

func TestPow2AtMost(t *testing.T) {
	cases := map[int]int{1: 1, 2: 2, 3: 2, 4: 4, 1000: 512, 1024: 1024}
	for in, want := range cases {
		if got := pow2AtMost(in); got != want {
			t.Errorf("pow2AtMost(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestItersFloor(t *testing.T) {
	if got := iters(Scale{Instructions: 10}, 1000); got != 1 {
		t.Fatalf("iters floor = %d", got)
	}
	if got := iters(Scale{Instructions: 1000}, 10); got != 100 {
		t.Fatalf("iters = %d", got)
	}
}
