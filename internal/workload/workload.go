// Package workload provides the benchmark programs the experiments run:
// fourteen kernels, written in the simulator's ISA, that stand in for the
// SPEC2000 subset the paper evaluates (the programs with high L2 miss
// rates — Section 5.1). Each kernel reproduces the *memory behaviour* that
// matters to sequence-number prediction: working-set size relative to the
// L2, strided streaming vs. pointer chasing, read/write mix, and — most
// importantly — how often individual cache lines are rewritten, which is
// what drives counters away from their page roots.
//
// Builders emit both the program text (assembled on the spot) and the
// initial data image (pointer graphs, neighbor lists, hash chains), all
// derived deterministically from a seed.
package workload

import (
	"errors"
	"fmt"
	"sort"

	"ctrpred/internal/isa"
	"ctrpred/internal/mem"
	"ctrpred/internal/rng"
)

// ErrUnknownBenchmark reports a benchmark name outside the kernel set;
// match it with errors.Is after Build or sim.Run.
var ErrUnknownBenchmark = errors.New("unknown benchmark")

// CodeBase is where kernel code is loaded.
const CodeBase = 0x10000

// DataBase is where kernel data images start (4 KB-page aligned, well
// clear of the code).
const DataBase = 0x100000

// Scale controls how big and how long a kernel runs.
type Scale struct {
	// Footprint is the target main-data working set in bytes.
	Footprint int
	// Instructions is the approximate dynamic instruction budget the
	// kernel's loop bounds are derived from.
	Instructions uint64
}

// DefaultScale exercises working sets around and beyond the 256 KB L2 —
// scaled-down analogues of the paper's memory-bound SimPoints.
func DefaultScale() Scale {
	return Scale{Footprint: 2 << 20, Instructions: 2_000_000}
}

// TestScale is small enough for unit tests.
func TestScale() Scale {
	return Scale{Footprint: 64 << 10, Instructions: 50_000}
}

// AgeSpan declares a region whose counters carry pre-accumulated update
// history when the measured window begins. The paper fast-forwards at
// least 4 billion instructions before each SimPoint, "updating the
// profiled memory status" — i.e., counters arrive at the measurement
// window already far from their roots wherever the program has been
// writing. Executing billions of instructions is out of scope at library
// scale, so each kernel declares the counter state its fast-forward would
// have produced: its write regions, the mean accumulated update count,
// and the spatial coherence of that count (neighboring lines of a working
// region age together — the locality context-based prediction exploits).
type AgeSpan struct {
	Base  uint64
	Bytes int
	// MeanUpdates is the central counter offset of aged chunks. Update
	// counts accumulate over many passes, so they concentrate around the
	// mean (binomial-like) rather than spreading geometrically — the
	// temporal coherence context-based prediction exploits.
	MeanUpdates float64
	// Spread is the maximum ± deviation of a chunk's base offset from
	// MeanUpdates.
	Spread int
	// ChunkLines is the coherence granularity: lines in a chunk share a
	// base offset.
	ChunkLines int
	// Noise is the maximum per-line deviation added to the chunk base.
	Noise int
	// StaticFrac is the fraction of chunks left unaged (offset 0).
	StaticFrac float64
}

// Workload is a built benchmark: the program, plus the counter-aging
// profile of its write regions.
type Workload struct {
	Prog *isa.Program
	Ages []AgeSpan
}

// Spec describes one benchmark.
type Spec struct {
	Name        string
	Description string
	// MemoryBound marks the kernels the paper's IPC discussion singles
	// out as memory-bound.
	MemoryBound bool
	// WriteHeavy marks kernels whose lines are updated many times
	// (exercising adaptive resets and the optimized predictors).
	WriteHeavy bool
	build      func(s Scale, img *mem.Memory, r *rng.Xoshiro256) (string, []AgeSpan)
}

var registry = []Spec{
	{Name: "ammp", Description: "molecular dynamics: neighbor-list gather, write-once forces", MemoryBound: true, build: buildAmmp},
	{Name: "applu", Description: "banded solver: in-place 3-point sweeps", MemoryBound: true, WriteHeavy: true, build: buildApplu},
	{Name: "art", Description: "neural net: repeated weight scans, small hot activation region", MemoryBound: true, WriteHeavy: true, build: buildArt},
	{Name: "bzip2", Description: "block sort: random in-place swaps over a large buffer", MemoryBound: true, WriteHeavy: true, build: buildBzip2},
	{Name: "gcc", Description: "compiler: scattered reads/writes, hot/cold split", build: buildGcc},
	{Name: "gzip", Description: "compression: streaming input, heavily rewritten window", WriteHeavy: true, build: buildGzip},
	{Name: "mcf", Description: "network simplex: pointer chasing over a huge arena", MemoryBound: true, build: buildMcf},
	{Name: "mgrid", Description: "multigrid: sweeps at multiple strides", MemoryBound: true, WriteHeavy: true, build: buildMgrid},
	{Name: "parser", Description: "dictionary walk with occasional insertions", build: buildParser},
	{Name: "swim", Description: "shallow water: streaming stencil, sequential writes", MemoryBound: true, WriteHeavy: true, build: buildSwim},
	{Name: "twolf", Description: "placement: random element swaps in a moderate array", MemoryBound: true, WriteHeavy: true, build: buildTwolf},
	{Name: "vortex", Description: "OO database: hash-bucket chain lookups", MemoryBound: true, build: buildVortex},
	{Name: "vpr", Description: "routing: random graph neighbor walk with weight updates", MemoryBound: true, build: buildVpr},
	{Name: "wupwise", Description: "quantum chromodynamics: streaming BLAS-like FP", build: buildWupwise},
}

// Names returns all benchmark names, sorted.
func Names() []string {
	names := make([]string, len(registry))
	for i, s := range registry {
		names[i] = s.Name
	}
	sort.Strings(names)
	return names
}

// Lookup returns the spec for name.
func Lookup(name string) (Spec, bool) {
	for _, s := range registry {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// Build assembles the named benchmark at the given scale, writing its
// data image (and code image) into img. The returned workload carries the
// program (ready to run on a cpu.Core) and the counter-aging spans.
func Build(name string, s Scale, img *mem.Memory, seed uint64) (*Workload, error) {
	spec, ok := Lookup(name)
	if !ok {
		return nil, fmt.Errorf("workload: %w %q (have %v)", ErrUnknownBenchmark, name, Names())
	}
	if s.Footprint < 4096 || s.Instructions == 0 {
		return nil, fmt.Errorf("workload: degenerate scale %+v", s)
	}
	r := rng.New(seed ^ hashName(name))
	src, ages := spec.build(s, img, r)
	prog, err := isa.Assemble(src, CodeBase)
	if err != nil {
		return nil, fmt.Errorf("workload %s: internal assembly error: %w", name, err)
	}
	img.WriteBytes(prog.Base, prog.Bytes())
	return &Workload{Prog: prog, Ages: ages}, nil
}

// MustBuild is Build for known-good names and scales.
func MustBuild(name string, s Scale, img *mem.Memory, seed uint64) *Workload {
	w, err := Build(name, s, img, seed)
	if err != nil {
		panic(err)
	}
	return w
}

// SampleAges walks a span's chunks and lines, calling fn with each aged
// line's address and counter offset. Offsets are drawn deterministically
// from r: chunk bases are geometric with the configured mean, per-line
// noise is uniform.
func (a AgeSpan) SampleAges(r *rng.Xoshiro256, fn func(lineAddr uint64, offset uint64)) {
	if a.Bytes <= 0 {
		return
	}
	chunk := a.ChunkLines
	if chunk <= 0 {
		chunk = 1
	}
	lines := a.Bytes / 32
	for l := 0; l < lines; l += chunk {
		if a.StaticFrac > 0 && r.Bool(a.StaticFrac) {
			continue
		}
		base := int(a.MeanUpdates)
		if a.Spread > 0 {
			base += r.Intn(2*a.Spread+1) - a.Spread
		}
		if base < 0 {
			base = 0
		}
		for i := l; i < l+chunk && i < lines; i++ {
			off := uint64(base)
			if a.Noise > 0 {
				off += uint64(r.Intn(a.Noise + 1))
			}
			if off > 0 {
				fn(a.Base+uint64(i)*32, off)
			}
		}
	}
}

func hashName(name string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return h
}

// iters derives a loop count from the instruction budget and the
// instructions executed per iteration, with a floor of 1.
func iters(s Scale, perIter int) int {
	n := int(s.Instructions) / perIter
	if n < 1 {
		n = 1
	}
	return n
}

// pow2AtMost returns the largest power of two ≤ n (n ≥ 1).
func pow2AtMost(n int) int {
	p := 1
	for p*2 <= n {
		p *= 2
	}
	return p
}

// fillRandom writes n 8-byte random words starting at base.
func fillRandom(img *mem.Memory, base uint64, n int, r *rng.Xoshiro256) {
	for i := 0; i < n; i++ {
		img.Store(base+uint64(i)*8, 8, r.Uint64())
	}
}
