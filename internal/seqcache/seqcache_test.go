package seqcache

import "testing"

func TestMissThenHit(t *testing.T) {
	c := New(4 << 10)
	if c.Access(0x1000) {
		t.Fatal("cold access hit")
	}
	if !c.Access(0x1000) {
		t.Fatal("second access missed")
	}
}

func TestSpatialGrouping(t *testing.T) {
	// Four adjacent 32-byte blocks share one 32-byte counter line.
	c := New(4 << 10)
	c.Access(0x0)
	for _, la := range []uint64{0x20, 0x40, 0x60} {
		if !c.Access(la) {
			t.Fatalf("adjacent block %#x missed", la)
		}
	}
	if c.Access(0x80) { // fifth block: next counter line
		t.Fatal("next counter line hit cold")
	}
}

func TestLookupDoesNotAllocate(t *testing.T) {
	c := New(4 << 10)
	if c.Lookup(0x2000) {
		t.Fatal("cold lookup hit")
	}
	if c.Lookup(0x2000) {
		t.Fatal("lookup allocated")
	}
	c.Access(0x2000)
	if !c.Lookup(0x2000) {
		t.Fatal("lookup missed present entry")
	}
}

func TestUpdateAllocates(t *testing.T) {
	c := New(4 << 10)
	c.Update(0x5000) // write-allocate on eviction update
	if !c.Lookup(0x5000) {
		t.Fatal("update did not allocate")
	}
}

func TestCapacityBehaviour(t *testing.T) {
	// A 4 KB cache holds counters for 4 KB/8 B = 512 blocks = 16 KB of
	// data. Touch 64 KB of data and the early entries must be gone.
	c := New(4 << 10)
	for la := uint64(0); la < 64<<10; la += 32 {
		c.Access(la)
	}
	if c.Lookup(0) {
		t.Fatal("first entry survived a 4x-capacity sweep")
	}
	s := c.Stats()
	if s.Hits != 0 {
		// Sequential sweep at 32-byte stride: 3 of 4 accesses hit the
		// counter line.
		if got := s.HitRate(); got < 0.70 || got > 0.80 {
			t.Fatalf("sweep hit rate = %v, want ≈0.75", got)
		}
	}
}

func TestTinyCache(t *testing.T) {
	c := New(64) // 2 lines, degenerate direct-mapped path
	c.Access(0)
	if !c.Access(0) {
		t.Fatal("tiny cache can't hit")
	}
	if c.SizeBytes() != 64 {
		t.Fatalf("SizeBytes = %d", c.SizeBytes())
	}
}

func TestDistantBlocksDoNotAlias(t *testing.T) {
	c := New(512 << 10)
	c.Access(0x0)
	if c.Access(1 << 30) {
		t.Fatal("distant block aliased to a hit")
	}
}
