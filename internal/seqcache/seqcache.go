// Package seqcache implements the on-chip sequence number cache of the
// prior-art architectures the paper compares against ([Suh et al. 2003],
// [Yang et al. 2003]): a dedicated cache holding the 64-bit counters of
// recently touched memory blocks so that pad generation can start before
// the counter returns from DRAM.
//
// Counters are cached in 32-byte lines (Table 1), so one cache line covers
// the counters of four adjacent memory blocks — the source of the scheme's
// spatial locality. The cache is modeled as read-allocate with
// write-update: a fetch miss fills the line after the counter arrives from
// memory; a counter increment on dirty eviction updates the cached copy if
// present and otherwise allocates it (the evicted line is the block most
// recently displaced, a likely near-future miss).
package seqcache

import (
	"ctrpred/internal/cache"
	"ctrpred/internal/ctr"
)

// SeqBytes is the size of one sequence number in memory.
const SeqBytes = 8

// Cache is a dedicated sequence-number cache.
type Cache struct {
	inner *cache.Cache
}

// New creates a sequence-number cache of the given total size in bytes
// (4 KB … 512 KB in the paper's sweeps), 4-way with 32-byte lines.
func New(sizeBytes int) *Cache {
	ways := 4
	if sizeBytes/32 < ways { // degenerate tiny caches used in tests
		ways = 1
	}
	return &Cache{inner: cache.New(cache.Config{
		Name:      "seqcache",
		SizeBytes: sizeBytes,
		LineSize:  32,
		Ways:      ways,
	})}
}

// entryAddr maps a data line address to its counter's address in the
// counter table's own address space (counters are dense: one per line).
func entryAddr(lineAddr uint64) uint64 {
	return lineAddr / ctr.LineSize * SeqBytes
}

// Lookup probes the cache for the counter of the data line at lineAddr
// and reports a hit. It does not allocate — call Fill once the counter
// has been fetched from memory.
func (c *Cache) Lookup(lineAddr uint64) bool {
	return c.inner.Probe(entryAddr(lineAddr))
}

// Access performs a demand lookup: on a hit the entry's recency is
// refreshed; on a miss the entry is allocated (modeling the fill that
// follows the memory fetch of the counter line). Returns whether it hit.
func (c *Cache) Access(lineAddr uint64) bool {
	hit, _ := c.inner.Access(entryAddr(lineAddr), false)
	return hit
}

// Update records a counter change (dirty eviction incremented the
// counter): write-update if present, write-allocate otherwise. Counter
// writes are modeled write-through to memory, so no dirty state is kept
// here.
func (c *Cache) Update(lineAddr uint64) {
	c.inner.Access(entryAddr(lineAddr), false)
}

// Stats exposes the underlying cache statistics.
func (c *Cache) Stats() cache.Stats { return c.inner.Stats() }

// SizeBytes returns the configured capacity.
func (c *Cache) SizeBytes() int { return c.inner.Config().SizeBytes }

// InvalidateAll empties the cache — the state a process finds after
// another process used the structure during a context switch.
func (c *Cache) InvalidateAll() { c.inner.InvalidateAll() }
