// Package mem holds the architectural (plaintext) memory image as seen
// from inside the secure processor boundary. The CPU's loads and stores
// operate on this image; package secmem keeps the encrypted off-chip copy
// and checks, on every fetch, that decrypting it reproduces this image.
//
// Storage is line-granular over a paged backing store (package paged):
// the bounded working sets the workloads touch live in flat per-page
// arrays — no hashing on the load/store hot path — while multi-gigabyte
// address spaces still cost only what a workload touches, with a sparse
// fallback beyond the dense horizon. Values are little-endian.
package mem

import (
	"fmt"

	"ctrpred/internal/ctr"
	"ctrpred/internal/paged"
)

// Memory is a line-granular byte store. The zero value is not usable;
// call New.
type Memory struct {
	lines *paged.Table[ctr.Line]
}

// New creates an empty memory.
func New() *Memory {
	return &Memory{lines: paged.New[ctr.Line](ctr.LineSize)}
}

// Release returns a view's copy-on-write pages to the template's shared
// pool (see paged.Table.Release). The memory must not be used afterward.
func (m *Memory) Release() { m.lines.Release() }

// Freeze marks the memory immutable; further stores panic. A frozen
// memory is a safe template for NewView across concurrent simulations.
func (m *Memory) Freeze() { m.lines.Freeze() }

// NewView returns a copy-on-write view of template: loads read through to
// the template's lines, while the first store to a page copies it into
// the view, so template contents are never modified. The template is
// frozen as a side effect. This is how sweeps share one built workload
// image across many machines instead of re-assembling and re-writing
// megabytes per run.
func NewView(template *Memory) *Memory {
	return &Memory{lines: paged.NewView(template.lines)}
}

// LineAddr returns addr rounded down to its 32-byte line.
func LineAddr(addr uint64) uint64 { return addr &^ uint64(ctr.LineSize-1) }

func (m *Memory) line(addr uint64, create bool) *ctr.Line {
	if create {
		l, _ := m.lines.Ensure(addr)
		return l
	}
	return m.lines.Lookup(addr)
}

// checkSpan panics if an access of size bytes at addr crosses a line
// boundary or has an unsupported size. The ISA only generates 1/2/4/8-byte
// naturally aligned accesses, so a crossing indicates a simulator bug.
func checkSpan(addr uint64, size int) {
	switch size {
	case 1, 2, 4, 8:
	default:
		panic(fmt.Sprintf("mem: unsupported access size %d", size))
	}
	if addr%uint64(ctr.LineSize)+uint64(size) > uint64(ctr.LineSize) {
		panic(fmt.Sprintf("mem: access at %#x size %d crosses line boundary", addr, size))
	}
}

// Load reads size bytes (1, 2, 4 or 8) at addr, zero-extended,
// little-endian. Unwritten memory reads as zero.
func (m *Memory) Load(addr uint64, size int) uint64 {
	checkSpan(addr, size)
	l := m.lines.Lookup(addr)
	if l == nil {
		return 0
	}
	off := int(addr % uint64(ctr.LineSize))
	var v uint64
	for i := size - 1; i >= 0; i-- {
		v = v<<8 | uint64(l[off+i])
	}
	return v
}

// Store writes the low size bytes of val at addr, little-endian.
func (m *Memory) Store(addr uint64, size int, val uint64) {
	checkSpan(addr, size)
	l, _ := m.lines.Ensure(addr)
	off := int(addr % uint64(ctr.LineSize))
	for i := 0; i < size; i++ {
		l[off+i] = byte(val >> (8 * i))
	}
}

// LineAt returns a copy of the line containing addr.
func (m *Memory) LineAt(addr uint64) ctr.Line {
	if l := m.lines.Lookup(addr); l != nil {
		return *l
	}
	return ctr.Line{}
}

// LineRef returns a pointer to the line containing addr, or nil if the
// line was never written — the copy-free variant of LineAt for hot paths
// (the secure controller's per-fetch self-check and writeback
// encryption). Callers must not retain the pointer across stores.
func (m *Memory) LineRef(addr uint64) *ctr.Line {
	return m.lines.Lookup(addr)
}

// SetLine replaces the line containing addr.
func (m *Memory) SetLine(addr uint64, data ctr.Line) {
	*m.line(addr, true) = data
}

// WriteBytes copies p into memory starting at addr (image loading).
func (m *Memory) WriteBytes(addr uint64, p []byte) {
	for len(p) > 0 {
		l, _ := m.lines.Ensure(addr)
		off := int(addr % uint64(ctr.LineSize))
		n := copy(l[off:], p)
		p = p[n:]
		addr += uint64(n)
	}
}

// ReadBytes copies len(p) bytes starting at addr into p.
func (m *Memory) ReadBytes(addr uint64, p []byte) {
	for i := 0; i < len(p); {
		off := int(addr % uint64(ctr.LineSize))
		n := ctr.LineSize - off
		if n > len(p)-i {
			n = len(p) - i
		}
		if l := m.lines.Lookup(addr); l != nil {
			copy(p[i:i+n], l[off:])
		} else {
			for j := i; j < i+n; j++ {
				p[j] = 0
			}
		}
		i += n
		addr += uint64(n)
	}
}

// TouchedLines reports how many distinct lines have been written.
func (m *Memory) TouchedLines() int { return m.lines.Count() }

// ForEachLine visits every written line in ascending address order,
// calling fn with each line's base address. Views visit only their own
// copied pages, so call this on the underlying memory, not a view.
func (m *Memory) ForEachLine(fn func(la uint64)) {
	m.lines.ForEach(func(addr uint64, _ *ctr.Line) { fn(addr) })
}
