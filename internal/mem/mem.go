// Package mem holds the architectural (plaintext) memory image as seen
// from inside the secure processor boundary. The CPU's loads and stores
// operate on this image; package secmem keeps the encrypted off-chip copy
// and checks, on every fetch, that decrypting it reproduces this image.
//
// Storage is sparse at cache-line granularity so multi-gigabyte address
// spaces cost only what a workload touches. Values are little-endian.
package mem

import (
	"fmt"

	"ctrpred/internal/ctr"
)

// Memory is a sparse line-granular byte store. The zero value is not
// usable; call New.
type Memory struct {
	lines map[uint64]*ctr.Line
}

// New creates an empty memory.
func New() *Memory {
	return &Memory{lines: make(map[uint64]*ctr.Line)}
}

// LineAddr returns addr rounded down to its 32-byte line.
func LineAddr(addr uint64) uint64 { return addr &^ uint64(ctr.LineSize-1) }

func (m *Memory) line(addr uint64, create bool) *ctr.Line {
	la := LineAddr(addr)
	l := m.lines[la]
	if l == nil && create {
		l = new(ctr.Line)
		m.lines[la] = l
	}
	return l
}

// checkSpan panics if an access of size bytes at addr crosses a line
// boundary or has an unsupported size. The ISA only generates 1/2/4/8-byte
// naturally aligned accesses, so a crossing indicates a simulator bug.
func checkSpan(addr uint64, size int) {
	switch size {
	case 1, 2, 4, 8:
	default:
		panic(fmt.Sprintf("mem: unsupported access size %d", size))
	}
	if addr%uint64(ctr.LineSize)+uint64(size) > uint64(ctr.LineSize) {
		panic(fmt.Sprintf("mem: access at %#x size %d crosses line boundary", addr, size))
	}
}

// Load reads size bytes (1, 2, 4 or 8) at addr, zero-extended,
// little-endian. Unwritten memory reads as zero.
func (m *Memory) Load(addr uint64, size int) uint64 {
	checkSpan(addr, size)
	l := m.line(addr, false)
	if l == nil {
		return 0
	}
	off := int(addr % uint64(ctr.LineSize))
	var v uint64
	for i := size - 1; i >= 0; i-- {
		v = v<<8 | uint64(l[off+i])
	}
	return v
}

// Store writes the low size bytes of val at addr, little-endian.
func (m *Memory) Store(addr uint64, size int, val uint64) {
	checkSpan(addr, size)
	l := m.line(addr, true)
	off := int(addr % uint64(ctr.LineSize))
	for i := 0; i < size; i++ {
		l[off+i] = byte(val >> (8 * i))
	}
}

// LineAt returns a copy of the line containing addr.
func (m *Memory) LineAt(addr uint64) ctr.Line {
	if l := m.line(addr, false); l != nil {
		return *l
	}
	return ctr.Line{}
}

// SetLine replaces the line containing addr.
func (m *Memory) SetLine(addr uint64, data ctr.Line) {
	*m.line(addr, true) = data
}

// WriteBytes copies p into memory starting at addr (image loading).
func (m *Memory) WriteBytes(addr uint64, p []byte) {
	for i, b := range p {
		a := addr + uint64(i)
		l := m.line(a, true)
		l[a%uint64(ctr.LineSize)] = b
	}
}

// ReadBytes copies len(p) bytes starting at addr into p.
func (m *Memory) ReadBytes(addr uint64, p []byte) {
	for i := range p {
		a := addr + uint64(i)
		if l := m.line(a, false); l != nil {
			p[i] = l[a%uint64(ctr.LineSize)]
		} else {
			p[i] = 0
		}
	}
}

// TouchedLines reports how many distinct lines have been written.
func (m *Memory) TouchedLines() int { return len(m.lines) }
