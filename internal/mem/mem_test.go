package mem

import (
	"bytes"
	"testing"
	"testing/quick"

	"ctrpred/internal/ctr"
)

func TestLoadStoreRoundTrip(t *testing.T) {
	m := New()
	m.Store(0x1000, 8, 0x1122334455667788)
	if got := m.Load(0x1000, 8); got != 0x1122334455667788 {
		t.Fatalf("Load = %#x", got)
	}
	// Little-endian byte order.
	if got := m.Load(0x1000, 1); got != 0x88 {
		t.Fatalf("low byte = %#x, want 0x88", got)
	}
	if got := m.Load(0x1007, 1); got != 0x11 {
		t.Fatalf("high byte = %#x, want 0x11", got)
	}
}

func TestUnwrittenReadsZero(t *testing.T) {
	m := New()
	if m.Load(0xdead00, 8) != 0 {
		t.Fatal("unwritten memory non-zero")
	}
}

func TestPartialSizes(t *testing.T) {
	m := New()
	m.Store(0x10, 4, 0xaabbccdd)
	if got := m.Load(0x10, 4); got != 0xaabbccdd {
		t.Fatalf("4-byte load = %#x", got)
	}
	if got := m.Load(0x10, 2); got != 0xccdd {
		t.Fatalf("2-byte load = %#x", got)
	}
	m.Store(0x12, 2, 0xffff)
	if got := m.Load(0x10, 4); got != 0xffffccdd {
		t.Fatalf("after overlapping store = %#x", got)
	}
}

func TestCrossLinePanics(t *testing.T) {
	m := New()
	defer func() {
		if recover() == nil {
			t.Fatal("line-crossing access did not panic")
		}
	}()
	m.Load(30, 8) // 30+8 > 32
}

func TestBadSizePanics(t *testing.T) {
	m := New()
	defer func() {
		if recover() == nil {
			t.Fatal("3-byte access did not panic")
		}
	}()
	m.Store(0, 3, 1)
}

func TestLineAtSetLine(t *testing.T) {
	m := New()
	var l ctr.Line
	for i := range l {
		l[i] = byte(i + 1)
	}
	m.SetLine(0x2005, l) // any addr within the line works
	if m.LineAt(0x2000) != l {
		t.Fatal("LineAt differs from SetLine")
	}
	if got := m.Load(0x2000, 1); got != 1 {
		t.Fatalf("byte 0 = %d", got)
	}
}

func TestWriteReadBytes(t *testing.T) {
	m := New()
	data := []byte("the quick brown fox jumps over the lazy dog")
	m.WriteBytes(0x3000-5, data) // deliberately spans lines
	got := make([]byte, len(data))
	m.ReadBytes(0x3000-5, got)
	if !bytes.Equal(got, data) {
		t.Fatalf("ReadBytes = %q", got)
	}
}

func TestReadBytesUnwritten(t *testing.T) {
	m := New()
	got := make([]byte, 4)
	m.ReadBytes(0x9000, got)
	if !bytes.Equal(got, []byte{0, 0, 0, 0}) {
		t.Fatalf("unwritten ReadBytes = %v", got)
	}
}

func TestTouchedLines(t *testing.T) {
	m := New()
	m.Store(0, 8, 1)
	m.Store(8, 8, 2)  // same line
	m.Store(32, 8, 3) // next line
	if n := m.TouchedLines(); n != 2 {
		t.Fatalf("TouchedLines = %d, want 2", n)
	}
}

func TestLineAddr(t *testing.T) {
	if LineAddr(0x47) != 0x40 {
		t.Fatalf("LineAddr(0x47) = %#x", LineAddr(0x47))
	}
}

func TestStoreLoadProperty(t *testing.T) {
	f := func(slot uint16, val uint64, size8 uint8) bool {
		size := []int{1, 2, 4, 8}[size8%4]
		addr := uint64(slot) * 8 // 8-aligned → never crosses a line
		m := New()
		m.Store(addr, size, val)
		mask := ^uint64(0)
		if size < 8 {
			mask = 1<<(8*size) - 1
		}
		return m.Load(addr, size) == val&mask
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
