package cryptoengine

import (
	"testing"

	"ctrpred/internal/ctr"
)

func newEngine(cfg Config) *Engine {
	var key [32]byte
	key[0] = 1
	return New(cfg, ctr.NewKeystream(key))
}

func TestLatency(t *testing.T) {
	e := newEngine(Config{LatencyCycles: 96, IssuePerCycle: 1})
	_, ready := e.Compute(100, 0x1000, 1, ClassDemand)
	if ready != 196 {
		t.Fatalf("ready = %d, want 196", ready)
	}
}

func TestPipelinedIssue(t *testing.T) {
	// Back-to-back requests at the same cycle issue on consecutive cycles
	// (1/cycle) and finish one cycle apart: the pipeline overlaps them.
	e := newEngine(Config{LatencyCycles: 10, IssuePerCycle: 1})
	var readies []uint64
	for i := 0; i < 4; i++ {
		_, r := e.Compute(0, 0x1000, uint64(i), ClassPrediction)
		readies = append(readies, r)
	}
	for i, r := range readies {
		if want := uint64(10 + i); r != want {
			t.Fatalf("request %d ready at %d, want %d", i, r, want)
		}
	}
	if e.Stats().StallCycles != 0+1+2+3 {
		t.Fatalf("stall cycles = %d, want 6", e.Stats().StallCycles)
	}
}

func TestMultiIssue(t *testing.T) {
	e := newEngine(Config{LatencyCycles: 10, IssuePerCycle: 2})
	var readies []uint64
	for i := 0; i < 4; i++ {
		_, r := e.Compute(0, 0x1000, uint64(i), ClassPrediction)
		readies = append(readies, r)
	}
	want := []uint64{10, 10, 11, 11}
	for i := range want {
		if readies[i] != want[i] {
			t.Fatalf("readies = %v, want %v", readies, want)
		}
	}
}

func TestIdleEngineAcceptsImmediately(t *testing.T) {
	e := newEngine(Config{LatencyCycles: 5, IssuePerCycle: 1})
	_, r1 := e.Compute(0, 0x1000, 0, ClassDemand)
	_, r2 := e.Compute(1000, 0x1000, 1, ClassDemand)
	if r1 != 5 || r2 != 1005 {
		t.Fatalf("r1=%d r2=%d", r1, r2)
	}
	if e.Stats().StallCycles != 0 {
		t.Fatalf("unexpected stalls: %d", e.Stats().StallCycles)
	}
}

func TestPadMatchesKeystream(t *testing.T) {
	var key [32]byte
	key[5] = 9
	ks := ctr.NewKeystream(key)
	e := New(DefaultConfig(), ks)
	pad, _ := e.Compute(0, 0x2000, 77, ClassDemand)
	if pad != ks.Pad(0x2000, 77) {
		t.Fatal("engine pad differs from keystream pad")
	}
}

func TestClassAccounting(t *testing.T) {
	e := newEngine(Config{LatencyCycles: 1, IssuePerCycle: 4})
	e.Compute(0, 0, 0, ClassPrediction)
	e.Compute(0, 0, 1, ClassPrediction)
	e.Compute(0, 0, 2, ClassDemand)
	e.ScheduleOnly(0, ClassWriteback)
	s := e.Stats()
	if s.Issued[ClassPrediction] != 2 || s.Issued[ClassDemand] != 1 || s.Issued[ClassWriteback] != 1 {
		t.Fatalf("issued = %v", s.Issued)
	}
	if s.IssuedTotal() != 4 {
		t.Fatalf("total = %d", s.IssuedTotal())
	}
}

func TestScheduleOnlyTiming(t *testing.T) {
	e := newEngine(Config{LatencyCycles: 7, IssuePerCycle: 1})
	if r := e.ScheduleOnly(3, ClassDemand); r != 10 {
		t.Fatalf("ready = %d, want 10", r)
	}
}

func TestDefaultsApplied(t *testing.T) {
	e := newEngine(Config{}) // zero config gets defaults
	if e.Config().LatencyCycles != 96 || e.Config().IssuePerCycle != 1 {
		t.Fatalf("defaults not applied: %+v", e.Config())
	}
}

func TestClassString(t *testing.T) {
	for c, want := range map[Class]string{
		ClassPrediction: "prediction",
		ClassDemand:     "demand",
		ClassWriteback:  "writeback",
		Class(99):       "unknown",
	} {
		if got := c.String(); got != want {
			t.Errorf("Class(%d).String() = %q, want %q", c, got, want)
		}
	}
}
