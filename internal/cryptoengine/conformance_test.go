package cryptoengine

import (
	"errors"
	"testing"

	"ctrpred/internal/ctr"
)

// conformanceSpecs is the model grid the conformance suite runs: every
// shipped model, each at a default and a non-default parameterization.
func conformanceSpecs() []Spec {
	return []Spec{
		DefaultSpec(),
		{Model: ModelAES, LatencyCycles: 48, IssuePerCycle: 2},
		{Model: ModelSealer},
		{Model: ModelSealer, Banks: 4, LatencyCycles: 32},
		{Model: ModelBipBip},
		{Model: ModelBipBip, LatencyCycles: 2},
	}
}

func newConformanceModel(t *testing.T, spec Spec) EngineModel {
	t.Helper()
	m, err := NewModel(spec, ctr.NewKeystream([32]byte{1, 2, 3}))
	if err != nil {
		t.Fatalf("NewModel(%v): %v", spec, err)
	}
	return m
}

// forEachModel runs fn once per conformance spec, as a subtest named by
// the spec's canonical string.
func forEachModel(t *testing.T, fn func(t *testing.T, m EngineModel)) {
	for _, spec := range conformanceSpecs() {
		t.Run(spec.String(), func(t *testing.T) {
			fn(t, newConformanceModel(t, spec))
		})
	}
}

// TestConformanceMonotoneReady: with non-decreasing request times, every
// model's ready cycles are non-decreasing and strictly after the request.
func TestConformanceMonotoneReady(t *testing.T) {
	forEachModel(t, func(t *testing.T, m EngineModel) {
		nows := []uint64{0, 0, 0, 5, 5, 6, 100, 100, 100, 100, 10_000}
		var prev uint64
		for i, now := range nows {
			ready := m.ScheduleOnly(now, ClassDemand)
			if ready <= now {
				t.Fatalf("request %d at %d ready at %d, not after the request", i, now, ready)
			}
			if ready < prev {
				t.Fatalf("request %d at %d ready at %d, before predecessor's %d", i, now, ready, prev)
			}
			prev = ready
		}
	})
}

// TestConformanceReservationOrder: requests issued back to back at one
// cycle are served in issue order — interleaving classes and the
// compute/schedule entry points must not reorder service.
func TestConformanceReservationOrder(t *testing.T) {
	forEachModel(t, func(t *testing.T, m EngineModel) {
		var pad ctr.Pad
		var readies []uint64
		for i := 0; i < 12; i++ {
			var r uint64
			switch i % 3 {
			case 0:
				r = m.ScheduleOnly(10, ClassDemand)
			case 1:
				r = m.ComputeInto(&pad, 10, 0x1000, uint64(i), ClassWriteback)
			case 2:
				r = m.ScheduleOnly(10, ClassPrediction)
			}
			readies = append(readies, r)
		}
		for i := 1; i < len(readies); i++ {
			if readies[i] < readies[i-1] {
				t.Fatalf("same-cycle burst served out of order: request %d ready %d before request %d ready %d",
					i, readies[i], i-1, readies[i-1])
			}
		}
	})
}

// TestConformanceIssuedAccounting: Stats.Issued tracks every entry point
// per class, including one prediction per guess of a speculative burst.
func TestConformanceIssuedAccounting(t *testing.T) {
	forEachModel(t, func(t *testing.T, m EngineModel) {
		var pad ctr.Pad
		guesses := []uint64{7, 8, 9, 10}
		m.ScheduleGuesses(0, guesses, 9)
		m.ComputeGuessesInto(&pad, 50, 0x2000, guesses, 1) // no match
		m.ComputeInto(&pad, 100, 0x3000, 4, ClassDemand)
		m.ScheduleOnly(150, ClassDemand)
		m.ScheduleOnly(200, ClassWriteback)
		st := m.Stats()
		if got, want := st.Issued[ClassPrediction], uint64(2*len(guesses)); got != want {
			t.Errorf("Issued[prediction] = %d, want %d", got, want)
		}
		if got := st.Issued[ClassDemand]; got != 2 {
			t.Errorf("Issued[demand] = %d, want 2", got)
		}
		if got := st.Issued[ClassWriteback]; got != 1 {
			t.Errorf("Issued[writeback] = %d, want 1", got)
		}
		if got, want := st.IssuedTotal(), uint64(2*len(guesses)+3); got != want {
			t.Errorf("IssuedTotal() = %d, want %d", got, want)
		}
		if st.QueueWait.Total != uint64(2*len(guesses)+3) {
			t.Errorf("QueueWait observed %d requests, want %d", st.QueueWait.Total, 2*len(guesses)+3)
		}
	})
}

// TestConformanceGuessSemantics: the batched guess paths agree on match
// index, produce real pad bits on a match, and report (-1, 0) on a miss
// — under every model, since pad bits come from the shared keystream.
func TestConformanceGuessSemantics(t *testing.T) {
	forEachModel(t, func(t *testing.T, m EngineModel) {
		guesses := []uint64{3, 4, 5, 6}
		idx, ready := m.ScheduleGuesses(0, guesses, 5)
		if idx != 2 || ready == 0 {
			t.Fatalf("ScheduleGuesses match = (%d, %d), want index 2 and nonzero ready", idx, ready)
		}
		if idx, ready := m.ScheduleGuesses(0, guesses, 99); idx != -1 || ready != 0 {
			t.Fatalf("ScheduleGuesses miss = (%d, %d), want (-1, 0)", idx, ready)
		}
		if idx, ready := m.ScheduleGuesses(0, nil, 5); idx != -1 || ready != 0 {
			t.Fatalf("ScheduleGuesses empty = (%d, %d), want (-1, 0)", idx, ready)
		}
		var pad, want ctr.Pad
		const vaddr, trueSeq = 0x4000, uint64(4)
		if idx, _ := m.ComputeGuessesInto(&pad, 10, vaddr, guesses, trueSeq); idx != 1 {
			t.Fatalf("ComputeGuessesInto match index = %d, want 1", idx)
		}
		m.Keystream().PadInto(&want, vaddr, trueSeq)
		if pad != want {
			t.Fatal("ComputeGuessesInto pad differs from the keystream's pad")
		}
	})
}

// TestConformanceZeroAlloc: the per-L2-miss entry points must not
// allocate under any model (they run once per miss and per eviction).
func TestConformanceZeroAlloc(t *testing.T) {
	forEachModel(t, func(t *testing.T, m EngineModel) {
		var pad ctr.Pad
		guesses := []uint64{1, 2, 3, 4, 5}
		var now uint64
		if n := testing.AllocsPerRun(100, func() {
			now += 10
			m.ComputeInto(&pad, now, 0x5000, 7, ClassDemand)
		}); n != 0 {
			t.Errorf("ComputeInto allocates %.1f per run", n)
		}
		if n := testing.AllocsPerRun(100, func() {
			now += 10
			m.ComputeGuessesInto(&pad, now, 0x5000, guesses, 3)
		}); n != 0 {
			t.Errorf("ComputeGuessesInto allocates %.1f per run", n)
		}
		if n := testing.AllocsPerRun(100, func() {
			now += 10
			m.ScheduleOnly(now, ClassWriteback)
		}); n != 0 {
			t.Errorf("ScheduleOnly allocates %.1f per run", n)
		}
	})
}

// TestConformanceSpecRoundTrip: Spec() reports the normalized spec the
// model was built from, and ParseEngine(String()) round-trips it.
func TestConformanceSpecRoundTrip(t *testing.T) {
	for _, spec := range conformanceSpecs() {
		m := newConformanceModel(t, spec)
		want := spec.Normalized()
		if got := m.Spec(); got != want {
			t.Errorf("Spec() = %+v, want %+v", got, want)
		}
		back, err := ParseEngine(want.String())
		if err != nil {
			t.Errorf("ParseEngine(%q): %v", want.String(), err)
		} else if back != want {
			t.Errorf("ParseEngine(%q) = %+v, want %+v", want.String(), back, want)
		}
	}
}

func TestParseEngine(t *testing.T) {
	cases := []struct {
		in   string
		want Spec
	}{
		{"", DefaultSpec()},
		{"aes", DefaultSpec()},
		{"aes:lat=48", Spec{Model: ModelAES, LatencyCycles: 48, IssuePerCycle: 1}},
		{"aes:lat=48,issue=2", Spec{Model: ModelAES, LatencyCycles: 48, IssuePerCycle: 2}},
		{"sealer", Spec{Model: ModelSealer, LatencyCycles: 128, Banks: 8}},
		{"sealer:banks=4", Spec{Model: ModelSealer, LatencyCycles: 128, Banks: 4}},
		{"sealer:banks=8,lat=64", Spec{Model: ModelSealer, LatencyCycles: 64, Banks: 8}},
		{"bipbip", Spec{Model: ModelBipBip, LatencyCycles: 4}},
		{"bipbip:lat=2", Spec{Model: ModelBipBip, LatencyCycles: 2}},
	}
	for _, c := range cases {
		got, err := ParseEngine(c.in)
		if err != nil {
			t.Errorf("ParseEngine(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseEngine(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
	for _, bad := range []string{"quantum", "quantum:lat=1", "aes:banks=4", "sealer:issue=2", "aes:lat=0", "aes:lat=x", "bipbip:lat"} {
		if _, err := ParseEngine(bad); err == nil {
			t.Errorf("ParseEngine(%q) accepted", bad)
		}
	}
	if _, err := ParseEngine("quantum"); !errors.Is(err, ErrUnknownEngine) {
		t.Errorf("ParseEngine(quantum) = %v, want errors.Is(err, ErrUnknownEngine)", err)
	}
	if _, err := ParseEngine("aes:banks=4"); errors.Is(err, ErrUnknownEngine) {
		t.Error("bad parameter error should not report an unknown engine")
	}
	if _, err := NewModel(Spec{Model: "quantum"}, ctr.NewKeystream([32]byte{})); !errors.Is(err, ErrUnknownEngine) {
		t.Errorf("NewModel(quantum) = %v, want errors.Is(err, ErrUnknownEngine)", err)
	}
}

// TestSealerTiming pins the banked model's arithmetic: B banks absorb B
// same-cycle requests at full latency each, and request B+1 waits for
// the earliest bank.
func TestSealerTiming(t *testing.T) {
	s := NewSealer(Spec{Model: ModelSealer, Banks: 2, LatencyCycles: 10}, ctr.NewKeystream([32]byte{}))
	if r := s.ScheduleOnly(100, ClassDemand); r != 110 {
		t.Fatalf("bank 0 ready at %d, want 110", r)
	}
	if r := s.ScheduleOnly(100, ClassDemand); r != 110 {
		t.Fatalf("bank 1 ready at %d, want 110", r)
	}
	if r := s.ScheduleOnly(100, ClassDemand); r != 120 {
		t.Fatalf("third same-cycle request ready at %d, want 120 (queued behind a busy bank)", r)
	}
	st := s.Stats()
	if st.StallCycles != 10 {
		t.Fatalf("StallCycles = %d, want 10 (one request waited one occupancy)", st.StallCycles)
	}
	if st.Model != ModelSealer || st.Banks != 2 {
		t.Fatalf("stats identity = (%q, %d), want (sealer, 2)", st.Model, st.Banks)
	}
}

// TestBipBipTiming pins the low-latency model: fixed latency, no
// contention, and speculative bursts bypassed for free.
func TestBipBipTiming(t *testing.T) {
	b := NewBipBip(Spec{Model: ModelBipBip, LatencyCycles: 4}, ctr.NewKeystream([32]byte{}))
	for i := 0; i < 10; i++ {
		if r := b.ScheduleOnly(100, ClassDemand); r != 104 {
			t.Fatalf("request %d ready at %d, want 104 (no contention ever)", i, r)
		}
	}
	idx, ready := b.ScheduleGuesses(200, []uint64{1, 2, 3}, 2)
	if idx != 1 || ready != 204 {
		t.Fatalf("guess burst = (%d, %d), want (1, 204)", idx, ready)
	}
	st := b.Stats()
	if st.StallCycles != 0 {
		t.Fatalf("StallCycles = %d, want 0", st.StallCycles)
	}
	if st.Bypassed != 3 {
		t.Fatalf("Bypassed = %d, want 3 (the speculative burst)", st.Bypassed)
	}
	if st.Issued[ClassPrediction] != 3 || st.Issued[ClassDemand] != 10 {
		t.Fatalf("Issued = %v", st.Issued)
	}
}
