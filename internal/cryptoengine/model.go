// Engine models. The paper fixes one crypto engine — the fully
// pipelined 96-cycle AES of Table 1 — but the question its Figure 7
// begs is how much of prediction's win survives a different engine.
// EngineModel is the timing-only contract the memory controller
// programs against; Spec names a model plus its timing parameters and
// is what configs, fingerprints, CLIs and the job server carry.
//
// Three models ship:
//
//   - aes: the paper's pipelined AES (the default; Engine in engine.go).
//   - sealer: banked non-pipelined wide units, in the style of in-SRAM
//     AES macros — high per-request latency amortized across banks.
//   - bipbip: a low-latency tweakable block cipher decrypting on fetch,
//     so speculative pads buy nothing; predictions become free no-ops.
//
// All models delegate pad bits to the same ctr.Keystream, so decryption
// stays real under every model and results differ only in timing.
package cryptoengine

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"ctrpred/internal/ctr"
)

// EngineModel is the timing contract between the memory controller and
// a cipher engine: reserve issue slots, report ready cycles, account
// activity. Pad bits always come from the shared ctr.Keystream, so a
// model shapes when data is ready, never what it decrypts to.
type EngineModel interface {
	// ComputeInto books one request, writes the pad for (vaddr, seq)
	// into dst, and returns the cycle the pad emerges.
	ComputeInto(dst *ctr.Pad, now uint64, vaddr, seq uint64, class Class) uint64
	// ScheduleOnly books one request and returns its ready cycle
	// without materializing the pad.
	ScheduleOnly(now uint64, class Class) uint64
	// ScheduleGuesses books one prediction-class request per guess and
	// returns the index of the first guess equal to trueSeq (-1 if
	// none) plus that guess's ready cycle (0 if none).
	ScheduleGuesses(now uint64, guesses []uint64, trueSeq uint64) (matchIdx int, padReady uint64)
	// ComputeGuessesInto is ScheduleGuesses plus materializing the
	// matching pad into dst.
	ComputeGuessesInto(dst *ctr.Pad, now uint64, vaddr uint64, guesses []uint64, trueSeq uint64) (matchIdx int, padReady uint64)
	// Stats returns a copy of the accumulated accounting.
	Stats() Stats
	// Spec returns the normalized spec the model was built from.
	Spec() Spec
	// SetReference selects the model's scalar reference paths where it
	// has any (a debugging escape hatch; a no-op for models whose fast
	// paths are already scalar).
	SetReference(on bool)
	// Keystream exposes the functional keystream for paths that need
	// pad bits without timing (image encryption, functional decrypt).
	Keystream() *ctr.Keystream
}

// Model names accepted by Spec and ParseEngine.
const (
	ModelAES    = "aes"
	ModelSealer = "sealer"
	ModelBipBip = "bipbip"
)

// ErrUnknownEngine is wrapped by ParseEngine and NewModel when the spec
// names no known engine model; callers branch with errors.Is instead of
// matching message substrings.
var ErrUnknownEngine = errors.New("unknown engine")

// Spec names an engine model plus its timing parameters. The zero Spec
// normalizes to the default pipelined AES, so existing configs keep
// their meaning. Fields irrelevant to the named model are zeroed by
// Normalized, giving every distinct timing behavior exactly one
// canonical Spec (the property sim.Fingerprint relies on).
type Spec struct {
	// Model is "aes", "sealer" or "bipbip" ("" = "aes").
	Model string `json:"model"`
	// LatencyCycles is the per-request latency (0 = model default:
	// aes 96, sealer 128, bipbip 4).
	LatencyCycles uint64 `json:"latency_cycles,omitempty"`
	// IssuePerCycle is the aes pipeline's issue width (0 = 1). Other
	// models ignore it.
	IssuePerCycle int `json:"issue_per_cycle,omitempty"`
	// Banks is the sealer's bank parallelism (0 = 8). Other models
	// ignore it.
	Banks int `json:"banks,omitempty"`
}

// Model defaults, shared by Normalized and the constructors.
const (
	defaultAESLatency    = 96
	defaultSealerLatency = 128
	defaultSealerBanks   = 8
	defaultBipBipLatency = 4
)

// DefaultSpec is the Table 1 engine: pipelined AES, 96-cycle latency,
// one request per cycle.
func DefaultSpec() Spec {
	return Spec{Model: ModelAES, LatencyCycles: defaultAESLatency, IssuePerCycle: 1}
}

// Normalized fills model defaults and zeroes fields the model ignores,
// so equal timing behavior hashes to equal bytes. Unknown model names
// pass through untouched; NewModel rejects them.
func (s Spec) Normalized() Spec {
	if s.Model == "" {
		s.Model = ModelAES
	}
	switch s.Model {
	case ModelAES:
		if s.LatencyCycles == 0 {
			s.LatencyCycles = defaultAESLatency
		}
		if s.IssuePerCycle <= 0 {
			s.IssuePerCycle = 1
		}
		s.Banks = 0
	case ModelSealer:
		if s.LatencyCycles == 0 {
			s.LatencyCycles = defaultSealerLatency
		}
		if s.Banks <= 0 {
			s.Banks = defaultSealerBanks
		}
		s.IssuePerCycle = 0
	case ModelBipBip:
		if s.LatencyCycles == 0 {
			s.LatencyCycles = defaultBipBipLatency
		}
		s.IssuePerCycle = 0
		s.Banks = 0
	}
	return s
}

// String renders the canonical spec form ParseEngine accepts:
// the model name alone when every parameter is the model default,
// otherwise "model:key=val[,key=val]" with only non-default keys.
// ParseEngine(s.String()) round-trips for any valid spec.
func (s Spec) String() string {
	s = s.Normalized()
	var parts []string
	d := Spec{Model: s.Model}.Normalized()
	if s.LatencyCycles != d.LatencyCycles {
		parts = append(parts, "lat="+strconv.FormatUint(s.LatencyCycles, 10))
	}
	if s.IssuePerCycle != d.IssuePerCycle {
		parts = append(parts, "issue="+strconv.Itoa(s.IssuePerCycle))
	}
	if s.Banks != d.Banks {
		parts = append(parts, "banks="+strconv.Itoa(s.Banks))
	}
	sort.Strings(parts)
	if len(parts) == 0 {
		return s.Model
	}
	return s.Model + ":" + strings.Join(parts, ",")
}

// ParseEngine parses a textual engine spec as accepted by the CLIs and
// the job server:
//
//	aes | aes:lat=48 | aes:lat=48,issue=2
//	sealer | sealer:banks=8 | sealer:banks=8,lat=64
//	bipbip | bipbip:lat=2
//
// The empty string is the default aes engine. Unknown model names
// return an error wrapping ErrUnknownEngine; bad parameters return a
// plain error naming the keys the model takes.
func ParseEngine(s string) (Spec, error) {
	model, params, _ := strings.Cut(s, ":")
	if model == "" {
		model = ModelAES
	}
	var keys map[string]bool
	switch model {
	case ModelAES:
		keys = map[string]bool{"lat": true, "issue": true}
	case ModelSealer:
		keys = map[string]bool{"lat": true, "banks": true}
	case ModelBipBip:
		keys = map[string]bool{"lat": true}
	default:
		return Spec{}, fmt.Errorf("%w %q (want aes[:lat=N,issue=N], sealer[:banks=N,lat=N], bipbip[:lat=N])", ErrUnknownEngine, model)
	}
	spec := Spec{Model: model}
	if params != "" {
		for _, kv := range strings.Split(params, ",") {
			key, val, ok := strings.Cut(kv, "=")
			if !ok || !keys[key] {
				return Spec{}, fmt.Errorf("engine %q: bad parameter %q (model %s takes %s)", s, kv, model, keyList(keys))
			}
			n, err := strconv.Atoi(val)
			if err != nil || n <= 0 {
				return Spec{}, fmt.Errorf("engine %q: bad value %q for %s (want a positive integer)", s, val, key)
			}
			switch key {
			case "lat":
				spec.LatencyCycles = uint64(n)
			case "issue":
				spec.IssuePerCycle = n
			case "banks":
				spec.Banks = n
			}
		}
	}
	return spec.Normalized(), nil
}

func keyList(keys map[string]bool) string {
	names := make([]string, 0, len(keys))
	for k := range keys {
		names = append(names, k)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// NewModel builds the engine model the spec names, drawing pad bits
// from ks. Unknown model names return an error wrapping
// ErrUnknownEngine.
func NewModel(spec Spec, ks *ctr.Keystream) (EngineModel, error) {
	spec = spec.Normalized()
	switch spec.Model {
	case ModelAES:
		return New(Config{LatencyCycles: spec.LatencyCycles, IssuePerCycle: spec.IssuePerCycle}, ks), nil
	case ModelSealer:
		return NewSealer(spec, ks), nil
	case ModelBipBip:
		return NewBipBip(spec, ks), nil
	}
	return nil, fmt.Errorf("%w %q (want aes, sealer, bipbip)", ErrUnknownEngine, spec.Model)
}
