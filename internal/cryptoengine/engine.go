// Package cryptoengine models the timing of the secure processor's fully
// pipelined AES engine (paper Section 5.2 and Table 1): a new pad request
// can enter the pipeline every cycle, and each request emerges Latency
// cycles later (96 ns for unrolled AES-256 with 6 stages per round at
// 1 ns/stage).
//
// The engine is shared by three request classes, exactly as in the paper:
// speculative pad precomputation (predictions), demand pad generation
// (after the real sequence number arrives), and writeback encryption of
// evicted dirty lines. Because predictions consume pipeline slots, an
// over-aggressive predictor can delay demand traffic — the effect the
// paper cites as the reason prediction depth cannot simply be increased.
//
// Functionally the engine delegates to ctr.Keystream, so pads it "computes"
// are real pads; the simulator decrypts real ciphertext with them.
package cryptoengine

import (
	"ctrpred/internal/ctr"
	"ctrpred/internal/stats"
)

// Config holds the engine's timing parameters.
type Config struct {
	// LatencyCycles is the pipeline depth in CPU cycles (default 96,
	// matching 96 ns at 1 GHz).
	LatencyCycles uint64
	// IssuePerCycle is how many pad requests (one request = both 16-byte
	// pads of a line, i.e. the paper's dual-AES arrangement in Figure 3)
	// can enter the pipeline per cycle.
	IssuePerCycle int
}

// DefaultConfig matches Table 1.
func DefaultConfig() Config {
	return Config{LatencyCycles: 96, IssuePerCycle: 1}
}

// Class labels the purpose of a pad request, for accounting.
type Class int

const (
	// ClassPrediction is a speculative pad for a guessed sequence number.
	ClassPrediction Class = iota
	// ClassDemand is a pad computed after the true sequence number arrived.
	ClassDemand
	// ClassWriteback is a pad for encrypting an evicted dirty line.
	ClassWriteback
	numClasses
)

func (c Class) String() string {
	switch c {
	case ClassPrediction:
		return "prediction"
	case ClassDemand:
		return "demand"
	case ClassWriteback:
		return "writeback"
	}
	return "unknown"
}

// Stats aggregates engine activity.
type Stats struct {
	Issued      [numClasses]uint64 // requests issued per class
	StallCycles uint64             // cycles requests waited for an issue slot
	LastBusy    uint64             // last cycle at which the pipe had work
	// QueueWait is the distribution of cycles each request waited for an
	// issue slot — the observable face of pipeline occupancy: a busy
	// pipe (e.g. an over-aggressive predictor) shows up as a heavy tail.
	QueueWait *stats.Histogram
	// Model is the engine model that produced these stats ("" and "aes"
	// both mean the default pipelined AES).
	Model string
	// Banks is the sealer's bank count (0 for other models).
	Banks int
	// Bypassed counts requests a model accepted but never occupied a
	// unit for — bipbip's speculative pads, which its decrypt-on-fetch
	// design makes free. Always 0 for aes and sealer.
	Bypassed uint64
}

// IssuedTotal returns the total number of issued requests.
func (s *Stats) IssuedTotal() uint64 {
	var t uint64
	for _, v := range s.Issued {
		t += v
	}
	return t
}

// AddTo registers the engine's statistics into a metrics snapshot node.
// The default AES model emits exactly the historical counter set, so
// golden fixtures recorded before engine models existed stay
// byte-identical; non-default models add their identifying counters.
func (s *Stats) AddTo(n *stats.Snapshot) {
	for c := Class(0); c < numClasses; c++ {
		n.Counter("issued_"+c.String(), s.Issued[c])
	}
	n.Counter("issued_total", s.IssuedTotal())
	n.Counter("stall_cycles", s.StallCycles)
	n.Counter("last_busy", s.LastBusy)
	n.Histogram("queue_wait", s.QueueWait)
	if s.Model != "" && s.Model != ModelAES {
		n.Label("model", s.Model)
		if s.Banks > 0 {
			n.Counter("banks", uint64(s.Banks))
		}
		if s.Model == ModelBipBip {
			n.Counter("bypassed", s.Bypassed)
		}
	}
}

// Engine is the pipelined AES pad engine.
type Engine struct {
	cfg   Config
	ks    *ctr.Keystream
	stats Stats
	// nextIssue is the earliest cycle at which a new request may enter the
	// pipeline, given everything issued so far.
	nextIssue uint64
	// issuedThisCycle tracks multi-issue within the current nextIssue slot.
	issuedThisCycle int
	// reference routes the batched guess paths through the retained
	// one-request-at-a-time loop (see SetReference).
	reference bool
}

// New creates an engine using key material via the given keystream.
func New(cfg Config, ks *ctr.Keystream) *Engine {
	if cfg.LatencyCycles == 0 {
		cfg.LatencyCycles = 96
	}
	if cfg.IssuePerCycle <= 0 {
		cfg.IssuePerCycle = 1
	}
	e := &Engine{cfg: cfg, ks: ks}
	e.stats.QueueWait = stats.NewHistogram(0, 1, 2, 4, 8, 16, 32, 64, 128)
	e.stats.Model = ModelAES
	return e
}

// Engine is the default EngineModel.
var _ EngineModel = (*Engine)(nil)

// Config returns the engine's configuration.
func (e *Engine) Config() Config { return e.cfg }

// Spec returns the canonical spec describing this engine's timing.
func (e *Engine) Spec() Spec {
	return Spec{Model: ModelAES, LatencyCycles: e.cfg.LatencyCycles, IssuePerCycle: e.cfg.IssuePerCycle}.Normalized()
}

// Stats returns a copy of the accumulated statistics.
func (e *Engine) Stats() Stats { return e.stats }

// Compute issues a pad request at or after cycle now and returns the pad
// plus the cycle at which it emerges from the pipeline. Requests are
// serviced in issue order; if the current cycle's issue slots are full the
// request slips to a later cycle (recorded as stall time).
func (e *Engine) Compute(now uint64, vaddr, seq uint64, class Class) (ctr.Pad, uint64) {
	var pad ctr.Pad
	ready := e.ComputeInto(&pad, now, vaddr, seq, class)
	return pad, ready
}

// ComputeInto is Compute writing the pad into dst — the allocation-free
// form the fetch and eviction hot paths use. Timing and accounting are
// identical to Compute.
func (e *Engine) ComputeInto(dst *ctr.Pad, now uint64, vaddr, seq uint64, class Class) uint64 {
	start := e.reserveSlot(now)
	e.stats.Issued[class]++
	if start > now {
		e.stats.StallCycles += start - now
	}
	ready := start + e.cfg.LatencyCycles
	if ready > e.stats.LastBusy {
		e.stats.LastBusy = ready
	}
	e.ks.PadInto(dst, vaddr, seq)
	return ready
}

// ScheduleOnly reserves a pipeline slot and returns the ready cycle
// without computing the pad. The sequence-number-cache and oracle paths
// use this when only timing matters (their pads are computed on the
// functional path).
func (e *Engine) ScheduleOnly(now uint64, class Class) uint64 {
	start := e.reserveSlot(now)
	e.stats.Issued[class]++
	if start > now {
		e.stats.StallCycles += start - now
	}
	ready := start + e.cfg.LatencyCycles
	if ready > e.stats.LastBusy {
		e.stats.LastBusy = ready
	}
	return ready
}

// SetReference selects the retained scalar request loop for the batched
// guess APIs: every guess goes through reserveSlot/ComputeInto one at a
// time, exactly as the pre-batching engine did. The batched fast path is
// defined to produce bit- and cycle-identical results, so this is a
// debugging escape hatch (and the anchor for the equivalence suite), not
// a behavioral mode.
func (e *Engine) SetReference(on bool) { e.reference = on }

// Reference reports whether the scalar reference loop is selected.
func (e *Engine) Reference() bool { return e.reference }

// ScheduleGuesses books one prediction-class pipeline slot per guess —
// the speculative burst a counter-prediction miss issues — and returns
// the index of the first guess equal to trueSeq (-1 if none) plus the
// cycle at which that guess's pad emerges from the pipeline (0 if none).
// Accounting (Issued, StallCycles, LastBusy, QueueWait) is identical to
// calling ScheduleOnly once per guess: the burst occupies consecutive
// issue slots, so the i-th guess waits one cycle longer than its
// predecessor and the whole burst books with two or three arithmetic
// updates instead of a per-request reservation walk.
func (e *Engine) ScheduleGuesses(now uint64, guesses []uint64, trueSeq uint64) (matchIdx int, padReady uint64) {
	matchIdx = -1
	for i, g := range guesses {
		if g == trueSeq {
			matchIdx = i
			break
		}
	}
	n := uint64(len(guesses))
	if n == 0 {
		return -1, 0
	}
	if e.reference || e.cfg.IssuePerCycle != 1 {
		// Scalar loop: the reference path, and the general multi-issue
		// case where a burst does not map to one slot per cycle.
		for i := range guesses {
			ready := e.ScheduleOnly(now, ClassPrediction)
			if i == matchIdx {
				padReady = ready
			}
		}
		return matchIdx, padReady
	}
	if now > e.nextIssue {
		e.nextIssue = now
		e.issuedThisCycle = 0
	}
	start0 := e.nextIssue
	wait := start0 - now
	e.stats.Issued[ClassPrediction] += n
	e.stats.StallCycles += wait*n + n*(n-1)/2
	e.stats.QueueWait.ObserveRange(wait, n)
	if last := start0 + n - 1 + e.cfg.LatencyCycles; last > e.stats.LastBusy {
		e.stats.LastBusy = last
	}
	e.nextIssue = start0 + n
	if matchIdx >= 0 {
		padReady = start0 + uint64(matchIdx) + e.cfg.LatencyCycles
	}
	return matchIdx, padReady
}

// ComputeGuessesInto is ScheduleGuesses plus pad materialization: when a
// guess matches trueSeq, the matching pad (the only one whose bits are
// observable) is computed into dst in a single fused counter-block pass.
// Timing and accounting are identical to the pre-batching loop of one
// ComputeInto for the match and ScheduleOnly for every other guess.
func (e *Engine) ComputeGuessesInto(dst *ctr.Pad, now uint64, vaddr uint64, guesses []uint64, trueSeq uint64) (matchIdx int, padReady uint64) {
	matchIdx, padReady = e.ScheduleGuesses(now, guesses, trueSeq)
	if matchIdx >= 0 {
		e.ks.PadInto(dst, vaddr, trueSeq)
	}
	return matchIdx, padReady
}

func (e *Engine) reserveSlot(now uint64) uint64 {
	if now > e.nextIssue {
		e.nextIssue = now
		e.issuedThisCycle = 0
	}
	start := e.nextIssue
	e.issuedThisCycle++
	if e.issuedThisCycle >= e.cfg.IssuePerCycle {
		e.nextIssue = start + 1
		e.issuedThisCycle = 0
	}
	e.stats.QueueWait.Observe(start - now)
	return start
}

// Keystream exposes the functional keystream, for paths that need a pad
// without timing (e.g. initial memory image encryption).
func (e *Engine) Keystream() *ctr.Keystream { return e.ks }
