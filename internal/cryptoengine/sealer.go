package cryptoengine

import (
	"ctrpred/internal/ctr"
	"ctrpred/internal/stats"
)

// Sealer models a banked, non-pipelined cipher engine in the style of
// in-SRAM AES macros (Sealer): each bank seals or unseals one line at a
// time with a high per-request latency, and throughput comes from bank
// parallelism rather than pipelining. A request is dispatched to the
// bank that frees earliest; the bank is then busy for the full latency,
// so sustained throughput is Banks/LatencyCycles requests per cycle —
// wide but coarse, where the paper's AES pipe is narrow but fine.
//
// Under light load Sealer's higher fixed latency makes counter
// prediction *more* valuable than under the AES pipe; under prediction
// bursts its banks saturate sooner, which is exactly the trade the
// `engines` experiment measures.
type Sealer struct {
	spec  Spec
	ks    *ctr.Keystream
	stats Stats
	// bankFree[i] is the cycle at which bank i accepts its next request.
	bankFree []uint64
	// scratch avoids per-call allocation; Sealer has no batched fast
	// path, so reference mode changes nothing (kept for the interface).
	reference bool
}

var _ EngineModel = (*Sealer)(nil)

// NewSealer builds a sealer model from a (normalized) spec.
func NewSealer(spec Spec, ks *ctr.Keystream) *Sealer {
	spec = spec.Normalized()
	spec.Model = ModelSealer
	s := &Sealer{spec: spec, ks: ks, bankFree: make([]uint64, spec.Banks)}
	s.stats.QueueWait = stats.NewHistogram(0, 1, 2, 4, 8, 16, 32, 64, 128)
	s.stats.Model = ModelSealer
	s.stats.Banks = spec.Banks
	return s
}

// Spec returns the normalized spec the model was built from.
func (s *Sealer) Spec() Spec { return s.spec }

// Stats returns a copy of the accumulated statistics.
func (s *Sealer) Stats() Stats { return s.stats }

// SetReference is a no-op: Sealer's only request path is the scalar one.
func (s *Sealer) SetReference(on bool) { s.reference = on }

// Keystream exposes the functional keystream.
func (s *Sealer) Keystream() *ctr.Keystream { return s.ks }

// reserveBank dispatches a request at cycle now to the earliest-free
// bank and returns the cycle work starts on it.
func (s *Sealer) reserveBank(now uint64) uint64 {
	best := 0
	for i := 1; i < len(s.bankFree); i++ {
		if s.bankFree[i] < s.bankFree[best] {
			best = i
		}
	}
	start := now
	if s.bankFree[best] > start {
		start = s.bankFree[best]
	}
	s.bankFree[best] = start + s.spec.LatencyCycles
	s.stats.QueueWait.Observe(start - now)
	return start
}

func (s *Sealer) schedule(now uint64, class Class) uint64 {
	start := s.reserveBank(now)
	s.stats.Issued[class]++
	if start > now {
		s.stats.StallCycles += start - now
	}
	ready := start + s.spec.LatencyCycles
	if ready > s.stats.LastBusy {
		s.stats.LastBusy = ready
	}
	return ready
}

// ScheduleOnly books one request and returns its ready cycle.
func (s *Sealer) ScheduleOnly(now uint64, class Class) uint64 {
	return s.schedule(now, class)
}

// ComputeInto books one request and writes the (vaddr, seq) pad into dst.
func (s *Sealer) ComputeInto(dst *ctr.Pad, now uint64, vaddr, seq uint64, class Class) uint64 {
	ready := s.schedule(now, class)
	s.ks.PadInto(dst, vaddr, seq)
	return ready
}

// ScheduleGuesses books one prediction per guess across the banks, in
// guess order, and returns the first match plus its ready cycle.
func (s *Sealer) ScheduleGuesses(now uint64, guesses []uint64, trueSeq uint64) (matchIdx int, padReady uint64) {
	matchIdx = -1
	for i, g := range guesses {
		ready := s.schedule(now, ClassPrediction)
		if matchIdx < 0 && g == trueSeq {
			matchIdx = i
			padReady = ready
		}
	}
	return matchIdx, padReady
}

// ComputeGuessesInto is ScheduleGuesses plus materializing the matching
// pad into dst.
func (s *Sealer) ComputeGuessesInto(dst *ctr.Pad, now uint64, vaddr uint64, guesses []uint64, trueSeq uint64) (matchIdx int, padReady uint64) {
	matchIdx, padReady = s.ScheduleGuesses(now, guesses, trueSeq)
	if matchIdx >= 0 {
		s.ks.PadInto(dst, vaddr, trueSeq)
	}
	return matchIdx, padReady
}
