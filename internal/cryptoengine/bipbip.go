package cryptoengine

import (
	"ctrpred/internal/ctr"
	"ctrpred/internal/stats"
)

// BipBip models a very-low-latency tweakable block cipher decrypting on
// fetch (BipBipCache): every demand or writeback request completes a
// fixed handful of cycles after it arrives, with no shared pipeline to
// contend for. Speculative pad requests are accepted for accounting but
// occupy nothing and complete instantly with the rest — when decryption
// costs almost nothing, precomputing pads buys almost nothing, which is
// the null hypothesis the `engines` experiment tests prediction against.
type BipBip struct {
	spec      Spec
	ks        *ctr.Keystream
	stats     Stats
	reference bool
}

var _ EngineModel = (*BipBip)(nil)

// NewBipBip builds a bipbip model from a (normalized) spec.
func NewBipBip(spec Spec, ks *ctr.Keystream) *BipBip {
	spec = spec.Normalized()
	spec.Model = ModelBipBip
	b := &BipBip{spec: spec, ks: ks}
	b.stats.QueueWait = stats.NewHistogram(0, 1, 2, 4, 8, 16, 32, 64, 128)
	b.stats.Model = ModelBipBip
	return b
}

// Spec returns the normalized spec the model was built from.
func (b *BipBip) Spec() Spec { return b.spec }

// Stats returns a copy of the accumulated statistics.
func (b *BipBip) Stats() Stats { return b.stats }

// SetReference is a no-op: BipBip has no batched fast path to bypass.
func (b *BipBip) SetReference(on bool) { b.reference = on }

// Keystream exposes the functional keystream.
func (b *BipBip) Keystream() *ctr.Keystream { return b.ks }

func (b *BipBip) schedule(now uint64, class Class) uint64 {
	b.stats.Issued[class]++
	b.stats.QueueWait.Observe(0)
	ready := now + b.spec.LatencyCycles
	if ready > b.stats.LastBusy {
		b.stats.LastBusy = ready
	}
	return ready
}

// ScheduleOnly books one request; with no contention it is ready a
// fixed LatencyCycles after now.
func (b *BipBip) ScheduleOnly(now uint64, class Class) uint64 {
	return b.schedule(now, class)
}

// ComputeInto books one request and writes the (vaddr, seq) pad into dst.
func (b *BipBip) ComputeInto(dst *ctr.Pad, now uint64, vaddr, seq uint64, class Class) uint64 {
	ready := b.schedule(now, class)
	b.ks.PadInto(dst, vaddr, seq)
	return ready
}

// ScheduleGuesses accepts the speculative burst but treats it as free:
// the guesses are counted (Issued, Bypassed) yet occupy no unit, and a
// match is ready after the fixed latency just like a demand request.
func (b *BipBip) ScheduleGuesses(now uint64, guesses []uint64, trueSeq uint64) (matchIdx int, padReady uint64) {
	matchIdx = -1
	n := uint64(len(guesses))
	if n == 0 {
		return -1, 0
	}
	b.stats.Issued[ClassPrediction] += n
	b.stats.Bypassed += n
	b.stats.QueueWait.ObserveRange(0, n)
	ready := now + b.spec.LatencyCycles
	if ready > b.stats.LastBusy {
		b.stats.LastBusy = ready
	}
	for i, g := range guesses {
		if g == trueSeq {
			return i, ready
		}
	}
	return -1, 0
}

// ComputeGuessesInto is ScheduleGuesses plus materializing the matching
// pad into dst.
func (b *BipBip) ComputeGuessesInto(dst *ctr.Pad, now uint64, vaddr uint64, guesses []uint64, trueSeq uint64) (matchIdx int, padReady uint64) {
	matchIdx, padReady = b.ScheduleGuesses(now, guesses, trueSeq)
	if matchIdx >= 0 {
		b.ks.PadInto(dst, vaddr, trueSeq)
	}
	return matchIdx, padReady
}
