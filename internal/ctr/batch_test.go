package ctr

import (
	"testing"

	"ctrpred/internal/rng"
)

// TestPadIntoMatchesPad pins the pointer-receiver fast path to the
// by-value API over random addresses and counters.
func TestPadIntoMatchesPad(t *testing.T) {
	ks := NewKeystream([32]byte{1, 2, 3})
	r := rng.New(99)
	for n := 0; n < 2000; n++ {
		vaddr := (r.Uint64() % (1 << 40)) &^ uint64(LineSize-1)
		seq := r.Uint64()
		var got Pad
		ks.PadInto(&got, vaddr, seq)
		if want := ks.Pad(vaddr, seq); got != want {
			t.Fatalf("PadInto(%#x, %d) = %x, want %x", vaddr, seq, got, want)
		}
	}
}

// TestPadsIntoMatchesPad checks the bulk API against per-pad generation
// for batch sizes covering a miss's 1–16 candidate counters.
func TestPadsIntoMatchesPad(t *testing.T) {
	ks := NewKeystream([32]byte{7})
	r := rng.New(5)
	for _, batch := range []int{0, 1, 2, 6, 12, 16} {
		vaddr := (r.Uint64() % (1 << 40)) &^ uint64(LineSize-1)
		seqs := make([]uint64, batch)
		for i := range seqs {
			seqs[i] = r.Uint64()
		}
		dst := make([]Pad, batch)
		ks.PadsInto(dst, vaddr, seqs)
		for i, seq := range seqs {
			if want := ks.Pad(vaddr, seq); dst[i] != want {
				t.Fatalf("batch %d: PadsInto[%d] = %x, want %x", batch, i, dst[i], want)
			}
		}
	}
}

func TestPadsIntoShortDstPanics(t *testing.T) {
	ks := NewKeystream([32]byte{})
	defer func() {
		if recover() == nil {
			t.Fatal("PadsInto with short dst did not panic")
		}
	}()
	ks.PadsInto(make([]Pad, 1), 0, []uint64{1, 2})
}

func TestPadsIntoUnalignedPanics(t *testing.T) {
	ks := NewKeystream([32]byte{})
	defer func() {
		if recover() == nil {
			t.Fatal("PadsInto with unaligned vaddr did not panic")
		}
	}()
	ks.PadsInto(make([]Pad, 1), 8, []uint64{1})
}

// TestEncryptLineIntoMatchesEncryptLine pins the in-place line API.
func TestEncryptLineIntoMatchesEncryptLine(t *testing.T) {
	ks := NewKeystream([32]byte{9})
	var plain Line
	for i := range plain {
		plain[i] = byte(i * 7)
	}
	want := ks.EncryptLine(plain, 64, 11)
	var got Line
	ks.EncryptLineInto(&got, &plain, 64, 11)
	if got != want {
		t.Fatalf("EncryptLineInto = %x, want %x", got, want)
	}
	// In-place: out aliases plain.
	buf := plain
	ks.EncryptLineInto(&buf, &buf, 64, 11)
	if buf != want {
		t.Fatalf("aliased EncryptLineInto = %x, want %x", buf, want)
	}
}

// Allocation-regression guards: the pad hot paths must not allocate.
func TestPadGenerationAllocFree(t *testing.T) {
	ks := NewKeystream([32]byte{3})
	seqs := []uint64{10, 11, 12, 13, 14, 15}
	dst := make([]Pad, len(seqs))
	if n := testing.AllocsPerRun(100, func() {
		ks.PadsInto(dst, 1<<20, seqs)
	}); n != 0 {
		t.Errorf("PadsInto allocates %v times per run, want 0", n)
	}
	var pad Pad
	if n := testing.AllocsPerRun(100, func() {
		ks.PadInto(&pad, 1<<20, 42)
	}); n != 0 {
		t.Errorf("PadInto allocates %v times per run, want 0", n)
	}
	var line Line
	if n := testing.AllocsPerRun(100, func() {
		XORLine(&line, &line, &pad)
	}); n != 0 {
		t.Errorf("XORLine allocates %v times per run, want 0", n)
	}
}

func BenchmarkPadsInto6(b *testing.B) {
	ks := NewKeystream([32]byte{1})
	seqs := []uint64{1, 2, 3, 4, 5, 6}
	dst := make([]Pad, len(seqs))
	b.SetBytes(int64(len(seqs) * LineSize))
	for i := 0; i < b.N; i++ {
		ks.PadsInto(dst, 1<<20, seqs)
	}
}

func BenchmarkPadInto(b *testing.B) {
	ks := NewKeystream([32]byte{1})
	var pad Pad
	b.SetBytes(LineSize)
	for i := 0; i < b.N; i++ {
		ks.PadInto(&pad, 1<<20, uint64(i))
	}
}
