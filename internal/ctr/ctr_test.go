package ctr

import (
	"testing"
	"testing/quick"
)

func testKey() [32]byte {
	var k [32]byte
	for i := range k {
		k[i] = byte(i * 7)
	}
	return k
}

func TestRoundTrip(t *testing.T) {
	ks := NewKeystream(testKey())
	f := func(data [LineSize]byte, page uint32, lineIdx uint8, seq uint64) bool {
		vaddr := uint64(page)<<12 | uint64(lineIdx%128)*LineSize
		c := ks.EncryptLine(Line(data), vaddr, seq)
		p := ks.DecryptLine(c, vaddr, seq)
		return p == Line(data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPadDependsOnAddress(t *testing.T) {
	// Section 4: same seqnum at different addresses must give different
	// pads — this is what makes per-page shared root seqnums safe.
	ks := NewKeystream(testKey())
	p0 := ks.Pad(0x1000, 42)
	p1 := ks.Pad(0x1020, 42)
	if p0 == p1 {
		t.Fatal("pads identical across addresses")
	}
}

func TestPadDependsOnSeq(t *testing.T) {
	ks := NewKeystream(testKey())
	if ks.Pad(0x2000, 1) == ks.Pad(0x2000, 2) {
		t.Fatal("pads identical across sequence numbers")
	}
}

func TestPadDependsOnKey(t *testing.T) {
	k2 := testKey()
	k2[0] ^= 0xff
	if NewKeystream(testKey()).Pad(0, 0) == NewKeystream(k2).Pad(0, 0) {
		t.Fatal("pads identical across keys")
	}
}

func TestPadHalvesDiffer(t *testing.T) {
	// The two 16-byte halves use different address inputs, so they must
	// (overwhelmingly) differ.
	ks := NewKeystream(testKey())
	pad := ks.Pad(0x4000, 7)
	same := true
	for i := 0; i < HalfLine; i++ {
		if pad[i] != pad[HalfLine+i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("pad halves identical")
	}
}

func TestPadDeterministic(t *testing.T) {
	ks := NewKeystream(testKey())
	if ks.Pad(0x8000, 99) != ks.Pad(0x8000, 99) {
		t.Fatal("pad not deterministic")
	}
}

func TestUnalignedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unaligned pad address did not panic")
		}
	}()
	NewKeystream(testKey()).Pad(0x1001, 0)
}

func TestXORLineAliasing(t *testing.T) {
	var l Line
	for i := range l {
		l[i] = byte(i)
	}
	var pad Pad
	for i := range pad {
		pad[i] = 0x5a
	}
	want := l
	XORLine(&want, &l, &pad)
	got := l
	XORLine(&got, &got, &pad) // in place
	if got != want {
		t.Fatal("aliased XOR differs")
	}
}

func TestCiphertextHidesPlaintext(t *testing.T) {
	// Weak smoke test of confidentiality: encrypting the zero line should
	// not produce a low-entropy ciphertext (it equals the pad).
	ks := NewKeystream(testKey())
	c := ks.EncryptLine(Line{}, 0x3000, 5)
	zeros := 0
	for _, b := range c {
		if b == 0 {
			zeros++
		}
	}
	if zeros > LineSize/4 {
		t.Fatalf("ciphertext of zero line has %d zero bytes", zeros)
	}
}

func TestPadTracker(t *testing.T) {
	var tr PadTracker
	if !tr.RecordEncrypt(0x1000, 1) {
		t.Fatal("fresh pair reported as reuse")
	}
	if !tr.RecordEncrypt(0x1000, 2) {
		t.Fatal("fresh seq reported as reuse")
	}
	if !tr.RecordEncrypt(0x1020, 1) {
		t.Fatal("fresh addr reported as reuse")
	}
	if tr.RecordEncrypt(0x1000, 1) {
		t.Fatal("reuse not detected")
	}
	if tr.Violations != 1 || tr.Encryptions != 4 {
		t.Fatalf("violations=%d encryptions=%d", tr.Violations, tr.Encryptions)
	}
}

func BenchmarkPad(b *testing.B) {
	ks := NewKeystream(testKey())
	b.SetBytes(LineSize)
	for i := 0; i < b.N; i++ {
		_ = ks.Pad(0x10000, uint64(i))
	}
}

func BenchmarkEncryptLine(b *testing.B) {
	ks := NewKeystream(testKey())
	var l Line
	b.SetBytes(LineSize)
	for i := 0; i < b.N; i++ {
		l = ks.EncryptLine(l, 0x20000, uint64(i))
	}
}

// TestPadKeystreamStatistics is a smoke test of the pseudorandomness the
// security argument rests on (the OTP must be computationally
// indistinguishable from random): monobit and byte-frequency checks over
// a long concatenated keystream. These catch implementation blunders
// (e.g. a constant half-pad), not cryptographic weaknesses.
func TestPadKeystreamStatistics(t *testing.T) {
	ks := NewKeystream(testKey())
	const pads = 2048
	ones := 0
	var byteCount [256]int
	for i := 0; i < pads; i++ {
		pad := ks.Pad(0x100000+uint64(i)*LineSize, 7)
		for _, b := range pad {
			byteCount[b]++
			for x := b; x != 0; x &= x - 1 {
				ones++
			}
		}
	}
	totalBits := pads * LineSize * 8
	frac := float64(ones) / float64(totalBits)
	if frac < 0.49 || frac > 0.51 {
		t.Fatalf("monobit: %.4f ones, want ≈0.5", frac)
	}
	// Byte frequencies: expected 256 occurrences each (65536/256); allow
	// a generous ±40% band.
	expected := pads * LineSize / 256
	for v, c := range byteCount {
		if c < expected*6/10 || c > expected*14/10 {
			t.Fatalf("byte %#02x occurs %d times, expected ≈%d", v, c, expected)
		}
	}
}

// TestPadUnlinkability: pads of adjacent counters share no obvious
// structure — flipping the counter's low bit changes about half the pad.
func TestPadUnlinkability(t *testing.T) {
	ks := NewKeystream(testKey())
	diffBits := 0
	const trials = 256
	for i := 0; i < trials; i++ {
		a := ks.Pad(0x200000, uint64(2*i))
		b := ks.Pad(0x200000, uint64(2*i+1))
		for j := range a {
			for x := a[j] ^ b[j]; x != 0; x &= x - 1 {
				diffBits++
			}
		}
	}
	avg := float64(diffBits) / float64(trials) / (LineSize * 8)
	if avg < 0.45 || avg > 0.55 {
		t.Fatalf("adjacent-counter pad difference = %.4f, want ≈0.5", avg)
	}
}

func TestDirectCipherRoundTrip(t *testing.T) {
	d := NewDirectCipher(testKey())
	f := func(data [LineSize]byte, lineIdx uint16) bool {
		vaddr := uint64(lineIdx) * LineSize
		return d.DecryptLine(d.EncryptLine(Line(data), vaddr), vaddr) == Line(data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDirectCipherAddressBound(t *testing.T) {
	d := NewDirectCipher(testKey())
	var p Line
	p[0] = 1
	if d.EncryptLine(p, 0x1000) == d.EncryptLine(p, 0x1020) {
		t.Fatal("direct ciphertext identical across addresses")
	}
}

func TestDirectCipherDeterministicLeak(t *testing.T) {
	// The weakness counter mode fixes: re-encrypting the same plaintext at
	// the same address yields the same ciphertext (version equality leaks),
	// whereas counter mode with an advanced counter does not.
	dc := NewDirectCipher(testKey())
	ks := NewKeystream(testKey())
	var p Line
	p[3] = 9
	if dc.EncryptLine(p, 0x2000) != dc.EncryptLine(p, 0x2000) {
		t.Fatal("direct encryption not deterministic (model broken)")
	}
	if ks.EncryptLine(p, 0x2000, 5) == ks.EncryptLine(p, 0x2000, 6) {
		t.Fatal("counter mode leaked version equality")
	}
}

func TestDirectCipherUnalignedPanics(t *testing.T) {
	d := NewDirectCipher(testKey())
	for _, f := range []func(){
		func() { d.EncryptLine(Line{}, 0x1001) },
		func() { d.DecryptLine(Line{}, 0x1001) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("unaligned direct cipher call did not panic")
				}
			}()
			f()
		}()
	}
}
