// Package ctr implements the counter-mode memory encryption scheme of the
// paper (Section 2): every 32-byte memory block is XORed with a one-time
// pad (OTP) derived as
//
//	OTP = AES256(key, vaddr‖seq) ‖ AES256(key, (vaddr+16)‖seq)
//
// where vaddr is the 64-bit virtual address of each 16-byte half line and
// seq is the block's 64-bit sequence number (counter). Because the address
// participates in the pad, two blocks of the same page may share a
// sequence number without weakening security (Section 4); because the
// sequence number participates, re-encrypting a block after a dirty
// eviction with an incremented counter yields an unrelated pad.
//
// Encryption and decryption are the same operation (XOR with the pad), so
// DecryptLine is provided only as a readable alias.
package ctr

import (
	"encoding/binary"

	"ctrpred/internal/aes"
)

// LineSize is the memory block (cache line) size in bytes, fixed at 32 to
// match the paper's Table 1.
const LineSize = 32

// HalfLine is the AES block granularity of pad generation.
const HalfLine = aes.BlockSize

// Pad is the one-time pad covering a full cache line.
type Pad [LineSize]byte

// Line is a plaintext or ciphertext cache line.
type Line [LineSize]byte

// Keystream derives one-time pads from a secret AES-256 key. It is the
// functional model of the paper's crypto engine datapath (Figure 3); the
// pipeline timing model lives in package cryptoengine.
type Keystream struct {
	cipher *aes.Cipher
	key    [32]byte
}

// NewKeystream creates a Keystream for the given 256-bit key.
func NewKeystream(key [32]byte) *Keystream {
	return &Keystream{cipher: aes.Must256(key), key: key}
}

// DirectCipher derives the direct-encryption cipher sharing this
// keystream's key, for the direct-mode baseline.
func (k *Keystream) DirectCipher() *DirectCipher {
	return NewDirectCipher(k.key)
}

// Pad computes the OTP for the line whose first byte lives at virtual
// address vaddr (which must be line-aligned) under sequence number seq.
func (k *Keystream) Pad(vaddr, seq uint64) Pad {
	var pad Pad
	k.PadInto(&pad, vaddr, seq)
	return pad
}

// PadInto computes the OTP for the line at line-aligned vaddr under seq
// directly into *dst. It is the allocation-free core of Pad: the two
// counter blocks (vaddr‖seq and vaddr+16‖seq) are assembled as state
// words and run through the cipher's word-level path, so the whole pad
// stays in registers until the final store.
func (k *Keystream) PadInto(dst *Pad, vaddr, seq uint64) {
	if vaddr%LineSize != 0 {
		panic("ctr: pad address not line-aligned")
	}
	seqHi, seqLo := uint32(seq>>32), uint32(seq)
	a1 := vaddr + HalfLine
	// The two half-line blocks are independent, so they run through the
	// interleaved two-block path in one fused pass.
	w0, w1, w2, w3, x0, x1, x2, x3 := k.cipher.EncryptWords2(
		uint32(vaddr>>32), uint32(vaddr), seqHi, seqLo,
		uint32(a1>>32), uint32(a1), seqHi, seqLo)
	binary.BigEndian.PutUint32(dst[0:4], w0)
	binary.BigEndian.PutUint32(dst[4:8], w1)
	binary.BigEndian.PutUint32(dst[8:12], w2)
	binary.BigEndian.PutUint32(dst[12:16], w3)
	binary.BigEndian.PutUint32(dst[16:20], x0)
	binary.BigEndian.PutUint32(dst[20:24], x1)
	binary.BigEndian.PutUint32(dst[24:28], x2)
	binary.BigEndian.PutUint32(dst[28:32], x3)
}

// PadsInto computes one pad per sequence number in seqs, all for the
// line at vaddr, into dst[:len(seqs)] — the bulk API behind speculative
// precomputation, where one miss wants pads for every guessed counter.
// The address half of the counter blocks is assembled once and shared
// across the batch; nothing is allocated. It panics if dst is shorter
// than seqs.
func (k *Keystream) PadsInto(dst []Pad, vaddr uint64, seqs []uint64) {
	if vaddr%LineSize != 0 {
		panic("ctr: pad address not line-aligned")
	}
	if len(dst) < len(seqs) {
		panic("ctr: PadsInto destination shorter than sequence list")
	}
	// Shared counter-block setup: both halves' address words are fixed
	// for the whole batch; only the sequence words vary per pad.
	a0hi, a0lo := uint32(vaddr>>32), uint32(vaddr)
	a1 := vaddr + HalfLine
	a1hi, a1lo := uint32(a1>>32), uint32(a1)
	for i, seq := range seqs {
		seqHi, seqLo := uint32(seq>>32), uint32(seq)
		p := &dst[i]
		w0, w1, w2, w3, x0, x1, x2, x3 := k.cipher.EncryptWords2(
			a0hi, a0lo, seqHi, seqLo,
			a1hi, a1lo, seqHi, seqLo)
		binary.BigEndian.PutUint32(p[0:4], w0)
		binary.BigEndian.PutUint32(p[4:8], w1)
		binary.BigEndian.PutUint32(p[8:12], w2)
		binary.BigEndian.PutUint32(p[12:16], w3)
		binary.BigEndian.PutUint32(p[16:20], x0)
		binary.BigEndian.PutUint32(p[20:24], x1)
		binary.BigEndian.PutUint32(p[24:28], x2)
		binary.BigEndian.PutUint32(p[28:32], x3)
	}
}

// XORLine XORs line with pad, writing into dst. dst may alias line.
func XORLine(dst *Line, line *Line, pad *Pad) {
	for i := range dst {
		dst[i] = line[i] ^ pad[i]
	}
}

// EncryptLine returns the ciphertext of plain at vaddr under seq.
func (k *Keystream) EncryptLine(plain Line, vaddr, seq uint64) Line {
	var out Line
	k.EncryptLineInto(&out, &plain, vaddr, seq)
	return out
}

// EncryptLineInto encrypts *plain at vaddr under seq into *out without
// copying lines by value. out may alias plain.
func (k *Keystream) EncryptLineInto(out *Line, plain *Line, vaddr, seq uint64) {
	var pad Pad
	k.PadInto(&pad, vaddr, seq)
	XORLine(out, plain, &pad)
}

// DecryptLine returns the plaintext of cipher at vaddr under seq. Counter
// mode is symmetric: this is EncryptLine under another name, kept separate
// so call sites read correctly.
func (k *Keystream) DecryptLine(cipher Line, vaddr, seq uint64) Line {
	return k.EncryptLine(cipher, vaddr, seq)
}

// PadTracker is a paranoia aid used by tests and by the simulator's
// self-check mode: it records every (vaddr, seq) pair used to *encrypt*
// data and reports reuse, which would be a one-time-pad violation. The
// zero value is ready to use.
//
// RecordEncrypt sits on the controller's encrypt path (every
// materialization and dirty eviction), so the set is open-addressed with
// linear probing rather than a Go map: the 128-bit key hashes with two
// multiplies and probes a flat slot array, with no per-insert
// allocation or map-bucket overhead.
type PadTracker struct {
	slots []padID // power-of-two open-addressed table
	state []uint8 // 1 = slot occupied
	count int
	// base is an optional frozen tracker whose pairs count as already
	// used: machines running from a pre-aged template share the
	// template's (vaddr, seq) set read-only instead of re-recording it.
	base *PadTracker
	// Violations counts encryptions that reused a (vaddr, seq) pair.
	Violations uint64
	// Encryptions counts all recorded encryptions.
	Encryptions uint64
}

type padID struct{ vaddr, seq uint64 }

// padHash mixes the (vaddr, seq) pair into a table index seed
// (splitmix64-style finalizer over a golden-ratio fold).
func padHash(vaddr, seq uint64) uint64 {
	x := vaddr*0x9e3779b97f4a7c15 + seq
	x ^= x >> 32
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 29
	return x
}

// grow doubles the table (or seeds it) and reinserts every occupied slot.
func (t *PadTracker) grow() {
	newLen := 1024
	if len(t.slots) > 0 {
		newLen = len(t.slots) * 2
	}
	oldSlots, oldState := t.slots, t.state
	t.slots = make([]padID, newLen)
	t.state = make([]uint8, newLen)
	mask := uint64(newLen - 1)
	for i, st := range oldState {
		if st == 0 {
			continue
		}
		id := oldSlots[i]
		h := padHash(id.vaddr, id.seq) & mask
		for t.state[h] != 0 {
			h = (h + 1) & mask
		}
		t.slots[h] = id
		t.state[h] = 1
	}
}

// SetBase installs a frozen tracker whose recorded pairs count as
// already-used pads. The base must not be mutated afterwards; callers
// record into this tracker only. Encryptions that hit a base pair are
// violations, exactly as if the base's history had been recorded here.
func (t *PadTracker) SetBase(base *PadTracker) { t.base = base }

// contains reports whether (vaddr, seq) has been recorded, without
// consulting the base or mutating anything.
func (t *PadTracker) contains(vaddr, seq uint64) bool {
	if len(t.slots) == 0 {
		return false
	}
	mask := uint64(len(t.slots) - 1)
	h := padHash(vaddr, seq) & mask
	for t.state[h] != 0 {
		if t.slots[h].vaddr == vaddr && t.slots[h].seq == seq {
			return true
		}
		h = (h + 1) & mask
	}
	return false
}

// RecordEncrypt notes that (vaddr, seq) was used to encrypt a new data
// version and reports whether the pair was fresh.
func (t *PadTracker) RecordEncrypt(vaddr, seq uint64) bool {
	t.Encryptions++
	if t.base != nil && t.base.contains(vaddr, seq) {
		t.Violations++
		return false
	}
	if t.count*4 >= len(t.slots)*3 { // keep load factor ≤ 3/4
		t.grow()
	}
	mask := uint64(len(t.slots) - 1)
	h := padHash(vaddr, seq) & mask
	for t.state[h] != 0 {
		if t.slots[h].vaddr == vaddr && t.slots[h].seq == seq {
			t.Violations++
			return false
		}
		h = (h + 1) & mask
	}
	t.slots[h] = padID{vaddr, seq}
	t.state[h] = 1
	t.count++
	return true
}

// DirectCipher implements the direct memory encryption the paper
// contrasts counter mode against (Section 2.2's "other regular block
// cipher based direct memory encryption schemes that serialize line
// fetching and decryption"): each 16-byte half line is encrypted with
// AES under an address-derived tweak (XEX construction), with no
// counters at all.
//
// Two consequences, both demonstrated in the tests: decryption cannot
// begin until the ciphertext arrives (no precomputation is possible —
// the latency motivation for counter mode), and encryption is
// deterministic per address, so rewriting a line with the same data
// produces the same ciphertext (an information leak counter mode's
// fresh counters prevent).
type DirectCipher struct {
	cipher *aes.Cipher
}

// NewDirectCipher creates a DirectCipher for the given 256-bit key.
func NewDirectCipher(key [32]byte) *DirectCipher {
	return &DirectCipher{cipher: aes.Must256(key)}
}

// tweak derives the per-half-line masking block from the address.
func (d *DirectCipher) tweak(vaddr uint64) [aes.BlockSize]byte {
	var in, out [aes.BlockSize]byte
	binary.BigEndian.PutUint64(in[0:8], vaddr)
	binary.BigEndian.PutUint64(in[8:16], ^vaddr)
	d.cipher.Encrypt(out[:], in[:])
	return out
}

// EncryptLine encrypts plain at line-aligned vaddr.
func (d *DirectCipher) EncryptLine(plain Line, vaddr uint64) Line {
	if vaddr%LineSize != 0 {
		panic("ctr: direct encryption address not line-aligned")
	}
	var out Line
	for half := 0; half < LineSize/HalfLine; half++ {
		tw := d.tweak(vaddr + uint64(half*HalfLine))
		var block [aes.BlockSize]byte
		for i := range block {
			block[i] = plain[half*HalfLine+i] ^ tw[i]
		}
		d.cipher.Encrypt(block[:], block[:])
		for i := range block {
			out[half*HalfLine+i] = block[i] ^ tw[i]
		}
	}
	return out
}

// DecryptLine inverts EncryptLine.
func (d *DirectCipher) DecryptLine(cipherLine Line, vaddr uint64) Line {
	if vaddr%LineSize != 0 {
		panic("ctr: direct decryption address not line-aligned")
	}
	var out Line
	for half := 0; half < LineSize/HalfLine; half++ {
		tw := d.tweak(vaddr + uint64(half*HalfLine))
		var block [aes.BlockSize]byte
		for i := range block {
			block[i] = cipherLine[half*HalfLine+i] ^ tw[i]
		}
		d.cipher.Decrypt(block[:], block[:])
		for i := range block {
			out[half*HalfLine+i] = block[i] ^ tw[i]
		}
	}
	return out
}
