// Package memsys assembles the on-chip memory hierarchy of Table 1 — the
// 8 KB direct-mapped L1 instruction and data caches, the unified 4-way L2
// (256 KB or 1 MB), and the TLBs — on top of the secure memory controller
// (package secmem). Every L2 miss becomes an encrypted fetch; every L2
// dirty eviction becomes a counter-incrementing encrypted writeback.
//
// The L1 data cache is write-through (no-dirty) so that modified state is
// owned by the L2, and the hierarchy is inclusive: an L2 eviction
// back-invalidates the L1s. Dirty L2 lines are flushed (written back but
// kept resident) every FlushInterval cycles, modeling the paper's
// OS-induced flush every 25M cycles.
package memsys

import (
	"ctrpred/internal/cache"
	"ctrpred/internal/secmem"
	"ctrpred/internal/stats"
	"ctrpred/internal/tlb"
)

// Config sizes the hierarchy. DefaultConfig returns Table 1's values.
type Config struct {
	LineSize       int
	L1ISize        int
	L1DSize        int
	L1Latency      uint64
	L2Size         int
	L2Ways         int
	L2Latency      uint64
	TLBEntries     int
	TLBWays        int
	TLBMissPenalty uint64
	// FlushInterval flushes dirty L2 lines every so many cycles
	// (25,000,000 in the paper; scaled down with the instruction counts
	// in the experiments). 0 disables.
	FlushInterval uint64
	// PrefetchDegree enables next-line prefetch with pre-decryption
	// (Rogers/Solihin/Prvulovic, the paper's Section 9.2): an L2 miss at
	// line X also fetches-and-decrypts lines X+1 … X+degree into the L2.
	// Orthogonal to counter prediction; the two compose into the hybrid
	// the paper suggests. 0 disables.
	PrefetchDegree int
	// ContextSwitchInterval models multiprogramming: every so many
	// cycles another process runs, so when this process resumes its
	// caches, TLBs and sequence-number cache are cold. The per-page root
	// sequence numbers and other predictor state are part of the saved
	// process security context (Section 2.2's assumptions), so
	// prediction survives a switch that destroys cached counters — the
	// asymmetry the paper points out. 0 disables.
	ContextSwitchInterval uint64
}

// DefaultConfig returns the Table 1 hierarchy with the 256 KB L2.
func DefaultConfig() Config {
	return Config{
		LineSize:       32,
		L1ISize:        8 << 10,
		L1DSize:        8 << 10,
		L1Latency:      1,
		L2Size:         256 << 10,
		L2Ways:         4,
		L2Latency:      4,
		TLBEntries:     256,
		TLBWays:        4,
		TLBMissPenalty: 30,
		FlushInterval:  25_000_000,
	}
}

// WithL2 returns the config with the given L2 size, adjusting the L2
// latency as Table 1 does (4 cycles at 256 KB, 8 cycles at 1 MB).
func (c Config) WithL2(size int) Config {
	c.L2Size = size
	if size >= 1<<20 {
		c.L2Latency = 8
	} else {
		c.L2Latency = 4
	}
	return c
}

// Stats aggregates hierarchy-level counters beyond the per-cache stats.
type Stats struct {
	DataAccesses  uint64
	InstrFetches  uint64
	L2Writebacks    uint64 // dirty L2 evictions (capacity/conflict)
	FlushedLines    uint64 // dirty lines written back by periodic flushes
	Flushes         uint64
	BackInvalL1     uint64
	ContextSwitches uint64
	Prefetches      uint64 // lines fetched speculatively (pre-decrypted)
}

// AddTo registers the hierarchy's counters into a metrics snapshot node.
func (s Stats) AddTo(n *stats.Snapshot) {
	n.Counter("data_accesses", s.DataAccesses)
	n.Counter("instr_fetches", s.InstrFetches)
	n.Counter("l2_writebacks", s.L2Writebacks)
	n.Counter("flushed_lines", s.FlushedLines)
	n.Counter("flushes", s.Flushes)
	n.Counter("back_inval_l1", s.BackInvalL1)
	n.Counter("context_switches", s.ContextSwitches)
	n.Counter("prefetches", s.Prefetches)
}

// System is the assembled hierarchy.
type System struct {
	cfg  Config
	l1i  *cache.Cache
	l1d  *cache.Cache
	l2   *cache.Cache
	itlb *tlb.TLB
	dtlb *tlb.TLB
	ctrl *secmem.Controller

	lastFlush  uint64
	lastSwitch uint64
	// lastIssue enforces in-order issue into the memory system: the
	// downstream resource models (DRAM channels, crypto-engine pipeline)
	// reserve capacity in arrival order, so accesses are presented with
	// monotonically non-decreasing start times even when the out-of-order
	// core discovers them out of order.
	lastIssue uint64
	// refSink, when set, observes every data reference (trace recording).
	refSink func(addr uint64, write bool)
	stats   Stats
}

// New wires the hierarchy onto a secure memory controller.
func New(cfg Config, ctrl *secmem.Controller) *System {
	s := &System{cfg: cfg, ctrl: ctrl}
	s.l1i = cache.New(cache.Config{Name: "L1I", SizeBytes: cfg.L1ISize, LineSize: cfg.LineSize, Ways: 1, HitLatency: cfg.L1Latency})
	s.l1d = cache.New(cache.Config{Name: "L1D", SizeBytes: cfg.L1DSize, LineSize: cfg.LineSize, Ways: 1, HitLatency: cfg.L1Latency, WriteThrough: true})
	s.l2 = cache.New(cache.Config{Name: "L2", SizeBytes: cfg.L2Size, LineSize: cfg.LineSize, Ways: cfg.L2Ways, HitLatency: cfg.L2Latency})
	s.itlb = tlb.New(tlb.Config{Name: "ITLB", Entries: cfg.TLBEntries, Ways: cfg.TLBWays, MissPenalty: cfg.TLBMissPenalty})
	s.dtlb = tlb.New(tlb.Config{Name: "DTLB", Entries: cfg.TLBEntries, Ways: cfg.TLBWays, MissPenalty: cfg.TLBMissPenalty})
	return s
}

// Config returns the hierarchy configuration.
func (s *System) Config() Config { return s.cfg }

// Controller returns the secure memory controller.
func (s *System) Controller() *secmem.Controller { return s.ctrl }

// Caches returns the three caches for statistics reporting.
func (s *System) Caches() (l1i, l1d, l2 *cache.Cache) { return s.l1i, s.l1d, s.l2 }

// TLBs returns the two TLBs for statistics reporting.
func (s *System) TLBs() (itlb, dtlb *tlb.TLB) { return s.itlb, s.dtlb }

// Stats returns a copy of the hierarchy statistics.
func (s *System) Stats() Stats { return s.stats }

// SetReferenceSink registers fn to observe every data reference as it
// enters the hierarchy — how cmd/tracegen records live workload traces.
func (s *System) SetReferenceSink(fn func(addr uint64, write bool)) {
	s.refSink = fn
}

// handleL2Eviction writes back a displaced dirty line and maintains
// inclusion by removing the line from the L1s.
func (s *System) handleL2Eviction(now uint64, ev cache.Eviction) {
	if !ev.Valid {
		return
	}
	if p, _ := s.l1d.Invalidate(ev.Addr); p {
		s.stats.BackInvalL1++
	}
	if p, _ := s.l1i.Invalidate(ev.Addr); p {
		s.stats.BackInvalL1++
	}
	if ev.Dirty {
		s.stats.L2Writebacks++
		s.ctrl.EvictLine(now, ev.Addr)
	}
}

// accessL2 runs an access through L2 and, on a miss, the encrypted fetch;
// it returns the completion cycle of the access that started at now.
func (s *System) accessL2(now uint64, addr uint64, write bool) uint64 {
	hit, ev := s.l2.Access(addr, write)
	s.handleL2Eviction(now, ev)
	if hit {
		return now + s.cfg.L2Latency
	}
	res := s.ctrl.FetchLine(now+s.cfg.L2Latency, addr)
	s.prefetchAfterMiss(now, addr)
	return res.Done
}

// prefetchAfterMiss issues next-line prefetches with pre-decryption: the
// fetched lines fill the L2 (possibly polluting it — the hazard the paper
// notes) and their pads are computed off the critical path.
func (s *System) prefetchAfterMiss(now uint64, addr uint64) {
	for d := 1; d <= s.cfg.PrefetchDegree; d++ {
		next := (addr &^ uint64(s.cfg.LineSize-1)) + uint64(d*s.cfg.LineSize)
		if s.l2.Probe(next) {
			continue
		}
		s.stats.Prefetches++
		_, ev := s.l2.Access(next, false)
		s.handleL2Eviction(now, ev)
		s.ctrl.FetchLine(now+s.cfg.L2Latency, next)
	}
}

// Access performs a data access (load or store) beginning at cycle now
// and returns its completion cycle. Stores are posted: the returned cycle
// is when the datum is globally visible, but a core may retire the store
// earlier; callers decide which latency to charge.
func (s *System) Access(now uint64, addr uint64, write bool) uint64 {
	s.stats.DataAccesses++
	if s.refSink != nil {
		s.refSink(addr, write)
	}
	now = s.inOrder(now)
	s.MaybeFlush(now)
	s.maybeContextSwitch(now)
	t := now + s.dtlb.Lookup(addr)
	l1Hit, _ := s.l1d.Access(addr, write) // write-through: evictions never dirty
	if l1Hit && !write {
		return t + s.cfg.L1Latency
	}
	// Loads that miss L1, and every store (write-through), proceed to L2.
	return s.accessL2(t+s.cfg.L1Latency, addr, write)
}

// FetchInstr performs an instruction fetch of the line containing pc.
func (s *System) FetchInstr(now uint64, pc uint64) uint64 {
	s.stats.InstrFetches++
	now = s.inOrder(now)
	s.maybeContextSwitch(now)
	t := now + s.itlb.Lookup(pc)
	hit, _ := s.l1i.Access(pc, false)
	if hit {
		return t + s.cfg.L1Latency
	}
	return s.accessL2(t+s.cfg.L1Latency, pc, false)
}

// inOrder clamps an access start time to the latest start time issued.
func (s *System) inOrder(now uint64) uint64 {
	if now < s.lastIssue {
		return s.lastIssue
	}
	s.lastIssue = now
	return now
}

// MaybeFlush writes back all dirty L2 lines if FlushInterval has elapsed,
// keeping them resident but clean.
func (s *System) MaybeFlush(now uint64) {
	if s.cfg.FlushInterval == 0 || now < s.lastFlush || now-s.lastFlush < s.cfg.FlushInterval {
		return
	}
	s.lastFlush = now
	s.stats.Flushes++
	n := s.l2.FlushDirty(func(lineAddr uint64) {
		s.ctrl.EvictLine(now, lineAddr)
	})
	s.stats.FlushedLines += uint64(n)
}

// maybeContextSwitch evicts this process's on-chip state when its
// timeslice boundary passes: dirty data is written back (advancing
// counters), caches, TLBs and the sequence-number cache are invalidated.
func (s *System) maybeContextSwitch(now uint64) {
	if s.cfg.ContextSwitchInterval == 0 || now < s.lastSwitch ||
		now-s.lastSwitch < s.cfg.ContextSwitchInterval {
		return
	}
	s.lastSwitch = now
	s.ContextSwitch(now)
}

// ContextSwitch applies the timeslice-boundary disturbance immediately:
// dirty data is written back (advancing counters), and caches, TLBs and
// the sequence-number cache are invalidated — the state this process
// finds when it is switched back in after another process used the
// machine. maybeContextSwitch calls it on the periodic interval;
// interleaving schedulers (internal/tenancy) call it directly at their
// own slice boundaries.
func (s *System) ContextSwitch(now uint64) {
	s.stats.ContextSwitches++
	s.l2.FlushDirty(func(lineAddr uint64) {
		s.ctrl.EvictLine(now, lineAddr)
	})
	s.l1i.InvalidateAll()
	s.l1d.InvalidateAll()
	s.l2.InvalidateAll()
	s.itlb.FlushAll()
	s.dtlb.FlushAll()
	if sc := s.ctrl.SeqCache(); sc != nil {
		sc.InvalidateAll()
	}
}

// DrainDirty writes back every dirty L2 line immediately (end of a
// simulation region), without counting as a periodic flush.
func (s *System) DrainDirty(now uint64) int {
	return s.l2.FlushDirty(func(lineAddr uint64) {
		s.ctrl.EvictLine(now, lineAddr)
	})
}
