package memsys

import (
	"testing"

	"ctrpred/internal/cryptoengine"
	"ctrpred/internal/ctr"
	"ctrpred/internal/dram"
	"ctrpred/internal/mem"
	"ctrpred/internal/predictor"
	"ctrpred/internal/secmem"
	"ctrpred/internal/seqcache"
)

func newSys(t *testing.T, cfg Config, scheme predictor.Scheme) (*System, *mem.Memory) {
	t.Helper()
	var key [32]byte
	key[0] = 7
	image := mem.New()
	d := dram.New(dram.DefaultConfig())
	e := cryptoengine.New(cryptoengine.DefaultConfig(), ctr.NewKeystream(key))
	p := predictor.New(predictor.DefaultConfig(scheme))
	ctrl := secmem.New(secmem.DefaultConfig(), d, e, p, nil, image)
	return New(cfg, ctrl), image
}

func smallCfg() Config {
	cfg := DefaultConfig()
	cfg.L1ISize = 512
	cfg.L1DSize = 512
	cfg.L2Size = 4 << 10
	cfg.FlushInterval = 0
	return cfg
}

func TestL1HitFast(t *testing.T) {
	s, _ := newSys(t, smallCfg(), predictor.SchemeRegular)
	s.Access(0, 0x1000, false) // cold: TLB miss + full path
	done := s.Access(10000, 0x1000, false)
	if done != 10000+s.Config().L1Latency {
		t.Fatalf("L1 hit done = %d, want %d", done, 10000+s.Config().L1Latency)
	}
}

func TestL2HitLatency(t *testing.T) {
	s, _ := newSys(t, smallCfg(), predictor.SchemeRegular)
	s.Access(0, 0x1000, false)
	// Evict from tiny L1 (512 B direct-mapped: conflicting address) but
	// keep in L2.
	s.Access(5000, 0x1000+512, false)
	done := s.Access(10000, 0x1000, false)
	want := uint64(10000) + s.Config().L1Latency + s.Config().L2Latency
	if done != want {
		t.Fatalf("L2 hit done = %d, want %d", done, want)
	}
}

func TestMissGoesThroughDecryption(t *testing.T) {
	s, _ := newSys(t, smallCfg(), predictor.SchemeNone)
	done := s.Access(0, 0x2000, false)
	// Baseline: counter fetch + 96-cycle pad + line fetch, far above 100.
	if done < 100 {
		t.Fatalf("cold miss done = %d, implausibly fast", done)
	}
	if s.Controller().Stats().Fetches != 1 {
		t.Fatal("controller saw no fetch")
	}
}

func TestStoreMakesL2Dirty(t *testing.T) {
	s, image := newSys(t, smallCfg(), predictor.SchemeRegular)
	image.Store(0x3000, 8, 42)
	s.Access(0, 0x3000, true)
	_, _, l2 := s.Caches()
	if l2.DirtyLines() != 1 {
		t.Fatalf("dirty L2 lines = %d, want 1", l2.DirtyLines())
	}
	_, l1d, _ := s.Caches()
	if l1d.DirtyLines() != 0 {
		t.Fatal("write-through L1D has dirty lines")
	}
}

func TestEvictionWritesBack(t *testing.T) {
	s, image := newSys(t, smallCfg(), predictor.SchemeRegular)
	image.Store(0x4000, 8, 1)
	s.Access(0, 0x4000, true)
	seqBefore := s.Controller().Seq(0x4000)
	// Blow the 4 KB L2 (4-way, 32 sets): walk 8 KB of conflicting lines.
	for i := uint64(1); i <= 256; i++ {
		s.Access(1000*i, 0x4000+i*4096, false)
	}
	if got := s.Controller().Seq(0x4000); got != seqBefore+1 {
		t.Fatalf("counter after eviction = %d, want %d", got, seqBefore+1)
	}
	if s.Stats().L2Writebacks == 0 {
		t.Fatal("no L2 writebacks recorded")
	}
}

func TestInclusionBackInvalidatesL1(t *testing.T) {
	s, _ := newSys(t, smallCfg(), predictor.SchemeRegular)
	s.Access(0, 0x5000, false)
	l1i, l1d, _ := s.Caches()
	if !l1d.Probe(0x5000) {
		t.Fatal("line not in L1D after access")
	}
	// Conflict 0x5000 out of the single L2 set it occupies (addresses
	// 1 KB apart share a set: 32 sets × 32 B). Conflicting traffic goes
	// through the I-side so the victim stays resident in L1D — any D-side
	// traffic at these addresses would displace it from the tiny L1 first.
	for i := uint64(1); i <= 4; i++ {
		s.FetchInstr(100*i, 0x5000+i*1024)
	}
	if l1d.Probe(0x5000) {
		t.Fatal("L1D retains line evicted from L2 (inclusion violated)")
	}
	if s.Stats().BackInvalL1 == 0 {
		t.Fatal("no back-invalidations recorded")
	}
	_ = l1i
}

func TestInstrFetchPath(t *testing.T) {
	s, _ := newSys(t, smallCfg(), predictor.SchemeRegular)
	d1 := s.FetchInstr(0, 0x8000)
	if d1 < 100 {
		t.Fatalf("cold I-fetch done = %d, implausibly fast", d1)
	}
	d2 := s.FetchInstr(10000, 0x8008) // same line
	if d2 != 10000+s.Config().L1Latency {
		t.Fatalf("warm I-fetch done = %d", d2)
	}
	if s.Stats().InstrFetches != 2 {
		t.Fatalf("InstrFetches = %d", s.Stats().InstrFetches)
	}
}

func TestPeriodicFlush(t *testing.T) {
	cfg := smallCfg()
	cfg.FlushInterval = 1000
	s, image := newSys(t, cfg, predictor.SchemeRegular)
	image.Store(0x6000, 8, 9)
	s.Access(0, 0x6000, true)
	seqBefore := s.Controller().Seq(0x6000)
	s.Access(5000, 0x7000, false) // crossing the interval triggers a flush
	if s.Stats().Flushes == 0 || s.Stats().FlushedLines == 0 {
		t.Fatalf("stats = %+v, want a flush", s.Stats())
	}
	if got := s.Controller().Seq(0x6000); got != seqBefore+1 {
		t.Fatalf("flush did not advance counter: %d", got)
	}
	// Line remains resident and clean.
	_, _, l2 := s.Caches()
	if !l2.Probe(0x6000) {
		t.Fatal("flushed line evicted")
	}
	if l2.DirtyLines() != 0 {
		t.Fatal("dirty lines remain after flush")
	}
}

func TestDrainDirty(t *testing.T) {
	s, image := newSys(t, smallCfg(), predictor.SchemeRegular)
	image.Store(0x9000, 8, 1)
	s.Access(0, 0x9000, true)
	if n := s.DrainDirty(100); n != 1 {
		t.Fatalf("drained %d lines, want 1", n)
	}
	if s.Stats().Flushes != 0 {
		t.Fatal("drain counted as periodic flush")
	}
}

func TestDataRoundTripThroughEviction(t *testing.T) {
	// End-to-end: store, evict (encrypt), re-fetch (decrypt), verify the
	// self-check stayed silent and the architectural value is intact.
	s, image := newSys(t, smallCfg(), predictor.SchemeContext)
	addr := uint64(0xa000)
	image.Store(addr, 8, 0xfeedface)
	s.Access(0, addr, true)
	for i := uint64(1); i <= 256; i++ {
		s.Access(1000*i, addr+i*4096, false)
	}
	s.Access(10_000_000, addr, false) // re-fetch after eviction
	if got := image.Load(addr, 8); got != 0xfeedface {
		t.Fatalf("architectural value = %#x", got)
	}
	if s.Controller().Stats().SelfCheckFails != 0 {
		t.Fatal("self-check failures")
	}
	if s.Controller().PadViolations() != 0 {
		t.Fatal("pad reuse detected")
	}
}

func TestWithL2(t *testing.T) {
	cfg := DefaultConfig().WithL2(1 << 20)
	if cfg.L2Size != 1<<20 || cfg.L2Latency != 8 {
		t.Fatalf("WithL2(1M) = %+v", cfg)
	}
	cfg = cfg.WithL2(256 << 10)
	if cfg.L2Latency != 4 {
		t.Fatalf("WithL2(256K) latency = %d", cfg.L2Latency)
	}
}

func TestTLBPenaltyApplied(t *testing.T) {
	s, _ := newSys(t, smallCfg(), predictor.SchemeRegular)
	s.Access(0, 0xb000, false)
	// Same page, different (conflicting) line: TLB hit but L1 miss; vs a
	// new page far away: TLB miss adds its penalty.
	samePageDone := s.Access(100000, 0xb200, false) - 100000
	newPageDone := s.Access(200000, 0x100b000, false) - 200000
	if newPageDone <= samePageDone {
		t.Skipf("DRAM state makes comparison unstable: %d vs %d", newPageDone, samePageDone)
	}
}

func TestContextSwitchColdRestart(t *testing.T) {
	cfg := smallCfg()
	cfg.ContextSwitchInterval = 5000
	s, image := newSys(t, cfg, predictor.SchemeRegular)
	image.Store(0x1000, 8, 3)
	s.Access(0, 0x1000, true) // dirty line + warm caches/TLB
	seqBefore := s.Controller().Seq(0x1000)

	s.Access(10_000, 0x2000, false) // crosses the timeslice boundary
	if s.Stats().ContextSwitches != 1 {
		t.Fatalf("switches = %d, want 1", s.Stats().ContextSwitches)
	}
	// Dirty data was written back (counter advanced) and caches are cold.
	if got := s.Controller().Seq(0x1000); got != seqBefore+1 {
		t.Fatalf("counter after switch = %d, want %d", got, seqBefore+1)
	}
	_, l1d, l2 := s.Caches()
	if l1d.Probe(0x1000) || l2.Probe(0x1000) {
		t.Fatal("caches retained lines across a context switch")
	}
	// Data survives the round trip through encrypted RAM.
	s.Access(20_000, 0x1000, false)
	if image.Load(0x1000, 8) != 3 {
		t.Fatal("value lost across context switch")
	}
	if s.Controller().Stats().SelfCheckFails != 0 {
		t.Fatal("self-check failed after context switch")
	}
}

func TestContextSwitchInvalidatesSeqCache(t *testing.T) {
	cfg := smallCfg()
	cfg.ContextSwitchInterval = 5000
	var key [32]byte
	image := mem.New()
	d := dram.New(dram.DefaultConfig())
	e := cryptoengine.New(cryptoengine.DefaultConfig(), ctr.NewKeystream(key))
	p := predictor.New(predictor.DefaultConfig(predictor.SchemeNone))
	sc := seqcache.New(4 << 10)
	ctrl := secmem.New(secmem.DefaultConfig(), d, e, p, sc, image)
	s := New(cfg, ctrl)

	s.Access(0, 0x3000, false)
	if !sc.Lookup(0x3000) {
		t.Fatal("counter not cached after access")
	}
	s.Access(10_000, 0x4000, false) // triggers the switch
	if sc.Lookup(0x3000) {
		t.Fatal("sequence-number cache survived a context switch")
	}
}

func TestPrefetchPreDecryption(t *testing.T) {
	cfg := smallCfg()
	cfg.PrefetchDegree = 1
	s, _ := newSys(t, cfg, predictor.SchemeRegular)
	s.Access(0, 0x1000, false) // miss: fetches 0x1000 and pre-decrypts 0x1020
	if s.Stats().Prefetches != 1 {
		t.Fatalf("prefetches = %d, want 1", s.Stats().Prefetches)
	}
	_, _, l2 := s.Caches()
	if !l2.Probe(0x1020) {
		t.Fatal("next line not prefetched into L2")
	}
	if s.Controller().Stats().Fetches != 2 {
		t.Fatalf("controller fetches = %d, want 2", s.Controller().Stats().Fetches)
	}
	// The demand access to the prefetched line is now an L2 hit.
	done := s.Access(10_000, 0x1020, false)
	if done != 10_000+s.Config().L1Latency+s.Config().L2Latency {
		t.Fatalf("prefetched line not an L2 hit: done=%d", done)
	}
}

func TestPrefetchDisabledByDefault(t *testing.T) {
	s, _ := newSys(t, smallCfg(), predictor.SchemeRegular)
	s.Access(0, 0x1000, false)
	if s.Stats().Prefetches != 0 {
		t.Fatal("prefetches issued with degree 0")
	}
}

func TestStreamingBenefitsFromPrefetch(t *testing.T) {
	run := func(degree int) uint64 {
		cfg := smallCfg()
		cfg.PrefetchDegree = degree
		s, _ := newSys(t, cfg, predictor.SchemeRegular)
		var last uint64
		now := uint64(0)
		for a := uint64(0x100000); a < 0x100000+64<<10; a += 32 {
			last = s.Access(now, a, false)
			now = last + 5
		}
		return last
	}
	if with, without := run(2), run(0); with >= without {
		t.Fatalf("prefetch did not speed a stream: %d vs %d", with, without)
	}
}
