package tenancy

import (
	"context"
	"fmt"

	"ctrpred/internal/sim"
	"ctrpred/internal/stats"
)

// Tenant is one tenant of a scenario: a benchmark and the full machine
// configuration it runs under. Per-tenant seeds give each tenant its own
// key domain, workload layout and predictor roots; Config.Scale.
// Instructions is the tenant's core-time budget in the schedule.
type Tenant struct {
	Bench  string
	Config sim.Config
}

// SLO declares the service-level objective a scenario is judged
// against. Zero-valued bounds are unconstrained.
type SLO struct {
	// P99FetchLatency bounds every tenant's 99th-percentile secure-memory
	// fetch latency, in cycles.
	P99FetchLatency float64
	// MaxDegradation bounds every tenant's architectural IPC degradation
	// vs its solo run — cycles the tenant itself executed, so this
	// isolates cache/predictor interference from queueing — as a
	// fraction (0.25 = may lose at most a quarter of solo IPC).
	MaxDegradation float64
	// MaxSlowdown bounds every tenant's end-to-end slowdown: solo IPC
	// over effective IPC, where effective IPC divides the tenant's
	// committed instructions by the *global* cycles elapsed until it
	// completed — waiting for other tenants included. This is the
	// served-deployment "will it hold under load?" number: it grows with
	// tenant count even when the architectural degradation has
	// saturated, so it is what the capacity search knees on. Must be
	// ≥ 1 to constrain anything.
	MaxSlowdown float64
}

// Config is a complete multi-tenant scenario.
type Config struct {
	// Tenants lists the machines to interleave (at least one).
	Tenants []Tenant
	// Kind selects the arrival process; Quantum, MeanDemand and MeanGap
	// pass through to ScheduleConfig (0 = its derived defaults).
	Kind                         ArrivalKind
	Quantum, MeanDemand, MeanGap uint64
	// Seed drives the arrival schedule (independent of tenant seeds).
	Seed uint64
	// RetainPredictor keeps each tenant's transient predictor state
	// (PHV confidence, latest-offset register, range-table residency)
	// across switches — the paper's save/restore-with-process-context
	// policy. False models a flush-on-switch OS.
	RetainPredictor bool
	// SLO is recorded in the report and evaluated per tenant.
	SLO SLO
	// SoloIPC, when non-nil (len == len(Tenants)), supplies precomputed
	// solo-run IPC baselines and Run skips its own; capacity searches
	// reuse one baseline set across probes this way.
	SoloIPC []float64
}

// TenantReport carries one tenant's SLO metrics from an interleaved run.
type TenantReport struct {
	Bench  string
	Scheme string
	// IPC is the tenant's instructions-per-cycle over the cycles it held
	// the core; SoloIPC the same machine run alone; Degradation the
	// fraction of solo IPC lost to interleaving (0 = none).
	IPC, SoloIPC, Degradation float64
	// EffectiveIPC divides the tenant's committed instructions by the
	// global cycles elapsed until it completed, so time spent waiting
	// behind other tenants counts against it; Slowdown is
	// SoloIPC / EffectiveIPC, the end-to-end response factor (≈1 solo,
	// growing with tenant count).
	EffectiveIPC, Slowdown float64
	// CompletionCycles is the global-virtual-time cycle count at which
	// the tenant's budget completed.
	CompletionCycles uint64
	// P50/P99FetchLatency are exact nearest-rank percentiles over every
	// secure-memory fetch the tenant issued (stats.Percentile).
	P50FetchLatency, P99FetchLatency float64
	// Fetches is the number of latency samples behind the percentiles.
	Fetches uint64
	// Slices and Switches count the tenant's timeslices and the
	// switch-in disturbances it absorbed; SeqCacheInvalidations and
	// PredictorFlushes split the disturbance by structure.
	Slices, Switches      uint64
	SeqCacheInvalidations uint64
	PredictorFlushes      uint64
	// MeetsSLO reports whether this tenant satisfied every declared
	// bound.
	MeetsSLO bool
	// Result is the tenant machine's full statistics tree.
	Result sim.Result
}

// Report is the outcome of one interleaved scenario.
type Report struct {
	Tenants []TenantReport
	// Aggregate percentiles pool every tenant's fetch samples.
	AggP50FetchLatency, AggP99FetchLatency float64
	// MeanDegradation / MaxDegradation summarize IPC loss across tenants.
	MeanDegradation, MaxDegradation float64
	// MeanSlowdown / MaxSlowdown summarize the end-to-end response
	// factors; GlobalCycles is the scenario's total busy time on the
	// shared core.
	MeanSlowdown, MaxSlowdown float64
	GlobalCycles              uint64
	// Switches is the total number of context switches the schedule
	// produced; Slices the total number of timeslices.
	Switches, Slices uint64
	// MeetsSLO is the conjunction of every tenant's verdict.
	MeetsSLO bool
	SLO      SLO
}

// Run executes the scenario: solo baselines first (unless supplied),
// then the interleaved run over the arrival schedule, sequentially and
// deterministically. Context cancellation lands within one simulation
// checkpoint, as everywhere else in the simulator.
func Run(ctx context.Context, cfg Config) (Report, error) {
	n := len(cfg.Tenants)
	if n == 0 {
		return Report{}, fmt.Errorf("tenancy: no tenants configured")
	}
	solo := cfg.SoloIPC
	if solo == nil {
		solo = make([]float64, n)
		for i, t := range cfg.Tenants {
			res, err := sim.RunContext(ctx, t.Bench, t.Config)
			if err != nil {
				return Report{}, fmt.Errorf("tenancy: solo baseline tenant %d (%s): %w", i, t.Bench, err)
			}
			solo[i] = res.IPC()
		}
	} else if len(solo) != n {
		return Report{}, fmt.Errorf("tenancy: SoloIPC has %d entries for %d tenants", len(solo), n)
	}

	budgets := make([]uint64, n)
	for i, t := range cfg.Tenants {
		budgets[i] = t.Config.Scale.Instructions
	}
	schedule := BuildSchedule(ScheduleConfig{
		Budgets: budgets, Quantum: cfg.Quantum, Kind: cfg.Kind,
		Seed: cfg.Seed, MeanDemand: cfg.MeanDemand, MeanGap: cfg.MeanGap,
	})

	machines := make([]*sim.Machine, n)
	samples := make([][]float64, n)
	for i, t := range cfg.Tenants {
		m, err := sim.NewMachine(t.Bench, t.Config)
		if err != nil {
			return Report{}, fmt.Errorf("tenancy: tenant %d (%s): %w", i, t.Bench, err)
		}
		defer m.Close()
		machines[i] = m
		buf := &samples[i]
		m.Ctrl.SetFetchObserver(func(lat uint64) { *buf = append(*buf, float64(lat)) })
	}

	rep := Report{SLO: cfg.SLO, Tenants: make([]TenantReport, n)}
	for i, t := range cfg.Tenants {
		rep.Tenants[i] = TenantReport{Bench: t.Bench, Scheme: t.Config.Scheme.Name, SoloIPC: solo[i]}
	}
	halted := make([]bool, n)
	completion := make([]uint64, n)
	var global uint64 // global virtual time: cycles any tenant has executed
	last := -1
	for _, sl := range schedule {
		t := sl.Tenant
		if halted[t] {
			continue
		}
		tr := &rep.Tenants[t]
		if last >= 0 && last != t {
			// Another tenant used the machine since this one last ran:
			// apply the switch-in disturbance before its slice.
			machines[t].SwitchIn(cfg.RetainPredictor)
			tr.Switches++
			if machines[t].SCache != nil {
				tr.SeqCacheInvalidations++
			}
			if !cfg.RetainPredictor {
				tr.PredictorFlushes++
			}
			rep.Switches++
		}
		tr.Slices++
		rep.Slices++
		before := machines[t].Core.Stats().Cycles
		target := machines[t].Core.Committed() + sl.Length
		more, err := machines[t].RunSliceContext(ctx, target)
		if err != nil {
			return Report{}, fmt.Errorf("tenancy: tenant %d (%s): %w", t, tr.Bench, err)
		}
		global += machines[t].Core.Stats().Cycles - before
		completion[t] = global
		if !more {
			halted[t] = true
		}
		last = t
	}
	rep.GlobalCycles = global

	var all []float64
	var sumDeg, sumSlow float64
	rep.MeetsSLO = true
	for i := range rep.Tenants {
		tr := &rep.Tenants[i]
		committed := machines[i].Core.Committed()
		tr.Result = machines[i].Finish()
		tr.IPC = tr.Result.IPC()
		if tr.SoloIPC > 0 {
			tr.Degradation = 1 - tr.IPC/tr.SoloIPC
			if tr.Degradation < 0 {
				tr.Degradation = 0
			}
		}
		tr.CompletionCycles = completion[i]
		if completion[i] > 0 {
			tr.EffectiveIPC = float64(committed) / float64(completion[i])
		}
		if tr.SoloIPC > 0 && tr.EffectiveIPC > 0 {
			tr.Slowdown = tr.SoloIPC / tr.EffectiveIPC
		}
		tr.P50FetchLatency = stats.Percentile(samples[i], 0.50)
		tr.P99FetchLatency = stats.Percentile(samples[i], 0.99)
		tr.Fetches = uint64(len(samples[i]))
		all = append(all, samples[i]...)
		sumDeg += tr.Degradation
		sumSlow += tr.Slowdown
		if tr.Degradation > rep.MaxDegradation {
			rep.MaxDegradation = tr.Degradation
		}
		if tr.Slowdown > rep.MaxSlowdown {
			rep.MaxSlowdown = tr.Slowdown
		}
		tr.MeetsSLO = meetsSLO(cfg.SLO, tr.P99FetchLatency, tr.Degradation, tr.Slowdown)
		rep.MeetsSLO = rep.MeetsSLO && tr.MeetsSLO
	}
	rep.AggP50FetchLatency = stats.Percentile(all, 0.50)
	rep.AggP99FetchLatency = stats.Percentile(all, 0.99)
	rep.MeanDegradation = sumDeg / float64(n)
	rep.MeanSlowdown = sumSlow / float64(n)
	return rep, nil
}

// meetsSLO evaluates one tenant's metrics against the declared bounds
// (zero-valued bounds pass).
func meetsSLO(slo SLO, p99, degradation, slowdown float64) bool {
	if slo.P99FetchLatency > 0 && p99 > slo.P99FetchLatency {
		return false
	}
	if slo.MaxDegradation > 0 && degradation > slo.MaxDegradation {
		return false
	}
	if slo.MaxSlowdown >= 1 && slowdown > slo.MaxSlowdown {
		return false
	}
	return true
}

// Snapshot exports the scenario's SLO metrics as a metrics tree: one
// child per tenant (tenant00, tenant01, …) with its percentiles,
// degradation and interference counters, plus an "aggregate" child.
// Nodes serialize name-sorted, so the export is deterministic.
func (r Report) Snapshot() *stats.Snapshot {
	n := stats.NewSnapshot("tenancy")
	agg := n.Child("aggregate")
	agg.Value("p50_fetch_latency", r.AggP50FetchLatency)
	agg.Value("p99_fetch_latency", r.AggP99FetchLatency)
	agg.Value("mean_ipc_degradation", r.MeanDegradation)
	agg.Value("max_ipc_degradation", r.MaxDegradation)
	agg.Value("mean_slowdown", r.MeanSlowdown)
	agg.Value("max_slowdown", r.MaxSlowdown)
	agg.Counter("global_cycles", r.GlobalCycles)
	agg.Counter("switches", r.Switches)
	agg.Counter("slices", r.Slices)
	agg.Value("slo_p99_fetch_latency", r.SLO.P99FetchLatency)
	agg.Value("slo_max_degradation", r.SLO.MaxDegradation)
	agg.Value("slo_max_slowdown", r.SLO.MaxSlowdown)
	agg.Value("meets_slo", b2f(r.MeetsSLO))
	for i := range r.Tenants {
		tr := &r.Tenants[i]
		c := n.Child(fmt.Sprintf("tenant%02d", i))
		c.Label("bench", tr.Bench)
		c.Label("scheme", tr.Scheme)
		c.Value("ipc", tr.IPC)
		c.Value("solo_ipc", tr.SoloIPC)
		c.Value("ipc_degradation", tr.Degradation)
		c.Value("effective_ipc", tr.EffectiveIPC)
		c.Value("slowdown", tr.Slowdown)
		c.Counter("completion_cycles", tr.CompletionCycles)
		c.Value("p50_fetch_latency", tr.P50FetchLatency)
		c.Value("p99_fetch_latency", tr.P99FetchLatency)
		c.Value("meets_slo", b2f(tr.MeetsSLO))
		c.Counter("fetch_samples", tr.Fetches)
		c.Counter("slices", tr.Slices)
		c.Counter("switches", tr.Switches)
		c.Counter("seqcache_invalidations", tr.SeqCacheInvalidations)
		c.Counter("predictor_flushes", tr.PredictorFlushes)
	}
	return n
}

func b2f(ok bool) float64 {
	if ok {
		return 1
	}
	return 0
}
