package tenancy

import (
	"context"
	"testing"

	"ctrpred/internal/predictor"
	"ctrpred/internal/sim"
)

// testTenant builds a small-scale tenant: per-tenant seed, 256K L2,
// modest footprint and budget so the suite stays fast.
func testTenant(bench string, scheme sim.Scheme, seed uint64) Tenant {
	cfg := sim.DefaultConfig(scheme).
		WithFootprint(512 << 10).
		WithInstrBudget(30_000).
		WithSeed(seed)
	cfg.Mem.FlushInterval = 0 // slices drive all eviction traffic
	return Tenant{Bench: bench, Config: cfg}
}

func testConfig() Config {
	return Config{
		Tenants: []Tenant{
			testTenant("gzip", sim.SchemeCombined(32<<10, predictor.SchemeRegular), 11),
			testTenant("mcf", sim.SchemePred(predictor.SchemeContext), 12),
		},
		Seed:    99,
		Quantum: 5000,
	}
}

// TestRunDeterministic: the same scenario snapshots identically across
// two runs.
func TestRunDeterministic(t *testing.T) {
	a, err := Run(context.Background(), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	ja, err := a.Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	jb, err := b.Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(ja) != string(jb) {
		t.Errorf("snapshots differ across identical runs:\n%s\nvs\n%s", ja, jb)
	}
}

// TestRunReportShape checks the SLO metrics are populated and mutually
// consistent: every tenant has fetch samples whose count matches its
// controller's own fetch-latency histogram (exact-sample attribution),
// percentiles are ordered, and interleaving actually degraded IPC
// relative to the solo baseline.
func TestRunReportShape(t *testing.T) {
	rep, err := Run(context.Background(), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tenants) != 2 {
		t.Fatalf("got %d tenant reports, want 2", len(rep.Tenants))
	}
	if rep.Switches == 0 || rep.Slices < rep.Switches {
		t.Errorf("implausible schedule accounting: %d switches over %d slices", rep.Switches, rep.Slices)
	}
	for i, tr := range rep.Tenants {
		if tr.Fetches == 0 {
			t.Errorf("tenant %d (%s): no fetch samples", i, tr.Bench)
		}
		if tr.Fetches != tr.Result.Ctrl.FetchLatency.Total {
			t.Errorf("tenant %d (%s): %d samples vs histogram total %d — attribution leak",
				i, tr.Bench, tr.Fetches, tr.Result.Ctrl.FetchLatency.Total)
		}
		if tr.P50FetchLatency > tr.P99FetchLatency {
			t.Errorf("tenant %d (%s): p50 %.0f > p99 %.0f", i, tr.Bench, tr.P50FetchLatency, tr.P99FetchLatency)
		}
		if tr.SoloIPC <= 0 || tr.IPC <= 0 {
			t.Errorf("tenant %d (%s): IPC %.3f solo %.3f", i, tr.Bench, tr.IPC, tr.SoloIPC)
		}
		if tr.Degradation < 0 || tr.Degradation >= 1 {
			t.Errorf("tenant %d (%s): degradation %.3f outside [0,1)", i, tr.Bench, tr.Degradation)
		}
		// Waiting behind the other tenant can only hurt: effective IPC is
		// bounded by the tenant's own IPC, and with two contending tenants
		// the end-to-end slowdown must exceed 1.
		if tr.EffectiveIPC > tr.IPC {
			t.Errorf("tenant %d (%s): effective IPC %.3f exceeds own IPC %.3f", i, tr.Bench, tr.EffectiveIPC, tr.IPC)
		}
		if tr.Slowdown <= 1 {
			t.Errorf("tenant %d (%s): slowdown %.3f not above 1 despite contention", i, tr.Bench, tr.Slowdown)
		}
		if tr.CompletionCycles == 0 || tr.CompletionCycles > rep.GlobalCycles {
			t.Errorf("tenant %d (%s): completion %d outside (0, %d]", i, tr.Bench, tr.CompletionCycles, rep.GlobalCycles)
		}
	}
	// The seqcache tenant must see invalidations; the flush policy is
	// off by default, so predictor flushes must be counted on switches.
	if rep.Tenants[0].SeqCacheInvalidations == 0 {
		t.Error("seqcache tenant recorded no invalidations despite switches")
	}
	if rep.Tenants[1].PredictorFlushes != rep.Tenants[1].Switches {
		t.Errorf("flush-policy accounting: %d flushes vs %d switches",
			rep.Tenants[1].PredictorFlushes, rep.Tenants[1].Switches)
	}
}

// TestInterleavedAttribution is the per-tenant stat-attribution
// regression test (the PR 5 Predictor.Observe fix's shape, lifted to
// whole machines): a tenant interleaved with another tenant whose
// address stream is entirely disjoint (its own machine, its own key
// domain) must report *exactly* the statistics of the same machine run
// alone with the same slice boundaries and the same switch-in
// disturbances. Any counter that lands on the wrong tenant's machine —
// predictor observations, seqcache touches, fetch latencies — breaks
// byte-identity here.
func TestInterleavedAttribution(t *testing.T) {
	cfg := testConfig()
	rep, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Replay tenant 0's exact call sequence on a fresh machine, without
	// tenant 1 executing at all.
	const victim = 0
	budgets := []uint64{
		cfg.Tenants[0].Config.Scale.Instructions,
		cfg.Tenants[1].Config.Scale.Instructions,
	}
	schedule := BuildSchedule(ScheduleConfig{
		Budgets: budgets, Quantum: cfg.Quantum, Kind: cfg.Kind,
		Seed: cfg.Seed, MeanDemand: cfg.MeanDemand, MeanGap: cfg.MeanGap,
	})
	m, err := sim.NewMachine(cfg.Tenants[victim].Bench, cfg.Tenants[victim].Config)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	last := -1
	halted := false
	for _, sl := range schedule {
		if sl.Tenant != victim {
			last = sl.Tenant
			continue
		}
		if halted {
			continue
		}
		if last >= 0 && last != victim {
			m.SwitchIn(cfg.RetainPredictor)
		}
		more, err := m.RunSliceContext(context.Background(), m.Core.Committed()+sl.Length)
		if err != nil {
			t.Fatal(err)
		}
		halted = !more
		last = victim
	}
	solo := m.Finish()

	got, err := snapshotJSON(rep.Tenants[victim].Result)
	if err != nil {
		t.Fatal(err)
	}
	want, err := snapshotJSON(solo)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Errorf("interleaved tenant's stats differ from its solo replay — cross-tenant attribution leak:\n--- interleaved ---\n%s\n--- solo replay ---\n%s", got, want)
	}
}

func snapshotJSON(r sim.Result) ([]byte, error) {
	return r.Snapshot().JSON()
}

// TestRunHonorsSLO: a bound nothing can meet fails the report; an
// unconstrained SLO passes it.
func TestRunHonorsSLO(t *testing.T) {
	cfg := testConfig()
	rep, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.MeetsSLO {
		t.Error("unconstrained SLO reported as missed")
	}
	cfg.SLO = SLO{P99FetchLatency: 1} // one cycle: unmeetable
	rep, err = Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MeetsSLO {
		t.Error("1-cycle p99 SLO reported as met")
	}
	// A slowdown bound of exactly 1 is unmeetable with two contending
	// tenants: each must wait for the other at least once.
	cfg.SLO = SLO{MaxSlowdown: 1}
	rep, err = Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MeetsSLO {
		t.Error("slowdown-1 SLO reported as met under contention")
	}
}

// TestSoloIPCPassthrough: supplied baselines skip the solo runs and
// land verbatim in the report.
func TestSoloIPCPassthrough(t *testing.T) {
	cfg := testConfig()
	cfg.SoloIPC = []float64{0.5, 0.25}
	rep, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Tenants[0].SoloIPC != 0.5 || rep.Tenants[1].SoloIPC != 0.25 {
		t.Errorf("SoloIPC not passed through: %v, %v", rep.Tenants[0].SoloIPC, rep.Tenants[1].SoloIPC)
	}
}
