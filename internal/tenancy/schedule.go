package tenancy

import "ctrpred/internal/rng"

// Slice is one timeslice of the interleaved run: the tenant that holds
// the core and how many instructions it commits before yielding.
type Slice struct {
	Tenant int
	Length uint64
}

// ScheduleConfig parameterizes schedule construction.
type ScheduleConfig struct {
	// Budgets holds each tenant's total instruction budget; the schedule
	// allots exactly this much core time to tenant i (its program may
	// still halt earlier at run time).
	Budgets []uint64
	// Quantum caps a single timeslice. 0 derives max(maxBudget/16, 1000):
	// enough slices that every tenant is preempted repeatedly inside the
	// short experiment windows, without drowning the run in switches.
	Quantum uint64
	// Kind selects the arrival process (Poisson or Bursty).
	Kind ArrivalKind
	// Seed drives every arrival draw. Tenant i's process is seeded from
	// (Seed, i), so adding a tenant never perturbs the others' streams.
	Seed uint64
	// MeanDemand is the average job service demand in instructions
	// (0 derives 2×Quantum); MeanGap is the average inter-arrival gap
	// (0 derives MeanDemand, i.e. each tenant alone would keep roughly
	// one core busy, so N tenants genuinely contend).
	MeanDemand, MeanGap uint64
}

// BuildSchedule runs the arrival processes through a FIFO run queue and
// returns the resulting timeslice sequence: jobs arrive on each tenant's
// seeded process, queue for the single core, and execute in
// quantum-bounded slices until every tenant has consumed its budget.
// The schedule is a pure function of cfg — identical across runs and
// across any worker count — and adjacent slices of the same tenant are
// merged, so every boundary in the result is a real context switch.
func BuildSchedule(cfg ScheduleConfig) []Slice {
	n := len(cfg.Budgets)
	if n == 0 {
		return nil
	}
	quantum := cfg.Quantum
	if quantum == 0 {
		var maxBudget uint64
		for _, b := range cfg.Budgets {
			if b > maxBudget {
				maxBudget = b
			}
		}
		quantum = maxBudget / 16
		if quantum < 1000 {
			quantum = 1000
		}
	}
	meanDem := float64(cfg.MeanDemand)
	if meanDem == 0 {
		meanDem = 2 * float64(quantum)
	}
	meanGap := float64(cfg.MeanGap)
	if meanGap == 0 {
		meanGap = meanDem
	}

	procs := make([]process, n)
	nextArrival := make([]uint64, n) // absolute virtual time of the next job
	nextDemand := make([]uint64, n)
	for t := 0; t < n; t++ {
		// splitmix the (seed, tenant) pair so per-tenant streams are
		// independent and stable under tenant-count changes.
		r := rng.New(rng.NewSplitMix64(cfg.Seed ^ 0x7e3a91*uint64(t+1)).Next())
		switch cfg.Kind {
		case Bursty:
			procs[t] = &burstyProc{rnd: r, meanGap: meanGap, meanDem: meanDem}
		default:
			procs[t] = &poissonProc{rnd: r, meanGap: meanGap, meanDem: meanDem}
		}
		gap, dem := procs[t].next()
		nextArrival[t], nextDemand[t] = gap, dem
	}

	scheduled := make([]uint64, n) // instructions already allotted
	pending := make([]uint64, n)   // arrived-but-unserved demand
	queued := make([]bool, n)
	var queue []int // FIFO of tenants with pending demand
	done := 0

	var out []Slice
	var clock uint64
	// admit moves every due arrival into the run queue, in tenant order.
	admit := func() {
		for t := 0; t < n; t++ {
			if scheduled[t] >= cfg.Budgets[t] {
				continue
			}
			for nextArrival[t] <= clock {
				pending[t] += nextDemand[t]
				gap, dem := procs[t].next()
				nextArrival[t] += gap
				nextDemand[t] = dem
			}
			if pending[t] > 0 && !queued[t] {
				queued[t] = true
				queue = append(queue, t)
			}
		}
	}
	for done < n {
		admit()
		if len(queue) == 0 {
			// Idle: jump the clock to the earliest outstanding arrival.
			var soonest uint64
			first := true
			for t := 0; t < n; t++ {
				if scheduled[t] >= cfg.Budgets[t] {
					continue
				}
				if first || nextArrival[t] < soonest {
					soonest, first = nextArrival[t], false
				}
			}
			clock = soonest
			continue
		}
		t := queue[0]
		queue = queue[1:]
		queued[t] = false
		run := quantum
		if pending[t] < run {
			run = pending[t]
		}
		if left := cfg.Budgets[t] - scheduled[t]; left < run {
			run = left
		}
		scheduled[t] += run
		pending[t] -= run
		clock += run
		if k := len(out) - 1; k >= 0 && out[k].Tenant == t {
			out[k].Length += run // same tenant kept the core: no switch
		} else {
			out = append(out, Slice{Tenant: t, Length: run})
		}
		if scheduled[t] >= cfg.Budgets[t] {
			done++
			pending[t] = 0
		}
	}
	return out
}
