package tenancy

import (
	"math"
	"reflect"
	"testing"

	"ctrpred/internal/rng"
)

// TestNegLn pins the hand-rolled logarithm against the library one: the
// sampler only needs determinism, but it should also be *right*.
func TestNegLn(t *testing.T) {
	for _, u := range []float64{1, 0.999, 0.75, 0.5, 0.25, 0.1, 1e-3, 1e-9, 1.0 / (1 << 53)} {
		got := negLn(u)
		want := -math.Log(u)
		if diff := math.Abs(got - want); diff > 1e-9*(1+want) {
			t.Errorf("negLn(%g) = %g, want %g", u, got, want)
		}
	}
}

// TestExpDrawMean checks the exponential sampler's mean lands near the
// requested one.
func TestExpDrawMean(t *testing.T) {
	r := rng.New(7)
	const mean, n = 5000.0, 20000
	var sum float64
	for i := 0; i < n; i++ {
		sum += float64(expDraw(r, mean))
	}
	got := sum / n
	if got < 0.9*mean || got > 1.1*mean {
		t.Errorf("expDraw mean = %.1f, want ≈ %.1f", got, mean)
	}
}

func scheduleConfig(kind ArrivalKind, seed uint64) ScheduleConfig {
	return ScheduleConfig{
		Budgets: []uint64{50_000, 50_000, 30_000},
		Kind:    kind,
		Seed:    seed,
	}
}

// TestScheduleDeterministic: identical configs produce identical
// schedules — the property that makes tenancy scenarios byte-identical
// across runs and across experiment worker counts.
func TestScheduleDeterministic(t *testing.T) {
	for _, kind := range []ArrivalKind{Poisson, Bursty} {
		a := BuildSchedule(scheduleConfig(kind, 42))
		b := BuildSchedule(scheduleConfig(kind, 42))
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%v: schedules differ across identical builds", kind)
		}
		c := BuildSchedule(scheduleConfig(kind, 43))
		if reflect.DeepEqual(a, c) {
			t.Errorf("%v: different seeds produced identical schedules", kind)
		}
	}
	if reflect.DeepEqual(BuildSchedule(scheduleConfig(Poisson, 42)), BuildSchedule(scheduleConfig(Bursty, 42))) {
		t.Error("poisson and bursty produced identical schedules")
	}
}

// TestScheduleInvariants: every tenant receives exactly its budget, no
// slice exceeds the quantum, and adjacent slices always change tenant
// (real context switches only).
func TestScheduleInvariants(t *testing.T) {
	for _, kind := range []ArrivalKind{Poisson, Bursty} {
		cfg := scheduleConfig(kind, 42)
		cfg.Quantum = 4000
		sched := BuildSchedule(cfg)
		got := make([]uint64, len(cfg.Budgets))
		for i, sl := range sched {
			if sl.Tenant < 0 || sl.Tenant >= len(cfg.Budgets) {
				t.Fatalf("%v: slice %d names tenant %d", kind, i, sl.Tenant)
			}
			if sl.Length == 0 {
				t.Fatalf("%v: slice %d has zero length", kind, i)
			}
			got[sl.Tenant] += sl.Length
			if i > 0 && sched[i-1].Tenant == sl.Tenant {
				t.Fatalf("%v: slices %d and %d share tenant %d (unmerged)", kind, i-1, i, sl.Tenant)
			}
		}
		for tn, b := range cfg.Budgets {
			if got[tn] != b {
				t.Errorf("%v: tenant %d scheduled %d instructions, budget %d", kind, tn, got[tn], b)
			}
		}
		// Interleaving must actually happen: more slices than tenants.
		if len(sched) <= len(cfg.Budgets) {
			t.Errorf("%v: only %d slices for %d tenants — no interleaving", kind, len(sched), len(cfg.Budgets))
		}
	}
}

// TestParseArrival covers the flag syntax.
func TestParseArrival(t *testing.T) {
	for s, want := range map[string]ArrivalKind{"": Poisson, "poisson": Poisson, "bursty": Bursty} {
		got, err := ParseArrival(s)
		if err != nil || got != want {
			t.Errorf("ParseArrival(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseArrival("uniform"); err == nil {
		t.Error("ParseArrival accepted unknown process")
	}
}
