// Package tenancy models a served deployment of the secure-memory
// architecture: N tenants' workloads — each its own machine, key domain
// and predictor state — interleaved on one core by seeded arrival
// processes, with per-tenant SLO metrics (exact fetch-latency
// percentiles, IPC degradation vs a solo run, interference counters)
// reported through the stats tree.
//
// Everything is deterministic: the arrival processes draw from the same
// splitmix-seeded generators the rest of the simulator uses, the
// schedule is a pure function of its config, and the interleaved run is
// sequential — so a tenancy scenario is byte-identical across runs and
// across experiment worker counts.
package tenancy

import (
	"fmt"
	"math"

	"ctrpred/internal/rng"
)

// ArrivalKind selects the job-arrival process shaping each tenant's
// offered load.
type ArrivalKind int

const (
	// Poisson arrivals: independent exponential inter-arrival gaps, the
	// memoryless open-system baseline.
	Poisson ArrivalKind = iota
	// Bursty arrivals: an on-off process — bursts of back-to-back jobs
	// separated by long idle gaps — the heavy-tailed shape that stresses
	// tail latency hardest at equal mean load.
	Bursty
)

func (k ArrivalKind) String() string {
	if k == Bursty {
		return "bursty"
	}
	return "poisson"
}

// ParseArrival parses an arrival-process name ("poisson" or "bursty").
func ParseArrival(s string) (ArrivalKind, error) {
	switch s {
	case "", "poisson":
		return Poisson, nil
	case "bursty":
		return Bursty, nil
	}
	return 0, fmt.Errorf("tenancy: unknown arrival process %q (want poisson or bursty)", s)
}

// process generates one tenant's job stream: next returns the gap in
// instructions of virtual time since the previous arrival, and the
// arriving job's service demand in instructions. Draws are consumed in
// schedule-build order only, so a process is deterministic per seed.
type process interface {
	next() (gap, demand uint64)
}

// poissonProc draws exponential gaps and demands — a Poisson arrival
// process with exponentially distributed service requirements (M/M/1
// per tenant, before they contend for the core).
type poissonProc struct {
	rnd              *rng.Xoshiro256
	meanGap, meanDem float64
}

func (p *poissonProc) next() (uint64, uint64) {
	return expDraw(p.rnd, p.meanGap), expDraw(p.rnd, p.meanDem)
}

// burstyProc is an on-off process: during a burst, jobs arrive nearly
// back-to-back; between bursts the tenant idles for a long exponential
// gap. Mean offered load matches the Poisson process with the same
// parameters — only the variance moves.
type burstyProc struct {
	rnd              *rng.Xoshiro256
	meanGap, meanDem float64
	burstLeft        int
}

func (p *burstyProc) next() (uint64, uint64) {
	if p.burstLeft > 0 {
		p.burstLeft--
		// Within a burst, jobs follow each other at an eighth of the
		// average spacing.
		return expDraw(p.rnd, p.meanGap/8), expDraw(p.rnd, p.meanDem)
	}
	// Draw the next burst (mean 4 jobs, at least 1) and the off period
	// that precedes it, sized so the long-run arrival rate matches the
	// Poisson process: 4 jobs per burst at meanGap/8 spacing leaves
	// 7/2·meanGap of the 4·meanGap budget to the idle gap.
	burst := 1 + int(expDraw(p.rnd, 3))
	p.burstLeft = burst - 1
	return expDraw(p.rnd, 3.5*p.meanGap), expDraw(p.rnd, p.meanDem)
}

// expDraw returns an exponential variate with the given mean, floored at
// 1: ⌈mean · (−ln U)⌉ for uniform U in (0,1]. Inverse-CDF sampling costs
// one uniform draw, so schedule construction is O(jobs) regardless of
// the mean (rng.Geometric's rejection loop is O(mean) per draw).
func expDraw(r *rng.Xoshiro256, mean float64) uint64 {
	u := r.Float64()
	if u == 0 {
		u = 1.0 / (1 << 53) // Float64's granularity; -ln stays finite
	}
	v := mean * negLn(u)
	if v < 1 {
		return 1
	}
	return uint64(v) + 1
}

// ln2 is ln 2 to float64 precision.
const ln2 = 0.6931471805599453

// negLn returns −ln u for u in (0, 1], using fixed-iteration float64
// arithmetic only — bit-identical on every platform, like internal/rng's
// hand-rolled pow and sqrt — rather than math.Log, whose implementation
// is assembly on some architectures.
func negLn(u float64) float64 {
	if u >= 1 {
		return 0
	}
	// u = m · 2^e with m in [1, 2): peel the exponent from the bits.
	bits := math.Float64bits(u)
	e := int(bits>>52&0x7ff) - 1023
	m := math.Float64frombits(bits&^(0x7ff<<52) | 1023<<52)
	// ln m = 2·atanh((m−1)/(m+1)); z ≤ 1/3 on [1,2), so 8 odd terms
	// reach float64 precision.
	z := (m - 1) / (m + 1)
	z2 := z * z
	term, sum := z, z
	for k := 3; k <= 15; k += 2 {
		term *= z2
		sum += term / float64(k)
	}
	return -(float64(e)*ln2 + 2*sum)
}
