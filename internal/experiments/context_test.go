package experiments

import (
	"context"
	"errors"
	"testing"
	"time"

	"ctrpred/internal/runpool"
	"ctrpred/internal/workload"
)

// tinyOpts is the smallest scale at which every experiment still runs:
// used only for dispatch round-trips, not for asserting paper shapes.
func tinyOpts() Options {
	return Options{
		Scale:      workload.Scale{Footprint: 256 << 10, Instructions: 2_000},
		Benchmarks: []string{"gzip"},
		Seed:       7,
		Workers:    2,
	}
}

// TestByIDRoundTripAllIDs dispatches every advertised experiment id
// through ByID at tiny scale: the id table and the figure functions can
// never drift apart.
func TestByIDRoundTripAllIDs(t *testing.T) {
	for _, id := range IDs() {
		res, err := ByID(context.Background(), id, tinyOpts())
		if err != nil {
			t.Fatalf("ByID(%q): %v", id, err)
		}
		if res.ID == "" || res.Title == "" {
			t.Fatalf("ByID(%q) returned an unlabeled result: %+v", id, res)
		}
		snap := res.Snapshot()
		if snap.Name != "experiment" {
			t.Fatalf("ByID(%q) snapshot root %q", id, snap.Name)
		}
		if _, err := snap.JSON(); err != nil {
			t.Fatalf("ByID(%q) snapshot does not serialize: %v", id, err)
		}
	}
}

// TestSweepCancelMidRun is the tentpole acceptance check: cancelling a
// sweep returns context.Canceled promptly, wrapped in a *PartialError
// that names the cells that did finish.
func TestSweepCancelMidRun(t *testing.T) {
	opt := quickOpts()
	opt.Workers = 1
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var done int
	opt.Progress = func(u runpool.Update) {
		done++
		if done == 2 {
			cancel()
		}
	}
	_, err := Figure7(ctx, opt)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want errors.Is(err, context.Canceled)", err)
	}
	var pe *runpool.PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("error %T does not wrap *runpool.PartialError: %v", err, err)
	}
	// With one worker, exactly the two cells that reported progress
	// completed; the other seven of the 3×3 grid were skipped.
	if len(pe.Completed) != 2 || pe.Total != 9 {
		t.Fatalf("partial progress = %d/%d (%v), want 2/9", len(pe.Completed), pe.Total, pe.Completed)
	}
	for _, label := range pe.Completed {
		if label == "" {
			t.Fatalf("unlabeled completed cell: %v", pe.Completed)
		}
	}
}

// TestSimTimeoutExpires checks the per-simulation deadline: an absurdly
// short SimTimeout fails the sweep with DeadlineExceeded, without anyone
// cancelling the sweep's own context.
func TestSimTimeoutExpires(t *testing.T) {
	opt := quickOpts()
	opt.SimTimeout = time.Nanosecond
	_, err := Figure7(context.Background(), opt)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want errors.Is(err, context.DeadlineExceeded)", err)
	}
}

// TestMetricsJSONDeterministicAcrossWorkers is the metrics acceptance
// check: the exported JSON for a fixed seed is byte-identical whether
// the sweep ran sequentially or on four workers.
func TestMetricsJSONDeterministicAcrossWorkers(t *testing.T) {
	seq := quickOpts()
	seq.Workers = 1
	par := quickOpts()
	par.Workers = 4

	a, err := ByID(context.Background(), "fig7", seq)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ByID(context.Background(), "fig7", par)
	if err != nil {
		t.Fatal(err)
	}
	ja, err := a.Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	jb, err := b.Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(ja) != string(jb) {
		t.Fatalf("metrics JSON differs between -j 1 and -j 4:\n--- j=1 ---\n%s\n--- j=4 ---\n%s", ja, jb)
	}
}

// TestSweepPreCancelled checks that a sweep under an already-cancelled
// context runs no simulations at all.
func TestSweepPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opt := quickOpts()
	ran := false
	opt.Progress = func(runpool.Update) { ran = true }
	_, err := Figure7(ctx, opt)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran {
		t.Fatal("pre-cancelled sweep still ran simulations")
	}
}
