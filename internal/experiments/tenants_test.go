package experiments

import (
	"context"
	"testing"

	"ctrpred/internal/workload"
)

// tenancyOpts keeps the tenancy experiment tests fast: two benchmarks,
// small windows (the footprint is pinned by the experiment itself).
func tenancyOpts() Options {
	return Options{
		Scale:      workload.Scale{Footprint: 1 << 20, Instructions: 20_000},
		Benchmarks: []string{"gzip", "mcf"},
		Seed:       3,
		MaxTenants: 4,
	}
}

// TestTenantsShape checks the interference matrix's internal
// consistency: solo IPC is an upper bound on in-mix IPC, contention
// makes every slowdown exceed 1, and the adversarial co-tenant (burning
// its slices on quarantine recovery) delays the victim at least as much
// as the clean one.
func TestTenantsShape(t *testing.T) {
	res, err := Tenants(context.Background(), tenancyOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range tenantsColumns {
		if _, ok := res.Series[name]; !ok {
			t.Fatalf("series %q missing", name)
		}
		if _, ok := res.Series[name]["Average"]; !ok {
			t.Fatalf("series %q has no Average row", name)
		}
	}
	for _, bench := range tenancyOpts().Benchmarks {
		solo := res.Series["Solo_IPC"][bench]
		mix := res.Series["Mix_IPC"][bench]
		if solo <= 0 || mix <= 0 {
			t.Errorf("%s: non-positive IPC: solo %.4f mix %.4f", bench, solo, mix)
		}
		if mix > solo {
			t.Errorf("%s: in-mix IPC %.4f exceeds solo %.4f", bench, mix, solo)
		}
		if s := res.Series["Mix_Slowdown"][bench]; s <= 1 {
			t.Errorf("%s: mix slowdown %.3f not above 1 despite contention", bench, s)
		}
		if adv, mixS := res.Series["Adv_Slowdown"][bench], res.Series["Mix_Slowdown"][bench]; adv < mixS {
			t.Errorf("%s: adversarial slowdown %.3f below clean-mix slowdown %.3f", bench, adv, mixS)
		}
		if p99 := res.Series["Mix_p99_Fetch"][bench]; p99 <= 0 {
			t.Errorf("%s: p99 fetch latency %.1f not positive", bench, p99)
		}
	}
}

// TestTenantsDeterministicAcrossWorkers: the matrix's snapshot is
// byte-identical between a sequential and a four-worker sweep.
func TestTenantsDeterministicAcrossWorkers(t *testing.T) {
	seq := tenancyOpts()
	seq.Workers = 1
	par := tenancyOpts()
	par.Workers = 4
	a, err := Tenants(context.Background(), seq)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Tenants(context.Background(), par)
	if err != nil {
		t.Fatal(err)
	}
	ja, err := a.Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	jb, err := b.Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(ja) != string(jb) {
		t.Errorf("tenants snapshot differs between -j 1 and -j 4:\n%s\nvs\n%s", ja, jb)
	}
}

// TestCapacityConverges pins the capacity search's contract: for a
// fixed seed and SLO the search lands on the same tenant count every
// run, an unmeetably tight slowdown bound caps capacity at a single
// tenant (a lone tenant's slowdown is exactly 1), and a bound looser
// than anything the mix can produce saturates at MaxTenants.
func TestCapacityConverges(t *testing.T) {
	opt := tenancyOpts()
	opt.Scale.Instructions = 5_000
	opt.Benchmarks = []string{"gzip"}

	opt.SLOMaxSlowdown = 1 // only a solo run is exactly 1
	res, err := Capacity(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	again, err := Capacity(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, col := range partitionColumns["capacity"] {
		got := res.Series[col]["gzip"]
		if got != 1 {
			t.Errorf("slowdown-1 SLO: capacity[%s] = %v, want 1", col, got)
		}
		if r := again.Series[col]["gzip"]; r != got {
			t.Errorf("capacity[%s] not reproducible: %v then %v", col, got, r)
		}
	}

	opt.SLOMaxSlowdown = 1e6 // effectively unconstrained
	res, err = Capacity(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, col := range partitionColumns["capacity"] {
		if got := res.Series[col]["gzip"]; got != float64(opt.MaxTenants) {
			t.Errorf("loose SLO: capacity[%s] = %v, want MaxTenants %d", col, got, opt.MaxTenants)
		}
	}
}
