package experiments

import (
	"context"
	"errors"
	"strings"
	"testing"

	"ctrpred/internal/workload"
)

// quickOpts keeps experiment tests fast: a few benchmarks, small windows.
func quickOpts() Options {
	return Options{
		// Big enough that a 128 KB counter cache cannot cover the working
		// set (the Figure 7 contrast), small enough for fast tests.
		Scale:      workload.Scale{Footprint: 4 << 20, Instructions: 30_000},
		Benchmarks: []string{"mcf", "gzip", "swim"},
		Seed:       3,
	}
}

func TestIDsRoundTrip(t *testing.T) {
	for _, id := range IDs() {
		if id == "table1" {
			continue // no sim needed
		}
	}
	if _, err := ByID(context.Background(), "bogus", quickOpts()); !errors.Is(err, ErrUnknownExperiment) {
		t.Fatalf("ByID(bogus) = %v, want errors.Is(err, ErrUnknownExperiment)", err)
	}
	if len(IDs()) != 22 {
		t.Fatalf("IDs() has %d entries", len(IDs()))
	}
}

func TestTable1(t *testing.T) {
	res := Table1()
	s := res.Table.String()
	for _, want := range []string{"Fetch/Decode width", "AES latency", "Prediction depth", "96"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table 1 missing %q:\n%s", want, s)
		}
	}
}

func TestFigure4Timeline(t *testing.T) {
	res, err := Figure4Timeline(context.Background(), quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	base := res.Series["baseline"]["data_ready"]
	pred := res.Series["otp-prediction"]["data_ready"]
	warm := res.Series["seqcache(warm)"]["data_ready"]
	orac := res.Series["oracle"]["data_ready"]
	if !(pred < base) {
		t.Fatalf("prediction (%v) not faster than baseline (%v)", pred, base)
	}
	if !(warm < base) || !(orac < base) {
		t.Fatalf("warm cache (%v) / oracle (%v) not faster than baseline (%v)", warm, orac, base)
	}
}

func TestFigure7Shape(t *testing.T) {
	res, err := Figure7(context.Background(), quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	predAvg := res.Series["Pred"]["Average"]
	c128 := res.Series["128K_Seq#_Cache"]["Average"]
	if predAvg <= c128 {
		t.Fatalf("prediction average %.3f not above 128K cache %.3f", predAvg, c128)
	}
	if predAvg < 0.5 || predAvg > 1.0 {
		t.Fatalf("prediction average %.3f implausible", predAvg)
	}
	// Table has one row per benchmark plus Average.
	if res.Table.NumRows() != len(quickOpts().Benchmarks)+1 {
		t.Fatalf("rows = %d", res.Table.NumRows())
	}
}

func TestFigure9Shape(t *testing.T) {
	res, err := Figure9(context.Background(), quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, bench := range quickOpts().Benchmarks {
		total := res.Series["Pred_Hit"][bench] + res.Series["Seq_Only"][bench] + res.Series["Both_Hit"][bench]
		if total < 0 || total > 1.0001 {
			t.Fatalf("%s: coverage fractions sum to %v", bench, total)
		}
	}
}

func TestFigure10Shape(t *testing.T) {
	opt := quickOpts()
	opt.Benchmarks = []string{"mcf"} // keep the perf-mode run count low
	res, err := Figure10(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	for name, series := range res.Series {
		v := series["mcf"]
		if v <= 0 || v > 1.15 {
			t.Fatalf("%s normalized IPC = %v, want (0, ~1]", name, v)
		}
	}
	if res.Series["Pred"]["mcf"] <= res.Series["Seq_Cache_4K"]["mcf"] {
		t.Fatalf("prediction (%v) not above 4K cache (%v) on mcf",
			res.Series["Pred"]["mcf"], res.Series["Seq_Cache_4K"]["mcf"])
	}
}

func TestFigure12Shape(t *testing.T) {
	res, err := Figure12(context.Background(), quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	reg := res.Series["Regular"]["Average"]
	two := res.Series["Two-level"]["Average"]
	ctx := res.Series["Context"]["Average"]
	if two < reg-0.02 {
		t.Fatalf("two-level average %.3f below regular %.3f", two, reg)
	}
	if ctx < reg-0.02 {
		t.Fatalf("context average %.3f below regular %.3f", ctx, reg)
	}
}

func TestFigure14Shape(t *testing.T) {
	res, err := Figure14(context.Background(), quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	small := res.Series["256KB_L2"]["Average"]
	big := res.Series["1MB_L2"]["Average"]
	if big > small {
		t.Fatalf("1MB L2 issued more predictions (%v) than 256KB (%v)", big, small)
	}
}

func TestAblationShape(t *testing.T) {
	opt := quickOpts()
	opt.Benchmarks = []string{"gzip", "mcf"}
	res, err := Ablation(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	rates := res.Series["pred_rate"]
	if rates["regular (default)"] < rates["non-adaptive"]-0.02 {
		t.Fatalf("adaptive (%v) worse than non-adaptive (%v)", rates["regular (default)"], rates["non-adaptive"])
	}
	if rates["depth=11"] < rates["depth=1"]-0.02 {
		t.Fatalf("depth=11 (%v) worse than depth=1 (%v)", rates["depth=11"], rates["depth=1"])
	}
	if len(rates) != 10 {
		t.Fatalf("ablation has %d variants", len(rates))
	}
}

func TestContextSwitchShape(t *testing.T) {
	opt := quickOpts()
	opt.Benchmarks = []string{"mcf", "vpr"}
	res, err := ContextSwitch(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	cacheNone := res.Series["seqcache-128K"]["none"]
	cacheFast := res.Series["seqcache-128K"]["window/128"]
	predNone := res.Series["pred-regular"]["none"]
	predFast := res.Series["pred-regular"]["window/128"]
	if cacheFast > cacheNone+0.01 {
		t.Fatalf("cache coverage rose under switching: %.3f -> %.3f", cacheNone, cacheFast)
	}
	// Prediction must degrade far less than caching does.
	cacheLoss := cacheNone - cacheFast
	predLoss := predNone - predFast
	if predLoss > cacheLoss/2+0.02 {
		t.Fatalf("prediction lost %.3f vs cache loss %.3f — asymmetry missing", predLoss, cacheLoss)
	}
}

func TestIntegrityShape(t *testing.T) {
	opt := quickOpts()
	opt.Benchmarks = []string{"mcf"}
	res, err := Integrity(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	for scheme, ratio := range map[string]float64{
		"baseline":     res.Series["normalized_ipc"]["baseline"],
		"pred-regular": res.Series["normalized_ipc"]["pred-regular"],
	} {
		if ratio <= 0 || ratio > 1.0001 {
			t.Fatalf("%s tree/no-tree IPC ratio = %.3f, want (0, 1]", scheme, ratio)
		}
	}
}

func TestHybridShape(t *testing.T) {
	opt := quickOpts()
	opt.Benchmarks = []string{"mcf"}
	res, err := Hybrid(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	v := res.Series["normalized_ipc"]
	if v["prediction-only"] <= v["baseline"] {
		t.Fatalf("prediction (%.3f) not above baseline (%.3f)", v["prediction-only"], v["baseline"])
	}
	if v["hybrid"] < v["prediction-only"]-0.02 {
		t.Fatalf("hybrid (%.3f) below prediction alone (%.3f)", v["hybrid"], v["prediction-only"])
	}
}

func TestSeqCacheSweepShape(t *testing.T) {
	opt := quickOpts()
	opt.Benchmarks = []string{"mcf", "vpr"}
	res, err := SeqCacheSweep(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	h := res.Series["hit_rate"]
	if h["1024KB"] < h["4KB"] {
		t.Fatalf("hit rate fell with size: %.3f -> %.3f", h["4KB"], h["1024KB"])
	}
	// The motivating contrast: prediction with zero storage beats the
	// mid-sized caches on these pointer-chasing benchmarks.
	if h["prediction (0KB)"] <= h["128KB"] {
		t.Fatalf("prediction (%.3f) not above 128KB cache (%.3f)", h["prediction (0KB)"], h["128KB"])
	}
}

func TestValuePredictionShape(t *testing.T) {
	opt := quickOpts()
	opt.Benchmarks = []string{"mcf"}
	res, err := ValuePrediction(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	v := res.Series["normalized_ipc"]
	// On pointer chasing, value locality is poor: LVP alone cannot match
	// counter prediction (the paper's §9.3 distinction).
	if v["lvp-only"] >= v["otp-pred-only"] {
		t.Fatalf("LVP alone (%.3f) matched OTP prediction (%.3f) on mcf", v["lvp-only"], v["otp-pred-only"])
	}
	if v["otp-pred+lvp"] < v["otp-pred-only"]-0.02 {
		t.Fatalf("adding LVP hurt (%.3f vs %.3f)", v["otp-pred+lvp"], v["otp-pred-only"])
	}
}

func TestOptionsNormalized(t *testing.T) {
	o := Options{}.normalized()
	if o.Scale.Footprint == 0 || o.Scale.Instructions == 0 || len(o.Benchmarks) != 14 || o.Seed == 0 {
		t.Fatalf("normalized options incomplete: %+v", o)
	}
}

func TestL2Name(t *testing.T) {
	if l2Name(256<<10) != "256KB" || l2Name(1<<20) != "1MB" {
		t.Fatal("l2Name wrong")
	}
}
