package experiments

import (
	"context"
	"reflect"
	"testing"

	"ctrpred/internal/cryptoengine"
	"ctrpred/internal/sim"
)

// enginesOpts shrinks the engines grid for tests: two benchmarks at the
// quick scale. Performance mode is what the experiment runs, so no
// window stretching applies.
func enginesOpts() Options {
	opt := quickOpts()
	opt.Benchmarks = []string{"mcf", "gzip"}
	return opt
}

// TestEnginesDeterministic: the engines experiment's table and series
// are byte-identical at -j 1 and -j 4 for the same seed.
func TestEnginesDeterministic(t *testing.T) {
	seq := enginesOpts()
	seq.Workers = 1
	par := enginesOpts()
	par.Workers = 4

	a, err := ByID(context.Background(), "engines", seq)
	if err != nil {
		t.Fatalf("sequential: %v", err)
	}
	b, err := ByID(context.Background(), "engines", par)
	if err != nil {
		t.Fatalf("parallel: %v", err)
	}
	if a.Table.String() != b.Table.String() {
		t.Fatalf("parallel table differs from sequential:\n--- j=1 ---\n%s\n--- j=4 ---\n%s", a.Table, b.Table)
	}
	if !reflect.DeepEqual(a.Series, b.Series) {
		t.Fatalf("parallel series differ from sequential:\n%v\nvs\n%v", a.Series, b.Series)
	}
	if a.Notes != b.Notes {
		t.Fatalf("notes differ: %q vs %q", a.Notes, b.Notes)
	}
}

// TestEnginesShape checks the experiment's structure and the claims it
// exists to make: one column per engine spec, every edge positive, the
// bipbip column's average edge at or below the slowest AES column's
// (when decryption is nearly free there is nearly nothing to predict
// around), and a crossover series present.
func TestEnginesShape(t *testing.T) {
	res, err := Engines(context.Background(), enginesOpts())
	if err != nil {
		t.Fatal(err)
	}
	specs := enginesColumns()
	for _, spec := range specs {
		col, ok := res.Series[spec.String()]
		if !ok {
			t.Fatalf("missing series %q", spec.String())
		}
		for bench, v := range col {
			if v <= 0 {
				t.Errorf("%s/%s edge = %v, want > 0", spec, bench, v)
			}
		}
	}
	slowest := cryptoengine.Spec{Model: cryptoengine.ModelAES, LatencyCycles: 192}.Normalized()
	bipbip := cryptoengine.Spec{Model: cryptoengine.ModelBipBip}.Normalized()
	if res.Series[bipbip.String()]["Average"] > res.Series[slowest.String()]["Average"] {
		t.Errorf("bipbip average edge %v above aes:lat=192's %v — prediction should matter least when decryption is cheapest",
			res.Series[bipbip.String()]["Average"], res.Series[slowest.String()]["Average"])
	}
	if _, ok := res.Series["crossover"]["aes_latency_cycles"]; !ok {
		t.Error("missing crossover series")
	}
	if res.Notes == "" {
		t.Error("missing interpretation note")
	}
}

// TestOptionsEngineThreads: Options.Engine reaches the per-simulation
// configs of ordinary experiments (the engines experiment ignores it).
func TestOptionsEngineThreads(t *testing.T) {
	opt := quickOpts().normalized()
	opt.Engine = cryptoengine.Spec{Model: cryptoengine.ModelBipBip}
	for name, engine := range map[string]cryptoengine.Spec{
		"perf":    perfConfig(opt, sim.SchemeBaseline(), 256<<10).Engine,
		"hitrate": hitRateConfig(opt, sim.SchemeBaseline(), 256<<10).Engine,
	} {
		if engine.Model != cryptoengine.ModelBipBip {
			t.Errorf("%sConfig engine = %+v, want bipbip", name, engine)
		}
	}
}
