package experiments

import (
	"context"
	"fmt"
	"sort"

	"ctrpred/internal/cryptoengine"
	"ctrpred/internal/predictor"
	"ctrpred/internal/runpool"
	"ctrpred/internal/sim"
	"ctrpred/internal/stats"
)

// enginesAESLatencies is the AES-latency sweep of the engines
// experiment, ascending. 96 is the paper's Table 1 point; 24 and 48
// stand in for faster modern pipelines, 192 for a wider block or a
// slower clock domain.
var enginesAESLatencies = []uint64{24, 48, 96, 192}

// enginesEdgeThreshold is the normalized-IPC edge below which context
// prediction is considered to have stopped paying: within 1% of the
// baseline is noise at these instruction windows.
const enginesEdgeThreshold = 1.01

// enginesColumns returns the engine specs the experiment sweeps, in
// column order: the AES latency ladder, then the two bracketing modern
// models from PAPERS.md (Sealer-style banked in-SRAM AES, BipBip-style
// low-latency tweakable cipher).
func enginesColumns() []cryptoengine.Spec {
	specs := make([]cryptoengine.Spec, 0, len(enginesAESLatencies)+2)
	for _, lat := range enginesAESLatencies {
		specs = append(specs, cryptoengine.Spec{Model: cryptoengine.ModelAES, LatencyCycles: lat}.Normalized())
	}
	specs = append(specs,
		cryptoengine.Spec{Model: cryptoengine.ModelSealer}.Normalized(),
		cryptoengine.Spec{Model: cryptoengine.ModelBipBip}.Normalized())
	return specs
}

// Engines sweeps scheme × engine × latency on the Figure 7 benchmarks:
// for every engine model it runs baseline and pred-context in
// performance mode and reports pred-context's IPC edge (IPC ratio over
// baseline). The paper's 96-cycle pipelined AES is one column among the
// sweep; the AES latency ladder locates the crossover latency below
// which context prediction's edge over the baseline vanishes, and the
// sealer/bipbip columns bracket the modern design space. Options.Engine
// is ignored — sweeping engines is this experiment's job.
func Engines(ctx context.Context, opt Options) (Result, error) {
	opt = opt.normalized()
	specs := enginesColumns()
	colNames := make([]string, len(specs))
	for i, s := range specs {
		colNames[i] = s.String()
	}

	res := Result{
		ID:     "engines",
		Title:  "Context prediction's IPC edge over baseline, per cipher engine",
		Series: make(map[string]map[string]float64),
	}
	cols := append([]string{"benchmark"}, colNames...)
	res.Table = stats.NewTable(fmt.Sprintf("%s — %s", res.ID, res.Title), cols...)
	for _, name := range colNames {
		res.Series[name] = make(map[string]float64)
	}
	benchmarks := append([]string(nil), opt.Benchmarks...)
	sort.Strings(benchmarks)

	// One job per benchmark × engine, running the baseline and the
	// pred-context machine back to back: the edge is a ratio of the two,
	// so pairing them in one job keeps the grid half the size and the
	// division local.
	jobs := make([]runpool.Job[float64], 0, len(benchmarks)*len(specs))
	for _, bench := range benchmarks {
		for _, spec := range specs {
			jobs = append(jobs, runpool.Job[float64]{
				Label: fmt.Sprintf("engines %s/%s", bench, spec),
				Fn: func(ctx context.Context) (float64, error) {
					base, err := opt.runSim(ctx, bench, perfConfig(opt, sim.SchemeBaseline(), 256<<10).WithEngine(spec))
					if err != nil {
						return 0, fmt.Errorf("engines: %s/%s baseline: %w", bench, spec, err)
					}
					pred, err := opt.runSim(ctx, bench, perfConfig(opt, sim.SchemePred(predictor.SchemeContext), 256<<10).WithEngine(spec))
					if err != nil {
						return 0, fmt.Errorf("engines: %s/%s pred-context: %w", bench, spec, err)
					}
					return pred.IPC() / base.IPC(), nil
				},
			})
		}
	}
	vals, err := runpool.RunContext(ctx, opt.pool(), jobs)
	if err != nil {
		return Result{}, err
	}

	sums := make([]float64, len(specs))
	k := 0
	for _, bench := range benchmarks {
		row := make([]float64, len(specs))
		for i := range specs {
			v := vals[k]
			k++
			row[i] = v
			sums[i] += v
			res.Series[colNames[i]][bench] = v
		}
		res.Table.AddFloats(bench, 3, row...)
	}
	avgs := make([]float64, len(specs))
	for i := range specs {
		avgs[i] = sums[i] / float64(len(benchmarks))
		res.Series[colNames[i]]["Average"] = avgs[i]
	}
	res.Table.AddFloats("Average", 3, avgs...)

	enginesFinalize(&res, avgs)
	return res, nil
}

// enginesFinalize derives the crossover latency and the notes line from
// the per-column average edges. It is shared with MergeParts so a
// cluster-assembled engines result finalizes through exactly the same
// code path as a single-node run.
func enginesFinalize(res *Result, avgs []float64) {
	// Crossover: the largest swept AES latency whose average edge stays
	// within the noise threshold — below it, precomputing pads no longer
	// buys IPC. 0 means prediction pays at every swept latency.
	var crossover uint64
	for i, lat := range enginesAESLatencies {
		if avgs[i] <= enginesEdgeThreshold {
			crossover = lat
		}
	}
	res.Series["crossover"] = map[string]float64{"aes_latency_cycles": float64(crossover)}
	if crossover == 0 {
		res.Notes = fmt.Sprintf("Context prediction keeps an IPC edge > %.0f%% at every swept AES latency (%v); only the bipbip-style engine, where decryption is nearly free, makes prediction redundant by construction.",
			(enginesEdgeThreshold-1)*100, enginesAESLatencies)
	} else {
		res.Notes = fmt.Sprintf("Context prediction's IPC edge over baseline vanishes (≤ %.0f%%) at AES latency %d cycles and below; above it — and under the sealer-style banked engine — precomputation still pays.",
			(enginesEdgeThreshold-1)*100, crossover)
	}
}
