package experiments

import (
	"context"
	"fmt"
	"sort"

	"ctrpred/internal/faults"
	"ctrpred/internal/predictor"
	"ctrpred/internal/runpool"
	"ctrpred/internal/secmem"
	"ctrpred/internal/sim"
	"ctrpred/internal/stats"
	"ctrpred/internal/tenancy"
)

// tenancyFootprint pins every tenant's working set. Like the attack
// campaign's pinned footprint:L2 ratio, this is deliberate: a solo
// tenant's set fits the default 256 KB L2, so nearly all of the
// interleaved run's extra misses are switch-in disturbance — the effect
// the scenarios measure — rather than capacity misses both runs share.
const tenancyFootprint = 256 << 10

// tenantBackgroundBench is the fixed co-tenant of the interference
// matrix. A constant (not derived from Options.Benchmarks) keeps each
// benchmark's cell independent of the requested set, so per-benchmark
// cluster cells compute exactly what the full grid would.
const tenantBackgroundBench = "mcf"

// tenantSeedStride separates tenant key domains: tenant i of a scenario
// is seeded base + i·stride, so every tenant gets its own workload
// layout, key material and predictor roots.
const tenantSeedStride = 1_000_003

// tenantSeed returns tenant i's seed for a scenario built on base.
func tenantSeed(base uint64, i int) uint64 {
	return base + uint64(i)*tenantSeedStride
}

// tenantConfig builds one tenant's machine config: performance mode,
// pinned footprint, per-tenant seed, and no background flusher — the
// schedule's context switches drive all eviction traffic, so the
// interference counters attribute cleanly.
func tenantConfig(opt Options, scheme sim.Scheme, seed uint64) sim.Config {
	cfg := sim.DefaultConfig(scheme)
	cfg.Scale = opt.Scale
	cfg.Scale.Footprint = tenancyFootprint
	cfg.Seed = seed
	cfg.Mem.FlushInterval = 0
	return cfg.WithEngine(opt.Engine)
}

// adversaryConfig arms the background tenant with a bit-flip attack
// plan (the class that is applicable on any fetch), the integrity tree
// and quarantine recovery, so the adversarial scenario's co-tenant
// spends its slices absorbing detections and recovery traffic — the
// worst-neighbor shape of the interference matrix.
func adversaryConfig(opt Options, scheme sim.Scheme, seed uint64) sim.Config {
	cfg := tenantConfig(opt, scheme, seed).WithIntegrity()
	cfg.Recovery = secmem.RecoveryQuarantine
	cfg.Faults = campaignPlan(faults.BitFlip, campaignAttacks)
	return cfg
}

// runScenario executes one tenancy scenario under the per-simulation
// deadline, like runSim does for single machines.
func (o Options) runScenario(ctx context.Context, cfg tenancy.Config) (tenancy.Report, error) {
	if o.SimTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, o.SimTimeout)
		defer cancel()
	}
	return tenancy.Run(ctx, cfg)
}

// tenantsScheme is the machine configuration the interference matrix
// runs every tenant under: the paper's best combined design.
func tenantsScheme() sim.Scheme {
	return sim.SchemeCombined(32<<10, predictor.SchemeRegular)
}

// tenantsColumns names the interference matrix's series in table order
// — the same slice MergeParts reassembles cluster cells by.
var tenantsColumns = partitionColumns["tenants"]

// Tenants runs the multi-tenant interference matrix: every benchmark as
// the victim tenant, interleaved with a fixed background tenant by the
// configured arrival process, under three scenarios — the plain mix
// (predictor flushed on switch), the same mix with predictor state
// retained across switches (the paper's save/restore-with-context
// policy), and an adversarial mix whose co-tenant continuously absorbs
// injected attacks under quarantine recovery. Reported per victim:
// solo IPC, in-mix IPC, end-to-end slowdown (solo IPC over effective
// IPC, waiting included) and p99 fetch latency.
func Tenants(ctx context.Context, opt Options) (Result, error) {
	opt = opt.normalized()
	res := Result{
		ID: "Tenants",
		Title: fmt.Sprintf("Multi-tenant interference matrix (vs %s, %s arrivals, combined 32K+pred)",
			tenantBackgroundBench, opt.Arrival),
		Notes: "Retain_Slowdown ≤ Mix_Slowdown shows the value of saving predictor state with process context; " +
			"Adv_* rows co-schedule a tenant absorbing bit-flip attacks under quarantine recovery.",
		Series: make(map[string]map[string]float64),
	}
	res.Table = stats.NewTable("Tenants — "+res.Title, append([]string{"benchmark"}, tenantsColumns...)...)
	for _, name := range tenantsColumns {
		res.Series[name] = make(map[string]float64)
	}
	benchmarks := append([]string(nil), opt.Benchmarks...)
	sort.Strings(benchmarks)

	scheme := tenantsScheme()
	jobs := make([]runpool.Job[[7]float64], len(benchmarks))
	for i, bench := range benchmarks {
		jobs[i] = runpool.Job[[7]float64]{
			Label: fmt.Sprintf("tenants %s", bench),
			Fn: func(ctx context.Context) ([7]float64, error) {
				var out [7]float64
				victimCfg := tenantConfig(opt, scheme, tenantSeed(opt.Seed, 0))
				bgCfg := tenantConfig(opt, scheme, tenantSeed(opt.Seed, 1))
				soloV, err := opt.runSim(ctx, bench, victimCfg)
				if err != nil {
					return out, fmt.Errorf("tenants %s: victim solo: %w", bench, err)
				}
				soloB, err := opt.runSim(ctx, tenantBackgroundBench, bgCfg)
				if err != nil {
					return out, fmt.Errorf("tenants %s: background solo: %w", bench, err)
				}
				solos := []float64{soloV.IPC(), soloB.IPC()}
				base := tenancy.Config{
					Tenants: []tenancy.Tenant{
						{Bench: bench, Config: victimCfg},
						{Bench: tenantBackgroundBench, Config: bgCfg},
					},
					Kind: opt.Arrival, Seed: opt.Seed, SoloIPC: solos,
				}
				mix, err := opt.runScenario(ctx, base)
				if err != nil {
					return out, fmt.Errorf("tenants %s: mix: %w", bench, err)
				}
				retainCfg := base
				retainCfg.RetainPredictor = true
				retain, err := opt.runScenario(ctx, retainCfg)
				if err != nil {
					return out, fmt.Errorf("tenants %s: retain: %w", bench, err)
				}
				advCfg := base
				advCfg.Tenants = []tenancy.Tenant{
					{Bench: bench, Config: victimCfg},
					{Bench: tenantBackgroundBench, Config: adversaryConfig(opt, scheme, tenantSeed(opt.Seed, 1))},
				}
				adv, err := opt.runScenario(ctx, advCfg)
				if err != nil {
					return out, fmt.Errorf("tenants %s: adversarial: %w", bench, err)
				}
				v := mix.Tenants[0]
				out = [7]float64{
					solos[0], v.IPC, v.Slowdown, v.P99FetchLatency,
					retain.Tenants[0].Slowdown,
					adv.Tenants[0].Slowdown, adv.Tenants[0].P99FetchLatency,
				}
				return out, nil
			},
		}
	}
	vals, err := runpool.RunContext(ctx, opt.pool(), jobs)
	if err != nil {
		return Result{}, err
	}

	sums := make([]float64, len(tenantsColumns))
	for i, bench := range benchmarks {
		row := make([]float64, len(tenantsColumns))
		for j, name := range tenantsColumns {
			row[j] = vals[i][j]
			sums[j] += row[j]
			res.Series[name][bench] = row[j]
		}
		res.Table.AddFloats(bench, 3, row...)
	}
	n := float64(len(benchmarks))
	avgs := make([]float64, len(tenantsColumns))
	for j, name := range tenantsColumns {
		avgs[j] = sums[j] / n
		res.Series[name]["Average"] = avgs[j]
	}
	res.Table.AddFloats("Average", 3, avgs...)
	return res, nil
}

// capacitySLO assembles the declared SLO from the options.
func capacitySLO(opt Options) tenancy.SLO {
	return tenancy.SLO{MaxSlowdown: opt.SLOMaxSlowdown, P99FetchLatency: opt.SLOP99Fetch}
}

// capacitySearch binary-searches the largest tenant count, up to
// opt.MaxTenants, at which every tenant of an all-bench mix still meets
// the SLO. The search is valid because the binding metric — end-to-end
// slowdown — is monotone in the tenant count: each added tenant's
// slices only push every completion later in global virtual time. Solo
// baselines for all MaxTenants key domains are computed once and shared
// across probes, so the probes differ only in mix size.
func capacitySearch(ctx context.Context, opt Options, bench string, scheme sim.Scheme) (float64, error) {
	maxN := opt.MaxTenants
	solos := make([]float64, maxN)
	cfgs := make([]sim.Config, maxN)
	for i := 0; i < maxN; i++ {
		cfgs[i] = tenantConfig(opt, scheme, tenantSeed(opt.Seed, i))
		r, err := opt.runSim(ctx, bench, cfgs[i])
		if err != nil {
			return 0, fmt.Errorf("capacity %s/%s: solo %d: %w", bench, scheme.Name, i, err)
		}
		solos[i] = r.IPC()
	}
	meets := func(n int) (bool, error) {
		tens := make([]tenancy.Tenant, n)
		for i := range tens {
			tens[i] = tenancy.Tenant{Bench: bench, Config: cfgs[i]}
		}
		rep, err := opt.runScenario(ctx, tenancy.Config{
			Tenants: tens, Kind: opt.Arrival, Seed: opt.Seed,
			SLO: capacitySLO(opt), SoloIPC: solos[:n],
		})
		if err != nil {
			return false, fmt.Errorf("capacity %s/%s: n=%d: %w", bench, scheme.Name, n, err)
		}
		return rep.MeetsSLO, nil
	}
	ok, err := meets(1)
	if err != nil {
		return 0, err
	}
	if !ok {
		return 0, nil // even a lone tenant misses the SLO
	}
	lo, hi := 1, maxN
	for lo < hi {
		mid := (lo + hi + 1) / 2
		ok, err := meets(mid)
		if err != nil {
			return 0, err
		}
		if ok {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return float64(lo), nil
}

// Capacity runs the capacity-planning experiment: for every benchmark
// and each scheme of the availability ladder, the largest number of
// co-scheduled tenants (identical programs, separate key domains) that
// still meets the declared SLO. The question under test, lifting the
// paper's context-switch analysis to a served deployment: whether
// prediction-based designs sustain more tenants at the same SLO than
// sequence-number caches, whose warm state is costlier to lose on a
// switch. Tight SLOs separate the schemes; loose ones are dominated by
// core sharing and tie.
func Capacity(ctx context.Context, opt Options) (Result, error) {
	opt = opt.normalized()
	schemes := []sim.Scheme{
		sim.SchemeSeqCache(32 << 10),
		sim.SchemePred(predictor.SchemeRegular),
		sim.SchemeCombined(32<<10, predictor.SchemeRegular),
	}
	cols := []string{"Seq_Cache_32K", "Pred", "Combined_32K"}
	title := fmt.Sprintf("Max sustainable tenants (SLO: slowdown ≤ %g%s, %s arrivals, ≤ %d tenants)",
		opt.SLOMaxSlowdown, p99Clause(opt.SLOP99Fetch), opt.Arrival, opt.MaxTenants)
	notes := "Capacity = largest co-tenant count meeting the SLO; the binary search converges " +
		"to the same count for a fixed seed and SLO on every run and worker count."
	return sweep(ctx, "Capacity", title, notes, opt, schemes, cols, func(ctx context.Context, bench string, _ int, sch sim.Scheme) (float64, error) {
		return capacitySearch(ctx, opt, bench, sch)
	})
}

// p99Clause renders the optional p99 bound for the capacity title.
func p99Clause(p99 float64) string {
	if p99 <= 0 {
		return ""
	}
	return fmt.Sprintf(", p99 fetch ≤ %g", p99)
}
