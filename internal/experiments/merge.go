package experiments

import (
	"encoding/json"
	"fmt"
	"sort"

	"ctrpred/internal/stats"
)

// This file is the reassembly half of distributed experiments. A
// cluster coordinator splits a partitionable experiment's grid into
// per-benchmark cells — each cell is the same experiment run with
// Benchmarks restricted to one name — dispatches the cells to worker
// nodes, and calls MergeParts to reassemble the full Result. Every
// simulation inside a cell is an isolated seeded machine, so a cell
// computes exactly the values the full run would have computed for that
// benchmark; the merge then rebuilds the table rows in sorted benchmark
// order and re-accumulates the Average row with the same float
// operations the single-node sweep uses. The assembled Result — table
// string and Snapshot JSON — is byte-identical to a single-node
// RunExperimentContext of the full grid.

// partitionColumns names, in table order, the series columns of every
// experiment whose grid decomposes by benchmark: one table row per
// benchmark plus an arithmetic-mean Average row. Experiments whose rows
// are not benchmarks (ablation variants, attack classes, cache-size
// sweeps, the static tables) are absent — a coordinator runs those as a
// single cell on one node. Engines is special-cased: its columns are
// the engine-spec ladder, and its crossover/notes derive from the
// merged averages (see MergeParts).
var partitionColumns = map[string][]string{
	"fig7":  {"128K_Seq#_Cache", "512K_Seq#_Cache", "Pred"},
	"fig8":  {"128K_Seq#_Cache", "512K_Seq#_Cache", "Pred"},
	"fig9":  {"Pred_Hit", "Seq_Only", "Both_Hit"},
	"fig10": {"Seq_Cache_4K", "Seq_Cache_128K", "Seq_Cache_512K", "Pred"},
	"fig11": {"Seq_Cache_4K", "Seq_Cache_128K", "Seq_Cache_512K", "Pred"},
	"fig12": {"Regular", "Two-level", "Context"},
	"fig13": {"Regular", "Two-level", "Context"},
	"fig14": {"256KB_L2", "1MB_L2"},
	"fig15": {"Regular", "Two-level", "Context"},
	"fig16": {"Regular", "Two-level", "Context"},
	"tenants": {"Solo_IPC", "Mix_IPC", "Mix_Slowdown", "Mix_p99_Fetch",
		"Retain_Slowdown", "Adv_Slowdown", "Adv_p99_Fetch"},
	"capacity": {"Seq_Cache_32K", "Pred", "Combined_32K"},
}

// Partitionable reports whether the experiment's grid decomposes into
// independent per-benchmark cells that MergeParts can reassemble.
func Partitionable(id string) bool {
	if id == "engines" {
		return true
	}
	_, ok := partitionColumns[id]
	return ok
}

// columnOrder returns the table column order for a partitionable id.
func columnOrder(id string) ([]string, error) {
	if id == "engines" {
		specs := enginesColumns()
		cols := make([]string, len(specs))
		for i, s := range specs {
			cols[i] = s.String()
		}
		return cols, nil
	}
	cols, ok := partitionColumns[id]
	if !ok {
		return nil, fmt.Errorf("experiments: %q does not partition by benchmark", id)
	}
	return cols, nil
}

// DecodeResultSnapshot parses a Result.Snapshot JSON body — the wire
// form a worker node returns — back into a Result. The table is not
// reconstructed (snapshots do not carry column order); MergeParts
// rebuilds it for the assembled whole.
func DecodeResultSnapshot(body []byte) (Result, error) {
	var snap stats.Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		return Result{}, fmt.Errorf("experiments: decoding result snapshot: %w", err)
	}
	res := Result{Series: make(map[string]map[string]float64)}
	for _, l := range snap.Labels {
		switch l.Name {
		case "id":
			res.ID = l.Value
		case "title":
			res.Title = l.Value
		case "notes":
			res.Notes = l.Value
		}
	}
	for _, c := range snap.Children {
		pts := make(map[string]float64, len(c.Values))
		for _, v := range c.Values {
			pts[v.Name] = v.Value
		}
		res.Series[c.Name] = pts
	}
	return res, nil
}

// MergeParts reassembles the full Result of a partitionable experiment
// from per-benchmark parts (each a Result holding one or more
// benchmarks' rows, as decoded from a cell's snapshot). Rows are merged
// in sorted benchmark order and the Average row is re-accumulated with
// the same operation order as the single-node sweep, so the merged
// table and Snapshot are byte-identical to running the whole grid in
// one process. JSON round-trips are exact for float64, so parts that
// crossed the network merge without drift.
func MergeParts(id string, parts []Result) (Result, error) {
	if !Partitionable(id) {
		return Result{}, fmt.Errorf("experiments: %q does not partition by benchmark", id)
	}
	if len(parts) == 0 {
		return Result{}, fmt.Errorf("experiments: no parts to merge for %q", id)
	}
	cols, err := columnOrder(id)
	if err != nil {
		return Result{}, err
	}

	res := Result{
		ID:     parts[0].ID,
		Title:  parts[0].Title,
		Notes:  parts[0].Notes,
		Series: make(map[string]map[string]float64),
	}
	for _, name := range cols {
		res.Series[name] = make(map[string]float64)
	}

	// Union the parts' benchmarks (the per-part Average rows are
	// artifacts of the split and are discarded — the real Average is
	// re-accumulated over the merged set below).
	benchSet := make(map[string]bool)
	for _, p := range parts {
		if p.ID != res.ID {
			return Result{}, fmt.Errorf("experiments: merging mismatched parts %q and %q", res.ID, p.ID)
		}
		for _, name := range cols {
			for bench, v := range p.Series[name] {
				if bench == "Average" {
					continue
				}
				if prev, ok := res.Series[name][bench]; ok && prev != v {
					return Result{}, fmt.Errorf("experiments: %s: parts disagree on %s/%s: %g vs %g", id, name, bench, prev, v)
				}
				res.Series[name][bench] = v
				benchSet[bench] = true
			}
		}
	}
	benchmarks := make([]string, 0, len(benchSet))
	for b := range benchSet {
		benchmarks = append(benchmarks, b)
	}
	sort.Strings(benchmarks)

	res.Table = stats.NewTable(fmt.Sprintf("%s — %s", tableID(id, res), res.Title),
		append([]string{"benchmark"}, cols...)...)
	sums := make([]float64, len(cols))
	for _, bench := range benchmarks {
		row := make([]float64, len(cols))
		for i, name := range cols {
			v, ok := res.Series[name][bench]
			if !ok {
				return Result{}, fmt.Errorf("experiments: %s: no part supplied %s/%s", id, name, bench)
			}
			row[i] = v
			sums[i] += v
		}
		res.Table.AddFloats(bench, 3, row...)
	}
	avgs := make([]float64, len(cols))
	for i, name := range cols {
		avgs[i] = sums[i] / float64(len(benchmarks))
		res.Series[name]["Average"] = avgs[i]
	}
	res.Table.AddFloats("Average", 3, avgs...)

	if id == "engines" {
		enginesFinalize(&res, avgs)
	}
	return res, nil
}

// tableID returns the string the experiment uses as the table-title
// prefix: the figure experiments title their tables with the Result ID
// ("Figure 7"), which differs from the request id ("fig7").
func tableID(id string, res Result) string {
	if res.ID != "" {
		return res.ID
	}
	return id
}
