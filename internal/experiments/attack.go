package experiments

import (
	"context"
	"fmt"
	"sort"

	"ctrpred/internal/faults"
	"ctrpred/internal/predictor"
	"ctrpred/internal/runpool"
	"ctrpred/internal/secmem"
	"ctrpred/internal/sim"
	"ctrpred/internal/stats"
	"ctrpred/internal/workload"
)

// campaignAttacks is the number of scheduled attacks per campaign cell:
// enough firings for a meaningful latency mean without dominating the
// run with recovery traffic.
const campaignAttacks = 8

// campaignMinInstructions is the floor on the campaign's instruction
// budget. Replay attacks only become applicable once a line has been
// written back and later refetched, so a stale captured pair differs
// from the current off-chip state; below this window the trace may
// contain no such refetch and the campaign would report vacuous
// coverage. Like the hit-rate studies' ×20 window, this deliberately
// overrides very small Options.Scale values.
const campaignMinInstructions = 200_000

// campaignL2 keeps the campaign capacity-constrained: the footprint is
// pinned at four times this, so lines continually cycle through
// fetch → dirty → writeback → refetch. Periodic flushes alone leave
// lines resident-but-clean, a working set that fits in L2 is fetched
// exactly once, and a paper-scale working set is cold-miss dominated
// with evicted-dirty lines rarely refetched — in either regime replay
// attacks (which strike the line being fetched) could never apply.
const campaignL2 = 64 << 10

// campaignConfig builds the per-cell config: performance mode with the
// integrity tree armed and the quarantine policy, so every cell runs to
// completion and reports degradation counters instead of halting at the
// first detection.
func campaignConfig(opt Options, scheme sim.Scheme, plan *faults.Plan) sim.Config {
	cfg := perfConfig(opt, scheme, campaignL2).WithIntegrity()
	if cfg.Scale.Instructions < campaignMinInstructions {
		cfg.Scale.Instructions = campaignMinInstructions
		cfg.Mem.FlushInterval = campaignMinInstructions / 10
	}
	// Pinned, not floored: the campaign measures detection coverage, not
	// performance, and only this footprint:L2 ratio guarantees the
	// writeback→refetch traffic every attack class needs to apply.
	cfg.Scale.Footprint = 4 * campaignL2
	cfg.Recovery = secmem.RecoveryQuarantine
	cfg.Faults = plan
	return cfg
}

// campaignCell is one attack-class × scheme measurement.
type campaignCell struct {
	injected, detected uint64
	meanLatency        float64
	healed             uint64
	tamper, selfcheck  uint64
	padViolations      uint64
}

// campaignBench picks the workload the campaign corrupts. Replay
// attacks need a line to be written back and then refetched inside the
// campaign window before a captured stale pair differs from the current
// off-chip state, so the choice prefers write-heavy kernels with tight
// reuse (not memory-bound streamers, which touch each line once per
// pass and may not complete two passes in the window); any benchmark
// works for the other classes.
func campaignBench(names []string) string {
	sorted := append([]string(nil), names...)
	sort.Strings(sorted)
	pick := sorted[0]
	found := false
	for _, n := range sorted {
		s, ok := workload.Lookup(n)
		if !ok || !s.WriteHeavy {
			continue
		}
		if !s.MemoryBound {
			return n
		}
		if !found {
			pick, found = n, true
		}
	}
	return pick
}

// campaignPlan schedules n attacks of one class at spread fetch
// ordinals. An attack stays armed past its ordinal until it applies
// (e.g. replay waits for stale writeback history), so the schedule is a
// lower bound, not an exact firing list.
func campaignPlan(k faults.Kind, n int) *faults.Plan {
	p := &faults.Plan{}
	for i := 0; i < n; i++ {
		p.Attacks = append(p.Attacks, faults.Attack{
			Kind:    k,
			Trigger: faults.Trigger{Fetch: uint64(50 + 40*i)},
		})
	}
	return p
}

// AttackCampaign runs the adversarial detection-coverage matrix: every
// attack class of the threat model (plus a clean control row) against
// every scheme family, with the integrity tree enabled and the
// quarantine recovery policy so runs complete and report degradation
// counters. It asserts the security invariants rather than just
// reporting them: an injected-but-undetected attack, any tamper/
// self-check/pad event on a clean run, or any pad-reuse/self-check
// event during recovery on an attack run fails the experiment with an
// error.
func AttackCampaign(ctx context.Context, opt Options) (Result, error) {
	opt = opt.normalized()
	schemes := []sim.Scheme{
		sim.SchemeBaseline(),
		sim.SchemeSeqCache(32 << 10),
		sim.SchemePred(predictor.SchemeRegular),
		sim.SchemeCombined(32<<10, predictor.SchemeRegular),
		sim.SchemeDirect(),
	}
	kinds := faults.Kinds()
	rows := []string{"clean"}
	for _, k := range kinds {
		rows = append(rows, k.String())
	}
	bench := campaignBench(opt.Benchmarks)

	res := Result{
		ID:    "Attack campaign",
		Title: fmt.Sprintf("Detection coverage per attack class × scheme (benchmark %s, quarantine recovery)", bench),
		Notes: "Detection rate = detected/injected per class (clean row: security events, must be 0). " +
			"Rollback under direct encryption is vacuous (no counters exist to roll back). " +
			"Mean detection latency and heal counts are in the latency:/healed: series.",
		Series: map[string]map[string]float64{},
	}
	cols := append([]string{"attack"}, schemeNames(schemes)...)
	res.Table = stats.NewTable("Attack campaign — detection rate per attack class × scheme", cols...)
	for _, s := range schemes {
		res.Series[s.Name] = map[string]float64{}
		res.Series["latency:"+s.Name] = map[string]float64{}
		res.Series["healed:"+s.Name] = map[string]float64{}
	}

	var jobs []runpool.Job[campaignCell]
	for _, row := range rows {
		for _, sch := range schemes {
			var plan *faults.Plan
			if row != "clean" {
				k, err := faults.ParseKind(row)
				if err != nil {
					return Result{}, err
				}
				plan = campaignPlan(k, campaignAttacks)
			}
			jobs = append(jobs, runpool.Job[campaignCell]{
				Label: fmt.Sprintf("attack %s/%s", row, sch.Name),
				Fn: func(ctx context.Context) (campaignCell, error) {
					r, err := opt.runSim(ctx, bench, campaignConfig(opt, sch, plan))
					if err != nil {
						return campaignCell{}, fmt.Errorf("attack %s/%s: %w", row, sch.Name, err)
					}
					cell := campaignCell{
						tamper:        r.Ctrl.TamperDetected,
						selfcheck:     r.Ctrl.SelfCheckFails,
						padViolations: r.PadViolations,
					}
					if r.Security != nil {
						cell.healed = r.Security.Healed
					}
					if r.Faults != nil {
						cell.injected = r.Faults.TotalInjected()
						cell.detected = r.Faults.TotalDetected()
						var lat float64
						for _, k := range faults.Kinds() {
							if r.Faults.Detected[k] > 0 {
								lat = r.Faults.MeanLatency(k)
							}
						}
						cell.meanLatency = lat
					}
					return cell, nil
				},
			})
		}
	}
	cells, err := runpool.RunContext(ctx, opt.pool(), jobs)
	if err != nil {
		return Result{}, err
	}

	idx := 0
	for _, row := range rows {
		vals := make([]float64, len(schemes))
		for i, sch := range schemes {
			c := cells[idx]
			idx++
			if row == "clean" {
				events := c.tamper + c.selfcheck + c.padViolations
				if events != 0 {
					return Result{}, fmt.Errorf("attack campaign: clean run under %s raised %d security events (false positives)", sch.Name, events)
				}
				vals[i] = float64(events)
				res.Series[sch.Name][row] = vals[i]
				continue
			}
			if c.detected != c.injected {
				return Result{}, fmt.Errorf("attack campaign: %s under %s: %d injected but only %d detected",
					row, sch.Name, c.injected, c.detected)
			}
			// Recovery must never reuse a pad or corrupt architectural
			// state, regardless of which attack class triggered it.
			if c.padViolations != 0 || c.selfcheck != 0 {
				return Result{}, fmt.Errorf("attack campaign: %s under %s: recovery raised %d pad violations, %d self-check failures",
					row, sch.Name, c.padViolations, c.selfcheck)
			}
			vacuousOK := row == faults.Rollback.String() && sch.Direct
			if c.injected == 0 && !vacuousOK {
				return Result{}, fmt.Errorf("attack campaign: %s under %s: no attack became applicable (0 injected)", row, sch.Name)
			}
			rate := 1.0
			if c.injected > 0 {
				rate = float64(c.detected) / float64(c.injected)
			}
			vals[i] = rate
			res.Series[sch.Name][row] = rate
			res.Series["latency:"+sch.Name][row] = c.meanLatency
			res.Series["healed:"+sch.Name][row] = float64(c.healed)
		}
		res.Table.AddFloats(row, 3, vals...)
	}
	return res, nil
}

func schemeNames(schemes []sim.Scheme) []string {
	names := make([]string, len(schemes))
	for i, s := range schemes {
		names[i] = s.Name
	}
	return names
}
