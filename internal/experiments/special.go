package experiments

import (
	"context"
	"fmt"

	"ctrpred/internal/cryptoengine"
	"ctrpred/internal/ctr"
	"ctrpred/internal/dram"
	"ctrpred/internal/mem"
	"ctrpred/internal/predictor"
	"ctrpred/internal/runpool"
	"ctrpred/internal/secmem"
	"ctrpred/internal/seqcache"
	"ctrpred/internal/sim"
	"ctrpred/internal/stats"
)

// Table1 renders the processor model parameters actually configured in
// the simulator, for side-by-side comparison with the paper's Table 1.
func Table1() Result {
	cfg := sim.DefaultConfig(sim.SchemeBaseline())
	t := stats.NewTable("Table 1 — Processor model parameters", "Parameter", "Value")
	add := func(k, v string) { t.AddRow(k, v) }
	add("Fetch/Decode width", fmt.Sprintf("%d", cfg.CPU.FetchWidth))
	add("Issue/Commit width", fmt.Sprintf("%d/%d", cfg.CPU.IssueWidth, cfg.CPU.CommitWidth))
	add("ROB size", fmt.Sprintf("%d", cfg.CPU.ROBSize))
	add("L1 I-Cache", fmt.Sprintf("DM, %dKB, 32B line", cfg.Mem.L1ISize>>10))
	add("L1 D-Cache", fmt.Sprintf("DM, %dKB, 32B line, write-through", cfg.Mem.L1DSize>>10))
	add("L2 Cache", fmt.Sprintf("%d-way, unified, 32B line, writeback, 256KB and 1MB", cfg.Mem.L2Ways))
	add("L1 latency", fmt.Sprintf("%d cycle", cfg.Mem.L1Latency))
	add("L2 latency", "4 cycles (256KB), 8 cycles (1MB)")
	add("I-TLB / D-TLB", fmt.Sprintf("%d-way, %d entries", cfg.Mem.TLBWays, cfg.Mem.TLBEntries))
	add("Memory bus", fmt.Sprintf("200MHz, %dB wide", cfg.DRAM.BusBytes))
	add("DRAM", fmt.Sprintf("%d banks, %dB rows, tRCD/tCAS/tRP = %d/%d/%d ns",
		cfg.DRAM.Banks, cfg.DRAM.RowBytes, cfg.DRAM.TRCD, cfg.DRAM.TCAS, cfg.DRAM.TRP))
	add("AES latency", fmt.Sprintf("%d ns, fully pipelined (AES-256)", cfg.Engine.LatencyCycles))
	pc := predictor.DefaultConfig(predictor.SchemeContext)
	add("Sequence number cache", "4KB, 32KB, 128KB, 512KB (32B line) in sweeps")
	add("Prediction history vector", fmt.Sprintf("%d bits", pc.PHVBits))
	add("PHV reset threshold", fmt.Sprintf("%d", pc.ResetThreshold))
	add("Prediction depth", fmt.Sprintf("%d", pc.Depth))
	add("Prediction swing (context)", fmt.Sprintf("%d", pc.Swing))
	add("Range table (two-level)", fmt.Sprintf("%d entries, %d-bit ranges", pc.RangeTableEntries, pc.RangeBits))
	add("Dirty-line flush", "every 25M cycles (scaled with run length)")
	return Result{
		ID:    "Table 1",
		Title: "Processor model parameters",
		Table: t,
		Notes: "Matches the paper's Table 1; DRAM detail follows the Gries/Romer SDRAM model.",
	}
}

// Figure4Timeline reproduces the Figure 4 timelines as a microbenchmark:
// the latency of a single cold L2 miss under the baseline, sequence
// number caching (warm), OTP prediction, and the oracle.
func Figure4Timeline(ctx context.Context, opt Options) (Result, error) {
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	opt = opt.normalized()
	res := Result{
		ID:     "Figure 4",
		Title:  "Timeline comparison of OTP computation (single-miss latency, cycles)",
		Notes:  "Paper: prediction hides pad generation behind the line fetch; baseline serializes counter fetch + AES.",
		Series: map[string]map[string]float64{},
	}
	res.Table = stats.NewTable("Figure 4 — single L2-miss latency (cycles)",
		"scenario", "counter_at", "line_at", "data_ready")

	type scenario struct {
		name   string
		scheme predictor.Scheme
		warmSC int // seq-cache bytes, warmed before the measured miss
		oracle bool
		direct bool
	}
	scenarios := []scenario{
		{name: "direct-encryption", scheme: predictor.SchemeNone, direct: true},
		{name: "baseline", scheme: predictor.SchemeNone},
		{name: "seqcache(warm)", scheme: predictor.SchemeNone, warmSC: 4 << 10},
		{name: "otp-prediction", scheme: predictor.SchemeRegular},
		{name: "oracle", scheme: predictor.SchemeNone, oracle: true},
	}
	var key [32]byte
	key[0] = 0x11
	for _, sc := range scenarios {
		image := mem.New()
		d := dram.New(dram.DefaultConfig())
		e := cryptoengine.New(cryptoengine.DefaultConfig(), ctr.NewKeystream(key))
		p := predictor.New(predictor.DefaultConfig(sc.scheme))
		var cache *seqcache.Cache
		if sc.warmSC > 0 {
			cache = seqcache.New(sc.warmSC)
		}
		cfg := secmem.DefaultConfig()
		cfg.Oracle = sc.oracle
		cfg.Direct = sc.direct
		ctrl := secmem.New(cfg, d, e, p, cache, image)
		const addr = 0x100000
		if cache != nil {
			// Warm the counter into the cache with an earlier fetch.
			ctrl.FetchLine(0, addr)
		}
		r := ctrl.FetchLine(1_000_000, addr)
		start := uint64(1_000_000)
		res.Table.AddRow(sc.name,
			fmt.Sprintf("%d", r.SeqDone-start),
			fmt.Sprintf("%d", r.LineDone-start),
			fmt.Sprintf("%d", r.Done-start))
		res.Series[sc.name] = map[string]float64{"data_ready": float64(r.Done - start)}
	}
	return res, nil
}

// Ablation sweeps the design parameters Sections 3, 7 and 8 discuss:
// adaptive resets on/off, prediction depth, root-history depth, and the
// context swing, reporting average prediction rate over the benchmarks.
func Ablation(ctx context.Context, opt Options) (Result, error) {
	opt = opt.normalized()
	res := Result{
		ID:     "Ablation",
		Title:  "Predictor design-parameter sweeps (average prediction rate)",
		Notes:  "Paper: adaptivity is essential for write-heavy programs; depth beyond ~5 overloads the engine; root history is marginal.",
		Series: map[string]map[string]float64{"pred_rate": {}},
	}
	res.Table = stats.NewTable("Ablation — average prediction rate across benchmarks",
		"variant", "pred_rate", "guesses/fetch")

	type variant struct {
		name string
		mod  func(*predictor.Config)
	}
	variants := []variant{
		{"regular (default)", func(c *predictor.Config) {}},
		{"non-adaptive", func(c *predictor.Config) { c.Adaptive = false }},
		{"depth=1", func(c *predictor.Config) { c.Depth = 1 }},
		{"depth=11", func(c *predictor.Config) { c.Depth = 11 }},
		{"history=1", func(c *predictor.Config) { c.HistoryDepth = 1 }},
		{"history=2", func(c *predictor.Config) { c.HistoryDepth = 2 }},
		{"threshold=4", func(c *predictor.Config) { c.ResetThreshold = 4 }},
		{"threshold=16", func(c *predictor.Config) { c.ResetThreshold = 16 }},
		{"context swing=1", func(c *predictor.Config) { c.Scheme = predictor.SchemeContext; c.Swing = 1 }},
		{"context swing=7", func(c *predictor.Config) { c.Scheme = predictor.SchemeContext; c.Swing = 7 }},
	}
	var jobs []runpool.Job[[2]float64]
	for _, v := range variants {
		pc := predictor.DefaultConfig(predictor.SchemeRegular)
		v.mod(&pc)
		scheme := sim.Scheme{Name: v.name, Pred: pc.Scheme, PredConfig: &pc}
		for _, bench := range opt.Benchmarks {
			jobs = append(jobs, runpool.Job[[2]float64]{
				Label: fmt.Sprintf("Ablation %s/%s", bench, v.name),
				Fn: func(ctx context.Context) ([2]float64, error) {
					r, err := opt.runSim(ctx, bench, hitRateConfig(opt, scheme, 256<<10))
					if err != nil {
						return [2]float64{}, fmt.Errorf("ablation %s: %w", v.name, err)
					}
					var gpf float64
					if r.Pred.Fetches > 0 {
						gpf = float64(r.Pred.Guesses) / float64(r.Pred.Fetches)
					}
					return [2]float64{r.PredRate(), gpf}, nil
				},
			})
		}
	}
	vals, err := runpool.RunContext(ctx, opt.pool(), jobs)
	if err != nil {
		return Result{}, err
	}
	k := 0
	for _, v := range variants {
		var rateSum, guessPerFetch float64
		var n int
		for range opt.Benchmarks {
			rateSum += vals[k][0]
			guessPerFetch += vals[k][1]
			k++
			n++
		}
		avg := rateSum / float64(n)
		res.Series["pred_rate"][v.name] = avg
		res.Table.AddFloats(v.name, 3, avg, guessPerFetch/float64(n))
	}
	return res, nil
}
