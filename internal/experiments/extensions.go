package experiments

import (
	"context"
	"fmt"

	"ctrpred/internal/predictor"
	"ctrpred/internal/runpool"
	"ctrpred/internal/sim"
	"ctrpred/internal/stats"
)

// ratio is a per-benchmark normalized value; ok is false when the
// denominator was zero and the sample must be skipped.
type ratio struct {
	v  float64
	ok bool
}

// meanRatios averages the valid samples in benchmark order, exactly as
// the sequential accumulation did.
func meanRatios(rs []ratio) float64 {
	var sum float64
	var n int
	for _, r := range rs {
		if r.ok {
			sum += r.v
			n++
		}
	}
	return sum / float64(n)
}

// ContextSwitch regenerates the multiprogramming claim of Section 2.2 /
// Section 3.1: sequence-number cache hit rates "can be substantially
// reduced when the working set is large or in-between context switches",
// while prediction state (per-page roots, saved with the process security
// context) survives a switch. The experiment sweeps the switch interval
// and reports the counter coverage of a 128 KB cache vs regular
// prediction, averaged over the benchmark set.
func ContextSwitch(ctx context.Context, opt Options) (Result, error) {
	opt = opt.normalized()
	res := Result{
		ID:     "ContextSwitch",
		Title:  "Counter coverage vs context-switch interval (average over benchmarks)",
		Notes:  "Paper: caching degrades in-between context switches; prediction state is part of the saved process context.",
		Series: map[string]map[string]float64{"seqcache-128K": {}, "pred-regular": {}},
	}
	res.Table = stats.NewTable("ContextSwitch — coverage under multiprogramming",
		"switch interval", "seqcache-128K", "pred-regular")

	intervals := []struct {
		name   string
		cycles func(window uint64) uint64
	}{
		{"none", func(uint64) uint64 { return 0 }},
		{"window/8", func(w uint64) uint64 { return w / 8 }},
		{"window/32", func(w uint64) uint64 { return w / 32 }},
		{"window/128", func(w uint64) uint64 { return w / 128 }},
	}
	schemes := []sim.Scheme{
		sim.SchemeSeqCache(128 << 10),
		sim.SchemePred(predictor.SchemeRegular),
	}
	var jobs []runpool.Job[float64]
	for _, iv := range intervals {
		for _, sch := range schemes {
			for _, bench := range opt.Benchmarks {
				jobs = append(jobs, runpool.Job[float64]{
					Label: fmt.Sprintf("ContextSwitch %s %s/%s", iv.name, bench, sch.Name),
					Fn: func(ctx context.Context) (float64, error) {
						cfg := hitRateConfig(opt, sch, 256<<10)
						cfg.Mem.ContextSwitchInterval = iv.cycles(cfg.Scale.Instructions)
						r, err := opt.runSim(ctx, bench, cfg)
						if err != nil {
							return 0, fmt.Errorf("ctxswitch %s/%s: %w", iv.name, bench, err)
						}
						if sch.Pred != predictor.SchemeNone {
							return r.PredRate(), nil
						}
						return r.SeqHitRate(), nil
					},
				})
			}
		}
	}
	covered, err := runpool.RunContext(ctx, opt.pool(), jobs)
	if err != nil {
		return Result{}, err
	}
	k := 0
	for _, iv := range intervals {
		vals := make([]float64, len(schemes))
		for i := range schemes {
			var sum float64
			for range opt.Benchmarks {
				sum += covered[k]
				k++
			}
			vals[i] = sum / float64(len(opt.Benchmarks))
		}
		res.Series["seqcache-128K"][iv.name] = vals[0]
		res.Series["pred-regular"][iv.name] = vals[1]
		res.Table.AddFloats(iv.name, 3, vals...)
	}
	return res, nil
}

// Integrity measures the cost of composing the paper's assumed hash-tree
// authentication with each counter-availability scheme: IPC with the
// tree, normalized to the same scheme without it, averaged over the
// benchmark set. Prediction hides decryption latency, not verification
// latency — the tree's overhead is roughly scheme-independent, showing
// the two mechanisms compose.
func Integrity(ctx context.Context, opt Options) (Result, error) {
	opt = opt.normalized()
	res := Result{
		ID:     "Integrity",
		Title:  "IPC with hash-tree authentication, normalized to no-tree (average)",
		Notes:  "Counter prediction and integrity verification address different latencies and compose.",
		Series: map[string]map[string]float64{"normalized_ipc": {}},
	}
	res.Table = stats.NewTable("Integrity — hash-tree overhead per scheme",
		"scheme", "IPC ratio (tree/no-tree)")
	schemes := []sim.Scheme{
		sim.SchemeBaseline(),
		sim.SchemeSeqCache(128 << 10),
		sim.SchemePred(predictor.SchemeRegular),
		sim.SchemePred(predictor.SchemeContext),
		sim.SchemeOracle(),
	}
	var jobs []runpool.Job[ratio]
	for _, sch := range schemes {
		for _, bench := range opt.Benchmarks {
			jobs = append(jobs, runpool.Job[ratio]{
				Label: fmt.Sprintf("Integrity %s/%s", bench, sch.Name),
				Fn: func(ctx context.Context) (ratio, error) {
					base, err := opt.runSim(ctx, bench, perfConfig(opt, sch, 256<<10))
					if err != nil {
						return ratio{}, err
					}
					withTree, err := opt.runSim(ctx, bench, perfConfig(opt, sch, 256<<10).WithIntegrity())
					if err != nil {
						return ratio{}, err
					}
					if base.IPC() <= 0 {
						return ratio{}, nil
					}
					return ratio{v: withTree.IPC() / base.IPC(), ok: true}, nil
				},
			})
		}
	}
	ratios, err := runpool.RunContext(ctx, opt.pool(), jobs)
	if err != nil {
		return Result{}, err
	}
	for i, sch := range schemes {
		avg := meanRatios(ratios[i*len(opt.Benchmarks) : (i+1)*len(opt.Benchmarks)])
		res.Series["normalized_ipc"][sch.Name] = avg
		res.Table.AddFloats(sch.Name, 3, avg)
	}
	return res, nil
}

// Hybrid evaluates Section 9.2's suggestion that memory pre-decryption
// (prefetch) and OTP prediction are orthogonal and "a hybrid approach can
// be designed for further performance improvement": IPC normalized to the
// oracle for the baseline, prefetch alone, prediction alone, and both.
func Hybrid(ctx context.Context, opt Options) (Result, error) {
	opt = opt.normalized()
	res := Result{
		ID:     "Hybrid",
		Title:  "Prediction × pre-decryption prefetch, IPC normalized to oracle (average)",
		Notes:  "Paper §9.2: the techniques are orthogonal; the hybrid should top either alone.",
		Series: map[string]map[string]float64{"normalized_ipc": {}},
	}
	res.Table = stats.NewTable("Hybrid — composing prediction with pre-decryption",
		"configuration", "normalized IPC")

	type variant struct {
		name     string
		scheme   sim.Scheme
		prefetch int
	}
	variants := []variant{
		{"baseline", sim.SchemeBaseline(), 0},
		{"prefetch-only", sim.SchemeBaseline(), 1},
		{"prediction-only", sim.SchemePred(predictor.SchemeRegular), 0},
		{"hybrid", sim.SchemePred(predictor.SchemeRegular), 1},
	}
	oracleIPC, err := oracleBaselines(ctx, opt, 256<<10)
	if err != nil {
		return Result{}, err
	}
	var jobs []runpool.Job[ratio]
	for _, v := range variants {
		for _, bench := range opt.Benchmarks {
			jobs = append(jobs, runpool.Job[ratio]{
				Label: fmt.Sprintf("Hybrid %s/%s", bench, v.name),
				Fn: func(ctx context.Context) (ratio, error) {
					cfg := perfConfig(opt, v.scheme, 256<<10)
					cfg.Mem.PrefetchDegree = v.prefetch
					r, err := opt.runSim(ctx, bench, cfg)
					if err != nil {
						return ratio{}, err
					}
					base := oracleIPC[bench]
					if base <= 0 {
						return ratio{}, nil
					}
					return ratio{v: r.IPC() / base, ok: true}, nil
				},
			})
		}
	}
	ratios, err := runpool.RunContext(ctx, opt.pool(), jobs)
	if err != nil {
		return Result{}, err
	}
	for i, v := range variants {
		avg := meanRatios(ratios[i*len(opt.Benchmarks) : (i+1)*len(opt.Benchmarks)])
		res.Series["normalized_ipc"][v.name] = avg
		res.Table.AddFloats(v.name, 3, avg)
	}
	return res, nil
}

// SeqCacheSweep regenerates the paper's motivating claim (Section 2.2):
// "these specialized caches do not hide decryption latency effectively
// because its hit rate does not grow steadily with its size … the area
// cost to improve the hit rate via simple caching can be prohibitively
// high." It sweeps the sequence-number cache from 4 KB to 1 MB and
// reports the average hit rate alongside prediction's (size-independent)
// rate for reference.
func SeqCacheSweep(ctx context.Context, opt Options) (Result, error) {
	opt = opt.normalized()
	res := Result{
		ID:     "SeqCacheSweep",
		Title:  "Sequence-number cache hit rate vs size (average over benchmarks)",
		Notes:  "Paper §2.2: hit rate plateaus with size; prediction needs no storage at all.",
		Series: map[string]map[string]float64{"hit_rate": {}},
	}
	res.Table = stats.NewTable("SeqCacheSweep — the caching plateau",
		"capacity", "avg hit rate", "marginal gain / 2x size")

	sizes := []int{4 << 10, 16 << 10, 64 << 10, 128 << 10, 256 << 10, 512 << 10, 1 << 20}
	var jobs []runpool.Job[float64]
	for _, size := range sizes {
		for _, bench := range opt.Benchmarks {
			jobs = append(jobs, runpool.Job[float64]{
				Label: fmt.Sprintf("SeqCacheSweep %dKB/%s", size>>10, bench),
				Fn: func(ctx context.Context) (float64, error) {
					r, err := opt.runSim(ctx, bench, hitRateConfig(opt, sim.SchemeSeqCache(size), 256<<10))
					if err != nil {
						return 0, err
					}
					return r.SeqHitRate(), nil
				},
			})
		}
	}
	// Reference line: prediction with zero dedicated storage.
	for _, bench := range opt.Benchmarks {
		jobs = append(jobs, runpool.Job[float64]{
			Label: fmt.Sprintf("SeqCacheSweep prediction/%s", bench),
			Fn: func(ctx context.Context) (float64, error) {
				r, err := opt.runSim(ctx, bench, hitRateConfig(opt, sim.SchemePred(predictor.SchemeRegular), 256<<10))
				if err != nil {
					return 0, err
				}
				return r.PredRate(), nil
			},
		})
	}
	rates, err := runpool.RunContext(ctx, opt.pool(), jobs)
	if err != nil {
		return Result{}, err
	}
	nb := len(opt.Benchmarks)
	prev := 0.0
	for i, size := range sizes {
		var sum float64
		for _, r := range rates[i*nb : (i+1)*nb] {
			sum += r
		}
		avg := sum / float64(nb)
		name := fmt.Sprintf("%dKB", size>>10)
		res.Series["hit_rate"][name] = avg
		gain := 0.0
		if i > 0 {
			gain = avg - prev
		}
		res.Table.AddFloats(name, 3, avg, gain)
		prev = avg
	}
	var sum float64
	for _, r := range rates[len(sizes)*nb:] {
		sum += r
	}
	avg := sum / float64(nb)
	res.Series["hit_rate"]["prediction (0KB)"] = avg
	res.Table.AddFloats("prediction (0KB)", 3, avg, 0)
	return res, nil
}

// ValuePrediction evaluates Section 9.3's related-work contrast: load
// value prediction also tolerates memory latency, but "does not
// specifically address the issue of sequence number fetch on the critical
// path of memory decryption" — its predictability source is value
// locality, OTP prediction's is counter locality. The experiment reports
// IPC normalized to the oracle for each mechanism alone and combined.
func ValuePrediction(ctx context.Context, opt Options) (Result, error) {
	opt = opt.normalized()
	res := Result{
		ID:     "ValuePrediction",
		Title:  "OTP prediction vs load-value prediction, IPC normalized to oracle (average)",
		Notes:  "Paper §9.3: different predictability sources; LVP alone cannot recover what counter prediction does on encrypted memory.",
		Series: map[string]map[string]float64{"normalized_ipc": {}},
	}
	res.Table = stats.NewTable("ValuePrediction — latency-tolerance mechanisms compared",
		"configuration", "normalized IPC")

	type variant struct {
		name   string
		scheme sim.Scheme
		lvp    int
	}
	variants := []variant{
		{"baseline", sim.SchemeBaseline(), 0},
		{"lvp-only", sim.SchemeBaseline(), 4096},
		{"otp-pred-only", sim.SchemePred(predictor.SchemeRegular), 0},
		{"otp-pred+lvp", sim.SchemePred(predictor.SchemeRegular), 4096},
	}
	oracleIPC, err := oracleBaselines(ctx, opt, 256<<10)
	if err != nil {
		return Result{}, err
	}
	var jobs []runpool.Job[ratio]
	for _, v := range variants {
		for _, bench := range opt.Benchmarks {
			jobs = append(jobs, runpool.Job[ratio]{
				Label: fmt.Sprintf("ValuePrediction %s/%s", bench, v.name),
				Fn: func(ctx context.Context) (ratio, error) {
					cfg := perfConfig(opt, v.scheme, 256<<10)
					cfg.CPU.LVPEntries = v.lvp
					r, err := opt.runSim(ctx, bench, cfg)
					if err != nil {
						return ratio{}, err
					}
					base := oracleIPC[bench]
					if base <= 0 {
						return ratio{}, nil
					}
					return ratio{v: r.IPC() / base, ok: true}, nil
				},
			})
		}
	}
	ratios, err := runpool.RunContext(ctx, opt.pool(), jobs)
	if err != nil {
		return Result{}, err
	}
	for i, v := range variants {
		avg := meanRatios(ratios[i*len(opt.Benchmarks) : (i+1)*len(opt.Benchmarks)])
		res.Series["normalized_ipc"][v.name] = avg
		res.Table.AddFloats(v.name, 3, avg)
	}
	return res, nil
}
