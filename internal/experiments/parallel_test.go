package experiments

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"ctrpred/internal/runpool"
)

// TestParallelSweepDeterministic is the tentpole guarantee: a sweep at
// Workers=4 produces byte-identical tables and identical series to
// Workers=1 for the same seed.
func TestParallelSweepDeterministic(t *testing.T) {
	for _, id := range []string{"fig7", "fig10"} {
		opt := quickOpts()
		if id == "fig10" {
			opt.Benchmarks = []string{"mcf", "gzip", "swim"}
		}

		seq := opt
		seq.Workers = 1
		par := opt
		par.Workers = 4

		a, err := ByID(context.Background(), id, seq)
		if err != nil {
			t.Fatalf("%s sequential: %v", id, err)
		}
		b, err := ByID(context.Background(), id, par)
		if err != nil {
			t.Fatalf("%s parallel: %v", id, err)
		}
		if a.Table.String() != b.Table.String() {
			t.Fatalf("%s: parallel table differs from sequential:\n--- j=1 ---\n%s\n--- j=4 ---\n%s",
				id, a.Table, b.Table)
		}
		if !reflect.DeepEqual(a.Series, b.Series) {
			t.Fatalf("%s: parallel series differ from sequential:\n%v\nvs\n%v", id, a.Series, b.Series)
		}
	}
}

// TestSweepProgressUpdates checks the per-simulation progress plumbing:
// one update per (benchmark, scheme) cell, labels carrying the figure id.
func TestSweepProgressUpdates(t *testing.T) {
	opt := quickOpts()
	opt.Workers = 2
	var labels []string
	opt.Progress = func(u runpool.Update) { labels = append(labels, u.Label) }
	if _, err := Figure7(context.Background(), opt); err != nil {
		t.Fatal(err)
	}
	// 3 benchmarks × 3 schemes.
	if len(labels) != 9 {
		t.Fatalf("%d progress updates, want 9: %v", len(labels), labels)
	}
	for _, l := range labels {
		if !strings.HasPrefix(l, "Figure 7 ") {
			t.Fatalf("progress label %q missing figure id", l)
		}
	}
}

// TestSweepErrorLabeled checks a failing simulation fails its sweep with
// the figure/benchmark/scheme context, not a bare error.
func TestSweepErrorLabeled(t *testing.T) {
	opt := quickOpts()
	opt.Benchmarks = []string{"nonesuch"}
	opt.Workers = 4
	_, err := Figure7(context.Background(), opt)
	if err == nil {
		t.Fatal("sweep over an unknown benchmark succeeded")
	}
	for _, want := range []string{"Figure 7", "nonesuch"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q missing %q", err, want)
		}
	}
}
