// Package experiments regenerates every table and figure of the paper's
// evaluation (Sections 5–8) on the simulator: the sequence-number hit-rate
// comparisons (Figures 7–9), the normalized-IPC comparisons (Figures 10,
// 11, 15, 16), the optimized-predictor hit rates (Figures 12–14), the
// Figure 4 latency timelines, Table 1, and the ablations the text
// discusses (prediction depth, root-history, reset threshold).
//
// Absolute numbers differ from the paper (different substrate, scaled
// instruction windows); the claims under test are the *shapes*: prediction
// beats large sequence-number caches, two-level and context prediction
// approach perfect rates, and IPC gains concentrate in memory-bound
// programs.
package experiments

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"ctrpred/internal/cryptoengine"
	"ctrpred/internal/predictor"
	"ctrpred/internal/runpool"
	"ctrpred/internal/sim"
	"ctrpred/internal/stats"
	"ctrpred/internal/tenancy"
	"ctrpred/internal/workload"
)

// ErrUnknownExperiment reports an experiment identifier outside IDs();
// match it with errors.Is after ByID.
var ErrUnknownExperiment = errors.New("unknown experiment")

// Options scales and scopes an experiment run.
type Options struct {
	// Scale is the per-simulation workload budget. Zero-value fields are
	// replaced by DefaultOptions' values.
	Scale workload.Scale
	// Benchmarks restricts the benchmark set (default: all 14).
	Benchmarks []string
	// Seed drives all randomness.
	Seed uint64
	// Workers caps the number of concurrent simulations per sweep
	// (<= 0: one per CPU). Results are assembled in input order, so the
	// output is byte-identical for any worker count.
	Workers int
	// Progress, when non-nil, receives one update per finished
	// simulation (serialized, in completion order).
	Progress func(runpool.Update)
	// SimTimeout, when positive, bounds each individual simulation with
	// its own deadline (context.WithTimeout around every grid cell). A
	// cell that exceeds it fails with context.DeadlineExceeded without
	// cancelling the rest of the sweep's context.
	SimTimeout time.Duration
	// Engine selects the cipher-engine timing model every simulation of
	// the experiment runs under (zero value: the default pipelined AES).
	// The "engines" experiment ignores it — sweeping engines is its job.
	Engine cryptoengine.Spec
	// Arrival selects the tenancy experiments' job-arrival process
	// (zero value: Poisson).
	Arrival tenancy.ArrivalKind
	// MaxTenants bounds the capacity search (0 derives 8).
	MaxTenants int
	// SLOMaxSlowdown and SLOP99Fetch declare the capacity experiment's
	// SLO: the largest tolerable end-to-end slowdown vs a solo run
	// (0 derives 8) and an optional p99 fetch-latency bound in cycles
	// (0 = unconstrained).
	SLOMaxSlowdown float64
	SLOP99Fetch    float64
}

// DefaultOptions runs every benchmark at a budget that completes each
// figure in seconds to minutes. Raise Scale.Instructions toward the
// paper's windows for tighter numbers.
func DefaultOptions() Options {
	return Options{
		// 8 MB footprints dwarf even the 512 KB sequence-number cache, as
		// the paper's working sets do; hit-rate figures stretch the
		// instruction window by hitRateWindowFactor on top of this.
		Scale: workload.Scale{Footprint: 8 << 20, Instructions: 300_000},
		Seed:  1,
	}
}

func (o Options) normalized() Options {
	def := DefaultOptions()
	if o.Scale.Footprint == 0 {
		o.Scale.Footprint = def.Scale.Footprint
	}
	if o.Scale.Instructions == 0 {
		o.Scale.Instructions = def.Scale.Instructions
	}
	if len(o.Benchmarks) == 0 {
		o.Benchmarks = workload.Names()
	}
	if o.Seed == 0 {
		o.Seed = def.Seed
	}
	if o.MaxTenants == 0 {
		o.MaxTenants = 8
	}
	if o.SLOMaxSlowdown == 0 {
		o.SLOMaxSlowdown = 8
	}
	return o
}

// Normalized returns the options with every zero-valued field resolved
// to its default — the same resolution every experiment applies on
// entry. Cache keys hash this form, so a request that spells a default
// explicitly and one that omits it share one entry.
func (o Options) Normalized() Options { return o.normalized() }

// Result is one regenerated figure or table.
type Result struct {
	ID    string
	Title string
	// Table is the rendered figure data: one row per benchmark plus an
	// Average row; one column per scheme/series.
	Table *stats.Table
	// Series holds the raw numbers: series name → benchmark → value.
	Series map[string]map[string]float64
	// Notes records what shape the paper reports for this figure.
	Notes string
}

// Snapshot exports the figure's raw numbers as a structured metrics
// tree: one child per series, one value per benchmark. Export order is
// deterministic (sorted by name) regardless of worker count.
func (r Result) Snapshot() *stats.Snapshot {
	n := stats.NewSnapshot("experiment")
	n.Label("id", r.ID)
	n.Label("title", r.Title)
	if r.Notes != "" {
		n.Label("notes", r.Notes)
	}
	for series, points := range r.Series {
		c := n.Child(series)
		for bench, v := range points {
			c.Value(bench, v)
		}
	}
	return n
}

// runner abstracts "run benchmark b under scheme s and return the value
// this figure plots". col is the scheme's column index, for figures
// whose columns vary something besides the scheme (Figure 14's L2 size).
type runner func(ctx context.Context, bench string, col int, scheme sim.Scheme) (float64, error)

// pool adapts the experiment options to the run scheduler.
func (o Options) pool() runpool.Options {
	return runpool.Options{Workers: o.Workers, Progress: o.Progress}
}

// runSim runs one simulation under ctx, applying the per-simulation
// deadline from Options.SimTimeout when one is set.
func (o Options) runSim(ctx context.Context, bench string, cfg sim.Config) (sim.Result, error) {
	if o.SimTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, o.SimTimeout)
		defer cancel()
	}
	return sim.RunContext(ctx, bench, cfg)
}

// sweep runs every benchmark × scheme pair — in parallel across the
// worker pool — and assembles the table in input order, so the result is
// identical to a sequential sweep of the same seed.
func sweep(ctx context.Context, id, title, notes string, opt Options, schemes []sim.Scheme, colNames []string, run runner) (Result, error) {
	opt = opt.normalized()
	res := Result{
		ID:     id,
		Title:  title,
		Notes:  notes,
		Series: make(map[string]map[string]float64),
	}
	cols := append([]string{"benchmark"}, colNames...)
	res.Table = stats.NewTable(fmt.Sprintf("%s — %s", id, title), cols...)
	for _, name := range colNames {
		res.Series[name] = make(map[string]float64)
	}
	benchmarks := append([]string(nil), opt.Benchmarks...)
	sort.Strings(benchmarks)

	jobs := make([]runpool.Job[float64], 0, len(benchmarks)*len(schemes))
	for _, bench := range benchmarks {
		for i, sch := range schemes {
			jobs = append(jobs, runpool.Job[float64]{
				Label: fmt.Sprintf("%s %s/%s", id, bench, sch.Name),
				Fn: func(ctx context.Context) (float64, error) {
					v, err := run(ctx, bench, i, sch)
					if err != nil {
						return 0, fmt.Errorf("%s: %s/%s: %w", id, bench, sch.Name, err)
					}
					return v, nil
				},
			})
		}
	}
	vals, err := runpool.RunContext(ctx, opt.pool(), jobs)
	if err != nil {
		return Result{}, err
	}

	sums := make([]float64, len(schemes))
	k := 0
	for _, bench := range benchmarks {
		row := make([]float64, len(schemes))
		for i := range schemes {
			v := vals[k]
			k++
			row[i] = v
			sums[i] += v
			res.Series[colNames[i]][bench] = v
		}
		res.Table.AddFloats(bench, 3, row...)
	}
	avgs := make([]float64, len(schemes))
	for i := range schemes {
		avgs[i] = sums[i] / float64(len(benchmarks))
		res.Series[colNames[i]]["Average"] = avgs[i]
	}
	res.Table.AddFloats("Average", 3, avgs...)
	return res, nil
}

// oracleBaselines runs the oracle scheme for every benchmark across the
// pool and returns benchmark → IPC, the denominator of the normalized-IPC
// figures.
func oracleBaselines(ctx context.Context, opt Options, l2 int) (map[string]float64, error) {
	jobs := make([]runpool.Job[float64], len(opt.Benchmarks))
	for i, bench := range opt.Benchmarks {
		jobs[i] = runpool.Job[float64]{
			Label: fmt.Sprintf("oracle baseline %s", bench),
			Fn: func(ctx context.Context) (float64, error) {
				r, err := opt.runSim(ctx, bench, perfConfig(opt, sim.SchemeOracle(), l2))
				if err != nil {
					return 0, err
				}
				return r.IPC(), nil
			},
		}
	}
	vals, err := runpool.RunContext(ctx, opt.pool(), jobs)
	if err != nil {
		return nil, err
	}
	ipc := make(map[string]float64, len(vals))
	for i, bench := range opt.Benchmarks {
		ipc[bench] = vals[i]
	}
	return ipc, nil
}

// hitRateWindowFactor scales the instruction budget of hit-rate studies
// relative to performance studies, as the paper does (8 billion
// instructions in simplified mode vs 400 million in performance mode):
// counter dynamics — lines drifting past the prediction depth, PHV
// resets — only emerge over long windows.
const hitRateWindowFactor = 20

// hitRateConfig builds a HitRate-mode config.
func hitRateConfig(opt Options, scheme sim.Scheme, l2 int) sim.Config {
	cfg := sim.DefaultConfig(scheme).WithL2(l2).WithMode(sim.HitRate)
	cfg.Scale = opt.Scale
	cfg.Scale.Instructions *= hitRateWindowFactor
	cfg.Seed = opt.Seed
	// Hit-rate figures observe counter/predictor/cache dynamics only;
	// dropping the per-decryption self-check lets sim run the controller's
	// counters-only model (identical statistics, a fraction of the memory
	// over these 20x-longer windows). The equivalence suite pins the two
	// models against each other, so correctness is not traded away here.
	cfg.SelfCheck = false
	// In functional mode a cycle ≈ an instruction; keep the OS flush at a
	// cadence proportional to the scaled window (the paper flushes every
	// 25M cycles within 8B-instruction runs ≈ every 0.3% of the run).
	cfg.Mem.FlushInterval = cfg.Scale.Instructions / 20
	return cfg.WithEngine(opt.Engine)
}

// perfConfig builds a Performance-mode config.
func perfConfig(opt Options, scheme sim.Scheme, l2 int) sim.Config {
	cfg := sim.DefaultConfig(scheme).WithL2(l2)
	cfg.Scale = opt.Scale
	cfg.Seed = opt.Seed
	cfg.Mem.FlushInterval = opt.Scale.Instructions / 10
	return cfg.WithEngine(opt.Engine)
}

// hitRateFigure produces Figures 7/8: seq-cache hit rate vs prediction
// rate, as a fraction of L2-miss fetches whose counter was covered.
func hitRateFigure(ctx context.Context, id string, l2 int, opt Options) (Result, error) {
	schemes := []sim.Scheme{
		sim.SchemeSeqCache(128 << 10),
		sim.SchemeSeqCache(512 << 10),
		sim.SchemePred(predictor.SchemeRegular),
	}
	cols := []string{"128K_Seq#_Cache", "512K_Seq#_Cache", "Pred"}
	title := fmt.Sprintf("Sequence Number Hit Rates, %s L2", l2Name(l2))
	notes := "Paper: Pred ≈ 0.82 average (0.80 at 1MB), above both 128KB and 512KB sequence-number caches."
	return sweep(ctx, id, title, notes, opt, schemes, cols, func(ctx context.Context, bench string, _ int, sch sim.Scheme) (float64, error) {
		res, err := opt.runSim(ctx, bench, hitRateConfig(opt, sch, l2))
		if err != nil {
			return 0, err
		}
		if sch.Pred != predictor.SchemeNone {
			return res.PredRate(), nil
		}
		return res.SeqHitRate(), nil
	})
}

// Figure7 regenerates Figure 7 (256 KB L2).
func Figure7(ctx context.Context, opt Options) (Result, error) {
	return hitRateFigure(ctx, "Figure 7", 256<<10, opt)
}

// Figure8 regenerates Figure 8 (1 MB L2).
func Figure8(ctx context.Context, opt Options) (Result, error) {
	return hitRateFigure(ctx, "Figure 8", 1<<20, opt)
}

// Figure9 regenerates Figure 9: the breakdown of counter coverage with a
// 32 KB sequence-number cache combined with prediction — hits covered by
// both mechanisms, by prediction only, and by the cache only.
func Figure9(ctx context.Context, opt Options) (Result, error) {
	opt = opt.normalized()
	res := Result{
		ID:     "Figure 9",
		Title:  "Breakdown of Contribution of Sequence Number Cache (32KB) and OTP Prediction",
		Notes:  "Paper: prediction uncovers coverage the cache misses (Pred_Hit large, Seq_Only small).",
		Series: map[string]map[string]float64{"Pred_Hit": {}, "Seq_Only": {}, "Both_Hit": {}},
	}
	res.Table = stats.NewTable("Figure 9 — "+res.Title, "benchmark", "Pred_Hit", "Seq_Only", "Both_Hit")
	benchmarks := append([]string(nil), opt.Benchmarks...)
	sort.Strings(benchmarks)
	jobs := make([]runpool.Job[[3]float64], len(benchmarks))
	for i, bench := range benchmarks {
		jobs[i] = runpool.Job[[3]float64]{
			Label: fmt.Sprintf("Figure 9 %s", bench),
			Fn: func(ctx context.Context) ([3]float64, error) {
				cfg := hitRateConfig(opt, sim.SchemeCombined(32<<10, predictor.SchemeRegular), 256<<10)
				r, err := opt.runSim(ctx, bench, cfg)
				if err != nil {
					return [3]float64{}, err
				}
				fetches := float64(r.Ctrl.Fetches)
				if fetches == 0 {
					fetches = 1
				}
				both := float64(r.Ctrl.BothHits) / fetches
				predOnly := float64(r.Ctrl.PredHits-r.Ctrl.BothHits) / fetches
				seqOnly := float64(r.Ctrl.SeqCacheHits-r.Ctrl.BothHits) / fetches
				return [3]float64{predOnly, seqOnly, both}, nil
			},
		}
	}
	vals, err := runpool.RunContext(ctx, opt.pool(), jobs)
	if err != nil {
		return Result{}, err
	}
	var sumP, sumS, sumB float64
	for i, bench := range benchmarks {
		predOnly, seqOnly, both := vals[i][0], vals[i][1], vals[i][2]
		res.Series["Pred_Hit"][bench] = predOnly
		res.Series["Seq_Only"][bench] = seqOnly
		res.Series["Both_Hit"][bench] = both
		sumP += predOnly
		sumS += seqOnly
		sumB += both
		res.Table.AddFloats(bench, 3, predOnly, seqOnly, both)
	}
	n := float64(len(benchmarks))
	res.Table.AddFloats("Average", 3, sumP/n, sumS/n, sumB/n)
	res.Series["Pred_Hit"]["Average"] = sumP / n
	res.Series["Seq_Only"]["Average"] = sumS / n
	res.Series["Both_Hit"]["Average"] = sumB / n
	return res, nil
}

// ipcFigure produces Figures 10/11: IPC normalized to the oracle, for
// three sequence-number cache sizes vs adaptive prediction.
func ipcFigure(ctx context.Context, id string, l2 int, opt Options) (Result, error) {
	opt = opt.normalized()
	schemes := []sim.Scheme{
		sim.SchemeSeqCache(4 << 10),
		sim.SchemeSeqCache(128 << 10),
		sim.SchemeSeqCache(512 << 10),
		sim.SchemePred(predictor.SchemeRegular),
	}
	cols := []string{"Seq_Cache_4K", "Seq_Cache_128K", "Seq_Cache_512K", "Pred"}
	title := fmt.Sprintf("Normalized IPC (oracle=1.0), %s L2", l2Name(l2))
	notes := "Paper: Pred outperforms every cache size on average; gains of 15–40% over small caches on memory-bound programs."
	oracleIPC, err := oracleBaselines(ctx, opt, l2)
	if err != nil {
		return Result{}, err
	}
	return sweep(ctx, id, title, notes, opt, schemes, cols, func(ctx context.Context, bench string, _ int, sch sim.Scheme) (float64, error) {
		r, err := opt.runSim(ctx, bench, perfConfig(opt, sch, l2))
		if err != nil {
			return 0, err
		}
		base := oracleIPC[bench]
		if base == 0 {
			return 0, nil
		}
		return r.IPC() / base, nil
	})
}

// Figure10 regenerates Figure 10 (normalized IPC, 256 KB L2).
func Figure10(ctx context.Context, opt Options) (Result, error) {
	return ipcFigure(ctx, "Figure 10", 256<<10, opt)
}

// Figure11 regenerates Figure 11 (normalized IPC, 1 MB L2).
func Figure11(ctx context.Context, opt Options) (Result, error) {
	return ipcFigure(ctx, "Figure 11", 1<<20, opt)
}

// optHitRateFigure produces Figures 12/13: regular vs two-level vs
// context-based prediction rates.
func optHitRateFigure(ctx context.Context, id string, l2 int, opt Options) (Result, error) {
	schemes := []sim.Scheme{
		sim.SchemePred(predictor.SchemeRegular),
		sim.SchemePred(predictor.SchemeTwoLevel),
		sim.SchemePred(predictor.SchemeContext),
	}
	cols := []string{"Regular", "Two-level", "Context"}
	title := fmt.Sprintf("Prediction Rate of Two-level and Context-based vs Regular, %s L2", l2Name(l2))
	notes := "Paper: regular ≈ 0.82, two-level ≈ 0.96, context ≈ 0.99 (256KB L2)."
	return sweep(ctx, id, title, notes, opt, schemes, cols, func(ctx context.Context, bench string, _ int, sch sim.Scheme) (float64, error) {
		res, err := opt.runSim(ctx, bench, hitRateConfig(opt, sch, l2))
		if err != nil {
			return 0, err
		}
		return res.PredRate(), nil
	})
}

// Figure12 regenerates Figure 12 (optimized prediction rates, 256 KB L2).
func Figure12(ctx context.Context, opt Options) (Result, error) {
	return optHitRateFigure(ctx, "Figure 12", 256<<10, opt)
}

// Figure13 regenerates Figure 13 (optimized prediction rates, 1 MB L2).
func Figure13(ctx context.Context, opt Options) (Result, error) {
	return optHitRateFigure(ctx, "Figure 13", 1<<20, opt)
}

// Figure14 regenerates Figure 14: the absolute number of predictions
// (speculative pad requests) issued under each L2 size.
func Figure14(ctx context.Context, opt Options) (Result, error) {
	schemes := []sim.Scheme{
		sim.SchemePred(predictor.SchemeContext),
		sim.SchemePred(predictor.SchemeContext),
	}
	cols := []string{"256KB_L2", "1MB_L2"}
	l2s := []int{256 << 10, 1 << 20}
	title := "Number of Predictions under 256KB vs 1MB L2 (context-based)"
	notes := "Paper: larger L2 ⇒ fewer misses ⇒ far fewer predictions."
	return sweep(ctx, "Figure 14", title, notes, opt, schemes, cols, func(ctx context.Context, bench string, col int, sch sim.Scheme) (float64, error) {
		res, err := opt.runSim(ctx, bench, hitRateConfig(opt, sch, l2s[col]))
		if err != nil {
			return 0, err
		}
		return float64(res.Pred.Guesses), nil
	})
}

// optIPCFigure produces Figures 15/16: normalized IPC of the optimized
// predictors vs the regular one.
func optIPCFigure(ctx context.Context, id string, l2 int, opt Options) (Result, error) {
	opt = opt.normalized()
	schemes := []sim.Scheme{
		sim.SchemePred(predictor.SchemeRegular),
		sim.SchemePred(predictor.SchemeTwoLevel),
		sim.SchemePred(predictor.SchemeContext),
	}
	cols := []string{"Regular", "Two-level", "Context"}
	title := fmt.Sprintf("Normalized IPC of Two-level and Context-based vs Regular, %s L2", l2Name(l2))
	notes := "Paper: up to ~7% additional IPC over regular prediction; context ≥ two-level for most programs."
	oracleIPC, err := oracleBaselines(ctx, opt, l2)
	if err != nil {
		return Result{}, err
	}
	return sweep(ctx, id, title, notes, opt, schemes, cols, func(ctx context.Context, bench string, _ int, sch sim.Scheme) (float64, error) {
		r, err := opt.runSim(ctx, bench, perfConfig(opt, sch, l2))
		if err != nil {
			return 0, err
		}
		base := oracleIPC[bench]
		if base == 0 {
			return 0, nil
		}
		return r.IPC() / base, nil
	})
}

// Figure15 regenerates Figure 15 (optimized normalized IPC, 256 KB L2).
func Figure15(ctx context.Context, opt Options) (Result, error) {
	return optIPCFigure(ctx, "Figure 15", 256<<10, opt)
}

// Figure16 regenerates Figure 16 (optimized normalized IPC, 1 MB L2).
func Figure16(ctx context.Context, opt Options) (Result, error) {
	return optIPCFigure(ctx, "Figure 16", 1<<20, opt)
}

func l2Name(l2 int) string {
	if l2 >= 1<<20 {
		return fmt.Sprintf("%dMB", l2>>20)
	}
	return fmt.Sprintf("%dKB", l2>>10)
}

// ByID runs the experiment with the given identifier ("table1", "fig4",
// "fig7" … "fig16", "ablation"). The context cancels the sweep between
// simulations and, via sim checkpoints, inside them.
func ByID(ctx context.Context, id string, opt Options) (Result, error) {
	switch id {
	case "table1":
		return Table1(), nil
	case "fig4":
		return Figure4Timeline(ctx, opt)
	case "fig7":
		return Figure7(ctx, opt)
	case "fig8":
		return Figure8(ctx, opt)
	case "fig9":
		return Figure9(ctx, opt)
	case "fig10":
		return Figure10(ctx, opt)
	case "fig11":
		return Figure11(ctx, opt)
	case "fig12":
		return Figure12(ctx, opt)
	case "fig13":
		return Figure13(ctx, opt)
	case "fig14":
		return Figure14(ctx, opt)
	case "fig15":
		return Figure15(ctx, opt)
	case "fig16":
		return Figure16(ctx, opt)
	case "ablation":
		return Ablation(ctx, opt)
	case "ctxswitch":
		return ContextSwitch(ctx, opt)
	case "integrity":
		return Integrity(ctx, opt)
	case "hybrid":
		return Hybrid(ctx, opt)
	case "seqsweep":
		return SeqCacheSweep(ctx, opt)
	case "valuepred":
		return ValuePrediction(ctx, opt)
	case "attack":
		return AttackCampaign(ctx, opt)
	case "engines":
		return Engines(ctx, opt)
	case "tenants":
		return Tenants(ctx, opt)
	case "capacity":
		return Capacity(ctx, opt)
	}
	return Result{}, fmt.Errorf("experiments: %w %q (want table1, fig4, fig7..fig16, ablation, ctxswitch, integrity, hybrid, seqsweep, valuepred, attack, engines, tenants, capacity)", ErrUnknownExperiment, id)
}

// IDs lists every experiment identifier in paper order.
func IDs() []string {
	return []string{"table1", "fig4", "fig7", "fig8", "fig9", "fig10",
		"fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "ablation",
		"ctxswitch", "integrity", "hybrid", "seqsweep", "valuepred", "attack",
		"engines", "tenants", "capacity"}
}
