package experiments

import (
	"bytes"
	"context"
	"testing"

	"ctrpred/internal/workload"
)

// mergeOpts keeps the split/merge tests fast: three benchmarks at a
// tiny instruction window (hit-rate figures still multiply it by 20).
func mergeOpts() Options {
	return Options{
		Scale:      workload.Scale{Footprint: 1 << 20, Instructions: 2_000},
		Benchmarks: []string{"gzip", "mcf", "swim"},
		Seed:       5,
	}
}

// runParts runs id once per benchmark and round-trips each part through
// its snapshot JSON — the wire form a cluster worker returns — so the
// merge sees exactly what a coordinator would.
func runParts(t *testing.T, id string, opt Options) []Result {
	t.Helper()
	parts := make([]Result, 0, len(opt.Benchmarks))
	for _, bench := range opt.Benchmarks {
		sub := opt
		sub.Benchmarks = []string{bench}
		res, err := ByID(context.Background(), id, sub)
		if err != nil {
			t.Fatalf("%s part %s: %v", id, bench, err)
		}
		body, err := res.Snapshot().JSON()
		if err != nil {
			t.Fatalf("%s part %s snapshot: %v", id, bench, err)
		}
		part, err := DecodeResultSnapshot(body)
		if err != nil {
			t.Fatalf("%s part %s decode: %v", id, bench, err)
		}
		parts = append(parts, part)
	}
	return parts
}

// TestMergePartsByteIdentical is the distribution contract: running an
// experiment one benchmark at a time (each part serialized over the
// wire form) and merging must reproduce the full-grid run byte for byte
// — rendered table and snapshot JSON both.
func TestMergePartsByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-experiment sweep in -short mode")
	}
	opt := mergeOpts()
	for _, id := range []string{"fig7", "fig9", "fig14", "engines", "tenants", "capacity"} {
		t.Run(id, func(t *testing.T) {
			full, err := ByID(context.Background(), id, opt)
			if err != nil {
				t.Fatalf("full %s: %v", id, err)
			}
			wantTable := full.Table.String()
			wantJSON, err := full.Snapshot().JSON()
			if err != nil {
				t.Fatalf("full snapshot: %v", err)
			}

			merged, err := MergeParts(id, runParts(t, id, opt))
			if err != nil {
				t.Fatalf("MergeParts: %v", err)
			}
			if got := merged.Table.String(); got != wantTable {
				t.Errorf("merged table differs from full run:\n--- merged ---\n%s\n--- full ---\n%s", got, wantTable)
			}
			gotJSON, err := merged.Snapshot().JSON()
			if err != nil {
				t.Fatalf("merged snapshot: %v", err)
			}
			if !bytes.Equal(gotJSON, wantJSON) {
				t.Errorf("merged snapshot differs from full run:\n--- merged ---\n%s\n--- full ---\n%s", gotJSON, wantJSON)
			}
		})
	}
}

// TestPartitionable pins the whitelist: per-benchmark experiments
// partition, everything whose rows are not benchmarks does not.
func TestPartitionable(t *testing.T) {
	for _, id := range []string{"fig7", "fig8", "fig9", "fig10", "fig11",
		"fig12", "fig13", "fig14", "fig15", "fig16", "engines", "tenants",
		"capacity"} {
		if !Partitionable(id) {
			t.Errorf("Partitionable(%q) = false, want true", id)
		}
	}
	for _, id := range []string{"table1", "fig4", "ablation", "ctxswitch",
		"integrity", "hybrid", "seqsweep", "valuepred", "attack", "bogus"} {
		if Partitionable(id) {
			t.Errorf("Partitionable(%q) = true, want false", id)
		}
	}
}

// TestMergePartsValidation covers the failure modes a coordinator must
// surface instead of assembling a wrong table.
func TestMergePartsValidation(t *testing.T) {
	if _, err := MergeParts("attack", nil); err == nil {
		t.Error("MergeParts on a non-partitionable id succeeded")
	}
	if _, err := MergeParts("fig7", nil); err == nil {
		t.Error("MergeParts with no parts succeeded")
	}
	// A part missing one column's value for its benchmark is incomplete.
	broken := Result{ID: "Figure 7", Series: map[string]map[string]float64{
		"128K_Seq#_Cache": {"mcf": 0.5},
		"512K_Seq#_Cache": {"mcf": 0.6},
		// "Pred" column absent for mcf
	}}
	if _, err := MergeParts("fig7", []Result{broken}); err == nil {
		t.Error("MergeParts with a missing column succeeded")
	}
	// Parts that disagree on a shared cell must be rejected, not merged.
	a := Result{ID: "Figure 7", Series: map[string]map[string]float64{
		"128K_Seq#_Cache": {"mcf": 0.5}, "512K_Seq#_Cache": {"mcf": 0.6}, "Pred": {"mcf": 0.7},
	}}
	b := Result{ID: "Figure 7", Series: map[string]map[string]float64{
		"128K_Seq#_Cache": {"mcf": 0.4}, "512K_Seq#_Cache": {"mcf": 0.6}, "Pred": {"mcf": 0.7},
	}}
	if _, err := MergeParts("fig7", []Result{a, b}); err == nil {
		t.Error("MergeParts with disagreeing parts succeeded")
	}
}
