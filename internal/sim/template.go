// Machine-construction template cache: everything NewMachine derives
// purely from (benchmark, scale, seed) — the assembled program, the
// written image, the sampled counter-aging profile, and the pre-aged
// encrypted off-chip state — is built once and shared copy-on-write
// across every machine of a sweep. A figure-7-style sweep builds dozens
// of machines per benchmark that differ only in scheme; before this
// cache each of them re-assembled and re-encrypted megabytes of
// identical state.
//
// Sharing is sound because all of the cached artifacts are functions of
// the key (seed-derived), the image (seed-derived), and the counter
// roots (drawn from rng.New(seed^0xabcdef) in aged-page first-touch
// order, which is itself seed-derived) — scheme choice influences none
// of them. Machines whose setup is *not* reproduced by the template
// (integrity trees are built during eager aging; custom predictor page
// geometry changes which pages draw roots) replay the eager per-line
// aging loop from the cached sample list instead, which is still
// byte-identical to the pre-template construction path.
package sim

import (
	"sync"

	"ctrpred/internal/ctr"
	"ctrpred/internal/isa"
	"ctrpred/internal/mem"
	"ctrpred/internal/predictor"
	"ctrpred/internal/rng"
	"ctrpred/internal/secmem"
	"ctrpred/internal/workload"
)

// agedSample is one (line, counter offset) pair from the workload's
// aging profile, in sampling order.
type agedSample struct {
	la  uint64
	off uint64
}

// machineTemplate is the frozen seed-deterministic part of a machine.
type machineTemplate struct {
	prog  *isa.Program
	image *mem.Memory // frozen; machines attach views
	// ageList is the full sampled aging profile in draw order, including
	// lines sampled more than once — the eager replay path consumes it
	// exactly as the original sampling loop did.
	ageList []agedSample
	// agePages holds one representative line address per distinct
	// default-geometry (4 KiB) counter page, in first-touch order: the
	// root-draw replay sequence for machines that attach the aged state.
	agePages []uint64
	aged     *secmem.AgedTemplate
}

type templateKey struct {
	bench string
	scale workload.Scale
	seed  uint64
}

var (
	tmplMu    sync.Mutex
	tmplCache = map[templateKey]*machineTemplate{}
	tmplOrder []templateKey
)

// tmplCacheMax bounds cached templates (FIFO). A template holds the
// image plus the aged ciphertext, single-digit MiB at default scale;
// the cap comfortably covers a full benchmark sweep at two scales.
const tmplCacheMax = 32

// getTemplate returns the cached template for (bench, scale, seed),
// building it on first use. Safe for concurrent sweeps.
func getTemplate(bench string, cfg Config) (*machineTemplate, error) {
	key := templateKey{bench: bench, scale: cfg.Scale, seed: cfg.Seed}
	tmplMu.Lock()
	defer tmplMu.Unlock()
	if t, ok := tmplCache[key]; ok {
		return t, nil
	}
	t, err := buildTemplate(bench, cfg)
	if err != nil {
		return nil, err
	}
	if len(tmplOrder) >= tmplCacheMax {
		delete(tmplCache, tmplOrder[0])
		tmplOrder = tmplOrder[1:]
	}
	tmplCache[key] = t
	tmplOrder = append(tmplOrder, key)
	return t, nil
}

// buildTemplate runs the seed-deterministic half of machine construction
// once: build the workload, sample its aging profile, and pre-age the
// encrypted off-chip state under the machine key. Root counters are
// drawn through a throwaway default-geometry predictor so the draw
// sequence matches what any machine's own predictor produces when it
// replays roots in agePages order.
func buildTemplate(bench string, cfg Config) (*machineTemplate, error) {
	image := mem.New()
	wl, err := workload.Build(bench, cfg.Scale, image, cfg.Seed)
	if err != nil {
		return nil, err
	}
	t := &machineTemplate{prog: wl.Prog, image: image}

	ager := rng.New(cfg.Seed ^ 0xa6e0a6e)
	// A span yields at most one sample per covered line; sizing the list
	// up front turns the append loop's doubling churn (tens of MB of
	// abandoned half-size arrays at default scale) into one allocation.
	est := 0
	for _, span := range wl.Ages {
		if span.Bytes > 0 {
			est += span.Bytes / 32
		}
	}
	t.ageList = make([]agedSample, 0, est)
	for _, span := range wl.Ages {
		span.SampleAges(ager, func(lineAddr, offset uint64) {
			t.ageList = append(t.ageList, agedSample{la: lineAddr, off: offset})
		})
	}
	if slack := cap(t.ageList) - len(t.ageList); slack > len(t.ageList)/8 {
		// Static chunks and zero offsets were skipped; don't let the
		// cached template pin the unused tail.
		t.ageList = append(make([]agedSample, 0, len(t.ageList)), t.ageList...)
	}

	tpcfg := predictor.DefaultConfig(predictor.SchemeNone)
	tpcfg.Seed = cfg.Seed ^ 0xabcdef
	tp := predictor.New(tpcfg)
	pages := 0
	ks := ctr.NewKeystream(machineKey(cfg.Seed))
	t.aged = secmem.BuildAgedTemplate(ks, image,
		func(la uint64) uint64 {
			root := tp.Root(la)
			if n := tp.PageCount(); n > pages {
				pages = n
				t.agePages = append(t.agePages, la)
			}
			return root
		},
		func(yield func(la, offset uint64)) {
			// Aged lines first, in sampling order, so their counters and
			// root-draw sequence match eager aging exactly; then every
			// remaining image line at its root counter (offset 0), which
			// is precisely what Controller first-touch materialization
			// would produce — done here once instead of on the fetch
			// path of every machine. Already-aged lines are deduped by
			// the builder's fresh-line guard.
			for _, s := range t.ageList {
				yield(s.la, s.off)
			}
			image.ForEachLine(func(la uint64) {
				yield(la, 0)
			})
		})
	image.Freeze()
	return t, nil
}

// machineKey derives the machine's AES key from the run seed (xorshift
// whitening of a golden-ratio fold).
func machineKey(seed uint64) [32]byte {
	var key [32]byte
	kr := seed*0x9e3779b97f4a7c15 + 0x1234
	for i := 0; i < 32; i += 8 {
		kr ^= kr << 13
		kr ^= kr >> 7
		kr ^= kr << 17
		for j := 0; j < 8; j++ {
			key[i+j] = byte(kr >> (8 * j))
		}
	}
	return key
}
