package sim

import (
	"context"
	"errors"
	"testing"

	"ctrpred/internal/faults"
	"ctrpred/internal/predictor"
	"ctrpred/internal/secmem"
	"ctrpred/internal/workload"
)

// tamperConfig is testConfig with the integrity tree and an attack plan.
func tamperConfig(s Scheme, plan *faults.Plan, policy secmem.RecoveryPolicy) Config {
	cfg := testConfig(s).WithIntegrity()
	cfg.Faults = plan
	cfg.Recovery = policy
	return cfg
}

// TestTamperMatrix drives every applicable attack class against every
// scheme family through the full machine, under both recovery policies:
// Halt must surface a typed *SecurityError carrying the scheme label
// and a partial Result; Quarantine must complete the run with the
// attack detected and the line healed.
func TestTamperMatrix(t *testing.T) {
	schemes := []Scheme{
		SchemeBaseline(),
		SchemeSeqCache(4 << 10),
		SchemePred(predictor.SchemeRegular),
		SchemeCombined(4<<10, predictor.SchemeRegular),
		SchemeDirect(),
	}
	// Replay is exercised separately (TestReplayThroughMachine): it needs
	// a longer window before a stale capture exists.
	kinds := []faults.Kind{faults.BitFlip, faults.Splice, faults.Rollback, faults.NodeCorrupt}
	for _, sch := range schemes {
		for _, kind := range kinds {
			plan := &faults.Plan{Attacks: []faults.Attack{
				{Kind: kind, Trigger: faults.Trigger{Fetch: 10}},
			}}
			vacuous := kind == faults.Rollback && sch.Direct

			t.Run(sch.Name+"/"+kind.String()+"/halt", func(t *testing.T) {
				res, err := Run("gzip", tamperConfig(sch, plan, secmem.RecoveryHalt))
				if vacuous {
					if err != nil {
						t.Fatalf("inapplicable attack produced %v", err)
					}
					if res.Faults.TotalInjected() != 0 {
						t.Fatalf("rollback applied in direct mode: %+v", res.Faults)
					}
					return
				}
				if !errors.Is(err, secmem.ErrTamperDetected) {
					t.Fatalf("err = %v, want errors.Is(err, ErrTamperDetected)", err)
				}
				var serr *secmem.SecurityError
				if !errors.As(err, &serr) {
					t.Fatalf("err %T does not wrap *SecurityError", err)
				}
				if serr.Scheme != sch.Name {
					t.Fatalf("serr.Scheme = %q, want %q", serr.Scheme, sch.Name)
				}
				// The partial result still carries the detection.
				if res.Ctrl.TamperDetected == 0 {
					t.Fatal("halt result lost the detection counter")
				}
				if res.Faults == nil || res.Faults.TotalDetected() != res.Faults.TotalInjected() {
					t.Fatalf("fault ledger = %+v", res.Faults)
				}
			})

			t.Run(sch.Name+"/"+kind.String()+"/quarantine", func(t *testing.T) {
				res, err := Run("gzip", tamperConfig(sch, plan, secmem.RecoveryQuarantine))
				if err != nil {
					t.Fatalf("quarantine run failed: %v", err)
				}
				if vacuous {
					if res.Faults.TotalInjected() != 0 {
						t.Fatalf("rollback applied in direct mode: %+v", res.Faults)
					}
					return
				}
				if res.Faults == nil || res.Faults.TotalInjected() != 1 {
					t.Fatalf("fault ledger = %+v", res.Faults)
				}
				if res.Faults.TotalDetected() != 1 {
					t.Fatalf("attack not detected: %+v", res.Faults)
				}
				if res.Security == nil || res.Security.Quarantined == 0 {
					t.Fatalf("security ledger = %+v", res.Security)
				}
				if res.CPU.Instructions != testConfig(sch).Scale.Instructions {
					t.Fatalf("quarantine run stopped early: %d instructions", res.CPU.Instructions)
				}
			})
		}
	}
}

// TestReplayThroughMachine exercises the replay class end to end: the
// injector captures a bus pair, waits until the line's off-chip state
// has moved on, restores the stale pair at a refetch, and the tree
// rejects it.
func TestReplayThroughMachine(t *testing.T) {
	plan := &faults.Plan{Attacks: []faults.Attack{
		{Kind: faults.Replay, Trigger: faults.Trigger{Fetch: 50}},
	}}
	cfg := DefaultConfig(SchemeBaseline()).WithL2(64 << 10).WithIntegrity()
	cfg.Scale = workload.Scale{Footprint: 256 << 10, Instructions: 200_000}
	cfg.Seed = 7
	cfg.Mem.FlushInterval = 20_000
	cfg.Faults = plan
	cfg.Recovery = secmem.RecoveryQuarantine

	res, err := Run("gzip", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults.Injected[faults.Replay] != 1 || res.Faults.Detected[faults.Replay] != 1 {
		t.Fatalf("replay ledger = %+v", res.Faults)
	}
	if res.Security.Healed == 0 && res.Security.Requalified == 0 {
		t.Fatalf("no recovery recorded: %+v", res.Security)
	}
}

// TestHaltStopsPromptly bounds halt latency: the run must stop within
// one checkpoint interval of the detection, not run to completion.
func TestHaltStopsPromptly(t *testing.T) {
	plan := &faults.Plan{Attacks: []faults.Attack{
		{Kind: faults.BitFlip, Trigger: faults.Trigger{Fetch: 5}},
	}}
	cfg := tamperConfig(SchemeBaseline(), plan, secmem.RecoveryHalt)
	res, err := Run("gzip", cfg)
	if err == nil {
		t.Fatal("halt run completed without error")
	}
	if res.CPU.Instructions >= cfg.Scale.Instructions {
		t.Fatalf("halt run executed the full budget (%d instructions)", res.CPU.Instructions)
	}
}

// TestCleanRunWithArmedInjector is the false-positive guard: a plan
// whose trigger never fires must leave the run bit-identical in
// security terms — no detections, no quarantines, no error.
func TestCleanRunWithArmedInjector(t *testing.T) {
	plan := &faults.Plan{Attacks: []faults.Attack{
		{Kind: faults.BitFlip, Trigger: faults.Trigger{Fetch: 1 << 60}},
	}}
	res, err := Run("gzip", tamperConfig(SchemePred(predictor.SchemeRegular), plan, secmem.RecoveryHalt))
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults.TotalInjected() != 0 || res.Ctrl.TamperDetected != 0 || res.Ctrl.SelfCheckFails != 0 {
		t.Fatalf("armed-but-idle injector perturbed the run: %+v", res.Faults)
	}
	// The injector must not perturb timing either: same config without
	// the plan is cycle-identical.
	base, err := Run("gzip", tamperConfig(SchemePred(predictor.SchemeRegular), nil, secmem.RecoveryHalt))
	if err != nil {
		t.Fatal(err)
	}
	if base.CPU.Cycles != res.CPU.Cycles || base.IPC() != res.IPC() {
		t.Fatalf("armed injector changed timing: %d vs %d cycles", res.CPU.Cycles, base.CPU.Cycles)
	}
}

// TestRunContextCancelStillWins checks the composed checkpoint: context
// cancellation still stops a run whose injector is armed.
func TestRunContextCancelStillWins(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	plan := &faults.Plan{Attacks: []faults.Attack{
		{Kind: faults.BitFlip, Trigger: faults.Trigger{Fetch: 1 << 60}},
	}}
	_, err := RunContext(ctx, "gzip", tamperConfig(SchemeBaseline(), plan, secmem.RecoveryHalt))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
