package sim

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"ctrpred/internal/faults"
	"ctrpred/internal/predictor"
	"ctrpred/internal/rng"
	"ctrpred/internal/secmem"
	"ctrpred/internal/workload"
)

// TestFastPathMatchesReference is the equivalence suite for the batched
// fast paths: across randomized configurations, a run on the default
// paths — batched pad precompute, stored-pad reuse, and (in functional
// mode) the counters-only model — must produce a Result.Snapshot
// byte-identical to the same run forced through the retained scalar
// reference loop (Config.Reference). The reference machine always runs
// the full ciphertext model, so a functional-mode case here also pins
// the counters-only model against the full one, timing and statistics
// included.
func TestFastPathMatchesReference(t *testing.T) {
	benches := []string{"gzip", "mcf", "gcc", "twolf", "swim"}
	schemes := []Scheme{
		SchemeBaseline(),
		SchemeOracle(),
		SchemePred(predictor.SchemeRegular),
		SchemePred(predictor.SchemeTwoLevel),
		SchemePred(predictor.SchemeContext),
		SchemeSeqCache(32 << 10),
		SchemeCombined(64<<10, predictor.SchemeRegular),
		SchemeDirect(),
	}
	r := rng.New(0x5eed_e901)
	const cases = 10
	for i := 0; i < cases; i++ {
		bench := benches[r.Intn(len(benches))]
		cfg := DefaultConfig(schemes[r.Intn(len(schemes))])
		cfg.Scale = workload.Scale{
			Footprint:    (256 + r.Intn(768)) << 10,
			Instructions: uint64(100_000 + r.Intn(100_000)),
		}
		cfg.Seed = r.Uint64()
		if r.Bool(0.5) {
			cfg.Mode = HitRate
		}
		cfg.SelfCheck = r.Bool(0.5)
		if r.Bool(0.25) && !cfg.Scheme.Direct {
			cfg.Integrity = true
		}
		name := fmt.Sprintf("%02d-%s-%s-mode%d-sc%v-int%v",
			i, bench, cfg.Scheme.Name, cfg.Mode, cfg.SelfCheck, cfg.Integrity)
		t.Run(name, func(t *testing.T) { assertMatchesReference(t, bench, cfg) })
	}

	// Adversarial cases: an armed fault plan exercises the tamper,
	// quarantine and heal paths, which must also be identical either way.
	// Quarantine recovery lets the runs complete so full snapshots
	// compare; integrity is on so every attack is detected.
	kinds := []faults.Kind{faults.BitFlip, faults.Splice, faults.Rollback}
	for i := 0; i < 4; i++ {
		bench := benches[r.Intn(len(benches))]
		cfg := DefaultConfig(SchemePred(predictor.SchemeRegular))
		cfg.Scale = workload.Scale{
			Footprint:    (256 + r.Intn(256)) << 10,
			Instructions: uint64(100_000 + r.Intn(50_000)),
		}
		cfg.Seed = r.Uint64()
		cfg.Integrity = true
		cfg.Recovery = secmem.RecoveryQuarantine
		kind := kinds[r.Intn(len(kinds))]
		cfg.Faults = &faults.Plan{Attacks: []faults.Attack{
			{Kind: kind, Trigger: faults.Trigger{Fetch: uint64(10 + r.Intn(200))}},
		}}
		name := fmt.Sprintf("faults-%02d-%s-%s", i, bench, kind)
		t.Run(name, func(t *testing.T) { assertMatchesReference(t, bench, cfg) })
	}
}

// assertMatchesReference runs cfg on the default fast paths and again
// with Config.Reference, and requires byte-identical snapshots.
func assertMatchesReference(t *testing.T, bench string, cfg Config) {
	t.Helper()
	fast, err := Run(bench, cfg)
	if err != nil {
		t.Fatalf("fast run: %v", err)
	}
	rcfg := cfg
	rcfg.Reference = true
	ref, err := Run(bench, rcfg)
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	fastJSON, err := fast.Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	refJSON, err := ref.Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(fastJSON) != string(refJSON) {
		t.Errorf("fast-path snapshot diverges from reference loop\nfast:\n%s\nreference:\n%s", fastJSON, refJSON)
	}
}

// TestCheckpointPromptness pins the RunContext cancellation contract in
// both modes: a context cancel is observed within one CheckInterval of
// committed instructions, not at run granularity, and the partial
// result reflects where the run actually stopped.
func TestCheckpointPromptness(t *testing.T) {
	for _, mode := range []Mode{Performance, HitRate} {
		name := "performance"
		if mode == HitRate {
			name = "hitrate"
		}
		t.Run(name, func(t *testing.T) {
			const interval = 10_000
			cfg := DefaultConfig(SchemePred(predictor.SchemeRegular)).WithMode(mode)
			cfg.Scale = workload.Scale{Footprint: 1 << 18, Instructions: 500_000}
			cfg.CheckInterval = interval
			m, err := NewMachine("gzip", cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer m.Close()

			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			var cancelAt uint64
			m.OnProgress(func(committed uint64) {
				// Cancel at the third checkpoint, mid-run: far from both
				// the start and the instruction budget.
				if committed >= 3*interval && cancelAt == 0 {
					cancelAt = committed
					cancel()
				}
			})
			res, err := m.RunContext(ctx)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("RunContext error = %v, want context.Canceled", err)
			}
			stopped := res.CPU.Instructions
			if cancelAt == 0 {
				t.Fatal("progress callback never reached the cancel point")
			}
			if stopped < cancelAt {
				t.Errorf("stopped at %d instructions, before the cancel at %d", stopped, cancelAt)
			}
			if stopped > cancelAt+interval {
				t.Errorf("cancel at %d instructions observed only at %d; want within one CheckInterval (%d)",
					cancelAt, stopped, interval)
			}
			if stopped >= cfg.Scale.Instructions {
				t.Errorf("run consumed the full %d-instruction budget despite the cancel", cfg.Scale.Instructions)
			}
		})
	}
}
