// Package sim wires a complete secure processor — out-of-order core,
// cache/TLB hierarchy, DRAM, crypto engine, secure memory controller, and
// one of the counter-availability schemes — around a workload, runs it,
// and collects every statistic the paper's figures need.
//
// Two modes mirror the paper's methodology (Section 5.1): Performance
// mode runs the detailed out-of-order model and reports IPC; HitRate mode
// runs the fast functional model over longer windows and reports
// prediction/seq-cache hit rates.
package sim

import (
	"context"
	"fmt"

	"ctrpred/internal/cache"
	"ctrpred/internal/cpu"
	"ctrpred/internal/cryptoengine"
	"ctrpred/internal/ctr"
	"ctrpred/internal/dram"
	"ctrpred/internal/faults"
	"ctrpred/internal/integrity"
	"ctrpred/internal/mem"
	"ctrpred/internal/memsys"
	"ctrpred/internal/predictor"
	"ctrpred/internal/secmem"
	"ctrpred/internal/seqcache"
	"ctrpred/internal/workload"
)

// Mode selects the simulation fidelity.
type Mode int

const (
	// Performance runs the out-of-order timing model (IPC figures).
	Performance Mode = iota
	// HitRate runs the fast functional model (prediction-rate figures).
	HitRate
)

func (m Mode) String() string {
	if m == HitRate {
		return "hitrate"
	}
	return "performance"
}

// Scheme describes the counter-availability mechanism under test.
type Scheme struct {
	// Name is the label used in experiment output.
	Name string
	// SeqCacheBytes > 0 adds a sequence-number cache of that size.
	SeqCacheBytes int
	// Pred selects the prediction scheme (predictor.SchemeNone disables).
	Pred predictor.Scheme
	// PredConfig optionally overrides the full predictor configuration;
	// when nil, predictor.DefaultConfig(Pred) is used.
	PredConfig *predictor.Config
	// Oracle makes every counter available instantly.
	Oracle bool
	// Direct uses direct (XEX) memory encryption instead of counter mode.
	Direct bool
}

// Canonical schemes used across the experiments.
func SchemeBaseline() Scheme { return Scheme{Name: "baseline"} }
func SchemeOracle() Scheme   { return Scheme{Name: "oracle", Oracle: true} }
func SchemeDirect() Scheme   { return Scheme{Name: "direct", Direct: true} }
func SchemeSeqCache(bytes int) Scheme {
	return Scheme{Name: "seqcache-" + sizeLabel(bytes), SeqCacheBytes: bytes}
}
func SchemePred(p predictor.Scheme) Scheme {
	return Scheme{Name: "pred-" + p.String(), Pred: p}
}
func SchemeCombined(bytes int, p predictor.Scheme) Scheme {
	return Scheme{
		Name:          fmt.Sprintf("seqcache-%s+pred-%s", sizeLabel(bytes), p),
		SeqCacheBytes: bytes,
		Pred:          p,
	}
}

// sizeLabel renders a capacity for scheme names: whole KiB above 1 KiB
// (1 MiB stays "1024K", matching the figures' labels), raw bytes below —
// a 512-byte cache is "512B", not the truncated "0K".
func sizeLabel(bytes int) string {
	if bytes < 1<<10 {
		return fmt.Sprintf("%dB", bytes)
	}
	return fmt.Sprintf("%dK", bytes>>10)
}

// Config is a full machine + run configuration.
type Config struct {
	CPU    cpu.Config
	Mem    memsys.Config
	DRAM   dram.Config
	// Engine selects the cipher-engine timing model (see
	// cryptoengine.ParseEngine). The zero Spec is the default pipelined
	// AES, so configs predating engine models keep their meaning.
	Engine cryptoengine.Spec
	Scheme Scheme
	Scale  workload.Scale
	Mode   Mode
	// Seed drives workload layout, key material and predictor roots.
	Seed uint64
	// SelfCheck verifies decryptions and pad uniqueness while running.
	SelfCheck bool
	// Integrity attaches the hash-tree memory authentication the paper
	// assumes alongside encryption (Section 2.2): every fetch verifies,
	// every writeback updates the tree.
	Integrity bool
	// CheckInterval is the number of committed instructions between
	// run checkpoints (context cancellation and security-halt polling).
	// A cancel or a RecoveryHalt detection therefore lands within one
	// interval of simulated instructions, not at run granularity. 0
	// means DefaultCheckInterval. It has no effect on timing or
	// statistics.
	CheckInterval uint64
	// Faults arms the adversarial fault injector with an attack plan
	// (nil = clean memory). Without the integrity tree most attacks pass
	// undetected — that is the paper's point — so campaigns should pair
	// Faults with Integrity.
	Faults *faults.Plan
	// Recovery selects the controller's reaction to detected tampering:
	// halt at the first detection (default) or quarantine-and-heal.
	Recovery secmem.RecoveryPolicy
	// RetryBudget bounds quarantine re-fetch attempts (0 = secmem's
	// DefaultRetryBudget).
	RetryBudget int
	// Reference routes the machine through the retained scalar paths:
	// the crypto engine books every speculative guess one request at a
	// time, the controller recomputes every pad instead of reusing
	// stored material, and the counters-only model is disabled. The
	// batched fast path is defined to be bit- and cycle-identical to
	// this, so Reference exists as a debugging escape hatch and as the
	// anchor the equivalence suite compares fast runs against. It has no
	// effect on results — only on how they are computed.
	Reference bool
}

// DefaultCheckInterval is the cancellation-checkpoint spacing used when
// Config.CheckInterval is zero: small enough that a cancel lands in
// well under a second of wall-clock simulation, large enough that the
// poll is unmeasurable against the per-instruction work.
const DefaultCheckInterval = 10_000

// DefaultConfig returns the Table 1 machine with the given scheme, the
// 256 KB L2, performance mode, and the default workload scale.
func DefaultConfig(s Scheme) Config {
	return Config{
		CPU:       cpu.DefaultConfig(),
		Mem:       memsys.DefaultConfig(),
		DRAM:      dram.DefaultConfig(),
		Engine:    cryptoengine.DefaultSpec(),
		Scheme:    s,
		Scale:     workload.DefaultScale(),
		Mode:      Performance,
		Seed:      1,
		SelfCheck: true,
	}
}

// WithL2 returns the config with the L2 size (and latency) adjusted.
func (c Config) WithL2(size int) Config {
	c.Mem = c.Mem.WithL2(size)
	return c
}

// WithMode returns the config in the given mode. HitRate mode scales the
// dirty-flush interval to instruction counting (one instruction ≈ one
// cycle there).
func (c Config) WithMode(m Mode) Config {
	c.Mode = m
	return c
}

// WithIntegrity returns the config with hash-tree protection enabled.
func (c Config) WithIntegrity() Config {
	c.Integrity = true
	return c
}

// WithSeed returns the config with the given seed for workload layout,
// key material and predictor roots.
func (c Config) WithSeed(seed uint64) Config {
	c.Seed = seed
	return c
}

// WithInstrBudget returns the config with the given dynamic instruction
// budget.
func (c Config) WithInstrBudget(n uint64) Config {
	c.Scale.Instructions = n
	return c
}

// WithFootprint returns the config with the given workload working-set
// target in bytes.
func (c Config) WithFootprint(bytes int) Config {
	c.Scale.Footprint = bytes
	return c
}

// WithFaults returns the config with the given attack plan armed.
func (c Config) WithFaults(p *faults.Plan) Config {
	c.Faults = p
	return c
}

// WithRecovery returns the config with the given recovery policy.
func (c Config) WithRecovery(p secmem.RecoveryPolicy) Config {
	c.Recovery = p
	return c
}

// WithEngine returns the config with the given cipher-engine model.
// The spec is normalized so equivalent specs fingerprint identically.
func (c Config) WithEngine(s cryptoengine.Spec) Config {
	c.Engine = s.Normalized()
	return c
}

// Result carries everything a run produced.
type Result struct {
	Benchmark string
	Scheme    string
	Mode      Mode

	CPU       cpu.Stats
	Ctrl      secmem.Stats
	Pred      predictor.Stats
	Engine    cryptoengine.Stats
	DRAM      dram.Stats
	Hierarchy memsys.Stats
	L1D, L2   cache.Stats
	SeqCache  *cache.Stats     // nil when the scheme has none
	Integrity *integrity.Stats // nil when the tree is disabled
	// Security carries the recovery/degradation counters; nil unless the
	// injector was armed or a security event occurred, so clean-run
	// snapshots are unchanged.
	Security *secmem.SecurityStats
	// Faults is the injector's ledger; nil when no injector was armed.
	Faults *faults.Stats

	// PadViolations counts one-time-pad reuse (must be 0).
	PadViolations uint64
}

// IPC returns instructions per cycle (performance mode).
func (r Result) IPC() float64 { return r.CPU.IPC() }

// PredRate returns the sequence-number prediction rate.
func (r Result) PredRate() float64 { return r.Pred.HitRate() }

// SeqHitRate returns the sequence-number cache hit rate over fetches.
func (r Result) SeqHitRate() float64 {
	if r.Ctrl.Fetches == 0 {
		return 0
	}
	return float64(r.Ctrl.SeqCacheHits) / float64(r.Ctrl.Fetches)
}

// Machine is an assembled simulator instance. Most callers use Run; the
// examples use Machine directly to poke at components.
type Machine struct {
	Config Config
	// Benchmark is the workload the machine was built for; results carry
	// it so a Result can never be mislabeled by the caller.
	Benchmark string
	Image     *mem.Memory
	Core      *cpu.Core
	Sys       *memsys.System
	Ctrl      *secmem.Controller
	Pred      *predictor.Predictor
	SCache    *seqcache.Cache
	Engine    cryptoengine.EngineModel
	DRAM      *dram.DRAM
	// Faults is the armed adversary, or nil for clean memory.
	Faults *faults.Injector

	// progress, when set, is invoked at every RunContext checkpoint with
	// the committed-instruction count. It rides the existing
	// CheckInterval polling, so it has zero cost when unset and no
	// effect on timing or statistics either way.
	progress func(committed uint64)
}

// OnProgress registers fn to be called at every RunContext checkpoint
// (every Config.CheckInterval committed instructions) with the number of
// instructions committed so far. Long-running services use it to stream
// liveness without touching the simulation's behavior. Pass nil to
// unregister.
func (m *Machine) OnProgress(fn func(committed uint64)) { m.progress = fn }

// Close returns the machine's copy-on-write pages — the architectural
// image view and the controller's line state — to their templates'
// shared pools, so the next machine of the sweep reuses the memory
// instead of allocating it. The machine must not be run or inspected
// afterward. Optional: an unclosed machine is reclaimed by the garbage
// collector as usual, it just recycles nothing.
func (m *Machine) Close() {
	m.Ctrl.Release()
	m.Image.Release()
}

// NewMachine builds the machine and loads the named workload. The
// seed-deterministic parts — assembled program, written image, aging
// profile, pre-aged encrypted state — come from a process-wide template
// cache (see template.go) and are attached copy-on-write, so building
// the N-th machine of a sweep costs caches and predictor state, not a
// rebuild of megabytes of identical memory contents.
func NewMachine(bench string, cfg Config) (*Machine, error) {
	tmpl, err := getTemplate(bench, cfg)
	if err != nil {
		return nil, err
	}
	image := mem.NewView(tmpl.image)

	d := dram.New(cfg.DRAM)
	engine, err := cryptoengine.NewModel(cfg.Engine, ctr.NewKeystream(machineKey(cfg.Seed)))
	if err != nil {
		return nil, err
	}

	pcfg := predictor.DefaultConfig(cfg.Scheme.Pred)
	if cfg.Scheme.PredConfig != nil {
		pcfg = *cfg.Scheme.PredConfig
	}
	pcfg.Seed = cfg.Seed ^ 0xabcdef
	pred := predictor.New(pcfg)

	var sc *seqcache.Cache
	if cfg.Scheme.SeqCacheBytes > 0 {
		sc = seqcache.New(cfg.Scheme.SeqCacheBytes)
	}

	scfg := secmem.DefaultConfig()
	scfg.Oracle = cfg.Scheme.Oracle
	scfg.Direct = cfg.Scheme.Direct
	scfg.SelfCheck = cfg.SelfCheck
	// Functional hit-rate runs observe only counter, predictor and cache
	// dynamics; when nothing needs the plaintext path — no self-check, no
	// integrity tree, no armed adversary, not direct encryption — the
	// controller runs its counters-only model, which books identical
	// timing and statistics without storing pads or ciphertext. This is
	// what lets long hit-rate sweeps run in a fraction of the memory.
	scfg.CountersOnly = cfg.Mode == HitRate && !cfg.SelfCheck &&
		!cfg.Integrity && cfg.Faults == nil && !cfg.Scheme.Direct &&
		!cfg.Reference
	scfg.Scheme = cfg.Scheme.Name
	scfg.Recovery = cfg.Recovery
	scfg.RetryBudget = cfg.RetryBudget
	ctrl := secmem.New(scfg, d, engine, pred, sc, image)
	if cfg.Reference {
		ctrl.SetReference(true)
	}
	if cfg.Integrity {
		ctrl.AttachIntegrity(integrity.New(integrity.DefaultConfig(), d))
	}
	var inj *faults.Injector
	if cfg.Faults != nil {
		inj = faults.NewInjector(*cfg.Faults, cfg.Seed^0xfa0175)
		ctrl.ArmFaults(inj)
	}

	// Apply the workload's counter-aging profile: the update history a
	// long fast-forward would have left in each write region, including
	// warm two-level range state (the paper simulates the prediction
	// mechanism during fast-forward). Direct mode has no counters to age.
	//
	// The common case attaches the template's pre-aged encrypted state as
	// a copy-on-write view and only replays the per-page root draws into
	// this machine's predictor (in template order, so the drawn values
	// are identical to eager aging). Integrity machines build their hash
	// tree during aging and custom predictor geometry changes which pages
	// draw roots, so those replay the eager per-line loop from the cached
	// sample list — byte-identical to the original sampling loop.
	if !cfg.Scheme.Direct {
		if cfg.Integrity || cfg.Scheme.PredConfig != nil {
			for _, s := range tmpl.ageList {
				ctrl.AgeLine(s.la, s.off)
				pred.WarmRange(s.la, s.off)
			}
		} else {
			if pcfg.Scheme == predictor.SchemeTwoLevel {
				// Warm range state first: its table walks create the
				// counter pages in sample order, matching eager aging
				// (where AgeLine touched each page at the same point).
				for _, s := range tmpl.ageList {
					pred.WarmRange(s.la, s.off)
				}
			}
			for _, la := range tmpl.agePages {
				pred.Root(la)
			}
			ctrl.UseAgedTemplate(tmpl.aged)
		}
	}

	sys := memsys.New(cfg.Mem, ctrl)
	core := cpu.New(cfg.CPU, tmpl.prog, image, sys)
	if inj != nil {
		inj.SetInstrSource(core.Committed)
	}

	return &Machine{
		Config: cfg, Benchmark: bench, Image: image, Core: core, Sys: sys,
		Ctrl: ctrl, Pred: pred, SCache: sc, Engine: engine, DRAM: d,
		Faults: inj,
	}, nil
}

// Run executes the machine to the configured instruction budget and
// collects the result, labeled with the benchmark the machine was built
// for.
func (m *Machine) Run() Result {
	res, _ := m.RunContext(context.Background())
	return res
}

// RunContext is Run with cancellation and security-halt propagation: a
// checkpoint polled every Config.CheckInterval committed instructions
// stops the simulation within one interval of a context cancel, a
// deadline expiry, or — under RecoveryHalt — the controller recording a
// *SecurityError on tampered memory. On interruption the partial Result
// collected so far is returned alongside the error (mirroring the
// sweep-level *PartialError contract). A clean run whose checkpoints
// never fire is cycle-for-cycle identical to Run.
func (m *Machine) RunContext(ctx context.Context) (Result, error) {
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	m.armCheckpoint(ctx)
	defer m.Core.SetCheckpoint(0, nil)
	var cs cpu.Stats
	if m.Config.Mode == HitRate {
		cs = m.Core.RunFunctional(m.Config.Scale.Instructions)
	} else {
		cs = m.Core.Run(m.Config.Scale.Instructions)
	}
	return m.collect(cs), m.runErr()
}

// armCheckpoint installs the per-interval poll RunContext and
// RunSliceContext share: progress streaming, security-halt propagation,
// and context cancellation.
func (m *Machine) armCheckpoint(ctx context.Context) {
	interval := m.Config.CheckInterval
	if interval == 0 {
		interval = DefaultCheckInterval
	}
	ctxErr := func() error { return nil }
	if ctx.Done() != nil {
		ctxErr = ctx.Err
	}
	m.Core.SetCheckpoint(interval, func() error {
		if m.progress != nil {
			m.progress(m.Core.Committed())
		}
		if err := m.Ctrl.SecurityErr(); err != nil {
			return err
		}
		return ctxErr()
	})
}

// runErr resolves what interrupted the core, if anything.
func (m *Machine) runErr() error {
	err := m.Core.StopCause()
	if err == nil {
		// A violation inside the final checkpoint interval still halts
		// the result, even though no checkpoint fired after it.
		err = m.Ctrl.SecurityErr()
	}
	return err
}

// collect assembles the Result from the machine's current statistics.
func (m *Machine) collect(cs cpu.Stats) Result {
	_, l1d, l2 := m.Sys.Caches()
	res := Result{
		Benchmark:     m.Benchmark,
		Scheme:        m.Config.Scheme.Name,
		Mode:          m.Config.Mode,
		CPU:           cs,
		Ctrl:          m.Ctrl.Stats(),
		Pred:          m.Pred.Stats(),
		Engine:        m.Engine.Stats(),
		DRAM:          m.DRAM.Stats(),
		Hierarchy:     m.Sys.Stats(),
		L1D:           l1d.Stats(),
		L2:            l2.Stats(),
		PadViolations: m.Ctrl.PadViolations(),
	}
	if m.SCache != nil {
		s := m.SCache.Stats()
		res.SeqCache = &s
	}
	if tree := m.Ctrl.IntegrityTree(); tree != nil {
		s := tree.Stats()
		res.Integrity = &s
	}
	if m.Faults != nil {
		fs := m.Faults.Stats()
		res.Faults = &fs
	}
	if ss := m.Ctrl.SecurityStats(); m.Faults != nil || ss != (secmem.SecurityStats{}) {
		res.Security = &ss
	}
	return res
}

// RunSliceContext runs the machine's timing core until its
// committed-instruction count reaches target (an absolute count), one
// timeslice of a longer residency: dirty lines are left in place so the
// next slice — or Finish, which drains them — continues where this one
// stopped. Checkpoints poll exactly as in RunContext. It reports whether
// the core can continue (false once the program halts or the budget
// passes target) alongside any interrupting error. Slicing is a
// performance-mode facility; HitRate machines run whole via RunContext.
func (m *Machine) RunSliceContext(ctx context.Context, target uint64) (bool, error) {
	if err := ctx.Err(); err != nil {
		return false, err
	}
	m.armCheckpoint(ctx)
	defer m.Core.SetCheckpoint(0, nil)
	m.Core.RunSlice(target)
	if err := m.runErr(); err != nil {
		return false, err
	}
	return !m.Core.Halted(), nil
}

// SwitchIn applies the context-switch disturbance another process left
// behind before this machine's next slice runs: dirty data written back
// (advancing counters), caches/TLBs/sequence-number cache invalidated,
// and — unless retainPredictor — the predictor's transient state
// flushed. Per-page roots always survive; they are part of the saved
// process context (see predictor.FlushTransient).
func (m *Machine) SwitchIn(retainPredictor bool) {
	m.Sys.ContextSwitch(m.Core.Stats().Cycles)
	if !retainPredictor {
		m.Pred.FlushTransient()
	}
}

// Finish closes a sliced run: still-dirty lines are written back into
// the measured region, as Run's epilogue does, and the Result is
// assembled from everything the slices accumulated.
func (m *Machine) Finish() Result {
	m.Sys.DrainDirty(m.Core.Stats().Cycles)
	return m.collect(m.Core.Stats())
}

// Run builds and runs the named benchmark under cfg.
func Run(bench string, cfg Config) (Result, error) {
	return RunContext(context.Background(), bench, cfg)
}

// RunContext builds and runs the named benchmark under cfg, polling ctx
// at Config.CheckInterval instruction checkpoints so cancellation lands
// within a bounded amount of simulated work.
func RunContext(ctx context.Context, bench string, cfg Config) (Result, error) {
	m, err := NewMachine(bench, cfg)
	if err != nil {
		return Result{}, err
	}
	defer m.Close()
	return m.RunContext(ctx)
}
