package sim

import (
	"encoding/json"
	"fmt"

	"ctrpred/internal/sha256"
)

// Fingerprint returns a stable content hash identifying a run: the
// benchmark plus every configuration field that can influence its
// statistics. Runs with equal fingerprints produce byte-identical
// Result.Snapshot output, so the hash is usable as a result-cache key.
//
// Fields that cannot affect results are normalized out before hashing:
// CheckInterval only paces cancellation polling, so two requests that
// differ in nothing else collapse onto one cache entry. The engine spec
// is normalized the other way — the zero Spec and an explicit default
// AES spec describe the same machine and must collide, while any spec
// with different timing must hash differently (engine timing changes
// every performance statistic, so colliding specs would let the result
// cache serve the wrong bytes).
func Fingerprint(bench string, cfg Config) string {
	cfg.CheckInterval = 0
	cfg.Engine = cfg.Engine.Normalized()
	payload := struct {
		Bench  string
		Config Config
	}{bench, cfg}
	b, err := json.Marshal(payload)
	if err != nil {
		// Config is plain data end to end (no funcs, chans or cycles);
		// a marshal failure means a field type regressed.
		panic(fmt.Sprintf("sim: config not fingerprintable: %v", err))
	}
	return fmt.Sprintf("%x", sha256.Sum256(b))
}
