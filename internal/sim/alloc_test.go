package sim

import (
	"testing"

	"ctrpred/internal/predictor"
	"ctrpred/internal/workload"
)

// TestSteadyStateAccessAllocFree pins the memory-system hot path: once a
// working set is resident, loads and stores that hit in the L2 must not
// allocate. The two addresses alias in the direct-mapped L1D (8 KiB
// apart) so every access misses L1 and exercises the L2-hit path, the
// common case in every measured run. Periodic flushing is disabled so the
// measured region contains no batch writebacks.
func TestSteadyStateAccessAllocFree(t *testing.T) {
	cfg := DefaultConfig(SchemePred(predictor.SchemeContext))
	cfg.Scale = workload.Scale{Footprint: 1 << 16, Instructions: 1_000}
	cfg.Mem.FlushInterval = 0
	m, err := NewMachine("mcf", cfg)
	if err != nil {
		t.Fatal(err)
	}

	a := uint64(1 << 20)
	b := a + uint64(cfg.Mem.L1DSize) // same L1 set, different L2 set
	now := m.Sys.Access(0, a, false)
	now = m.Sys.Access(now, b, false)
	now = m.Sys.Access(now, a, true)
	now = m.Sys.Access(now, b, true)

	if n := testing.AllocsPerRun(500, func() {
		now = m.Sys.Access(now, a, false)
		now = m.Sys.Access(now, b, false)
		now = m.Sys.Access(now, a, true)
		now = m.Sys.Access(now, b, true)
	}); n != 0 {
		t.Errorf("steady-state L2-hit access allocates %v times per run, want 0", n)
	}
}

// TestHitRateSteadyStateAllocs pins the per-run allocation behavior the
// functional-mode sweeps depend on: once the (benchmark, scale, seed)
// template is cached, every further run attaches copy-on-write views and
// recycles its pages through the template's free lists on Close, so the
// steady-state cost is a few hundred small allocations (machine wiring),
// not megabytes of line-state tables. Measured ~340 allocs/run; the
// bound leaves an order of magnitude of headroom so it only trips on a
// real regression (e.g. a path that stops releasing pages or rebuilds
// the template per run).
func TestHitRateSteadyStateAllocs(t *testing.T) {
	cfg := DefaultConfig(SchemePred(predictor.SchemeRegular)).WithMode(HitRate)
	cfg.Scale = workload.Scale{Footprint: 1 << 20, Instructions: 200_000}
	cfg.SelfCheck = false
	// Warm the template cache and the page free lists.
	if _, err := Run("mcf", cfg); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(5, func() {
		if _, err := Run("mcf", cfg); err != nil {
			t.Error(err)
		}
	})
	t.Logf("steady-state allocs/run = %.0f", avg)
	if avg > 5000 {
		t.Fatalf("steady-state HitRate run allocates %.0f objects; the template/arena path should stay in the hundreds", avg)
	}
}

// TestCountersOnlyGating pins when sim selects the controller's
// counters-only model: functional mode with nothing needing the
// plaintext path — and never in performance mode, under self-check,
// integrity, faults, or direct encryption, all of which need real
// ciphertext.
func TestCountersOnlyGating(t *testing.T) {
	base := DefaultConfig(SchemePred(predictor.SchemeRegular)).WithMode(HitRate)
	base.Scale = workload.Scale{Footprint: 1 << 18, Instructions: 1000}
	base.SelfCheck = false

	cases := []struct {
		name string
		mut  func(*Config)
		want bool
	}{
		{"hitrate", func(c *Config) {}, true},
		{"performance", func(c *Config) { c.Mode = Performance }, false},
		{"selfcheck", func(c *Config) { c.SelfCheck = true }, false},
		{"integrity", func(c *Config) { c.Integrity = true }, false},
		{"direct", func(c *Config) { c.Scheme = SchemeDirect() }, false},
	}
	for _, tc := range cases {
		cfg := base
		tc.mut(&cfg)
		m, err := NewMachine("gzip", cfg)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if got := m.Ctrl.CountersOnly(); got != tc.want {
			t.Errorf("%s: CountersOnly = %v, want %v", tc.name, got, tc.want)
		}
		m.Close()
	}
}
