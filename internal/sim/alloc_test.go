package sim

import (
	"testing"

	"ctrpred/internal/predictor"
	"ctrpred/internal/workload"
)

// TestSteadyStateAccessAllocFree pins the memory-system hot path: once a
// working set is resident, loads and stores that hit in the L2 must not
// allocate. The two addresses alias in the direct-mapped L1D (8 KiB
// apart) so every access misses L1 and exercises the L2-hit path, the
// common case in every measured run. Periodic flushing is disabled so the
// measured region contains no batch writebacks.
func TestSteadyStateAccessAllocFree(t *testing.T) {
	cfg := DefaultConfig(SchemePred(predictor.SchemeContext))
	cfg.Scale = workload.Scale{Footprint: 1 << 16, Instructions: 1_000}
	cfg.Mem.FlushInterval = 0
	m, err := NewMachine("mcf", cfg)
	if err != nil {
		t.Fatal(err)
	}

	a := uint64(1 << 20)
	b := a + uint64(cfg.Mem.L1DSize) // same L1 set, different L2 set
	now := m.Sys.Access(0, a, false)
	now = m.Sys.Access(now, b, false)
	now = m.Sys.Access(now, a, true)
	now = m.Sys.Access(now, b, true)

	if n := testing.AllocsPerRun(500, func() {
		now = m.Sys.Access(now, a, false)
		now = m.Sys.Access(now, b, false)
		now = m.Sys.Access(now, a, true)
		now = m.Sys.Access(now, b, true)
	}); n != 0 {
		t.Errorf("steady-state L2-hit access allocates %v times per run, want 0", n)
	}
}
