package sim

import (
	"context"
	"errors"
	"testing"
	"time"

	"ctrpred/internal/predictor"
	"ctrpred/internal/workload"
)

func testConfig(s Scheme) Config {
	cfg := DefaultConfig(s)
	cfg.Scale = workload.TestScale()
	// Small L2 so tiny test footprints still miss.
	cfg.Mem.L2Size = 16 << 10
	cfg.Mem.FlushInterval = 20_000
	return cfg
}

func TestAllBenchmarksRunAllSchemes(t *testing.T) {
	schemes := []Scheme{
		SchemeBaseline(),
		SchemeSeqCache(4 << 10),
		SchemePred(predictor.SchemeRegular),
		SchemePred(predictor.SchemeTwoLevel),
		SchemePred(predictor.SchemeContext),
		SchemeCombined(4<<10, predictor.SchemeRegular),
		SchemeOracle(),
	}
	for _, bench := range workload.Names() {
		for _, sch := range schemes {
			res, err := Run(bench, testConfig(sch))
			if err != nil {
				t.Fatalf("%s/%s: %v", bench, sch.Name, err)
			}
			if res.CPU.Instructions == 0 {
				t.Fatalf("%s/%s: executed no instructions", bench, sch.Name)
			}
			if res.PadViolations != 0 {
				t.Fatalf("%s/%s: %d pad violations", bench, sch.Name, res.PadViolations)
			}
			if res.Ctrl.SelfCheckFails != 0 {
				t.Fatalf("%s/%s: self-check failures", bench, sch.Name)
			}
			if res.Ctrl.Fetches == 0 {
				t.Fatalf("%s/%s: no memory fetches — workload too small to measure", bench, sch.Name)
			}
		}
	}
}

func TestHitRateModeMatchesFetchDynamics(t *testing.T) {
	// HitRate and Performance modes must see the same access stream,
	// hence closely similar fetch/prediction counts.
	perf, err := Run("mcf", testConfig(SchemePred(predictor.SchemeRegular)))
	if err != nil {
		t.Fatal(err)
	}
	hr, err := Run("mcf", testConfig(SchemePred(predictor.SchemeRegular)).WithMode(HitRate))
	if err != nil {
		t.Fatal(err)
	}
	if hr.Ctrl.Fetches == 0 {
		t.Fatal("hit-rate mode saw no fetches")
	}
	ratio := float64(hr.Ctrl.Fetches) / float64(perf.Ctrl.Fetches)
	if ratio < 0.9 || ratio > 1.1 {
		t.Fatalf("fetch counts diverge: perf=%d hitrate=%d", perf.Ctrl.Fetches, hr.Ctrl.Fetches)
	}
}

func TestOracleFastestPredictionBeatsBaseline(t *testing.T) {
	// The ordering the whole paper rests on, on a pointer-chasing
	// read-mostly kernel: oracle ≥ prediction > baseline.
	base, _ := Run("mcf", testConfig(SchemeBaseline()))
	pred, _ := Run("mcf", testConfig(SchemePred(predictor.SchemeRegular)))
	orac, _ := Run("mcf", testConfig(SchemeOracle()))
	if !(orac.IPC() >= pred.IPC()) {
		t.Fatalf("oracle IPC %.3f < pred IPC %.3f", orac.IPC(), pred.IPC())
	}
	if !(pred.IPC() > base.IPC()) {
		t.Fatalf("pred IPC %.3f not above baseline %.3f", pred.IPC(), base.IPC())
	}
}

func TestPredictionRateHighOnReadMostly(t *testing.T) {
	res, _ := Run("mcf", testConfig(SchemePred(predictor.SchemeRegular)).WithMode(HitRate))
	if res.PredRate() < 0.9 {
		t.Fatalf("mcf prediction rate = %.3f, want ≳0.9 (read-mostly)", res.PredRate())
	}
}

func TestContextBeatsRegularOnWriteHeavy(t *testing.T) {
	cfg := testConfig(SchemePred(predictor.SchemeRegular)).WithMode(HitRate)
	reg, _ := Run("gzip", cfg)
	cfgCtx := testConfig(SchemePred(predictor.SchemeContext)).WithMode(HitRate)
	ctx, _ := Run("gzip", cfgCtx)
	if ctx.PredRate() < reg.PredRate() {
		t.Fatalf("context rate %.3f below regular %.3f on gzip", ctx.PredRate(), reg.PredRate())
	}
}

func TestSeqCacheSizeMonotone(t *testing.T) {
	small, _ := Run("mcf", testConfig(SchemeSeqCache(1<<10)).WithMode(HitRate))
	big, _ := Run("mcf", testConfig(SchemeSeqCache(64<<10)).WithMode(HitRate))
	if big.SeqHitRate() < small.SeqHitRate() {
		t.Fatalf("bigger seq cache worse: %v vs %v", big.SeqHitRate(), small.SeqHitRate())
	}
}

func TestSchemeNames(t *testing.T) {
	cases := map[string]Scheme{
		"baseline":                  SchemeBaseline(),
		"oracle":                    SchemeOracle(),
		"seqcache-128K":             SchemeSeqCache(128 << 10),
		"pred-regular":              SchemePred(predictor.SchemeRegular),
		"pred-context":              SchemePred(predictor.SchemeContext),
		"seqcache-32K+pred-regular": SchemeCombined(32<<10, predictor.SchemeRegular),
	}
	for want, s := range cases {
		if s.Name != want {
			t.Errorf("scheme name %q, want %q", s.Name, want)
		}
	}
}

func TestSchemeLabelSubKiB(t *testing.T) {
	// Sub-1-KiB capacities used to truncate to the nonsensical "0K".
	cases := map[string]string{
		SchemeSeqCache(512).Name:                             "seqcache-512B",
		SchemeSeqCache(1).Name:                               "seqcache-1B",
		SchemeSeqCache(1 << 10).Name:                         "seqcache-1K",
		SchemeSeqCache(1 << 20).Name:                         "seqcache-1024K",
		SchemeCombined(768, predictor.SchemeRegular).Name:    "seqcache-768B+pred-regular",
		SchemeCombined(32<<10, predictor.SchemeContext).Name: "seqcache-32K+pred-context",
	}
	for got, want := range cases {
		if got != want {
			t.Errorf("scheme label %q, want %q", got, want)
		}
	}
	if sizeLabel(1023) != "1023B" || sizeLabel(1024) != "1K" || sizeLabel(2048) != "2K" {
		t.Error("sizeLabel boundary wrong")
	}
}

func TestWithL2AndMode(t *testing.T) {
	cfg := DefaultConfig(SchemeBaseline()).WithL2(1 << 20).WithMode(HitRate)
	if cfg.Mem.L2Size != 1<<20 || cfg.Mem.L2Latency != 8 || cfg.Mode != HitRate {
		t.Fatalf("cfg = %+v", cfg)
	}
	if Performance.String() != "performance" || HitRate.String() != "hitrate" {
		t.Fatal("mode strings wrong")
	}
}

func TestUnknownBenchmark(t *testing.T) {
	if _, err := Run("nonesuch", testConfig(SchemeBaseline())); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestResultPlumbing(t *testing.T) {
	res, err := Run("swim", testConfig(SchemeCombined(4<<10, predictor.SchemeRegular)))
	if err != nil {
		t.Fatal(err)
	}
	if res.SeqCache == nil {
		t.Fatal("combined scheme missing seq-cache stats")
	}
	if res.L2.Accesses == 0 || res.DRAM.Reads == 0 || res.Engine.IssuedTotal() == 0 {
		t.Fatalf("stats not plumbed: %+v", res)
	}
	if res.Benchmark != "swim" || res.Mode != Performance {
		t.Fatalf("metadata wrong: %+v", res)
	}
}

func TestDeterministicResults(t *testing.T) {
	a, _ := Run("twolf", testConfig(SchemePred(predictor.SchemeContext)))
	b, _ := Run("twolf", testConfig(SchemePred(predictor.SchemeContext)))
	if a.CPU.Cycles != b.CPU.Cycles || a.Pred.Hits != b.Pred.Hits {
		t.Fatalf("nondeterministic results: %+v vs %+v", a.CPU, b.CPU)
	}
}

func TestCustomPredictorConfig(t *testing.T) {
	pc := predictor.DefaultConfig(predictor.SchemeRegular)
	pc.Depth = 0 // only the root guess
	s := SchemePred(predictor.SchemeRegular)
	s.PredConfig = &pc
	res, err := Run("swim", testConfig(s).WithMode(HitRate))
	if err != nil {
		t.Fatal(err)
	}
	wide, _ := Run("swim", testConfig(SchemePred(predictor.SchemeRegular)).WithMode(HitRate))
	if res.Pred.Guesses >= wide.Pred.Guesses {
		t.Fatalf("depth-0 made %d guesses vs depth-5 %d", res.Pred.Guesses, wide.Pred.Guesses)
	}
}

func TestIntegrityPlumbing(t *testing.T) {
	cfg := testConfig(SchemePred(predictor.SchemeRegular)).WithIntegrity()
	res, err := Run("mcf", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Integrity == nil {
		t.Fatal("integrity stats missing")
	}
	if res.Integrity.Verifies == 0 || res.Integrity.Updates == 0 {
		t.Fatalf("tree idle: %+v", res.Integrity)
	}
	if res.Integrity.TamperDetected != 0 {
		t.Fatalf("false tamper alarms: %d", res.Integrity.TamperDetected)
	}
	// Verification costs cycles: same run without the tree is faster.
	plain, err := Run("mcf", testConfig(SchemePred(predictor.SchemeRegular)))
	if err != nil {
		t.Fatal(err)
	}
	if res.CPU.Cycles <= plain.CPU.Cycles {
		t.Fatalf("tree run (%d cycles) not slower than plain (%d)", res.CPU.Cycles, plain.CPU.Cycles)
	}
	if plain.Integrity != nil {
		t.Fatal("plain run reports integrity stats")
	}
}

// pollCountdownCtx is a context whose Err flips to Canceled after a
// fixed number of Err() calls — a deterministic stand-in for "the caller
// cancelled mid-run" that lets the checkpoint-promptness bound be
// asserted exactly.
type pollCountdownCtx struct {
	context.Context
	remaining int
}

func (c *pollCountdownCtx) Done() <-chan struct{} { return make(chan struct{}) }

func (c *pollCountdownCtx) Err() error {
	if c.remaining <= 0 {
		return context.Canceled
	}
	c.remaining--
	return nil
}

func TestRunContextCancelWithinOneInterval(t *testing.T) {
	const interval = 1_000
	for _, mode := range []Mode{Performance, HitRate} {
		cfg := testConfig(SchemeBaseline()).WithMode(mode)
		cfg.CheckInterval = interval
		cfg.Scale.Instructions = 200_000
		// RunContext calls Err once on entry, then once per checkpoint:
		// budget 1 entry call + 3 clean polls, so the 4th checkpoint stops
		// the run.
		ctx := &pollCountdownCtx{Context: context.Background(), remaining: 4}
		res, err := RunContext(ctx, "mcf", cfg)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("mode %v: err = %v, want context.Canceled", mode, err)
		}
		// HitRate mode widens the instruction window, so normalize: the
		// run must have stopped at the 4th checkpoint, within one
		// commit-width of 4 intervals, far short of the budget.
		got := res.CPU.Instructions
		if got < 3*interval || got > 4*interval+8 {
			t.Fatalf("mode %v: stopped at %d instructions, want ~%d (within one checkpoint interval)",
				mode, got, 4*interval)
		}
	}
}

func TestRunContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := RunContext(ctx, "mcf", testConfig(SchemeBaseline()))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res.CPU.Instructions != 0 {
		t.Fatalf("pre-cancelled run executed %d instructions", res.CPU.Instructions)
	}
}

func TestRunContextDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond) // make sure the deadline has passed
	cfg := testConfig(SchemeBaseline())
	cfg.Scale.Instructions = 500_000
	_, err := RunContext(ctx, "mcf", cfg)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

func TestRunMatchesRunContextBackground(t *testing.T) {
	cfg := testConfig(SchemePred(predictor.SchemeRegular))
	a, err := Run("mcf", cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunContext(context.Background(), "mcf", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.CPU.Cycles != b.CPU.Cycles || a.Ctrl.Fetches != b.Ctrl.Fetches || a.Pred.Hits != b.Pred.Hits {
		t.Fatalf("Run and RunContext(Background) diverge:\n%+v\nvs\n%+v", a.CPU, b.CPU)
	}
}

func TestResultSnapshot(t *testing.T) {
	res, err := Run("swim", testConfig(SchemeCombined(4<<10, predictor.SchemeRegular)).WithIntegrity())
	if err != nil {
		t.Fatal(err)
	}
	snap := res.Snapshot()
	if snap.Name != "run" {
		t.Fatalf("root name %q", snap.Name)
	}
	cpu := snap.Lookup("cpu")
	if cpu == nil {
		t.Fatal("snapshot missing cpu child")
	}
	if v, ok := cpu.CounterValue("instructions"); !ok || v != res.CPU.Instructions {
		t.Fatalf("cpu.instructions = %d, %v; want %d", v, ok, res.CPU.Instructions)
	}
	for _, child := range []string{"controller", "predictor", "engine", "dram", "hierarchy", "l1d", "l2", "seqcache", "integrity"} {
		if snap.Lookup(child) == nil {
			t.Fatalf("snapshot missing %s child", child)
		}
	}
	// Schemes without a seq cache / tree must omit the optional children.
	plain, err := Run("swim", testConfig(SchemeBaseline()))
	if err != nil {
		t.Fatal(err)
	}
	if s := plain.Snapshot(); s.Lookup("seqcache") != nil || s.Lookup("integrity") != nil {
		t.Fatal("baseline snapshot has optional children")
	}
	// The tree serializes without error and is byte-stable.
	j1, err := snap.JSON()
	if err != nil {
		t.Fatal(err)
	}
	j2, err := res.Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(j1) != string(j2) {
		t.Fatal("snapshot JSON not reproducible")
	}
}

func TestContextSwitchPlumbing(t *testing.T) {
	cfg := testConfig(SchemeSeqCache(4 << 10))
	cfg.Mem.ContextSwitchInterval = 10_000
	res, err := Run("mcf", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Hierarchy.ContextSwitches == 0 {
		t.Fatal("no context switches occurred")
	}
	if res.PadViolations != 0 || res.Ctrl.SelfCheckFails != 0 {
		t.Fatal("correctness violated under context switching")
	}
}
