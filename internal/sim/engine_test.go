package sim

import (
	"errors"
	"testing"

	"ctrpred/internal/cryptoengine"
	"ctrpred/internal/predictor"
)

// TestEngineModelsRunClean: every engine model decrypts correctly end to
// end (the self-check is on in testConfig), because pad bits come from
// the shared keystream regardless of the timing model.
func TestEngineModelsRunClean(t *testing.T) {
	for _, spec := range []string{"aes:lat=24", "sealer", "sealer:banks=2,lat=64", "bipbip"} {
		eng, err := cryptoengine.ParseEngine(spec)
		if err != nil {
			t.Fatalf("ParseEngine(%q): %v", spec, err)
		}
		res, err := Run("mcf", testConfig(SchemePred(predictor.SchemeContext)).WithEngine(eng))
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		if res.CPU.Instructions == 0 || res.Ctrl.Fetches == 0 {
			t.Fatalf("%s: ran nothing", spec)
		}
		if res.PadViolations != 0 || res.Ctrl.SelfCheckFails != 0 {
			t.Fatalf("%s: decryption broke (%d pad violations, %d self-check fails)",
				spec, res.PadViolations, res.Ctrl.SelfCheckFails)
		}
		if res.Engine.Model != eng.Model {
			t.Fatalf("%s: result carries engine model %q", spec, res.Engine.Model)
		}
	}
}

// TestEngineLatencyOrdersCycles: on the same workload and scheme, a
// near-free cipher must finish in fewer cycles than the default AES
// pipe, which must beat a doubled-latency pipe — the monotonicity the
// engines experiment's latency ladder rests on.
func TestEngineLatencyOrdersCycles(t *testing.T) {
	cycles := func(spec string) uint64 {
		t.Helper()
		eng, err := cryptoengine.ParseEngine(spec)
		if err != nil {
			t.Fatalf("ParseEngine(%q): %v", spec, err)
		}
		res, err := Run("mcf", testConfig(SchemeBaseline()).WithEngine(eng))
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		return res.CPU.Cycles
	}
	fast, def, slow := cycles("bipbip"), cycles("aes"), cycles("aes:lat=192")
	if !(fast < def && def < slow) {
		t.Fatalf("cycle counts not ordered by engine latency: bipbip %d, aes %d, aes:lat=192 %d", fast, def, slow)
	}
}

// TestNewMachineRejectsUnknownEngine: a config naming no known model
// fails construction with the sentinel, before any simulation state is
// built.
func TestNewMachineRejectsUnknownEngine(t *testing.T) {
	cfg := testConfig(SchemeBaseline())
	cfg.Engine = cryptoengine.Spec{Model: "quantum"}
	if _, err := NewMachine("mcf", cfg); !errors.Is(err, cryptoengine.ErrUnknownEngine) {
		t.Fatalf("NewMachine = %v, want errors.Is(err, cryptoengine.ErrUnknownEngine)", err)
	}
}
