package sim

import "ctrpred/internal/stats"

// Snapshot exports the run's statistics as a structured metrics tree:
// one child per component, every counter registered by name. The tree is
// deterministic — same config and seed produce byte-identical JSON/CSV
// regardless of how the run was scheduled.
func (r Result) Snapshot() *stats.Snapshot {
	n := stats.NewSnapshot("run")
	n.Label("benchmark", r.Benchmark)
	n.Label("scheme", r.Scheme)
	n.Label("mode", r.Mode.String())
	n.Counter("pad_violations", r.PadViolations)
	n.Value("ipc", r.IPC())
	n.Value("pred_rate", r.PredRate())
	n.Value("seq_hit_rate", r.SeqHitRate())

	r.CPU.AddTo(n.Child("cpu"))
	r.Ctrl.AddTo(n.Child("controller"))
	r.Pred.AddTo(n.Child("predictor"))
	r.Engine.AddTo(n.Child("engine"))
	r.DRAM.AddTo(n.Child("dram"))
	r.Hierarchy.AddTo(n.Child("hierarchy"))
	r.L1D.AddTo(n.Child("l1d"))
	r.L2.AddTo(n.Child("l2"))
	if r.SeqCache != nil {
		r.SeqCache.AddTo(n.Child("seqcache"))
	}
	if r.Integrity != nil {
		r.Integrity.AddTo(n.Child("integrity"))
	}
	if r.Security != nil {
		r.Security.AddTo(n.Child("security"))
	}
	if r.Faults != nil {
		r.Faults.AddTo(n.Child("faults"))
	}
	return n
}
