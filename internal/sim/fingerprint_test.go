package sim

import (
	"testing"

	"ctrpred/internal/cryptoengine"
	"ctrpred/internal/faults"
	"ctrpred/internal/predictor"
)

func TestFingerprintStable(t *testing.T) {
	cfg := DefaultConfig(SchemePred(predictor.SchemeContext))
	a := Fingerprint("mcf", cfg)
	b := Fingerprint("mcf", cfg)
	if a != b {
		t.Fatalf("same run hashed differently: %s vs %s", a, b)
	}
	if len(a) != 64 {
		t.Fatalf("fingerprint %q is not a sha256 hex digest", a)
	}
}

func TestFingerprintSeparatesRuns(t *testing.T) {
	base := DefaultConfig(SchemePred(predictor.SchemeRegular))
	fp := Fingerprint("mcf", base)
	distinct := map[string]string{
		"benchmark": Fingerprint("gzip", base),
		"scheme":    Fingerprint("mcf", DefaultConfig(SchemeBaseline())),
		"seed":      Fingerprint("mcf", base.WithSeed(7)),
		"l2":        Fingerprint("mcf", base.WithL2(1<<20)),
		"budget":    Fingerprint("mcf", base.WithInstrBudget(12345)),
		"footprint": Fingerprint("mcf", base.WithFootprint(1<<20)),
		"mode":      Fingerprint("mcf", base.WithMode(HitRate)),
		"integrity": Fingerprint("mcf", base.WithIntegrity()),
		"recovery":  Fingerprint("mcf", base.WithRecovery(1)),
		"engine-lat": Fingerprint("mcf", base.WithEngine(
			cryptoengine.Spec{Model: cryptoengine.ModelAES, LatencyCycles: 48})),
		"engine-sealer": Fingerprint("mcf", base.WithEngine(
			cryptoengine.Spec{Model: cryptoengine.ModelSealer})),
		"engine-bipbip": Fingerprint("mcf", base.WithEngine(
			cryptoengine.Spec{Model: cryptoengine.ModelBipBip})),
		"faults": Fingerprint("mcf", base.WithFaults(&faults.Plan{
			Attacks: []faults.Attack{{Kind: faults.BitFlip, Trigger: faults.Trigger{Fetch: 5}}},
		})),
	}
	seen := map[string]string{fp: "base"}
	for name, h := range distinct {
		if prev, dup := seen[h]; dup {
			t.Errorf("%s collided with %s: %s", name, prev, h)
		}
		seen[h] = name
	}
}

// TestFingerprintNormalizesEngine: the zero engine spec and the spelled-
// out default describe the same machine, so they must share a cache key
// — while any timing difference must separate (the pre-engine-spec bug
// was the stronger failure: all engines collided, so the result cache
// could serve one engine's bytes for another's request).
func TestFingerprintNormalizesEngine(t *testing.T) {
	cfg := DefaultConfig(SchemeBaseline())
	var zero cryptoengine.Spec
	a := Fingerprint("mcf", cfg.WithEngine(zero))
	b := Fingerprint("mcf", cfg.WithEngine(cryptoengine.DefaultSpec()))
	cfg.Engine = cryptoengine.Spec{Model: cryptoengine.ModelAES} // un-normalized, direct assignment
	c := Fingerprint("mcf", cfg)
	if a != b || b != c {
		t.Fatalf("equivalent default-engine specs hashed apart: %s / %s / %s", a, b, c)
	}
}

func TestFingerprintIgnoresCheckInterval(t *testing.T) {
	cfg := DefaultConfig(SchemeOracle())
	a := Fingerprint("mcf", cfg)
	cfg.CheckInterval = 500
	if b := Fingerprint("mcf", cfg); a != b {
		t.Fatal("CheckInterval changed the fingerprint; it cannot affect results")
	}
}
