package sim

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"ctrpred/internal/predictor"
)

// ErrUnknownScheme is wrapped by ParseScheme when the spec names no
// known counter-availability scheme; callers branch with errors.Is
// instead of matching message substrings.
var ErrUnknownScheme = errors.New("unknown scheme")

// ParseScheme parses a textual scheme spec as accepted by the CLIs:
//
//	baseline | oracle | direct
//	pred-regular | pred-twolevel | pred-context
//	seqcache:<size>            a sequence-number cache of that capacity
//	combined:<size>            seq cache + regular prediction
//
// Sizes accept K/M suffixes (see ParseSize). Unknown specs return an
// error wrapping ErrUnknownScheme.
func ParseScheme(s string) (Scheme, error) {
	switch {
	case s == "baseline":
		return SchemeBaseline(), nil
	case s == "oracle":
		return SchemeOracle(), nil
	case s == "direct":
		return SchemeDirect(), nil
	case s == "pred-regular":
		return SchemePred(predictor.SchemeRegular), nil
	case s == "pred-twolevel":
		return SchemePred(predictor.SchemeTwoLevel), nil
	case s == "pred-context":
		return SchemePred(predictor.SchemeContext), nil
	case strings.HasPrefix(s, "seqcache:"):
		n, err := ParseSize(strings.TrimPrefix(s, "seqcache:"))
		if err != nil {
			return Scheme{}, fmt.Errorf("scheme %q: %w", s, err)
		}
		return SchemeSeqCache(n), nil
	case strings.HasPrefix(s, "combined:"):
		n, err := ParseSize(strings.TrimPrefix(s, "combined:"))
		if err != nil {
			return Scheme{}, fmt.Errorf("scheme %q: %w", s, err)
		}
		return SchemeCombined(n, predictor.SchemeRegular), nil
	}
	return Scheme{}, fmt.Errorf("%w %q (want baseline, oracle, direct, pred-regular, pred-twolevel, pred-context, seqcache:<size>, combined:<size>)", ErrUnknownScheme, s)
}

// ParseSize parses a byte capacity with an optional K (KiB) or M (MiB)
// suffix: "4096", "128K", "1M".
func ParseSize(s string) (int, error) {
	mult := 1
	switch {
	case strings.HasSuffix(s, "K"), strings.HasSuffix(s, "k"):
		mult, s = 1<<10, s[:len(s)-1]
	case strings.HasSuffix(s, "M"), strings.HasSuffix(s, "m"):
		mult, s = 1<<20, s[:len(s)-1]
	}
	n, err := strconv.Atoi(s)
	if err != nil || n <= 0 {
		return 0, fmt.Errorf("bad size %q", s)
	}
	return n * mult, nil
}
