package secmem

import (
	"errors"
	"testing"

	"ctrpred/internal/dram"
	"ctrpred/internal/faults"
	"ctrpred/internal/integrity"
	"ctrpred/internal/predictor"
)

func newSecurityRig(t *testing.T, policy RecoveryPolicy) *rig {
	t.Helper()
	r := newRig(predictor.SchemeRegular, 0, false)
	r.ctrl.cfg.Recovery = policy
	r.ctrl.cfg.Scheme = "test"
	tree := integrity.New(integrity.DefaultConfig(), dram.New(dram.DefaultConfig()))
	r.ctrl.AttachIntegrity(tree)
	return r
}

func TestHaltRecordsTypedError(t *testing.T) {
	r := newSecurityRig(t, RecoveryHalt)
	r.image.Store(0x1000, 8, 7)
	r.ctrl.FetchLine(0, 0x1000)
	r.ctrl.TamperData(0x1000, 13)
	res := r.ctrl.FetchLine(1000, 0x1000)
	if res.Authentic || res.Recovered {
		t.Fatalf("halt policy produced res = %+v", res)
	}
	err := r.ctrl.SecurityErr()
	if err == nil {
		t.Fatal("no security error recorded")
	}
	if !errors.Is(err, ErrTamperDetected) {
		t.Fatalf("err = %v, want errors.Is(err, ErrTamperDetected)", err)
	}
	var serr *SecurityError
	if !errors.As(err, &serr) {
		t.Fatalf("err %T is not a *SecurityError", err)
	}
	if serr.Kind != KindTamper || serr.LineAddr != 0x1000 || serr.Scheme != "test" {
		t.Fatalf("serr = %+v", serr)
	}
	if serr.Cycle != 1000 {
		t.Fatalf("serr.Cycle = %d, want 1000", serr.Cycle)
	}
}

func TestSecurityErrNilWhenClean(t *testing.T) {
	r := newSecurityRig(t, RecoveryHalt)
	r.ctrl.FetchLine(0, 0x1000)
	// The typed-nil trap: a nil *SecurityError must come back as a nil
	// error interface.
	if err := r.ctrl.SecurityErr(); err != nil {
		t.Fatalf("clean controller returned %v", err)
	}
}

func TestFirstSecurityErrorKept(t *testing.T) {
	r := newSecurityRig(t, RecoveryHalt)
	r.ctrl.FetchLine(0, 0x1000)
	r.ctrl.FetchLine(0, 0x2000)
	r.ctrl.TamperData(0x1000, 1)
	r.ctrl.TamperData(0x2000, 1)
	r.ctrl.FetchLine(100, 0x1000)
	r.ctrl.FetchLine(200, 0x2000)
	var serr *SecurityError
	if !errors.As(r.ctrl.SecurityErr(), &serr) {
		t.Fatal("no security error")
	}
	if serr.LineAddr != 0x1000 {
		t.Fatalf("kept error for %#x, want the first detection (0x1000)", serr.LineAddr)
	}
	if r.ctrl.SecurityStats().Violations != 2 {
		t.Fatalf("violations = %d, want 2", r.ctrl.SecurityStats().Violations)
	}
}

func TestQuarantineHealsAndContinues(t *testing.T) {
	r := newSecurityRig(t, RecoveryQuarantine)
	r.image.Store(0x3000, 8, 99)
	r.ctrl.FetchLine(0, 0x3000)
	r.ctrl.TamperData(0x3000, 21)
	res := r.ctrl.FetchLine(1000, 0x3000)
	if res.Authentic {
		t.Fatal("tampered fetch reported authentic")
	}
	if !res.Recovered {
		t.Fatal("quarantine did not recover the fetch")
	}
	if res.Plain != r.image.LineAt(0x3000) {
		t.Fatal("recovered plaintext differs from the architectural image")
	}
	if err := r.ctrl.SecurityErr(); err != nil {
		t.Fatalf("quarantine recorded a halt error: %v", err)
	}
	s := r.ctrl.SecurityStats()
	if s.Quarantined != 1 || s.Healed != 1 || s.Retries != uint64(DefaultRetryBudget) {
		t.Fatalf("stats = %+v", s)
	}
	// The healed line verifies on the next fetch.
	res = r.ctrl.FetchLine(5000, 0x3000)
	if !res.Authentic || res.Plain != r.image.LineAt(0x3000) {
		t.Fatalf("healed line failed re-fetch: %+v", res)
	}
}

func TestQuarantineRecoveryCostsCycles(t *testing.T) {
	clean := newSecurityRig(t, RecoveryQuarantine)
	dirty := newSecurityRig(t, RecoveryQuarantine)
	clean.ctrl.FetchLine(0, 0x4000)
	dirty.ctrl.FetchLine(0, 0x4000)
	dirty.ctrl.TamperData(0x4000, 3)
	a := clean.ctrl.FetchLine(1000, 0x4000)
	b := dirty.ctrl.FetchLine(1000, 0x4000)
	if b.Done <= a.Done {
		t.Fatalf("recovery was free: clean done %d, recovered done %d", a.Done, b.Done)
	}
}

func TestCounterRollbackDetected(t *testing.T) {
	r := newSecurityRig(t, RecoveryHalt)
	addr := uint64(0x5000)
	r.image.Store(addr, 8, 1)
	r.ctrl.EvictLine(0, addr) // advance the counter past the root
	if !r.ctrl.TamperCounter(addr, 1) {
		t.Fatal("counter rollback refused in counter mode")
	}
	res := r.ctrl.FetchLine(1000, addr)
	if res.Authentic {
		t.Fatal("rolled-back counter accepted")
	}
	if !errors.Is(r.ctrl.SecurityErr(), ErrTamperDetected) {
		t.Fatalf("err = %v", r.ctrl.SecurityErr())
	}
}

func TestRollbackNeverReusesPad(t *testing.T) {
	// After an adversarial rollback, recovery and later writebacks must
	// advance from the shadow goodSeq — never re-encrypt under a counter
	// value that already carried data.
	r := newSecurityRig(t, RecoveryQuarantine)
	addr := uint64(0x6000)
	r.image.Store(addr, 8, 1)
	r.ctrl.EvictLine(0, addr)
	seqAfterWriteback := r.ctrl.Seq(addr)
	r.ctrl.TamperCounter(addr, 1)
	r.ctrl.FetchLine(1000, addr) // detect + heal
	if got := r.ctrl.Seq(addr); got <= seqAfterWriteback {
		t.Fatalf("heal re-used counter %d (last legitimate %d)", got, seqAfterWriteback)
	}
	if r.ctrl.Stats().SelfCheckFails != 0 {
		t.Fatalf("pad-reuse check tripped: %+v", r.ctrl.Stats())
	}
}

func TestOversizedRollbackSaturatesAndHealsFresh(t *testing.T) {
	// A rollback larger than the counter's value must saturate to zero,
	// not wrap to ~2^64: an underflowed st.seq above goodSeq would
	// otherwise steer recovery's fresh-counter choice and re-encrypt
	// under a previously used pad.
	r := newSecurityRig(t, RecoveryQuarantine)
	addr := uint64(0xe000)
	r.image.Store(addr, 8, 1)
	r.ctrl.EvictLine(0, addr)
	good := r.ctrl.Seq(addr)
	if !r.ctrl.TamperCounter(addr, good+1000) {
		t.Fatal("oversized rollback refused on a nonzero counter")
	}
	if got := r.ctrl.Seq(addr); got != 0 {
		t.Fatalf("counter = %d after oversized rollback, want 0 (saturated)", got)
	}
	// A zero counter has nothing left to roll back: refuse the no-op so
	// the injector keeps the attack armed instead of counting a phantom
	// injection.
	if r.ctrl.TamperCounter(addr, 1) {
		t.Fatal("rollback of a zero counter applied")
	}
	res := r.ctrl.FetchLine(1000, addr)
	if res.Authentic {
		t.Fatal("rolled-back counter accepted")
	}
	if !res.Recovered {
		t.Fatal("quarantine did not recover the fetch")
	}
	if got := r.ctrl.Seq(addr); got <= good {
		t.Fatalf("heal re-used counter %d (last legitimate %d)", got, good)
	}
	if r.ctrl.PadViolations() != 0 || r.ctrl.Stats().SelfCheckFails != 0 {
		t.Fatalf("recovery violated pad/self-check invariants: %+v", r.ctrl.Stats())
	}
}

func TestSpliceDetected(t *testing.T) {
	r := newSecurityRig(t, RecoveryHalt)
	r.image.Store(0x7000, 8, 1)
	r.image.Store(0x8000, 8, 2)
	r.ctrl.FetchLine(0, 0x7000)
	r.ctrl.FetchLine(0, 0x8000)
	if !r.ctrl.SpliceLines(0x7000, 0x8000) {
		t.Fatal("splice refused")
	}
	if res := r.ctrl.FetchLine(1000, 0x7000); res.Authentic {
		t.Fatal("spliced line accepted")
	}
}

func TestSpliceSameLineRefused(t *testing.T) {
	r := newSecurityRig(t, RecoveryHalt)
	if r.ctrl.SpliceLines(0x7000, 0x7000) {
		t.Fatal("self-splice accepted")
	}
}

func TestTreeNodeCorruptionDetected(t *testing.T) {
	r := newSecurityRig(t, RecoveryHalt)
	r.image.Store(0x9000, 8, 3)
	r.ctrl.FetchLine(0, 0x9000)
	if !r.ctrl.TamperTreeNode(0x9000, 5) {
		t.Fatal("tree-node corruption refused with a tree attached")
	}
	if res := r.ctrl.FetchLine(1000, 0x9000); res.Authentic {
		t.Fatal("fetch with corrupted integrity node accepted")
	}
}

func TestTamperTreeNodeWithoutTree(t *testing.T) {
	r := newRig(predictor.SchemeRegular, 0, false)
	if r.ctrl.TamperTreeNode(0x1000, 0) {
		t.Fatal("tree-node corruption applied without a tree")
	}
}

func TestReplayStaleDetected(t *testing.T) {
	r := newSecurityRig(t, RecoveryHalt)
	addr := uint64(0xa000)
	r.image.Store(addr, 8, 1)
	r.ctrl.FetchLine(0, addr)
	oldEnc := r.ctrl.EncryptedLine(addr)
	oldSeq := r.ctrl.Seq(addr)
	r.image.Store(addr, 8, 2)
	r.ctrl.EvictLine(100, addr) // new pair lands off chip
	if !r.ctrl.ReplayStale(addr, oldEnc, oldSeq) {
		t.Fatal("stale replay refused despite a newer off-chip pair")
	}
	if res := r.ctrl.FetchLine(1000, addr); res.Authentic {
		t.Fatal("replayed stale pair accepted")
	}
}

func TestReplayIdenticalPairRefused(t *testing.T) {
	r := newSecurityRig(t, RecoveryHalt)
	addr := uint64(0xb000)
	r.ctrl.FetchLine(0, addr)
	if r.ctrl.ReplayStale(addr, r.ctrl.EncryptedLine(addr), r.ctrl.Seq(addr)) {
		t.Fatal("replay of the current pair accepted (a no-op, not a replay)")
	}
}

func TestDirectModeTamperTyped(t *testing.T) {
	r := newDirectRig()
	r.ctrl.cfg.Scheme = "direct"
	tree := integrity.New(integrity.DefaultConfig(), dram.New(dram.DefaultConfig()))
	r.ctrl.AttachIntegrity(tree)
	r.image.Store(0x1000, 8, 5)
	r.ctrl.FetchLine(0, 0x1000)
	if r.ctrl.TamperCounter(0x1000, 1) {
		t.Fatal("counter rollback applied in direct mode (no counters exist)")
	}
	r.ctrl.TamperData(0x1000, 9)
	if res := r.ctrl.FetchLine(1000, 0x1000); res.Authentic {
		t.Fatal("tampered direct fetch accepted")
	}
	var serr *SecurityError
	if !errors.As(r.ctrl.SecurityErr(), &serr) || serr.Scheme != "direct" {
		t.Fatalf("err = %v", r.ctrl.SecurityErr())
	}
}

func TestDirectQuarantineRequalifiesWithCounterZero(t *testing.T) {
	// Direct mode keys the integrity tree with counter 0 everywhere; the
	// quarantine re-verify must do the same or a transient fault could
	// never requalify once st.seq holds stray nonzero state (e.g. from a
	// replayed pair).
	r := newDirectRig()
	r.ctrl.cfg.Recovery = RecoveryQuarantine
	tree := integrity.New(integrity.DefaultConfig(), dram.New(dram.DefaultConfig()))
	r.ctrl.AttachIntegrity(tree)
	addr := uint64(0x2000)
	r.image.Store(addr, 8, 5)
	r.ctrl.FetchLine(0, addr)
	cs, ps := r.ctrl.materialize(addr)
	cs.seq = 12345 // stray counter state; direct mode has no counters
	// The off-chip line itself is intact — the model of a transient
	// verification fault that cleared by the re-read.
	plain, _ := r.ctrl.quarantine(1000, addr, cs, ps)
	if plain != r.image.LineAt(addr) {
		t.Fatal("requalified plaintext differs from the architectural image")
	}
	s := r.ctrl.SecurityStats()
	if s.Requalified != 1 || s.Healed != 0 {
		t.Fatalf("stats = %+v, want a requalification and no heal", s)
	}
}

func TestDeprecatedTamperLineStillFlips(t *testing.T) {
	r := newSecurityRig(t, RecoveryHalt)
	r.ctrl.FetchLine(0, 0x1000)
	before := r.ctrl.EncryptedLine(0x1000)
	r.ctrl.TamperLine(0x1000, 4)
	if r.ctrl.EncryptedLine(0x1000) == before {
		t.Fatal("TamperLine no longer flips ciphertext")
	}
}

func TestSelfCheckFailureReturnsTypedError(t *testing.T) {
	// Corrupt the architectural image relative to the off-chip state
	// without marking the line tampered: decryption then mismatches the
	// image, which is the simulator invariant the self-check guards. No
	// panic — a typed *SecurityError wrapping ErrSelfCheckFailed.
	r := newRig(predictor.SchemeRegular, 0, false)
	addr := uint64(0xc000)
	r.image.Store(addr, 8, 1)
	r.ctrl.FetchLine(0, addr) // materialize with image value 1
	r.image.Store(addr, 8, 2) // image changes with no writeback
	res := r.ctrl.FetchLine(1000, addr)
	if res.Plain == r.image.LineAt(addr) {
		t.Fatal("test setup: decryption unexpectedly matches the image")
	}
	if r.ctrl.Stats().SelfCheckFails != 1 {
		t.Fatalf("stats = %+v", r.ctrl.Stats())
	}
	err := r.ctrl.SecurityErr()
	if !errors.Is(err, ErrSelfCheckFailed) {
		t.Fatalf("err = %v, want errors.Is(err, ErrSelfCheckFailed)", err)
	}
}

func TestSelfCheckFailureHaltsEvenUnderQuarantine(t *testing.T) {
	r := newRig(predictor.SchemeRegular, 0, false)
	r.ctrl.cfg.Recovery = RecoveryQuarantine
	addr := uint64(0xd000)
	r.image.Store(addr, 8, 1)
	r.ctrl.FetchLine(0, addr)
	r.image.Store(addr, 8, 2)
	r.ctrl.FetchLine(1000, addr)
	// A self-check failure is an invariant violation, not an attack:
	// quarantine must not mask it.
	if !errors.Is(r.ctrl.SecurityErr(), ErrSelfCheckFailed) {
		t.Fatalf("err = %v", r.ctrl.SecurityErr())
	}
}

func TestConstructorNilPredictorPanics(t *testing.T) {
	// Programmer error, not a runtime security event: documented as a
	// panic and kept that way.
	defer func() {
		if recover() == nil {
			t.Fatal("New(nil predictor) did not panic")
		}
	}()
	New(DefaultConfig(), dram.New(dram.DefaultConfig()), nil, nil, nil, nil)
}

func TestInjectorEndToEnd(t *testing.T) {
	r := newSecurityRig(t, RecoveryQuarantine)
	inj := faults.NewInjector(faults.Plan{Attacks: []faults.Attack{
		{Kind: faults.BitFlip, Trigger: faults.Trigger{Fetch: 2}},
	}}, 1)
	r.ctrl.ArmFaults(inj)
	r.image.Store(0x1000, 8, 1)
	r.ctrl.FetchLine(0, 0x1000)
	res := r.ctrl.FetchLine(1000, 0x2000) // fetch 2: bitflip strikes this line
	if res.Authentic {
		t.Fatal("injected bit flip not detected")
	}
	s := inj.Stats()
	if s.Injected[faults.BitFlip] != 1 || s.Detected[faults.BitFlip] != 1 {
		t.Fatalf("injector stats = %+v", s)
	}
	if s.LatencySum[faults.BitFlip] == 0 {
		t.Fatal("detection latency not recorded")
	}
	if r.ctrl.FaultInjector() != inj {
		t.Fatal("FaultInjector accessor mismatch")
	}
}

func TestErrorKindStrings(t *testing.T) {
	if KindTamper.String() != "tamper" || KindSelfCheck.String() != "self-check" {
		t.Fatalf("kind strings: %q %q", KindTamper, KindSelfCheck)
	}
	if RecoveryHalt.String() != "halt" || RecoveryQuarantine.String() != "quarantine" {
		t.Fatalf("policy strings: %q %q", RecoveryHalt, RecoveryQuarantine)
	}
	for _, name := range []string{"halt", "quarantine"} {
		p, err := ParseRecovery(name)
		if err != nil || p.String() != name {
			t.Fatalf("ParseRecovery(%q) = %v, %v", name, p, err)
		}
	}
	if _, err := ParseRecovery("retreat"); err == nil {
		t.Fatal("ParseRecovery accepted an unknown policy")
	}
	serr := &SecurityError{Kind: KindTamper, LineAddr: 0x40, Seq: 3, Cycle: 9, Scheme: "baseline"}
	if serr.Error() == "" || !errors.Is(serr, ErrTamperDetected) {
		t.Fatalf("serr = %v", serr)
	}
}
