package secmem

import (
	"testing"

	"ctrpred/internal/cryptoengine"
	"ctrpred/internal/ctr"
	"ctrpred/internal/dram"
	"ctrpred/internal/mem"
	"ctrpred/internal/predictor"
	"ctrpred/internal/seqcache"
)

type rig struct {
	ctrl  *Controller
	image *mem.Memory
}

func newRig(scheme predictor.Scheme, seqCacheBytes int, oracle bool) *rig {
	var key [32]byte
	key[0] = 0x42
	image := mem.New()
	d := dram.New(dram.DefaultConfig())
	e := cryptoengine.New(cryptoengine.DefaultConfig(), ctr.NewKeystream(key))
	p := predictor.New(predictor.DefaultConfig(scheme))
	var sc *seqcache.Cache
	if seqCacheBytes > 0 {
		sc = seqcache.New(seqCacheBytes)
	}
	cfg := DefaultConfig()
	cfg.Oracle = oracle
	return &rig{ctrl: New(cfg, d, e, p, sc, image), image: image}
}

func TestFetchDecryptsImage(t *testing.T) {
	r := newRig(predictor.SchemeRegular, 0, false)
	var want ctr.Line
	for i := range want {
		want[i] = byte(i * 3)
	}
	r.image.SetLine(0x1000, want)
	res := r.ctrl.FetchLine(0, 0x1000)
	if res.Plain != want {
		t.Fatalf("fetched %v, want %v", res.Plain, want)
	}
}

func TestCiphertextDiffersFromPlaintext(t *testing.T) {
	r := newRig(predictor.SchemeRegular, 0, false)
	var plain ctr.Line
	for i := range plain {
		plain[i] = 0xaa
	}
	r.image.SetLine(0x2000, plain)
	if r.ctrl.EncryptedLine(0x2000) == plain {
		t.Fatal("off-chip line equals plaintext")
	}
}

func TestFreshLinePredicted(t *testing.T) {
	// A never-written line keeps the page root as its counter, which the
	// regular predictor always guesses.
	r := newRig(predictor.SchemeRegular, 0, false)
	res := r.ctrl.FetchLine(0, 0x3000)
	if !res.PredHit {
		t.Fatal("fresh line's counter not predicted")
	}
}

func TestPredictionHidesLatency(t *testing.T) {
	rp := newRig(predictor.SchemeRegular, 0, false)
	rb := newRig(predictor.SchemeNone, 0, false)
	p := rp.ctrl.FetchLine(0, 0x4000)
	b := rb.ctrl.FetchLine(0, 0x4000)
	if !p.PredHit {
		t.Fatal("expected prediction hit")
	}
	if p.Done >= b.Done {
		t.Fatalf("prediction (%d) not faster than baseline (%d)", p.Done, b.Done)
	}
	// Baseline serializes counter fetch then 96-cycle pad generation.
	if b.Done < b.SeqDone+96 {
		t.Fatalf("baseline done %d before seq+96 (%d)", b.Done, b.SeqDone+96)
	}
	// Predicted fetch is bounded by the slower of line fetch and pad.
	if p.Done > maxU64(p.LineDone, p.SeqDone)+2+96 {
		t.Fatalf("prediction did not overlap pad generation: %+v", p)
	}
}

func TestEvictionAdvancesCounterAndReencrypts(t *testing.T) {
	r := newRig(predictor.SchemeRegular, 0, false)
	addr := uint64(0x5000)
	r.image.Store(addr, 8, 1)
	before := r.ctrl.Seq(addr)
	encBefore := r.ctrl.EncryptedLine(addr)

	r.image.Store(addr, 8, 2)
	r.ctrl.EvictLine(100, addr)

	if got := r.ctrl.Seq(addr); got != before+1 {
		t.Fatalf("counter = %d, want %d", got, before+1)
	}
	if r.ctrl.EncryptedLine(addr) == encBefore {
		t.Fatal("ciphertext unchanged after writeback")
	}
	// And the fetch path recovers the new value.
	res := r.ctrl.FetchLine(200, addr)
	if res.TrueSeq != before+1 {
		t.Fatalf("fetched counter %d", res.TrueSeq)
	}
	var wantLine ctr.Line
	wantLine[addr%32] = 2
	if res.Plain != r.image.LineAt(addr) {
		t.Fatal("fetched stale data after eviction")
	}
}

func TestDeepUpdateEscapesPrediction(t *testing.T) {
	r := newRig(predictor.SchemeRegular, 0, false)
	addr := uint64(0x6000)
	for i := 0; i < 10; i++ { // depth is 5 → offset 10 unpredictable
		r.ctrl.EvictLine(uint64(i*1000), addr)
	}
	res := r.ctrl.FetchLine(100000, addr)
	if res.PredHit {
		t.Fatal("offset-10 counter predicted by regular scheme")
	}
	if res.Plain != r.image.LineAt(addr) {
		t.Fatal("misprediction corrupted data")
	}
}

func TestContextPredictionCoversDeepUpdates(t *testing.T) {
	r := newRig(predictor.SchemeContext, 0, false)
	a, b := uint64(0x7000), uint64(0x7200) // same page, different lines
	for i := 0; i < 10; i++ {
		r.ctrl.EvictLine(uint64(i*1000), a)
		r.ctrl.EvictLine(uint64(i*1000+500), b)
	}
	// First fetch misses (LOR unknown); its observation sets LOR=10.
	r.ctrl.FetchLine(100000, a)
	res := r.ctrl.FetchLine(200000, b)
	if !res.PredHit {
		t.Fatal("context prediction missed correlated offset")
	}
}

func TestSeqCachePath(t *testing.T) {
	r := newRig(predictor.SchemeNone, 4<<10, false)
	addr := uint64(0x8000)
	first := r.ctrl.FetchLine(0, addr)
	if first.SeqHit {
		t.Fatal("cold fetch hit the seq cache")
	}
	second := r.ctrl.FetchLine(10000, addr)
	if !second.SeqHit {
		t.Fatal("warm fetch missed the seq cache")
	}
	if second.SeqDone != 10000 {
		t.Fatalf("cached counter available at %d, want request time", second.SeqDone)
	}
	st := r.ctrl.Stats()
	if st.SeqCacheHits != 1 || st.Fetches != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestOraclePath(t *testing.T) {
	r := newRig(predictor.SchemeNone, 0, true)
	res := r.ctrl.FetchLine(50, 0x9000)
	if res.SeqDone != 50 {
		t.Fatalf("oracle counter at %d, want 50", res.SeqDone)
	}
	if r.ctrl.Stats().OracleHits != 1 {
		t.Fatal("oracle hit not counted")
	}
	// Oracle never beats the crypto latency: done ≥ now + 96.
	if res.Done < 50+96 {
		t.Fatalf("oracle fetch done at %d", res.Done)
	}
}

func TestBothHitAccounting(t *testing.T) {
	r := newRig(predictor.SchemeRegular, 32<<10, false)
	addr := uint64(0xa000)
	r.ctrl.FetchLine(0, addr)            // cold: pred hit, cache miss+fill
	res := r.ctrl.FetchLine(10000, addr) // warm: both hit
	if !res.SeqHit || !res.PredHit {
		t.Fatalf("expected both mechanisms to hit: %+v", res)
	}
	st := r.ctrl.Stats()
	if st.BothHits != 1 {
		t.Fatalf("BothHits = %d", st.BothHits)
	}
	if got := st.CounterCoverage(); got != 1.0 {
		t.Fatalf("coverage = %v, want 1.0", got)
	}
}

func TestNoPadReuseAcrossEvictions(t *testing.T) {
	r := newRig(predictor.SchemeRegular, 0, false)
	for i := 0; i < 200; i++ {
		addr := uint64(0xb000) + uint64(i%4)*32
		r.image.Store(addr, 8, uint64(i))
		r.ctrl.EvictLine(uint64(i*100), addr)
	}
	if v := r.ctrl.PadViolations(); v != 0 {
		t.Fatalf("%d one-time-pad reuses detected", v)
	}
}

func TestNoPadReuseAcrossResets(t *testing.T) {
	r := newRig(predictor.SchemeRegular, 0, false)
	addr := uint64(0xc000)
	// Drive enough unpredictable churn to force root resets, evicting all
	// the while; counters must never repeat.
	for round := 0; round < 20; round++ {
		for i := 0; i < 10; i++ {
			r.ctrl.EvictLine(uint64(round*10000+i*100), addr)
		}
		r.ctrl.FetchLine(uint64(round*10000+5000), addr)
	}
	if r.ctrl.Predictor().Stats().Resets == 0 {
		t.Skip("no resets triggered; adjust churn")
	}
	if v := r.ctrl.PadViolations(); v != 0 {
		t.Fatalf("%d pad reuses across root resets", v)
	}
}

func TestFetchAfterResetStillDecrypts(t *testing.T) {
	r := newRig(predictor.SchemeRegular, 0, false)
	addr := uint64(0xd000)
	r.image.Store(addr, 8, 7)
	for i := 0; i < 30; i++ { // escape prediction depth → PHV fills with misses
		r.ctrl.EvictLine(uint64(i*100), addr)
		r.ctrl.FetchLine(uint64(i*100+50), addr)
	}
	res := r.ctrl.FetchLine(100000, addr)
	if res.Plain != r.image.LineAt(addr) {
		t.Fatal("data corrupted after root reset churn")
	}
}

func TestEngineContentionFromPredictions(t *testing.T) {
	// Two simultaneous misses: the second's speculative pads queue behind
	// the first's in the engine pipeline.
	r := newRig(predictor.SchemeRegular, 0, false)
	a := r.ctrl.FetchLine(0, 0xe000)
	b := r.ctrl.FetchLine(0, 0xf000)
	if !a.PredHit || !b.PredHit {
		t.Fatal("expected prediction hits")
	}
	if b.Done <= a.Done {
		t.Fatalf("no serialization visible: a=%d b=%d", a.Done, b.Done)
	}
}

func TestStatsLatencyHistogram(t *testing.T) {
	r := newRig(predictor.SchemeRegular, 0, false)
	r.ctrl.FetchLine(0, 0x10000)
	st := r.ctrl.Stats()
	if st.FetchLatency.Total != 1 {
		t.Fatalf("histogram total = %d", st.FetchLatency.Total)
	}
}

func TestNilPredictorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil predictor accepted")
		}
	}()
	New(DefaultConfig(), nil, nil, nil, nil, nil)
}

func TestSeqTableBaseDefault(t *testing.T) {
	var key [32]byte
	image := mem.New()
	d := dram.New(dram.DefaultConfig())
	e := cryptoengine.New(cryptoengine.DefaultConfig(), ctr.NewKeystream(key))
	p := predictor.New(predictor.DefaultConfig(predictor.SchemeNone))
	c := New(Config{SelfCheck: true}, d, e, p, nil, image)
	c.FetchLine(0, 0) // data at 0 must not collide with the counter table
	if c.Stats().SelfCheckFails != 0 {
		t.Fatal("self-check failed with defaulted SeqTableBase")
	}
}
