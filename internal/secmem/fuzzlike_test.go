package secmem

import (
	"testing"
	"testing/quick"

	"ctrpred/internal/predictor"
	"ctrpred/internal/rng"
)

// TestRandomOperationSequences drives a controller with random
// interleavings of stores, fetches, evictions and agings across several
// predictor schemes, relying on the built-in self-check (decrypt ==
// architectural image) and the pad tracker (no (addr, counter) reuse).
// This is the property the whole architecture rests on: no matter how
// prediction speculates or roots reset, data round-trips exactly and pads
// stay one-time.
func TestRandomOperationSequences(t *testing.T) {
	for _, scheme := range []predictor.Scheme{
		predictor.SchemeNone, predictor.SchemeRegular,
		predictor.SchemeTwoLevel, predictor.SchemeContext,
	} {
		f := func(seed uint64, opsRaw []byte) bool {
			r := newRig(scheme, 4<<10, false)
			rnd := rng.New(seed)
			now := uint64(0)
			const lines = 64
			addr := func() uint64 { return 0x100000 + uint64(rnd.Intn(lines))*32 }
			// Age a few lines first (legal only pre-touch; AgeLine ignores
			// touched lines itself).
			for i := 0; i < 8; i++ {
				r.ctrl.AgeLine(addr(), uint64(rnd.Intn(20)))
			}
			for _, op := range opsRaw {
				now += uint64(rnd.Intn(200))
				a := addr()
				switch op % 3 {
				case 0: // store new data then write it back
					r.image.Store(a, 8, rnd.Uint64())
					r.ctrl.EvictLine(now, a)
				case 1: // fetch (self-check verifies the decryption)
					res := r.ctrl.FetchLine(now, a)
					if res.Plain != r.image.LineAt(a) {
						return false
					}
				case 2: // clean eviction after a fetch
					r.ctrl.FetchLine(now, a)
					r.ctrl.EvictLine(now+10, a)
				}
			}
			return r.ctrl.PadViolations() == 0 && r.ctrl.Stats().SelfCheckFails == 0
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
			t.Fatalf("scheme %v: %v", scheme, err)
		}
	}
}

// TestAgeLineIgnoredAfterTouch verifies aging cannot retroactively change
// a line the run has already touched (which would break pad uniqueness).
func TestAgeLineIgnoredAfterTouch(t *testing.T) {
	r := newRig(predictor.SchemeRegular, 0, false)
	r.ctrl.FetchLine(0, 0x1000)
	before := r.ctrl.Seq(0x1000)
	r.ctrl.AgeLine(0x1000, 99)
	if got := r.ctrl.Seq(0x1000); got != before {
		t.Fatalf("AgeLine changed a touched line's counter: %d -> %d", before, got)
	}
}

// TestAgedLineDecrypts confirms a line aged to an arbitrary offset still
// round-trips through fetch.
func TestAgedLineDecrypts(t *testing.T) {
	r := newRig(predictor.SchemeRegular, 0, false)
	r.image.Store(0x2000, 8, 0x1234)
	r.ctrl.AgeLine(0x2000, 37)
	res := r.ctrl.FetchLine(0, 0x2000)
	if res.Plain != r.image.LineAt(0x2000) {
		t.Fatal("aged line decrypted wrong")
	}
	if res.TrueSeq != r.ctrl.Predictor().Root(0x2000)+37 {
		t.Fatalf("aged counter = %d", res.TrueSeq)
	}
	if res.PredHit {
		t.Fatal("offset-37 counter predicted by regular depth-5 scheme")
	}
}

// TestCounterBufferSpatialHit verifies the 4-entry counter-line buffer
// serves adjacent blocks' counters without a second DRAM trip.
func TestCounterBufferSpatialHit(t *testing.T) {
	r := newRig(predictor.SchemeNone, 0, false)
	r.ctrl.FetchLine(0, 0x3000)
	res := r.ctrl.FetchLine(1000, 0x3020) // neighbor: same counter line
	if res.SeqDone != 1000 {
		t.Fatalf("neighbor counter not buffered: SeqDone=%d", res.SeqDone)
	}
	if r.ctrl.Stats().CounterBufHits != 1 {
		t.Fatalf("CounterBufHits = %d", r.ctrl.Stats().CounterBufHits)
	}
	// A distant block misses the buffer.
	res = r.ctrl.FetchLine(2000, 0x9000)
	if res.SeqDone == 2000 {
		t.Fatal("distant counter served from buffer")
	}
}
