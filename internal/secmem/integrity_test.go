package secmem

import (
	"testing"

	"ctrpred/internal/cryptoengine"
	"ctrpred/internal/ctr"
	"ctrpred/internal/dram"
	"ctrpred/internal/integrity"
	"ctrpred/internal/mem"
	"ctrpred/internal/predictor"
)

func newIntegrityRig(t *testing.T) *rig {
	t.Helper()
	r := newRig(predictor.SchemeRegular, 0, false)
	tree := integrity.New(integrity.DefaultConfig(), dram.New(dram.DefaultConfig()))
	r.ctrl.AttachIntegrity(tree)
	return r
}

func TestAuthenticFetchVerifies(t *testing.T) {
	r := newIntegrityRig(t)
	r.image.Store(0x1000, 8, 42)
	res := r.ctrl.FetchLine(0, 0x1000)
	if !res.Authentic {
		t.Fatal("authentic fetch rejected")
	}
	if r.ctrl.Stats().TamperDetected != 0 {
		t.Fatal("false tamper alarm")
	}
}

func TestTamperedFetchDetected(t *testing.T) {
	r := newIntegrityRig(t)
	r.image.Store(0x2000, 8, 7)
	r.ctrl.FetchLine(0, 0x2000) // materialize + install leaf
	r.ctrl.TamperLine(0x2000, 13)
	res := r.ctrl.FetchLine(1000, 0x2000)
	if res.Authentic {
		t.Fatal("tampered line accepted")
	}
	if r.ctrl.Stats().TamperDetected != 1 {
		t.Fatalf("stats = %+v", r.ctrl.Stats())
	}
	// Counter-mode malleability: the decrypted data differs from the
	// architectural value — exactly why the tree is mandatory.
	if res.Plain == r.image.LineAt(0x2000) {
		t.Fatal("bit flip did not propagate to plaintext?")
	}
}

func TestWritebackHealsTamper(t *testing.T) {
	r := newIntegrityRig(t)
	r.image.Store(0x3000, 8, 9)
	r.ctrl.FetchLine(0, 0x3000)
	r.ctrl.TamperLine(0x3000, 5)
	r.ctrl.EvictLine(100, 0x3000) // legitimate writeback overwrites RAM
	res := r.ctrl.FetchLine(1000, 0x3000)
	if !res.Authentic {
		t.Fatal("fetch after healing writeback rejected")
	}
	if res.Plain != r.image.LineAt(0x3000) {
		t.Fatal("healed line decrypted wrong")
	}
}

func TestVerificationAddsLatency(t *testing.T) {
	plainRig := newRig(predictor.SchemeRegular, 0, false)
	treeRig := newIntegrityRig(t)
	a := plainRig.ctrl.FetchLine(0, 0x4000)
	b := treeRig.ctrl.FetchLine(0, 0x4000)
	if b.Done <= a.Done {
		t.Fatalf("integrity verification free: %d vs %d", b.Done, a.Done)
	}
}

func TestReplayAcrossEvictionsDetected(t *testing.T) {
	// Adversary records the ciphertext+counter of version 1, lets the
	// processor write version 2, then restores version 1 wholesale. The
	// controller model can't express restoring the counter table (our
	// functional map is authoritative), so emulate by tampering: flip
	// ciphertext back after the new writeback.
	r := newIntegrityRig(t)
	addr := uint64(0x5000)
	r.image.Store(addr, 8, 1)
	r.ctrl.FetchLine(0, addr)
	old := r.ctrl.EncryptedLine(addr)
	r.image.Store(addr, 8, 2)
	r.ctrl.EvictLine(100, addr)
	// Restore the stale ciphertext byte-by-byte via tampering bits that
	// differ. Simpler: verify the stale pair directly against the tree.
	tree := r.ctrl.IntegrityTree()
	if ok, _ := tree.Verify(0, addr, r.ctrl.Seq(addr)-1, old); ok {
		t.Fatal("stale (ciphertext, counter) replay accepted by tree")
	}
}

func TestIntegrityWithAging(t *testing.T) {
	r := newIntegrityRig(t)
	r.image.Store(0x6000, 8, 5)
	r.ctrl.AgeLine(0x6000, 17)
	res := r.ctrl.FetchLine(0, 0x6000)
	if !res.Authentic || res.Plain != r.image.LineAt(0x6000) {
		t.Fatal("aged line failed under integrity protection")
	}
}

func TestAttachAfterTouchPanics(t *testing.T) {
	r := newRig(predictor.SchemeRegular, 0, false)
	r.ctrl.FetchLine(0, 0x1000)
	defer func() {
		if recover() == nil {
			t.Fatal("late AttachIntegrity did not panic")
		}
	}()
	r.ctrl.AttachIntegrity(integrity.New(integrity.DefaultConfig(), nil))
}

// --- direct-encryption mode ---

func newDirectRig() *rig {
	var key [32]byte
	key[0] = 0x42
	image := mem.New()
	d := dram.New(dram.DefaultConfig())
	e := cryptoengine.New(cryptoengine.DefaultConfig(), ctr.NewKeystream(key))
	p := predictor.New(predictor.DefaultConfig(predictor.SchemeNone))
	cfg := DefaultConfig()
	cfg.Direct = true
	return &rig{ctrl: New(cfg, d, e, p, nil, image), image: image}
}

func TestDirectModeRoundTrip(t *testing.T) {
	r := newDirectRig()
	r.image.Store(0x1000, 8, 0xabcdef)
	res := r.ctrl.FetchLine(0, 0x1000)
	if res.Plain != r.image.LineAt(0x1000) {
		t.Fatal("direct mode decrypted wrong")
	}
	r.image.Store(0x1000, 8, 0x123456)
	r.ctrl.EvictLine(100, 0x1000)
	res = r.ctrl.FetchLine(1000, 0x1000)
	if res.Plain != r.image.LineAt(0x1000) {
		t.Fatal("direct mode lost data across writeback")
	}
}

func TestDirectModeSerializesDecryption(t *testing.T) {
	// The whole reason counter mode exists: direct decryption cannot start
	// before the ciphertext arrives, so data is ready a full crypto
	// latency after the line.
	r := newDirectRig()
	res := r.ctrl.FetchLine(0, 0x2000)
	if res.Done < res.LineDone+96 {
		t.Fatalf("direct decryption overlapped the fetch: line=%d done=%d", res.LineDone, res.Done)
	}
	// And it matches the counter-mode baseline's worst case shape.
	base := newRig(predictor.SchemeRegular, 0, false)
	b := base.ctrl.FetchLine(0, 0x2000)
	if b.PredHit && b.Done >= res.Done {
		t.Fatalf("predicted counter-mode fetch (%d) not faster than direct (%d)", b.Done, res.Done)
	}
}

func TestDirectModeCiphertextDiffers(t *testing.T) {
	r := newDirectRig()
	var plain ctr.Line
	for i := range plain {
		plain[i] = 0x77
	}
	r.image.SetLine(0x3000, plain)
	if r.ctrl.EncryptedLine(0x3000) == plain {
		t.Fatal("direct mode stored plaintext")
	}
}

func TestDirectModeWithIntegrity(t *testing.T) {
	r := newDirectRig()
	tree := integrity.New(integrity.DefaultConfig(), dram.New(dram.DefaultConfig()))
	r.ctrl.AttachIntegrity(tree)
	r.image.Store(0x4000, 8, 5)
	if res := r.ctrl.FetchLine(0, 0x4000); !res.Authentic {
		t.Fatal("authentic direct fetch rejected")
	}
	r.ctrl.TamperLine(0x4000, 3)
	if res := r.ctrl.FetchLine(1000, 0x4000); res.Authentic {
		t.Fatal("tampered direct fetch accepted")
	}
}

func TestDirectModeNoCounterTraffic(t *testing.T) {
	r := newDirectRig()
	r.ctrl.FetchLine(0, 0x5000)
	r.image.Store(0x5000, 8, 1)
	r.ctrl.EvictLine(100, 0x5000)
	if hits := r.ctrl.Stats().CounterBufHits; hits != 0 {
		t.Fatalf("direct mode touched the counter buffer: %d", hits)
	}
}
