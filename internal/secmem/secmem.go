// Package secmem implements the secure memory controller: the boundary
// between the protected processor domain and the untrusted encrypted RAM
// (Figure 2). Every 32-byte block leaving the L2 is encrypted in counter
// mode; every block entering it is decrypted. The controller owns
//
//   - the encrypted off-chip image and the per-block counter table,
//   - the DRAM timing for line and counter fetches/writebacks,
//   - the crypto-engine pipeline scheduling, and
//   - the counter-availability mechanisms under study: nothing (baseline),
//     a sequence-number cache, OTP prediction, the two combined, or an
//     oracle that always knows the counter (Figure 4's three timelines).
//
// The controller is *functionally real*: it stores real AES-encrypted
// bytes, fetches really decrypt them, and a self-check compares each
// decryption against the architectural image in package mem. Prediction
// can therefore never corrupt data — a mispredicted pad simply fails the
// counter comparison and is discarded, exactly as in the hardware.
package secmem

import (
	"ctrpred/internal/cryptoengine"
	"ctrpred/internal/ctr"
	"ctrpred/internal/dram"
	"ctrpred/internal/faults"
	"ctrpred/internal/integrity"
	"ctrpred/internal/mem"
	"ctrpred/internal/paged"
	"ctrpred/internal/predictor"
	"ctrpred/internal/seqcache"
	"ctrpred/internal/stats"
)

// Config parameterizes the controller.
type Config struct {
	// SeqTableBase is the physical address of the counter table; it is
	// placed far from data so the two compete for DRAM banks realistically
	// but never overlap.
	SeqTableBase uint64
	// Oracle makes every counter available at request time (the paper's
	// normalization baseline for IPC figures).
	Oracle bool
	// Direct replaces counter mode with direct (XEX) memory encryption —
	// the prior-art organization the paper contrasts against: no counters
	// anywhere, but decryption strictly serializes after the line fetch.
	Direct bool
	// SharedCounterChannel routes counter-table traffic over the data
	// channel instead of the dedicated two-bank counter channel. The
	// default (false) models counter storage with its own devices, the
	// usual organization: interleaving 8-byte counter reads between line
	// bursts on one channel thrashes open rows on every miss and
	// penalizes every scheme that must fetch counters.
	SharedCounterChannel bool
	// CounterBanks sizes the dedicated counter channel (default 2).
	CounterBanks int
	// SelfCheck verifies every decryption against the architectural
	// image and every encryption against pad-reuse (cheap; on by default
	// in tests and examples).
	SelfCheck bool
	// CountersOnly drops the functional ciphertext/pad half of the model:
	// the controller tracks counters, predictor state, caches, DRAM and
	// engine timing — everything the hit-rate figures observe — but never
	// stores pads or ciphertext and never XORs data. Every statistic and
	// every returned timing is identical to the full model (the engine's
	// Schedule* paths book exactly what the Compute* paths do); only
	// FetchResult.Plain, which has no consumer in this mode, stays zero.
	// Long functional-mode sweeps use it to cut the dominant allocations.
	// Incompatible with SelfCheck, Direct, integrity trees and fault
	// injection — New and the attach points enforce that.
	CountersOnly bool
	// Scheme labels SecurityErrors with the scheme under test; sim sets
	// it from the run configuration. Purely diagnostic.
	Scheme string
	// Recovery selects the reaction to a fetch that fails integrity
	// verification: RecoveryHalt (default) records a *SecurityError,
	// RecoveryQuarantine re-fetches and heals the line and keeps going.
	Recovery RecoveryPolicy
	// RetryBudget bounds quarantine re-fetch attempts per detection
	// (0 = DefaultRetryBudget).
	RetryBudget int
}

// DefaultConfig returns the standard controller configuration.
func DefaultConfig() Config {
	return Config{SeqTableBase: 1 << 40, SelfCheck: true}
}

// Stats aggregates controller activity.
type Stats struct {
	Fetches        uint64 // lines fetched from encrypted RAM (L2 misses)
	Evictions      uint64 // dirty lines written back
	CounterBufHits uint64 // counter found in the 4-entry fetch buffer
	TamperDetected uint64 // fetches failing integrity verification
	PredHits       uint64 // fetches whose counter was predicted
	SeqCacheHits   uint64 // fetches whose counter was in the seq cache
	BothHits       uint64 // counter both predicted and cached
	OracleHits     uint64 // fetches served by the oracle
	SelfCheckFails uint64 // decryptions that did not match the image
	// FetchLatency is the distribution of fetch completion latency in
	// cycles (request to decrypted data).
	FetchLatency *stats.Histogram
	// DecryptExposed accumulates the cycles by which decryption completed
	// *after* the line arrived from memory — the latency the paper's
	// techniques try to drive to zero.
	DecryptExposed uint64
}

// CounterCoverage returns the fraction of fetches whose counter was
// available without waiting for DRAM (predicted, cached, or oracle).
func (s *Stats) CounterCoverage() float64 {
	return stats.Rate(s.PredHits+s.SeqCacheHits-s.BothHits+s.OracleHits, s.Fetches)
}

// AddTo registers the controller's counters into a metrics snapshot node.
func (s *Stats) AddTo(n *stats.Snapshot) {
	n.Counter("fetches", s.Fetches)
	n.Counter("evictions", s.Evictions)
	n.Counter("counter_buf_hits", s.CounterBufHits)
	n.Counter("tamper_detected", s.TamperDetected)
	n.Counter("pred_hits", s.PredHits)
	n.Counter("seqcache_hits", s.SeqCacheHits)
	n.Counter("both_hits", s.BothHits)
	n.Counter("oracle_hits", s.OracleHits)
	n.Counter("selfcheck_fails", s.SelfCheckFails)
	n.Counter("decrypt_exposed_cycles", s.DecryptExposed)
	n.Histogram("fetch_latency", s.FetchLatency)
	n.Value("counter_coverage", s.CounterCoverage())
}

// FetchResult describes one line fetch, for tests and tracing.
type FetchResult struct {
	Done     uint64 // cycle at which decrypted data is available
	LineDone uint64 // cycle at which ciphertext arrived from DRAM
	SeqDone  uint64 // cycle at which the counter was available
	PredHit  bool
	SeqHit   bool
	// Authentic is false when the integrity tree rejected the fetched
	// (ciphertext, counter) pair — tampering or replay in untrusted RAM.
	// Always true when no tree is attached.
	Authentic bool
	// Recovered is true when verification failed but the quarantine
	// policy restored the line; Plain then holds the healed contents.
	Recovered bool
	TrueSeq   uint64
	Plain     ctr.Line
}

// Controller is the secure memory controller.
type Controller struct {
	cfg     Config
	dram    *dram.DRAM
	seqDRAM *dram.DRAM // counter-table channel (== dram when shared)
	engine  cryptoengine.EngineModel
	pred    *predictor.Predictor
	scache  *seqcache.Cache // nil when the design has no seq cache
	image   *mem.Memory     // architectural plaintext

	// The untrusted-RAM model is split into a hot counter table and a
	// cold ciphertext/pad table so the two can be touched — and, under
	// copy-on-write views of a shared template, *copied* — independently:
	// every fetch and eviction reads counters, but only the functional
	// decrypt/encrypt paths need the 64 bytes of pad material per line.
	// Counters-only mode never touches pads at all. The working set is
	// bounded and known at config time, so both live in paged backing
	// arrays (flat indexing, no hashing on the fetch/evict hot path) with
	// a sparse fallback beyond the dense horizon; a line is materialized
	// exactly when its counter-table entry exists.
	ctrs   *paged.Table[ctrState]
	pads   *paged.Table[padState]
	tree   *integrity.Tree   // optional hash-tree integrity protection
	direct *ctr.DirectCipher // non-nil in direct mode

	tracker ctr.PadTracker
	stats   Stats
	sec     SecurityStats
	secErr  *SecurityError   // first recorded security violation
	faults  *faults.Injector // armed adversary, or nil

	// fetchObs, when set, receives every fetch's exact end-to-end
	// latency in cycles, alongside the bucketed FetchLatency histogram.
	// SLO reporting (internal/tenancy) needs true percentiles, which
	// buckets cannot provide; nil costs one branch per fetch.
	fetchObs func(latency uint64)

	// seqBuf is the counter-line fetch buffer: counters are fetched at
	// DRAM burst granularity (a 32-byte counter line covers four memory
	// blocks), and the last few counter lines remain in the controller.
	// This 128-byte buffer is part of the fetch pipeline in every
	// configuration; without it, every miss would pay a separate 8-byte
	// DRAM transaction for a counter its neighbor just fetched.
	seqBuf     [4]uint64
	seqBufAge  [4]uint64
	seqBufTick uint64

	// reference selects the retained one-request-at-a-time engine loop
	// and disables the stored-pad shortcut (see SetReference).
	reference bool

	// fetchPad is FetchLine's pad scratch. With the engine behind the
	// EngineModel interface, a function-local pad passed to ComputeInto
	// is opaque to escape analysis and would heap-allocate on every
	// miss; the controller is single-threaded per machine, so one
	// reusable buffer restores the zero-allocation fetch path.
	fetchPad ctr.Pad
}

// ctrState is the hot half of one protected line's off-chip state: what
// every fetch and eviction must read, and all a counters-only controller
// ever stores (24 bytes against the pad half's 72).
type ctrState struct {
	seq uint64 // counter-table entry
	// goodSeq shadows the last legitimately written counter. Adversarial
	// counter corruption changes seq only, so recovery and evictions can
	// always advance from a counter known fresh — the role the root of
	// trust plays in hardware — and never reuse a pad.
	goodSeq uint64
	// tampered marks ciphertext the adversary corrupted, so the
	// plaintext self-check knows not to expect a faithful decryption.
	tampered bool
}

// padState is the cold half: the functional ciphertext and pad material,
// touched only by paths that actually move data bits.
type padState struct {
	enc ctr.Line // encrypted RAM contents
	// pad, when padValid, holds the OTP for (line address, seq) — kept
	// from whichever path last encrypted the line (template pre-aging,
	// materialization, writeback, heal). Counter mode reuses the exact
	// pad to decrypt, so a fetch whose counter matches books its
	// pipeline slots normally and skips re-running AES; every path that
	// changes seq either refreshes the pad or clears padValid. This is
	// the functional analogue of the paper's precomputation buffer,
	// ignored in reference mode.
	pad      ctr.Pad
	padValid bool
}

// New wires a controller. pred must be non-nil (use predictor.SchemeNone
// for designs without prediction — the predictor still owns per-page roots
// and counter assignment). sc may be nil.
func New(cfg Config, d *dram.DRAM, e cryptoengine.EngineModel, pred *predictor.Predictor, sc *seqcache.Cache, image *mem.Memory) *Controller {
	if pred == nil {
		panic("secmem: predictor must not be nil")
	}
	if cfg.CountersOnly {
		if cfg.SelfCheck {
			panic("secmem: CountersOnly stores no plaintext to check; disable SelfCheck")
		}
		if cfg.Direct {
			panic("secmem: CountersOnly is meaningless under direct encryption")
		}
	}
	if cfg.SeqTableBase == 0 {
		cfg.SeqTableBase = 1 << 40
	}
	seqD := d
	if !cfg.SharedCounterChannel && d != nil {
		banks := cfg.CounterBanks
		if banks == 0 {
			banks = 2
		}
		scfg := d.Config()
		scfg.Banks = banks
		scfg.PartitionAddr = 0
		seqD = dram.New(scfg)
	}
	var direct *ctr.DirectCipher
	if cfg.Direct && e != nil {
		direct = e.Keystream().DirectCipher()
	}
	return &Controller{
		cfg:     cfg,
		direct:  direct,
		dram:    d,
		seqDRAM: seqD,
		engine:  e,
		pred:    pred,
		scache:  sc,
		image:   image,
		ctrs:    paged.New[ctrState](ctr.LineSize),
		pads:    paged.New[padState](ctr.LineSize),
		stats:   Stats{FetchLatency: stats.NewHistogram(100, 150, 200, 300, 500)},
	}
}

// Stats returns the accumulated statistics (the histogram is shared).
func (c *Controller) Stats() Stats { return c.stats }

// SetFetchObserver registers fn to receive the exact latency of every
// line fetch the controller services, in cycles, as each completes. The
// bucketed FetchLatency histogram cannot answer percentile questions
// tighter than its bounds; SLO reporting samples through this hook
// instead. Pass nil to unregister. The observer must not re-enter the
// controller.
func (c *Controller) SetFetchObserver(fn func(latency uint64)) { c.fetchObs = fn }

// observeFetch books one serviced fetch's end-to-end latency into the
// histogram and, when registered, the exact-sample observer.
func (c *Controller) observeFetch(lat uint64) {
	c.stats.FetchLatency.Observe(lat)
	if c.fetchObs != nil {
		c.fetchObs(lat)
	}
}

// Predictor returns the counter predictor in use.
func (c *Controller) Predictor() *predictor.Predictor { return c.pred }

// SeqCache returns the sequence-number cache, or nil.
func (c *Controller) SeqCache() *seqcache.Cache { return c.scache }

// PadViolations reports one-time-pad reuse detected by the self-check.
func (c *Controller) PadViolations() uint64 { return c.tracker.Violations }

// CountersOnly reports whether the controller runs the counters-only
// model (see Config.CountersOnly).
func (c *Controller) CountersOnly() bool { return c.cfg.CountersOnly }

// SetReference selects the retained scalar fetch path: the engine books
// every speculative guess one request at a time and the controller
// recomputes every pad instead of reusing the materialization pad. The
// batched fast path is defined to be bit- and cycle-identical, so this
// exists as a debugging escape hatch and as the anchor the equivalence
// suite compares the fast path against.
func (c *Controller) SetReference(on bool) {
	c.reference = on
	if c.engine != nil {
		c.engine.SetReference(on)
	}
}

// AttachIntegrity enables hash-tree verification of every fetch and
// update of every writeback. Must be called before any line is touched so
// the tree covers the whole image.
func (c *Controller) AttachIntegrity(t *integrity.Tree) {
	if c.cfg.CountersOnly {
		panic("secmem: AttachIntegrity on a counters-only controller (no ciphertext to verify)")
	}
	if c.ctrs.Count() != 0 {
		panic("secmem: AttachIntegrity after lines were touched")
	}
	c.tree = t
}

// IntegrityTree returns the attached tree, or nil.
func (c *Controller) IntegrityTree() *integrity.Tree { return c.tree }

// TamperLine flips one ciphertext bit of the line containing vaddr.
//
// Deprecated: TamperLine only covers data-ciphertext corruption. Use
// TamperData, TamperCounter, TamperTreeNode, SpliceLines or ReplayStale
// — or drive a faults.Injector via ArmFaults — for the full attack
// surface of the threat model.
func (c *Controller) TamperLine(vaddr uint64, bit int) {
	c.TamperData(mem.LineAddr(vaddr), bit)
}

// TamperData flips one ciphertext bit of line la in the untrusted RAM —
// the basic adversary move. The next fetch must fail integrity
// verification (with a tree attached) and would otherwise silently
// decrypt to garbage; the plaintext self-check is suppressed for
// tampered lines so the corruption is observable, not a model bug.
// It refuses in counters-only mode (no ciphertext exists to corrupt).
// Implements faults.Target.
func (c *Controller) TamperData(la uint64, bit int) bool {
	if c.cfg.CountersOnly {
		return false
	}
	cs, ps := c.owned(mem.LineAddr(la))
	ps.enc[(bit/8)%ctr.LineSize] ^= 1 << (bit % 8)
	cs.tampered = true
	return true
}

// TamperCounter rolls line la's counter-table entry back by delta —
// counter-table corruption aimed at forcing pad reuse. It refuses in
// direct mode (no counters exist) and in counters-only mode (armed
// adversaries require the full functional model). The corrupted counter
// takes effect at the line's next fetch; on-chip counter copies (seq
// cache, fetch buffer) model availability timing, not values, so they do
// not mask the corruption. Implements faults.Target.
func (c *Controller) TamperCounter(la uint64, delta uint64) bool {
	if c.direct != nil || c.cfg.CountersOnly {
		return false
	}
	cs, ps := c.owned(mem.LineAddr(la))
	if delta == 0 || cs.seq == 0 {
		return false // nothing to roll back; the attack stays armed
	}
	if delta > cs.seq {
		// Saturate rather than wrap: an underflowed ~2^64 counter must
		// never leak into any recovery or writeback path.
		delta = cs.seq
	}
	cs.seq -= delta
	ps.padValid = false // the stored pad no longer matches the counter
	cs.tampered = true
	return true
}

// TamperTreeNode flips one bit of an interior integrity node on la's
// path (the leaf's parent — always compared on the next verification).
// It refuses when no tree is attached. Implements faults.Target.
func (c *Controller) TamperTreeNode(la uint64, bit int) bool {
	if c.tree == nil {
		return false
	}
	c.materialize(mem.LineAddr(la)) // ensure the leaf path exists
	return c.tree.CorruptPath(mem.LineAddr(la), 1, bit)
}

// SpliceLines swaps the ciphertext stored at lines la and lb — a
// relocation attack: both lines hold valid ciphertext, just not at these
// addresses. It refuses in counters-only mode. Implements faults.Target.
func (c *Controller) SpliceLines(la, lb uint64) bool {
	if c.cfg.CountersOnly {
		return false
	}
	la, lb = mem.LineAddr(la), mem.LineAddr(lb)
	if la == lb {
		return false
	}
	ca, pa := c.owned(la)
	cb, pb := c.owned(lb)
	pa.enc, pb.enc = pb.enc, pa.enc
	ca.tampered, cb.tampered = true, true
	return true
}

// ReplayStale restores a previously captured (ciphertext, counter) pair
// at line la — the classic replay attack. It refuses a pair identical to
// the current off-chip state (that would be a no-op, not a replay) and
// refuses in counters-only mode. Implements faults.Target.
func (c *Controller) ReplayStale(la uint64, enc ctr.Line, seq uint64) bool {
	if c.cfg.CountersOnly {
		return false
	}
	cs, ps := c.owned(mem.LineAddr(la))
	if cs.seq == seq && ps.enc == enc {
		return false
	}
	ps.enc = enc
	cs.seq = seq
	ps.padValid = false // the stored pad no longer matches the counter
	cs.tampered = true
	return true
}

// ArmFaults installs a fault injector on the fetch/writeback path and
// binds it to this controller. Attacks only apply to fetches issued
// after arming; a nil injector disarms. With no injector armed the data
// path takes a single nil-check per fetch.
func (c *Controller) ArmFaults(inj *faults.Injector) {
	if inj != nil && c.cfg.CountersOnly {
		panic("secmem: ArmFaults on a counters-only controller (attacks need the functional model)")
	}
	c.faults = inj
	if inj != nil {
		inj.Bind(c)
	}
}

// FaultInjector returns the armed injector, or nil.
func (c *Controller) FaultInjector() *faults.Injector { return c.faults }

// SecurityErr returns the first recorded security violation (tamper
// detection under RecoveryHalt, or any self-check failure), or nil. The
// simulator polls it at instruction checkpoints to halt the run.
func (c *Controller) SecurityErr() error {
	if c.secErr == nil {
		return nil
	}
	return c.secErr
}

// SecurityStats returns the recovery/degradation counters.
func (c *Controller) SecurityStats() SecurityStats { return c.sec }

// recordSecurityError notes a violation; the first one is kept as the
// run's SecurityErr (later ones still count).
func (c *Controller) recordSecurityError(kind ErrorKind, la, seq, cycle uint64) {
	c.sec.Violations++
	if c.secErr != nil {
		return
	}
	c.secErr = &SecurityError{Kind: kind, LineAddr: la, Seq: seq, Cycle: cycle, Scheme: c.cfg.Scheme}
}

func (c *Controller) seqAddr(lineAddr uint64) uint64 {
	return c.cfg.SeqTableBase + lineAddr/ctr.LineSize*seqcache.SeqBytes
}

// fetchCounter returns the cycle at which the counter of la is available,
// reading a full counter line from the counter channel unless the fetch
// buffer already holds it.
func (c *Controller) fetchCounter(now uint64, la uint64) uint64 {
	lineAddr := c.seqAddr(la) &^ uint64(ctr.LineSize-1)
	c.seqBufTick++
	victim := 0
	for i, a := range c.seqBuf {
		if a == lineAddr && c.seqBufAge[i] != 0 {
			c.seqBufAge[i] = c.seqBufTick
			c.stats.CounterBufHits++
			return now
		}
		if c.seqBufAge[i] < c.seqBufAge[victim] {
			victim = i
		}
	}
	done := c.seqDRAM.Access(now, lineAddr, ctr.LineSize, false)
	c.seqBuf[victim] = lineAddr
	c.seqBufAge[victim] = c.seqBufTick
	return done
}

// materialize lazily creates the encrypted copy of a line the first time
// the off-chip image is touched, modeling the loader writing the program
// image through the crypto engine with the page's initial (root) counter.
// It returns the line's off-chip state for *reading*: when the state is a
// view of a shared pre-aged template the pointers may reach into the
// template, so mutation paths must go through owned instead.
func (c *Controller) materialize(la uint64) (*ctrState, *padState) {
	if cs := c.ctrs.Lookup(la); cs != nil {
		return cs, c.pads.Lookup(la)
	}
	return c.owned(la)
}

// owned returns la's off-chip state for *writing*: it materializes the
// line if needed and, when the state is a view of a shared template,
// forces the copy-on-write so the caller's mutation stays machine-local.
func (c *Controller) owned(la uint64) (*ctrState, *padState) {
	cs, fresh := c.ctrs.Ensure(la)
	ps, _ := c.pads.Ensure(la)
	if fresh {
		c.initLine(cs, ps, la)
	}
	return cs, ps
}

// ctrOnly returns la's counter state, initializing a fresh line's
// counters from its page root — the counters-only materialization, which
// never touches the pad table. forWrite forces the copy-on-write even
// when the line exists in a shared template.
func (c *Controller) ctrOnly(la uint64, forWrite bool) *ctrState {
	if !forWrite {
		if cs := c.ctrs.Lookup(la); cs != nil {
			return cs
		}
	}
	cs, fresh := c.ctrs.Ensure(la)
	if fresh {
		root := c.pred.Root(la)
		cs.seq = root
		cs.goodSeq = root
	}
	return cs
}

// initLine encrypts a freshly created line's architectural contents into
// its off-chip state under the page's root counter.
func (c *Controller) initLine(cs *ctrState, ps *padState, la uint64) {
	if c.direct != nil {
		ps.enc = c.direct.EncryptLine(c.image.LineAt(la), la)
		if c.tree != nil {
			c.tree.Update(0, la, 0, ps.enc)
		}
		return
	}
	root := c.pred.Root(la)
	cs.seq = root
	cs.goodSeq = root
	plain := c.image.LineAt(la)
	// Keep the pad: the fetch that triggered this materialization (and
	// any later fetch while the counter is unchanged) decrypts under the
	// identical (address, root) pad.
	c.engine.Keystream().PadInto(&ps.pad, la, root)
	ctr.XORLine(&ps.enc, &plain, &ps.pad)
	ps.padValid = true
	if c.cfg.SelfCheck {
		c.tracker.RecordEncrypt(la, root)
	}
	if c.tree != nil {
		c.tree.Update(0, la, root, ps.enc) // image load: untimed
	}
}

// AgeLine initializes the counter of the line containing vaddr to
// root+offset, modeling update history accumulated before the measured
// window (the paper's multi-billion-instruction fast-forward "updates the
// profiled memory status"). It must be called before the line is first
// fetched or evicted; calls after the line has been touched are ignored.
func (c *Controller) AgeLine(vaddr uint64, offset uint64) {
	la := mem.LineAddr(vaddr)
	if c.ctrs.Lookup(la) != nil {
		return
	}
	cs, _ := c.ctrs.Ensure(la)
	seq := c.pred.Root(la) + offset
	cs.seq = seq
	cs.goodSeq = seq
	if c.cfg.CountersOnly {
		// Counter dynamics are all the functional figures observe; skip
		// the (AES-heavy) pad/ciphertext half entirely.
		return
	}
	ps, _ := c.pads.Ensure(la)
	plain := c.image.LineAt(la)
	c.engine.Keystream().PadInto(&ps.pad, la, seq)
	ctr.XORLine(&ps.enc, &plain, &ps.pad)
	ps.padValid = true
	if c.cfg.SelfCheck {
		c.tracker.RecordEncrypt(la, seq)
	}
	if c.tree != nil {
		c.tree.Update(0, la, seq, ps.enc)
	}
}

// AgedTemplate is a frozen pre-aged off-chip state — the result of the
// AgeLine setup loop run once — that any number of machines with the same
// (key, image, counter seed) share copy-on-write instead of re-encrypting
// megabytes of aged lines per run. Build one with BuildAgedTemplate and
// attach it with Controller.UseAgedTemplate. Counter and pad halves are
// separate tables so counters-only machines share — and copy-on-write —
// only the 24-byte counter half, never the 72-byte pad half.
type AgedTemplate struct {
	ctrs    *paged.Table[ctrState]
	pads    *paged.Table[padState]
	tracker ctr.PadTracker
}

// Lines reports how many distinct lines the template pre-aged.
func (t *AgedTemplate) Lines() int { return t.ctrs.Count() }

// BuildAgedTemplate replays the aging setup loop once into a frozen
// template: visit yields the sampled (line address, counter offset) pairs
// in setup order, roots maps a line address to its page root counter
// (it is consulted exactly once per distinct line, in first-touch order,
// so a caller drawing roots from a seeded stream reproduces the per-run
// draw sequence), and ks/image supply the key and plaintext. Duplicate
// line addresses are skipped exactly as Controller.AgeLine skips
// already-touched lines.
func BuildAgedTemplate(ks *ctr.Keystream, image *mem.Memory, roots func(la uint64) uint64, visit func(yield func(la, offset uint64))) *AgedTemplate {
	t := &AgedTemplate{
		ctrs: paged.New[ctrState](ctr.LineSize),
		pads: paged.New[padState](ctr.LineSize),
	}
	visit(func(la, offset uint64) {
		la = mem.LineAddr(la)
		cs, fresh := t.ctrs.Ensure(la)
		if !fresh {
			return
		}
		ps, _ := t.pads.Ensure(la)
		seq := roots(la) + offset
		cs.seq = seq
		cs.goodSeq = seq
		plain := image.LineAt(la)
		ks.PadInto(&ps.pad, la, seq)
		ctr.XORLine(&ps.enc, &plain, &ps.pad)
		ps.padValid = true
		t.tracker.RecordEncrypt(la, seq)
	})
	t.ctrs.Freeze()
	t.pads.Freeze()
	return t
}

// UseAgedTemplate replaces the controller's empty off-chip state with a
// copy-on-write view of the template and shares the template's pad-use
// history read-only (pads the template recorded count as used, so reuse
// is still a violation). The caller must have advanced the controller's
// predictor to the same per-page roots the template was built with — sim
// does this by replaying the root draws in template order. Must be called
// before any line is touched; incompatible with an integrity tree, whose
// per-machine contents are built during eager aging.
func (c *Controller) UseAgedTemplate(t *AgedTemplate) {
	if c.ctrs.Count() != 0 {
		panic("secmem: UseAgedTemplate after lines were touched")
	}
	if c.tree != nil {
		panic("secmem: UseAgedTemplate with integrity tree attached")
	}
	c.ctrs = paged.NewView(t.ctrs)
	c.pads = paged.NewView(t.pads)
	c.tracker.SetBase(&t.tracker)
}

// Release returns the controller's copy-on-write line state to the aged
// template's page pools (a no-op unless UseAgedTemplate attached one).
// The controller must not be used afterward.
func (c *Controller) Release() {
	c.ctrs.Release()
	c.pads.Release()
}

// FetchLine services an L2 miss for the line containing vaddr, starting
// at cycle now. It returns the decrypted line and full timing detail.
func (c *Controller) FetchLine(now uint64, vaddr uint64) FetchResult {
	la := mem.LineAddr(vaddr)
	c.stats.Fetches++
	if c.cfg.CountersOnly {
		return c.fetchCountersOnly(now, la)
	}
	cs, ps := c.materialize(la)
	if c.faults != nil {
		if !cs.tampered && c.faults.WantsPairs() {
			// The adversary snoops reads as well as writes: the pair on
			// the bus is replay material.
			c.faults.ObservePair(la, ps.enc, cs.seq)
		}
		// The adversary strikes between the DRAM read and verification.
		c.faults.BeforeFetch(now, la)
		// An attack mutates through owned, which may have copied the
		// line's page out of a shared template; re-acquire so the fetch
		// reads the corrupted machine-local copy, not the template's.
		cs, ps = c.materialize(la)
	}
	if c.direct != nil {
		return c.fetchDirect(now, la, cs, ps)
	}

	trueSeq := cs.seq
	res := FetchResult{TrueSeq: trueSeq}

	// Counter availability. The counter fetch is issued ahead of the line
	// fetch (it is on the pad critical path); both stream over the same
	// DRAM channel.
	seqInCache := false
	if c.scache != nil {
		seqInCache = c.scache.Access(la)
	}
	switch {
	case c.cfg.Oracle:
		res.SeqDone = now
		c.stats.OracleHits++
	case seqInCache:
		res.SeqDone = now
		res.SeqHit = true
		c.stats.SeqCacheHits++
	default:
		res.SeqDone = c.fetchCounter(now, la)
	}
	res.LineDone = c.dram.Access(now, la, ctr.LineSize, false)

	// Pad generation (Figure 4). Prediction only engages when the counter
	// is not already on chip; membership is still evaluated for the
	// Figure 9 overlap accounting. When the line still carries the pad
	// of its current counter — set at pre-aging, materialization,
	// writeback or heal — the fetch books its pipeline slots normally
	// but reuses the stored bits instead of re-running AES.
	pad := &c.fetchPad
	padp := pad
	var padReady uint64
	predicted := false
	var cached *ctr.Pad
	if ps.padValid && !c.reference {
		cached = &ps.pad
	}
	if !c.cfg.Oracle {
		if guesses := c.pred.Predict(la); len(guesses) > 0 {
			if res.SeqHit {
				// Counter already known: no speculative pads are issued,
				// but record whether prediction would have covered it.
				for _, g := range guesses {
					if g == trueSeq {
						predicted = true
						break
					}
				}
			} else {
				// Every guess occupies a pipeline slot; only the matching
				// pad's bits are materialized (a discarded pad's value is
				// unobservable, its timing is not). The whole burst is
				// booked in one batched engine pass.
				var matchIdx int
				if cached != nil {
					matchIdx, padReady = c.engine.ScheduleGuesses(now, guesses, trueSeq)
					if matchIdx >= 0 {
						padp = cached
					}
				} else {
					matchIdx, padReady = c.engine.ComputeGuessesInto(pad, now, la, guesses, trueSeq)
				}
				predicted = matchIdx >= 0
			}
			// The guess list is handed back so the hit depth is attributed
			// to this fetch's own guesses, never a stale internal buffer.
			c.pred.Observe(la, trueSeq, guesses)
		}
	}
	if predicted {
		c.stats.PredHits++
		if res.SeqHit {
			c.stats.BothHits++
		}
		res.PredHit = true
		// A speculative pad is confirmed only when the true counter is
		// available for comparison.
		if padReady < res.SeqDone {
			padReady = res.SeqDone
		}
		if res.SeqHit {
			// Counter was on chip; the demand path below would also have
			// been taken in hardware. Use the demand pad timing instead.
			predicted = false
		}
	}
	if !predicted || res.SeqHit {
		if cached != nil {
			padReady = c.engine.ScheduleOnly(res.SeqDone, cryptoengine.ClassDemand)
			padp = cached
		} else {
			padReady = c.engine.ComputeInto(pad, res.SeqDone, la, trueSeq, cryptoengine.ClassDemand)
			padp = pad
		}
	}
	// Decrypt once both ciphertext and pad are in hand (+1 cycle XOR).
	res.Done = maxU64(res.LineDone, padReady) + 1
	ctr.XORLine(&res.Plain, &ps.enc, padp)

	// Integrity verification proceeds from ciphertext arrival, in
	// parallel with pad generation; data is architecturally usable only
	// once both decryption and verification complete.
	res.Authentic = true
	if c.tree != nil {
		ok, vDone := c.tree.Verify(res.LineDone, la, trueSeq, ps.enc)
		res.Authentic = ok
		if vDone+1 > res.Done {
			res.Done = vDone + 1
		}
		if !ok {
			c.handleTamper(&res, now, la, trueSeq, cs, ps)
		}
	}

	if c.cfg.SelfCheck && (res.Authentic || res.Recovered) && !cs.tampered {
		want := c.image.LineRef(la) // nil for never-written memory, which reads as zero
		if (want != nil && res.Plain != *want) || (want == nil && res.Plain != (ctr.Line{})) {
			c.stats.SelfCheckFails++
			c.recordSecurityError(KindSelfCheck, la, trueSeq, now)
		}
	}

	c.observeFetch(res.Done - now)
	if res.Done > res.LineDone {
		c.stats.DecryptExposed += res.Done - res.LineDone
	}
	return res
}

// fetchCountersOnly is FetchLine for the counters-only model: identical
// counter, cache, DRAM, predictor and engine bookings — the engine's
// Schedule* paths reserve exactly the slots the Compute* paths do — with
// no pad bits materialized and no ciphertext XORed. Every FetchResult
// field except Plain matches the full model's.
func (c *Controller) fetchCountersOnly(now, la uint64) FetchResult {
	trueSeq := c.ctrOnly(la, false).seq
	res := FetchResult{TrueSeq: trueSeq, Authentic: true}

	seqInCache := false
	if c.scache != nil {
		seqInCache = c.scache.Access(la)
	}
	switch {
	case c.cfg.Oracle:
		res.SeqDone = now
		c.stats.OracleHits++
	case seqInCache:
		res.SeqDone = now
		res.SeqHit = true
		c.stats.SeqCacheHits++
	default:
		res.SeqDone = c.fetchCounter(now, la)
	}
	res.LineDone = c.dram.Access(now, la, ctr.LineSize, false)

	var padReady uint64
	predicted := false
	if !c.cfg.Oracle {
		if guesses := c.pred.Predict(la); len(guesses) > 0 {
			if res.SeqHit {
				for _, g := range guesses {
					if g == trueSeq {
						predicted = true
						break
					}
				}
			} else {
				var matchIdx int
				matchIdx, padReady = c.engine.ScheduleGuesses(now, guesses, trueSeq)
				predicted = matchIdx >= 0
			}
			c.pred.Observe(la, trueSeq, guesses)
		}
	}
	if predicted {
		c.stats.PredHits++
		if res.SeqHit {
			c.stats.BothHits++
		}
		res.PredHit = true
		if padReady < res.SeqDone {
			padReady = res.SeqDone
		}
		if res.SeqHit {
			predicted = false
		}
	}
	if !predicted || res.SeqHit {
		padReady = c.engine.ScheduleOnly(res.SeqDone, cryptoengine.ClassDemand)
	}
	res.Done = maxU64(res.LineDone, padReady) + 1

	c.observeFetch(res.Done - now)
	if res.Done > res.LineDone {
		c.stats.DecryptExposed += res.Done - res.LineDone
	}
	return res
}

// fetchDirect services a miss under direct encryption: decryption can
// only start once the whole ciphertext has arrived — the serialization
// counter mode exists to break.
func (c *Controller) fetchDirect(now uint64, la uint64, cs *ctrState, ps *padState) FetchResult {
	res := FetchResult{Authentic: true}
	res.LineDone = c.dram.Access(now, la, ctr.LineSize, false)
	res.SeqDone = res.LineDone // no counters in this mode
	ready := c.engine.ScheduleOnly(res.LineDone, cryptoengine.ClassDemand)
	res.Done = ready + 1
	res.Plain = c.direct.DecryptLine(ps.enc, la)
	if c.tree != nil {
		ok, vDone := c.tree.Verify(res.LineDone, la, 0, ps.enc)
		res.Authentic = ok
		if vDone+1 > res.Done {
			res.Done = vDone + 1
		}
		if !ok {
			c.handleTamper(&res, now, la, 0, cs, ps)
		}
	}
	if c.cfg.SelfCheck && (res.Authentic || res.Recovered) && !cs.tampered {
		if want := c.image.LineAt(la); res.Plain != want {
			c.stats.SelfCheckFails++
			c.recordSecurityError(KindSelfCheck, la, 0, now)
		}
	}
	c.observeFetch(res.Done - now)
	if res.Done > res.LineDone {
		c.stats.DecryptExposed += res.Done - res.LineDone
	}
	return res
}

// handleTamper reacts to a failed integrity verification at la: under
// RecoveryHalt it records the typed error (the simulator halts at its
// next checkpoint); under RecoveryQuarantine it quarantines the line,
// re-fetches within the retry budget, and heals persistent corruption
// from the protected domain, updating res with the recovered data and
// completion time.
func (c *Controller) handleTamper(res *FetchResult, now, la, seq uint64, cs *ctrState, ps *padState) {
	c.stats.TamperDetected++
	if c.faults != nil {
		c.faults.ObserveDetection(la, res.Done)
	}
	if c.cfg.Recovery != RecoveryQuarantine {
		c.recordSecurityError(KindTamper, la, seq, now)
		return
	}
	plain, done := c.quarantine(res.Done, la, cs, ps)
	res.Plain = plain
	res.Recovered = true
	if done > res.Done {
		res.Done = done
	}
}

// quarantine re-fetches a rejected line up to the retry budget (a
// transient fault would clear here) and, when the corruption persists,
// restores the line from the protected domain. It returns the usable
// plaintext and the cycle recovery completed.
func (c *Controller) quarantine(now uint64, la uint64, cs *ctrState, ps *padState) (ctr.Line, uint64) {
	c.sec.Quarantined++
	budget := c.cfg.RetryBudget
	if budget <= 0 {
		budget = DefaultRetryBudget
	}
	// Direct mode keys the tree with counter 0 everywhere (fetchDirect,
	// evictDirect, heal); the re-verify must match or a transient fault
	// could never requalify.
	seq := cs.seq
	if c.direct != nil {
		seq = 0
	}
	t := now
	for i := 0; i < budget; i++ {
		c.sec.Retries++
		t = c.dram.Access(t, la, ctr.LineSize, false)
		ok, vDone := c.tree.Verify(t, la, seq, ps.enc)
		if vDone > t {
			t = vDone
		}
		if ok {
			// The re-read verified: the fault was transient. Decrypt the
			// (now trusted) off-chip copy functionally; the pad cost was
			// already paid on the demand path.
			c.sec.Requalified++
			if c.direct != nil {
				return c.direct.DecryptLine(ps.enc, la), t + 1
			}
			return c.engine.Keystream().DecryptLine(ps.enc, la, cs.seq), t + 1
		}
	}
	// Persistent corruption: restore from the architectural image under
	// a fresh counter, exactly like a writeback, and rewrite the tree
	// path. The degradation is counted; the line leaves quarantine clean.
	t = c.heal(t, la)
	return c.image.LineAt(la), t + 1
}

// heal re-encrypts la's architectural contents under a fresh counter and
// reinstalls its tree path — the recovery writeback. The fresh counter
// advances from the shadow goodSeq, so adversarial rollback can never
// trick recovery into pad reuse.
func (c *Controller) heal(now uint64, la uint64) uint64 {
	cs, ps := c.owned(la)
	c.sec.Healed++
	if c.direct != nil {
		ready := c.engine.ScheduleOnly(now, cryptoengine.ClassWriteback)
		ps.enc = c.direct.EncryptLine(c.image.LineAt(la), la)
		cs.tampered = false
		upDone := c.tree.Update(now, la, 0, ps.enc)
		t := c.dram.Access(now, la, ctr.LineSize, true)
		return maxU64(maxU64(t, ready), upDone)
	}
	// Advance from the shadow goodSeq alone: a legitimate cs.seq never
	// exceeds it (tampering only lowers or replays counters), so a larger
	// cs.seq is attacker-controlled — e.g. an underflowed rollback — and
	// must not steer the fresh-counter choice.
	next := c.pred.NextSeqForEvict(la, cs.goodSeq)
	cs.seq = next
	cs.goodSeq = next
	padReady := c.engine.ComputeInto(&ps.pad, now, la, next, cryptoengine.ClassWriteback)
	plain := c.image.LineAt(la)
	ctr.XORLine(&ps.enc, &plain, &ps.pad)
	ps.padValid = true
	cs.tampered = false
	if c.cfg.SelfCheck {
		c.tracker.RecordEncrypt(la, next)
	}
	upDone := c.tree.Update(now, la, next, ps.enc)
	if c.scache != nil {
		c.scache.Update(la)
	}
	tLine := c.dram.Access(now, la, ctr.LineSize, true)
	tSeq := c.seqDRAM.Access(now, c.seqAddr(la), seqcache.SeqBytes, true)
	return maxU64(maxU64(maxU64(tLine, tSeq), padReady), upDone)
}

// EvictLine writes back the (dirty) line containing vaddr, re-encrypting
// the current architectural contents under the line's next counter value.
// It returns the cycle at which the writeback completes; writebacks are
// buffered in hardware, so callers normally ignore it beyond statistics.
func (c *Controller) EvictLine(now uint64, vaddr uint64) uint64 {
	la := mem.LineAddr(vaddr)
	c.stats.Evictions++
	if c.cfg.CountersOnly {
		return c.evictCountersOnly(now, la)
	}
	cs, ps := c.owned(la) // a store-allocated line may never have been fetched
	if c.direct != nil {
		return c.evictDirect(now, la, cs, ps)
	}

	if c.faults != nil && c.faults.WantsPairs() {
		// The adversary records the off-chip pair this writeback replaces:
		// the most stale replay material an attacker snooping the bus from
		// run begin could hold.
		c.faults.ObservePair(la, ps.enc, cs.seq)
	}
	// Advance from the shadow goodSeq, never the off-chip counter: a
	// legitimate cs.seq equals goodSeq, and any divergence is adversarial
	// (rollback, replay, or underflow wrap) — a writeback must never let
	// it pick the pad.
	next := c.pred.NextSeqForEvict(la, cs.goodSeq)
	cs.seq = next
	cs.goodSeq = next

	padReady := c.engine.ComputeInto(&ps.pad, now, la, next, cryptoengine.ClassWriteback)
	if plain := c.image.LineRef(la); plain != nil {
		ctr.XORLine(&ps.enc, plain, &ps.pad)
	} else {
		var zero ctr.Line
		ctr.XORLine(&ps.enc, &zero, &ps.pad)
	}
	ps.padValid = true
	cs.tampered = false // a legitimate writeback replaces corrupted data
	if c.cfg.SelfCheck {
		c.tracker.RecordEncrypt(la, next)
	}
	if c.tree != nil {
		c.tree.Update(now, la, next, ps.enc)
	}

	// Counter writes are write-through; the cached copy (if any) is
	// updated in place.
	if c.scache != nil {
		c.scache.Update(la)
	}
	// The evicted line sits in the write buffer while its pad is
	// computed; its DRAM traffic is scheduled from the eviction time so
	// buffered writebacks do not block younger demand fetches (the model
	// serializes channel reservations in call order).
	tLine := c.dram.Access(now, la, ctr.LineSize, true)
	tSeq := c.seqDRAM.Access(now, c.seqAddr(la), seqcache.SeqBytes, true)
	return maxU64(maxU64(tLine, tSeq), padReady)
}

// evictCountersOnly is EvictLine for the counters-only model: the counter
// advances exactly as in the full model (predictor and seq-cache dynamics
// depend on it) and the engine/DRAM book the same writeback traffic, but
// no pad is computed and no ciphertext is stored.
func (c *Controller) evictCountersOnly(now, la uint64) uint64 {
	cs := c.ctrOnly(la, true) // a store-allocated line may never have been fetched
	next := c.pred.NextSeqForEvict(la, cs.goodSeq)
	cs.seq = next
	cs.goodSeq = next
	padReady := c.engine.ScheduleOnly(now, cryptoengine.ClassWriteback)
	if c.scache != nil {
		c.scache.Update(la)
	}
	tLine := c.dram.Access(now, la, ctr.LineSize, true)
	tSeq := c.seqDRAM.Access(now, c.seqAddr(la), seqcache.SeqBytes, true)
	return maxU64(maxU64(tLine, tSeq), padReady)
}

// evictDirect writes back a line under direct encryption.
func (c *Controller) evictDirect(now uint64, la uint64, cs *ctrState, ps *padState) uint64 {
	ready := c.engine.ScheduleOnly(now, cryptoengine.ClassWriteback)
	if c.faults != nil && c.faults.WantsPairs() {
		c.faults.ObservePair(la, ps.enc, 0)
	}
	ps.enc = c.direct.EncryptLine(c.image.LineAt(la), la)
	cs.tampered = false
	if c.tree != nil {
		c.tree.Update(now, la, 0, ps.enc)
	}
	t := c.dram.Access(now, la, ctr.LineSize, true)
	return maxU64(t, ready)
}

// Seq returns the current counter of the line containing vaddr (tests).
func (c *Controller) Seq(vaddr uint64) uint64 {
	la := mem.LineAddr(vaddr)
	if c.cfg.CountersOnly {
		return c.ctrOnly(la, false).seq
	}
	cs, _ := c.materialize(la)
	return cs.seq
}

// EncryptedLine returns the off-chip ciphertext of the line containing
// vaddr, as an adversary probing the RAM would see it (tests, examples).
// Panics in counters-only mode, which stores no ciphertext.
func (c *Controller) EncryptedLine(vaddr uint64) ctr.Line {
	if c.cfg.CountersOnly {
		panic("secmem: EncryptedLine on a counters-only controller")
	}
	la := mem.LineAddr(vaddr)
	_, ps := c.materialize(la)
	return ps.enc
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
