package secmem

import (
	"errors"
	"fmt"

	"ctrpred/internal/stats"
)

// Sentinel errors for errors.Is dispatch on security failures. Every
// *SecurityError unwraps to exactly one of them.
var (
	// ErrTamperDetected reports that the integrity tree rejected a
	// fetched (ciphertext, counter) pair — tampering, splicing or replay
	// in untrusted RAM.
	ErrTamperDetected = errors.New("secmem: tamper detected")
	// ErrSelfCheckFailed reports that a decryption did not match the
	// architectural image — a simulator invariant violation, not an
	// attack (the self-check is the model's own paranoia aid).
	ErrSelfCheckFailed = errors.New("secmem: self-check failed")
)

// ErrorKind classifies a SecurityError.
type ErrorKind uint8

const (
	// KindTamper is a failed integrity verification (adversarial data).
	KindTamper ErrorKind = iota
	// KindSelfCheck is a decryption/image mismatch (model invariant).
	KindSelfCheck
)

func (k ErrorKind) String() string {
	if k == KindSelfCheck {
		return "self-check"
	}
	return "tamper"
}

// SecurityError is the typed error the controller records when a fetch
// fails verification (under RecoveryHalt) or the self-check trips. It
// replaces the panics the data path used to raise: tampered memory is an
// input, not a bug, so it must surface as an error the caller can
// errors.Is/errors.As on.
type SecurityError struct {
	Kind     ErrorKind
	LineAddr uint64 // line-aligned virtual address of the offending fetch
	Seq      uint64 // counter value used for the failing decryption
	Cycle    uint64 // cycle at which the fetch was issued
	Scheme   string // scheme label of the run (empty outside sim)
}

func (e *SecurityError) Error() string {
	s := e.Scheme
	if s == "" {
		s = "-"
	}
	return fmt.Sprintf("secmem: %s at line %#x (seq %d, cycle %d, scheme %s)",
		e.Kind, e.LineAddr, e.Seq, e.Cycle, s)
}

// Unwrap maps the error onto its sentinel for errors.Is.
func (e *SecurityError) Unwrap() error {
	if e.Kind == KindSelfCheck {
		return ErrSelfCheckFailed
	}
	return ErrTamperDetected
}

// RecoveryPolicy selects the controller's reaction to a fetch that fails
// integrity verification.
type RecoveryPolicy uint8

const (
	// RecoveryHalt (the default) records a *SecurityError at the first
	// detection; the simulation stops at its next instruction checkpoint.
	// This models a processor that raises a security exception.
	RecoveryHalt RecoveryPolicy = iota
	// RecoveryQuarantine keeps running: the line is quarantined,
	// re-fetched up to Config.RetryBudget times, and — when the
	// corruption persists — restored from the protected domain under a
	// fresh counter (a degradation, counted in SecurityStats).
	RecoveryQuarantine
)

func (p RecoveryPolicy) String() string {
	if p == RecoveryQuarantine {
		return "quarantine"
	}
	return "halt"
}

// ParseRecovery parses a recovery-policy name ("halt" or "quarantine").
func ParseRecovery(s string) (RecoveryPolicy, error) {
	switch s {
	case "halt":
		return RecoveryHalt, nil
	case "quarantine":
		return RecoveryQuarantine, nil
	}
	return RecoveryHalt, fmt.Errorf("secmem: unknown recovery policy %q (want halt or quarantine)", s)
}

// DefaultRetryBudget is the quarantine re-fetch bound used when
// Config.RetryBudget is zero.
const DefaultRetryBudget = 2

// SecurityStats counts the graceful-degradation activity of the recovery
// path. All fields stay zero on clean runs.
type SecurityStats struct {
	// Quarantined counts fetches that entered quarantine after failing
	// verification (RecoveryQuarantine only).
	Quarantined uint64
	// Retries counts quarantine re-fetch attempts (≤ RetryBudget each).
	Retries uint64
	// Requalified counts quarantined lines whose re-fetch verified —
	// transient faults (always 0 under the persistent-corruption model).
	Requalified uint64
	// Healed counts quarantined lines restored from the protected domain
	// under a fresh counter — the degradations the policy trades for
	// availability.
	Healed uint64
	// Violations counts detections converted to a recorded
	// *SecurityError (halt policy tampering plus all self-check fails).
	Violations uint64
}

// AddTo registers the recovery counters into a metrics snapshot node.
func (s SecurityStats) AddTo(n *stats.Snapshot) {
	n.Counter("quarantined", s.Quarantined)
	n.Counter("retries", s.Retries)
	n.Counter("requalified", s.Requalified)
	n.Counter("healed", s.Healed)
	n.Counter("violations", s.Violations)
}
