package chaos

import (
	"net/http"
	"sync"
	"time"
)

// Middleware wraps an http.Handler with fault injection driven by inj:
// the worker-side mount. Terminal faults sever the connection via
// panic(http.ErrAbortHandler), which net/http turns into an abrupt
// close — exactly what a crashed or partitioned worker looks like from
// the coordinator.
func Middleware(inj *Injector, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		d := inj.Decide(r.URL.Path)
		if d.Delay > 0 {
			if err := sleepCtx(r.Context(), d.Delay); err != nil {
				return
			}
		}
		if d.Drop {
			panic(http.ErrAbortHandler)
		}
		if d.Status != 0 {
			http.Error(w, "chaos: injected error", d.Status)
			return
		}
		if d.Reset || d.Corrupt || d.TruncateAfter > 0 || d.StallAfter > 0 {
			w = &chaosWriter{ResponseWriter: w, d: d, ctx: r}
		}
		next.ServeHTTP(w, r)
	})
}

// chaosWriter perturbs the response body as the handler writes it.
type chaosWriter struct {
	http.ResponseWriter
	d       Decision
	ctx     *http.Request
	mu      sync.Mutex
	written int // body bytes passed through
	writes  int // Write calls (~NDJSON lines for the streaming path)
}

// Unwrap keeps http.ResponseController (Flush, SetWriteDeadline)
// working through the wrapper.
func (cw *chaosWriter) Unwrap() http.ResponseWriter { return cw.ResponseWriter }

func (cw *chaosWriter) Write(p []byte) (int, error) {
	cw.mu.Lock()
	defer cw.mu.Unlock()
	if cw.d.Reset {
		// Sever at the first body write: headers may have left, the
		// payload will not.
		panic(http.ErrAbortHandler)
	}
	if cw.d.StallAfter > 0 && cw.writes >= cw.d.StallAfter {
		// Hold the stream silent, then sever. Bounded by the client
		// hanging up (request context) or the stall hold elapsing.
		t := time.NewTimer(cw.d.StallHold)
		select {
		case <-cw.ctx.Context().Done():
			t.Stop()
		case <-t.C:
		}
		panic(http.ErrAbortHandler)
	}
	if cw.d.TruncateAfter > 0 && cw.written+len(p) > cw.d.TruncateAfter {
		keep := cw.d.TruncateAfter - cw.written
		if keep > 0 {
			// Push the surviving prefix, then sever mid-body.
			cw.ResponseWriter.Write(p[:keep])
		}
		panic(http.ErrAbortHandler)
	}
	if cw.d.Corrupt && len(p) > 0 {
		// Flip one byte of the first chunk. Handlers pass slices of
		// cached snapshots here, so corrupt a copy — mutating p would
		// poison the worker's result cache for every later request.
		c := make([]byte, len(p))
		copy(c, p)
		c[cw.d.CorruptPos%len(c)] ^= 0x01
		cw.d.Corrupt = false
		p = c
	}
	n, err := cw.ResponseWriter.Write(p)
	cw.written += n
	cw.writes++
	return n, err
}
