package chaos

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func mustParse(t *testing.T, s string) Schedule {
	t.Helper()
	sched, err := Parse(s)
	if err != nil {
		t.Fatalf("Parse(%q): %v", s, err)
	}
	return sched
}

func TestParseGrammar(t *testing.T) {
	sched := mustParse(t, "latency:p=0.2,ms=500;stall:after=3")
	if len(sched.Rules) != 2 {
		t.Fatalf("rules = %d, want 2", len(sched.Rules))
	}
	r := sched.Rules[0]
	if r.Kind != KindLatency || r.P != 0.2 || r.MS != 500 {
		t.Fatalf("latency rule = %+v", r)
	}
	s := sched.Rules[1]
	if s.Kind != KindStall || s.After != 3 || s.MS != 30_000 {
		t.Fatalf("stall rule = %+v (want after=3 and default ms=30000)", s)
	}
}

func TestParseDefaults(t *testing.T) {
	sched := mustParse(t, "err;truncate;stall")
	if got := sched.Rules[0].Status; got != 503 {
		t.Errorf("err default status = %d, want 503", got)
	}
	if got := sched.Rules[1].Bytes; got != 128 {
		t.Errorf("truncate default bytes = %d, want 128", got)
	}
	if got := sched.Rules[2].After; got != 1 {
		t.Errorf("stall default after = %d, want 1", got)
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"",
		"teleport",
		"latency:ms",
		"latency:ms=abc",
		"latency:ms=-5",
		"latency:p=1.5,ms=9",
		"latency",
		"err:status=200",
		"partition:from=5,to=5",
		"flap:up=2",
		"latency:warp=9,ms=1",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q): want error, got nil", bad)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	in := "latency:p=0.25,ms=500,jitter=50;err:status=502,count=3;flap:up=2,down=4"
	sched := mustParse(t, in)
	again := mustParse(t, sched.String())
	if len(again.Rules) != len(sched.Rules) {
		t.Fatalf("round-trip rule count %d != %d", len(again.Rules), len(sched.Rules))
	}
	for i := range sched.Rules {
		if again.Rules[i] != sched.Rules[i] {
			t.Errorf("rule %d: %+v != %+v after round-trip", i, again.Rules[i], sched.Rules[i])
		}
	}
}

func TestDeterministicDecisions(t *testing.T) {
	sched := mustParse(t, "latency:p=0.3,ms=10,jitter=5;err:p=0.2")
	a := New(sched, 42)
	b := New(sched, 42)
	for i := 0; i < 200; i++ {
		da, db := a.Decide("/v1/sim"), b.Decide("/v1/sim")
		if da != db {
			t.Fatalf("request %d: decisions diverge: %+v vs %+v", i, da, db)
		}
	}
	// A different seed must produce a different decision stream.
	c := New(sched, 43)
	same := 0
	for i := 0; i < 200; i++ {
		if c.Decide("/v1/sim") == a.Decide("/v1/sim") {
			same++
		}
	}
	if same == 200 {
		t.Fatal("seed 43 reproduced seed 42's whole decision stream")
	}
}

func TestProbabilityRoughlyHonored(t *testing.T) {
	in := New(mustParse(t, "err:p=0.25"), 7)
	fired := 0
	for i := 0; i < 2000; i++ {
		if in.Decide("/x").Status != 0 {
			fired++
		}
	}
	if fired < 350 || fired > 650 {
		t.Fatalf("p=0.25 fired %d/2000 times, want ~500", fired)
	}
}

func TestCountFromEveryMatch(t *testing.T) {
	in := New(mustParse(t, "err:from=2,count=3"), 1)
	var fires []int
	for i := 0; i < 10; i++ {
		if in.Decide("/x").Status != 0 {
			fires = append(fires, i)
		}
	}
	if len(fires) != 3 || fires[0] != 2 || fires[2] != 4 {
		t.Fatalf("from=2,count=3 fired at %v, want [2 3 4]", fires)
	}

	in = New(mustParse(t, "err:every=3"), 1)
	for i := 0; i < 9; i++ {
		fired := in.Decide("/x").Status != 0
		if want := i%3 == 0; fired != want {
			t.Fatalf("every=3 request %d fired=%v", i, fired)
		}
	}

	in = New(mustParse(t, "err:match=/v1/sim"), 1)
	if in.Decide("/healthz").Status != 0 {
		t.Fatal("match=/v1/sim fired on /healthz")
	}
	if in.Decide("/v1/sim").Status == 0 {
		t.Fatal("match=/v1/sim did not fire on /v1/sim")
	}
}

func TestPartitionWindow(t *testing.T) {
	in := New(mustParse(t, "partition:from=2,to=5"), 1)
	for i := 0; i < 8; i++ {
		d := in.Decide("/x")
		if want := i >= 2 && i < 5; d.Drop != want {
			t.Fatalf("request %d: Drop=%v, want %v", i, d.Drop, want)
		}
	}
}

func TestFlapCycle(t *testing.T) {
	in := New(mustParse(t, "flap:up=2,down=3"), 1)
	want := []bool{false, false, true, true, true, false, false, true}
	for i, w := range want {
		if d := in.Decide("/x"); d.Drop != w {
			t.Fatalf("request %d: Drop=%v, want %v", i, d.Drop, w)
		}
	}
}

func TestStats(t *testing.T) {
	in := New(mustParse(t, "err:count=2;latency:ms=1,count=1"), 1)
	for i := 0; i < 5; i++ {
		in.Decide("/x")
	}
	reqs, faulted, perRule := in.Stats()
	if reqs != 5 {
		t.Errorf("requests = %d, want 5", reqs)
	}
	if faulted != 2 {
		t.Errorf("faulted = %d, want 2 (err and latency overlap on request 0-1)", faulted)
	}
	if perRule["err:status=503,count=2"] != 2 || perRule["latency:ms=1,count=1"] != 1 {
		t.Errorf("perRule = %v", perRule)
	}
}

func newBackend(t *testing.T, body string) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, body)
	}))
	t.Cleanup(srv.Close)
	return srv
}

func get(t *testing.T, c *http.Client, url string) (*http.Response, []byte, error) {
	t.Helper()
	resp, err := c.Get(url)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	return resp, b, err
}

func TestTransportErrAndDrop(t *testing.T) {
	srv := newBackend(t, "payload")
	c := &http.Client{Transport: NewTransport(nil, New(mustParse(t, "err:status=502,count=1;partition:from=1,to=2"), 1))}
	resp, _, err := get(t, c, srv.URL)
	if err != nil || resp.StatusCode != 502 {
		t.Fatalf("request 0: resp=%v err=%v, want synthesized 502", resp, err)
	}
	if _, _, err = get(t, c, srv.URL); err == nil {
		t.Fatal("request 1: want drop error, got nil")
	}
	resp, body, err := get(t, c, srv.URL)
	if err != nil || resp.StatusCode != 200 || string(body) != "payload" {
		t.Fatalf("request 2: resp=%v body=%q err=%v, want clean pass-through", resp, body, err)
	}
}

func TestTransportCorruptAndTruncate(t *testing.T) {
	srv := newBackend(t, strings.Repeat("a", 64))
	c := &http.Client{Transport: NewTransport(nil, New(mustParse(t, "corrupt:count=1"), 9))}
	_, body, err := get(t, c, srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if string(body) == strings.Repeat("a", 64) {
		t.Fatal("corrupt: body came back unmodified")
	}
	diff := 0
	for _, ch := range body {
		if ch != 'a' {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("corrupt flipped %d bytes, want exactly 1", diff)
	}

	c = &http.Client{Transport: NewTransport(nil, New(mustParse(t, "truncate:bytes=10"), 9))}
	_, body, err = get(t, c, srv.URL)
	if err == nil {
		t.Fatal("truncate: want mid-body read error, got clean EOF")
	}
	if len(body) > 10 {
		t.Fatalf("truncate passed %d bytes, want <= 10", len(body))
	}
}

func TestTransportReset(t *testing.T) {
	hit := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hit++
		io.WriteString(w, "ok")
	}))
	defer srv.Close()
	c := &http.Client{Transport: NewTransport(nil, New(mustParse(t, "reset:count=1"), 1))}
	if _, _, err := get(t, c, srv.URL); err == nil {
		t.Fatal("reset: want error, got nil")
	}
	if hit != 1 {
		t.Fatalf("reset: backend hits = %d, want 1 (work done, response lost)", hit)
	}
}

func TestMiddlewareFaults(t *testing.T) {
	payload := strings.Repeat("b", 64)
	inj := New(mustParse(t, "err:status=500,count=1;reset:from=1,count=1;truncate:bytes=8,from=2,count=1;corrupt:from=3,count=1"), 3)
	srv := httptest.NewServer(Middleware(inj, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, payload)
	})))
	defer srv.Close()
	// Fresh connection per request: http.Transport silently retries a
	// GET whose reused keep-alive connection dies before the first
	// response byte, which would shift the injector's request indices.
	tr := &http.Transport{DisableKeepAlives: true}
	defer tr.CloseIdleConnections()
	c := &http.Client{Transport: tr}

	resp, _, err := get(t, c, srv.URL)
	if err != nil || resp.StatusCode != 500 {
		t.Fatalf("request 0: resp=%v err=%v, want injected 500", resp, err)
	}
	if _, body, err := get(t, c, srv.URL); err == nil && len(body) == len(payload) {
		t.Fatal("request 1 (reset): response survived intact")
	}
	_, body, err := get(t, c, srv.URL)
	if err == nil {
		t.Fatal("request 2 (truncate): want error, got clean response")
	}
	if len(body) > 8 {
		t.Fatalf("request 2 (truncate): got %d bytes, want <= 8", len(body))
	}
	_, body, err = get(t, c, srv.URL)
	if err != nil {
		t.Fatalf("request 3 (corrupt): %v", err)
	}
	if string(body) == payload {
		t.Fatal("request 3 (corrupt): body unmodified")
	}
	resp, body, err = get(t, c, srv.URL)
	if err != nil || resp.StatusCode != 200 || string(body) != payload {
		t.Fatalf("request 4: resp=%v body=%q err=%v, want clean pass-through", resp, body, err)
	}
}

func TestMiddlewareCorruptDoesNotMutateHandlerBuffer(t *testing.T) {
	shared := []byte(strings.Repeat("c", 32))
	inj := New(mustParse(t, "corrupt:count=1"), 5)
	srv := httptest.NewServer(Middleware(inj, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write(shared)
	})))
	defer srv.Close()
	if _, _, err := get(t, srv.Client(), srv.URL); err != nil {
		t.Fatal(err)
	}
	if string(shared) != strings.Repeat("c", 32) {
		t.Fatalf("middleware mutated the handler's shared buffer: %q", shared)
	}
}

func TestMiddlewareStallSeversAfterHold(t *testing.T) {
	inj := New(mustParse(t, "stall:after=2,ms=50"), 1)
	srv := httptest.NewServer(Middleware(inj, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fl := http.NewResponseController(w)
		for i := 0; i < 5; i++ {
			io.WriteString(w, "line\n")
			fl.Flush()
		}
	})))
	defer srv.Close()
	start := time.Now()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err == nil {
		t.Fatal("stall: stream completed cleanly, want severed connection")
	}
	if got := strings.Count(string(body), "\n"); got != 2 {
		t.Fatalf("stall:after=2 delivered %d lines, want 2", got)
	}
	if el := time.Since(start); el < 50*time.Millisecond {
		t.Fatalf("stall severed after %v, want >= 50ms hold", el)
	}
}

func TestMiddlewareLatencyRespectsClientCancel(t *testing.T) {
	inj := New(mustParse(t, "latency:ms=5000"), 1)
	handled := make(chan struct{}, 1)
	srv := httptest.NewServer(Middleware(inj, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		handled <- struct{}{}
	})))
	defer srv.Close()
	c := &http.Client{Timeout: 100 * time.Millisecond}
	start := time.Now()
	_, err := c.Get(srv.URL)
	if err == nil {
		t.Fatal("want client timeout error")
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("latency injection ignored client cancellation")
	}
	select {
	case <-handled:
		t.Fatal("handler ran despite cancelled delayed request")
	case <-time.After(50 * time.Millisecond):
	}
}

func TestInjectedErrorIsTransportLike(t *testing.T) {
	var e error = &errInjected{kind: KindReset, url: "http://x"}
	if !strings.Contains(e.Error(), "reset") {
		t.Fatalf("error text %q lacks the fault kind", e)
	}
	var se *errInjected
	if !errors.As(e, &se) {
		t.Fatal("errors.As failed on errInjected")
	}
}
