package chaos

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"
)

// errInjected is the transport-level failure surfaced for drops and
// resets. It unwraps to nothing HTTP-specific on purpose: callers must
// treat it exactly like a real severed connection.
type errInjected struct {
	kind Kind
	url  string
}

func (e *errInjected) Error() string {
	return fmt.Sprintf("chaos: injected %s: %s", e.kind, e.url)
}

// Transport is an http.RoundTripper that perturbs outbound requests
// per an Injector's decisions. It mounts on the coordinator's HTTP
// client so every worker dispatch crosses the fault schedule.
type Transport struct {
	base http.RoundTripper
	inj  *Injector
}

// NewTransport wraps base (nil: http.DefaultTransport) with fault
// injection driven by inj.
func NewTransport(base http.RoundTripper, inj *Injector) *Transport {
	if base == nil {
		base = http.DefaultTransport
	}
	return &Transport{base: base, inj: inj}
}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	d := t.inj.Decide(req.URL.Path)
	if d.Delay > 0 {
		if err := sleepCtx(req.Context(), d.Delay); err != nil {
			return nil, err
		}
	}
	if d.Drop {
		// The request never reaches the worker: a partitioned link.
		return nil, &errInjected{kind: KindPartition, url: req.URL.String()}
	}
	if d.Status != 0 {
		// Short-circuit with a synthesized error response; the worker
		// never sees the request (an intermediary 5xx).
		return synthesized(req, d.Status), nil
	}
	resp, err := t.base.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if d.Reset {
		// The worker processed the request; the response is lost on the
		// way back.
		resp.Body.Close()
		return nil, &errInjected{kind: KindReset, url: req.URL.String()}
	}
	if d.Corrupt || d.TruncateAfter > 0 || d.StallAfter > 0 {
		resp.Body = &faultyBody{rc: resp.Body, d: d, ctx: req.Context(), url: req.URL.String()}
	}
	return resp, nil
}

// CloseIdleConnections forwards to the base transport when supported,
// so http.Client.CloseIdleConnections keeps working through the wrap.
func (t *Transport) CloseIdleConnections() {
	if ci, ok := t.base.(interface{ CloseIdleConnections() }); ok {
		ci.CloseIdleConnections()
	}
}

func synthesized(req *http.Request, status int) *http.Response {
	body := fmt.Sprintf("chaos: injected %d\n", status)
	return &http.Response{
		Status:        strconv.Itoa(status) + " " + http.StatusText(status),
		StatusCode:    status,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        http.Header{"Content-Type": {"text/plain; charset=utf-8"}},
		Body:          io.NopCloser(bytes.NewBufferString(body)),
		ContentLength: int64(len(body)),
		Request:       req,
	}
}

// faultyBody mutates a response body in flight: corrupting one byte,
// truncating, or stalling mid-stream then failing, per the decision.
type faultyBody struct {
	rc   io.ReadCloser
	d    Decision
	ctx  context.Context
	url  string
	read int // plaintext offset so far
	done bool
}

func (b *faultyBody) Read(p []byte) (int, error) {
	if b.done {
		return 0, &errInjected{kind: KindTruncate, url: b.url}
	}
	if b.d.StallAfter > 0 && b.read >= b.d.StallAfter*64 {
		// Transport-side stall approximation: hold after ~StallAfter
		// lines' worth of bytes, then sever. (The middleware variant
		// counts real writes; prefer it for precise stream stalls.)
		if err := sleepCtx(b.ctx, b.d.StallHold); err != nil {
			return 0, err
		}
		return 0, &errInjected{kind: KindStall, url: b.url}
	}
	limit := len(p)
	if b.d.TruncateAfter > 0 && b.read+limit > b.d.TruncateAfter {
		limit = b.d.TruncateAfter - b.read
		if limit <= 0 {
			b.done = true
			return 0, &errInjected{kind: KindTruncate, url: b.url}
		}
	}
	n, err := b.rc.Read(p[:limit])
	if n > 0 && b.d.Corrupt {
		// Flip one byte of the first chunk read. p is the caller's
		// buffer, so mutating in place here is safe.
		pos := b.d.CorruptPos % n
		p[pos] ^= 0x01
		b.d.Corrupt = false
	}
	b.read += n
	return n, err
}

func (b *faultyBody) Close() error { return b.rc.Close() }

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
