// Package chaos injects deterministic, seeded service-level faults
// into coordinator↔worker HTTP traffic: added latency, connection
// resets, 5xx bursts, corrupted or truncated response bodies,
// mid-stream stalls, partitions, and flapping workers.
//
// Where internal/faults attacks the *simulated* memory system, this
// package attacks the *real* distributed system built in
// internal/cluster — the adversary the ROADMAP's "production means
// slow, flaky, lying networks" line asks for. Faults mount at either
// end of a connection:
//
//   - Transport (client side): an http.RoundTripper wrapper perturbing
//     requests the coordinator sends to workers
//   - Middleware (server side): an http.Handler wrapper perturbing the
//     responses a worker serves
//
// A Schedule is parsed from a compact grammar modeled on
// faults.ParsePlan:
//
//	schedule := rule (";" rule)*
//	rule     := kind [":" param ("," param)*]
//	param    := key "=" value
//
//	chaos.Parse("latency:p=0.2,ms=500;stall:after=3")
//
// Kinds and their parameters (beyond the common ones):
//
//	latency    add ms (+ up to jitter ms) of delay before dispatch
//	reset      process the request, then kill the connection so the
//	           response is lost (the work happened; the answer didn't)
//	err        short-circuit with an HTTP error (status, default 503)
//	corrupt    flip one byte of the response body
//	truncate   cut the response body after bytes bytes (default 128)
//	stall      serve the response normally for after lines/writes,
//	           then hold the connection silent for ms (default 30000)
//	           before killing it — the mid-NDJSON stream stall
//	partition  drop every matching request while from <= index < to
//	flap       alternate up serving / down dropped request windows
//
// Common parameters: p (firing probability per request, default 1),
// from (fire only from the from-th matching request on), count (fire at
// most count times), every (fire on every every-th request only), match
// (substring the request path must contain).
//
// Every decision is a pure function of (seed, rule index, request
// index), so a schedule replays identically for a given arrival order —
// chaos runs are as reproducible as the simulations they disturb.
package chaos

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Kind names a fault class.
type Kind int

const (
	KindLatency Kind = iota
	KindReset
	KindErr
	KindCorrupt
	KindTruncate
	KindStall
	KindPartition
	KindFlap
)

var kindNames = map[Kind]string{
	KindLatency:   "latency",
	KindReset:     "reset",
	KindErr:       "err",
	KindCorrupt:   "corrupt",
	KindTruncate:  "truncate",
	KindStall:     "stall",
	KindPartition: "partition",
	KindFlap:      "flap",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// ParseKind resolves a kind name from the schedule grammar.
func ParseKind(s string) (Kind, error) {
	for k, name := range kindNames {
		if name == s {
			return k, nil
		}
	}
	known := make([]string, 0, len(kindNames))
	for _, name := range kindNames {
		known = append(known, name)
	}
	sort.Strings(known)
	return 0, fmt.Errorf("chaos: unknown fault kind %q (want one of %s)", s, strings.Join(known, ", "))
}

// Rule is one parsed fault rule. Zero-valued fields take the kind's
// defaults at decision time.
type Rule struct {
	Kind Kind
	// P is the per-request firing probability (0 parses as "unset" and
	// means 1 — fire whenever eligible).
	P float64
	// MS is milliseconds: the added delay for latency, the silent hold
	// before the kill for stall.
	MS int
	// Jitter is extra uniformly-drawn delay for latency, in ms.
	Jitter int
	// Status is the short-circuit HTTP status for err (default 503).
	Status int
	// Bytes is the truncation point for truncate (default 128).
	Bytes int
	// After is stall's position trigger: response writes (NDJSON lines)
	// served before the stall (default 1).
	After int
	// From/To gate by request index: From is the first eligible index
	// for any rule; To bounds partition's window (exclusive).
	From, To int
	// Count caps total firings (0: unlimited).
	Count int
	// Every fires only on every Every-th matching request (0/1: all).
	Every int
	// Up/Down are flap's serve/drop window lengths in requests.
	Up, Down int
	// Match restricts the rule to request paths containing it.
	Match string
}

// Schedule is a parsed fault schedule: every rule is evaluated for
// every request, so independent faults stack (a request can be both
// delayed and corrupted).
type Schedule struct {
	Rules []Rule
}

// String renders the schedule back in (normalized) grammar form.
func (s Schedule) String() string {
	parts := make([]string, 0, len(s.Rules))
	for _, r := range s.Rules {
		parts = append(parts, r.String())
	}
	return strings.Join(parts, ";")
}

// String renders one rule in grammar form, only non-default fields.
func (r Rule) String() string {
	var kv []string
	add := func(k string, v int) {
		if v != 0 {
			kv = append(kv, fmt.Sprintf("%s=%d", k, v))
		}
	}
	if r.P > 0 && r.P < 1 {
		kv = append(kv, strings.TrimRight(strings.TrimRight(fmt.Sprintf("p=%.3f", r.P), "0"), "."))
	}
	add("ms", r.MS)
	add("jitter", r.Jitter)
	add("status", r.Status)
	add("bytes", r.Bytes)
	add("after", r.After)
	add("from", r.From)
	add("to", r.To)
	add("count", r.Count)
	add("every", r.Every)
	add("up", r.Up)
	add("down", r.Down)
	if r.Match != "" {
		kv = append(kv, "match="+r.Match)
	}
	if len(kv) == 0 {
		return r.Kind.String()
	}
	return r.Kind.String() + ":" + strings.Join(kv, ",")
}

// Parse parses the schedule grammar (see the package comment).
func Parse(s string) (Schedule, error) {
	var sched Schedule
	for _, raw := range strings.Split(s, ";") {
		spec := strings.TrimSpace(raw)
		if spec == "" {
			continue
		}
		name, params, hasParams := strings.Cut(spec, ":")
		kind, err := ParseKind(strings.TrimSpace(name))
		if err != nil {
			return Schedule{}, err
		}
		r := Rule{Kind: kind}
		if hasParams {
			for _, param := range strings.Split(params, ",") {
				key, val, found := strings.Cut(param, "=")
				if !found {
					return Schedule{}, fmt.Errorf("chaos: parameter %q in %q has no value (want key=value)", param, spec)
				}
				key, val = strings.TrimSpace(key), strings.TrimSpace(val)
				if err := r.set(key, val); err != nil {
					return Schedule{}, fmt.Errorf("chaos: parameter %q in %q: %w", param, spec, err)
				}
			}
		}
		if err := r.validate(); err != nil {
			return Schedule{}, fmt.Errorf("chaos: rule %q: %w", spec, err)
		}
		sched.Rules = append(sched.Rules, r)
	}
	if len(sched.Rules) == 0 {
		return Schedule{}, fmt.Errorf("chaos: empty schedule %q", s)
	}
	return sched, nil
}

func (r *Rule) set(key, val string) error {
	switch key {
	case "p":
		p, err := strconv.ParseFloat(val, 64)
		if err != nil || p < 0 || p > 1 {
			return fmt.Errorf("want a probability in [0,1], got %q", val)
		}
		r.P = p
		return nil
	case "match":
		r.Match = val
		return nil
	}
	n, err := strconv.Atoi(val)
	if err != nil || n < 0 {
		return fmt.Errorf("want a non-negative integer, got %q", val)
	}
	switch key {
	case "ms":
		r.MS = n
	case "jitter":
		r.Jitter = n
	case "status":
		r.Status = n
	case "bytes":
		r.Bytes = n
	case "after":
		r.After = n
	case "from":
		r.From = n
	case "to":
		r.To = n
	case "count":
		r.Count = n
	case "every":
		r.Every = n
	case "up":
		r.Up = n
	case "down":
		r.Down = n
	default:
		return fmt.Errorf("unknown key %q", key)
	}
	return nil
}

func (r *Rule) validate() error {
	switch r.Kind {
	case KindErr:
		if r.Status == 0 {
			r.Status = 503
		}
		if r.Status < 400 || r.Status > 599 {
			return fmt.Errorf("status %d is not an HTTP error status", r.Status)
		}
	case KindTruncate:
		if r.Bytes == 0 {
			r.Bytes = 128
		}
	case KindStall:
		if r.After == 0 {
			r.After = 1
		}
		if r.MS == 0 {
			r.MS = 30_000
		}
	case KindPartition:
		if r.To <= r.From {
			return fmt.Errorf("partition needs from < to (got from=%d to=%d)", r.From, r.To)
		}
	case KindFlap:
		if r.Up <= 0 || r.Down <= 0 {
			return fmt.Errorf("flap needs up > 0 and down > 0 (got up=%d down=%d)", r.Up, r.Down)
		}
	case KindLatency:
		if r.MS == 0 && r.Jitter == 0 {
			return fmt.Errorf("latency needs ms or jitter")
		}
	}
	return nil
}

// Decision is every fault the schedule injects into one request.
// Terminal faults take precedence in the order Drop, Status, Reset;
// body mutations (corrupt/truncate/stall) stack with Delay.
type Decision struct {
	// Index is the request's arrival index at this injector (0-based).
	Index uint64
	// Delay is added latency before the request is dispatched/served.
	Delay time.Duration
	// Drop refuses the request outright: the connection dies before any
	// processing (a partitioned or down-flapping worker).
	Drop bool
	// Status short-circuits with an HTTP error response of this status.
	Status int
	// Reset processes the request but kills the connection as the
	// response starts, so the work happened and the answer is lost.
	Reset bool
	// Corrupt flips the response-body byte at CorruptPos (reduced
	// modulo the body/chunk length at the injection site).
	Corrupt    bool
	CorruptPos int
	// TruncateAfter cuts the response body after this many bytes and
	// kills the connection (0: no truncation).
	TruncateAfter int
	// StallAfter serves this many response writes (NDJSON lines), then
	// holds the connection silent for StallHold before killing it
	// (0: no stall).
	StallAfter int
	StallHold  time.Duration
}

// Faulty reports whether the decision perturbs the request at all.
func (d Decision) Faulty() bool {
	return d.Delay > 0 || d.Drop || d.Status != 0 || d.Reset || d.Corrupt ||
		d.TruncateAfter > 0 || d.StallAfter > 0
}

// Injector evaluates a Schedule deterministically. One injector owns
// one request counter; mount the same injector in a Transport or a
// Middleware, not both, or they will share the index stream.
type Injector struct {
	sched Schedule
	seed  uint64
	mu    sync.Mutex
	n     uint64   // requests seen
	fired []uint64 // firings per rule (Count budgeting)
	total uint64   // requests with at least one fault
}

// New builds an injector over sched with the given seed. Equal seeds
// and schedules make equal decisions for equal request indices.
func New(sched Schedule, seed uint64) *Injector {
	return &Injector{sched: sched, seed: seed, fired: make([]uint64, len(sched.Rules))}
}

// Decide consumes the next request index and returns the faults to
// inject into a request for path.
func (in *Injector) Decide(path string) Decision {
	in.mu.Lock()
	defer in.mu.Unlock()
	i := in.n
	in.n++
	d := Decision{Index: i}
	for ri, r := range in.sched.Rules {
		if !ruleEligible(r, i, path) {
			continue
		}
		// Flap and partition are windows, not draws: their up/down state
		// is a function of the index alone.
		switch r.Kind {
		case KindPartition:
			d.Drop = true
			in.fired[ri]++
			continue
		case KindFlap:
			if int(i)%(r.Up+r.Down) >= r.Up {
				d.Drop = true
				in.fired[ri]++
			}
			continue
		}
		if r.Count > 0 && in.fired[ri] >= uint64(r.Count) {
			continue
		}
		p := r.P
		if p == 0 {
			p = 1
		}
		h := mix(in.seed, uint64(ri), i)
		if p < 1 && float64(h>>11)/float64(1<<53) >= p {
			continue
		}
		in.fired[ri]++
		switch r.Kind {
		case KindLatency:
			delay := time.Duration(r.MS) * time.Millisecond
			if r.Jitter > 0 {
				delay += time.Duration(mix(in.seed, uint64(ri)+1000, i)%uint64(r.Jitter+1)) * time.Millisecond
			}
			d.Delay += delay
		case KindReset:
			d.Reset = true
		case KindErr:
			d.Status = r.Status
		case KindCorrupt:
			d.Corrupt = true
			d.CorruptPos = int(mix(in.seed, uint64(ri)+2000, i) >> 7 & 0x7fffffff)
		case KindTruncate:
			d.TruncateAfter = r.Bytes
		case KindStall:
			d.StallAfter = r.After
			d.StallHold = time.Duration(r.MS) * time.Millisecond
		}
	}
	if d.Faulty() {
		in.total++
	}
	return d
}

func ruleEligible(r Rule, i uint64, path string) bool {
	if r.Match != "" && !strings.Contains(path, r.Match) {
		return false
	}
	if i < uint64(r.From) {
		return false
	}
	if r.Kind == KindPartition && i >= uint64(r.To) {
		return false
	}
	if r.Every > 1 && i%uint64(r.Every) != 0 {
		return false
	}
	return true
}

// Stats reports the injector's activity: requests seen, requests
// perturbed, and per-rule firing counts keyed by the rule's grammar
// form.
func (in *Injector) Stats() (requests, faulted uint64, perRule map[string]uint64) {
	in.mu.Lock()
	defer in.mu.Unlock()
	perRule = make(map[string]uint64, len(in.sched.Rules))
	for ri, r := range in.sched.Rules {
		perRule[r.String()] += in.fired[ri]
	}
	return in.n, in.total, perRule
}

// mix is a splitmix64-style finalizer over (seed, stream, index): the
// deterministic per-request randomness source. Decorrelated streams
// (probability draws, jitter, corruption positions) use distinct
// stream values.
func mix(seed, stream, i uint64) uint64 {
	z := seed ^ (stream+1)*0x9e3779b97f4a7c15 ^ (i+1)*0xbf58476d1ce4e5b9
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
