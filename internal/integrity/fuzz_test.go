package integrity

import (
	"testing"

	"ctrpred/internal/ctr"
	"ctrpred/internal/dram"
)

// FuzzIntegrityTree drives random interleavings of leaf updates,
// verifications and interior-node corruption against a shadow model,
// checking the security contract under every ordering:
//
//   - a (line, counter, ciphertext) tuple the tree was last updated with
//     verifies, unless the line's path was corrupted since;
//   - a corrupted path is always rejected, and a fresh update of the
//     same leaf restores verifiability;
//   - a wrong counter (stale or future) or wrong ciphertext never
//     verifies;
//   - no operation sequence panics.
//
// Opcodes come in 3-byte groups: (op, line selector, argument). The four
// fuzzed lines are spaced so they share no level-1 parent — corruption
// is injected at level 1, where detection is unconditional (higher
// levels may legitimately sit above a trusted cached node).
func FuzzIntegrityTree(f *testing.F) {
	f.Add([]byte{0, 0, 1, 1, 0, 0})                                  // update then verify
	f.Add([]byte{0, 0, 1, 4, 0, 3, 1, 0, 0, 0, 0, 2, 1, 0, 0})      // corrupt, detect, heal by update, verify
	f.Add([]byte{0, 1, 7, 2, 1, 9, 3, 1, 5})                         // wrong-counter and wrong-ciphertext probes
	f.Add([]byte{0, 0, 1, 0, 1, 2, 0, 2, 3, 0, 3, 4, 4, 2, 0, 1, 2, 0}) // many lines, corrupt one
	f.Fuzz(func(t *testing.T, data []byte) {
		tree := New(DefaultConfig(), dram.New(dram.DefaultConfig()))
		type shadow struct {
			seq     uint64
			enc     ctr.Line
			written bool
			// flipped tracks the parity of each corrupted level-1 bit: a
			// second flip of the same bit restores the node, so the path is
			// clean again iff every bit has been flipped an even number of
			// times. Byte-sized args map to distinct bits, so the set is
			// exact.
			flipped map[byte]bool
		}
		corrupted := func(st *shadow) bool {
			for _, on := range st.flipped {
				if on {
					return true
				}
			}
			return false
		}
		lines := map[uint64]*shadow{}
		now := uint64(0)
		for i := 0; i+2 < len(data); i += 3 {
			op, sel, arg := data[i]%5, data[i+1]%4, data[i+2]
			la := 0x1000 + uint64(sel)*0x10000
			st := lines[la]
			if st == nil {
				st = &shadow{}
				lines[la] = st
			}
			now += 100
			switch op {
			case 0: // legitimate update with a fresh tuple
				st.seq++
				st.enc[int(arg)%ctr.LineSize] ^= arg | 1
				tree.Update(now, la, st.seq, st.enc)
				st.written = true
				st.flipped = nil
			case 1: // verify the current tuple
				if !st.written {
					continue
				}
				ok, _ := tree.Verify(now, la, st.seq, st.enc)
				if ok && corrupted(st) {
					t.Fatalf("line %#x verified over a corrupted path", la)
				}
				if !ok && !corrupted(st) {
					t.Fatalf("line %#x: current tuple rejected on a clean path", la)
				}
			case 2: // a wrong counter must never verify
				if !st.written {
					continue
				}
				if ok, _ := tree.Verify(now, la, st.seq+1+uint64(arg), st.enc); ok {
					t.Fatalf("line %#x accepted counter %d (current %d)", la, st.seq+1+uint64(arg), st.seq)
				}
			case 3: // a wrong ciphertext must never verify
				if !st.written || st.seq == 0 {
					continue
				}
				bad := st.enc
				bad[(int(arg)/8)%ctr.LineSize] ^= 1 << (arg % 8)
				if bad == st.enc {
					continue
				}
				if ok, _ := tree.Verify(now, la, st.seq, bad); ok {
					t.Fatalf("line %#x accepted tampered ciphertext", la)
				}
			case 4: // adversarial interior-node corruption at level 1
				if tree.CorruptPath(la, 1, int(arg)) {
					if st.flipped == nil {
						st.flipped = map[byte]bool{}
					}
					st.flipped[arg] = !st.flipped[arg]
				} else if st.written {
					t.Fatalf("CorruptPath refused a written line %#x", la)
				}
			}
		}
		// A stale tuple recorded before any number of updates must also be
		// rejected (replay): re-walk every line with seq-1.
		for la, st := range lines {
			if !st.written || corrupted(st) || st.seq < 2 {
				continue
			}
			if ok, _ := tree.Verify(now, la, st.seq-1, st.enc); ok {
				t.Fatalf("line %#x accepted a stale counter", la)
			}
		}
	})
}
