package integrity

import (
	"testing"
	"testing/quick"

	"ctrpred/internal/ctr"
	"ctrpred/internal/dram"
)

func newTree() *Tree {
	return New(DefaultConfig(), dram.New(dram.DefaultConfig()))
}

func line(b byte) ctr.Line {
	var l ctr.Line
	for i := range l {
		l[i] = b + byte(i)
	}
	return l
}

func TestUpdateThenVerify(t *testing.T) {
	tr := newTree()
	tr.Update(0, 0x1000, 7, line(1))
	ok, done := tr.Verify(100, 0x1000, 7, line(1))
	if !ok {
		t.Fatal("authentic line rejected")
	}
	if done < 100+tr.Config().HashLatency {
		t.Fatalf("verification free? done=%d", done)
	}
}

func TestTamperedCiphertextDetected(t *testing.T) {
	tr := newTree()
	tr.Update(0, 0x1000, 7, line(1))
	bad := line(1)
	bad[5] ^= 0x01 // adversary flips one ciphertext bit in RAM
	if ok, _ := tr.Verify(0, 0x1000, 7, bad); ok {
		t.Fatal("tampered ciphertext accepted")
	}
	if tr.Stats().TamperDetected != 1 {
		t.Fatalf("stats = %+v", tr.Stats())
	}
}

func TestReplayedCounterDetected(t *testing.T) {
	// The classic replay attack counter-mode alone cannot stop: the
	// adversary restores an OLD (ciphertext, counter) pair. The tree
	// catches it because the leaf digest changed with the update.
	tr := newTree()
	oldCT := line(1)
	tr.Update(0, 0x2000, 5, oldCT)
	tr.Update(0, 0x2000, 6, line(2)) // legitimate newer version
	if ok, _ := tr.Verify(0, 0x2000, 5, oldCT); ok {
		t.Fatal("replayed stale version accepted")
	}
}

func TestSwappedLinesDetected(t *testing.T) {
	// Relocation attack: move block A's ciphertext+counter to address B.
	tr := newTree()
	tr.Update(0, 0x3000, 1, line(3))
	tr.Update(0, 0x3020, 1, line(4))
	if ok, _ := tr.Verify(0, 0x3020, 1, line(3)); ok {
		t.Fatal("relocated ciphertext accepted")
	}
}

func TestUnknownLineRejected(t *testing.T) {
	tr := newTree()
	if ok, _ := tr.Verify(0, 0x9000, 0, line(0)); ok {
		t.Fatal("never-installed line accepted")
	}
}

func TestRootChangesWithEveryUpdate(t *testing.T) {
	tr := newTree()
	tr.Update(0, 0x1000, 1, line(1))
	r1 := tr.Root()
	tr.Update(0, 0x1020, 1, line(2))
	r2 := tr.Root()
	tr.Update(0, 0x1000, 2, line(1))
	r3 := tr.Root()
	if r1 == r2 || r2 == r3 || r1 == r3 {
		t.Fatal("root did not evolve with updates")
	}
}

func TestNodeCacheShortensWalk(t *testing.T) {
	tr := newTree()
	tr.Update(0, 0x4000, 1, line(1))
	tr.Verify(0, 0x4000, 1, line(1)) // warms node cache along the path
	before := tr.Stats().LevelsWalked
	tr.Verify(1000, 0x4000, 1, line(1))
	walked := tr.Stats().LevelsWalked - before
	if walked != 1 {
		t.Fatalf("warm walk traversed %d levels, want 1 (first cached node)", walked)
	}
	if tr.Stats().CacheHits == 0 {
		t.Fatal("no trusted-node early exits")
	}
}

func TestNoCacheWalksFullHeight(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NodeCacheBytes = 0
	tr := New(cfg, dram.New(dram.DefaultConfig()))
	tr.Update(0, 0x4000, 1, line(1))
	tr.Verify(0, 0x4000, 1, line(1))
	if got := tr.Stats().LevelsWalked; got != uint64(cfg.Levels) {
		t.Fatalf("walked %d levels, want %d", got, cfg.Levels)
	}
}

func TestDistantLinesShareRootOnly(t *testing.T) {
	tr := newTree()
	tr.Update(0, 0x0, 1, line(1))
	tr.Update(0, 1<<30, 1, line(2))
	if ok, _ := tr.Verify(0, 0x0, 1, line(1)); !ok {
		t.Fatal("first line rejected after distant update")
	}
	if ok, _ := tr.Verify(0, 1<<30, 1, line(2)); !ok {
		t.Fatal("distant line rejected")
	}
	if tr.NodeCount() < 2*tr.Config().Levels-2 {
		t.Fatalf("suspiciously few nodes for distant lines: %d", tr.NodeCount())
	}
}

func TestVerifyUpdateProperty(t *testing.T) {
	// Property: after any sequence of updates, the latest version of each
	// line verifies and any stale version does not.
	f := func(versions [][2]byte) bool {
		tr := newTree()
		latest := map[uint64]struct {
			ctr uint64
			ct  ctr.Line
		}{}
		counter := uint64(0)
		for _, v := range versions {
			addr := uint64(v[0]%16) * 32
			counter++
			ct := line(v[1])
			tr.Update(0, addr, counter, ct)
			latest[addr] = struct {
				ctr uint64
				ct  ctr.Line
			}{counter, ct}
		}
		for addr, want := range latest {
			if ok, _ := tr.Verify(0, addr, want.ctr, want.ct); !ok {
				return false
			}
			if want.ctr > 1 {
				if ok, _ := tr.Verify(0, addr, want.ctr-1, want.ct); ok {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestBadGeometryPanics(t *testing.T) {
	for _, cfg := range []Config{
		{Arity: 1, Levels: 4, LineSize: 32},
		{Arity: 8, Levels: 0, LineSize: 32},
		{Arity: 8, Levels: 4, LineSize: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v did not panic", cfg)
				}
			}()
			New(cfg, nil)
		}()
	}
}

func TestNilDRAMWorks(t *testing.T) {
	cfg := DefaultConfig()
	tr := New(cfg, nil) // functional-only use
	tr.Update(0, 0x100, 1, line(9))
	if ok, _ := tr.Verify(0, 0x100, 1, line(9)); !ok {
		t.Fatal("functional-only tree rejected authentic line")
	}
}

func BenchmarkUpdate(b *testing.B) {
	tr := newTree()
	for i := 0; i < b.N; i++ {
		tr.Update(uint64(i), uint64(i%4096)*32, uint64(i), line(byte(i)))
	}
}

func BenchmarkVerify(b *testing.B) {
	tr := newTree()
	for i := 0; i < 4096; i++ {
		tr.Update(0, uint64(i)*32, 1, line(byte(i)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Verify(uint64(i), uint64(i%4096)*32, 1, line(byte(i)))
	}
}
