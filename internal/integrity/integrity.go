// Package integrity implements the hash-tree (Merkle tree) memory
// integrity protection that the paper assumes alongside counter-mode
// encryption: "counter mode encryption itself does not provide integrity
// protection. Extra or additional measures such as Hash/MAC tree for
// integrity protection must be used together" (Section 2.2, citing the
// AEGIS line of work).
//
// The tree covers every protected line's *ciphertext and counter*: leaf =
// SHA256(address ‖ counter ‖ ciphertext); an interior node stores its
// children's digests and hashes to its parent's slot; the root never
// leaves the processor. Verification walks from the leaf toward the root
// and may stop early at any node held in the trusted on-chip node cache
// (a verified node is as good as the root). Updates rewrite the path to
// the root. Both walks cost DRAM accesses for uncached nodes plus a
// hashing latency per level — the classic log-depth overhead the paper's
// prediction does NOT address (it targets the decryption pad), which is
// why the two mechanisms compose.
//
// The tree is sparse: only paths touching protected lines materialize,
// with absent children treated as the zero digest, so gigabyte-scale
// address spaces cost memory proportional to the touched working set.
package integrity

import (
	"encoding/binary"

	"ctrpred/internal/cache"
	"ctrpred/internal/ctr"
	"ctrpred/internal/dram"
	"ctrpred/internal/sha256"
	"ctrpred/internal/stats"
)

// Digest is one tree-node hash.
type Digest = [sha256.Size]byte

// Config parameterizes the tree.
type Config struct {
	// LineSize is the protected block size (32).
	LineSize int
	// Arity is the number of children per interior node (8 → a node is
	// 256 bytes of child digests).
	Arity int
	// Levels is the tree height above the leaves; Arity^Levels leaves are
	// addressable per tree "segment" and segments are chained into the
	// root, so any 64-bit space is covered. 8 levels of arity 8 cover
	// 16 M lines (512 MB) per segment.
	Levels int
	// NodeCacheBytes sizes the trusted on-chip cache of verified nodes.
	NodeCacheBytes int
	// HashLatency is the cycles to hash one node (SHA-256 over ≤256 B).
	HashLatency uint64
	// TreeBase is the DRAM region holding interior nodes.
	TreeBase uint64
}

// DefaultConfig returns an AEGIS-flavored configuration: arity-8 tree,
// 8 levels, 32 KB node cache, 80-cycle hash.
func DefaultConfig() Config {
	return Config{
		LineSize:       32,
		Arity:          8,
		Levels:         8,
		NodeCacheBytes: 32 << 10,
		HashLatency:    80,
		TreeBase:       1 << 42,
	}
}

// Stats counts tree activity.
type Stats struct {
	Verifies       uint64 // leaf verifications (fetches)
	Updates        uint64 // leaf updates (writebacks)
	NodeReads      uint64 // interior nodes fetched from DRAM
	NodeWrites     uint64 // interior nodes written to DRAM
	CacheHits      uint64 // walks terminated early at a trusted node
	TamperDetected uint64 // verification mismatches
	LevelsWalked   uint64 // total levels traversed by verifications
}

// AddTo registers the tree's counters into a metrics snapshot node.
func (s Stats) AddTo(n *stats.Snapshot) {
	n.Counter("verifies", s.Verifies)
	n.Counter("updates", s.Updates)
	n.Counter("node_reads", s.NodeReads)
	n.Counter("node_writes", s.NodeWrites)
	n.Counter("cache_hits", s.CacheHits)
	n.Counter("tamper_detected", s.TamperDetected)
	n.Counter("levels_walked", s.LevelsWalked)
}

// nodeKey identifies an interior node: level 1 is the leaves' parents.
type nodeKey struct {
	level int
	index uint64
}

type node struct {
	children []Digest
	sum      Digest
	valid    bool // sum is up to date
}

// Tree is the integrity tree plus its timing model.
type Tree struct {
	cfg       Config
	leaves    map[uint64]Digest // by line address
	nodes     map[nodeKey]*node
	root      Digest // on-chip, always trusted
	rootValid bool
	nodeCache *cache.Cache
	dram      *dram.DRAM
	stats     Stats
}

// New builds an empty tree over the given DRAM channel (used for node
// fetch/writeback timing; may be the data channel).
func New(cfg Config, d *dram.DRAM) *Tree {
	if cfg.Arity < 2 || cfg.Levels < 1 || cfg.LineSize <= 0 {
		panic("integrity: invalid tree geometry")
	}
	t := &Tree{
		cfg:    cfg,
		leaves: make(map[uint64]Digest),
		nodes:  make(map[nodeKey]*node),
		dram:   d,
	}
	if cfg.NodeCacheBytes > 0 {
		nodeBytes := cfg.Arity * sha256.Size
		ways := 4
		if cfg.NodeCacheBytes/nodeBytes < ways {
			ways = 1
		}
		t.nodeCache = cache.New(cache.Config{
			Name:      "treenodes",
			SizeBytes: cfg.NodeCacheBytes,
			LineSize:  nodeBytes,
			Ways:      ways,
		})
	}
	return t
}

// Config returns the tree configuration.
func (t *Tree) Config() Config { return t.cfg }

// Stats returns a copy of the statistics.
func (t *Tree) Stats() Stats { return t.stats }

// Root returns the current on-chip root digest.
func (t *Tree) Root() Digest { return t.root }

func (t *Tree) leafDigest(lineAddr uint64, counter uint64, ct ctr.Line) Digest {
	var buf [16 + ctr.LineSize]byte
	binary.BigEndian.PutUint64(buf[0:8], lineAddr)
	binary.BigEndian.PutUint64(buf[8:16], counter)
	copy(buf[16:], ct[:])
	return sha256.Sum256(buf[:])
}

func (t *Tree) leafIndex(lineAddr uint64) uint64 {
	return lineAddr / uint64(t.cfg.LineSize)
}

// childSlot returns the node key and slot of the given entity (leaf index
// at level 0, or node index at level ≥ 1) within its parent.
func (t *Tree) parentOf(level int, index uint64) (nodeKey, int) {
	return nodeKey{level: level + 1, index: index / uint64(t.cfg.Arity)},
		int(index % uint64(t.cfg.Arity))
}

func (t *Tree) getNode(k nodeKey) *node {
	n := t.nodes[k]
	if n == nil {
		n = &node{children: make([]Digest, t.cfg.Arity)}
		t.nodes[k] = n
	}
	return n
}

func (t *Tree) nodeDigest(n *node) Digest {
	if !n.valid {
		h := sha256.New()
		for i := range n.children {
			h.Write(n.children[i][:])
		}
		copy(n.sum[:], h.Sum(nil))
		n.valid = true
	}
	return n.sum
}

// nodeAddr maps a node to its DRAM location (for timing only).
func (t *Tree) nodeAddr(k nodeKey) uint64 {
	nodeBytes := uint64(t.cfg.Arity * sha256.Size)
	// Offset levels into disjoint regions; indices are dense per level.
	return t.cfg.TreeBase + uint64(k.level)<<36 + k.index*nodeBytes
}

// Update installs the leaf for (lineAddr, counter, ciphertext) and
// rewrites the path to the root, returning the cycle the last node write
// completes. Called by the secure memory controller on every writeback
// (and on image materialization with now == 0 for a free warm start).
func (t *Tree) Update(now uint64, lineAddr uint64, counter uint64, ct ctr.Line) uint64 {
	t.stats.Updates++
	d := t.leafDigest(lineAddr, counter, ct)
	t.leaves[lineAddr] = d

	index := t.leafIndex(lineAddr)
	done := now
	for level := 0; level < t.cfg.Levels; level++ {
		k, slot := t.parentOf(level, index)
		n := t.getNode(k)
		n.children[slot] = d
		n.valid = false
		d = t.nodeDigest(n)
		index = k.index

		// Timing: updated nodes are hashed and written back; the node
		// cache absorbs most of the DRAM traffic (write-back of dirty
		// nodes is folded into the write here for simplicity).
		done += t.cfg.HashLatency
		if t.nodeCache != nil {
			if hit, _ := t.nodeCache.Access(t.nodeAddr(k), true); hit {
				continue
			}
		}
		t.stats.NodeWrites++
		if t.dram != nil {
			done = t.dram.Access(done, t.nodeAddr(k), t.cfg.Arity*sha256.Size, true)
		}
	}
	t.root = d
	t.rootValid = true
	return done
}

// Verify checks (lineAddr, counter, ciphertext) against the tree,
// returning whether it is authentic and the cycle at which verification
// completed. The walk stops at the first trusted (on-chip cached) node.
func (t *Tree) Verify(now uint64, lineAddr uint64, counter uint64, ct ctr.Line) (bool, uint64) {
	t.stats.Verifies++
	want, known := t.leaves[lineAddr]
	if !known {
		// Never-written line: authentic only if the stored digest chain
		// is absent too — recompute and compare against the zero-backed
		// tree. We treat "unknown leaf" as a mismatch: the controller
		// always installs leaves at materialization.
		t.stats.TamperDetected++
		return false, now
	}
	got := t.leafDigest(lineAddr, counter, ct)
	authentic := got == want

	// Walk toward the root for timing and structural verification.
	d := want
	index := t.leafIndex(lineAddr)
	done := now
	for level := 0; level < t.cfg.Levels; level++ {
		t.stats.LevelsWalked++
		k, slot := t.parentOf(level, index)
		n := t.getNode(k)
		if n.children[slot] != d {
			authentic = false
		}
		d = t.nodeDigest(n)
		index = k.index

		done += t.cfg.HashLatency
		if t.nodeCache != nil {
			if hit, _ := t.nodeCache.Access(t.nodeAddr(k), false); hit {
				t.stats.CacheHits++
				break // trusted node: the chain above is already verified
			}
		}
		t.stats.NodeReads++
		if t.dram != nil {
			done = t.dram.Access(done, t.nodeAddr(k), t.cfg.Arity*sha256.Size, false)
		}
	}
	if !authentic {
		t.stats.TamperDetected++
	}
	return authentic, done
}

// CorruptPath flips one bit of the stored child digest at the given
// level on lineAddr's root path, modeling an adversary rewriting an
// interior tree node in untrusted RAM (level 1 corrupts the leaf
// digest's copy inside its parent — always compared on the next Verify
// of the leaf; higher levels may sit above a trusted cached node). The
// node's cached hash is invalidated, as rehashing the fetched corrupted
// node would be in hardware. It reports false when the leaf was never
// installed or the level is out of range; a later Update of the same
// leaf rewrites the path and restores verifiability.
func (t *Tree) CorruptPath(lineAddr uint64, level int, bit int) bool {
	if level < 1 || level > t.cfg.Levels {
		return false
	}
	if _, known := t.leaves[lineAddr]; !known {
		return false
	}
	index := t.leafIndex(lineAddr)
	for l := 1; l < level; l++ {
		k, _ := t.parentOf(l-1, index)
		index = k.index
	}
	k, slot := t.parentOf(level-1, index)
	n := t.getNode(k)
	n.children[slot][(bit/8)%sha256.Size] ^= 1 << (bit % 8)
	n.valid = false
	return true
}

// NodeCount reports materialized interior nodes (tests).
func (t *Tree) NodeCount() int { return len(t.nodes) }
