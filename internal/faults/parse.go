package faults

import (
	"fmt"
	"strconv"
	"strings"
)

// ParsePlan parses the CLI attack-plan syntax:
//
//	plan   := attack ("," attack)*
//	attack := kind ("@" cond)*
//	cond   := "fetch:"N | "instr:"N | "cycle:"N | "addr:"HEX["/"HEXMASK]
//
// e.g. "bitflip@fetch:100,replay@instr:50000,rollback@addr:0x1000".
// A kind with no conditions fires at the first fetch. Numbers accept the
// usual Go prefixes (0x…); an addr without a mask must match exactly.
func ParsePlan(s string) (Plan, error) {
	var p Plan
	for _, raw := range strings.Split(s, ",") {
		spec := strings.TrimSpace(raw)
		if spec == "" {
			continue
		}
		parts := strings.Split(spec, "@")
		kind, err := ParseKind(parts[0])
		if err != nil {
			return Plan{}, err
		}
		a := Attack{Kind: kind}
		for _, cond := range parts[1:] {
			key, val, found := strings.Cut(cond, ":")
			if !found {
				return Plan{}, fmt.Errorf("faults: condition %q in %q has no value (want key:value)", cond, spec)
			}
			switch key {
			case "fetch":
				a.Trigger.Fetch, err = parseU64(val)
			case "instr":
				a.Trigger.Instr, err = parseU64(val)
			case "cycle":
				a.Trigger.Cycle, err = parseU64(val)
			case "addr":
				addr, mask, hasMask := strings.Cut(val, "/")
				a.Trigger.AddrMatch, err = parseU64(addr)
				a.Trigger.AddrMask = ^uint64(0)
				if err == nil && hasMask {
					a.Trigger.AddrMask, err = parseU64(mask)
				}
			default:
				return Plan{}, fmt.Errorf("faults: unknown condition %q in %q (want fetch, instr, cycle or addr)", key, spec)
			}
			if err != nil {
				return Plan{}, fmt.Errorf("faults: condition %q in %q: %w", cond, spec, err)
			}
		}
		p.Attacks = append(p.Attacks, a)
	}
	if len(p.Attacks) == 0 {
		return Plan{}, fmt.Errorf("faults: empty attack plan %q", s)
	}
	return p, nil
}

func parseU64(s string) (uint64, error) {
	v, err := strconv.ParseUint(s, 0, 64)
	if err != nil {
		return 0, fmt.Errorf("bad number %q", s)
	}
	return v, nil
}
