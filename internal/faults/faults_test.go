package faults

import (
	"testing"

	"ctrpred/internal/ctr"
)

// fakeTarget records adversary calls and lets tests script applicability.
type fakeTarget struct {
	calls        []string
	refuseReplay bool
	refuseCtr    bool
}

func (f *fakeTarget) TamperData(la uint64, bit int) bool {
	f.calls = append(f.calls, "data")
	return true
}
func (f *fakeTarget) TamperCounter(la uint64, delta uint64) bool {
	f.calls = append(f.calls, "counter")
	return !f.refuseCtr
}
func (f *fakeTarget) TamperTreeNode(la uint64, bit int) bool {
	f.calls = append(f.calls, "node")
	return true
}
func (f *fakeTarget) SpliceLines(la, lb uint64) bool {
	f.calls = append(f.calls, "splice")
	return true
}
func (f *fakeTarget) ReplayStale(la uint64, enc ctr.Line, seq uint64) bool {
	f.calls = append(f.calls, "replay")
	return !f.refuseReplay
}

func newTestInjector(p Plan) (*Injector, *fakeTarget) {
	inj := NewInjector(p, 1)
	tgt := &fakeTarget{}
	inj.Bind(tgt)
	return inj, tgt
}

func TestTriggerFetchOrdinal(t *testing.T) {
	inj, tgt := newTestInjector(Plan{Attacks: []Attack{
		{Kind: BitFlip, Trigger: Trigger{Fetch: 3}},
	}})
	inj.BeforeFetch(10, 0x1000)
	inj.BeforeFetch(20, 0x2000)
	if len(tgt.calls) != 0 {
		t.Fatalf("attack fired before its fetch ordinal: %v", tgt.calls)
	}
	inj.BeforeFetch(30, 0x3000)
	if got := inj.Stats().Injected[BitFlip]; got != 1 {
		t.Fatalf("injected = %d after ordinal reached, want 1", got)
	}
	if inj.Pending() != 0 {
		t.Fatal("fired attack still pending")
	}
	// An attack fires exactly once.
	inj.BeforeFetch(40, 0x4000)
	if got := inj.Stats().Injected[BitFlip]; got != 1 {
		t.Fatalf("attack fired twice: injected = %d", got)
	}
}

func TestTriggerAddrPredicate(t *testing.T) {
	inj, tgt := newTestInjector(Plan{Attacks: []Attack{
		{Kind: BitFlip, Trigger: Trigger{AddrMask: ^uint64(0), AddrMatch: 0x2000}},
	}})
	inj.BeforeFetch(0, 0x1000)
	if len(tgt.calls) != 0 {
		t.Fatal("address-gated attack fired on the wrong line")
	}
	inj.BeforeFetch(1, 0x2000)
	if got := inj.Stats().TotalInjected(); got != 1 {
		t.Fatalf("injected = %d on matching address, want 1", got)
	}
}

func TestTriggerInstrNeedsSource(t *testing.T) {
	inj, _ := newTestInjector(Plan{Attacks: []Attack{
		{Kind: BitFlip, Trigger: Trigger{Instr: 100}},
	}})
	inj.BeforeFetch(0, 0x1000)
	if inj.Stats().TotalInjected() != 0 {
		t.Fatal("instruction trigger fired without an instruction source")
	}
	committed := uint64(50)
	inj.SetInstrSource(func() uint64 { return committed })
	inj.BeforeFetch(1, 0x1000)
	if inj.Stats().TotalInjected() != 0 {
		t.Fatal("instruction trigger fired below the threshold")
	}
	committed = 100
	inj.BeforeFetch(2, 0x1000)
	if inj.Stats().TotalInjected() != 1 {
		t.Fatal("instruction trigger did not fire at the threshold")
	}
}

func TestSpliceNeedsDistinctPartner(t *testing.T) {
	inj, tgt := newTestInjector(Plan{Attacks: []Attack{{Kind: Splice}}})
	inj.BeforeFetch(0, 0x1000) // first fetch: no earlier line to pair with
	if len(tgt.calls) != 0 {
		t.Fatal("splice fired with no partner")
	}
	inj.BeforeFetch(1, 0x2000)
	if inj.Stats().Injected[Splice] != 1 {
		t.Fatal("splice did not fire once a distinct partner existed")
	}
}

func TestReplayWaitsForCapture(t *testing.T) {
	inj, tgt := newTestInjector(Plan{Attacks: []Attack{{Kind: Replay}}})
	inj.BeforeFetch(0, 0x1000)
	if len(tgt.calls) != 0 {
		t.Fatal("replay fired with nothing captured")
	}
	var enc ctr.Line
	enc[0] = 0xee
	inj.ObservePair(0x1000, enc, 5)
	inj.BeforeFetch(1, 0x2000) // different line: still nothing to replay
	if len(tgt.calls) != 0 {
		t.Fatal("replay fired against an uncaptured line")
	}
	inj.BeforeFetch(2, 0x1000)
	if inj.Stats().Injected[Replay] != 1 {
		t.Fatal("replay did not fire against the captured line")
	}
}

func TestObservePairKeepsOldest(t *testing.T) {
	inj, tgt := newTestInjector(Plan{Attacks: []Attack{{Kind: Replay, Trigger: Trigger{Fetch: 2}}}})
	var first, second ctr.Line
	first[0], second[0] = 1, 2
	inj.ObservePair(0x1000, first, 7)
	inj.ObservePair(0x1000, second, 8)
	inj.BeforeFetch(0, 0x1000)
	inj.BeforeFetch(1, 0x1000)
	if inj.Stats().Injected[Replay] != 1 {
		t.Fatal("replay did not fire")
	}
	// The target saw exactly one replay call, with the oldest pair.
	if len(tgt.calls) != 1 || tgt.calls[0] != "replay" {
		t.Fatalf("calls = %v", tgt.calls)
	}
}

func TestInapplicableAttackStaysArmed(t *testing.T) {
	inj, tgt := newTestInjector(Plan{Attacks: []Attack{{Kind: Rollback}}})
	tgt.refuseCtr = true // e.g. direct mode: no counters to roll back
	inj.BeforeFetch(0, 0x1000)
	inj.BeforeFetch(1, 0x2000)
	if inj.Stats().TotalInjected() != 0 {
		t.Fatal("refused attack counted as injected")
	}
	if !inj.Armed() || inj.Pending() != 1 {
		t.Fatal("refused attack no longer armed")
	}
	tgt.refuseCtr = false
	inj.BeforeFetch(2, 0x3000)
	if inj.Stats().Injected[Rollback] != 1 {
		t.Fatal("attack did not fire once applicable")
	}
}

func TestDetectionCreditsAndLatency(t *testing.T) {
	inj, _ := newTestInjector(Plan{Attacks: []Attack{
		{Kind: BitFlip},
		{Kind: Rollback},
	}})
	inj.BeforeFetch(100, 0x1000) // both fire on the same line at cycle 100
	if inj.Stats().TotalInjected() != 2 {
		t.Fatalf("stats = %+v", inj.Stats())
	}
	inj.ObserveDetection(0x2000, 150) // wrong line: no credit
	if inj.Stats().TotalDetected() != 0 {
		t.Fatal("detection credited to the wrong line")
	}
	inj.ObserveDetection(0x1000, 150)
	s := inj.Stats()
	if s.TotalDetected() != 2 {
		t.Fatalf("both overlapping corruptions should be credited: %+v", s)
	}
	if s.LatencySum[BitFlip] != 50 || s.LatencySum[Rollback] != 50 {
		t.Fatalf("latency sums = %v, want 50 each", s.LatencySum)
	}
	if s.MeanLatency(BitFlip) != 50 {
		t.Fatalf("mean latency = %v", s.MeanLatency(BitFlip))
	}
	// A second detection of the same line does not double-credit.
	inj.ObserveDetection(0x1000, 200)
	if inj.Stats().TotalDetected() != 2 {
		t.Fatal("detection credited twice")
	}
}

func TestDetectionRateVacuous(t *testing.T) {
	var s Stats
	if r := s.DetectionRate(Replay); r != 1 {
		t.Fatalf("vacuous detection rate = %v, want 1", r)
	}
	s.Injected[Replay] = 2
	s.Detected[Replay] = 1
	if r := s.DetectionRate(Replay); r != 0.5 {
		t.Fatalf("detection rate = %v, want 0.5", r)
	}
}

func TestParsePlan(t *testing.T) {
	p, err := ParsePlan("bitflip@fetch:100,replay@instr:50000@addr:0x1f000,rollback@addr:0x2000/0xff000,nodecorrupt@cycle:9")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Attacks) != 4 {
		t.Fatalf("parsed %d attacks, want 4", len(p.Attacks))
	}
	a := p.Attacks[0]
	if a.Kind != BitFlip || a.Trigger.Fetch != 100 {
		t.Fatalf("attack 0 = %+v", a)
	}
	a = p.Attacks[1]
	if a.Kind != Replay || a.Trigger.Instr != 50000 ||
		a.Trigger.AddrMatch != 0x1f000 || a.Trigger.AddrMask != ^uint64(0) {
		t.Fatalf("attack 1 = %+v", a)
	}
	a = p.Attacks[2]
	if a.Kind != Rollback || a.Trigger.AddrMatch != 0x2000 || a.Trigger.AddrMask != 0xff000 {
		t.Fatalf("attack 2 = %+v", a)
	}
	if p.Attacks[3].Kind != NodeCorrupt || p.Attacks[3].Trigger.Cycle != 9 {
		t.Fatalf("attack 3 = %+v", p.Attacks[3])
	}
}

func TestParsePlanErrors(t *testing.T) {
	for _, bad := range []string{
		"",                  // empty plan
		"meltdown",          // unknown kind
		"bitflip@when:5",    // unknown condition
		"bitflip@fetch",     // condition without value
		"bitflip@fetch:xyz", // bad number
	} {
		if _, err := ParsePlan(bad); err == nil {
			t.Errorf("ParsePlan(%q) accepted", bad)
		}
	}
}

func TestParseKindRoundTrip(t *testing.T) {
	for _, k := range Kinds() {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Fatalf("ParseKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := ParseKind("nope"); err == nil {
		t.Fatal("ParseKind accepted an unknown name")
	}
}
