// Package faults is the deterministic, seeded adversary of the threat
// model: it sits between the secure memory controller and the modeled
// DRAM and corrupts the encrypted image on a schedule. The paper's
// premise (Section 2.2) is that off-chip memory is untrusted — counter
// mode alone gives no integrity, so a hash tree must run alongside — and
// this package supplies the active attacker that premise implies, so
// detection coverage and recovery behavior become testable properties
// instead of assumptions.
//
// An Attack pairs an attack class (Kind) with a Trigger. The injector is
// consulted at every line fetch; an attack whose trigger conditions all
// hold fires against the line being fetched, corrupting it between the
// DRAM read and verification — the strongest position an adversary on
// the memory bus can take, and the one that makes detection latency
// well-defined (the very fetch that consumes the corruption must flag
// it). Attacks that are momentarily inapplicable (a replay with no stale
// capture yet, a counter rollback in direct mode) stay armed until a
// fetch where they apply, or report as never-fired.
//
// Everything is deterministic: the schedule comes from the Plan, bit and
// delta choices from a seeded generator, so a campaign is byte-for-byte
// reproducible at a given seed regardless of worker count.
package faults

import (
	"fmt"

	"ctrpred/internal/ctr"
	"ctrpred/internal/rng"
	"ctrpred/internal/stats"
)

// Kind is an attack class of the threat model.
type Kind uint8

const (
	// BitFlip flips one ciphertext bit of the fetched line.
	BitFlip Kind = iota
	// Splice swaps the fetched line's ciphertext with another address's
	// (a relocation attack: both lines are valid ciphertext, just not at
	// these addresses).
	Splice
	// Replay restores a stale (ciphertext, counter) pair captured at an
	// earlier writeback of the fetched line.
	Replay
	// Rollback decrements the fetched line's counter-table entry —
	// counter-table corruption aimed at forcing pad reuse.
	Rollback
	// NodeCorrupt flips a bit in an interior integrity-tree node on the
	// fetched line's path — attacking the protection instead of the data.
	NodeCorrupt
	// NumKinds bounds the Kind space for per-kind accounting arrays.
	NumKinds = int(NodeCorrupt) + 1
)

var kindNames = [NumKinds]string{"bitflip", "splice", "replay", "rollback", "nodecorrupt"}

func (k Kind) String() string {
	if int(k) < NumKinds {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Kinds lists every attack class.
func Kinds() []Kind {
	return []Kind{BitFlip, Splice, Replay, Rollback, NodeCorrupt}
}

// ParseKind parses an attack-class name as used by ParsePlan.
func ParseKind(s string) (Kind, error) {
	for i, n := range kindNames {
		if s == n {
			return Kind(i), nil
		}
	}
	return 0, fmt.Errorf("faults: unknown attack kind %q (want bitflip, splice, replay, rollback or nodecorrupt)", s)
}

// Trigger gates when an attack fires. Every nonzero condition must hold;
// the zero value fires on the first fetch. An attack fires at the first
// fetch where the trigger holds *and* the attack applies to the fetched
// line, and fires exactly once.
type Trigger struct {
	// Fetch arms the attack from the Nth line fetch onward (1-based).
	Fetch uint64
	// Instr arms the attack once N instructions have committed (needs an
	// instruction source; see Injector.SetInstrSource).
	Instr uint64
	// Cycle arms the attack from cycle N onward.
	Cycle uint64
	// AddrMask/AddrMatch restrict the attack to fetches whose line
	// address satisfies addr&AddrMask == AddrMatch&AddrMask. A zero mask
	// matches every address.
	AddrMask  uint64
	AddrMatch uint64
}

func (tr Trigger) armed(fetch, instr, cycle, la uint64) bool {
	if tr.Fetch != 0 && fetch < tr.Fetch {
		return false
	}
	if tr.Instr != 0 && instr < tr.Instr {
		return false
	}
	if tr.Cycle != 0 && cycle < tr.Cycle {
		return false
	}
	if tr.AddrMask != 0 && la&tr.AddrMask != tr.AddrMatch&tr.AddrMask {
		return false
	}
	return true
}

// Attack is one scheduled corruption.
type Attack struct {
	Kind    Kind
	Trigger Trigger
}

// Plan is a full attack schedule. The zero value (no attacks) is a valid
// armed-but-idle plan, useful for measuring injector overhead.
type Plan struct {
	Attacks []Attack
}

// Target is the adversary's write access to the untrusted memory state,
// implemented by the secure memory controller. Every method corrupts the
// line containing vaddr (la, line-aligned) and reports whether the
// corruption applied — false means the attack stays armed (e.g. no
// counters in direct mode, no stale capture yet, no tree attached).
type Target interface {
	// TamperData flips one ciphertext bit of line la.
	TamperData(la uint64, bit int) bool
	// TamperCounter rolls the counter-table entry of la back by delta.
	TamperCounter(la uint64, delta uint64) bool
	// TamperTreeNode flips a bit of an interior integrity node on la's
	// path.
	TamperTreeNode(la uint64, bit int) bool
	// SpliceLines swaps the ciphertext stored at la and lb.
	SpliceLines(la, lb uint64) bool
	// ReplayStale restores a previously captured (ciphertext, counter)
	// pair at la; it must refuse (return false) a pair identical to the
	// current state, which would be a no-op rather than a replay.
	ReplayStale(la uint64, enc ctr.Line, seq uint64) bool
}

// Stats is the injector's per-kind ledger. Detection latency is the
// cycle distance from an attack firing to the verification that flagged
// its line.
type Stats struct {
	Injected   [NumKinds]uint64
	Detected   [NumKinds]uint64
	LatencySum [NumKinds]uint64
}

// TotalInjected sums fired attacks across every kind.
func (s Stats) TotalInjected() (n uint64) {
	for _, v := range s.Injected {
		n += v
	}
	return n
}

// TotalDetected sums detected attacks across every kind.
func (s Stats) TotalDetected() (n uint64) {
	for _, v := range s.Detected {
		n += v
	}
	return n
}

// DetectionRate returns detected/injected for the kind; attacks that
// never fired are vacuously covered (rate 1).
func (s Stats) DetectionRate(k Kind) float64 {
	if s.Injected[k] == 0 {
		return 1
	}
	return float64(s.Detected[k]) / float64(s.Injected[k])
}

// MeanLatency returns the mean detection latency in cycles for the kind.
func (s Stats) MeanLatency(k Kind) float64 {
	if s.Detected[k] == 0 {
		return 0
	}
	return float64(s.LatencySum[k]) / float64(s.Detected[k])
}

// AddTo registers the ledger into a metrics snapshot node: one child per
// attack class plus run totals.
func (s Stats) AddTo(n *stats.Snapshot) {
	n.Counter("injected", s.TotalInjected())
	n.Counter("detected", s.TotalDetected())
	for _, k := range Kinds() {
		if s.Injected[k] == 0 && s.Detected[k] == 0 {
			continue
		}
		c := n.Child(k.String())
		c.Counter("injected", s.Injected[k])
		c.Counter("detected", s.Detected[k])
		c.Counter("latency_sum_cycles", s.LatencySum[k])
		c.Value("detection_rate", s.DetectionRate(k))
	}
}

// capture is a recorded writeback, the raw material of replay attacks.
type capture struct {
	enc ctr.Line
	seq uint64
	ok  bool
}

// attackState tracks one planned attack through its lifecycle.
type attackState struct {
	Attack
	fired      bool
	detected   bool
	firedCycle uint64
	line       uint64 // line the corruption landed on
}

// Injector drives a Plan against a Target. It is bound to one controller
// (Bind) and consulted on the controller's fetch/writeback path; it is
// not safe for concurrent use, matching the single-threaded simulator.
type Injector struct {
	target  Target
	rng     *rng.Xoshiro256
	instr   func() uint64
	attacks []attackState
	// captures holds the oldest writeback per line: the most stale pair
	// an adversary who started recording at run begin could replay.
	captures map[uint64]capture
	// needPairs counts unfired Replay attacks: once it reaches zero the
	// injector stops recording bus pairs, keeping the armed-but-idle
	// per-fetch cost to a trigger scan.
	needPairs int
	fetches   uint64
	lastLine  uint64
	havePrev  bool
	stats     Stats
}

// NewInjector builds an injector for the plan. The seed drives bit and
// delta choices; the schedule itself is fully determined by the plan.
func NewInjector(p Plan, seed uint64) *Injector {
	inj := &Injector{
		rng:      rng.New(seed ^ 0xfa17_1e55),
		captures: make(map[uint64]capture),
	}
	inj.attacks = make([]attackState, len(p.Attacks))
	for i, a := range p.Attacks {
		inj.attacks[i] = attackState{Attack: a}
		if a.Kind == Replay {
			inj.needPairs++
		}
	}
	return inj
}

// Bind points the injector at its target (the controller arming it).
func (i *Injector) Bind(t Target) { i.target = t }

// SetInstrSource supplies the committed-instruction counter for
// Trigger.Instr conditions. Without one, instruction triggers never arm.
func (i *Injector) SetInstrSource(fn func() uint64) { i.instr = fn }

// Armed reports whether any attack is still waiting to fire.
func (i *Injector) Armed() bool {
	for idx := range i.attacks {
		if !i.attacks[idx].fired {
			return true
		}
	}
	return false
}

// Pending counts attacks that have not fired (trigger unmet or class
// inapplicable so far).
func (i *Injector) Pending() int {
	n := 0
	for idx := range i.attacks {
		if !i.attacks[idx].fired {
			n++
		}
	}
	return n
}

// Stats returns a copy of the injection/detection ledger.
func (i *Injector) Stats() Stats { return i.stats }

// BeforeFetch is called by the controller at the start of every line
// fetch, before the counter is read and the line is verified: the moment
// an adversary on the memory bus would strike. Due attacks are applied
// to the line being fetched.
func (i *Injector) BeforeFetch(now uint64, la uint64) {
	i.fetches++
	var instr uint64
	if i.instr != nil {
		instr = i.instr()
	}
	for idx := range i.attacks {
		a := &i.attacks[idx]
		if a.fired || !a.Trigger.armed(i.fetches, instr, now, la) {
			continue
		}
		if i.apply(a, la) {
			a.fired = true
			a.firedCycle = now
			a.line = la
			i.stats.Injected[a.Kind]++
			if a.Kind == Replay {
				i.needPairs--
			}
		}
	}
	// Record the fetch for splice partner selection *after* applying, so
	// a splice always pairs the current line with an earlier one.
	if i.lastLine != la || !i.havePrev {
		i.lastLine, i.havePrev = la, true
	}
}

// apply performs one attack against the line being fetched; it reports
// whether the corruption landed (false keeps the attack armed).
func (i *Injector) apply(a *attackState, la uint64) bool {
	if i.target == nil {
		return false
	}
	switch a.Kind {
	case BitFlip:
		return i.target.TamperData(la, i.rng.Intn(8*ctr.LineSize))
	case Splice:
		if !i.havePrev || i.lastLine == la {
			return false // no distinct partner fetched yet
		}
		return i.target.SpliceLines(la, i.lastLine)
	case Replay:
		c := i.captures[la]
		if !c.ok {
			return false // nothing captured for this line yet
		}
		return i.target.ReplayStale(la, c.enc, c.seq)
	case Rollback:
		return i.target.TamperCounter(la, 1+i.rng.Uint64n(4))
	case NodeCorrupt:
		return i.target.TamperTreeNode(la, i.rng.Intn(256))
	}
	return false
}

// WantsPairs reports whether the injector still records bus pairs —
// true while an unfired Replay attack remains. Controllers use it to
// skip the ObservePair call (and its line copy) on the fetch/evict hot
// path when no replay material is needed.
func (i *Injector) WantsPairs() bool { return i.needPairs > 0 }

// ObservePair is called by the controller whenever a legitimate
// (ciphertext, counter) pair for la crosses the memory bus: at every
// fetch (the adversary snoops reads) and at every writeback (with the
// pair the writeback replaces). The injector keeps the first pair it
// sees per line — the most stale replay material an adversary recording
// from run begin could hold — and records nothing once every Replay
// attack has fired.
func (i *Injector) ObservePair(la uint64, enc ctr.Line, seq uint64) {
	if i.needPairs == 0 {
		return
	}
	if _, seen := i.captures[la]; !seen {
		i.captures[la] = capture{enc: enc, seq: seq, ok: true}
	}
}

// ObserveDetection is called by the controller when verification of la
// fails at the given cycle. Every fired, not-yet-detected attack whose
// corruption landed on la is credited — a verifier cannot attribute a
// mismatch to one of several overlapping corruptions.
func (i *Injector) ObserveDetection(la uint64, cycle uint64) {
	for idx := range i.attacks {
		a := &i.attacks[idx]
		if !a.fired || a.detected || a.line != la {
			continue
		}
		a.detected = true
		i.stats.Detected[a.Kind]++
		i.stats.LatencySum[a.Kind] += cycle - a.firedCycle
	}
}
