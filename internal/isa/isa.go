// Package isa defines the small 64-bit RISC instruction set the workload
// kernels are written in. It stands in for the Alpha ISA the paper's
// SimpleScalar runs: the out-of-order core in package cpu executes these
// instructions both functionally and under a detailed timing model.
//
// The machine has 32 general registers (r0 hardwired to zero). There is
// no separate floating-point register file; the "FP" opcodes operate on
// integer values but occupy floating-point functional units with
// floating-point latencies, which is all a memory-system study requires
// (the dataflow and reference streams are what matter, not IEEE
// semantics). Instructions encode to fixed 8-byte words, so the
// instruction cache sees four instructions per 32-byte line.
package isa

import "fmt"

// Op enumerates the opcodes.
type Op uint8

const (
	OpNop Op = iota
	// Register-register integer ALU.
	OpAdd
	OpSub
	OpAnd
	OpOr
	OpXor
	OpSll
	OpSrl
	OpSra
	OpSlt
	OpSltu
	// Multiply/divide.
	OpMul
	OpDiv
	OpRem
	// Register-immediate ALU.
	OpAddi
	OpAndi
	OpOri
	OpXori
	OpSlli
	OpSrli
	OpSrai
	OpSlti
	OpLui
	// FP-latency arithmetic (integer semantics, FP unit occupancy).
	OpFadd
	OpFsub
	OpFmul
	OpFdiv
	// Memory. Loads zero-extend.
	OpLd // 8 bytes
	OpLw // 4 bytes
	OpLh // 2 bytes
	OpLb // 1 byte
	OpSd
	OpSw
	OpSh
	OpSb
	// Control. Branch/jump immediates are byte offsets from the
	// instruction's own PC; Jalr targets Rs1+Imm absolutely.
	OpBeq
	OpBne
	OpBlt
	OpBge
	OpBltu
	OpBgeu
	OpJal
	OpJalr
	OpHalt
	numOps
)

// InstrBytes is the size of one encoded instruction.
const InstrBytes = 8

// Class groups opcodes by the functional unit they occupy.
type Class uint8

const (
	ClassNop Class = iota
	ClassALU
	ClassMul
	ClassDiv
	ClassFPAdd
	ClassFPMul
	ClassFPDiv
	ClassLoad
	ClassStore
	ClassBranch
	ClassJump
	ClassHalt
)

var opInfo = [numOps]struct {
	name  string
	class Class
}{
	OpNop:  {"nop", ClassNop},
	OpAdd:  {"add", ClassALU},
	OpSub:  {"sub", ClassALU},
	OpAnd:  {"and", ClassALU},
	OpOr:   {"or", ClassALU},
	OpXor:  {"xor", ClassALU},
	OpSll:  {"sll", ClassALU},
	OpSrl:  {"srl", ClassALU},
	OpSra:  {"sra", ClassALU},
	OpSlt:  {"slt", ClassALU},
	OpSltu: {"sltu", ClassALU},
	OpMul:  {"mul", ClassMul},
	OpDiv:  {"div", ClassDiv},
	OpRem:  {"rem", ClassDiv},
	OpAddi: {"addi", ClassALU},
	OpAndi: {"andi", ClassALU},
	OpOri:  {"ori", ClassALU},
	OpXori: {"xori", ClassALU},
	OpSlli: {"slli", ClassALU},
	OpSrli: {"srli", ClassALU},
	OpSrai: {"srai", ClassALU},
	OpSlti: {"slti", ClassALU},
	OpLui:  {"lui", ClassALU},
	OpFadd: {"fadd", ClassFPAdd},
	OpFsub: {"fsub", ClassFPAdd},
	OpFmul: {"fmul", ClassFPMul},
	OpFdiv: {"fdiv", ClassFPDiv},
	OpLd:   {"ld", ClassLoad},
	OpLw:   {"lw", ClassLoad},
	OpLh:   {"lh", ClassLoad},
	OpLb:   {"lb", ClassLoad},
	OpSd:   {"sd", ClassStore},
	OpSw:   {"sw", ClassStore},
	OpSh:   {"sh", ClassStore},
	OpSb:   {"sb", ClassStore},
	OpBeq:  {"beq", ClassBranch},
	OpBne:  {"bne", ClassBranch},
	OpBlt:  {"blt", ClassBranch},
	OpBge:  {"bge", ClassBranch},
	OpBltu: {"bltu", ClassBranch},
	OpBgeu: {"bgeu", ClassBranch},
	OpJal:  {"jal", ClassJump},
	OpJalr: {"jalr", ClassJump},
	OpHalt: {"halt", ClassHalt},
}

// String returns the mnemonic.
func (o Op) String() string {
	if int(o) < len(opInfo) && opInfo[o].name != "" {
		return opInfo[o].name
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Class returns the functional-unit class of the opcode.
func (o Op) Class() Class {
	if int(o) < len(opInfo) {
		return opInfo[o].class
	}
	return ClassNop
}

// MemBytes returns the access width of a load/store opcode, or 0.
func (o Op) MemBytes() int {
	switch o {
	case OpLd, OpSd:
		return 8
	case OpLw, OpSw:
		return 4
	case OpLh, OpSh:
		return 2
	case OpLb, OpSb:
		return 1
	}
	return 0
}

// Instr is one decoded instruction.
type Instr struct {
	Op       Op
	Rd       uint8
	Rs1, Rs2 uint8
	Imm      int64 // encoded as int32
}

// String disassembles the instruction.
func (in Instr) String() string {
	switch in.Op.Class() {
	case ClassNop, ClassHalt:
		return in.Op.String()
	case ClassLoad:
		return fmt.Sprintf("%s r%d, %d(r%d)", in.Op, in.Rd, in.Imm, in.Rs1)
	case ClassStore:
		return fmt.Sprintf("%s r%d, %d(r%d)", in.Op, in.Rs2, in.Imm, in.Rs1)
	case ClassBranch:
		return fmt.Sprintf("%s r%d, r%d, %d", in.Op, in.Rs1, in.Rs2, in.Imm)
	case ClassJump:
		if in.Op == OpJalr {
			return fmt.Sprintf("jalr r%d, r%d, %d", in.Rd, in.Rs1, in.Imm)
		}
		return fmt.Sprintf("jal r%d, %d", in.Rd, in.Imm)
	}
	switch in.Op {
	case OpAddi, OpAndi, OpOri, OpXori, OpSlli, OpSrli, OpSrai, OpSlti:
		return fmt.Sprintf("%s r%d, r%d, %d", in.Op, in.Rd, in.Rs1, in.Imm)
	case OpLui:
		return fmt.Sprintf("lui r%d, %d", in.Rd, in.Imm)
	}
	return fmt.Sprintf("%s r%d, r%d, r%d", in.Op, in.Rd, in.Rs1, in.Rs2)
}

// Encode packs the instruction into 8 bytes:
// [op][rd][rs1][rs2][imm:int32 little-endian].
func (in Instr) Encode(dst []byte) {
	if len(dst) < InstrBytes {
		panic("isa: encode buffer too short")
	}
	if in.Imm > 1<<31-1 || in.Imm < -(1<<31) {
		panic(fmt.Sprintf("isa: immediate %d does not fit in 32 bits", in.Imm))
	}
	dst[0] = byte(in.Op)
	dst[1] = in.Rd
	dst[2] = in.Rs1
	dst[3] = in.Rs2
	imm := uint32(int32(in.Imm))
	dst[4] = byte(imm)
	dst[5] = byte(imm >> 8)
	dst[6] = byte(imm >> 16)
	dst[7] = byte(imm >> 24)
}

// Decode unpacks an instruction from 8 bytes.
func Decode(src []byte) Instr {
	if len(src) < InstrBytes {
		panic("isa: decode buffer too short")
	}
	imm := int32(uint32(src[4]) | uint32(src[5])<<8 | uint32(src[6])<<16 | uint32(src[7])<<24)
	return Instr{Op: Op(src[0]), Rd: src[1], Rs1: src[2], Rs2: src[3], Imm: int64(imm)}
}

// Program is an assembled code image.
type Program struct {
	Instrs []Instr
	// Base is the virtual address of Instrs[0]; instruction i lives at
	// Base + i*InstrBytes.
	Base uint64
	// Labels maps label names to instruction addresses.
	Labels map[string]uint64
}

// PC returns the address of instruction index i.
func (p *Program) PC(i int) uint64 { return p.Base + uint64(i)*InstrBytes }

// At returns the instruction at address pc, or (Instr{OpHalt}, false) if
// pc is outside the program.
func (p *Program) At(pc uint64) (Instr, bool) {
	if pc < p.Base || (pc-p.Base)%InstrBytes != 0 {
		return Instr{Op: OpHalt}, false
	}
	i := (pc - p.Base) / InstrBytes
	if i >= uint64(len(p.Instrs)) {
		return Instr{Op: OpHalt}, false
	}
	return p.Instrs[i], true
}

// Bytes encodes the whole program.
func (p *Program) Bytes() []byte {
	out := make([]byte, len(p.Instrs)*InstrBytes)
	for i, in := range p.Instrs {
		in.Encode(out[i*InstrBytes:])
	}
	return out
}
