package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(op uint8, rd, rs1, rs2 uint8, imm int32) bool {
		in := Instr{Op: Op(op % uint8(numOps)), Rd: rd % 32, Rs1: rs1 % 32, Rs2: rs2 % 32, Imm: int64(imm)}
		var buf [InstrBytes]byte
		in.Encode(buf[:])
		return Decode(buf[:]) == in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeRejectsBigImm(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("oversized immediate did not panic")
		}
	}()
	var buf [8]byte
	Instr{Op: OpAddi, Imm: 1 << 32}.Encode(buf[:])
}

func TestOpClasses(t *testing.T) {
	cases := map[Op]Class{
		OpAdd: ClassALU, OpMul: ClassMul, OpDiv: ClassDiv, OpRem: ClassDiv,
		OpFadd: ClassFPAdd, OpFmul: ClassFPMul, OpFdiv: ClassFPDiv,
		OpLd: ClassLoad, OpSb: ClassStore, OpBeq: ClassBranch,
		OpJal: ClassJump, OpJalr: ClassJump, OpHalt: ClassHalt, OpNop: ClassNop,
	}
	for op, want := range cases {
		if got := op.Class(); got != want {
			t.Errorf("%v.Class() = %d, want %d", op, got, want)
		}
	}
}

func TestMemBytes(t *testing.T) {
	cases := map[Op]int{OpLd: 8, OpLw: 4, OpLh: 2, OpLb: 1, OpSd: 8, OpSw: 4, OpSh: 2, OpSb: 1, OpAdd: 0}
	for op, want := range cases {
		if got := op.MemBytes(); got != want {
			t.Errorf("%v.MemBytes() = %d, want %d", op, got, want)
		}
	}
}

func TestAssembleBasic(t *testing.T) {
	p, err := Assemble(`
		# simple loop
		addi r1, zero, 10
	loop:
		addi r1, r1, -1
		bne  r1, r0, loop
		halt
	`, 0x1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Instrs) != 4 {
		t.Fatalf("got %d instructions", len(p.Instrs))
	}
	if p.Labels["loop"] != 0x1008 {
		t.Fatalf("loop label at %#x", p.Labels["loop"])
	}
	bne := p.Instrs[2]
	if bne.Op != OpBne || bne.Imm != -8 {
		t.Fatalf("bne = %+v, want PC-relative -8", bne)
	}
}

func TestAssembleMemOperands(t *testing.T) {
	p, err := Assemble(`
		ld r2, 16(r1)
		sd r3, -8(r4)
		lw r5, (r6)
	`, 0)
	if err != nil {
		t.Fatal(err)
	}
	if in := p.Instrs[0]; in.Rd != 2 || in.Rs1 != 1 || in.Imm != 16 {
		t.Fatalf("ld = %+v", in)
	}
	if in := p.Instrs[1]; in.Rs2 != 3 || in.Rs1 != 4 || in.Imm != -8 {
		t.Fatalf("sd = %+v", in)
	}
	if in := p.Instrs[2]; in.Rd != 5 || in.Rs1 != 6 || in.Imm != 0 {
		t.Fatalf("lw = %+v", in)
	}
}

func TestAssembleForwardReference(t *testing.T) {
	p, err := Assemble(`
		beq r0, r0, end
		nop
	end:
		halt
	`, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.Instrs[0].Imm != 16 {
		t.Fatalf("forward branch imm = %d, want 16", p.Instrs[0].Imm)
	}
}

func TestAssembleJumps(t *testing.T) {
	p, err := Assemble(`
	start:
		jal  r31, func
		halt
	func:
		jalr r0, r31, 0
	`, 0x100)
	if err != nil {
		t.Fatal(err)
	}
	if p.Instrs[0].Imm != 16 {
		t.Fatalf("jal imm = %d", p.Instrs[0].Imm)
	}
	if in := p.Instrs[2]; in.Op != OpJalr || in.Rs1 != 31 {
		t.Fatalf("jalr = %+v", in)
	}
}

func TestAssembleHexAndNegative(t *testing.T) {
	p, err := Assemble("addi r1, r0, 0x10\naddi r2, r0, -42", 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.Instrs[0].Imm != 16 || p.Instrs[1].Imm != -42 {
		t.Fatalf("imms = %d, %d", p.Instrs[0].Imm, p.Instrs[1].Imm)
	}
}

func TestAssembleNumericBranchTarget(t *testing.T) {
	p, err := Assemble("beq r1, r2, -16", 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.Instrs[0].Imm != -16 {
		t.Fatalf("imm = %d", p.Instrs[0].Imm)
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []string{
		"frob r1, r2, r3",     // unknown op
		"add r1, r2",          // operand count
		"addi r99, r0, 1",     // bad register
		"addi r1, r0, zzz",    // bad immediate
		"beq r1, r2, nowhere", // undefined label
		"dup: nop\ndup: nop",  // duplicate label
		"ld r1, 8[r2]",        // bad mem operand
		"halt r1",             // operands on halt
		"1bad: nop",           // bad label name
		"ld r1, 8(r2) junk",   // trailing junk
	}
	for _, src := range cases {
		if _, err := Assemble(src, 0); err == nil {
			t.Errorf("Assemble(%q) succeeded, want error", src)
		}
	}
}

func TestMustAssemblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustAssemble on bad source did not panic")
		}
	}()
	MustAssemble("bogus", 0)
}

func TestProgramAt(t *testing.T) {
	p := MustAssemble("nop\nhalt", 0x2000)
	if in, ok := p.At(0x2000); !ok || in.Op != OpNop {
		t.Fatalf("At(base) = %v, %v", in, ok)
	}
	if in, ok := p.At(0x2008); !ok || in.Op != OpHalt {
		t.Fatalf("At(base+8) = %v, %v", in, ok)
	}
	if _, ok := p.At(0x2010); ok {
		t.Fatal("At past end reported ok")
	}
	if _, ok := p.At(0x2004); ok {
		t.Fatal("misaligned At reported ok")
	}
	if _, ok := p.At(0x1000); ok {
		t.Fatal("At below base reported ok")
	}
}

func TestProgramBytesDecode(t *testing.T) {
	p := MustAssemble("addi r1, r0, 7\nhalt", 0)
	b := p.Bytes()
	if len(b) != 2*InstrBytes {
		t.Fatalf("len = %d", len(b))
	}
	if got := Decode(b); got != p.Instrs[0] {
		t.Fatalf("decoded %+v, want %+v", got, p.Instrs[0])
	}
}

func TestDisassembly(t *testing.T) {
	cases := map[string]Instr{
		"add r1, r2, r3":   {Op: OpAdd, Rd: 1, Rs1: 2, Rs2: 3},
		"addi r1, r2, -5":  {Op: OpAddi, Rd: 1, Rs1: 2, Imm: -5},
		"ld r4, 8(r5)":     {Op: OpLd, Rd: 4, Rs1: 5, Imm: 8},
		"sd r6, 0(r7)":     {Op: OpSd, Rs2: 6, Rs1: 7},
		"beq r1, r2, 16":   {Op: OpBeq, Rs1: 1, Rs2: 2, Imm: 16},
		"jal r31, 32":      {Op: OpJal, Rd: 31, Imm: 32},
		"jalr r0, r31, 0":  {Op: OpJalr, Rs1: 31},
		"halt":             {Op: OpHalt},
		"lui r3, 4096":     {Op: OpLui, Rd: 3, Imm: 4096},
	}
	for want, in := range cases {
		if got := in.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}

func TestAssembleDisassembleRoundTrip(t *testing.T) {
	src := `addi r1, r0, 100
add r2, r1, r1
mul r3, r2, r1
ld r4, 16(r3)
sd r4, 24(r3)
beq r1, r2, 16
jal r31, 8
halt`
	p := MustAssemble(src, 0)
	var out []string
	for _, in := range p.Instrs {
		out = append(out, in.String())
	}
	p2 := MustAssemble(strings.Join(out, "\n"), 0)
	for i := range p.Instrs {
		if p.Instrs[i] != p2.Instrs[i] {
			t.Fatalf("instr %d: %+v != %+v", i, p.Instrs[i], p2.Instrs[i])
		}
	}
}
