package isa

import (
	"fmt"
	"strconv"
	"strings"
)

// Assemble translates assembly text into a Program based at base.
//
// Syntax, one statement per line ('#' starts a comment):
//
//	label:                     ; labels may share a line with an instruction
//	add   rd, rs1, rs2         ; register-register ops
//	addi  rd, rs1, imm         ; register-immediate ops (dec, hex, negative)
//	lui   rd, imm
//	ld    rd, imm(rs1)         ; loads
//	sd    rs2, imm(rs1)        ; stores
//	beq   rs1, rs2, label|imm  ; branches, PC-relative
//	jal   rd, label|imm        ; PC-relative call
//	jalr  rd, rs1, imm         ; absolute indirect
//	halt / nop
//
// Registers are r0..r31; "zero" is an alias for r0.
func Assemble(src string, base uint64) (*Program, error) {
	type pending struct {
		instrIdx int
		label    string
		line     int
	}
	p := &Program{Base: base, Labels: make(map[string]uint64)}
	var fixups []pending

	opsByName := make(map[string]Op, numOps)
	for op := Op(0); op < numOps; op++ {
		opsByName[op.String()] = op
	}

	lines := strings.Split(src, "\n")
	for lineNo, raw := range lines {
		line := raw
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		// Peel off any leading labels.
		for {
			colon := strings.IndexByte(line, ':')
			if colon < 0 {
				break
			}
			label := strings.TrimSpace(line[:colon])
			if !isIdent(label) {
				return nil, fmt.Errorf("line %d: bad label %q", lineNo+1, label)
			}
			if _, dup := p.Labels[label]; dup {
				return nil, fmt.Errorf("line %d: duplicate label %q", lineNo+1, label)
			}
			p.Labels[label] = p.PC(len(p.Instrs))
			line = strings.TrimSpace(line[colon+1:])
		}
		if line == "" {
			continue
		}

		fields := strings.SplitN(line, " ", 2)
		mnemonic := strings.ToLower(fields[0])
		op, ok := opsByName[mnemonic]
		if !ok {
			return nil, fmt.Errorf("line %d: unknown opcode %q", lineNo+1, mnemonic)
		}
		var args []string
		if len(fields) > 1 {
			for _, a := range strings.Split(fields[1], ",") {
				args = append(args, strings.TrimSpace(a))
			}
		}

		in := Instr{Op: op}
		var labelRef string
		var err error
		switch op.Class() {
		case ClassNop, ClassHalt:
			if len(args) != 0 {
				err = fmt.Errorf("%s takes no operands", op)
			}
		case ClassLoad:
			err = expect(args, 2)
			if err == nil {
				in.Rd, err = parseReg(args[0])
			}
			if err == nil {
				in.Imm, in.Rs1, err = parseMemOperand(args[1])
			}
		case ClassStore:
			err = expect(args, 2)
			if err == nil {
				in.Rs2, err = parseReg(args[0])
			}
			if err == nil {
				in.Imm, in.Rs1, err = parseMemOperand(args[1])
			}
		case ClassBranch:
			err = expect(args, 3)
			if err == nil {
				in.Rs1, err = parseReg(args[0])
			}
			if err == nil {
				in.Rs2, err = parseReg(args[1])
			}
			if err == nil {
				labelRef, in.Imm, err = parseTarget(args[2])
			}
		case ClassJump:
			if op == OpJal {
				err = expect(args, 2)
				if err == nil {
					in.Rd, err = parseReg(args[0])
				}
				if err == nil {
					labelRef, in.Imm, err = parseTarget(args[1])
				}
			} else { // jalr
				err = expect(args, 3)
				if err == nil {
					in.Rd, err = parseReg(args[0])
				}
				if err == nil {
					in.Rs1, err = parseReg(args[1])
				}
				if err == nil {
					in.Imm, err = parseImm(args[2])
				}
			}
		default:
			switch op {
			case OpLui:
				err = expect(args, 2)
				if err == nil {
					in.Rd, err = parseReg(args[0])
				}
				if err == nil {
					in.Imm, err = parseImm(args[1])
				}
			case OpAddi, OpAndi, OpOri, OpXori, OpSlli, OpSrli, OpSrai, OpSlti:
				err = expect(args, 3)
				if err == nil {
					in.Rd, err = parseReg(args[0])
				}
				if err == nil {
					in.Rs1, err = parseReg(args[1])
				}
				if err == nil {
					in.Imm, err = parseImm(args[2])
				}
			default: // register-register
				err = expect(args, 3)
				if err == nil {
					in.Rd, err = parseReg(args[0])
				}
				if err == nil {
					in.Rs1, err = parseReg(args[1])
				}
				if err == nil {
					in.Rs2, err = parseReg(args[2])
				}
			}
		}
		if err != nil {
			return nil, fmt.Errorf("line %d: %s: %v", lineNo+1, mnemonic, err)
		}
		if labelRef != "" {
			fixups = append(fixups, pending{instrIdx: len(p.Instrs), label: labelRef, line: lineNo + 1})
		}
		p.Instrs = append(p.Instrs, in)
	}

	for _, f := range fixups {
		target, ok := p.Labels[f.label]
		if !ok {
			return nil, fmt.Errorf("line %d: undefined label %q", f.line, f.label)
		}
		p.Instrs[f.instrIdx].Imm = int64(target) - int64(p.PC(f.instrIdx))
	}
	return p, nil
}

// MustAssemble is Assemble for known-good (compiled-in) sources.
func MustAssemble(src string, base uint64) *Program {
	p, err := Assemble(src, base)
	if err != nil {
		panic(err)
	}
	return p
}

func expect(args []string, n int) error {
	if len(args) != n {
		return fmt.Errorf("want %d operands, got %d", n, len(args))
	}
	return nil
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == '.':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func parseReg(s string) (uint8, error) {
	s = strings.ToLower(strings.TrimSpace(s))
	if s == "zero" {
		return 0, nil
	}
	if !strings.HasPrefix(s, "r") {
		return 0, fmt.Errorf("bad register %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n > 31 {
		return 0, fmt.Errorf("bad register %q", s)
	}
	return uint8(n), nil
}

func parseImm(s string) (int64, error) {
	v, err := strconv.ParseInt(strings.TrimSpace(s), 0, 64)
	if err != nil {
		return 0, fmt.Errorf("bad immediate %q", s)
	}
	if v > 1<<31-1 || v < -(1<<31) {
		return 0, fmt.Errorf("immediate %d out of 32-bit range", v)
	}
	return v, nil
}

// parseMemOperand parses "imm(rN)" or "(rN)".
func parseMemOperand(s string) (imm int64, reg uint8, err error) {
	open := strings.IndexByte(s, '(')
	closeP := strings.IndexByte(s, ')')
	if open < 0 || closeP < open {
		return 0, 0, fmt.Errorf("bad memory operand %q", s)
	}
	if strings.TrimSpace(s[closeP+1:]) != "" {
		return 0, 0, fmt.Errorf("trailing junk in %q", s)
	}
	if immStr := strings.TrimSpace(s[:open]); immStr != "" {
		if imm, err = parseImm(immStr); err != nil {
			return 0, 0, err
		}
	}
	reg, err = parseReg(s[open+1 : closeP])
	return imm, reg, err
}

// parseTarget parses either a numeric PC-relative offset or a label name.
func parseTarget(s string) (label string, imm int64, err error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return "", 0, fmt.Errorf("empty target")
	}
	if c := s[0]; c == '-' || c == '+' || (c >= '0' && c <= '9') {
		imm, err = parseImm(s)
		return "", imm, err
	}
	if !isIdent(s) {
		return "", 0, fmt.Errorf("bad target %q", s)
	}
	return s, 0, nil
}
