// Package aes implements the AES (Rijndael) block cipher from scratch,
// per FIPS-197, for key sizes of 128, 192 and 256 bits.
//
// The paper's crypto engine is a fully pipelined hardware AES-256 unit;
// this package provides the functional half of that engine (the timing
// half lives in internal/cryptoengine). The S-box and its inverse are
// generated at init time from the GF(2^8) multiplicative inverse and the
// affine transform, rather than embedded as opaque tables, so the tests
// can cross-check the construction against the published constants.
//
// Two implementations share the derived tables: a byte-wise reference
// (EncryptReference/DecryptReference) that applies SubBytes, ShiftRows
// and MixColumns as separate auditable steps, and the production T-table
// path (Encrypt/Decrypt) whose four fused lookup tables are generated at
// init from that same S-box/gmul construction. The tests assert the two
// paths agree on the FIPS-197 known-answer vectors and on random blocks,
// so the fast path inherits the reference's auditability. The simulator
// really encrypts every memory block it touches — mispredicted pads are
// computed and discarded exactly as the hardware would — which is why the
// fast path matters.
package aes

import (
	"encoding/binary"
	"fmt"
)

// BlockSize is the AES block size in bytes.
const BlockSize = 16

// KeySize constants for the three AES variants, in bytes.
const (
	KeySize128 = 16
	KeySize192 = 24
	KeySize256 = 32
)

var (
	sbox    [256]byte
	invSbox [256]byte
	// rcon[i] is the round constant for key expansion round i (1-based).
	rcon [15]byte
	// Precomputed GF(2^8) multiplication tables for the (inv)MixColumns
	// coefficients; computed once from gmul so the hot path is lookups.
	mul2, mul3, mul9, mul11, mul13, mul14 [256]byte
	// T-tables: each entry fuses SubBytes, ShiftRows and MixColumns for
	// one state byte's contribution to an output column, so a round is
	// 16 lookups and 16 XORs instead of byte-wise transforms. They are
	// derived at init from the same S-box/gmul construction the byte-wise
	// reference uses (never embedded as opaque constants) and the tests
	// cross-check the two paths block-for-block, preserving the package's
	// auditability story. te1..te3/td1..td3 are byte rotations of te0/td0.
	te0, te1, te2, te3 [256]uint32
	td0, td1, td2, td3 [256]uint32
)

func init() {
	initSbox()
	initRcon()
	for i := 0; i < 256; i++ {
		b := byte(i)
		mul2[i] = gmul(b, 2)
		mul3[i] = gmul(b, 3)
		mul9[i] = gmul(b, 9)
		mul11[i] = gmul(b, 11)
		mul13[i] = gmul(b, 13)
		mul14[i] = gmul(b, 14)
	}
	initTTables()
}

// initTTables derives the fused round tables from the S-box and the
// MixColumns coefficient tables. te0[x] is MixColumns applied to the
// column (sbox[x], 0, 0, 0); td0[x] is InvMixColumns applied to
// (invSbox[x], 0, 0, 0). The other three tables of each set serve the
// remaining rows and are plain byte rotations.
func initTTables() {
	rotr8 := func(w uint32) uint32 { return w>>8 | w<<24 }
	for i := 0; i < 256; i++ {
		s := sbox[i]
		te0[i] = uint32(mul2[s])<<24 | uint32(s)<<16 | uint32(s)<<8 | uint32(mul3[s])
		te1[i] = rotr8(te0[i])
		te2[i] = rotr8(te1[i])
		te3[i] = rotr8(te2[i])
		v := invSbox[i]
		td0[i] = uint32(mul14[v])<<24 | uint32(mul9[v])<<16 | uint32(mul13[v])<<8 | uint32(mul11[v])
		td1[i] = rotr8(td0[i])
		td2[i] = rotr8(td1[i])
		td3[i] = rotr8(td2[i])
	}
}

// xtime multiplies a field element by x (i.e., 2) in GF(2^8) with the AES
// reduction polynomial x^8 + x^4 + x^3 + x + 1 (0x11b).
func xtime(b byte) byte {
	if b&0x80 != 0 {
		return b<<1 ^ 0x1b
	}
	return b << 1
}

// gmul multiplies two field elements in GF(2^8).
func gmul(a, b byte) byte {
	var p byte
	for i := 0; i < 8; i++ {
		if b&1 != 0 {
			p ^= a
		}
		a = xtime(a)
		b >>= 1
	}
	return p
}

// initSbox derives the AES S-box: byte inverse in GF(2^8) followed by the
// affine transform b ^ rot(b,1) ^ rot(b,2) ^ rot(b,3) ^ rot(b,4) ^ 0x63.
func initSbox() {
	// Build inverses by brute force; 256^2 work, done once.
	var inv [256]byte
	for a := 1; a < 256; a++ {
		for b := 1; b < 256; b++ {
			if gmul(byte(a), byte(b)) == 1 {
				inv[a] = byte(b)
				break
			}
		}
	}
	rotl8 := func(b byte, n uint) byte { return b<<n | b>>(8-n) }
	for i := 0; i < 256; i++ {
		b := inv[i]
		s := b ^ rotl8(b, 1) ^ rotl8(b, 2) ^ rotl8(b, 3) ^ rotl8(b, 4) ^ 0x63
		sbox[i] = s
		invSbox[s] = byte(i)
	}
}

func initRcon() {
	c := byte(1)
	for i := 1; i < len(rcon); i++ {
		rcon[i] = c
		c = xtime(c)
	}
}

// Cipher is an AES cipher instance with an expanded key schedule. It is
// safe for concurrent use by multiple goroutines once created.
type Cipher struct {
	rounds int
	// enc and dec hold the round keys as 4-byte words, 4*(rounds+1) each.
	enc []uint32
	dec []uint32
}

// KeySizeError reports an invalid AES key length.
type KeySizeError int

func (k KeySizeError) Error() string {
	return fmt.Sprintf("aes: invalid key size %d (want 16, 24 or 32)", int(k))
}

// New creates a Cipher for the given 16-, 24- or 32-byte key.
func New(key []byte) (*Cipher, error) {
	var rounds int
	switch len(key) {
	case KeySize128:
		rounds = 10
	case KeySize192:
		rounds = 12
	case KeySize256:
		rounds = 14
	default:
		return nil, KeySizeError(len(key))
	}
	c := &Cipher{rounds: rounds}
	c.expandKey(key)
	return c, nil
}

// Must256 creates an AES-256 Cipher from a 32-byte key and panics on
// error. It is a convenience for the simulator, whose keys are always
// generated at the right length.
func Must256(key [32]byte) *Cipher {
	c, err := New(key[:])
	if err != nil {
		panic(err) // unreachable: key is 32 bytes by construction
	}
	return c
}

// Rounds reports the number of AES rounds for this key size (10/12/14).
func (c *Cipher) Rounds() int { return c.rounds }

func subWord(w uint32) uint32 {
	return uint32(sbox[w>>24])<<24 |
		uint32(sbox[w>>16&0xff])<<16 |
		uint32(sbox[w>>8&0xff])<<8 |
		uint32(sbox[w&0xff])
}

func rotWord(w uint32) uint32 { return w<<8 | w>>24 }

// expandKey builds the encryption and decryption key schedules.
func (c *Cipher) expandKey(key []byte) {
	nk := len(key) / 4
	n := 4 * (c.rounds + 1)
	c.enc = make([]uint32, n)
	for i := 0; i < nk; i++ {
		c.enc[i] = binary.BigEndian.Uint32(key[4*i:])
	}
	for i := nk; i < n; i++ {
		t := c.enc[i-1]
		switch {
		case i%nk == 0:
			t = subWord(rotWord(t)) ^ uint32(rcon[i/nk])<<24
		case nk > 6 && i%nk == 4:
			t = subWord(t)
		}
		c.enc[i] = c.enc[i-nk] ^ t
	}

	// Decryption schedule: reversed round keys with InvMixColumns applied
	// to the middle rounds (equivalent inverse cipher, FIPS-197 §5.3.5).
	c.dec = make([]uint32, n)
	for i := 0; i < n; i += 4 {
		src := n - i - 4
		for j := 0; j < 4; j++ {
			w := c.enc[src+j]
			if i > 0 && i+4 < n {
				w = invMixColumnsWord(w)
			}
			c.dec[i+j] = w
		}
	}
}

// state is the 4x4 AES state held column-major in four words, matching
// the key schedule layout: word i is column i, byte 0 is row 0.
type state [4]uint32

func loadState(src []byte) state {
	var s state
	for i := 0; i < 4; i++ {
		s[i] = binary.BigEndian.Uint32(src[4*i:])
	}
	return s
}

func (s *state) store(dst []byte) {
	for i := 0; i < 4; i++ {
		binary.BigEndian.PutUint32(dst[4*i:], s[i])
	}
}

func (s *state) addRoundKey(rk []uint32) {
	s[0] ^= rk[0]
	s[1] ^= rk[1]
	s[2] ^= rk[2]
	s[3] ^= rk[3]
}

func (s *state) subBytes(box *[256]byte) {
	for i := 0; i < 4; i++ {
		w := s[i]
		s[i] = uint32(box[w>>24])<<24 |
			uint32(box[w>>16&0xff])<<16 |
			uint32(box[w>>8&0xff])<<8 |
			uint32(box[w&0xff])
	}
}

// byteAt returns row r of column word w (row 0 = most significant byte).
func byteAt(w uint32, r uint) byte { return byte(w >> (24 - 8*r)) }

// shiftRows cyclically shifts row r left by r positions.
func (s *state) shiftRows() {
	var out state
	for col := 0; col < 4; col++ {
		out[col] = uint32(byteAt(s[col], 0))<<24 |
			uint32(byteAt(s[(col+1)%4], 1))<<16 |
			uint32(byteAt(s[(col+2)%4], 2))<<8 |
			uint32(byteAt(s[(col+3)%4], 3))
	}
	*s = out
}

// invShiftRows cyclically shifts row r right by r positions.
func (s *state) invShiftRows() {
	var out state
	for col := 0; col < 4; col++ {
		out[col] = uint32(byteAt(s[col], 0))<<24 |
			uint32(byteAt(s[(col+3)%4], 1))<<16 |
			uint32(byteAt(s[(col+2)%4], 2))<<8 |
			uint32(byteAt(s[(col+1)%4], 3))
	}
	*s = out
}

func mixColumnsWord(w uint32) uint32 {
	a0, a1, a2, a3 := byteAt(w, 0), byteAt(w, 1), byteAt(w, 2), byteAt(w, 3)
	return uint32(mul2[a0]^mul3[a1]^a2^a3)<<24 |
		uint32(a0^mul2[a1]^mul3[a2]^a3)<<16 |
		uint32(a0^a1^mul2[a2]^mul3[a3])<<8 |
		uint32(mul3[a0]^a1^a2^mul2[a3])
}

func invMixColumnsWord(w uint32) uint32 {
	a0, a1, a2, a3 := byteAt(w, 0), byteAt(w, 1), byteAt(w, 2), byteAt(w, 3)
	return uint32(mul14[a0]^mul11[a1]^mul13[a2]^mul9[a3])<<24 |
		uint32(mul9[a0]^mul14[a1]^mul11[a2]^mul13[a3])<<16 |
		uint32(mul13[a0]^mul9[a1]^mul14[a2]^mul11[a3])<<8 |
		uint32(mul11[a0]^mul13[a1]^mul9[a2]^mul14[a3])
}

func (s *state) mixColumns() {
	for i := 0; i < 4; i++ {
		s[i] = mixColumnsWord(s[i])
	}
}

func (s *state) invMixColumns() {
	for i := 0; i < 4; i++ {
		s[i] = invMixColumnsWord(s[i])
	}
}

// Encrypt encrypts the 16-byte block src into dst via the T-table fast
// path. dst and src may overlap entirely (in-place) but must each be at
// least BlockSize long.
func (c *Cipher) Encrypt(dst, src []byte) {
	if len(src) < BlockSize || len(dst) < BlockSize {
		panic("aes: input or output block too short")
	}
	s0 := binary.BigEndian.Uint32(src[0:4])
	s1 := binary.BigEndian.Uint32(src[4:8])
	s2 := binary.BigEndian.Uint32(src[8:12])
	s3 := binary.BigEndian.Uint32(src[12:16])
	s0, s1, s2, s3 = c.EncryptWords(s0, s1, s2, s3)
	binary.BigEndian.PutUint32(dst[0:4], s0)
	binary.BigEndian.PutUint32(dst[4:8], s1)
	binary.BigEndian.PutUint32(dst[8:12], s2)
	binary.BigEndian.PutUint32(dst[12:16], s3)
}

// EncryptWords encrypts one block given (and returning) the four
// big-endian column words of the state. It is the allocation-free core
// of Encrypt, exposed so counter-mode pad generation can keep the whole
// block in registers.
func (c *Cipher) EncryptWords(s0, s1, s2, s3 uint32) (uint32, uint32, uint32, uint32) {
	rk := c.enc
	s0 ^= rk[0]
	s1 ^= rk[1]
	s2 ^= rk[2]
	s3 ^= rk[3]
	k := 4
	for r := 1; r < c.rounds; r++ {
		t0 := te0[s0>>24] ^ te1[s1>>16&0xff] ^ te2[s2>>8&0xff] ^ te3[s3&0xff] ^ rk[k+0]
		t1 := te0[s1>>24] ^ te1[s2>>16&0xff] ^ te2[s3>>8&0xff] ^ te3[s0&0xff] ^ rk[k+1]
		t2 := te0[s2>>24] ^ te1[s3>>16&0xff] ^ te2[s0>>8&0xff] ^ te3[s1&0xff] ^ rk[k+2]
		t3 := te0[s3>>24] ^ te1[s0>>16&0xff] ^ te2[s1>>8&0xff] ^ te3[s2&0xff] ^ rk[k+3]
		s0, s1, s2, s3 = t0, t1, t2, t3
		k += 4
	}
	// Final round: SubBytes and ShiftRows only.
	t0 := uint32(sbox[s0>>24])<<24 | uint32(sbox[s1>>16&0xff])<<16 | uint32(sbox[s2>>8&0xff])<<8 | uint32(sbox[s3&0xff])
	t1 := uint32(sbox[s1>>24])<<24 | uint32(sbox[s2>>16&0xff])<<16 | uint32(sbox[s3>>8&0xff])<<8 | uint32(sbox[s0&0xff])
	t2 := uint32(sbox[s2>>24])<<24 | uint32(sbox[s3>>16&0xff])<<16 | uint32(sbox[s0>>8&0xff])<<8 | uint32(sbox[s1&0xff])
	t3 := uint32(sbox[s3>>24])<<24 | uint32(sbox[s0>>16&0xff])<<16 | uint32(sbox[s1>>8&0xff])<<8 | uint32(sbox[s2&0xff])
	return t0 ^ rk[k+0], t1 ^ rk[k+1], t2 ^ rk[k+2], t3 ^ rk[k+3]
}

// EncryptWords2 encrypts two independent blocks through one interleaved
// round loop. AES rounds are a serial dependence chain — each T-table
// lookup needs the previous round's words — so a single block leaves the
// core's load ports idle between rounds. Interleaving two blocks gives
// the scheduler a second independent chain to overlap, which is the
// software analogue of the paper's pipelined crypto engine accepting a
// new block per cycle. Counter-mode pads are the natural caller: every
// 32-byte line wants exactly two block encryptions.
func (c *Cipher) EncryptWords2(a0, a1, a2, a3, b0, b1, b2, b3 uint32) (uint32, uint32, uint32, uint32, uint32, uint32, uint32, uint32) {
	rk := c.enc
	a0 ^= rk[0]
	a1 ^= rk[1]
	a2 ^= rk[2]
	a3 ^= rk[3]
	b0 ^= rk[0]
	b1 ^= rk[1]
	b2 ^= rk[2]
	b3 ^= rk[3]
	k := 4
	for r := 1; r < c.rounds; r++ {
		k0, k1, k2, k3 := rk[k+0], rk[k+1], rk[k+2], rk[k+3]
		u0 := te0[a0>>24] ^ te1[a1>>16&0xff] ^ te2[a2>>8&0xff] ^ te3[a3&0xff] ^ k0
		u1 := te0[a1>>24] ^ te1[a2>>16&0xff] ^ te2[a3>>8&0xff] ^ te3[a0&0xff] ^ k1
		u2 := te0[a2>>24] ^ te1[a3>>16&0xff] ^ te2[a0>>8&0xff] ^ te3[a1&0xff] ^ k2
		u3 := te0[a3>>24] ^ te1[a0>>16&0xff] ^ te2[a1>>8&0xff] ^ te3[a2&0xff] ^ k3
		v0 := te0[b0>>24] ^ te1[b1>>16&0xff] ^ te2[b2>>8&0xff] ^ te3[b3&0xff] ^ k0
		v1 := te0[b1>>24] ^ te1[b2>>16&0xff] ^ te2[b3>>8&0xff] ^ te3[b0&0xff] ^ k1
		v2 := te0[b2>>24] ^ te1[b3>>16&0xff] ^ te2[b0>>8&0xff] ^ te3[b1&0xff] ^ k2
		v3 := te0[b3>>24] ^ te1[b0>>16&0xff] ^ te2[b1>>8&0xff] ^ te3[b2&0xff] ^ k3
		a0, a1, a2, a3 = u0, u1, u2, u3
		b0, b1, b2, b3 = v0, v1, v2, v3
		k += 4
	}
	k0, k1, k2, k3 := rk[k+0], rk[k+1], rk[k+2], rk[k+3]
	u0 := uint32(sbox[a0>>24])<<24 | uint32(sbox[a1>>16&0xff])<<16 | uint32(sbox[a2>>8&0xff])<<8 | uint32(sbox[a3&0xff])
	u1 := uint32(sbox[a1>>24])<<24 | uint32(sbox[a2>>16&0xff])<<16 | uint32(sbox[a3>>8&0xff])<<8 | uint32(sbox[a0&0xff])
	u2 := uint32(sbox[a2>>24])<<24 | uint32(sbox[a3>>16&0xff])<<16 | uint32(sbox[a0>>8&0xff])<<8 | uint32(sbox[a1&0xff])
	u3 := uint32(sbox[a3>>24])<<24 | uint32(sbox[a0>>16&0xff])<<16 | uint32(sbox[a1>>8&0xff])<<8 | uint32(sbox[a2&0xff])
	v0 := uint32(sbox[b0>>24])<<24 | uint32(sbox[b1>>16&0xff])<<16 | uint32(sbox[b2>>8&0xff])<<8 | uint32(sbox[b3&0xff])
	v1 := uint32(sbox[b1>>24])<<24 | uint32(sbox[b2>>16&0xff])<<16 | uint32(sbox[b3>>8&0xff])<<8 | uint32(sbox[b0&0xff])
	v2 := uint32(sbox[b2>>24])<<24 | uint32(sbox[b3>>16&0xff])<<16 | uint32(sbox[b0>>8&0xff])<<8 | uint32(sbox[b1&0xff])
	v3 := uint32(sbox[b3>>24])<<24 | uint32(sbox[b0>>16&0xff])<<16 | uint32(sbox[b1>>8&0xff])<<8 | uint32(sbox[b2&0xff])
	return u0 ^ k0, u1 ^ k1, u2 ^ k2, u3 ^ k3, v0 ^ k0, v1 ^ k1, v2 ^ k2, v3 ^ k3
}

// EncryptBlocks encrypts len(src)/BlockSize consecutive blocks from src
// into dst — the batch API behind speculative pad precomputation, where
// one L2 miss wants pads for every guessed counter at once. Blocks are
// processed in pairs through the interleaved EncryptWords2 path (an odd
// trailing block takes the single-block path). dst may alias src; both
// lengths must be multiples of BlockSize with dst at least as long.
func (c *Cipher) EncryptBlocks(dst, src []byte) {
	if len(src)%BlockSize != 0 || len(dst) < len(src) {
		panic("aes: EncryptBlocks input not block-aligned or output too short")
	}
	n := len(src) / BlockSize
	i := 0
	for ; i+1 < n; i += 2 {
		o := i * BlockSize
		a0 := binary.BigEndian.Uint32(src[o+0:])
		a1 := binary.BigEndian.Uint32(src[o+4:])
		a2 := binary.BigEndian.Uint32(src[o+8:])
		a3 := binary.BigEndian.Uint32(src[o+12:])
		b0 := binary.BigEndian.Uint32(src[o+16:])
		b1 := binary.BigEndian.Uint32(src[o+20:])
		b2 := binary.BigEndian.Uint32(src[o+24:])
		b3 := binary.BigEndian.Uint32(src[o+28:])
		a0, a1, a2, a3, b0, b1, b2, b3 = c.EncryptWords2(a0, a1, a2, a3, b0, b1, b2, b3)
		binary.BigEndian.PutUint32(dst[o+0:], a0)
		binary.BigEndian.PutUint32(dst[o+4:], a1)
		binary.BigEndian.PutUint32(dst[o+8:], a2)
		binary.BigEndian.PutUint32(dst[o+12:], a3)
		binary.BigEndian.PutUint32(dst[o+16:], b0)
		binary.BigEndian.PutUint32(dst[o+20:], b1)
		binary.BigEndian.PutUint32(dst[o+24:], b2)
		binary.BigEndian.PutUint32(dst[o+28:], b3)
	}
	if i < n {
		c.Encrypt(dst[i*BlockSize:], src[i*BlockSize:])
	}
}

// Decrypt decrypts the 16-byte block src into dst using the equivalent
// inverse cipher over the inverse T-tables. dst and src may overlap
// entirely.
func (c *Cipher) Decrypt(dst, src []byte) {
	if len(src) < BlockSize || len(dst) < BlockSize {
		panic("aes: input or output block too short")
	}
	rk := c.dec
	s0 := binary.BigEndian.Uint32(src[0:4]) ^ rk[0]
	s1 := binary.BigEndian.Uint32(src[4:8]) ^ rk[1]
	s2 := binary.BigEndian.Uint32(src[8:12]) ^ rk[2]
	s3 := binary.BigEndian.Uint32(src[12:16]) ^ rk[3]
	k := 4
	for r := 1; r < c.rounds; r++ {
		t0 := td0[s0>>24] ^ td1[s3>>16&0xff] ^ td2[s2>>8&0xff] ^ td3[s1&0xff] ^ rk[k+0]
		t1 := td0[s1>>24] ^ td1[s0>>16&0xff] ^ td2[s3>>8&0xff] ^ td3[s2&0xff] ^ rk[k+1]
		t2 := td0[s2>>24] ^ td1[s1>>16&0xff] ^ td2[s0>>8&0xff] ^ td3[s3&0xff] ^ rk[k+2]
		t3 := td0[s3>>24] ^ td1[s2>>16&0xff] ^ td2[s1>>8&0xff] ^ td3[s0&0xff] ^ rk[k+3]
		s0, s1, s2, s3 = t0, t1, t2, t3
		k += 4
	}
	t0 := uint32(invSbox[s0>>24])<<24 | uint32(invSbox[s3>>16&0xff])<<16 | uint32(invSbox[s2>>8&0xff])<<8 | uint32(invSbox[s1&0xff])
	t1 := uint32(invSbox[s1>>24])<<24 | uint32(invSbox[s0>>16&0xff])<<16 | uint32(invSbox[s3>>8&0xff])<<8 | uint32(invSbox[s2&0xff])
	t2 := uint32(invSbox[s2>>24])<<24 | uint32(invSbox[s1>>16&0xff])<<16 | uint32(invSbox[s0>>8&0xff])<<8 | uint32(invSbox[s3&0xff])
	t3 := uint32(invSbox[s3>>24])<<24 | uint32(invSbox[s2>>16&0xff])<<16 | uint32(invSbox[s1>>8&0xff])<<8 | uint32(invSbox[s0&0xff])
	binary.BigEndian.PutUint32(dst[0:4], t0^rk[k+0])
	binary.BigEndian.PutUint32(dst[4:8], t1^rk[k+1])
	binary.BigEndian.PutUint32(dst[8:12], t2^rk[k+2])
	binary.BigEndian.PutUint32(dst[12:16], t3^rk[k+3])
}

// EncryptReference is the byte-wise FIPS-197 reference implementation of
// Encrypt: SubBytes, ShiftRows, MixColumns and AddRoundKey applied as
// separate auditable steps. The tests assert Encrypt ≡ EncryptReference
// over the FIPS known-answer vectors and random blocks; the simulator
// never calls it on a hot path.
func (c *Cipher) EncryptReference(dst, src []byte) {
	if len(src) < BlockSize || len(dst) < BlockSize {
		panic("aes: input or output block too short")
	}
	s := loadState(src)
	s.addRoundKey(c.enc[0:4])
	for r := 1; r < c.rounds; r++ {
		s.subBytes(&sbox)
		s.shiftRows()
		s.mixColumns()
		s.addRoundKey(c.enc[4*r : 4*r+4])
	}
	s.subBytes(&sbox)
	s.shiftRows()
	s.addRoundKey(c.enc[4*c.rounds : 4*c.rounds+4])
	s.store(dst)
}

// DecryptReference is the byte-wise equivalent-inverse-cipher reference
// implementation of Decrypt (see EncryptReference).
func (c *Cipher) DecryptReference(dst, src []byte) {
	if len(src) < BlockSize || len(dst) < BlockSize {
		panic("aes: input or output block too short")
	}
	s := loadState(src)
	s.addRoundKey(c.dec[0:4])
	for r := 1; r < c.rounds; r++ {
		s.subBytes(&invSbox)
		s.invShiftRows()
		s.invMixColumns()
		s.addRoundKey(c.dec[4*r : 4*r+4])
	}
	s.subBytes(&invSbox)
	s.invShiftRows()
	s.addRoundKey(c.dec[4*c.rounds : 4*c.rounds+4])
	s.store(dst)
}

// EncryptBlock is a convenience wrapper over Encrypt for array blocks.
func (c *Cipher) EncryptBlock(src [BlockSize]byte) [BlockSize]byte {
	var out [BlockSize]byte
	c.Encrypt(out[:], src[:])
	return out
}

// Sbox returns the value of the AES S-box at i (exported for the tests of
// packages that model the hardware datapath).
func Sbox(i byte) byte { return sbox[i] }

// InvSbox returns the value of the inverse S-box at i.
func InvSbox(i byte) byte { return invSbox[i] }
