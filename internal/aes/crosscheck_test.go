package aes

import (
	"bytes"
	"testing"

	"ctrpred/internal/rng"
)

// TestReferenceFIPS197Vectors runs the Appendix C known-answer vectors
// through the byte-wise reference path for all three key sizes, so the
// reference stays a valid oracle for the cross-check below.
func TestReferenceFIPS197Vectors(t *testing.T) {
	for _, v := range fipsVectors {
		key := unhex(t, v.key)
		c, err := New(key)
		if err != nil {
			t.Fatalf("New(%d-byte key): %v", len(key), err)
		}
		got := make([]byte, BlockSize)
		c.EncryptReference(got, unhex(t, v.plain))
		if want := unhex(t, v.cipher); !bytes.Equal(got, want) {
			t.Errorf("AES-%d reference encrypt = %x, want %x", len(key)*8, got, want)
		}
		dec := make([]byte, BlockSize)
		c.DecryptReference(dec, unhex(t, v.cipher))
		if want := unhex(t, v.plain); !bytes.Equal(dec, want) {
			t.Errorf("AES-%d reference decrypt = %x, want %x", len(key)*8, dec, want)
		}
	}
}

// TestTTableMatchesReference cross-checks the T-table production path
// against the byte-wise reference on 10k random blocks per key size, in
// both directions. The T-tables are derived from the same S-box/gmul
// construction as the reference, so disagreement anywhere means a table
// derivation bug.
func TestTTableMatchesReference(t *testing.T) {
	const blocks = 10_000
	r := rng.New(0x7ab1e5)
	for _, keyLen := range []int{KeySize128, KeySize192, KeySize256} {
		key := make([]byte, keyLen)
		for i := range key {
			key[i] = byte(r.Uint64())
		}
		c, err := New(key)
		if err != nil {
			t.Fatal(err)
		}
		var src, fast, ref [BlockSize]byte
		for n := 0; n < blocks; n++ {
			for i := 0; i < BlockSize; i += 8 {
				v := r.Uint64()
				for j := 0; j < 8; j++ {
					src[i+j] = byte(v >> (8 * j))
				}
			}
			c.Encrypt(fast[:], src[:])
			c.EncryptReference(ref[:], src[:])
			if fast != ref {
				t.Fatalf("AES-%d block %d: T-table encrypt %x != reference %x (src %x)",
					keyLen*8, n, fast, ref, src)
			}
			c.Decrypt(fast[:], src[:])
			c.DecryptReference(ref[:], src[:])
			if fast != ref {
				t.Fatalf("AES-%d block %d: T-table decrypt %x != reference %x (src %x)",
					keyLen*8, n, fast, ref, src)
			}
		}
	}
}

// TestEncryptWordsMatchesEncrypt pins the word-level API (used by the
// counter-mode pad path) to the byte-slice API.
func TestEncryptWordsMatchesEncrypt(t *testing.T) {
	r := rng.New(42)
	var key [32]byte
	for i := range key {
		key[i] = byte(r.Uint64())
	}
	c := Must256(key)
	for n := 0; n < 1000; n++ {
		var src [BlockSize]byte
		for i := range src {
			src[i] = byte(r.Uint64())
		}
		want := c.EncryptBlock(src)
		s0 := uint32(src[0])<<24 | uint32(src[1])<<16 | uint32(src[2])<<8 | uint32(src[3])
		s1 := uint32(src[4])<<24 | uint32(src[5])<<16 | uint32(src[6])<<8 | uint32(src[7])
		s2 := uint32(src[8])<<24 | uint32(src[9])<<16 | uint32(src[10])<<8 | uint32(src[11])
		s3 := uint32(src[12])<<24 | uint32(src[13])<<16 | uint32(src[14])<<8 | uint32(src[15])
		w0, w1, w2, w3 := c.EncryptWords(s0, s1, s2, s3)
		var got [BlockSize]byte
		for i, w := range [4]uint32{w0, w1, w2, w3} {
			got[4*i] = byte(w >> 24)
			got[4*i+1] = byte(w >> 16)
			got[4*i+2] = byte(w >> 8)
			got[4*i+3] = byte(w)
		}
		if got != want {
			t.Fatalf("block %d: EncryptWords %x != Encrypt %x", n, got, want)
		}
	}
}

func BenchmarkEncryptReference256(b *testing.B) {
	c := Must256([32]byte{1})
	var block [16]byte
	b.SetBytes(16)
	for i := 0; i < b.N; i++ {
		c.EncryptReference(block[:], block[:])
	}
}
