package aes

import (
	"bytes"
	"encoding/hex"
	"testing"
	"testing/quick"
)

func unhex(t *testing.T, s string) []byte {
	t.Helper()
	b, err := hex.DecodeString(s)
	if err != nil {
		t.Fatalf("bad hex %q: %v", s, err)
	}
	return b
}

// FIPS-197 Appendix C known-answer vectors.
var fipsVectors = []struct {
	key, plain, cipher string
}{
	{
		"000102030405060708090a0b0c0d0e0f",
		"00112233445566778899aabbccddeeff",
		"69c4e0d86a7b0430d8cdb78070b4c55a",
	},
	{
		"000102030405060708090a0b0c0d0e0f1011121314151617",
		"00112233445566778899aabbccddeeff",
		"dda97ca4864cdfe06eaf70a0ec0d7191",
	},
	{
		"000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f",
		"00112233445566778899aabbccddeeff",
		"8ea2b7ca516745bfeafc49904b496089",
	},
}

func TestFIPS197Vectors(t *testing.T) {
	for _, v := range fipsVectors {
		key := unhex(t, v.key)
		c, err := New(key)
		if err != nil {
			t.Fatalf("New(%d-byte key): %v", len(key), err)
		}
		got := make([]byte, BlockSize)
		c.Encrypt(got, unhex(t, v.plain))
		if want := unhex(t, v.cipher); !bytes.Equal(got, want) {
			t.Errorf("AES-%d encrypt = %x, want %x", len(key)*8, got, want)
		}
		dec := make([]byte, BlockSize)
		c.Decrypt(dec, unhex(t, v.cipher))
		if want := unhex(t, v.plain); !bytes.Equal(dec, want) {
			t.Errorf("AES-%d decrypt = %x, want %x", len(key)*8, dec, want)
		}
	}
}

// FIPS-197 Appendix B walks AES-128 with a different key/plaintext pair.
func TestFIPS197AppendixB(t *testing.T) {
	c, err := New(unhex(t, "2b7e151628aed2a6abf7158809cf4f3c"))
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, BlockSize)
	c.Encrypt(got, unhex(t, "3243f6a8885a308d313198a2e0370734"))
	if want := unhex(t, "3925841d02dc09fbdc118597196a0b32"); !bytes.Equal(got, want) {
		t.Fatalf("encrypt = %x, want %x", got, want)
	}
}

func TestSboxKnownEntries(t *testing.T) {
	// Spot-check the generated S-box against published values.
	cases := map[byte]byte{
		0x00: 0x63, 0x01: 0x7c, 0x53: 0xed, 0xff: 0x16, 0x9a: 0xb8,
	}
	for in, want := range cases {
		if got := Sbox(in); got != want {
			t.Errorf("sbox[%#02x] = %#02x, want %#02x", in, got, want)
		}
	}
	if got := InvSbox(0x63); got != 0x00 {
		t.Errorf("invSbox[0x63] = %#02x, want 0", got)
	}
}

func TestSboxInverseProperty(t *testing.T) {
	for i := 0; i < 256; i++ {
		if got := InvSbox(Sbox(byte(i))); got != byte(i) {
			t.Fatalf("invSbox(sbox(%#02x)) = %#02x", i, got)
		}
	}
}

func TestSboxIsPermutation(t *testing.T) {
	var seen [256]bool
	for i := 0; i < 256; i++ {
		v := Sbox(byte(i))
		if seen[v] {
			t.Fatalf("sbox value %#02x duplicated", v)
		}
		seen[v] = true
	}
}

func TestInvalidKeySizes(t *testing.T) {
	for _, n := range []int{0, 1, 15, 17, 31, 33, 64} {
		if _, err := New(make([]byte, n)); err == nil {
			t.Errorf("New(%d-byte key) succeeded, want error", n)
		} else if _, ok := err.(KeySizeError); !ok {
			t.Errorf("New(%d) error type %T, want KeySizeError", n, err)
		}
	}
	if got := KeySizeError(5).Error(); got == "" {
		t.Error("empty KeySizeError message")
	}
}

func TestRounds(t *testing.T) {
	for _, tc := range []struct{ keyLen, rounds int }{{16, 10}, {24, 12}, {32, 14}} {
		c, err := New(make([]byte, tc.keyLen))
		if err != nil {
			t.Fatal(err)
		}
		if c.Rounds() != tc.rounds {
			t.Errorf("Rounds(%d-byte key) = %d, want %d", tc.keyLen, c.Rounds(), tc.rounds)
		}
	}
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	f := func(key [32]byte, block [16]byte) bool {
		c := Must256(key)
		enc := c.EncryptBlock(block)
		var dec [16]byte
		c.Decrypt(dec[:], enc[:])
		return dec == block
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEncryptInPlace(t *testing.T) {
	c := Must256([32]byte{1, 2, 3})
	buf := []byte("0123456789abcdef")
	want := make([]byte, 16)
	c.Encrypt(want, buf)
	c.Encrypt(buf, buf)
	if !bytes.Equal(buf, want) {
		t.Fatal("in-place encryption differs from out-of-place")
	}
}

func TestEncryptAvalanche(t *testing.T) {
	// Flipping one plaintext bit should flip roughly half the ciphertext
	// bits — the property that makes OTP pads unlinkable across counters.
	c := Must256([32]byte{0xaa})
	var p0, p1 [16]byte
	p1[0] = 0x01
	c0, c1 := c.EncryptBlock(p0), c.EncryptBlock(p1)
	diff := 0
	for i := range c0 {
		x := c0[i] ^ c1[i]
		for x != 0 {
			diff += int(x & 1)
			x >>= 1
		}
	}
	if diff < 30 || diff > 98 {
		t.Fatalf("avalanche: %d/128 bits differ, want ≈64", diff)
	}
}

func TestShortBufferPanics(t *testing.T) {
	c := Must256([32]byte{})
	for _, f := range []func(){
		func() { c.Encrypt(make([]byte, 16), make([]byte, 15)) },
		func() { c.Encrypt(make([]byte, 15), make([]byte, 16)) },
		func() { c.Decrypt(make([]byte, 16), make([]byte, 15)) },
		func() { c.Decrypt(make([]byte, 15), make([]byte, 16)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("short buffer did not panic")
				}
			}()
			f()
		}()
	}
}

func TestGmulProperties(t *testing.T) {
	// 1 is the multiplicative identity; multiplication is commutative.
	for i := 0; i < 256; i++ {
		if gmul(byte(i), 1) != byte(i) {
			t.Fatalf("gmul(%d, 1) != %d", i, i)
		}
	}
	f := func(a, b byte) bool { return gmul(a, b) == gmul(b, a) }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	// xtime agrees with gmul(·, 2).
	for i := 0; i < 256; i++ {
		if xtime(byte(i)) != gmul(byte(i), 2) {
			t.Fatalf("xtime(%d) != gmul(%d, 2)", i, i)
		}
	}
}

func TestMixColumnsInverse(t *testing.T) {
	f := func(w uint32) bool {
		return invMixColumnsWord(mixColumnsWord(w)) == w
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShiftRowsInverse(t *testing.T) {
	f := func(a, b, c, d uint32) bool {
		s := state{a, b, c, d}
		orig := s
		s.shiftRows()
		s.invShiftRows()
		return s == orig
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEncrypt256(b *testing.B) {
	c := Must256([32]byte{1})
	var block [16]byte
	b.SetBytes(16)
	for i := 0; i < b.N; i++ {
		c.Encrypt(block[:], block[:])
	}
}

func BenchmarkDecrypt256(b *testing.B) {
	c := Must256([32]byte{1})
	var block [16]byte
	b.SetBytes(16)
	for i := 0; i < b.N; i++ {
		c.Decrypt(block[:], block[:])
	}
}

func TestEncryptWords2MatchesSingle(t *testing.T) {
	// The interleaved two-block path must agree with the single-block
	// word path (and therefore, transitively, with the byte-wise
	// reference) on random blocks and keys.
	f := func(key [32]byte, a, b [16]byte) bool {
		c := Must256(key)
		wantA, wantB := c.EncryptBlock(a), c.EncryptBlock(b)
		var got [32]byte
		a0, a1, a2, a3, b0, b1, b2, b3 := c.EncryptWords2(
			be32(a[0:]), be32(a[4:]), be32(a[8:]), be32(a[12:]),
			be32(b[0:]), be32(b[4:]), be32(b[8:]), be32(b[12:]))
		putBE32(got[0:], a0)
		putBE32(got[4:], a1)
		putBE32(got[8:], a2)
		putBE32(got[12:], a3)
		putBE32(got[16:], b0)
		putBE32(got[20:], b1)
		putBE32(got[24:], b2)
		putBE32(got[28:], b3)
		return bytes.Equal(got[:16], wantA[:]) && bytes.Equal(got[16:], wantB[:])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func be32(b []byte) uint32 {
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

func putBE32(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v>>24), byte(v>>16), byte(v>>8), byte(v)
}

func TestEncryptBlocksMatchesEncrypt(t *testing.T) {
	// Batch encryption over 0..5 blocks must match block-at-a-time
	// Encrypt, including the odd trailing block and in-place use.
	c := Must256([32]byte{7, 7, 7})
	src := make([]byte, 5*BlockSize)
	for i := range src {
		src[i] = byte(i*37 + 11)
	}
	for n := 0; n <= 5; n++ {
		want := make([]byte, n*BlockSize)
		for i := 0; i < n; i++ {
			c.Encrypt(want[i*BlockSize:], src[i*BlockSize:])
		}
		got := make([]byte, n*BlockSize)
		c.EncryptBlocks(got, src[:n*BlockSize])
		if !bytes.Equal(got, want) {
			t.Errorf("EncryptBlocks(%d blocks) disagrees with Encrypt", n)
		}
		inPlace := append([]byte(nil), src[:n*BlockSize]...)
		c.EncryptBlocks(inPlace, inPlace)
		if !bytes.Equal(inPlace, want) {
			t.Errorf("in-place EncryptBlocks(%d blocks) disagrees", n)
		}
	}
}

func TestEncryptBlocksPanics(t *testing.T) {
	c := Must256([32]byte{})
	for _, f := range []func(){
		func() { c.EncryptBlocks(make([]byte, 32), make([]byte, 17)) },
		func() { c.EncryptBlocks(make([]byte, 16), make([]byte, 32)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("EncryptBlocks with bad sizes did not panic")
				}
			}()
			f()
		}()
	}
}

func BenchmarkEncryptWords2(b *testing.B) {
	c := Must256([32]byte{1})
	var s uint32
	for i := 0; i < b.N; i++ {
		a0, _, _, _, _, _, _, b3 := c.EncryptWords2(uint32(i), 0, 0, 1, uint32(i), 16, 0, 1)
		s += a0 ^ b3
	}
	sinkWord = s
}

var sinkWord uint32
