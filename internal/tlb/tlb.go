// Package tlb models the instruction and data translation lookaside
// buffers of Table 1 (4-way, 256 entries). In the paper each TLB entry is
// additionally tagged with the page's root sequence number; in this
// implementation the root lives in the predictor's page table (the
// architectural "per-process security context") and the TLB contributes
// timing: a miss costs a page-walk penalty.
package tlb

// Config describes a TLB.
type Config struct {
	Name        string
	Entries     int
	Ways        int
	PageBits    uint   // log2 of page size (12 for 4 KB)
	MissPenalty uint64 // cycles added by a page walk
}

// Stats counts TLB events.
type Stats struct {
	Accesses uint64
	Hits     uint64
	Misses   uint64
}

// HitRate returns hits/accesses.
func (s Stats) HitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Accesses)
}

type entry struct {
	vpage   uint64
	valid   bool
	lastUse uint64
}

// TLB is a set-associative translation buffer.
type TLB struct {
	cfg     Config
	sets    [][]entry
	numSets int
	setMask uint64
	clock   uint64
	stats   Stats
}

// New builds a TLB; it panics on invalid geometry.
func New(cfg Config) *TLB {
	if cfg.Entries <= 0 || cfg.Ways <= 0 || cfg.Entries%cfg.Ways != 0 {
		panic("tlb: invalid geometry")
	}
	numSets := cfg.Entries / cfg.Ways
	if numSets&(numSets-1) != 0 {
		panic("tlb: sets not a power of two")
	}
	if cfg.PageBits == 0 {
		cfg.PageBits = 12
	}
	t := &TLB{cfg: cfg, numSets: numSets, setMask: uint64(numSets - 1)}
	t.sets = make([][]entry, numSets)
	backing := make([]entry, cfg.Entries)
	for i := range t.sets {
		t.sets[i] = backing[i*cfg.Ways : (i+1)*cfg.Ways]
	}
	return t
}

// Config returns the TLB's configuration.
func (t *TLB) Config() Config { return t.cfg }

// Stats returns a copy of the accumulated statistics.
func (t *TLB) Stats() Stats { return t.stats }

// Lookup translates the address's page, allocating the entry on a miss,
// and returns the added latency (0 on hit, MissPenalty on miss).
func (t *TLB) Lookup(addr uint64) uint64 {
	t.clock++
	t.stats.Accesses++
	vpage := addr >> t.cfg.PageBits
	set := int(vpage & t.setMask)
	ways := t.sets[set]
	for i := range ways {
		if ways[i].valid && ways[i].vpage == vpage {
			t.stats.Hits++
			ways[i].lastUse = t.clock
			return 0
		}
	}
	t.stats.Misses++
	victim := 0
	for i := 1; i < len(ways); i++ {
		if !ways[victim].valid {
			break
		}
		if !ways[i].valid || ways[i].lastUse < ways[victim].lastUse {
			victim = i
		}
	}
	ways[victim] = entry{vpage: vpage, valid: true, lastUse: t.clock}
	return t.cfg.MissPenalty
}

// FlushAll invalidates every entry (context switch).
func (t *TLB) FlushAll() {
	for _, ways := range t.sets {
		for i := range ways {
			ways[i] = entry{}
		}
	}
}
