package tlb

import "testing"

func newTLB() *TLB {
	return New(Config{Name: "d", Entries: 256, Ways: 4, PageBits: 12, MissPenalty: 30})
}

func TestMissThenHit(t *testing.T) {
	tl := newTLB()
	if lat := tl.Lookup(0x1000); lat != 30 {
		t.Fatalf("cold lookup latency = %d, want 30", lat)
	}
	if lat := tl.Lookup(0x1fff); lat != 0 {
		t.Fatalf("same-page lookup latency = %d, want 0", lat)
	}
	if lat := tl.Lookup(0x2000); lat != 30 {
		t.Fatalf("next-page lookup latency = %d, want 30", lat)
	}
	s := tl.Stats()
	if s.Accesses != 3 || s.Hits != 1 || s.Misses != 2 {
		t.Fatalf("stats = %+v", s)
	}
	if s.HitRate() < 0.33 || s.HitRate() > 0.34 {
		t.Fatalf("hit rate = %v", s.HitRate())
	}
}

func TestCapacityEviction(t *testing.T) {
	// 8 entries, 2 ways → 4 sets. Pages p and p+4 share a set; a third
	// conflicting page evicts the LRU.
	tl := New(Config{Entries: 8, Ways: 2, PageBits: 12, MissPenalty: 10})
	page := func(n uint64) uint64 { return n << 12 }
	tl.Lookup(page(0))
	tl.Lookup(page(4))
	tl.Lookup(page(0)) // refresh page 0
	tl.Lookup(page(8)) // evicts page 4
	if lat := tl.Lookup(page(0)); lat != 0 {
		t.Fatal("page 0 was evicted, want page 4")
	}
	if lat := tl.Lookup(page(4)); lat == 0 {
		t.Fatal("page 4 unexpectedly still present")
	}
}

func TestFlushAll(t *testing.T) {
	tl := newTLB()
	tl.Lookup(0x1000)
	tl.FlushAll()
	if lat := tl.Lookup(0x1000); lat == 0 {
		t.Fatal("entry survived FlushAll")
	}
}

func TestBadGeometryPanics(t *testing.T) {
	cases := []Config{
		{Entries: 0, Ways: 1},
		{Entries: 7, Ways: 2},
		{Entries: 24, Ways: 2}, // 12 sets, not a power of two
	}
	for _, cfg := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v did not panic", cfg)
				}
			}()
			New(cfg)
		}()
	}
}

func TestDefaultPageBits(t *testing.T) {
	tl := New(Config{Entries: 4, Ways: 1, MissPenalty: 5})
	if tl.Config().PageBits != 12 {
		t.Fatalf("default PageBits = %d, want 12", tl.Config().PageBits)
	}
}
