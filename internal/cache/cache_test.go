package cache

import (
	"testing"
	"testing/quick"
)

func dmCache(sizeBytes int) *Cache {
	return New(Config{Name: "t", SizeBytes: sizeBytes, LineSize: 32, Ways: 1, HitLatency: 1})
}

func TestValidate(t *testing.T) {
	bad := []Config{
		{Name: "zero"},
		{Name: "odd-size", SizeBytes: 100, LineSize: 32, Ways: 1},
		{Name: "bad-ways", SizeBytes: 1024, LineSize: 32, Ways: 3}, // 32 lines / 3 ways
		{Name: "non-pow2-sets", SizeBytes: 32 * 12, LineSize: 32, Ways: 2},
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %q validated but should not", cfg.Name)
		}
	}
	good := Config{Name: "l1", SizeBytes: 8 << 10, LineSize: 32, Ways: 1}
	if err := good.Validate(); err != nil {
		t.Errorf("good config rejected: %v", err)
	}
}

func TestNewPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with bad config did not panic")
		}
	}()
	New(Config{})
}

func TestMissThenHit(t *testing.T) {
	c := dmCache(1024)
	if hit, _ := c.Access(0x100, false); hit {
		t.Fatal("cold access hit")
	}
	if hit, _ := c.Access(0x100, false); !hit {
		t.Fatal("second access missed")
	}
	if hit, _ := c.Access(0x11f, false); !hit {
		t.Fatal("same-line access missed")
	}
	s := c.Stats()
	if s.Accesses != 3 || s.Hits != 2 || s.Misses != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestDirectMappedConflict(t *testing.T) {
	c := dmCache(1024) // 32 lines → addresses 1024 apart conflict
	c.Access(0x0, true)
	hit, ev := c.Access(1024, false)
	if hit {
		t.Fatal("conflicting access hit")
	}
	if !ev.Valid || ev.Addr != 0 || !ev.Dirty {
		t.Fatalf("eviction = %+v, want dirty victim at 0", ev)
	}
	if s := c.Stats(); s.DirtyEvictions != 1 || s.Evictions != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestWriteThroughNeverDirty(t *testing.T) {
	c := New(Config{Name: "wt", SizeBytes: 1024, LineSize: 32, Ways: 1, WriteThrough: true})
	c.Access(0x0, true)
	_, ev := c.Access(1024, false)
	if ev.Dirty {
		t.Fatal("write-through cache produced dirty eviction")
	}
	if c.DirtyLines() != 0 {
		t.Fatal("write-through cache has dirty lines")
	}
}

func TestLRUOrder(t *testing.T) {
	// 2-way: fill both ways, touch the first, then force an eviction —
	// the least recently used (second) must go.
	c := New(Config{Name: "l2", SizeBytes: 64, LineSize: 32, Ways: 2})
	c.Access(0, false)   // way A
	c.Access(64, false)  // way B (same single set)
	c.Access(0, false)   // touch A
	_, ev := c.Access(128, false)
	if !ev.Valid || ev.Addr != 64 {
		t.Fatalf("evicted %+v, want line 64", ev)
	}
}

func TestInvalidLinePreferredOverLRU(t *testing.T) {
	c := New(Config{Name: "x", SizeBytes: 128, LineSize: 32, Ways: 4})
	c.Access(0, false)
	_, ev := c.Access(128, false)
	if ev.Valid {
		t.Fatalf("evicted a line while invalid ways remained: %+v", ev)
	}
}

func TestProbeDoesNotDisturb(t *testing.T) {
	c := New(Config{Name: "p", SizeBytes: 64, LineSize: 32, Ways: 2})
	c.Access(0, false)
	c.Access(64, false)
	before := c.Stats()
	if !c.Probe(0) || !c.Probe(64) || c.Probe(128) {
		t.Fatal("probe results wrong")
	}
	if c.Stats() != before {
		t.Fatal("probe changed stats")
	}
	// Probing 0 must not have refreshed its LRU position.
	c.Probe(0)
	_, ev := c.Access(128, false)
	if ev.Addr != 0 {
		t.Fatalf("evicted %+v; probe refreshed LRU", ev)
	}
}

func TestTouch(t *testing.T) {
	c := dmCache(1024)
	if c.Touch(0x40, true) {
		t.Fatal("touch hit on empty cache")
	}
	c.Access(0x40, false)
	if !c.Touch(0x40, true) {
		t.Fatal("touch missed present line")
	}
	_, ev := c.Access(0x40+1024, false)
	if !ev.Dirty {
		t.Fatal("touch(write) did not mark dirty")
	}
}

func TestInvalidate(t *testing.T) {
	c := dmCache(1024)
	c.Access(0x20, true)
	present, dirty := c.Invalidate(0x20)
	if !present || !dirty {
		t.Fatalf("invalidate = (%v,%v), want (true,true)", present, dirty)
	}
	if present, _ := c.Invalidate(0x20); present {
		t.Fatal("double invalidate reported present")
	}
	if hit, _ := c.Access(0x20, false); hit {
		t.Fatal("access hit after invalidate")
	}
}

func TestFlushDirty(t *testing.T) {
	c := dmCache(1024)
	c.Access(0x00, true)
	c.Access(0x40, true)
	c.Access(0x80, false)
	var flushed []uint64
	n := c.FlushDirty(func(a uint64) { flushed = append(flushed, a) })
	if n != 2 || len(flushed) != 2 {
		t.Fatalf("flushed %d lines (%v), want 2", n, flushed)
	}
	if c.DirtyLines() != 0 {
		t.Fatal("dirty lines remain after flush")
	}
	// Lines stay valid after flush.
	if hit, _ := c.Access(0x00, false); !hit {
		t.Fatal("flushed line no longer present")
	}
	if n := c.FlushDirty(nil); n != 0 {
		t.Fatalf("second flush found %d dirty lines", n)
	}
}

func TestInvalidateAll(t *testing.T) {
	c := dmCache(1024)
	c.Access(0, false)
	c.InvalidateAll()
	if c.Probe(0) {
		t.Fatal("line survived InvalidateAll")
	}
}

func TestLineAddr(t *testing.T) {
	c := dmCache(1024)
	if got := c.LineAddr(0x7f); got != 0x60 {
		t.Fatalf("LineAddr(0x7f) = %#x, want 0x60", got)
	}
}

func TestHitRate(t *testing.T) {
	var s Stats
	if s.HitRate() != 0 {
		t.Fatal("empty hit rate != 0")
	}
	s = Stats{Accesses: 4, Hits: 3}
	if s.HitRate() != 0.75 {
		t.Fatalf("hit rate = %v", s.HitRate())
	}
}

// Property: a second access to any address always hits if no other
// address was touched in between.
func TestRepeatAccessHits(t *testing.T) {
	f := func(addr uint64) bool {
		c := dmCache(4096)
		c.Access(addr, false)
		hit, _ := c.Access(addr, false)
		return hit
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the number of valid lines never exceeds capacity, and
// accesses = hits + misses.
func TestStatsInvariant(t *testing.T) {
	f := func(addrs []uint16) bool {
		c := New(Config{Name: "q", SizeBytes: 512, LineSize: 32, Ways: 2})
		for _, a := range addrs {
			c.Access(uint64(a), a%3 == 0)
		}
		s := c.Stats()
		return s.Accesses == s.Hits+s.Misses && s.DirtyEvictions <= s.Evictions
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAccess(b *testing.B) {
	c := New(Config{Name: "b", SizeBytes: 256 << 10, LineSize: 32, Ways: 4})
	for i := 0; i < b.N; i++ {
		c.Access(uint64(i*64), i%4 == 0)
	}
}
