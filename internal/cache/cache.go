// Package cache provides the set-associative cache timing model used for
// the L1 instruction/data caches, the unified L2, and (via package
// seqcache) the sequence-number cache of the baseline architecture.
//
// The model is tag-only: it tracks presence, dirtiness and LRU order but
// not data (the simulator keeps architectural data in package mem and
// encrypted data in package secmem). Caches are write-back, write-allocate
// by default; the L1 data cache is configured write-through by the
// hierarchy so that dirty state — and therefore sequence-number increments
// — is owned by the L2, as in the paper's secure-processor boundary.
package cache

import (
	"fmt"

	"ctrpred/internal/stats"
)

// Config describes one cache.
type Config struct {
	Name       string
	SizeBytes  int
	LineSize   int
	Ways       int // 1 = direct-mapped
	HitLatency uint64
	// WriteThrough, when true, propagates writes below immediately and
	// never marks lines dirty in this cache.
	WriteThrough bool
}

// Validate checks the geometry.
func (c Config) Validate() error {
	if c.LineSize <= 0 || c.SizeBytes <= 0 || c.Ways <= 0 {
		return fmt.Errorf("cache %s: non-positive geometry %+v", c.Name, c)
	}
	lines := c.SizeBytes / c.LineSize
	if lines*c.LineSize != c.SizeBytes {
		return fmt.Errorf("cache %s: size %d not a multiple of line size %d", c.Name, c.SizeBytes, c.LineSize)
	}
	if lines%c.Ways != 0 {
		return fmt.Errorf("cache %s: %d lines not divisible by %d ways", c.Name, lines, c.Ways)
	}
	sets := lines / c.Ways
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache %s: %d sets is not a power of two", c.Name, sets)
	}
	return nil
}

// Stats counts cache events.
type Stats struct {
	Accesses       uint64
	Hits           uint64
	Misses         uint64
	Evictions      uint64
	DirtyEvictions uint64
}

// HitRate returns hits/accesses.
func (s Stats) HitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Accesses)
}

// AddTo registers the cache's counters into a metrics snapshot node.
func (s Stats) AddTo(n *stats.Snapshot) {
	n.Counter("accesses", s.Accesses)
	n.Counter("hits", s.Hits)
	n.Counter("misses", s.Misses)
	n.Counter("evictions", s.Evictions)
	n.Counter("dirty_evictions", s.DirtyEvictions)
	n.Value("hit_rate", s.HitRate())
}

type line struct {
	tag     uint64
	valid   bool
	dirty   bool
	lastUse uint64
}

// Eviction describes a victim line displaced by a fill.
type Eviction struct {
	Valid bool   // a valid line was displaced
	Addr  uint64 // line-aligned address of the victim
	Dirty bool   // victim held modified data (needs writeback)
}

// Cache is a single level of cache.
type Cache struct {
	cfg      Config
	sets     [][]line
	numSets  int
	setShift uint
	setMask  uint64
	clock    uint64
	stats    Stats
}

// New builds a cache; it panics on invalid geometry (configurations are
// static and constructed by trusted code).
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	numSets := cfg.SizeBytes / cfg.LineSize / cfg.Ways
	c := &Cache{
		cfg:     cfg,
		numSets: numSets,
		setMask: uint64(numSets - 1),
	}
	for s := cfg.LineSize; s > 1; s >>= 1 {
		c.setShift++
	}
	c.sets = make([][]line, numSets)
	backing := make([]line, numSets*cfg.Ways)
	for i := range c.sets {
		c.sets[i] = backing[i*cfg.Ways : (i+1)*cfg.Ways]
	}
	return c
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a copy of the accumulated statistics.
func (c *Cache) Stats() Stats { return c.stats }

// LineAddr returns addr rounded down to its line.
func (c *Cache) LineAddr(addr uint64) uint64 {
	return addr &^ uint64(c.cfg.LineSize-1)
}

func (c *Cache) index(addr uint64) (set int, tag uint64) {
	la := addr >> c.setShift
	return int(la & c.setMask), la >> 0 // tag keeps full line address for easy reconstruction
}

// Access looks up addr (any byte address), allocating on miss, and
// reports whether it hit and which line (if any) was evicted by the fill.
// For write accesses on a write-back cache the line is marked dirty.
func (c *Cache) Access(addr uint64, write bool) (hit bool, ev Eviction) {
	c.clock++
	c.stats.Accesses++
	set, tag := c.index(addr)
	ways := c.sets[set]
	for i := range ways {
		if ways[i].valid && ways[i].tag == tag {
			c.stats.Hits++
			ways[i].lastUse = c.clock
			if write && !c.cfg.WriteThrough {
				ways[i].dirty = true
			}
			return true, Eviction{}
		}
	}
	c.stats.Misses++
	victim := 0
	for i := 1; i < len(ways); i++ {
		if !ways[i].valid {
			victim = i
			break
		}
		if !ways[victim].valid {
			break
		}
		if ways[i].lastUse < ways[victim].lastUse {
			victim = i
		}
	}
	if ways[victim].valid {
		ev = Eviction{Valid: true, Addr: ways[victim].tag << c.setShift, Dirty: ways[victim].dirty}
		c.stats.Evictions++
		if ev.Dirty {
			c.stats.DirtyEvictions++
		}
	}
	ways[victim] = line{tag: tag, valid: true, dirty: write && !c.cfg.WriteThrough, lastUse: c.clock}
	return false, ev
}

// Probe reports whether addr is present without updating LRU or stats.
func (c *Cache) Probe(addr uint64) bool {
	set, tag := c.index(addr)
	for _, w := range c.sets[set] {
		if w.valid && w.tag == tag {
			return true
		}
	}
	return false
}

// Touch marks addr dirty if present (used when an upper write-through
// level pushes a write into this cache without a full access — not
// currently used by the hierarchy but part of the model's API).
func (c *Cache) Touch(addr uint64, write bool) bool {
	set, tag := c.index(addr)
	ways := c.sets[set]
	for i := range ways {
		if ways[i].valid && ways[i].tag == tag {
			c.clock++
			ways[i].lastUse = c.clock
			if write && !c.cfg.WriteThrough {
				ways[i].dirty = true
			}
			return true
		}
	}
	return false
}

// Invalidate removes addr's line if present, returning whether it was
// present and dirty. Used for back-invalidation (inclusive hierarchies).
func (c *Cache) Invalidate(addr uint64) (present, dirty bool) {
	set, tag := c.index(addr)
	ways := c.sets[set]
	for i := range ways {
		if ways[i].valid && ways[i].tag == tag {
			present, dirty = true, ways[i].dirty
			ways[i] = line{}
			return
		}
	}
	return
}

// FlushDirty visits every dirty line (calling fn with its line address),
// marks it clean, and returns how many lines were flushed. It models the
// paper's periodic OS-induced flush of dirty cache lines every 25M cycles.
func (c *Cache) FlushDirty(fn func(lineAddr uint64)) int {
	n := 0
	for _, ways := range c.sets {
		for i := range ways {
			if ways[i].valid && ways[i].dirty {
				if fn != nil {
					fn(ways[i].tag << c.setShift)
				}
				ways[i].dirty = false
				n++
			}
		}
	}
	return n
}

// InvalidateAll empties the cache (used between simulation phases).
func (c *Cache) InvalidateAll() {
	for _, ways := range c.sets {
		for i := range ways {
			ways[i] = line{}
		}
	}
}

// DirtyLines returns the number of currently dirty lines.
func (c *Cache) DirtyLines() int {
	n := 0
	for _, ways := range c.sets {
		for i := range ways {
			if ways[i].valid && ways[i].dirty {
				n++
			}
		}
	}
	return n
}
