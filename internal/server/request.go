package server

import (
	"encoding/json"
	"fmt"
	"time"

	"ctrpred/internal/cryptoengine"
	"ctrpred/internal/experiments"
	"ctrpred/internal/faults"
	"ctrpred/internal/secmem"
	"ctrpred/internal/sha256"
	"ctrpred/internal/sim"
	"ctrpred/internal/tenancy"
	"ctrpred/internal/workload"
)

// SimRequest is the JSON body of POST /v1/sim: one simulation run,
// exposing the full sim.Config surface the CLIs expose. Zero-valued
// fields take the library defaults (Table 1 machine, 256K L2, default
// scale), mirroring cmd/ctrsim's flags.
type SimRequest struct {
	// Bench is the workload kernel to run (required; see /v1/benchmarks).
	Bench string `json:"bench"`
	// Scheme is the counter-availability scheme spec, in ParseScheme
	// syntax ("baseline", "pred-context", "seqcache:128K", …). Required.
	Scheme string `json:"scheme"`
	// Engine is the cipher-engine model spec, in ParseEngine syntax
	// ("aes", "aes:lat=48", "sealer:banks=8", "bipbip", …). Empty means
	// the default pipelined AES. Unknown models fail with 422.
	Engine string `json:"engine,omitempty"`
	// L2 and Footprint are sizes with optional K/M suffixes.
	L2        string `json:"l2,omitempty"`
	Footprint string `json:"footprint,omitempty"`
	// Instructions is the dynamic instruction budget (0 = default scale).
	Instructions uint64 `json:"instructions,omitempty"`
	// Mode is "performance" (default) or "hitrate".
	Mode string `json:"mode,omitempty"`
	// Seed drives workload layout, key material and predictor roots
	// (0 = the library default, seed 1).
	Seed uint64 `json:"seed,omitempty"`
	// FlushInterval is the dirty-flush interval in cycles (0 = library
	// default).
	FlushInterval uint64 `json:"flush_interval,omitempty"`
	// Integrity attaches the hash-tree authentication layer.
	Integrity bool `json:"integrity,omitempty"`
	// Faults is an attack plan in ParseFaultPlan syntax; arming faults
	// implies Integrity, as with ctrsim's -faults flag.
	Faults string `json:"faults,omitempty"`
	// Recovery is "halt" (default) or "quarantine".
	Recovery string `json:"recovery,omitempty"`
	// RetryBudget bounds quarantine re-fetches (0 = default).
	RetryBudget int `json:"retry_budget,omitempty"`
	// CheckInterval paces cancellation checkpoints and progress
	// heartbeats (instructions; 0 = default 10k). Never affects results.
	CheckInterval uint64 `json:"check_interval,omitempty"`
	// Timeout bounds the job (Go duration string, e.g. "30s"); empty
	// uses the server's default.
	Timeout string `json:"timeout,omitempty"`
	// NoCache skips the result cache on both read and write.
	NoCache bool `json:"no_cache,omitempty"`
}

// buildSim validates the request and assembles the run configuration.
func (r SimRequest) buildSim() (string, sim.Config, error) {
	var zero sim.Config
	if r.Bench == "" {
		return "", zero, fmt.Errorf("missing required field %q", "bench")
	}
	if _, ok := workload.Lookup(r.Bench); !ok {
		return "", zero, fmt.Errorf("unknown benchmark %q (see /v1/benchmarks)", r.Bench)
	}
	if r.Scheme == "" {
		return "", zero, fmt.Errorf("missing required field %q", "scheme")
	}
	sch, err := sim.ParseScheme(r.Scheme)
	if err != nil {
		return "", zero, err
	}
	cfg := sim.DefaultConfig(sch)
	if r.Engine != "" {
		eng, err := cryptoengine.ParseEngine(r.Engine)
		if err != nil {
			return "", zero, err
		}
		cfg = cfg.WithEngine(eng)
	}
	if r.L2 != "" {
		n, err := sim.ParseSize(r.L2)
		if err != nil {
			return "", zero, fmt.Errorf("l2: %w", err)
		}
		cfg = cfg.WithL2(n)
	}
	if r.Footprint != "" {
		n, err := sim.ParseSize(r.Footprint)
		if err != nil {
			return "", zero, fmt.Errorf("footprint: %w", err)
		}
		cfg = cfg.WithFootprint(n)
	}
	if r.Instructions != 0 {
		cfg = cfg.WithInstrBudget(r.Instructions)
	}
	switch r.Mode {
	case "", "performance":
	case "hitrate":
		cfg = cfg.WithMode(sim.HitRate)
	default:
		return "", zero, fmt.Errorf("unknown mode %q (want performance or hitrate)", r.Mode)
	}
	if r.Seed != 0 {
		cfg = cfg.WithSeed(r.Seed)
	}
	if r.FlushInterval != 0 {
		cfg.Mem.FlushInterval = r.FlushInterval
	}
	if r.Integrity || r.Faults != "" {
		cfg = cfg.WithIntegrity()
	}
	if r.Faults != "" {
		plan, err := faults.ParsePlan(r.Faults)
		if err != nil {
			return "", zero, err
		}
		cfg = cfg.WithFaults(&plan)
	}
	if r.Recovery != "" {
		policy, err := secmem.ParseRecovery(r.Recovery)
		if err != nil {
			return "", zero, err
		}
		cfg = cfg.WithRecovery(policy)
	}
	cfg.RetryBudget = r.RetryBudget
	cfg.CheckInterval = r.CheckInterval
	return r.Bench, cfg, nil
}

// ExperimentRequest is the JSON body of POST /v1/experiments: one figure
// or table regeneration over a benchmark × scheme grid.
type ExperimentRequest struct {
	// ID names the figure/table (required; see /v1/experiments).
	ID string `json:"id"`
	// Benchmarks restricts the grid's benchmark set (default: all 14).
	Benchmarks []string `json:"benchmarks,omitempty"`
	// Instructions and Footprint override the per-simulation scale.
	Instructions uint64 `json:"instructions,omitempty"`
	Footprint    string `json:"footprint,omitempty"`
	// Seed drives all randomness (0 = default).
	Seed uint64 `json:"seed,omitempty"`
	// Workers caps concurrent simulations inside this job (default 1;
	// capped at the server's worker count). Results are byte-identical
	// for any value.
	Workers int `json:"workers,omitempty"`
	// Engine is the cipher-engine model spec every simulation of the
	// grid runs under, in ParseEngine syntax (empty = default AES;
	// ignored by the "engines" experiment, which sweeps models itself).
	Engine string `json:"engine,omitempty"`
	// SimTimeout bounds each grid cell (Go duration string).
	SimTimeout string `json:"sim_timeout,omitempty"`
	// Timeout bounds the whole job.
	Timeout string `json:"timeout,omitempty"`
	// NoCache skips the result cache on both read and write.
	NoCache bool `json:"no_cache,omitempty"`
	// Arrival selects the tenancy experiments' job-arrival process
	// ("poisson" or "bursty"; empty = poisson). Ignored by the others.
	Arrival string `json:"arrival,omitempty"`
	// MaxTenants bounds the capacity experiment's search (0 = default 8).
	MaxTenants int `json:"max_tenants,omitempty"`
	// SLOMaxSlowdown and SLOP99Fetch declare the capacity experiment's
	// SLO (0 = defaults: slowdown 8, p99 unconstrained).
	SLOMaxSlowdown float64 `json:"slo_max_slowdown,omitempty"`
	SLOP99Fetch    float64 `json:"slo_p99_fetch,omitempty"`
}

// buildExperiment validates the request and assembles the sweep options.
func (r ExperimentRequest) buildExperiment(maxWorkers int) (experiments.Options, error) {
	var zero experiments.Options
	if r.ID == "" {
		return zero, fmt.Errorf("missing required field %q", "id")
	}
	known := false
	for _, id := range experiments.IDs() {
		if id == r.ID {
			known = true
			break
		}
	}
	if !known {
		return zero, fmt.Errorf("%w: %q", experiments.ErrUnknownExperiment, r.ID)
	}
	for _, b := range r.Benchmarks {
		if _, ok := workload.Lookup(b); !ok {
			return zero, fmt.Errorf("unknown benchmark %q (see /v1/benchmarks)", b)
		}
	}
	opt := experiments.DefaultOptions()
	opt.Benchmarks = r.Benchmarks
	if len(opt.Benchmarks) == 0 {
		// Resolve the default set eagerly so an empty list and the full
		// explicit list hash to the same cache key.
		opt.Benchmarks = workload.Names()
	}
	if r.Instructions != 0 {
		opt.Scale.Instructions = r.Instructions
	}
	if r.Footprint != "" {
		n, err := sim.ParseSize(r.Footprint)
		if err != nil {
			return zero, fmt.Errorf("footprint: %w", err)
		}
		opt.Scale.Footprint = n
	}
	if r.Seed != 0 {
		opt.Seed = r.Seed
	}
	if r.Engine != "" {
		eng, err := cryptoengine.ParseEngine(r.Engine)
		if err != nil {
			return zero, err
		}
		opt.Engine = eng
	}
	// One experiment occupies one queue slot; its internal parallelism
	// defaults to a single worker so a grid cannot monopolize the host
	// unless the operator sized the server for it.
	opt.Workers = 1
	if r.Workers > 0 {
		opt.Workers = min(r.Workers, maxWorkers)
	}
	if r.SimTimeout != "" {
		d, err := time.ParseDuration(r.SimTimeout)
		if err != nil {
			return zero, fmt.Errorf("sim_timeout: %w", err)
		}
		opt.SimTimeout = d
	}
	kind, err := tenancy.ParseArrival(r.Arrival)
	if err != nil {
		return zero, err
	}
	opt.Arrival = kind
	if r.MaxTenants < 0 {
		return zero, fmt.Errorf("max_tenants: negative count %d", r.MaxTenants)
	}
	opt.MaxTenants = r.MaxTenants
	opt.SLOMaxSlowdown = r.SLOMaxSlowdown
	opt.SLOP99Fetch = r.SLOP99Fetch
	return opt, nil
}

// key returns the content address of a simulation request: the
// fingerprint of the fully-resolved run configuration, so requests that
// spell the same run differently (default vs explicit fields) share one
// cache entry.
func (r SimRequest) key() (string, error) {
	bench, cfg, err := r.buildSim()
	if err != nil {
		return "", err
	}
	return sim.Fingerprint(bench, cfg), nil
}

// CacheKey exposes the request's content address to other packages: the
// cluster coordinator hashes it onto the ring to pick the simulation's
// home worker, so repeats of the same config land where the cache is
// warm.
func (r SimRequest) CacheKey() (string, error) { return r.key() }

// CacheKey exposes the experiment request's content address. The key is
// insensitive to Workers and timeouts (they change when a result
// arrives, not what it is), so any worker-count argument would hash
// identically; the coordinator and the serving node therefore agree on
// the address without coordinating pool sizes.
func (r ExperimentRequest) CacheKey() (string, error) { return r.key(1) }

// ResolvedBenchmarks returns the benchmark set the request's grid
// actually runs over — the explicit list, or the full registry when the
// field is empty — in request order. The cluster coordinator partitions
// a sweep into per-benchmark cells from this list.
func (r ExperimentRequest) ResolvedBenchmarks() ([]string, error) {
	opt, err := r.buildExperiment(1)
	if err != nil {
		return nil, err
	}
	return opt.Benchmarks, nil
}

// key returns the content address of an experiment request: a hash over
// the result-determining fields only. Workers and timeouts are excluded
// — the sweep output is byte-identical for any worker count, and a
// deadline changes when a result exists, not what it is.
func (r ExperimentRequest) key(maxWorkers int) (string, error) {
	opt, err := r.buildExperiment(maxWorkers)
	if err != nil {
		return "", err
	}
	payload := struct {
		Kind         string
		ID           string
		Benchmarks   []string
		Instructions uint64
		Footprint    int
		Seed         uint64
		Engine       string `json:",omitempty"`
		// Tenancy knobs are folded in only for the experiments they
		// steer, in normalized form — so requests for other experiments
		// keep their addresses no matter how these fields are spelled,
		// and implicit and explicit tenancy defaults collide.
		Arrival        string  `json:",omitempty"`
		MaxTenants     int     `json:",omitempty"`
		SLOMaxSlowdown float64 `json:",omitempty"`
		SLOP99Fetch    float64 `json:",omitempty"`
	}{
		Kind: "experiment", ID: r.ID, Benchmarks: opt.Benchmarks,
		Instructions: opt.Scale.Instructions, Footprint: opt.Scale.Footprint,
		Seed: opt.Seed, Engine: engineKey(opt.Engine),
	}
	if r.ID == "tenants" || r.ID == "capacity" {
		n := opt.Normalized()
		payload.Arrival = n.Arrival.String()
		if r.ID == "capacity" {
			payload.MaxTenants = n.MaxTenants
			payload.SLOMaxSlowdown = n.SLOMaxSlowdown
			payload.SLOP99Fetch = n.SLOP99Fetch
		}
	}
	b, err := json.Marshal(payload)
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("%x", sha256.Sum256(b)), nil
}

// engineKey canonicalizes an engine spec for cache hashing: the default
// AES engine renders as "" so requests that omit the field and requests
// that spell the default explicitly share one cache entry, while every
// other spec contributes its canonical string.
func engineKey(s cryptoengine.Spec) string {
	n := s.Normalized()
	if n == cryptoengine.DefaultSpec() {
		return ""
	}
	return n.String()
}

// parseTimeout resolves a request's job deadline against the server
// default; empty means the default, "0" or "0s" disables it.
func parseTimeout(s string, def time.Duration) (time.Duration, error) {
	if s == "" {
		return def, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, fmt.Errorf("timeout: %w", err)
	}
	if d < 0 {
		return 0, fmt.Errorf("timeout: negative duration %s", d)
	}
	return d, nil
}
