package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ctrpred/internal/runpool"
	"ctrpred/internal/sim"
	"ctrpred/internal/testutil"
)

// newTestServer boots a Server behind httptest and tears both down in
// order: drain the job pool first so in-flight handlers unwind, then
// close the listener.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	// Registered before the cleanups below: cleanups run LIFO, so the
	// leak check fires after shutdown has reaped stream writers, drain
	// watchers, and pool workers.
	testutil.VerifyNoLeaks(t)
	s := New(cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
		ts.Close()
	})
	return s, ts
}

// smallReq is a simulation that finishes in well under a second.
func smallReq() SimRequest {
	return SimRequest{
		Bench: "mcf", Scheme: "pred-context",
		Footprint: "64K", Instructions: 30_000, Seed: 7,
	}
}

// longReq is a simulation big enough to still be running while the test
// pokes the server from outside; a tight check interval keeps it
// responsive to cancellation.
func longReq() SimRequest {
	return SimRequest{
		Bench: "mcf", Scheme: "pred-context",
		Footprint: "64K", Instructions: 2_000_000_000, Seed: 11,
		CheckInterval: 1_000, NoCache: true,
	}
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal request: %v", err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	return resp
}

func readBody(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return b
}

// TestSimMatchesDirectRunAndCaches covers two acceptance criteria at
// once: an HTTP-submitted job returns a snapshot byte-identical to a
// direct RunContext call with the same config, and a repeated identical
// request is served from the cache without re-simulating.
func TestSimMatchesDirectRunAndCaches(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	req := smallReq()

	resp := postJSON(t, ts.URL+"/v1/sim", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, readBody(t, resp))
	}
	if got := resp.Header.Get("X-Cache"); got != "miss" {
		t.Fatalf("first request X-Cache = %q, want miss", got)
	}
	key := resp.Header.Get("X-Result-Key")
	if len(key) != 64 {
		t.Fatalf("X-Result-Key = %q, want a sha256 hex digest", key)
	}
	body := readBody(t, resp)

	// The same run, driven directly through the library.
	bench, cfg, err := req.buildSim()
	if err != nil {
		t.Fatalf("buildSim: %v", err)
	}
	m, err := sim.NewMachine(bench, cfg)
	if err != nil {
		t.Fatalf("NewMachine: %v", err)
	}
	res, err := m.RunContext(context.Background())
	if err != nil {
		t.Fatalf("RunContext: %v", err)
	}
	want, err := res.Snapshot().JSON()
	if err != nil {
		t.Fatalf("Snapshot JSON: %v", err)
	}
	if !bytes.Equal(body, want) {
		t.Fatalf("served snapshot differs from direct RunContext:\nhttp:   %.200s\ndirect: %.200s", body, want)
	}

	// Second identical request: cache hit, no new simulation.
	simsBefore, _ := s.Snapshot().CounterValue("sims_run")
	resp2 := postJSON(t, ts.URL+"/v1/sim", req)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("repeat status = %d", resp2.StatusCode)
	}
	if got := resp2.Header.Get("X-Cache"); got != "hit" {
		t.Fatalf("repeat X-Cache = %q, want hit", got)
	}
	if !bytes.Equal(readBody(t, resp2), body) {
		t.Fatal("cached body differs from original")
	}
	if simsAfter, _ := s.Snapshot().CounterValue("sims_run"); simsAfter != simsBefore {
		t.Fatalf("repeat request re-simulated: sims_run %d -> %d", simsBefore, simsAfter)
	}

	// The content-addressed fetch path serves the same bytes.
	get, err := http.Get(ts.URL + "/v1/results/" + key)
	if err != nil {
		t.Fatalf("GET result: %v", err)
	}
	if get.StatusCode != http.StatusOK || !bytes.Equal(readBody(t, get), body) {
		t.Fatalf("GET /v1/results/%s: status %d or body mismatch", key, get.StatusCode)
	}
	miss, err := http.Get(ts.URL + "/v1/results/deadbeef")
	if err != nil {
		t.Fatalf("GET missing result: %v", err)
	}
	readBody(t, miss)
	if miss.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown key status = %d, want 404", miss.StatusCode)
	}
}

// canonicalJSON re-marshals a JSON document into Go's deterministic
// encoding (sorted map keys, no insignificant whitespace) so documents
// that differ only in formatting compare equal.
func canonicalJSON(t *testing.T, b []byte) string {
	t.Helper()
	var v any
	if err := json.Unmarshal(b, &v); err != nil {
		t.Fatalf("canonicalJSON: %v (input %.200s)", err, b)
	}
	out, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("canonicalJSON re-marshal: %v", err)
	}
	return string(out)
}

// streamEvents POSTs a request in streaming mode and decodes every
// NDJSON line.
func streamEvents(t *testing.T, url string, req SimRequest) []Event {
	t.Helper()
	b, _ := json.Marshal(req)
	resp, err := http.Post(url+"/v1/sim?stream=1", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatalf("POST stream: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q, want application/x-ndjson", ct)
	}
	var evs []Event
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		evs = append(evs, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("stream read: %v", err)
	}
	return evs
}

func TestSimStreamingProtocol(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	req := smallReq()
	evs := streamEvents(t, ts.URL, req)
	if len(evs) < 3 {
		t.Fatalf("stream produced %d events, want at least accepted+update+result", len(evs))
	}
	if evs[0].Event != "accepted" || len(evs[0].Key) != 64 {
		t.Fatalf("first event = %+v, want accepted with a result key", evs[0])
	}
	sawUpdate := false
	for _, ev := range evs[1 : len(evs)-1] {
		switch ev.Event {
		case "update":
			sawUpdate = true
			if ev.Update == nil || ev.Update.Label == "" || ev.Update.Error != "" {
				t.Fatalf("update event = %+v", ev)
			}
		case "progress":
		default:
			t.Fatalf("unexpected mid-stream event %q", ev.Event)
		}
	}
	if !sawUpdate {
		t.Fatal("stream carried no update event")
	}
	last := evs[len(evs)-1]
	if last.Event != "result" || last.Key != evs[0].Key || len(last.Snapshot) == 0 {
		t.Fatalf("terminal event = %+v, want result with snapshot", last)
	}

	// The streamed snapshot and the cached plain response are the same
	// result: one content address, one value (NDJSON compacts the
	// embedded document, so compare canonicalized).
	plain := postJSON(t, ts.URL+"/v1/sim", req)
	if plain.Header.Get("X-Cache") != "hit" {
		t.Fatal("plain request after streamed run should hit the cache")
	}
	if canonicalJSON(t, readBody(t, plain)) != canonicalJSON(t, last.Snapshot) {
		t.Fatal("streamed snapshot differs from cached plain response")
	}
}

// TestQueueSaturationReturns429 covers the backpressure acceptance
// criterion: with one worker occupied and no backlog, the next
// submission is rejected with 429 and a Retry-After hint.
func TestQueueSaturationReturns429(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, Backlog: -1, DrainTimeout: 100 * time.Millisecond})

	b, _ := json.Marshal(longReq())
	resp, err := http.Post(ts.URL+"/v1/sim?stream=1", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatalf("POST long job: %v", err)
	}
	defer resp.Body.Close()
	// The accepted line proves the job holds the only capacity slot
	// (backlog is zero), so the next submission must be shed.
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		t.Fatalf("no accepted event: %v", sc.Err())
	}
	var first Event
	if err := json.Unmarshal(sc.Bytes(), &first); err != nil || first.Event != "accepted" {
		t.Fatalf("first event %q (err %v), want accepted", sc.Text(), err)
	}

	over := smallReq()
	over.NoCache = true
	resp2 := postJSON(t, ts.URL+"/v1/sim", over)
	body := readBody(t, resp2)
	if resp2.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-capacity status = %d (body %s), want 429", resp2.StatusCode, body)
	}
	// No job has finished yet, so there is no latency signal and the
	// hint falls back to its 1 s floor.
	if ra := resp2.Header.Get("Retry-After"); ra != "1" {
		t.Fatalf("Retry-After = %q, want 1", ra)
	}
	if got, _ := s.Snapshot().CounterValue("rejected"); got != 1 {
		t.Fatalf("rejected counter = %d, want 1", got)
	}
	// Cleanup's Shutdown cancels the long job within one CheckInterval.
}

// TestRetryAfterComputation pins the saturated-pool Retry-After hint:
// occupancy and mean job latency in, whole seconds out, with the 1 s
// floor and 60 s cap. Before any job has completed there is no latency
// signal; the cold-start cases pin that the waves model still runs on
// the 1 s-per-wave default instead of collapsing to a constant hint.
func TestRetryAfterComputation(t *testing.T) {
	cases := []struct {
		name    string
		workers int
		pending int
		mean    time.Duration
		want    int
	}{
		{"cold start, empty queue", 4, 0, 0, 1},
		{"cold start scales with backlog", 4, 8, 0, 3}, // (1 + 8/4) waves × 1 s default
		{"cold start deep backlog capped", 1, 1000, 0, 60},
		{"no workers", 0, 0, time.Second, 1},
		{"fast jobs floor at 1s", 4, 0, 50 * time.Millisecond, 1},
		{"one wave rounds up", 4, 0, 1500 * time.Millisecond, 2},
		{"backlog adds waves", 2, 4, 2 * time.Second, 6}, // (1 + 4/2) waves × 2 s
		{"partial wave truncates", 4, 3, 2 * time.Second, 2},
		{"deep backlog capped", 1, 1000, time.Second, 60},
	}
	for _, tc := range cases {
		ps := runpool.PoolStats{Workers: tc.workers, Pending: tc.pending}
		if got := retryAfterSeconds(ps, tc.mean); got != tc.want {
			t.Errorf("%s: retryAfterSeconds(workers=%d pending=%d mean=%v) = %d, want %d",
				tc.name, tc.workers, tc.pending, tc.mean, got, tc.want)
		}
	}
}

// TestMeanJobLatencyFeedsRetryAfter covers the wiring end to end: after
// a job finishes, the server has a latency estimate and a saturated 429
// derives its hint from it rather than the fallback.
func TestMeanJobLatencyFeedsRetryAfter(t *testing.T) {
	s := New(Config{Workers: 1, Backlog: -1})
	t.Cleanup(func() { s.Shutdown(context.Background()) })
	if got := s.meanJobLatency(); got != 0 {
		t.Fatalf("mean latency before any job = %v, want 0", got)
	}
	s.jobDurNS.Add(int64(3 * time.Second))
	s.jobDurNS.Add(int64(5 * time.Second))
	s.jobsDone.Add(2)
	if got, want := s.meanJobLatency(), 4*time.Second; got != want {
		t.Fatalf("mean latency = %v, want %v", got, want)
	}
	ps := runpool.PoolStats{Workers: 1, Pending: 0}
	if got := retryAfterSeconds(ps, s.meanJobLatency()); got != 4 {
		t.Fatalf("Retry-After from observed latency = %d, want 4", got)
	}
}

// TestShutdownDrainsRunningJob covers the graceful half of the shutdown
// criterion: Shutdown waits for a running job and its result is still
// delivered to the client.
func TestShutdownDrainsRunningJob(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, DrainTimeout: 30 * time.Second})

	req := smallReq()
	req.Instructions = 1_000_000 // long enough to overlap Shutdown, short enough to drain
	b, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/v1/sim?stream=1", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		t.Fatalf("no accepted event: %v", sc.Err())
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown during running job: %v", err)
	}

	var last Event
	for sc.Scan() {
		if err := json.Unmarshal(sc.Bytes(), &last); err != nil {
			t.Fatalf("bad line %q: %v", sc.Text(), err)
		}
	}
	if last.Event != "result" || len(last.Snapshot) == 0 {
		t.Fatalf("terminal event after drain = %+v, want result", last)
	}

	// Draining servers advertise it and refuse new work.
	hz, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("GET healthz: %v", err)
	}
	readBody(t, hz)
	if hz.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining = %d, want 503", hz.StatusCode)
	}
	late := postJSON(t, ts.URL+"/v1/sim", smallReq())
	readBody(t, late)
	if late.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submission while draining = %d, want 503", late.StatusCode)
	}
}

// TestShutdownCancelsStuckJob covers the hard half of the shutdown
// criterion: when the drain window expires, job contexts are cancelled
// and the simulation stops within one CheckInterval instead of holding
// Shutdown hostage.
func TestShutdownCancelsStuckJob(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, DrainTimeout: 50 * time.Millisecond})

	b, _ := json.Marshal(longReq())
	resp, err := http.Post(ts.URL+"/v1/sim?stream=1", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatalf("POST long job: %v", err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		t.Fatalf("no accepted event: %v", sc.Err())
	}

	start := time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown with stuck job: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 20*time.Second {
		t.Fatalf("Shutdown took %v; the hard stop did not bite", elapsed)
	}

	var last Event
	for sc.Scan() {
		if err := json.Unmarshal(sc.Bytes(), &last); err != nil {
			t.Fatalf("bad line %q: %v", sc.Text(), err)
		}
	}
	if last.Event != "error" || last.Code != "canceled" {
		t.Fatalf("terminal event after hard stop = %+v, want error/canceled", last)
	}
}

func TestExperimentEndpointRunsAndCaches(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	req := ExperimentRequest{
		ID: "fig7", Benchmarks: []string{"mcf"},
		Instructions: 20_000, Footprint: "64K", Seed: 3,
	}
	resp := postJSON(t, ts.URL+"/v1/experiments", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, readBody(t, resp))
	}
	body := readBody(t, resp)
	if !strings.Contains(string(body), `"experiment"`) {
		t.Fatalf("experiment snapshot has unexpected shape: %.200s", body)
	}

	expsBefore, _ := s.Snapshot().CounterValue("experiments_run")
	resp2 := postJSON(t, ts.URL+"/v1/experiments", req)
	if got := resp2.Header.Get("X-Cache"); got != "hit" {
		t.Fatalf("repeat experiment X-Cache = %q, want hit", got)
	}
	if !bytes.Equal(readBody(t, resp2), body) {
		t.Fatal("cached experiment body differs")
	}
	if expsAfter, _ := s.Snapshot().CounterValue("experiments_run"); expsAfter != expsBefore {
		t.Fatal("repeat experiment request re-ran the sweep")
	}

	// Workers and timeouts are result-neutral and must share the cache
	// entry with the original request.
	alt := req
	alt.Workers = 2
	alt.Timeout = "5m"
	resp3 := postJSON(t, ts.URL+"/v1/experiments", alt)
	if got := resp3.Header.Get("X-Cache"); got != "hit" {
		t.Fatalf("worker-count variant X-Cache = %q, want hit", got)
	}
	readBody(t, resp3)
}

func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	cases := []struct {
		name string
		url  string
		body any
	}{
		{"unknown bench", "/v1/sim", SimRequest{Bench: "nope", Scheme: "baseline"}},
		{"missing scheme", "/v1/sim", SimRequest{Bench: "mcf"}},
		{"bad scheme", "/v1/sim", SimRequest{Bench: "mcf", Scheme: "warp-drive"}},
		{"bad mode", "/v1/sim", SimRequest{Bench: "mcf", Scheme: "baseline", Mode: "sideways"}},
		{"bad recovery", "/v1/sim", SimRequest{Bench: "mcf", Scheme: "baseline", Recovery: "pray"}},
		{"bad timeout", "/v1/sim", SimRequest{Bench: "mcf", Scheme: "baseline", Timeout: "soon"}},
		{"unknown experiment", "/v1/experiments", ExperimentRequest{ID: "fig99"}},
		{"unknown field", "/v1/sim", map[string]any{"bench": "mcf", "scheme": "baseline", "warp": 9}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := postJSON(t, ts.URL+tc.url, tc.body)
			body := readBody(t, resp)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status = %d (body %s), want 400", resp.StatusCode, body)
			}
			var e map[string]string
			if err := json.Unmarshal(body, &e); err != nil || e["error"] == "" {
				t.Fatalf("error body %q not a JSON error object", body)
			}
		})
	}
}

func TestListingAndMetricsEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	resp, err := http.Get(ts.URL + "/v1/benchmarks")
	if err != nil {
		t.Fatalf("GET benchmarks: %v", err)
	}
	var benches []struct {
		Name string `json:"name"`
	}
	if err := json.Unmarshal(readBody(t, resp), &benches); err != nil {
		t.Fatalf("decode benchmarks: %v", err)
	}
	if len(benches) != 14 {
		t.Fatalf("got %d benchmarks, want 14", len(benches))
	}

	resp, err = http.Get(ts.URL + "/v1/experiments")
	if err != nil {
		t.Fatalf("GET experiments: %v", err)
	}
	var ids []string
	if err := json.Unmarshal(readBody(t, resp), &ids); err != nil {
		t.Fatalf("decode experiment ids: %v", err)
	}
	if len(ids) == 0 {
		t.Fatal("no experiment ids listed")
	}

	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("GET healthz: %v", err)
	}
	var hz map[string]any
	if err := json.Unmarshal(readBody(t, resp), &hz); err != nil {
		t.Fatalf("decode healthz: %v", err)
	}
	if resp.StatusCode != http.StatusOK || hz["status"] != "ok" {
		t.Fatalf("healthz = %d %v", resp.StatusCode, hz)
	}

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET metrics: %v", err)
	}
	metrics := readBody(t, resp)
	for _, want := range []string{"sims_run", "pool", "cache", "occupancy", "backlog_depth", "endpoints"} {
		if !strings.Contains(string(metrics), fmt.Sprintf("%q", want)) {
			t.Fatalf("metrics payload missing %q: %.300s", want, metrics)
		}
	}
}

// TestEndpointCountersInMetrics pins the per-endpoint request counts:
// every handled route shows up under the "endpoints" child with the
// number of requests it served, and the tree stays deterministic JSON.
func TestEndpointCountersInMetrics(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})

	for i := 0; i < 3; i++ {
		resp, err := http.Get(ts.URL + "/v1/benchmarks")
		if err != nil {
			t.Fatalf("GET benchmarks: %v", err)
		}
		readBody(t, resp)
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("GET healthz: %v", err)
	}
	readBody(t, resp)

	ep := s.Snapshot().Lookup("endpoints")
	if ep == nil {
		t.Fatal("metrics tree has no endpoints child")
	}
	if got, ok := ep.CounterValue("benchmarks"); !ok || got != 3 {
		t.Fatalf("endpoints.benchmarks = %d (present=%v), want 3", got, ok)
	}
	if got, ok := ep.CounterValue("healthz"); !ok || got != 1 {
		t.Fatalf("endpoints.healthz = %d (present=%v), want 1", got, ok)
	}

	// Two exports of the endpoints subtree must agree byte for byte:
	// the counters come out of a map, so serialization-time sorting is
	// what keeps the JSON deterministic.
	a, err := s.Snapshot().Lookup("endpoints").JSON()
	if err != nil {
		t.Fatalf("endpoints JSON: %v", err)
	}
	b, err := s.Snapshot().Lookup("endpoints").JSON()
	if err != nil {
		t.Fatalf("endpoints JSON: %v", err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("endpoints metrics JSON not deterministic across exports")
	}
}

func TestJobTimeoutMapsTo504(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, DrainTimeout: 100 * time.Millisecond})
	req := longReq()
	req.Timeout = "150ms"
	resp := postJSON(t, ts.URL+"/v1/sim", req)
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d (body %s), want 504", resp.StatusCode, body)
	}
	var ev Event
	if err := json.Unmarshal(body, &ev); err != nil || ev.Code != "timeout" {
		t.Fatalf("timeout body = %s, want error event with code timeout", body)
	}
}

// TestEngineSpecSeparatesCache is the PR's cache-collision regression
// test: two requests differing only in their engine spec must produce
// distinct result keys and distinct cached bodies — before the engine
// spec entered sim.Fingerprint, the second request would have been
// served the first engine's bytes as a cache hit.
func TestEngineSpecSeparatesCache(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})

	aes := smallReq() // engine "" = default pipelined AES
	bip := smallReq()
	bip.Engine = "bipbip"

	respA := postJSON(t, ts.URL+"/v1/sim", aes)
	if respA.StatusCode != http.StatusOK {
		t.Fatalf("aes status = %d, body %s", respA.StatusCode, readBody(t, respA))
	}
	keyA := respA.Header.Get("X-Result-Key")
	bodyA := readBody(t, respA)

	simsBefore, _ := s.Snapshot().CounterValue("sims_run")
	respB := postJSON(t, ts.URL+"/v1/sim", bip)
	if respB.StatusCode != http.StatusOK {
		t.Fatalf("bipbip status = %d, body %s", respB.StatusCode, readBody(t, respB))
	}
	if got := respB.Header.Get("X-Cache"); got != "miss" {
		t.Fatalf("bipbip request X-Cache = %q, want miss (engine spec must separate cache keys)", got)
	}
	keyB := respB.Header.Get("X-Result-Key")
	bodyB := readBody(t, respB)
	if keyA == keyB {
		t.Fatalf("engine specs share result key %s", keyA)
	}
	if bytes.Equal(bodyA, bodyB) {
		t.Fatal("aes and bipbip runs returned identical snapshots")
	}
	if simsAfter, _ := s.Snapshot().CounterValue("sims_run"); simsAfter != simsBefore+1 {
		t.Fatalf("bipbip request did not simulate: sims_run %d -> %d", simsBefore, simsAfter)
	}

	// Both results stay fetchable by key, each serving its own bytes.
	for _, c := range []struct {
		key  string
		want []byte
	}{{keyA, bodyA}, {keyB, bodyB}} {
		get, err := http.Get(ts.URL + "/v1/results/" + c.key)
		if err != nil {
			t.Fatalf("GET result: %v", err)
		}
		if get.StatusCode != http.StatusOK || !bytes.Equal(readBody(t, get), c.want) {
			t.Fatalf("GET /v1/results/%s: status %d or body mismatch", c.key, get.StatusCode)
		}
	}

	// An explicit default-AES spec is the same run as the omitted field:
	// cache hit, no new simulation.
	explicit := smallReq()
	explicit.Engine = "aes"
	respC := postJSON(t, ts.URL+"/v1/sim", explicit)
	readBody(t, respC)
	if got := respC.Header.Get("X-Cache"); got != "hit" {
		t.Fatalf("explicit aes X-Cache = %q, want hit (default spec must normalize)", got)
	}
}

// TestUnknownEngine422: a well-formed request naming an unknown engine
// model is rejected as unprocessable (422) before any simulation runs,
// on both job endpoints.
func TestUnknownEngine422(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	cases := []struct {
		name string
		url  string
		body any
	}{
		{"sim", "/v1/sim", SimRequest{Bench: "mcf", Scheme: "baseline", Engine: "quantum"}},
		{"experiment", "/v1/experiments", ExperimentRequest{ID: "fig7", Engine: "quantum"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := postJSON(t, ts.URL+tc.url, tc.body)
			body := readBody(t, resp)
			if resp.StatusCode != http.StatusUnprocessableEntity {
				t.Fatalf("status = %d (body %s), want 422", resp.StatusCode, body)
			}
		})
	}
	// A malformed parameter on a known engine stays a plain 400.
	resp := postJSON(t, ts.URL+"/v1/sim", SimRequest{Bench: "mcf", Scheme: "baseline", Engine: "aes:banks=4"})
	if body := readBody(t, resp); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad-parameter status = %d (body %s), want 400", resp.StatusCode, body)
	}
}
