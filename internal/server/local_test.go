package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"testing"
)

// TestSnapshotDigestHeader: every plain JSON result body — fresh,
// cached, and fetched by key — advertises its own sha256 so relays can
// verify integrity end to end.
func TestSnapshotDigestHeader(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	req := smallReq()

	resp := postJSON(t, ts.URL+"/v1/sim", req)
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	digest := SnapshotDigest(resp.Header)
	if digest == "" {
		t.Fatal("fresh result carries no X-Snapshot-Digest")
	}
	if want := BodyDigest(body); digest != want {
		t.Fatalf("advertised digest %s != body digest %s", digest, want)
	}
	key := resp.Header.Get("X-Result-Key")

	// The cache-hit path advertises the same digest over the same bytes.
	resp2 := postJSON(t, ts.URL+"/v1/sim", req)
	body2 := readBody(t, resp2)
	if resp2.Header.Get("X-Cache") != "hit" {
		t.Fatal("second request missed the cache")
	}
	if got := SnapshotDigest(resp2.Header); got != digest {
		t.Fatalf("cached digest %s != fresh digest %s", got, digest)
	}
	if !bytes.Equal(body, body2) {
		t.Fatal("cached body differs from the fresh one")
	}

	// So does the by-key result endpoint peers use.
	resp3, err := http.Get(ts.URL + "/v1/results/" + key)
	if err != nil {
		t.Fatal(err)
	}
	body3 := readBody(t, resp3)
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("GET by key: status %d", resp3.StatusCode)
	}
	if got := SnapshotDigest(resp3.Header); got != digest {
		t.Fatalf("by-key digest %s != fresh digest %s", got, digest)
	}
	if !bytes.Equal(body, body3) {
		t.Fatal("by-key body differs from the fresh one")
	}
}

// TestExecuteLocal: the degraded-mode entry point must produce bytes
// identical to the HTTP path for the same request, and classify bad
// input the same way the handlers do.
func TestExecuteLocal(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	req := smallReq()
	viaHTTP := readBody(t, postJSON(t, ts.URL+"/v1/sim", req))

	body, _ := json.Marshal(req)
	local, err := ExecuteLocal(context.Background(), "/v1/sim", body)
	if err != nil {
		t.Fatalf("ExecuteLocal(/v1/sim): %v", err)
	}
	if !bytes.Equal(local, viaHTTP) {
		t.Error("local sim differs from the HTTP run")
	}

	expReq := ExperimentRequest{
		ID: "fig7", Benchmarks: []string{"gzip"},
		Instructions: 30_000, Footprint: "64K", Seed: 7, Workers: 2,
	}
	expHTTP := readBody(t, postJSON(t, ts.URL+"/v1/experiments", expReq))
	expBody, _ := json.Marshal(expReq)
	localExp, err := ExecuteLocal(context.Background(), "/v1/experiments", expBody)
	if err != nil {
		t.Fatalf("ExecuteLocal(/v1/experiments): %v", err)
	}
	if !bytes.Equal(localExp, expHTTP) {
		t.Error("local experiment differs from the HTTP run")
	}

	for _, tc := range []struct {
		name, path string
		body       string
		wantStatus int
	}{
		{"unknown path", "/v1/nope", "{}", http.StatusBadRequest},
		{"bad json", "/v1/sim", "{", http.StatusBadRequest},
		{"unknown field", "/v1/sim", `{"wat":1}`, http.StatusBadRequest},
		{"unknown bench", "/v1/sim", `{"bench":"nope","scheme":"baseline"}`, http.StatusBadRequest},
	} {
		_, err := ExecuteLocal(context.Background(), tc.path, []byte(tc.body))
		if err == nil {
			t.Errorf("%s: ExecuteLocal succeeded; want an error", tc.name)
			continue
		}
		if _, status := Classify(err); status != tc.wantStatus {
			t.Errorf("%s: classified as %d; want %d (err: %v)", tc.name, status, tc.wantStatus, err)
		}
	}
}
