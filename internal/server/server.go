// Package server exposes the simulator as a long-lived HTTP/JSON job
// service — simulation-as-a-service over the same library surface the
// CLIs drive.
//
// Requests land on a bounded runpool-backed queue (backpressure is a
// 429 with Retry-After, never an unbounded goroutine pile), run under
// per-job context deadlines that cancel at the simulator's existing
// instruction checkpoints, and can stream progress as NDJSON — one JSON
// object per line: queue admission, checkpoint heartbeats, one
// runpool.Update per finished simulation, then the final
// stats.Snapshot. Completed results are stored in a content-addressed
// cache (canonical-config hash → snapshot JSON), so a repeated request
// is served without re-simulating; because a run is fully determined by
// its configuration, a cached body is byte-identical to a fresh one.
//
//	POST /v1/sim            run one simulation (stream with ?stream=1
//	                        or Accept: application/x-ndjson)
//	POST /v1/experiments    regenerate a figure/table over a grid
//	GET  /v1/benchmarks     list workload kernels
//	GET  /v1/experiments    list experiment ids
//	GET  /v1/results/{key}  fetch a cached result by content address
//	GET  /healthz           liveness/readiness (503 while draining)
//	GET  /metrics           server counters as a stats.Snapshot JSON
//	GET  /debug/pprof/...   runtime profiles (Config.EnablePprof)
//
// Shutdown is graceful: admission stops immediately, running jobs get
// Config.DrainTimeout to finish, then their contexts are cancelled and
// the simulator aborts within one Config.CheckInterval of instructions.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ctrpred/internal/cryptoengine"
	"ctrpred/internal/experiments"
	"ctrpred/internal/runpool"
	"ctrpred/internal/secmem"
	"ctrpred/internal/sim"
	"ctrpred/internal/stats"
	"ctrpred/internal/workload"
)

// Config sizes the service. The zero value is usable: one worker per
// CPU, a backlog twice that, a 256-entry result cache, no default job
// deadline, a 5 s drain window, pprof off.
type Config struct {
	// Workers caps concurrently running jobs (<= 0: one per CPU).
	Workers int
	// Backlog caps jobs queued behind the running ones (< 0: none;
	// 0: 2×Workers). A full backlog rejects with 429.
	Backlog int
	// CacheEntries bounds the result cache (0: 256; < 0: disabled).
	CacheEntries int
	// DefaultTimeout bounds jobs whose request carries no timeout
	// (0: unbounded).
	DefaultTimeout time.Duration
	// DrainTimeout is how long Shutdown lets running jobs finish before
	// cancelling their contexts (0: 5 s).
	DrainTimeout time.Duration
	// EnablePprof mounts net/http/pprof under /debug/pprof/.
	EnablePprof bool
}

const (
	defaultCacheEntries = 256
	defaultDrain        = 5 * time.Second
	// heartbeatEvery throttles checkpoint heartbeats on the stream.
	heartbeatEvery = 200 * time.Millisecond
)

// Server is the job service. Create with New, mount as an http.Handler,
// stop with Shutdown.
type Server struct {
	cfg   Config
	pool  *runpool.Pool
	cache *ResultCache
	mux   *http.ServeMux
	start time.Time

	// endpoints counts requests per route pattern, exported under the
	// "endpoints" child of /metrics so a load balancer can see which
	// surfaces carry the traffic.
	endpoints endpointCounters

	// jobsCtx parents every job's context; hardStop cancels it when the
	// drain window expires, aborting in-flight simulations at their next
	// instruction checkpoint.
	jobsCtx  context.Context
	hardStop context.CancelFunc

	mu       sync.Mutex
	draining bool

	accepted  atomic.Uint64
	rejected  atomic.Uint64
	finished  atomic.Uint64
	failed    atomic.Uint64
	simsRun   atomic.Uint64
	expsRun   atomic.Uint64
	streamed  atomic.Uint64
	cacheSrvd atomic.Uint64

	// jobDurNS/jobsDone accumulate wall-clock job durations so a 429's
	// Retry-After can be derived from how long jobs actually take here
	// rather than a fixed guess.
	jobDurNS atomic.Int64
	jobsDone atomic.Uint64
}

// New assembles a Server from cfg (see Config for zero-value defaults).
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = runpool.DefaultWorkers()
	}
	if cfg.Backlog == 0 {
		cfg.Backlog = 2 * cfg.Workers
	}
	if cfg.Backlog < 0 {
		cfg.Backlog = 0
	}
	if cfg.CacheEntries == 0 {
		cfg.CacheEntries = defaultCacheEntries
	}
	if cfg.DrainTimeout == 0 {
		cfg.DrainTimeout = defaultDrain
	}
	jobsCtx, hardStop := context.WithCancel(context.Background())
	s := &Server{
		cfg:      cfg,
		pool:     runpool.NewPool(cfg.Workers, cfg.Backlog),
		cache:    NewResultCache(cfg.CacheEntries),
		mux:      http.NewServeMux(),
		start:    time.Now(),
		jobsCtx:  jobsCtx,
		hardStop: hardStop,
	}
	s.mux.HandleFunc("POST /v1/sim", s.endpoints.counted("sim", s.handleSim))
	s.mux.HandleFunc("POST /v1/experiments", s.endpoints.counted("experiments", s.handleExperiment))
	s.mux.HandleFunc("GET /v1/benchmarks", s.endpoints.counted("benchmarks", s.handleBenchmarks))
	s.mux.HandleFunc("GET /v1/experiments", s.endpoints.counted("experiment_list", s.handleExperimentList))
	s.mux.HandleFunc("GET /v1/results/{key}", s.endpoints.counted("results", s.handleResult))
	s.mux.HandleFunc("GET /healthz", s.endpoints.counted("healthz", s.handleHealthz))
	s.mux.HandleFunc("GET /metrics", s.endpoints.counted("metrics", s.handleMetrics))
	if cfg.EnablePprof {
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return s
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Shutdown stops admission, waits up to Config.DrainTimeout for running
// jobs to finish on their own, then cancels every job context — the
// simulator aborts within one CheckInterval — and waits for the drain to
// complete or ctx to expire. Safe to call more than once.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()

	drainCtx, cancel := context.WithTimeout(ctx, s.cfg.DrainTimeout)
	defer cancel()
	if err := s.pool.Shutdown(drainCtx); err == nil {
		s.hardStop()
		return nil
	}
	// Grace expired: cut the jobs loose and wait for the checkpoints to
	// observe it.
	s.hardStop()
	return s.pool.Shutdown(ctx)
}

func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// UpdateWire is runpool.Update in wire form: the error flattened to a
// string so it survives JSON, the duration in milliseconds.
type UpdateWire struct {
	Index     int     `json:"index"`
	Label     string  `json:"label"`
	Error     string  `json:"error,omitempty"`
	ElapsedMS float64 `json:"elapsed_ms"`
	Done      int     `json:"done"`
	Total     int     `json:"total"`
}

func wireUpdate(u runpool.Update) *UpdateWire {
	w := &UpdateWire{
		Index: u.Index, Label: u.Label,
		ElapsedMS: float64(u.Elapsed) / float64(time.Millisecond),
		Done:      u.Done, Total: u.Total,
	}
	if u.Err != nil {
		w.Error = u.Err.Error()
	}
	return w
}

// Event is one NDJSON stream line. Event is "accepted", "progress",
// "update", "result" or "error"; "result" and "error" are terminal.
type Event struct {
	Event string `json:"event"`
	// Key is the result's content address (accepted/result).
	Key string `json:"key,omitempty"`
	// Cached marks a result served from the cache without simulating.
	Cached bool `json:"cached,omitempty"`
	// Queue is the backlog depth observed at admission.
	Queue int `json:"queue,omitempty"`
	// Instructions is the committed-instruction count of a heartbeat.
	Instructions uint64 `json:"instructions,omitempty"`
	// Update is one finished simulation of the job's grid.
	Update *UpdateWire `json:"update,omitempty"`
	// Snapshot is the final metrics tree (also present, when available,
	// on a security-halt error so the partial run is not lost).
	Snapshot json.RawMessage `json:"snapshot,omitempty"`
	Error    string          `json:"error,omitempty"`
	// Code classifies an error: bad_request, security, self_check,
	// timeout, canceled, panic, internal.
	Code string `json:"code,omitempty"`

	// Status is the HTTP status a non-streaming response should carry
	// (coordinator and server both shape responses from events; not part
	// of the wire form).
	Status int `json:"-"`
}

// classify maps a job error to a stream code and HTTP status.
func classify(err error) (code string, status int) {
	var serr *secmem.SecurityError
	var perr *runpool.PanicError
	var berr *badRequestError
	switch {
	case errors.As(err, &berr):
		// Only ExecuteLocal produces these; the HTTP handlers reject bad
		// requests before a job ever runs.
		return "bad_request", BuildStatus(berr.err)
	case errors.As(err, &serr):
		if serr.Kind == secmem.KindSelfCheck {
			return "self_check", http.StatusInternalServerError
		}
		// Tampering detected under the halt policy: the simulation did
		// its job; the input memory was hostile.
		return "security", http.StatusUnprocessableEntity
	case errors.As(err, &perr):
		return "panic", http.StatusInternalServerError
	case errors.Is(err, context.DeadlineExceeded):
		return "timeout", http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return "canceled", http.StatusServiceUnavailable
	default:
		return "internal", http.StatusInternalServerError
	}
}

// BuildStatus maps a request-build error to its HTTP status: a
// well-formed request naming an unknown engine model is semantically
// unprocessable (422), everything else is a plain bad request (400).
// Exported because the cluster coordinator validates requests with the
// same request types and must reject them with the same statuses a
// single node would.
func BuildStatus(err error) int {
	if errors.Is(err, cryptoengine.ErrUnknownEngine) {
		return http.StatusUnprocessableEntity
	}
	return http.StatusBadRequest
}

func errEvent(err error) Event {
	code, status := classify(err)
	return Event{Event: "error", Error: err.Error(), Code: code, Status: status}
}

// handleSim serves POST /v1/sim.
func (s *Server) handleSim(w http.ResponseWriter, r *http.Request) {
	var req SimRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	bench, cfg, err := req.buildSim()
	if err != nil {
		httpError(w, BuildStatus(err), err)
		return
	}
	timeout, err := parseTimeout(req.Timeout, s.cfg.DefaultTimeout)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	key := sim.Fingerprint(bench, cfg)
	label := fmt.Sprintf("sim %s/%s %s", bench, cfg.Scheme.Name, key[:12])
	s.dispatch(w, r, dispatchSpec{
		key: key, label: label, noCache: req.NoCache, timeout: timeout,
		run: func(ctx context.Context, emit func(Event)) {
			s.execSim(ctx, bench, cfg, key, req.NoCache, emit)
		},
	})
}

// handleExperiment serves POST /v1/experiments.
func (s *Server) handleExperiment(w http.ResponseWriter, r *http.Request) {
	var req ExperimentRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	opt, err := req.buildExperiment(s.cfg.Workers)
	if err != nil {
		httpError(w, BuildStatus(err), err)
		return
	}
	timeout, err := parseTimeout(req.Timeout, s.cfg.DefaultTimeout)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	key, err := req.key(s.cfg.Workers)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	label := fmt.Sprintf("exp %s %s", req.ID, key[:12])
	s.dispatch(w, r, dispatchSpec{
		key: key, label: label, noCache: req.NoCache, timeout: timeout,
		run: func(ctx context.Context, emit func(Event)) {
			s.execExperiment(ctx, req.ID, opt, key, req.NoCache, emit)
		},
	})
}

type dispatchSpec struct {
	key     string
	label   string
	noCache bool
	timeout time.Duration
	run     func(ctx context.Context, emit func(Event))
}

// dispatch implements the shared request lifecycle: cache probe,
// admission, execution, and response shaping for both the streaming and
// the plain mode.
func (s *Server) dispatch(w http.ResponseWriter, r *http.Request, spec dispatchSpec) {
	stream := wantsStream(r)

	if !spec.noCache {
		if body, ok := s.cache.Get(spec.key); ok {
			s.cacheSrvd.Add(1)
			if stream {
				sw := newStreamWriter(w)
				sw.write(Event{Event: "accepted", Key: spec.key, Cached: true})
				sw.write(Event{Event: "result", Key: spec.key, Cached: true, Snapshot: body})
				return
			}
			w.Header().Set("Content-Type", "application/json")
			w.Header().Set("X-Cache", "hit")
			w.Header().Set("X-Result-Key", spec.key)
			SetSnapshotDigest(w.Header(), body)
			w.Write(body)
			return
		}
	}

	if s.isDraining() {
		httpError(w, http.StatusServiceUnavailable, errors.New("server draining"))
		return
	}

	// The job's context: cancelled by client disconnect, by the request
	// deadline, or — after the drain window — by server shutdown.
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	unhook := context.AfterFunc(s.jobsCtx, cancel)
	defer unhook()
	if spec.timeout > 0 {
		var tcancel context.CancelFunc
		ctx, tcancel = context.WithTimeout(ctx, spec.timeout)
		defer tcancel()
	}

	events := make(chan Event, 128)
	emit := func(ev Event) { events <- ev }
	// Heartbeats and updates must never wedge a worker behind a stalled
	// consumer; terminal events use the blocking emit (the handler always
	// drains to close).
	emitOpt := func(ev Event) {
		select {
		case events <- ev:
		default:
		}
	}
	job := func() {
		defer close(events)
		start := time.Now()
		defer func() {
			s.jobDurNS.Add(int64(time.Since(start)))
			s.jobsDone.Add(1)
		}()
		spec.run(ctx, func(ev Event) {
			if ev.Event == "result" || ev.Event == "error" {
				emit(ev)
			} else {
				emitOpt(ev)
			}
		})
	}

	ps := s.pool.Stats()
	queueDepth := ps.Pending
	if err := s.pool.TrySubmit(spec.label, job); err != nil {
		s.rejected.Add(1)
		switch {
		case errors.Is(err, runpool.ErrPoolSaturated):
			ra := retryAfterSeconds(ps, s.meanJobLatency())
			w.Header().Set("Retry-After", strconv.Itoa(ra))
			httpError(w, http.StatusTooManyRequests, errors.New("job queue full; retry later"))
		default:
			httpError(w, http.StatusServiceUnavailable, err)
		}
		return
	}
	s.accepted.Add(1)

	if stream {
		s.streamed.Add(1)
		sw := newStreamWriter(w)
		sw.write(Event{Event: "accepted", Key: spec.key, Queue: queueDepth})
		for ev := range events {
			if ev.Event == "error" {
				s.failed.Add(1)
			} else if ev.Event == "result" {
				s.finished.Add(1)
			}
			sw.write(ev)
		}
		return
	}

	var final Event
	for ev := range events {
		if ev.Event == "result" || ev.Event == "error" {
			final = ev
		}
	}
	switch final.Event {
	case "result":
		s.finished.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Cache", "miss")
		w.Header().Set("X-Result-Key", spec.key)
		SetSnapshotDigest(w.Header(), final.Snapshot)
		w.Write(final.Snapshot)
	case "error":
		s.failed.Add(1)
		writeJSON(w, final.Status, final)
	default:
		httpError(w, http.StatusInternalServerError, errors.New("job produced no result"))
	}
}

// meanJobLatency is the average wall-clock duration of finished jobs,
// or 0 before the first one completes.
func (s *Server) meanJobLatency() time.Duration {
	n := s.jobsDone.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(uint64(s.jobDurNS.Load()) / n)
}

// coldStartWaveLatency stands in for the mean job latency before any
// job has completed: with no signal yet, each wave of queued jobs is
// assumed to take about a second, so a deep backlog still pushes the
// hint out instead of telling every rejected client "retry in 1 s"
// against a queue that cannot possibly drain that fast.
const coldStartWaveLatency = time.Second

// retryAfterSeconds turns pool occupancy and observed mean job latency
// into a Retry-After hint for a saturated 429. A rejected client gets a
// slot once enough jobs ahead of it finish for the backlog to open up;
// jobs drain Workers at a time, so the (running + pending) occupancy
// seen at rejection is Pending/Workers full waves behind the currently
// running one, each taking about one mean latency. Before any job has
// finished there is no latency signal; the waves model still applies,
// with coldStartWaveLatency standing in for the mean, so the hint keeps
// scaling with backlog depth instead of degenerating to a constant.
// 1 s floors the result; 60 s caps it so a pathological backlog never
// tells clients to go away for minutes.
func retryAfterSeconds(ps runpool.PoolStats, mean time.Duration) int {
	if ps.Workers <= 0 {
		return 1
	}
	if mean <= 0 {
		mean = coldStartWaveLatency
	}
	waves := 1 + ps.Pending/ps.Workers
	wait := time.Duration(waves) * mean
	secs := int((wait + time.Second - 1) / time.Second) // ceil
	if secs < 1 {
		secs = 1
	}
	if secs > 60 {
		secs = 60
	}
	return secs
}

// execSim runs one simulation and emits its stream events.
func (s *Server) execSim(ctx context.Context, bench string, cfg sim.Config, key string, noCache bool, emit func(Event)) {
	if err := ctx.Err(); err != nil {
		emit(errEvent(err))
		return
	}
	m, err := sim.NewMachine(bench, cfg)
	if err != nil {
		ev := errEvent(err)
		ev.Code, ev.Status = "bad_request", http.StatusBadRequest
		emit(ev)
		return
	}
	var lastBeat time.Time
	m.OnProgress(func(committed uint64) {
		if time.Since(lastBeat) >= heartbeatEvery {
			lastBeat = time.Now()
			emit(Event{Event: "progress", Instructions: committed})
		}
	})
	start := time.Now()
	res, runErr := m.RunContext(ctx)
	s.simsRun.Add(1)
	up := runpool.Update{Label: bench + "/" + cfg.Scheme.Name, Err: runErr, Elapsed: time.Since(start), Done: 1, Total: 1}
	emit(Event{Event: "update", Update: wireUpdate(up)})
	if runErr != nil {
		ev := errEvent(runErr)
		var serr *secmem.SecurityError
		if errors.As(runErr, &serr) {
			// The partial result up to the halt is still evidence; ship it
			// with the error.
			if body, jerr := res.Snapshot().JSON(); jerr == nil {
				ev.Snapshot = body
			}
		}
		emit(ev)
		return
	}
	body, err := res.Snapshot().JSON()
	if err != nil {
		emit(errEvent(err))
		return
	}
	if !noCache {
		s.cache.Put(key, body)
	}
	emit(Event{Event: "result", Key: key, Snapshot: body})
}

// execExperiment regenerates one figure/table and emits its stream
// events, forwarding every finished grid cell as an update.
func (s *Server) execExperiment(ctx context.Context, id string, opt experiments.Options, key string, noCache bool, emit func(Event)) {
	if err := ctx.Err(); err != nil {
		emit(errEvent(err))
		return
	}
	opt.Progress = func(u runpool.Update) {
		emit(Event{Event: "update", Update: wireUpdate(u)})
		if u.Err == nil {
			s.simsRun.Add(1)
		}
	}
	res, err := experiments.ByID(ctx, id, opt)
	s.expsRun.Add(1)
	if err != nil {
		emit(errEvent(err))
		return
	}
	body, jerr := res.Snapshot().JSON()
	if jerr != nil {
		emit(errEvent(jerr))
		return
	}
	if !noCache {
		s.cache.Put(key, body)
	}
	emit(Event{Event: "result", Key: key, Snapshot: body})
}

// handleResult serves GET /v1/results/{key}: the content-addressed
// fetch path of the cache.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	body, ok := s.cache.Get(key)
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("no cached result for %q", key))
		return
	}
	s.cacheSrvd.Add(1)
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Cache", "hit")
	SetSnapshotDigest(w.Header(), body)
	w.Write(body)
}

func (s *Server) handleBenchmarks(w http.ResponseWriter, r *http.Request) {
	type bench struct {
		Name        string `json:"name"`
		Description string `json:"description"`
		MemoryBound bool   `json:"memory_bound"`
		WriteHeavy  bool   `json:"write_heavy"`
	}
	var out []bench
	for _, n := range workload.Names() {
		sp, _ := workload.Lookup(n)
		out = append(out, bench{Name: sp.Name, Description: sp.Description,
			MemoryBound: sp.MemoryBound, WriteHeavy: sp.WriteHeavy})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleExperimentList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, experiments.IDs())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	ps := s.pool.Stats()
	status := "ok"
	code := http.StatusOK
	if s.isDraining() {
		status = "draining"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]any{
		"status":  status,
		"workers": ps.Workers,
		"running": ps.Running,
		"pending": ps.Pending,
	})
}

// Snapshot exports the server's counters as a metrics tree (the
// /metrics payload): job admission and outcomes at the root, the pool
// and cache as children.
func (s *Server) Snapshot() *stats.Snapshot {
	n := stats.NewSnapshot("server")
	n.Counter("accepted", s.accepted.Load())
	n.Counter("rejected", s.rejected.Load())
	n.Counter("finished", s.finished.Load())
	n.Counter("failed", s.failed.Load())
	n.Counter("sims_run", s.simsRun.Load())
	n.Counter("experiments_run", s.expsRun.Load())
	n.Counter("streamed", s.streamed.Load())
	n.Counter("cache_served", s.cacheSrvd.Load())
	n.Value("uptime_seconds", time.Since(s.start).Seconds())
	n.Value("mean_job_ms", float64(s.meanJobLatency())/float64(time.Millisecond))

	ps := s.pool.Stats()
	pn := n.Child("pool")
	pn.Counter("submitted", ps.Submitted)
	pn.Counter("rejected", ps.Rejected)
	pn.Counter("completed", ps.Completed)
	pn.Counter("panics", ps.Panics)
	pn.Counter("workers", uint64(ps.Workers))
	pn.Counter("backlog", uint64(ps.Backlog))
	pn.Counter("pending", uint64(ps.Pending))
	pn.Counter("running", uint64(ps.Running))
	// The gauges a load balancer steers by: how full the execution slots
	// are (running/workers) and how deep the backlog sits behind them
	// (pending/backlog; 0 when no backlog is configured).
	pn.Value("occupancy", ps.Occupancy())
	pn.Value("backlog_depth", backlogDepth(ps))

	cs := s.cache.Stats()
	cn := n.Child("cache")
	cn.Counter("entries", uint64(cs.Entries))
	cn.Counter("capacity", uint64(max(cs.Capacity, 0)))
	cn.Counter("hits", cs.Hits)
	cn.Counter("misses", cs.Misses)
	cn.Counter("evictions", cs.Evictions)

	s.endpoints.addTo(n.Child("endpoints"))
	return n
}

// backlogDepth is the fraction of the configured backlog in use, 0 when
// the pool runs without one.
func backlogDepth(ps runpool.PoolStats) float64 {
	if ps.Backlog <= 0 {
		return 0
	}
	return float64(ps.Pending) / float64(ps.Backlog)
}

// endpointCounters counts requests per route, keyed by a short stable
// name so the /metrics tree stays deterministic as routes come and go.
type endpointCounters struct {
	mu     sync.Mutex
	counts map[string]uint64
}

// counted wraps a handler so every invocation increments the named
// endpoint's counter.
func (e *endpointCounters) counted(name string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		e.mu.Lock()
		if e.counts == nil {
			e.counts = make(map[string]uint64)
		}
		e.counts[name]++
		e.mu.Unlock()
		h(w, r)
	}
}

// addTo exports one counter per endpoint (serialization sorts by name).
func (e *endpointCounters) addTo(n *stats.Snapshot) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for name, v := range e.counts {
		n.Counter(name, v)
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	body, err := s.Snapshot().JSON()
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(body)
}

// --- plumbing ---

func wantsStream(r *http.Request) bool {
	if v := r.URL.Query().Get("stream"); v == "1" || v == "true" {
		return true
	}
	for _, accept := range r.Header.Values("Accept") {
		if accept == "application/x-ndjson" || accept == "application/ndjson" {
			return true
		}
	}
	return false
}

// streamWriter emits NDJSON lines, flushing after each so progress
// reaches the client as it happens. Writes to a stalled client get a
// bounded deadline instead of wedging the handler.
type streamWriter struct {
	w      http.ResponseWriter
	rc     *http.ResponseController
	enc    *json.Encoder
	broken bool
}

func newStreamWriter(w http.ResponseWriter) *streamWriter {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	return &streamWriter{w: w, rc: http.NewResponseController(w), enc: json.NewEncoder(w)}
}

func (sw *streamWriter) write(ev Event) {
	if sw.broken {
		return
	}
	sw.rc.SetWriteDeadline(time.Now().Add(30 * time.Second))
	if err := sw.enc.Encode(ev); err != nil {
		sw.broken = true
		return
	}
	sw.rc.Flush()
}

func decodeJSON(w http.ResponseWriter, r *http.Request, dst any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("request body: %w", err))
		return false
	}
	return true
}

func httpError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
