package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"

	"ctrpred/internal/experiments"
	"ctrpred/internal/runpool"
	"ctrpred/internal/sha256"
	"ctrpred/internal/sim"
)

// snapshotDigestHeader carries the hex SHA-256 of a canonical snapshot
// body on every plain JSON result, so relays (the cluster coordinator)
// can verify the bytes they received are the bytes the origin computed
// and treat a corrupted body as a transport failure instead of an
// answer.
const snapshotDigestHeader = "X-Snapshot-Digest"

// BodyDigest returns the hex SHA-256 of a response body: the value of
// the X-Snapshot-Digest header a server attaches to plain results and
// a relay verifies before trusting them.
func BodyDigest(b []byte) string {
	return fmt.Sprintf("%x", sha256.Sum256(b))
}

// Classify maps a job error to its stream error code and HTTP status —
// the same mapping the server's own handlers use. Exported so the
// cluster coordinator's degraded-mode local execution shapes errors
// exactly as a worker would have.
func Classify(err error) (code string, status int) { return classify(err) }

// badRequestError marks an ExecuteLocal failure as the request's fault
// (malformed body, unknown benchmark), so Classify maps it to the same
// status a worker's HTTP handler would have returned instead of a 500.
type badRequestError struct{ err error }

func (e *badRequestError) Error() string { return e.err.Error() }
func (e *badRequestError) Unwrap() error { return e.err }

func badRequest(err error) error {
	if err == nil {
		return nil
	}
	return &badRequestError{err: err}
}

// ExecuteLocal runs a job request body in-process, bypassing HTTP and
// the job pool: the cluster coordinator's degraded-mode fallback when
// every worker is down. path selects the job type ("/v1/sim" or
// "/v1/experiments"); body is the same JSON a worker would have
// received. The returned bytes are the canonical snapshot JSON —
// byte-identical to what a healthy worker would have served, because a
// run is fully determined by its configuration.
//
// All errors classify via Classify: bad bodies map to the same 4xx a
// worker's HTTP handler would have sent, run failures to their usual
// codes.
func ExecuteLocal(ctx context.Context, path string, body []byte) ([]byte, error) {
	switch path {
	case "/v1/sim":
		var req SimRequest
		if err := decodeStrict(body, &req); err != nil {
			return nil, badRequest(err)
		}
		bench, cfg, err := req.buildSim()
		if err != nil {
			return nil, badRequest(err)
		}
		m, err := sim.NewMachine(bench, cfg)
		if err != nil {
			return nil, err
		}
		res, err := m.RunContext(ctx)
		if err != nil {
			return nil, err
		}
		return res.Snapshot().JSON()
	case "/v1/experiments":
		var req ExperimentRequest
		if err := decodeStrict(body, &req); err != nil {
			return nil, badRequest(err)
		}
		opt, err := req.buildExperiment(runpool.DefaultWorkers())
		if err != nil {
			return nil, badRequest(err)
		}
		res, err := experiments.ByID(ctx, req.ID, opt)
		if err != nil {
			return nil, err
		}
		return res.Snapshot().JSON()
	default:
		return nil, badRequest(fmt.Errorf("local execution supports /v1/sim and /v1/experiments, not %q", path))
	}
}

func decodeStrict(body []byte, dst any) error {
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return fmt.Errorf("request body: %w", err)
	}
	return nil
}

// SetSnapshotDigest stamps the integrity digest of a canonical
// snapshot body onto a response's headers.
func SetSnapshotDigest(h http.Header, body []byte) {
	h.Set(snapshotDigestHeader, BodyDigest(body))
}

// SnapshotDigest reads the integrity digest from response headers
// ("" when the origin attached none).
func SnapshotDigest(h http.Header) string { return h.Get(snapshotDigestHeader) }
