package server

import (
	"container/list"
	"sync"
)

// resultCache is the content-addressed store of completed results:
// canonical request hash → final snapshot JSON. Entries are immutable —
// a key fully determines the simulation output — so a hit is served
// without touching the job queue at all. Bounded LRU; a repeated sweep
// of distinct configs evicts the coldest results first.
type resultCache struct {
	mu      sync.Mutex
	cap     int
	byKey   map[string]*list.Element
	order   list.List // front = most recently used
	hits    uint64
	misses  uint64
	evicted uint64
}

type cacheEntry struct {
	key  string
	body []byte
}

// newResultCache builds a cache holding up to capacity results;
// capacity <= 0 disables caching (every lookup misses, puts are
// dropped).
func newResultCache(capacity int) *resultCache {
	return &resultCache{cap: capacity, byKey: make(map[string]*list.Element)}
}

func (c *resultCache) get(key string) ([]byte, bool) {
	if c == nil || c.cap <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).body, true
}

func (c *resultCache) put(key string, body []byte) {
	if c == nil || c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		// Same key ⇒ same bytes; just refresh recency.
		c.order.MoveToFront(el)
		return
	}
	c.byKey[key] = c.order.PushFront(&cacheEntry{key: key, body: body})
	for len(c.byKey) > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.byKey, oldest.Value.(*cacheEntry).key)
		c.evicted++
	}
}

type cacheStats struct {
	entries, capacity       int
	hits, misses, evictions uint64
}

func (c *resultCache) stats() cacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return cacheStats{
		entries: len(c.byKey), capacity: c.cap,
		hits: c.hits, misses: c.misses, evictions: c.evicted,
	}
}
