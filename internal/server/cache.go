package server

import (
	"container/list"
	"sync"
)

// ResultCache is the content-addressed store of completed results:
// canonical request hash → final snapshot JSON. Entries are immutable —
// a key fully determines the simulation output — so a hit is served
// without touching the job queue at all. Bounded LRU; a repeated sweep
// of distinct configs evicts the coldest results first.
//
// It is exported because the cluster coordinator keeps one of its own:
// assembled experiment results and proxied simulations are cached at
// the coordinator under the same keys the workers use, so a warm rerun
// never crosses the network at all.
type ResultCache struct {
	mu      sync.Mutex
	cap     int
	byKey   map[string]*list.Element
	order   list.List // front = most recently used
	hits    uint64
	misses  uint64
	evicted uint64
}

type cacheEntry struct {
	key  string
	body []byte
}

// NewResultCache builds a cache holding up to capacity results;
// capacity <= 0 disables caching (every lookup misses, puts are
// dropped).
func NewResultCache(capacity int) *ResultCache {
	return &ResultCache{cap: capacity, byKey: make(map[string]*list.Element)}
}

// Get returns the cached body for key, if present.
func (c *ResultCache) Get(key string) ([]byte, bool) {
	if c == nil || c.cap <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).body, true
}

// Put stores body under key, evicting the least recently used entries
// past capacity.
func (c *ResultCache) Put(key string, body []byte) {
	if c == nil || c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		// Same key ⇒ same bytes; just refresh recency.
		c.order.MoveToFront(el)
		return
	}
	c.byKey[key] = c.order.PushFront(&cacheEntry{key: key, body: body})
	for len(c.byKey) > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.byKey, oldest.Value.(*cacheEntry).key)
		c.evicted++
	}
}

// CacheStats is a point-in-time view of a ResultCache's counters.
type CacheStats struct {
	Entries, Capacity       int
	Hits, Misses, Evictions uint64
}

// Stats returns the cache's counters.
func (c *ResultCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Entries: len(c.byKey), Capacity: c.cap,
		Hits: c.hits, Misses: c.misses, Evictions: c.evicted,
	}
}
