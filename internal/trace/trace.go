// Package trace provides a compact binary memory-reference trace format,
// synthetic reference generators, and a replay driver for the memory
// hierarchy. Traces decouple workload generation from simulation: the
// tracegen tool emits a trace once, and predictor or cache studies replay
// it under many configurations, the way trace-driven studies complement
// the paper's execution-driven SimpleScalar runs.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"ctrpred/internal/memsys"
	"ctrpred/internal/rng"
)

// Ref is one memory reference.
type Ref struct {
	Addr  uint64
	Write bool
}

// magic identifies trace files; the byte after it is the format version.
var magic = [4]byte{'C', 'T', 'R', 'T'}

const version = 1

// Writer streams refs to an io.Writer. Each record is one varint-free
// fixed 8-byte word: address shifted left one bit, low bit = write. (Line
// addresses are ≤ 2^48 in practice, so the shift never overflows.)
type Writer struct {
	w     *bufio.Writer
	count uint64
}

// NewWriter writes the header and returns a Writer.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return nil, err
	}
	if err := bw.WriteByte(version); err != nil {
		return nil, err
	}
	return &Writer{w: bw}, nil
}

// Append writes one reference.
func (w *Writer) Append(r Ref) error {
	if r.Addr >= 1<<63 {
		return fmt.Errorf("trace: address %#x too large", r.Addr)
	}
	var buf [8]byte
	v := r.Addr << 1
	if r.Write {
		v |= 1
	}
	binary.LittleEndian.PutUint64(buf[:], v)
	if _, err := w.w.Write(buf[:]); err != nil {
		return err
	}
	w.count++
	return nil
}

// Count reports how many references have been appended.
func (w *Writer) Count() uint64 { return w.count }

// Flush flushes buffered records to the underlying writer.
func (w *Writer) Flush() error { return w.w.Flush() }

// Reader iterates over a trace stream.
type Reader struct {
	r *bufio.Reader
}

// NewReader validates the header and returns a Reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	var hdr [5]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: short header: %w", err)
	}
	if [4]byte(hdr[:4]) != magic {
		return nil, errors.New("trace: bad magic")
	}
	if hdr[4] != version {
		return nil, fmt.Errorf("trace: unsupported version %d", hdr[4])
	}
	return &Reader{r: br}, nil
}

// Next returns the next reference, or io.EOF when the trace ends.
func (r *Reader) Next() (Ref, error) {
	var buf [8]byte
	if _, err := io.ReadFull(r.r, buf[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return Ref{}, errors.New("trace: truncated record")
		}
		return Ref{}, err
	}
	v := binary.LittleEndian.Uint64(buf[:])
	return Ref{Addr: v >> 1, Write: v&1 == 1}, nil
}

// Kind names a synthetic generator.
type Kind string

const (
	// KindStream sweeps sequentially with a configurable write mix.
	KindStream Kind = "stream"
	// KindPointer jumps pseudo-randomly (pointer-chasing locality).
	KindPointer Kind = "pointer"
	// KindZipf concentrates references on hot lines, power-law style.
	KindZipf Kind = "zipf"
	// KindMixed interleaves the three above.
	KindMixed Kind = "mixed"
)

// Kinds lists the synthetic generator names.
func Kinds() []Kind { return []Kind{KindStream, KindPointer, KindZipf, KindMixed} }

// Synthetic produces n references over a footprint of the given bytes,
// starting at base, deterministically from seed.
func Synthetic(kind Kind, n int, footprint int, base uint64, seed uint64) ([]Ref, error) {
	if footprint < 64 || n < 0 {
		return nil, fmt.Errorf("trace: degenerate synthetic parameters (n=%d footprint=%d)", n, footprint)
	}
	r := rng.New(seed)
	lines := footprint / 32
	refs := make([]Ref, 0, n)
	addr := func(line int) uint64 { return base + uint64(line)*32 }
	cursor := 0
	for i := 0; i < n; i++ {
		k := kind
		if k == KindMixed {
			switch r.Intn(3) {
			case 0:
				k = KindStream
			case 1:
				k = KindPointer
			default:
				k = KindZipf
			}
		}
		switch k {
		case KindStream:
			refs = append(refs, Ref{Addr: addr(cursor), Write: r.Bool(0.3)})
			cursor = (cursor + 1) % lines
		case KindPointer:
			refs = append(refs, Ref{Addr: addr(r.Intn(lines)), Write: r.Bool(0.05)})
		case KindZipf:
			refs = append(refs, Ref{Addr: addr(r.Zipf(lines, 2.0)), Write: r.Bool(0.5)})
		default:
			return nil, fmt.Errorf("trace: unknown kind %q", kind)
		}
	}
	return refs, nil
}

// ReplayStats summarizes a replay.
type ReplayStats struct {
	Refs   uint64
	Cycles uint64
}

// Replay drives the references through a memory hierarchy, one reference
// per cycle (hit-rate fidelity, not IPC).
func Replay(refs []Ref, sys *memsys.System) ReplayStats {
	now := uint64(0)
	for _, r := range refs {
		now++
		sys.Access(now, r.Addr, r.Write)
	}
	sys.DrainDirty(now)
	return ReplayStats{Refs: uint64(len(refs)), Cycles: now}
}

// ReplayReader drives references from a Reader until EOF.
func ReplayReader(r *Reader, sys *memsys.System) (ReplayStats, error) {
	now := uint64(0)
	var n uint64
	for {
		ref, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return ReplayStats{}, err
		}
		now++
		n++
		sys.Access(now, ref.Addr, ref.Write)
	}
	sys.DrainDirty(now)
	return ReplayStats{Refs: n, Cycles: now}, nil
}
