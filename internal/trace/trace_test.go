package trace

import (
	"bytes"
	"io"
	"testing"

	"ctrpred/internal/cryptoengine"
	"ctrpred/internal/ctr"
	"ctrpred/internal/dram"
	"ctrpred/internal/mem"
	"ctrpred/internal/memsys"
	"ctrpred/internal/predictor"
	"ctrpred/internal/secmem"
)

func TestWriteReadRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	refs := []Ref{
		{Addr: 0x1000, Write: false},
		{Addr: 0x2020, Write: true},
		{Addr: 0, Write: true},
	}
	for _, r := range refs {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != 3 {
		t.Fatalf("count = %d", w.Count())
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range refs {
		got, err := r.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("record %d = %+v, want %+v", i, got, want)
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestWriterRejectsHugeAddr(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	if err := w.Append(Ref{Addr: 1 << 63}); err == nil {
		t.Fatal("oversized address accepted")
	}
}

func TestReaderRejectsBadHeader(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("JUNK0"))); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := NewReader(bytes.NewReader([]byte{'C', 'T', 'R', 'T', 99})); err == nil {
		t.Fatal("bad version accepted")
	}
	if _, err := NewReader(bytes.NewReader([]byte("CT"))); err == nil {
		t.Fatal("short header accepted")
	}
}

func TestTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Append(Ref{Addr: 64})
	w.Flush()
	data := buf.Bytes()[:buf.Len()-3] // chop mid-record
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err == nil {
		t.Fatal("truncated record read successfully")
	}
}

func TestSyntheticKinds(t *testing.T) {
	for _, kind := range Kinds() {
		refs, err := Synthetic(kind, 1000, 64<<10, 0x100000, 7)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if len(refs) != 1000 {
			t.Fatalf("%s: %d refs", kind, len(refs))
		}
		writes := 0
		for _, r := range refs {
			if r.Addr < 0x100000 || r.Addr >= 0x100000+64<<10 {
				t.Fatalf("%s: ref %#x outside footprint", kind, r.Addr)
			}
			if r.Addr%32 != 0 {
				t.Fatalf("%s: ref %#x not line aligned", kind, r.Addr)
			}
			if r.Write {
				writes++
			}
		}
		if writes == 0 || writes == len(refs) {
			t.Fatalf("%s: degenerate write mix (%d writes)", kind, writes)
		}
	}
}

func TestSyntheticDeterministic(t *testing.T) {
	a, _ := Synthetic(KindZipf, 500, 32<<10, 0, 9)
	b, _ := Synthetic(KindZipf, 500, 32<<10, 0, 9)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("divergence at %d", i)
		}
	}
}

func TestSyntheticErrors(t *testing.T) {
	if _, err := Synthetic(KindStream, 10, 1, 0, 1); err == nil {
		t.Fatal("tiny footprint accepted")
	}
	if _, err := Synthetic(Kind("weird"), 10, 4096, 0, 1); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestZipfConcentratesHits(t *testing.T) {
	// Zipf traffic should hit caches far more often than uniform pointer
	// traffic over the same footprint.
	hitRate := func(kind Kind) float64 {
		sys := newTestSys(t)
		refs, _ := Synthetic(kind, 20000, 1<<20, 0x100000, 11)
		Replay(refs, sys)
		_, l1d, _ := sys.Caches()
		return l1d.Stats().HitRate()
	}
	if z, p := hitRate(KindZipf), hitRate(KindPointer); z <= p {
		t.Fatalf("zipf hit rate %.3f not above pointer %.3f", z, p)
	}
}

func newTestSys(t *testing.T) *memsys.System {
	t.Helper()
	var key [32]byte
	image := mem.New()
	d := dram.New(dram.DefaultConfig())
	e := cryptoengine.New(cryptoengine.DefaultConfig(), ctr.NewKeystream(key))
	p := predictor.New(predictor.DefaultConfig(predictor.SchemeRegular))
	ctrl := secmem.New(secmem.DefaultConfig(), d, e, p, nil, image)
	cfg := memsys.DefaultConfig()
	cfg.L2Size = 32 << 10
	cfg.FlushInterval = 0
	return memsys.New(cfg, ctrl)
}

func TestReplayDrivesHierarchy(t *testing.T) {
	sys := newTestSys(t)
	refs, _ := Synthetic(KindStream, 5000, 256<<10, 0x100000, 3)
	st := Replay(refs, sys)
	if st.Refs != 5000 || st.Cycles != 5000 {
		t.Fatalf("stats = %+v", st)
	}
	if sys.Controller().Stats().Fetches == 0 {
		t.Fatal("replay caused no memory fetches")
	}
	if sys.Controller().Stats().Evictions == 0 {
		t.Fatal("replay caused no writebacks (stream writes should)")
	}
}

func TestReplayReaderMatchesReplay(t *testing.T) {
	refs, _ := Synthetic(KindMixed, 3000, 128<<10, 0x100000, 5)

	sysA := newTestSys(t)
	stA := Replay(refs, sysA)

	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	for _, r := range refs {
		w.Append(r)
	}
	w.Flush()
	rd, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	sysB := newTestSys(t)
	stB, err := ReplayReader(rd, sysB)
	if err != nil {
		t.Fatal(err)
	}
	if stA != stB {
		t.Fatalf("replay stats differ: %+v vs %+v", stA, stB)
	}
	if sysA.Controller().Stats().Fetches != sysB.Controller().Stats().Fetches {
		t.Fatal("fetch counts differ between direct and file replay")
	}
}
