// Package ctrpred is a from-scratch reproduction of "High Efficiency
// Counter Mode Security Architecture via Prediction and Precomputation"
// (Shi, Lee, Ghosh, Lu, Boldyreva — ISCA 2005).
//
// The library contains everything the paper's evaluation needs, built on
// the Go standard library alone:
//
//   - a counter-mode memory-encryption layer over a from-scratch AES-256
//     (pads of the form AES(key, vaddr‖counter) XORed with 32-byte lines),
//   - the paper's contribution: sequence-number (OTP) prediction and
//     precomputation — regular, adaptive (PHV root resets), two-level
//     (range table) and context-based (LOR) predictors,
//   - the baselines: sequence-number caches of any size and an oracle,
//   - the substrate: pluggable cipher-engine timing models (the paper's
//     pipelined AES plus banked in-SRAM and low-latency designs),
//     set-associative caches, TLBs, an SDRAM bank/bus model, an
//     out-of-order core running a small RISC ISA, and fourteen
//     SPEC2000-like workload kernels,
//   - an experiment harness that regenerates every table and figure of
//     the paper's evaluation.
//
// # Quick start
//
//	cfg := ctrpred.DefaultConfig(ctrpred.SchemePred(ctrpred.PredContext))
//	res, err := ctrpred.Run("mcf", cfg)
//	fmt.Println(res.IPC(), res.PredRate())
//
// Figures:
//
//	fig, err := ctrpred.RunExperiment("fig7", ctrpred.DefaultOptions())
//	fmt.Println(fig.Table)
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-vs-measured record.
package ctrpred

import (
	"context"

	"ctrpred/internal/cryptoengine"
	"ctrpred/internal/experiments"
	"ctrpred/internal/faults"
	"ctrpred/internal/predictor"
	"ctrpred/internal/runpool"
	"ctrpred/internal/secmem"
	"ctrpred/internal/sim"
	"ctrpred/internal/stats"
	"ctrpred/internal/tenancy"
	"ctrpred/internal/workload"
)

// Re-exported simulator types. The aliases make the internal packages'
// types usable by external importers of this module.
type (
	// Config is a full machine + run configuration.
	Config = sim.Config
	// Scheme selects the counter-availability mechanism under test.
	Scheme = sim.Scheme
	// Result carries the statistics of one simulation run.
	Result = sim.Result
	// Mode selects performance (IPC) or hit-rate fidelity.
	Mode = sim.Mode
	// Scale controls workload footprint and instruction budget.
	Scale = workload.Scale
	// PredScheme selects a prediction algorithm.
	PredScheme = predictor.Scheme
	// PredConfig exposes every predictor knob (depth, swing, PHV, …).
	PredConfig = predictor.Config
	// Machine is an assembled simulator instance for direct component
	// access (the examples use it).
	Machine = sim.Machine
	// ExperimentOptions scopes and scales a figure regeneration. Its
	// Workers field caps concurrent simulations per sweep (0 = one per
	// CPU); Progress receives one RunUpdate per finished simulation.
	ExperimentOptions = experiments.Options
	// ExperimentResult is one regenerated figure or table.
	ExperimentResult = experiments.Result
	// RunUpdate reports one finished simulation of a parallel sweep to
	// the ExperimentOptions.Progress callback.
	RunUpdate = runpool.Update
	// Snapshot is the structured metrics tree that Result.Snapshot and
	// ExperimentResult.Snapshot export (deterministic JSON/CSV).
	Snapshot = stats.Snapshot
	// PartialError reports a sweep interrupted by context cancellation
	// or deadline expiry; its Completed field lists the grid cells that
	// finished. errors.Is(err, context.Canceled) matches through it.
	PartialError = runpool.PartialError
	// SecurityError is the typed error a run returns when tampering is
	// detected (or a self-check fails) under the Halt recovery policy.
	// errors.Is matches it against ErrTamperDetected/ErrSelfCheckFailed;
	// errors.As extracts the line address, counter, cycle and scheme.
	SecurityError = secmem.SecurityError
	// SecurityStats counts recovery-path events (quarantines, retries,
	// heals) of a run under the Quarantine policy.
	SecurityStats = secmem.SecurityStats
	// RecoveryPolicy selects what the controller does on a detected
	// tamper: halt the run or quarantine-and-continue.
	RecoveryPolicy = secmem.RecoveryPolicy
	// FaultPlan is a deterministic attack schedule for Config.Faults.
	FaultPlan = faults.Plan
	// FaultAttack is one scheduled corruption: an attack class plus the
	// trigger that gates it.
	FaultAttack = faults.Attack
	// FaultTrigger gates when an attack fires (fetch ordinal, committed
	// instructions, cycle, address predicate).
	FaultTrigger = faults.Trigger
	// FaultKind is an attack class of the threat model.
	FaultKind = faults.Kind
	// FaultStats is the injector's per-class injection/detection ledger.
	FaultStats = faults.Stats
	// EngineModel is the timing contract a cipher-engine model satisfies;
	// Config.Engine selects one by spec and Machine.Engine exposes the
	// built instance.
	EngineModel = cryptoengine.EngineModel
	// EngineSpec names a cipher-engine model plus its timing parameters
	// ("aes", "sealer", "bipbip" with lat/issue/banks knobs). The zero
	// value is the paper's default pipelined AES.
	EngineSpec = cryptoengine.Spec
	// EngineStats is the engine-activity ledger a Result carries.
	EngineStats = cryptoengine.Stats
	// TenancyScenario is a complete multi-tenant scenario: the tenants to
	// interleave, the arrival process, the predictor retention policy and
	// the SLO to judge against.
	TenancyScenario = tenancy.Config
	// TenancyTenant is one tenant of a scenario: a benchmark plus the
	// machine configuration (and key domain, via its seed) it runs under.
	TenancyTenant = tenancy.Tenant
	// TenancySLO declares per-tenant service-level bounds (p99 fetch
	// latency, architectural IPC degradation, end-to-end slowdown).
	TenancySLO = tenancy.SLO
	// TenancyReport is the outcome of one interleaved scenario, with
	// per-tenant and aggregate SLO metrics.
	TenancyReport = tenancy.Report
	// TenantReport carries one tenant's SLO metrics from a scenario.
	TenantReport = tenancy.TenantReport
	// ArrivalKind selects the job-arrival process shaping each tenant's
	// offered load.
	ArrivalKind = tenancy.ArrivalKind
)

// Sentinel errors for errors.Is dispatch. Run and RunExperiment wrap
// these (with the offending name and the valid set) rather than
// returning bare formatted strings.
var (
	// ErrUnknownBenchmark reports a benchmark name outside Benchmarks().
	ErrUnknownBenchmark = workload.ErrUnknownBenchmark
	// ErrUnknownExperiment reports an id outside ExperimentIDs().
	ErrUnknownExperiment = experiments.ErrUnknownExperiment
	// ErrUnknownScheme reports a scheme string ParseScheme cannot parse.
	ErrUnknownScheme = sim.ErrUnknownScheme
	// ErrUnknownEngine reports an engine spec naming no known cipher-
	// engine model (ParseEngine and Run/NewMachine wrap it).
	ErrUnknownEngine = cryptoengine.ErrUnknownEngine
	// ErrTamperDetected reports integrity verification failing on a
	// fetched line (every *SecurityError of kind tamper wraps it).
	ErrTamperDetected = secmem.ErrTamperDetected
	// ErrSelfCheckFailed reports the simulator's plaintext self-check
	// mismatching on an authentic line — an invariant violation, not an
	// attack (every *SecurityError of kind self-check wraps it).
	ErrSelfCheckFailed = secmem.ErrSelfCheckFailed
)

// Simulation modes.
const (
	// ModePerformance runs the out-of-order timing model.
	ModePerformance = sim.Performance
	// ModeHitRate runs the fast functional model for long windows.
	ModeHitRate = sim.HitRate
)

// Prediction schemes (Section 3 and Section 7 of the paper).
const (
	PredNone     = predictor.SchemeNone
	PredRegular  = predictor.SchemeRegular
	PredTwoLevel = predictor.SchemeTwoLevel
	PredContext  = predictor.SchemeContext
)

// Recovery policies for Config.Recovery.
const (
	// RecoveryHalt (the default) stops the run at the first detected
	// tamper; the run's error is a *SecurityError.
	RecoveryHalt = secmem.RecoveryHalt
	// RecoveryQuarantine re-fetches the tampered line within a bounded
	// retry budget, heals it from the architectural image if retries are
	// exhausted, counts the degradation and continues.
	RecoveryQuarantine = secmem.RecoveryQuarantine
)

// Arrival processes for TenancyScenario.Kind.
const (
	// ArrivalPoisson draws independent exponential inter-arrival gaps.
	ArrivalPoisson = tenancy.Poisson
	// ArrivalBursty draws an on-off process: bursts of back-to-back jobs
	// separated by long idle gaps, at the same mean load.
	ArrivalBursty = tenancy.Bursty
)

// Attack classes for FaultAttack.Kind.
const (
	FaultBitFlip     = faults.BitFlip
	FaultSplice      = faults.Splice
	FaultReplay      = faults.Replay
	FaultRollback    = faults.Rollback
	FaultNodeCorrupt = faults.NodeCorrupt
)

// DefaultConfig returns the paper's Table 1 machine with the given
// scheme, a 256 KB L2, and the default workload scale.
func DefaultConfig(s Scheme) Config { return sim.DefaultConfig(s) }

// Canonical schemes.
func SchemeBaseline() Scheme          { return sim.SchemeBaseline() }
func SchemeOracle() Scheme            { return sim.SchemeOracle() }
func SchemeDirect() Scheme            { return sim.SchemeDirect() }
func SchemeSeqCache(bytes int) Scheme { return sim.SchemeSeqCache(bytes) }
func SchemePred(p PredScheme) Scheme  { return sim.SchemePred(p) }
func SchemeCombined(bytes int, p PredScheme) Scheme {
	return sim.SchemeCombined(bytes, p)
}

// DefaultPredConfig returns the Table 1 predictor parameters for a
// scheme (depth 5, swing 3, 16-bit PHV, threshold 12, 64-entry range
// table).
func DefaultPredConfig(p PredScheme) PredConfig { return predictor.DefaultConfig(p) }

// Benchmarks lists the fourteen SPEC2000-like workload kernels.
func Benchmarks() []string { return workload.Names() }

// BenchmarkInfo describes one workload kernel.
type BenchmarkInfo struct {
	Name        string
	Description string
	MemoryBound bool
	WriteHeavy  bool
}

// BenchmarkCatalog returns metadata for every kernel.
func BenchmarkCatalog() []BenchmarkInfo {
	var out []BenchmarkInfo
	for _, n := range workload.Names() {
		s, _ := workload.Lookup(n)
		out = append(out, BenchmarkInfo{
			Name:        s.Name,
			Description: s.Description,
			MemoryBound: s.MemoryBound,
			WriteHeavy:  s.WriteHeavy,
		})
	}
	return out
}

// Run executes the named benchmark under cfg and returns its statistics.
func Run(bench string, cfg Config) (Result, error) { return sim.Run(bench, cfg) }

// RunContext is Run with cancellation: ctx is polled every
// Config.CheckInterval committed instructions, so a cancel or deadline
// lands within one checkpoint interval of simulated work. The partial
// Result accumulated so far is returned alongside the context's error.
// A run whose context is never cancelled is cycle-for-cycle identical
// to Run.
func RunContext(ctx context.Context, bench string, cfg Config) (Result, error) {
	return sim.RunContext(ctx, bench, cfg)
}

// ParseScheme parses a scheme string ("baseline", "oracle", "direct",
// "pred-regular", "pred-twolevel", "pred-context", "seqcache:<size>",
// "combined:<size>"); unknown strings wrap ErrUnknownScheme.
func ParseScheme(s string) (Scheme, error) { return sim.ParseScheme(s) }

// ParseEngine parses a cipher-engine spec ("aes", "aes:lat=48",
// "sealer", "sealer:banks=8", "bipbip", …); the empty string is the
// default pipelined AES, and unknown model names wrap ErrUnknownEngine.
// Apply the result with Config.WithEngine.
func ParseEngine(s string) (EngineSpec, error) { return cryptoengine.ParseEngine(s) }

// DefaultEngineSpec returns the paper's Table 1 engine: fully pipelined
// AES, 96-cycle latency, one pad request per cycle.
func DefaultEngineSpec() EngineSpec { return cryptoengine.DefaultSpec() }

// ParseSize parses a capacity with an optional K/M suffix ("32K", "1M").
func ParseSize(s string) (int, error) { return sim.ParseSize(s) }

// ParseFaultPlan parses an attack schedule of the form
// "kind[@cond:val]…[,kind…]" — e.g.
// "bitflip@fetch:100,replay@instr:50000@addr:0x1f000". Kinds are
// bitflip, splice, replay, rollback and nodecorrupt; conditions are
// fetch, instr, cycle and addr (addr takes HEX or HEX/MASK).
func ParseFaultPlan(s string) (FaultPlan, error) { return faults.ParsePlan(s) }

// ParseRecovery parses a recovery policy name ("halt" or "quarantine").
func ParseRecovery(s string) (RecoveryPolicy, error) { return secmem.ParseRecovery(s) }

// ParseArrival parses an arrival-process name ("poisson" or "bursty";
// the empty string is Poisson).
func ParseArrival(s string) (ArrivalKind, error) { return tenancy.ParseArrival(s) }

// RunTenancy executes a multi-tenant scenario: solo baselines first
// (unless supplied via TenancyScenario.SoloIPC), then the interleaved
// run over the seeded arrival schedule. Deterministic: a scenario is
// byte-identical across runs. The report's Snapshot exports per-tenant
// and aggregate SLO metrics as a metrics tree.
func RunTenancy(ctx context.Context, cfg TenancyScenario) (TenancyReport, error) {
	return tenancy.Run(ctx, cfg)
}

// NewMachine assembles a simulator without running it, for callers that
// want to inspect or drive components directly.
func NewMachine(bench string, cfg Config) (*Machine, error) {
	return sim.NewMachine(bench, cfg)
}

// ConfigFingerprint returns the content address of a run: a sha256 hex
// digest over the benchmark name and the canonical encoding of cfg.
// Because a run is fully determined by its configuration, two calls with
// the same fingerprint produce byte-identical metrics snapshots — this
// is the cache key the ctrpredd job server files results under.
// Result-neutral fields (Config.CheckInterval) are excluded.
func ConfigFingerprint(bench string, cfg Config) string {
	return sim.Fingerprint(bench, cfg)
}

// DefaultOptions returns the default experiment scope (all benchmarks)
// and scale.
func DefaultOptions() ExperimentOptions { return experiments.DefaultOptions() }

// RunExperiment regenerates one of the paper's tables or figures by id
// ("table1", "fig4", "fig7" … "fig16", "ablation"), or one of the
// extension studies ("ctxswitch", "integrity", "hybrid", "seqsweep",
// "valuepred", "attack", "engines"). Each simulation of the figure's
// benchmark × scheme grid is independent, so they run concurrently
// across opt.Workers workers;
// results are assembled in input order, making the output byte-identical
// for any worker count at a given seed.
func RunExperiment(id string, opt ExperimentOptions) (ExperimentResult, error) {
	return experiments.ByID(context.Background(), id, opt)
}

// RunExperimentContext is RunExperiment with cancellation: the context
// stops the sweep between simulations and — via the per-run instruction
// checkpoints — inside them. On interruption the error wraps the
// context's error and, as a *PartialError, lists which grid cells had
// already finished. opt.SimTimeout additionally bounds every individual
// simulation with its own deadline.
func RunExperimentContext(ctx context.Context, id string, opt ExperimentOptions) (ExperimentResult, error) {
	return experiments.ByID(ctx, id, opt)
}

// ExperimentIDs lists every regenerable table/figure id in paper order.
func ExperimentIDs() []string { return experiments.IDs() }
