package main

import (
	"strings"
	"testing"
)

// TestLoadtestSmoke runs the whole harness in its quick self-test
// shape: a 2-worker cluster, cold + warm + verify phases, byte-identity
// and warm-cache assertions. This is the same invocation `make
// loadtest-smoke` (and therefore `make verify`) runs.
func TestLoadtestSmoke(t *testing.T) {
	var out, errOut strings.Builder
	args := []string{"-smoke", "-requests", "8", "-clients", "4", "-seeds", "2", "-instr", "2000"}
	if code := run(args, &out, &errOut); code != 0 {
		t.Fatalf("loadtest -smoke = %d\nstdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "loadtest smoke: PASS") {
		t.Fatalf("missing PASS line:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "cache-hit 100.0%") {
		t.Fatalf("warm phase not fully cached:\n%s", out.String())
	}
}

// TestBenchLineShape pins the -bench output contract cmd/benchjson
// parses: starts with "Benchmark", no spaces in the name, and an even
// number of fields after it ((value, unit) pairs following the
// iteration count).
func TestBenchLineShape(t *testing.T) {
	res := result{
		requests:       8,
		coldWall:       1e9,
		coldThroughput: 8,
		coldP99:        420.5,
		warmP50:        1.2,
		warmHitRatio:   1,
	}
	for _, tc := range []struct {
		opt  options
		name string
	}{
		{options{}, "BenchmarkClusterSweepNodes2"},
		// Chaos runs report under their own family — resilience overhead
		// must never be compared against clean-path throughput.
		{options{chaosOn: true}, "BenchmarkClusterChaosNodes2"},
	} {
		var out strings.Builder
		emitBench(&out, tc.opt, 2, res)
		line := strings.TrimSpace(out.String())
		if !strings.HasPrefix(line, tc.name) {
			t.Fatalf("bench line has wrong name: %q, want %s", line, tc.name)
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || len(fields)%2 != 0 {
			t.Fatalf("bench line has %d fields, want even and >= 4: %q", len(fields), line)
		}
	}
}

// TestChaosSmoke runs the harness's chaos shape: the same 2-worker
// self-test with faults injected on every coordinator->worker
// connection. Clean answers and byte-identity are still mandatory.
func TestChaosSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos smoke in -short mode")
	}
	var out, errOut strings.Builder
	args := []string{"-smoke", "-requests", "8", "-clients", "4", "-seeds", "2", "-instr", "2000",
		"-chaos", "latency:p=0.1,ms=20;err:p=0.1,status=503;corrupt:p=0.05", "-chaos-seed", "7"}
	if code := run(args, &out, &errOut); code != 0 {
		t.Fatalf("loadtest -smoke -chaos = %d\nstdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "loadtest smoke: PASS") {
		t.Fatalf("missing PASS line:\n%s", out.String())
	}
}

func TestBadChaosFlag(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-chaos", "latency:nope=1"}, &out, &errOut); code != 2 {
		t.Fatalf("run -chaos latency:nope=1 = %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "-chaos") {
		t.Fatalf("stderr missing -chaos diagnosis: %s", errOut.String())
	}
}

func TestBadNodeFlag(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-nodes", "zero"}, &out, &errOut); code != 2 {
		t.Fatalf("run -nodes zero = %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "-nodes") {
		t.Fatalf("stderr missing -nodes diagnosis: %s", errOut.String())
	}
}
