package main

import (
	"strings"
	"testing"
)

// TestLoadtestSmoke runs the whole harness in its quick self-test
// shape: a 2-worker cluster, cold + warm + verify phases, byte-identity
// and warm-cache assertions. This is the same invocation `make
// loadtest-smoke` (and therefore `make verify`) runs.
func TestLoadtestSmoke(t *testing.T) {
	var out, errOut strings.Builder
	args := []string{"-smoke", "-requests", "8", "-clients", "4", "-seeds", "2", "-instr", "2000"}
	if code := run(args, &out, &errOut); code != 0 {
		t.Fatalf("loadtest -smoke = %d\nstdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "loadtest smoke: PASS") {
		t.Fatalf("missing PASS line:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "cache-hit 100.0%") {
		t.Fatalf("warm phase not fully cached:\n%s", out.String())
	}
}

// TestBenchLineShape pins the -bench output contract cmd/benchjson
// parses: starts with "Benchmark", no spaces in the name, and an even
// number of fields after it ((value, unit) pairs following the
// iteration count).
func TestBenchLineShape(t *testing.T) {
	var out strings.Builder
	emitBench(&out, 2, result{
		requests:       8,
		coldWall:       1e9,
		coldThroughput: 8,
		coldP99:        420.5,
		warmP50:        1.2,
		warmHitRatio:   1,
	})
	line := strings.TrimSpace(out.String())
	if !strings.HasPrefix(line, "BenchmarkClusterSweepNodes2") {
		t.Fatalf("bench line has wrong name: %q", line)
	}
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		t.Fatalf("bench line has %d fields, want even and >= 4: %q", len(fields), line)
	}
}

func TestBadNodeFlag(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-nodes", "zero"}, &out, &errOut); code != 2 {
		t.Fatalf("run -nodes zero = %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "-nodes") {
		t.Fatalf("stderr missing -nodes diagnosis: %s", errOut.String())
	}
}
