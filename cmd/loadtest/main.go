// Command loadtest drives in-process ctrpredd clusters with swarms of
// concurrent streaming clients and reports what the cluster actually
// delivers: request throughput, p50/p99 latency, cache-hit ratio, and
// — the part that matters most — byte-identity of every response
// against a direct single-node library run.
//
// For each requested cluster size it boots that many real workers plus
// a coordinator on loopback listeners (no processes, no ports to
// clean up), then runs three phases:
//
//	cold    every request's first arrival; all simulation
//	warm    the identical request set again; should be ~all cache
//	verify  every unique request re-POSTed plain and compared byte for
//	        byte against experiments.ByID run in this process
//
// Usage:
//
//	go run ./cmd/loadtest                      # nodes 1,2,4 report
//	go run ./cmd/loadtest -smoke               # 2-worker self-test, seconds
//	go run ./cmd/loadtest -bench | go run ./cmd/benchjson -label pr8-cluster
//
// Scaling note: cells parallelize across workers, so sweep throughput
// approaches linear only when each worker has real CPU cores behind its
// pool. On a single-core host the workers time-share one CPU and the
// cluster's win is bounded to cache cooperation and overlap of I/O with
// compute; the harness reports whatever the host truly delivers.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"ctrpred/internal/chaos"
	"ctrpred/internal/cluster"
	"ctrpred/internal/experiments"
	"ctrpred/internal/server"
	"ctrpred/internal/sim"
	"ctrpred/internal/stats"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

type options struct {
	nodes       []int
	clients     int
	requests    int
	seeds       int
	id          string
	benches     []string
	instr       uint64
	footprint   string
	workerSlots int
	bench       bool
	smoke       bool
	chaosSched  chaos.Schedule
	chaosOn     bool
	chaosSeed   uint64
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("loadtest", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		nodesF    = fs.String("nodes", "1,2,4", "comma-separated cluster sizes to drive")
		clients   = fs.Int("clients", 32, "concurrent streaming clients")
		requests  = fs.Int("requests", 48, "requests per phase (cycled over -seeds distinct configs)")
		seeds     = fs.Int("seeds", 4, "distinct request configurations (seed-varied)")
		id        = fs.String("id", "fig7", "experiment id the clients request")
		benchesF  = fs.String("benches", "gzip,mcf,swim", "benchmark grid per request")
		instr     = fs.Uint64("instr", 2_000, "instructions per simulation")
		footprint = fs.String("footprint", "1M", "working-set footprint per simulation")
		slots     = fs.Int("worker-slots", 2, "concurrent jobs per worker node")
		benchOut  = fs.Bool("bench", false, "emit go test -bench result lines (pipe into cmd/benchjson)")
		smoke     = fs.Bool("smoke", false, "quick 2-worker self-test: assert byte-identity and a >=95% warm-cache ratio, then exit")
		chaosStr  = fs.String("chaos", "", `fault schedule injected on the coordinator's worker connections (see internal/chaos), e.g. "latency:p=0.1,ms=100;err:p=0.05"`)
		chaosSeed = fs.Uint64("chaos-seed", 1, "seed for the -chaos schedule's deterministic draws")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	opt := options{
		clients: *clients, requests: *requests, seeds: *seeds,
		id: *id, instr: *instr, footprint: *footprint,
		workerSlots: *slots, bench: *benchOut, smoke: *smoke,
		chaosSeed: *chaosSeed,
	}
	if *chaosStr != "" {
		sched, err := chaos.Parse(*chaosStr)
		if err != nil {
			fmt.Fprintf(stderr, "loadtest: -chaos: %v\n", err)
			return 2
		}
		opt.chaosSched, opt.chaosOn = sched, true
	}
	for _, b := range strings.Split(*benchesF, ",") {
		if b = strings.TrimSpace(b); b != "" {
			opt.benches = append(opt.benches, b)
		}
	}
	for _, n := range strings.Split(*nodesF, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		v, err := strconv.Atoi(n)
		if err != nil || v < 1 {
			fmt.Fprintf(stderr, "loadtest: bad -nodes entry %q\n", n)
			return 2
		}
		opt.nodes = append(opt.nodes, v)
	}
	if opt.smoke {
		opt.nodes = []int{2}
		if opt.requests > 16 {
			opt.requests = 16
		}
		if opt.clients > 8 {
			opt.clients = 8
		}
	}
	if len(opt.nodes) == 0 || opt.seeds < 1 || opt.requests < 1 || opt.clients < 1 {
		fmt.Fprintln(stderr, "loadtest: need at least one node count, seed, request and client")
		return 2
	}

	var baseline float64
	failed := false
	for i, n := range opt.nodes {
		res, err := driveCluster(opt, n, stdout)
		if err != nil {
			fmt.Fprintf(stderr, "loadtest: %d-worker cluster: %v\n", n, err)
			failed = true
			continue
		}
		if i == 0 {
			baseline = res.coldThroughput
		}
		report(stdout, opt, n, res, baseline)
		if opt.bench {
			emitBench(stdout, opt, n, res)
		}
		if opt.smoke {
			if res.verifyMismatches > 0 {
				fmt.Fprintf(stderr, "loadtest smoke: FAIL: %d response(s) not byte-identical to single-node\n", res.verifyMismatches)
				failed = true
			}
			if res.warmHitRatio < 0.95 {
				fmt.Fprintf(stderr, "loadtest smoke: FAIL: warm cache-hit ratio %.1f%% < 95%%\n", 100*res.warmHitRatio)
				failed = true
			}
			if res.errors > 0 {
				fmt.Fprintf(stderr, "loadtest smoke: FAIL: %d request error(s)\n", res.errors)
				failed = true
			}
		}
	}
	if failed {
		return 1
	}
	if opt.smoke {
		fmt.Fprintln(stdout, "loadtest smoke: PASS")
	}
	return 0
}

// result is one cluster size's measurements.
type result struct {
	requests       int
	coldThroughput float64 // req/s
	coldP50, coldP99,
	warmP50, warmP99 float64 // ms
	warmThroughput   float64
	warmHitRatio     float64
	errors           int
	verifyMismatches int
	verified         int
	coldWall         time.Duration
}

// request builds the i-th client request: the same grid under a
// distinct seed, so each config is its own content address.
func (o options) request(i int) server.ExperimentRequest {
	return server.ExperimentRequest{
		ID:           o.id,
		Benchmarks:   o.benches,
		Instructions: o.instr,
		Footprint:    o.footprint,
		Seed:         uint64(1 + i%o.seeds),
		Workers:      o.workerSlots,
	}
}

// referenceOptions mirrors the server's request building for the direct
// library run the verify phase compares against.
func (o options) referenceOptions(seed uint64) (experiments.Options, error) {
	opt := experiments.DefaultOptions()
	opt.Benchmarks = o.benches
	opt.Scale.Instructions = o.instr
	n, err := sim.ParseSize(o.footprint)
	if err != nil {
		return opt, err
	}
	opt.Scale.Footprint = n
	opt.Seed = seed
	return opt, nil
}

// driveCluster boots an n-worker cluster and runs the three phases.
func driveCluster(opt options, n int, stdout io.Writer) (result, error) {
	var res result

	workers := make([]*httptest.Server, n)
	urls := make([]string, n)
	servers := make([]*server.Server, n)
	for i := range workers {
		servers[i] = server.New(server.Config{Workers: opt.workerSlots, DrainTimeout: 2 * time.Second})
		workers[i] = httptest.NewServer(servers[i])
		urls[i] = workers[i].URL
	}
	ccfg := cluster.Config{
		Workers:           urls,
		MaxRetryWait:      200 * time.Millisecond,
		SaturationRetries: 10_000, // saturation is expected under load; wait it out
		Jobs:              2 * opt.clients,
	}
	if opt.chaosOn {
		// Faults ride the coordinator's worker connections; a deeper
		// redispatch budget absorbs the injected failures so the clients
		// still see only clean answers.
		ccfg.HTTPClient = &http.Client{Transport: chaos.NewTransport(nil, chaos.New(opt.chaosSched, opt.chaosSeed))}
		ccfg.RetryBudget = 12
		ccfg.BreakerCooldown = 250 * time.Millisecond
	}
	coord := cluster.New(ccfg)
	front := httptest.NewServer(coord)
	defer func() {
		front.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		coord.Shutdown(ctx)
		for i := range workers {
			workers[i].Close()
			servers[i].Shutdown(ctx)
		}
	}()

	hc := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        4 * opt.clients,
		MaxIdleConnsPerHost: 2 * opt.clients,
	}}

	cold, err := runPhase(opt, front.URL, hc)
	if err != nil {
		return res, fmt.Errorf("cold phase: %w", err)
	}
	warm, err := runPhase(opt, front.URL, hc)
	if err != nil {
		return res, fmt.Errorf("warm phase: %w", err)
	}

	res.requests = opt.requests
	res.coldWall = cold.wall
	res.coldThroughput = float64(opt.requests) / cold.wall.Seconds()
	res.warmThroughput = float64(opt.requests) / warm.wall.Seconds()
	res.coldP50 = stats.Percentile(cold.latencies, 0.50)
	res.coldP99 = stats.Percentile(cold.latencies, 0.99)
	res.warmP50 = stats.Percentile(warm.latencies, 0.50)
	res.warmP99 = stats.Percentile(warm.latencies, 0.99)
	res.warmHitRatio = stats.Rate(uint64(warm.hits), uint64(opt.requests))
	res.errors = cold.errors + warm.errors

	// Verify: every unique config plain-POSTed and compared byte for
	// byte with the in-process single-node run.
	for s := 0; s < opt.seeds; s++ {
		req := opt.request(s)
		refOpt, err := opt.referenceOptions(req.Seed)
		if err != nil {
			return res, err
		}
		ref, err := experiments.ByID(context.Background(), opt.id, refOpt)
		if err != nil {
			return res, fmt.Errorf("reference run seed %d: %w", req.Seed, err)
		}
		want, err := ref.Snapshot().JSON()
		if err != nil {
			return res, err
		}
		body, err := json.Marshal(req)
		if err != nil {
			return res, err
		}
		resp, err := hc.Post(front.URL+"/v1/experiments", "application/json", bytes.NewReader(body))
		if err != nil {
			return res, fmt.Errorf("verify POST seed %d: %w", req.Seed, err)
		}
		got, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return res, err
		}
		res.verified++
		if resp.StatusCode != http.StatusOK || !bytes.Equal(got, want) {
			res.verifyMismatches++
		}
	}
	return res, nil
}

// phaseStats is one phase's raw measurements.
type phaseStats struct {
	wall      time.Duration
	latencies []float64 // ms
	hits      int
	errors    int
}

// runPhase fires opt.requests streaming requests through opt.clients
// concurrent clients and collects per-request latency and cache
// disposition.
func runPhase(opt options, base string, hc *http.Client) (phaseStats, error) {
	var (
		ps   phaseStats
		mu   sync.Mutex
		wg   sync.WaitGroup
		work = make(chan int)
	)
	start := time.Now()
	for c := 0; c < opt.clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				t0 := time.Now()
				cached, err := streamOnce(hc, base, opt.request(i))
				lat := float64(time.Since(t0)) / float64(time.Millisecond)
				mu.Lock()
				ps.latencies = append(ps.latencies, lat)
				if err != nil {
					ps.errors++
				} else if cached {
					ps.hits++
				}
				mu.Unlock()
			}
		}()
	}
	for i := 0; i < opt.requests; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
	ps.wall = time.Since(start)
	if ps.errors > 0 {
		return ps, fmt.Errorf("%d of %d requests failed", ps.errors, opt.requests)
	}
	return ps, nil
}

// streamOnce runs one streaming request to completion, reporting
// whether it was answered from cache (the accepted or terminal event
// says so).
func streamOnce(hc *http.Client, base string, req server.ExperimentRequest) (cached bool, err error) {
	body, err := json.Marshal(req)
	if err != nil {
		return false, err
	}
	resp, err := hc.Post(base+"/v1/experiments?stream=1", "application/json", bytes.NewReader(body))
	if err != nil {
		return false, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return false, fmt.Errorf("status %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 16<<20)
	var last server.Event
	for sc.Scan() {
		var ev server.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return false, fmt.Errorf("bad stream line: %w", err)
		}
		if ev.Cached {
			cached = true
		}
		last = ev
	}
	if err := sc.Err(); err != nil {
		return false, err
	}
	if last.Event != "result" {
		return false, fmt.Errorf("terminal event %q: %s", last.Event, last.Error)
	}
	return cached, nil
}

func report(w io.Writer, opt options, n int, res result, baseline float64) {
	speedup := 0.0
	if baseline > 0 {
		speedup = res.coldThroughput / baseline
	}
	fmt.Fprintf(w, "cluster nodes=%d clients=%d requests=%d id=%s seeds=%d\n",
		n, opt.clients, opt.requests, opt.id, opt.seeds)
	fmt.Fprintf(w, "  cold: %6.2f req/s  p50 %8.1f ms  p99 %8.1f ms  (%.2fx vs %d-node baseline)\n",
		res.coldThroughput, res.coldP50, res.coldP99, speedup, opt.nodes[0])
	fmt.Fprintf(w, "  warm: %6.2f req/s  p50 %8.1f ms  p99 %8.1f ms  cache-hit %5.1f%%\n",
		res.warmThroughput, res.warmP50, res.warmP99, 100*res.warmHitRatio)
	fmt.Fprintf(w, "  verify: %d/%d byte-identical to single-node\n",
		res.verified-res.verifyMismatches, res.verified)
}

// emitBench prints the run in `go test -bench` line format so
// cmd/benchjson can append it to the ledger. Chaos runs get their own
// benchmark family: their latencies measure resilience overhead, not
// clean-path throughput, and must not be compared against it.
func emitBench(w io.Writer, opt options, n int, res result) {
	name := "BenchmarkClusterSweepNodes"
	if opt.chaosOn {
		name = "BenchmarkClusterChaosNodes"
	}
	nsPerReq := int64(res.coldWall) / int64(res.requests)
	fmt.Fprintf(w, "%s%d \t%d\t%d ns/op\t%.2f req/s\t%.1f cold_p99_ms\t%.1f warm_p50_ms\t%.1f warm_hit_pct\n",
		name, n, res.requests, nsPerReq, res.coldThroughput, res.coldP99, res.warmP50, 100*res.warmHitRatio)
}
