package main

import (
	"strings"
	"testing"
)

// TestSmokeMode drives the daemon's -smoke self-test: a real listener,
// one streamed job over HTTP, and a cache-hit repeat. This is the same
// check CI runs as its boot smoke step.
func TestSmokeMode(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-smoke", "-workers", "2"}, &out, &errOut); code != 0 {
		t.Fatalf("run -smoke = %d\nstdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "PASS") {
		t.Fatalf("smoke output missing PASS:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "served from cache") {
		t.Fatalf("smoke output missing cache confirmation:\n%s", out.String())
	}
}

func TestBadFlags(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-definitely-not-a-flag"}, &out, &errOut); code != 2 {
		t.Fatalf("run with bad flag = %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "flag") {
		t.Fatalf("stderr missing usage: %s", errOut.String())
	}
}
