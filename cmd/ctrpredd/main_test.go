package main

import (
	"strings"
	"testing"
)

// TestSmokeMode drives the daemon's -smoke self-test: a real listener,
// one streamed job over HTTP, and a cache-hit repeat. This is the same
// check CI runs as its boot smoke step.
func TestSmokeMode(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-smoke", "-workers", "2"}, &out, &errOut); code != 0 {
		t.Fatalf("run -smoke = %d\nstdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "PASS") {
		t.Fatalf("smoke output missing PASS:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "served from cache") {
		t.Fatalf("smoke output missing cache confirmation:\n%s", out.String())
	}
}

func TestBadFlags(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-definitely-not-a-flag"}, &out, &errOut); code != 2 {
		t.Fatalf("run with bad flag = %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "flag") {
		t.Fatalf("stderr missing usage: %s", errOut.String())
	}
}

// TestWorkersFlagParsing pins the dual-mode -workers flag: a number for
// a local daemon, URLs only under -coordinator, and a helpful error
// when the two are confused.
func TestWorkersFlagParsing(t *testing.T) {
	if n, err := parseWorkerCount(""); err != nil || n != 0 {
		t.Errorf("parseWorkerCount(\"\") = %d, %v; want 0, nil", n, err)
	}
	if n, err := parseWorkerCount("4"); err != nil || n != 4 {
		t.Errorf("parseWorkerCount(\"4\") = %d, %v; want 4, nil", n, err)
	}
	if _, err := parseWorkerCount("http://a:1,http://b:2"); err == nil || !strings.Contains(err.Error(), "-coordinator") {
		t.Errorf("parseWorkerCount(urls) error = %v; want a hint about -coordinator", err)
	}
	if got := splitURLs(" http://a:1, http://b:2 ,"); len(got) != 2 || got[0] != "http://a:1" || got[1] != "http://b:2" {
		t.Errorf("splitURLs = %v; want the two trimmed URLs", got)
	}
	if got := splitURLs(""); got != nil {
		t.Errorf("splitURLs(\"\") = %v; want nil", got)
	}
}

// TestDaemonRejectsURLWorkers: a daemon invocation handed worker URLs
// must refuse with a pointer at -coordinator, not silently serve.
func TestDaemonRejectsURLWorkers(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-workers", "http://a:1,http://b:2"}, &out, &errOut); code != 2 {
		t.Fatalf("run with URL -workers = %d, want 2\nstderr: %s", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "-coordinator") {
		t.Fatalf("stderr missing -coordinator hint: %s", errOut.String())
	}
}

// TestCoordinatorSmokeRejected: the cluster self-test lives in
// cmd/loadtest; -coordinator -smoke should say so.
func TestCoordinatorSmokeRejected(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-coordinator", "-smoke"}, &out, &errOut); code != 2 {
		t.Fatalf("run -coordinator -smoke = %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "loadtest") {
		t.Fatalf("stderr missing loadtest pointer: %s", errOut.String())
	}
}
