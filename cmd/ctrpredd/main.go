// Command ctrpredd serves the simulator as a long-lived HTTP/JSON job
// service: POST a simulation or experiment request, stream its progress
// as NDJSON, and fetch completed results from a content-addressed
// cache. See internal/server for the API surface.
//
// Usage:
//
//	ctrpredd -addr localhost:8844 -workers 4 -queue 8
//	ctrpredd -smoke            # boot, self-test one job over HTTP, exit
//
// Cluster mode (see internal/cluster): a coordinator fronts any number
// of plain ctrpredd workers behind the identical API, splitting
// experiment grids across them and routing every job to the worker
// whose cache owns its content address:
//
//	ctrpredd -addr :8845                        # worker A
//	ctrpredd -addr :8846                        # worker B
//	ctrpredd -coordinator -addr :8844 \
//	         -workers http://localhost:8845,http://localhost:8846
//
// Workers can also announce themselves to a running coordinator:
//
//	ctrpredd -addr :8847 -join http://localhost:8844
//
// A first session:
//
//	curl -s localhost:8844/v1/benchmarks | jq '.[].name'
//	curl -s -X POST localhost:8844/v1/sim?stream=1 \
//	     -d '{"bench":"mcf","scheme":"pred-context","instructions":1000000}'
//	curl -s localhost:8844/metrics | jq .
//
// SIGINT/SIGTERM drain gracefully: admission stops, running jobs get
// the -drain window to finish, then their contexts are cancelled and
// the simulator stops within one checkpoint interval.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"ctrpred/internal/chaos"
	"ctrpred/internal/cluster"
	"ctrpred/internal/server"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ctrpredd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr    = fs.String("addr", "localhost:8844", "listen address")
		workers = fs.String("workers", "", "concurrent jobs (number, empty/0 = one per CPU); with -coordinator: comma-separated worker base URLs")
		queue   = fs.Int("queue", 0, "jobs queued beyond the running ones (0 = 2x workers, -1 = none); a full queue answers 429")
		cache   = fs.Int("cache", 256, "result-cache entries (-1 disables caching)")
		timeout = fs.Duration("timeout", 0, "default per-job deadline for requests that carry none (0 = unbounded)")
		drain   = fs.Duration("drain", 5*time.Second, "graceful-shutdown window before running jobs are cancelled")
		pprofF  = fs.Bool("pprof", false, "expose /debug/pprof")
		smoke   = fs.Bool("smoke", false, "boot on an ephemeral port, push one job through the full HTTP path, verify the result and the cache, then exit")

		coord     = fs.Bool("coordinator", false, "serve as a cluster coordinator over the -workers URLs instead of simulating locally")
		join      = fs.String("join", "", "coordinator base URL to register this worker with at startup")
		advertise = fs.String("advertise", "", "base URL this worker is reachable at, for -join (default http://<listen addr>)")
		fanout    = fs.Int("fanout", 0, "coordinator: max in-flight experiment cells (0 = 2 per worker)")
		journal   = fs.String("journal", "", "coordinator: sweep-journal file; completed experiment cells persist here and survive restarts")
		localFB   = fs.Bool("local-fallback", true, "coordinator: run jobs in-process when every worker is down instead of failing")
		chaosStr  = fs.String("chaos", "", `fault-injection schedule (see internal/chaos), e.g. "latency:p=0.2,ms=500;err:p=0.1"; a coordinator injects on its worker connections, a worker on its served requests`)
		chaosSeed = fs.Uint64("chaos-seed", 1, "seed for the -chaos schedule's deterministic draws")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var inj *chaos.Injector
	if *chaosStr != "" {
		sched, err := chaos.Parse(*chaosStr)
		if err != nil {
			fmt.Fprintf(stderr, "ctrpredd: -chaos: %v\n", err)
			return 2
		}
		inj = chaos.New(sched, *chaosSeed)
	}

	if *coord {
		if *smoke {
			fmt.Fprintln(stderr, "ctrpredd: -coordinator has no -smoke; use cmd/loadtest -smoke for the cluster self-test")
			return 2
		}
		urls := splitURLs(*workers)
		ccfg := cluster.Config{
			Workers:              urls,
			Fanout:               *fanout,
			Backlog:              *queue,
			CacheEntries:         *cache,
			DrainTimeout:         *drain,
			DisableLocalFallback: !*localFB,
		}
		if *journal != "" {
			j, err := cluster.OpenJournal(*journal)
			if err != nil {
				fmt.Fprintf(stderr, "ctrpredd: -journal: %v\n", err)
				return 1
			}
			defer j.Close()
			ccfg.Journal = j
			fmt.Fprintf(stdout, "ctrpredd: sweep journal %s holds %d cell(s)\n", *journal, j.Len())
		}
		if inj != nil {
			// The coordinator's side of chaos: every connection it makes to
			// a worker runs through the fault-injecting transport.
			ccfg.HTTPClient = &http.Client{Transport: chaos.NewTransport(nil, inj)}
			fmt.Fprintf(stdout, "ctrpredd: injecting faults on worker connections: %s (seed %d)\n", *chaosStr, *chaosSeed)
		}
		c := cluster.New(ccfg)
		fmt.Fprintf(stdout, "ctrpredd coordinator over %d worker(s)\n", len(urls))
		return serveLoop(c.ServeHTTP, c.Shutdown, *addr, *drain, stdout, stderr)
	}

	nWorkers, err := parseWorkerCount(*workers)
	if err != nil {
		fmt.Fprintf(stderr, "ctrpredd: -workers: %v\n", err)
		return 2
	}
	cfg := server.Config{
		Workers: nWorkers, Backlog: *queue, CacheEntries: *cache,
		DefaultTimeout: *timeout, DrainTimeout: *drain, EnablePprof: *pprofF,
	}
	if *smoke {
		return runSmoke(cfg, stdout, stderr)
	}

	s := server.New(cfg)
	handler := http.Handler(s)
	if inj != nil {
		// The worker's side of chaos: served requests fault before,
		// during, or after the real handler runs.
		handler = chaos.Middleware(inj, s)
		fmt.Fprintf(stdout, "ctrpredd: injecting faults on served requests: %s (seed %d)\n", *chaosStr, *chaosSeed)
	}
	onUp := func(base string) {
		if *join == "" {
			return
		}
		self := *advertise
		if self == "" {
			self = base
		}
		if err := joinCluster(*join, self); err != nil {
			fmt.Fprintf(stderr, "ctrpredd: join %s: %v (serving anyway)\n", *join, err)
			return
		}
		fmt.Fprintf(stdout, "ctrpredd: joined cluster at %s as %s\n", *join, self)
	}
	return serveLoopWith(handler.ServeHTTP, s.Shutdown, *addr, *drain, stdout, stderr, onUp)
}

// splitURLs parses the coordinator form of -workers.
func splitURLs(s string) []string {
	var out []string
	for _, u := range strings.Split(s, ",") {
		if u = strings.TrimSpace(u); u != "" {
			out = append(out, u)
		}
	}
	return out
}

// parseWorkerCount parses the daemon form of -workers. A URL here is
// almost certainly a forgotten -coordinator flag; say so.
func parseWorkerCount(s string) (int, error) {
	if s == "" {
		return 0, nil
	}
	if strings.Contains(s, "://") || strings.Contains(s, ",") {
		return 0, fmt.Errorf("%q looks like worker URLs; did you mean -coordinator?", s)
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("want a number (or URLs with -coordinator), got %q", s)
	}
	return n, nil
}

// joinCluster announces this worker to a coordinator, retrying briefly
// so worker and coordinator can boot in either order.
func joinCluster(coordinator, self string) error {
	body, err := json.Marshal(map[string]string{"url": self})
	if err != nil {
		return err
	}
	// Explicit per-request timeout: a hung coordinator must not wedge a
	// worker's startup indefinitely.
	hc := &http.Client{Timeout: 5 * time.Second}
	var lastErr error
	for attempt := 0; attempt < 10; attempt++ {
		if attempt > 0 {
			time.Sleep(500 * time.Millisecond)
		}
		resp, err := hc.Post(strings.TrimRight(coordinator, "/")+"/v1/cluster/join",
			"application/json", bytes.NewReader(body))
		if err != nil {
			lastErr = err
			continue
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			return nil
		}
		lastErr = fmt.Errorf("coordinator answered %d", resp.StatusCode)
		if resp.StatusCode == http.StatusBadRequest {
			return lastErr // malformed advertise URL will not improve with retries
		}
	}
	return lastErr
}

// serveLoop runs an http.Handler with graceful signal-driven shutdown.
func serveLoop(handler http.HandlerFunc, shutdown func(context.Context) error, addr string, drain time.Duration, stdout, stderr io.Writer) int {
	return serveLoopWith(handler, shutdown, addr, drain, stdout, stderr, nil)
}

// serveLoopWith is serveLoop plus an onUp hook invoked with the base
// URL once the listener is accepting (worker self-registration).
func serveLoopWith(handler http.HandlerFunc, shutdown func(context.Context) error, addr string, drain time.Duration, stdout, stderr io.Writer, onUp func(base string)) int {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fmt.Fprintf(stderr, "ctrpredd: %v\n", err)
		return 1
	}
	hs := &http.Server{Handler: handler, ReadHeaderTimeout: 10 * time.Second}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	fmt.Fprintf(stdout, "ctrpredd listening on http://%s\n", ln.Addr())
	if onUp != nil {
		onUp("http://" + ln.Addr().String())
	}

	select {
	case err := <-serveErr:
		fmt.Fprintf(stderr, "ctrpredd: serve: %v\n", err)
		return 1
	case <-ctx.Done():
	}
	stop() // a second signal now kills the process the default way

	fmt.Fprintf(stdout, "ctrpredd: draining (up to %s before jobs are cancelled)\n", drain)
	// Jobs first — Shutdown drains or cancels them, which lets in-flight
	// request handlers finish — then the HTTP listener.
	sdCtx, cancel := context.WithTimeout(context.Background(), drain+30*time.Second)
	defer cancel()
	if err := shutdown(sdCtx); err != nil {
		fmt.Fprintf(stderr, "ctrpredd: drain: %v\n", err)
		return 1
	}
	if err := hs.Shutdown(sdCtx); err != nil {
		fmt.Fprintf(stderr, "ctrpredd: http shutdown: %v\n", err)
		return 1
	}
	fmt.Fprintln(stdout, "ctrpredd: bye")
	return 0
}

// runSmoke is the self-test behind -smoke: a real listener, a real
// streamed job, a real cache hit — the CI boot check without curl.
func runSmoke(cfg server.Config, stdout, stderr io.Writer) int {
	fail := func(format string, args ...any) int {
		fmt.Fprintf(stderr, "ctrpredd smoke: FAIL: "+format+"\n", args...)
		return 1
	}
	s := server.New(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fail("listen: %v", err)
	}
	hs := &http.Server{Handler: s}
	go hs.Serve(ln)
	base := "http://" + ln.Addr().String()
	fmt.Fprintf(stdout, "ctrpredd smoke: listening on %s\n", base)

	const body = `{"bench":"mcf","scheme":"pred-context","footprint":"64K","instructions":30000,"seed":7}`

	// A streamed job must open with admission and close with a result.
	resp, err := http.Post(base+"/v1/sim?stream=1", "application/json", strings.NewReader(body))
	if err != nil {
		return fail("POST stream: %v", err)
	}
	var first, last server.Event
	events := 0
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev server.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			resp.Body.Close()
			return fail("bad stream line %q: %v", sc.Text(), err)
		}
		if events == 0 {
			first = ev
		}
		last = ev
		events++
	}
	resp.Body.Close()
	if err := sc.Err(); err != nil {
		return fail("stream read: %v", err)
	}
	if first.Event != "accepted" || first.Key == "" {
		return fail("first event = %+v, want accepted with key", first)
	}
	if last.Event != "result" || len(last.Snapshot) == 0 {
		return fail("terminal event = %+v, want result with snapshot", last)
	}
	fmt.Fprintf(stdout, "ctrpredd smoke: streamed %d events, result key %s\n", events, last.Key)

	// The identical request again must be answered from the cache.
	resp, err = http.Post(base+"/v1/sim", "application/json", strings.NewReader(body))
	if err != nil {
		return fail("POST repeat: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Cache") != "hit" {
		return fail("repeat request: status %d, X-Cache %q, want 200/hit", resp.StatusCode, resp.Header.Get("X-Cache"))
	}
	fmt.Fprintln(stdout, "ctrpredd smoke: repeat request served from cache")

	hz, err := http.Get(base + "/healthz")
	if err != nil {
		return fail("GET healthz: %v", err)
	}
	io.Copy(io.Discard, hz.Body)
	hz.Body.Close()
	if hz.StatusCode != http.StatusOK {
		return fail("healthz = %d, want 200", hz.StatusCode)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		return fail("shutdown: %v", err)
	}
	if err := hs.Shutdown(ctx); err != nil {
		return fail("http shutdown: %v", err)
	}
	fmt.Fprintln(stdout, "ctrpredd smoke: PASS")
	return 0
}
